# Empty dependencies file for bench_fig5_sensitivity.
# This may be replaced when dependencies are built.
