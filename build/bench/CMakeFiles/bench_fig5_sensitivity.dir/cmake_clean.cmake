file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_sensitivity.dir/bench_fig5_sensitivity.cc.o"
  "CMakeFiles/bench_fig5_sensitivity.dir/bench_fig5_sensitivity.cc.o.d"
  "bench_fig5_sensitivity"
  "bench_fig5_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
