# Empty compiler generated dependencies file for bench_table4_linkpred_yelp.
# This may be replaced when dependencies are built.
