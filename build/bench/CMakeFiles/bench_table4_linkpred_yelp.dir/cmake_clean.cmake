file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_linkpred_yelp.dir/bench_table4_linkpred_yelp.cc.o"
  "CMakeFiles/bench_table4_linkpred_yelp.dir/bench_table4_linkpred_yelp.cc.o.d"
  "bench_table4_linkpred_yelp"
  "bench_table4_linkpred_yelp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_linkpred_yelp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
