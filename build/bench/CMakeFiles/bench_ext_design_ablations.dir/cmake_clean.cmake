file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_design_ablations.dir/bench_ext_design_ablations.cc.o"
  "CMakeFiles/bench_ext_design_ablations.dir/bench_ext_design_ablations.cc.o.d"
  "bench_ext_design_ablations"
  "bench_ext_design_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_design_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
