# Empty compiler generated dependencies file for bench_ext_design_ablations.
# This may be replaced when dependencies are built.
