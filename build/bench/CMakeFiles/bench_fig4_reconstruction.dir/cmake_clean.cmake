file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_reconstruction.dir/bench_fig4_reconstruction.cc.o"
  "CMakeFiles/bench_fig4_reconstruction.dir/bench_fig4_reconstruction.cc.o.d"
  "bench_fig4_reconstruction"
  "bench_fig4_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
