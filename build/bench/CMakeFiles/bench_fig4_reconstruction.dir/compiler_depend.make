# Empty compiler generated dependencies file for bench_fig4_reconstruction.
# This may be replaced when dependencies are built.
