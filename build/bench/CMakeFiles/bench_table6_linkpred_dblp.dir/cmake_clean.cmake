file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_linkpred_dblp.dir/bench_table6_linkpred_dblp.cc.o"
  "CMakeFiles/bench_table6_linkpred_dblp.dir/bench_table6_linkpred_dblp.cc.o.d"
  "bench_table6_linkpred_dblp"
  "bench_table6_linkpred_dblp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_linkpred_dblp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
