# Empty dependencies file for bench_table6_linkpred_dblp.
# This may be replaced when dependencies are built.
