file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_linkpred_tmall.dir/bench_table5_linkpred_tmall.cc.o"
  "CMakeFiles/bench_table5_linkpred_tmall.dir/bench_table5_linkpred_tmall.cc.o.d"
  "bench_table5_linkpred_tmall"
  "bench_table5_linkpred_tmall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_linkpred_tmall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
