# Empty compiler generated dependencies file for bench_table5_linkpred_tmall.
# This may be replaced when dependencies are built.
