file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_training_time.dir/bench_table8_training_time.cc.o"
  "CMakeFiles/bench_table8_training_time.dir/bench_table8_training_time.cc.o.d"
  "bench_table8_training_time"
  "bench_table8_training_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_training_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
