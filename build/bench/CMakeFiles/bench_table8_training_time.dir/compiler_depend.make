# Empty compiler generated dependencies file for bench_table8_training_time.
# This may be replaced when dependencies are built.
