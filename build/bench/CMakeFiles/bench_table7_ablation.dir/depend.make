# Empty dependencies file for bench_table7_ablation.
# This may be replaced when dependencies are built.
