# Empty dependencies file for bench_table3_linkpred_digg.
# This may be replaced when dependencies are built.
