file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_linkpred_digg.dir/bench_table3_linkpred_digg.cc.o"
  "CMakeFiles/bench_table3_linkpred_digg.dir/bench_table3_linkpred_digg.cc.o.d"
  "bench_table3_linkpred_digg"
  "bench_table3_linkpred_digg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_linkpred_digg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
