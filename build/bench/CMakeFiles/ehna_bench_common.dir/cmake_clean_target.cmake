file(REMOVE_RECURSE
  "../lib/libehna_bench_common.a"
)
