# Empty dependencies file for ehna_bench_common.
# This may be replaced when dependencies are built.
