file(REMOVE_RECURSE
  "../lib/libehna_bench_common.a"
  "../lib/libehna_bench_common.pdb"
  "CMakeFiles/ehna_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/ehna_bench_common.dir/bench_common.cc.o.d"
  "CMakeFiles/ehna_bench_common.dir/linkpred_table.cc.o"
  "CMakeFiles/ehna_bench_common.dir/linkpred_table.cc.o.d"
  "CMakeFiles/ehna_bench_common.dir/paper_reference.cc.o"
  "CMakeFiles/ehna_bench_common.dir/paper_reference.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehna_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
