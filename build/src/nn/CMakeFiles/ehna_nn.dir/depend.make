# Empty dependencies file for ehna_nn.
# This may be replaced when dependencies are built.
