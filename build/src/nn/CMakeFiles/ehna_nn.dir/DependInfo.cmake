
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/autograd.cc" "src/nn/CMakeFiles/ehna_nn.dir/autograd.cc.o" "gcc" "src/nn/CMakeFiles/ehna_nn.dir/autograd.cc.o.d"
  "/root/repo/src/nn/batchnorm.cc" "src/nn/CMakeFiles/ehna_nn.dir/batchnorm.cc.o" "gcc" "src/nn/CMakeFiles/ehna_nn.dir/batchnorm.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/ehna_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/ehna_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/ehna_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/ehna_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/ehna_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/ehna_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/ehna_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/ehna_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/nn/CMakeFiles/ehna_nn.dir/ops.cc.o" "gcc" "src/nn/CMakeFiles/ehna_nn.dir/ops.cc.o.d"
  "/root/repo/src/nn/optim.cc" "src/nn/CMakeFiles/ehna_nn.dir/optim.cc.o" "gcc" "src/nn/CMakeFiles/ehna_nn.dir/optim.cc.o.d"
  "/root/repo/src/nn/pca.cc" "src/nn/CMakeFiles/ehna_nn.dir/pca.cc.o" "gcc" "src/nn/CMakeFiles/ehna_nn.dir/pca.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/ehna_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/ehna_nn.dir/serialize.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/nn/CMakeFiles/ehna_nn.dir/tensor.cc.o" "gcc" "src/nn/CMakeFiles/ehna_nn.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ehna_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
