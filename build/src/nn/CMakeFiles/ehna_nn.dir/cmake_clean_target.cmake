file(REMOVE_RECURSE
  "libehna_nn.a"
)
