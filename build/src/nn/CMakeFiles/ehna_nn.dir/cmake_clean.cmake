file(REMOVE_RECURSE
  "CMakeFiles/ehna_nn.dir/autograd.cc.o"
  "CMakeFiles/ehna_nn.dir/autograd.cc.o.d"
  "CMakeFiles/ehna_nn.dir/batchnorm.cc.o"
  "CMakeFiles/ehna_nn.dir/batchnorm.cc.o.d"
  "CMakeFiles/ehna_nn.dir/embedding.cc.o"
  "CMakeFiles/ehna_nn.dir/embedding.cc.o.d"
  "CMakeFiles/ehna_nn.dir/init.cc.o"
  "CMakeFiles/ehna_nn.dir/init.cc.o.d"
  "CMakeFiles/ehna_nn.dir/linear.cc.o"
  "CMakeFiles/ehna_nn.dir/linear.cc.o.d"
  "CMakeFiles/ehna_nn.dir/lstm.cc.o"
  "CMakeFiles/ehna_nn.dir/lstm.cc.o.d"
  "CMakeFiles/ehna_nn.dir/ops.cc.o"
  "CMakeFiles/ehna_nn.dir/ops.cc.o.d"
  "CMakeFiles/ehna_nn.dir/optim.cc.o"
  "CMakeFiles/ehna_nn.dir/optim.cc.o.d"
  "CMakeFiles/ehna_nn.dir/pca.cc.o"
  "CMakeFiles/ehna_nn.dir/pca.cc.o.d"
  "CMakeFiles/ehna_nn.dir/serialize.cc.o"
  "CMakeFiles/ehna_nn.dir/serialize.cc.o.d"
  "CMakeFiles/ehna_nn.dir/tensor.cc.o"
  "CMakeFiles/ehna_nn.dir/tensor.cc.o.d"
  "libehna_nn.a"
  "libehna_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehna_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
