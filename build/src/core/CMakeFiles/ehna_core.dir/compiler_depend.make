# Empty compiler generated dependencies file for ehna_core.
# This may be replaced when dependencies are built.
