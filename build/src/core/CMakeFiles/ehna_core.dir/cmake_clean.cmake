file(REMOVE_RECURSE
  "CMakeFiles/ehna_core.dir/aggregator.cc.o"
  "CMakeFiles/ehna_core.dir/aggregator.cc.o.d"
  "CMakeFiles/ehna_core.dir/attention.cc.o"
  "CMakeFiles/ehna_core.dir/attention.cc.o.d"
  "CMakeFiles/ehna_core.dir/grid_search.cc.o"
  "CMakeFiles/ehna_core.dir/grid_search.cc.o.d"
  "CMakeFiles/ehna_core.dir/model.cc.o"
  "CMakeFiles/ehna_core.dir/model.cc.o.d"
  "libehna_core.a"
  "libehna_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehna_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
