file(REMOVE_RECURSE
  "libehna_core.a"
)
