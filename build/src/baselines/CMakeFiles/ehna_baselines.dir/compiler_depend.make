# Empty compiler generated dependencies file for ehna_baselines.
# This may be replaced when dependencies are built.
