
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ctdne.cc" "src/baselines/CMakeFiles/ehna_baselines.dir/ctdne.cc.o" "gcc" "src/baselines/CMakeFiles/ehna_baselines.dir/ctdne.cc.o.d"
  "/root/repo/src/baselines/htne.cc" "src/baselines/CMakeFiles/ehna_baselines.dir/htne.cc.o" "gcc" "src/baselines/CMakeFiles/ehna_baselines.dir/htne.cc.o.d"
  "/root/repo/src/baselines/line.cc" "src/baselines/CMakeFiles/ehna_baselines.dir/line.cc.o" "gcc" "src/baselines/CMakeFiles/ehna_baselines.dir/line.cc.o.d"
  "/root/repo/src/baselines/node2vec.cc" "src/baselines/CMakeFiles/ehna_baselines.dir/node2vec.cc.o" "gcc" "src/baselines/CMakeFiles/ehna_baselines.dir/node2vec.cc.o.d"
  "/root/repo/src/baselines/sgns.cc" "src/baselines/CMakeFiles/ehna_baselines.dir/sgns.cc.o" "gcc" "src/baselines/CMakeFiles/ehna_baselines.dir/sgns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ehna_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/walk/CMakeFiles/ehna_walk.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ehna_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ehna_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
