file(REMOVE_RECURSE
  "CMakeFiles/ehna_baselines.dir/ctdne.cc.o"
  "CMakeFiles/ehna_baselines.dir/ctdne.cc.o.d"
  "CMakeFiles/ehna_baselines.dir/htne.cc.o"
  "CMakeFiles/ehna_baselines.dir/htne.cc.o.d"
  "CMakeFiles/ehna_baselines.dir/line.cc.o"
  "CMakeFiles/ehna_baselines.dir/line.cc.o.d"
  "CMakeFiles/ehna_baselines.dir/node2vec.cc.o"
  "CMakeFiles/ehna_baselines.dir/node2vec.cc.o.d"
  "CMakeFiles/ehna_baselines.dir/sgns.cc.o"
  "CMakeFiles/ehna_baselines.dir/sgns.cc.o.d"
  "libehna_baselines.a"
  "libehna_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehna_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
