file(REMOVE_RECURSE
  "libehna_baselines.a"
)
