
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/walk/ctdne_walk.cc" "src/walk/CMakeFiles/ehna_walk.dir/ctdne_walk.cc.o" "gcc" "src/walk/CMakeFiles/ehna_walk.dir/ctdne_walk.cc.o.d"
  "/root/repo/src/walk/node2vec_walk.cc" "src/walk/CMakeFiles/ehna_walk.dir/node2vec_walk.cc.o" "gcc" "src/walk/CMakeFiles/ehna_walk.dir/node2vec_walk.cc.o.d"
  "/root/repo/src/walk/temporal_walk.cc" "src/walk/CMakeFiles/ehna_walk.dir/temporal_walk.cc.o" "gcc" "src/walk/CMakeFiles/ehna_walk.dir/temporal_walk.cc.o.d"
  "/root/repo/src/walk/walk_stats.cc" "src/walk/CMakeFiles/ehna_walk.dir/walk_stats.cc.o" "gcc" "src/walk/CMakeFiles/ehna_walk.dir/walk_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ehna_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ehna_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
