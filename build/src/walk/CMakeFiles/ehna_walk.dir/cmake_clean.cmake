file(REMOVE_RECURSE
  "CMakeFiles/ehna_walk.dir/ctdne_walk.cc.o"
  "CMakeFiles/ehna_walk.dir/ctdne_walk.cc.o.d"
  "CMakeFiles/ehna_walk.dir/node2vec_walk.cc.o"
  "CMakeFiles/ehna_walk.dir/node2vec_walk.cc.o.d"
  "CMakeFiles/ehna_walk.dir/temporal_walk.cc.o"
  "CMakeFiles/ehna_walk.dir/temporal_walk.cc.o.d"
  "CMakeFiles/ehna_walk.dir/walk_stats.cc.o"
  "CMakeFiles/ehna_walk.dir/walk_stats.cc.o.d"
  "libehna_walk.a"
  "libehna_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehna_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
