file(REMOVE_RECURSE
  "libehna_walk.a"
)
