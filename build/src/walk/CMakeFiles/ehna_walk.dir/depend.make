# Empty dependencies file for ehna_walk.
# This may be replaced when dependencies are built.
