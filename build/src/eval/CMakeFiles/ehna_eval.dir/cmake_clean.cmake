file(REMOVE_RECURSE
  "CMakeFiles/ehna_eval.dir/edge_ops.cc.o"
  "CMakeFiles/ehna_eval.dir/edge_ops.cc.o.d"
  "CMakeFiles/ehna_eval.dir/knn.cc.o"
  "CMakeFiles/ehna_eval.dir/knn.cc.o.d"
  "CMakeFiles/ehna_eval.dir/link_prediction.cc.o"
  "CMakeFiles/ehna_eval.dir/link_prediction.cc.o.d"
  "CMakeFiles/ehna_eval.dir/logistic_regression.cc.o"
  "CMakeFiles/ehna_eval.dir/logistic_regression.cc.o.d"
  "CMakeFiles/ehna_eval.dir/metrics.cc.o"
  "CMakeFiles/ehna_eval.dir/metrics.cc.o.d"
  "CMakeFiles/ehna_eval.dir/ranking_metrics.cc.o"
  "CMakeFiles/ehna_eval.dir/ranking_metrics.cc.o.d"
  "CMakeFiles/ehna_eval.dir/reconstruction.cc.o"
  "CMakeFiles/ehna_eval.dir/reconstruction.cc.o.d"
  "libehna_eval.a"
  "libehna_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehna_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
