# Empty compiler generated dependencies file for ehna_eval.
# This may be replaced when dependencies are built.
