
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/edge_ops.cc" "src/eval/CMakeFiles/ehna_eval.dir/edge_ops.cc.o" "gcc" "src/eval/CMakeFiles/ehna_eval.dir/edge_ops.cc.o.d"
  "/root/repo/src/eval/knn.cc" "src/eval/CMakeFiles/ehna_eval.dir/knn.cc.o" "gcc" "src/eval/CMakeFiles/ehna_eval.dir/knn.cc.o.d"
  "/root/repo/src/eval/link_prediction.cc" "src/eval/CMakeFiles/ehna_eval.dir/link_prediction.cc.o" "gcc" "src/eval/CMakeFiles/ehna_eval.dir/link_prediction.cc.o.d"
  "/root/repo/src/eval/logistic_regression.cc" "src/eval/CMakeFiles/ehna_eval.dir/logistic_regression.cc.o" "gcc" "src/eval/CMakeFiles/ehna_eval.dir/logistic_regression.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/ehna_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/ehna_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/ranking_metrics.cc" "src/eval/CMakeFiles/ehna_eval.dir/ranking_metrics.cc.o" "gcc" "src/eval/CMakeFiles/ehna_eval.dir/ranking_metrics.cc.o.d"
  "/root/repo/src/eval/reconstruction.cc" "src/eval/CMakeFiles/ehna_eval.dir/reconstruction.cc.o" "gcc" "src/eval/CMakeFiles/ehna_eval.dir/reconstruction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ehna_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ehna_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ehna_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
