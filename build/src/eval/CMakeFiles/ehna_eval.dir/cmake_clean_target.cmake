file(REMOVE_RECURSE
  "libehna_eval.a"
)
