
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/edgelist_io.cc" "src/graph/CMakeFiles/ehna_graph.dir/edgelist_io.cc.o" "gcc" "src/graph/CMakeFiles/ehna_graph.dir/edgelist_io.cc.o.d"
  "/root/repo/src/graph/generators/bipartite.cc" "src/graph/CMakeFiles/ehna_graph.dir/generators/bipartite.cc.o" "gcc" "src/graph/CMakeFiles/ehna_graph.dir/generators/bipartite.cc.o.d"
  "/root/repo/src/graph/generators/coauthor.cc" "src/graph/CMakeFiles/ehna_graph.dir/generators/coauthor.cc.o" "gcc" "src/graph/CMakeFiles/ehna_graph.dir/generators/coauthor.cc.o.d"
  "/root/repo/src/graph/generators/social.cc" "src/graph/CMakeFiles/ehna_graph.dir/generators/social.cc.o" "gcc" "src/graph/CMakeFiles/ehna_graph.dir/generators/social.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/graph/CMakeFiles/ehna_graph.dir/graph_builder.cc.o" "gcc" "src/graph/CMakeFiles/ehna_graph.dir/graph_builder.cc.o.d"
  "/root/repo/src/graph/noise_distribution.cc" "src/graph/CMakeFiles/ehna_graph.dir/noise_distribution.cc.o" "gcc" "src/graph/CMakeFiles/ehna_graph.dir/noise_distribution.cc.o.d"
  "/root/repo/src/graph/split.cc" "src/graph/CMakeFiles/ehna_graph.dir/split.cc.o" "gcc" "src/graph/CMakeFiles/ehna_graph.dir/split.cc.o.d"
  "/root/repo/src/graph/temporal_graph.cc" "src/graph/CMakeFiles/ehna_graph.dir/temporal_graph.cc.o" "gcc" "src/graph/CMakeFiles/ehna_graph.dir/temporal_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ehna_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
