file(REMOVE_RECURSE
  "libehna_graph.a"
)
