file(REMOVE_RECURSE
  "CMakeFiles/ehna_graph.dir/edgelist_io.cc.o"
  "CMakeFiles/ehna_graph.dir/edgelist_io.cc.o.d"
  "CMakeFiles/ehna_graph.dir/generators/bipartite.cc.o"
  "CMakeFiles/ehna_graph.dir/generators/bipartite.cc.o.d"
  "CMakeFiles/ehna_graph.dir/generators/coauthor.cc.o"
  "CMakeFiles/ehna_graph.dir/generators/coauthor.cc.o.d"
  "CMakeFiles/ehna_graph.dir/generators/social.cc.o"
  "CMakeFiles/ehna_graph.dir/generators/social.cc.o.d"
  "CMakeFiles/ehna_graph.dir/graph_builder.cc.o"
  "CMakeFiles/ehna_graph.dir/graph_builder.cc.o.d"
  "CMakeFiles/ehna_graph.dir/noise_distribution.cc.o"
  "CMakeFiles/ehna_graph.dir/noise_distribution.cc.o.d"
  "CMakeFiles/ehna_graph.dir/split.cc.o"
  "CMakeFiles/ehna_graph.dir/split.cc.o.d"
  "CMakeFiles/ehna_graph.dir/temporal_graph.cc.o"
  "CMakeFiles/ehna_graph.dir/temporal_graph.cc.o.d"
  "libehna_graph.a"
  "libehna_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehna_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
