# Empty compiler generated dependencies file for ehna_graph.
# This may be replaced when dependencies are built.
