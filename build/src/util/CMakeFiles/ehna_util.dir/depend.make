# Empty dependencies file for ehna_util.
# This may be replaced when dependencies are built.
