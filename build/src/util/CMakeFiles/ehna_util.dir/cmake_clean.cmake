file(REMOVE_RECURSE
  "CMakeFiles/ehna_util.dir/alias_sampler.cc.o"
  "CMakeFiles/ehna_util.dir/alias_sampler.cc.o.d"
  "CMakeFiles/ehna_util.dir/logging.cc.o"
  "CMakeFiles/ehna_util.dir/logging.cc.o.d"
  "CMakeFiles/ehna_util.dir/rng.cc.o"
  "CMakeFiles/ehna_util.dir/rng.cc.o.d"
  "CMakeFiles/ehna_util.dir/status.cc.o"
  "CMakeFiles/ehna_util.dir/status.cc.o.d"
  "CMakeFiles/ehna_util.dir/table_writer.cc.o"
  "CMakeFiles/ehna_util.dir/table_writer.cc.o.d"
  "CMakeFiles/ehna_util.dir/thread_pool.cc.o"
  "CMakeFiles/ehna_util.dir/thread_pool.cc.o.d"
  "libehna_util.a"
  "libehna_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehna_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
