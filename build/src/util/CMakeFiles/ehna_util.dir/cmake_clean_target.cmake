file(REMOVE_RECURSE
  "libehna_util.a"
)
