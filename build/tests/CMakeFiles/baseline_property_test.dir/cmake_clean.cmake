file(REMOVE_RECURSE
  "CMakeFiles/baseline_property_test.dir/baseline_property_test.cc.o"
  "CMakeFiles/baseline_property_test.dir/baseline_property_test.cc.o.d"
  "baseline_property_test"
  "baseline_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
