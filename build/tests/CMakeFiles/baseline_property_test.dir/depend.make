# Empty dependencies file for baseline_property_test.
# This may be replaced when dependencies are built.
