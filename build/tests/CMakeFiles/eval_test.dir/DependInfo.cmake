
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/eval_test.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ehna_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ehna_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ehna_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/walk/CMakeFiles/ehna_walk.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ehna_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ehna_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ehna_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
