# Empty dependencies file for modules_test.
# This may be replaced when dependencies are built.
