file(REMOVE_RECURSE
  "CMakeFiles/walk_test.dir/walk_test.cc.o"
  "CMakeFiles/walk_test.dir/walk_test.cc.o.d"
  "walk_test"
  "walk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
