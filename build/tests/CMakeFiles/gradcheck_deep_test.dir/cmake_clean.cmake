file(REMOVE_RECURSE
  "CMakeFiles/gradcheck_deep_test.dir/gradcheck_deep_test.cc.o"
  "CMakeFiles/gradcheck_deep_test.dir/gradcheck_deep_test.cc.o.d"
  "gradcheck_deep_test"
  "gradcheck_deep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradcheck_deep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
