# Empty dependencies file for gradcheck_deep_test.
# This may be replaced when dependencies are built.
