# Empty compiler generated dependencies file for aggregator_test.
# This may be replaced when dependencies are built.
