file(REMOVE_RECURSE
  "CMakeFiles/proximity_test.dir/proximity_test.cc.o"
  "CMakeFiles/proximity_test.dir/proximity_test.cc.o.d"
  "proximity_test"
  "proximity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
