# Empty dependencies file for proximity_test.
# This may be replaced when dependencies are built.
