file(REMOVE_RECURSE
  "CMakeFiles/attention_test.dir/attention_test.cc.o"
  "CMakeFiles/attention_test.dir/attention_test.cc.o.d"
  "attention_test"
  "attention_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
