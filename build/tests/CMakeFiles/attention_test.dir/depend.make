# Empty dependencies file for attention_test.
# This may be replaced when dependencies are built.
