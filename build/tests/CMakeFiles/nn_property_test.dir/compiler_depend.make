# Empty compiler generated dependencies file for nn_property_test.
# This may be replaced when dependencies are built.
