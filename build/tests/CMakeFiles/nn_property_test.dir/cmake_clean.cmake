file(REMOVE_RECURSE
  "CMakeFiles/nn_property_test.dir/nn_property_test.cc.o"
  "CMakeFiles/nn_property_test.dir/nn_property_test.cc.o.d"
  "nn_property_test"
  "nn_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
