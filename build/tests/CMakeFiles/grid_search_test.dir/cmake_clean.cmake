file(REMOVE_RECURSE
  "CMakeFiles/grid_search_test.dir/grid_search_test.cc.o"
  "CMakeFiles/grid_search_test.dir/grid_search_test.cc.o.d"
  "grid_search_test"
  "grid_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
