# Empty compiler generated dependencies file for grid_search_test.
# This may be replaced when dependencies are built.
