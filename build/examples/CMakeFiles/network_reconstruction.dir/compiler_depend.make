# Empty compiler generated dependencies file for network_reconstruction.
# This may be replaced when dependencies are built.
