file(REMOVE_RECURSE
  "CMakeFiles/network_reconstruction.dir/network_reconstruction.cpp.o"
  "CMakeFiles/network_reconstruction.dir/network_reconstruction.cpp.o.d"
  "network_reconstruction"
  "network_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
