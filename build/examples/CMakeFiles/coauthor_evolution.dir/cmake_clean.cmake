file(REMOVE_RECURSE
  "CMakeFiles/coauthor_evolution.dir/coauthor_evolution.cpp.o"
  "CMakeFiles/coauthor_evolution.dir/coauthor_evolution.cpp.o.d"
  "coauthor_evolution"
  "coauthor_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coauthor_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
