# Empty dependencies file for coauthor_evolution.
# This may be replaced when dependencies are built.
