file(REMOVE_RECURSE
  "CMakeFiles/visualize_embeddings.dir/visualize_embeddings.cpp.o"
  "CMakeFiles/visualize_embeddings.dir/visualize_embeddings.cpp.o.d"
  "visualize_embeddings"
  "visualize_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualize_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
