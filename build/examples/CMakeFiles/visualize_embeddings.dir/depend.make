# Empty dependencies file for visualize_embeddings.
# This may be replaced when dependencies are built.
