file(REMOVE_RECURSE
  "CMakeFiles/streaming_updates.dir/streaming_updates.cpp.o"
  "CMakeFiles/streaming_updates.dir/streaming_updates.cpp.o.d"
  "streaming_updates"
  "streaming_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
