# Empty compiler generated dependencies file for train_embeddings.
# This may be replaced when dependencies are built.
