file(REMOVE_RECURSE
  "CMakeFiles/train_embeddings.dir/train_embeddings.cpp.o"
  "CMakeFiles/train_embeddings.dir/train_embeddings.cpp.o.d"
  "train_embeddings"
  "train_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
