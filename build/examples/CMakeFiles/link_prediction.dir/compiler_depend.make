# Empty compiler generated dependencies file for link_prediction.
# This may be replaced when dependencies are built.
