#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "graph/edgelist_io.h"
#include "graph/noise_distribution.h"
#include "graph/split.h"
#include "graph/temporal_graph.h"

namespace ehna {
namespace {

std::vector<TemporalEdge> TriangleEdges() {
  // 0-1 at t=1, 1-2 at t=2, 0-2 at t=3.
  return {{0, 1, 1.0, 1.0f}, {1, 2, 2.0, 1.0f}, {0, 2, 3.0, 1.0f}};
}

TEST(TemporalGraphTest, BuildsFromEdges) {
  auto g = TemporalGraph::FromEdges(TriangleEdges());
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 3u);
  EXPECT_EQ(g.value().num_edges(), 3u);
  EXPECT_FALSE(g.value().directed());
}

TEST(TemporalGraphTest, RejectsSelfLoops) {
  auto g = TemporalGraph::FromEdges({{1, 1, 0.0, 1.0f}});
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(TemporalGraphTest, RejectsNegativeWeights) {
  auto g = TemporalGraph::FromEdges({{0, 1, 0.0, -1.0f}});
  EXPECT_FALSE(g.ok());
}

TEST(TemporalGraphTest, RejectsOutOfRangeNodeIds) {
  auto g = TemporalGraph::FromEdges({{0, 5, 0.0, 1.0f}}, /*num_nodes=*/3);
  EXPECT_FALSE(g.ok());
}

TEST(TemporalGraphTest, ExplicitNumNodesAllowsIsolated) {
  auto g = TemporalGraph::FromEdges({{0, 1, 0.0, 1.0f}}, /*num_nodes=*/10);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 10u);
  EXPECT_EQ(g.value().Degree(9), 0u);
}

TEST(TemporalGraphTest, EdgesSortedByTime) {
  auto g = TemporalGraph::FromEdges(
      {{0, 1, 5.0, 1.0f}, {1, 2, 1.0, 1.0f}, {2, 3, 3.0, 1.0f}});
  ASSERT_TRUE(g.ok());
  const auto& edges = g.value().edges();
  EXPECT_DOUBLE_EQ(edges[0].time, 1.0);
  EXPECT_DOUBLE_EQ(edges[1].time, 3.0);
  EXPECT_DOUBLE_EQ(edges[2].time, 5.0);
}

TEST(TemporalGraphTest, AdjacencyChronological) {
  auto g = TemporalGraph::FromEdges(
      {{0, 1, 5.0, 1.0f}, {0, 2, 1.0, 1.0f}, {0, 3, 3.0, 1.0f}});
  ASSERT_TRUE(g.ok());
  auto nbrs = g.value().Neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0].neighbor, 2u);
  EXPECT_EQ(nbrs[1].neighbor, 3u);
  EXPECT_EQ(nbrs[2].neighbor, 1u);
}

TEST(TemporalGraphTest, UndirectedAdjacencyBothSides) {
  auto g = TemporalGraph::FromEdges(TriangleEdges());
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().Degree(0), 2u);
  EXPECT_EQ(g.value().Degree(1), 2u);
  EXPECT_EQ(g.value().Degree(2), 2u);
}

TEST(TemporalGraphTest, DirectedAdjacencyOneSide) {
  auto g = TemporalGraph::FromEdges(TriangleEdges(), 0, /*directed=*/true);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().Degree(0), 2u);  // 0->1, 0->2.
  EXPECT_EQ(g.value().Degree(2), 0u);
}

TEST(TemporalGraphTest, NeighborsBeforeIsPrefix) {
  auto g = TemporalGraph::FromEdges(TriangleEdges());
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().NeighborsBefore(0, 0.5).size(), 0u);
  EXPECT_EQ(g.value().NeighborsBefore(0, 1.0).size(), 1u);  // inclusive.
  EXPECT_EQ(g.value().NeighborsBefore(0, 2.9).size(), 1u);
  EXPECT_EQ(g.value().NeighborsBefore(0, 3.0).size(), 2u);
  EXPECT_EQ(g.value().NeighborsBefore(0, 100.0).size(), 2u);
}

TEST(TemporalGraphTest, HasEdgeSymmetricWhenUndirected) {
  auto g = TemporalGraph::FromEdges(TriangleEdges());
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g.value().HasEdge(0, 1));
  EXPECT_TRUE(g.value().HasEdge(1, 0));
  EXPECT_FALSE(g.value().HasEdge(0, 0));
}

TEST(TemporalGraphTest, HasEdgeDirectional) {
  auto g = TemporalGraph::FromEdges({{0, 1, 1.0, 1.0f}}, 0, true);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g.value().HasEdge(0, 1));
  EXPECT_FALSE(g.value().HasEdge(1, 0));
}

TEST(TemporalGraphTest, MostRecentInteraction) {
  auto g = TemporalGraph::FromEdges(TriangleEdges(), /*num_nodes=*/4);
  ASSERT_TRUE(g.ok());
  auto t0 = g.value().MostRecentInteraction(0);
  ASSERT_TRUE(t0.ok());
  EXPECT_DOUBLE_EQ(t0.value(), 3.0);
  auto t3 = g.value().MostRecentInteraction(3);
  EXPECT_FALSE(t3.ok());
  EXPECT_EQ(t3.status().code(), StatusCode::kNotFound);
}

TEST(TemporalGraphTest, TimeBoundsAndSpan) {
  auto g = TemporalGraph::FromEdges(TriangleEdges());
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g.value().min_time(), 1.0);
  EXPECT_DOUBLE_EQ(g.value().max_time(), 3.0);
  EXPECT_DOUBLE_EQ(g.value().TimeSpan(), 2.0);
}

TEST(TemporalGraphTest, TimeSpanFlooredForSingleInstant) {
  auto g = TemporalGraph::FromEdges({{0, 1, 7.0, 1.0f}});
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g.value().TimeSpan(), 0.0);
}

TEST(TemporalGraphTest, WeightedDegreeSumsWeights) {
  auto g = TemporalGraph::FromEdges(
      {{0, 1, 1.0, 2.0f}, {0, 2, 2.0, 3.5f}});
  ASSERT_TRUE(g.ok());
  EXPECT_FLOAT_EQ(g.value().WeightedDegree(0), 5.5f);
}

TEST(TemporalGraphTest, DegreesVector) {
  auto g = TemporalGraph::FromEdges(TriangleEdges(), 4);
  ASSERT_TRUE(g.ok());
  const auto d = g.value().Degrees();
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d[0], 2u);
  EXPECT_EQ(d[3], 0u);
}

TEST(TemporalGraphTest, EmptyGraph) {
  auto g = TemporalGraph::FromEdges({});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 0u);
  EXPECT_EQ(g.value().num_edges(), 0u);
}

// --------------------------------------------------------------- I/O

TEST(EdgeListIoTest, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ehna_io_test.txt").string();
  std::vector<TemporalEdge> edges{{0, 1, 1.5, 2.0f}, {2, 3, 4.0, 1.0f}};
  ASSERT_TRUE(WriteEdgeList(path, edges).ok());
  auto read = ReadEdgeList(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), edges);
  std::filesystem::remove(path);
}

TEST(EdgeListIoTest, SkipsCommentsAndDefaultsWeight) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ehna_io_test2.txt").string();
  {
    std::ofstream out(path);
    out << "# comment\n% other comment\n\n1 2 3.5\n";
  }
  auto read = ReadEdgeList(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().size(), 1u);
  EXPECT_EQ(read.value()[0].src, 1u);
  EXPECT_EQ(read.value()[0].dst, 2u);
  EXPECT_DOUBLE_EQ(read.value()[0].time, 3.5);
  EXPECT_FLOAT_EQ(read.value()[0].weight, 1.0f);
  std::filesystem::remove(path);
}

TEST(EdgeListIoTest, MalformedLineFails) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ehna_io_test3.txt").string();
  {
    std::ofstream out(path);
    out << "1 2\n";  // missing timestamp.
  }
  EXPECT_FALSE(ReadEdgeList(path).ok());
  std::filesystem::remove(path);
}

TEST(EdgeListIoTest, RejectsNonFiniteTimestampsAndWeights) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ehna_io_nonfinite.txt")
          .string();
  for (const char* bad : {"0 1 nan\n", "0 1 inf\n", "0 1 -inf\n",
                          "0 1 1e999\n", "0 1 1.0 nan\n", "0 1 1.0 inf\n"}) {
    {
      std::ofstream out(path);
      out << "0 1 1.0\n" << bad;
    }
    auto r = ReadEdgeList(path);
    ASSERT_FALSE(r.ok()) << "accepted: " << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    // The error names the offending line (line 2 here).
    EXPECT_NE(r.status().message().find(":2"), std::string::npos)
        << r.status().message();
  }
  std::filesystem::remove(path);
}

TEST(EdgeListIoTest, RejectsPartiallyNumericTokensAndTrailingGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ehna_io_garbage.txt")
          .string();
  for (const char* bad :
       {"0 1 3.5x\n", "0 1 3.5 1.0x\n", "0 1 3.5 1.0 surprise\n"}) {
    {
      std::ofstream out(path);
      out << bad;
    }
    auto r = ReadEdgeList(path);
    ASSERT_FALSE(r.ok()) << "accepted: " << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  std::filesystem::remove(path);
}

TEST(EdgeListIoTest, WriteReadRoundTripIsExact) {
  // max_digits10 output makes write/read lossless even for timestamps with
  // no short decimal form.
  const std::string path =
      (std::filesystem::temp_directory_path() / "ehna_io_exact.txt").string();
  std::vector<TemporalEdge> edges{{0, 1, 1.0 / 3.0, 0.1f},
                                  {2, 3, 1234567890.123456, 2.5f}};
  ASSERT_TRUE(WriteEdgeList(path, edges).ok());
  auto read = ReadEdgeList(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), edges);
  std::filesystem::remove(path);
}

TEST(EdgeListIoTest, MissingFileFails) {
  auto r = ReadEdgeList("/nonexistent_zzz/edges.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(EdgeListIoTest, LoadTemporalGraphConvenience) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ehna_io_test4.txt").string();
  {
    std::ofstream out(path);
    out << "0 1 1\n1 2 2\n";
  }
  auto g = LoadTemporalGraph(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 3u);
  std::filesystem::remove(path);
}

// -------------------------------------------------------------- Split

std::vector<TemporalEdge> ChainEdges(int n) {
  std::vector<TemporalEdge> edges;
  for (int i = 0; i + 1 < n; ++i) {
    edges.push_back({static_cast<NodeId>(i), static_cast<NodeId>(i + 1),
                     static_cast<Timestamp>(i), 1.0f});
  }
  return edges;
}

TEST(TemporalSplitTest, HoldsOutMostRecentEdges) {
  auto g = TemporalGraph::FromEdges(ChainEdges(101));
  ASSERT_TRUE(g.ok());
  Rng rng(1);
  TemporalSplitOptions opt;
  opt.holdout_fraction = 0.2;
  opt.drop_unseen_endpoints = false;
  auto split = MakeTemporalSplit(g.value(), opt, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split.value().train.num_edges(), 80u);
  EXPECT_EQ(split.value().test_positive.size(), 20u);
  // Held-out edges are strictly the latest ones.
  for (const auto& e : split.value().test_positive) {
    EXPECT_GE(e.time, 80.0);
  }
}

// A multigraph over 12 nodes where every node interacts early and late, so
// temporal holdouts never orphan an endpoint.
std::vector<TemporalEdge> RecurringEdges(int events) {
  std::vector<TemporalEdge> edges;
  for (int i = 0; i < events; ++i) {
    const NodeId u = static_cast<NodeId>(i % 12);
    const NodeId v = static_cast<NodeId>((i + 1 + i % 5) % 12);
    if (u == v) continue;
    edges.push_back({u, v, static_cast<Timestamp>(i), 1.0f});
  }
  return edges;
}

TEST(TemporalSplitTest, NegativesAreNonEdges) {
  auto g = TemporalGraph::FromEdges(RecurringEdges(100));
  ASSERT_TRUE(g.ok());
  Rng rng(2);
  auto split = MakeTemporalSplit(g.value(), {}, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split.value().test_negative.size(),
            split.value().test_positive.size());
  for (const auto& [u, v] : split.value().test_negative) {
    EXPECT_NE(u, v);
    EXPECT_FALSE(g.value().HasEdge(u, v));
  }
}

TEST(TemporalSplitTest, DropUnseenEndpointsFiltersTestEdges) {
  // Last edge introduces a brand-new pair of nodes.
  std::vector<TemporalEdge> edges = RecurringEdges(20);
  edges.push_back({30, 31, 100.0, 1.0f});
  auto g = TemporalGraph::FromEdges(edges, /*num_nodes=*/32);
  ASSERT_TRUE(g.ok());
  Rng rng(3);
  TemporalSplitOptions opt;
  opt.holdout_fraction = 0.2;
  opt.drop_unseen_endpoints = true;
  auto split = MakeTemporalSplit(g.value(), opt, &rng);
  ASSERT_TRUE(split.ok());
  for (const auto& e : split.value().test_positive) {
    EXPECT_GT(split.value().train.Degree(e.src), 0u);
    EXPECT_GT(split.value().train.Degree(e.dst), 0u);
  }
}

TEST(TemporalSplitTest, InvalidFractionRejected) {
  auto g = TemporalGraph::FromEdges(ChainEdges(10));
  ASSERT_TRUE(g.ok());
  Rng rng(4);
  TemporalSplitOptions opt;
  opt.holdout_fraction = 1.5;
  EXPECT_FALSE(MakeTemporalSplit(g.value(), opt, &rng).ok());
}

TEST(TemporalSplitTest, TooSmallGraphRejected) {
  auto g = TemporalGraph::FromEdges(ChainEdges(3));
  ASSERT_TRUE(g.ok());
  Rng rng(5);
  TemporalSplitOptions opt;
  opt.holdout_fraction = 0.01;  // holdout rounds to zero.
  EXPECT_FALSE(MakeTemporalSplit(g.value(), opt, &rng).ok());
}

// ------------------------------------------------- NoiseDistribution

TEST(NoiseDistributionTest, SamplesProportionalToDegreePower) {
  // Star: node 0 has degree 4, leaves have degree 1.
  std::vector<TemporalEdge> edges;
  for (NodeId v = 1; v <= 4; ++v) {
    edges.push_back({0, v, static_cast<Timestamp>(v), 1.0f});
  }
  auto g = TemporalGraph::FromEdges(edges);
  ASSERT_TRUE(g.ok());
  NoiseDistribution noise(g.value(), 0.75);
  Rng rng(6);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[noise.Sample(&rng)];
  const double w0 = std::pow(4.0, 0.75);
  const double total = w0 + 4.0;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), w0 / total, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 1.0 / total, 0.01);
}

TEST(NoiseDistributionTest, IsolatedNodesNeverSampled) {
  auto g = TemporalGraph::FromEdges({{0, 1, 1.0, 1.0f}}, /*num_nodes=*/5);
  ASSERT_TRUE(g.ok());
  NoiseDistribution noise(g.value());
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const NodeId v = noise.Sample(&rng);
    EXPECT_LE(v, 1u);
  }
}

TEST(NoiseDistributionTest, SampleExcludingAvoidsListedNodes) {
  auto g = TemporalGraph::FromEdges(ChainEdges(10));
  ASSERT_TRUE(g.ok());
  NoiseDistribution noise(g.value());
  Rng rng(8);
  const NodeId exclude[] = {0, 1, 2};
  for (int i = 0; i < 2000; ++i) {
    const NodeId v = noise.SampleExcluding(exclude, &rng);
    EXPECT_GT(v, 2u);
  }
}

}  // namespace
}  // namespace ehna
