// Unit tests for the reduced-precision serving tier (nn/quant.h,
// DESIGN.md §14): bf16 round-to-nearest-even, per-row symmetric int8
// quantization, exact size accounting, determinism of re-quantization, the
// quantized score combinations in eval/knn.cc (Score vs blocked ScoreBlock
// bitwise, query self-quantization), the exact-scan + fp32 re-rank path,
// and the quantized IVF query. Everything here is ISA-independent by the
// kernel contract; the cross-ISA bitwise checks live in
// tests/kernels_isa_test.cc.

#include <bit>
#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include "eval/ann.h"
#include "eval/knn.h"
#include "gtest/gtest.h"
#include "nn/quant.h"
#include "util/rng.h"

namespace ehna {
namespace {

Tensor RandomMatrix(int64_t n, int64_t d, uint64_t seed, double lo = -1.0,
                    double hi = 1.0) {
  Rng rng(seed);
  Tensor m(n, d);
  for (int64_t i = 0; i < m.numel(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return m;
}

// --------------------------------------------------------------- bf16

TEST(Bf16, ExactValuesRoundTrip) {
  // Values already representable in bf16 survive the round trip bit-exact.
  for (const float f : {0.0f, 1.0f, -1.0f, 0.5f, -2.0f, 65280.0f}) {
    EXPECT_EQ(F32FromBf16(Bf16FromF32(f)), f);
  }
  // Sign of zero is preserved.
  EXPECT_EQ(std::bit_cast<uint32_t>(F32FromBf16(Bf16FromF32(-0.0f))),
            0x80000000u);
}

TEST(Bf16, RoundsToNearestEven) {
  // Halfway cases: mantissa tail exactly 0x8000 rounds to the even kept
  // lsb — down when the kept lsb is 0, up when it is 1.
  const float down = std::bit_cast<float>(0x3F808000u);  // kept lsb 0
  EXPECT_EQ(Bf16FromF32(down), 0x3F80u);
  const float up = std::bit_cast<float>(0x3F818000u);  // kept lsb 1
  EXPECT_EQ(Bf16FromF32(up), 0x3F82u);
  // Just above/below halfway round to nearest.
  EXPECT_EQ(Bf16FromF32(std::bit_cast<float>(0x3F808001u)), 0x3F81u);
  EXPECT_EQ(Bf16FromF32(std::bit_cast<float>(0x3F807FFFu)), 0x3F80u);
}

TEST(Bf16, SpecialsStaySpecial) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(F32FromBf16(Bf16FromF32(inf)), inf);
  EXPECT_EQ(F32FromBf16(Bf16FromF32(-inf)), -inf);
  EXPECT_TRUE(std::isnan(F32FromBf16(
      Bf16FromF32(std::numeric_limits<float>::quiet_NaN()))));
  // A NaN whose payload would carry out of the kept bits must stay a NaN,
  // not round into an infinity encoding.
  const float sig_nan = std::bit_cast<float>(0x7F80FFFFu);
  EXPECT_TRUE(std::isnan(F32FromBf16(Bf16FromF32(sig_nan))));
  // Rounding error of the truncation is bounded by half a kept ulp.
  Rng rng(5);
  for (int t = 0; t < 2000; ++t) {
    const float f = static_cast<float>(rng.Uniform(-8.0, 8.0));
    const float w = F32FromBf16(Bf16FromF32(f));
    EXPECT_LE(std::fabs(w - f), std::fabs(f) * (1.0f / 256.0f) + 1e-30f);
  }
}

// --------------------------------------------------------------- int8 rows

TEST(QuantizedMatrix, Int8RowSchemeAndAccounting) {
  Tensor m(2, 4);
  const float row0[4] = {1.0f, -0.5f, 0.25f, 0.0f};
  const float row1[4] = {0.0f, 0.0f, 0.0f, 0.0f};
  std::memcpy(m.Row(0), row0, sizeof(row0));
  std::memcpy(m.Row(1), row1, sizeof(row1));
  const QuantizedMatrix q =
      QuantizedMatrix::FromTensor(m, ServePrecision::kInt8);

  // scale = max-abs/127; codes are RNE of value/scale.
  EXPECT_FLOAT_EQ(q.scale(0), 1.0f / 127.0f);
  EXPECT_EQ(q.RowI8(0)[0], 127);
  EXPECT_EQ(q.RowI8(0)[1], -64);  // -63.5 rounds to even -64
  EXPECT_EQ(q.RowI8(0)[2], 32);   // 31.75 rounds to 32
  EXPECT_EQ(q.RowI8(0)[3], 0);
  EXPECT_EQ(q.sqnorm_i32(0), 127 * 127 + 64 * 64 + 32 * 32);
  // The all-zero row degenerates cleanly.
  EXPECT_EQ(q.scale(1), 0.0f);
  EXPECT_EQ(q.sqnorm_i32(1), 0);

  // Exact byte accounting: codes + fp32 scale + int32 sqnorm per row.
  EXPECT_EQ(q.bytes(), 2u * (4u + 4u + 4u));
}

TEST(QuantizedMatrix, FootprintRatioAtServingDim) {
  const Tensor m = RandomMatrix(100, 32, 7);
  const QuantizedMatrix i8 =
      QuantizedMatrix::FromTensor(m, ServePrecision::kInt8);
  const QuantizedMatrix b16 =
      QuantizedMatrix::FromTensor(m, ServePrecision::kBf16);
  const size_t fp32_bytes = static_cast<size_t>(m.numel()) * 4;
  // d=32: int8 is 40B/row vs 128B fp32 (3.2x); bf16 is 72B/row (~1.8x).
  EXPECT_GE(fp32_bytes, 3 * i8.bytes());
  EXPECT_GT(fp32_bytes, b16.bytes());
}

TEST(QuantizedMatrix, RequantizeIsPureAndDeterministic) {
  const Tensor m = RandomMatrix(64, 17, 11);
  QuantizedMatrix a = QuantizedMatrix::FromTensor(m, ServePrecision::kInt8);
  QuantizedMatrix b = QuantizedMatrix::FromTensor(m, ServePrecision::kInt8);
  ASSERT_EQ(a.rows(), b.rows());
  EXPECT_EQ(std::memcmp(a.DataI8(), b.DataI8(),
                        static_cast<size_t>(a.rows() * a.dim())),
            0);
  // Re-quantizing an unchanged row reproduces the stored bytes exactly.
  std::vector<int8_t> before(a.RowI8(3), a.RowI8(3) + a.dim());
  a.RequantizeRow(3, m.Row(3));
  EXPECT_EQ(std::memcmp(before.data(), a.RowI8(3),
                        static_cast<size_t>(a.dim())),
            0);
  // EnsureRows growth leaves existing rows untouched.
  const std::vector<int8_t> all(a.DataI8(),
                                a.DataI8() + a.rows() * a.dim());
  a.EnsureRows(80);
  EXPECT_EQ(a.rows(), 80);
  EXPECT_EQ(std::memcmp(all.data(), a.DataI8(), all.size()), 0);
}

TEST(QuantizedMatrix, ErrorBoundedByHalfStep) {
  const Tensor m = RandomMatrix(50, 33, 13, -3.0, 3.0);
  const QuantizedMatrix q =
      QuantizedMatrix::FromTensor(m, ServePrecision::kInt8);
  std::vector<float> deq(33);
  for (int64_t r = 0; r < m.rows(); ++r) {
    q.Dequantize(r, deq.data());
    for (int64_t j = 0; j < 33; ++j) {
      // RNE error is at most half a quantization step.
      EXPECT_LE(std::fabs(deq[j] - m.Row(r)[j]),
                0.5f * q.scale(r) + 1e-7f);
    }
  }
  const QuantErrorStats stats = q.ErrorStats(m);
  EXPECT_GT(stats.max_abs, 0.0);
  EXPECT_LE(stats.mean_abs, stats.max_abs);
  EXPECT_LE(stats.max_abs, 0.5 * (3.0 / 127.0) + 1e-6);
}

TEST(ParseServePrecision, RoundTripsAndRejects) {
  for (const ServePrecision p : {ServePrecision::kFp32, ServePrecision::kInt8,
                                 ServePrecision::kBf16}) {
    auto parsed = ParseServePrecision(ServePrecisionName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), p);
  }
  EXPECT_FALSE(ParseServePrecision("fp16").ok());
}

// ------------------------------------------------------------ scoring

class QuantScoringTest : public ::testing::TestWithParam<ServePrecision> {};

TEST_P(QuantScoringTest, ScoreMatchesScoreBlockBitwise) {
  const Tensor m = RandomMatrix(300, 23, 17);
  const QuantizedMatrix q = QuantizedMatrix::FromTensor(m, GetParam());
  for (const Similarity sim :
       {Similarity::kDotProduct, Similarity::kCosine,
        Similarity::kNegativeEuclidean}) {
    QuantizedScorer scorer(&q, m.Row(5), sim);
    std::vector<double> block(static_cast<size_t>(q.rows()));
    scorer.ScoreBlock(0, q.rows(), block.data());
    for (int64_t r = 0; r < q.rows(); ++r) {
      const double s = scorer.Score(r);
      const double b = block[static_cast<size_t>(r)];
      EXPECT_EQ(std::memcmp(&s, &b, sizeof(double)), 0)
          << "row " << r << " sim " << static_cast<int>(sim);
    }
  }
}

TEST_P(QuantScoringTest, QuantizedScoreTracksFp32Score) {
  const Tensor m = RandomMatrix(200, 32, 19);
  const QuantizedMatrix q = QuantizedMatrix::FromTensor(m, GetParam());
  for (const Similarity sim :
       {Similarity::kDotProduct, Similarity::kCosine,
        Similarity::kNegativeEuclidean}) {
    QuantizedScorer scorer(&q, m.Row(0), sim);
    for (int64_t r = 1; r < 50; ++r) {
      const double exact = SimilarityScore(m.Row(0), m.Row(r), 32, sim);
      // Per-element error <= scale/2 ~ 1/254 of the row max-abs; over a
      // 32-dim dot of O(1) values that stays well inside 0.5.
      EXPECT_NEAR(scorer.Score(r), exact, 0.5);
    }
  }
}

TEST(QuantScoring, NodeQueryReproducesItsStoredCodes) {
  const Tensor m = RandomMatrix(40, 19, 23);
  const QuantizedMatrix q =
      QuantizedMatrix::FromTensor(m, ServePrecision::kInt8);
  // Quantizing a node's fp32 row as a query is the same pure function that
  // produced its stored row, so codes/scale/sqnorm agree exactly.
  const QuantizedQuery pq =
      PrepareQuantizedQuery(m.Row(7), 19, ServePrecision::kInt8);
  EXPECT_EQ(std::memcmp(pq.i8.data(), q.RowI8(7), 19), 0);
  const float qs = pq.scale;
  const float rs = q.scale(7);
  EXPECT_EQ(std::memcmp(&qs, &rs, sizeof(float)), 0);
  EXPECT_EQ(pq.sqnorm_i32, q.sqnorm_i32(7));
}

TEST_P(QuantScoringTest, ExactScanRerankReturnsOracleScores) {
  const Tensor m = RandomMatrix(500, 24, 29);
  const QuantizedMatrix q = QuantizedMatrix::FromTensor(m, GetParam());
  const NodeId query = 3;
  const size_t k = 10;
  auto quant_or = TopKNeighborsQuantized(m, q, query, k,
                                         Similarity::kNegativeEuclidean);
  ASSERT_TRUE(quant_or.ok());
  auto exact_or = TopKNeighbors(m, query, k, Similarity::kNegativeEuclidean);
  ASSERT_TRUE(exact_or.ok());
  const auto& quant = quant_or.value();
  const auto& exact = exact_or.value();
  ASSERT_EQ(quant.size(), k);

  // Returned scores are the exact fp32 oracle's, not quantized values.
  for (const Neighbor& nb : quant) {
    EXPECT_EQ(nb.score, SimilarityScore(m.Row(query), m.Row(nb.node), 24,
                                        Similarity::kNegativeEuclidean));
  }
  // Descending, and high recall vs the oracle on this easy distribution.
  for (size_t i = 1; i < quant.size(); ++i) {
    EXPECT_GE(quant[i - 1].score, quant[i].score);
  }
  std::set<NodeId> truth;
  for (const Neighbor& nb : exact) truth.insert(nb.node);
  size_t hits = 0;
  for (const Neighbor& nb : quant) hits += truth.count(nb.node);
  EXPECT_GE(hits, k - 1);
}

TEST_P(QuantScoringTest, IvfQuantizedQueryMatchesSemantics) {
  const Tensor m = RandomMatrix(600, 16, 31);
  const QuantizedMatrix q = QuantizedMatrix::FromTensor(m, GetParam());
  IvfFlatOptions opt;
  opt.num_lists = 16;
  opt.nprobe = 16;  // probe everything: candidate set == full matrix.
  auto index_or = IvfFlatIndex::Build(m, opt);
  ASSERT_TRUE(index_or.ok());
  const IvfFlatIndex& index = index_or.value();

  const NodeId node = 11;
  auto quant_or = index.QueryNodeQuantized(q, node, 5);
  ASSERT_TRUE(quant_or.ok());
  auto exact_or = TopKNeighbors(m, node, 5, Similarity::kNegativeEuclidean);
  ASSERT_TRUE(exact_or.ok());
  ASSERT_EQ(quant_or.value().size(), 5u);
  // All-probes quantized query with fp32 re-rank: top-1 must agree with
  // the oracle, and every returned score is the exact fp32 score.
  EXPECT_EQ(quant_or.value()[0].node, exact_or.value()[0].node);
  for (const Neighbor& nb : quant_or.value()) {
    EXPECT_EQ(nb.score, SimilarityScore(m.Row(node), m.Row(nb.node), 16,
                                        Similarity::kNegativeEuclidean));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, QuantScoringTest,
                         ::testing::Values(ServePrecision::kInt8,
                                           ServePrecision::kBf16),
                         [](const auto& info) {
                           return std::string(ServePrecisionName(info.param));
                         });

}  // namespace
}  // namespace ehna
