// Differential tests for the flat-CSR TemporalGraph (ISSUE 8 tentpole):
// randomized edge multisets — directed and undirected, duplicate
// timestamps, isolated nodes, skewed degrees, repeated node pairs — are fed
// both to the production CSR builder and to a deliberately naive test-only
// reference (per-node vectors, linear scans). Every observable —
// Neighbors, NeighborsBefore, Degree, HasEdge, edges() — must agree on
// every node and cutoff. On top of that, the memory-mapped construction
// path (FromEdgeLog) must be indistinguishable from the in-RAM path
// (FromEdges): identical edge lists and adjacency observations, bitwise
// identical temporal walks under a fixed seed at one and four threads, and
// byte-identical training checkpoints.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/model.h"
#include "graph/edge_log.h"
#include "graph/generators/generators.h"
#include "graph/temporal_graph.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "walk/temporal_walk.h"

namespace ehna {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------- reference oracle

/// The simplest correct temporal adjacency: one vector per node, built by a
/// stable time sort and chronological append. No offsets, no binary
/// search — everything the CSR layout optimizes away, kept here as the
/// ground truth it must match.
struct ReferenceGraph {
  std::vector<TemporalEdge> edges;                // time-sorted.
  std::vector<std::vector<AdjEntry>> adjacency;   // per node, time order.
  bool directed = false;

  static ReferenceGraph Build(std::vector<TemporalEdge> input,
                              NodeId num_nodes, bool directed) {
    ReferenceGraph ref;
    ref.directed = directed;
    std::stable_sort(input.begin(), input.end(),
                     [](const TemporalEdge& a, const TemporalEdge& b) {
                       return a.time < b.time;
                     });
    ref.edges = std::move(input);
    ref.adjacency.resize(num_nodes);
    for (EdgeId id = 0; id < ref.edges.size(); ++id) {
      const TemporalEdge& e = ref.edges[id];
      ref.adjacency[e.src].push_back(AdjEntry{e.dst, e.time, e.weight, id});
      if (!directed) {
        ref.adjacency[e.dst].push_back(AdjEntry{e.src, e.time, e.weight, id});
      }
    }
    return ref;
  }

  std::vector<AdjEntry> NeighborsBefore(NodeId node, Timestamp cutoff) const {
    std::vector<AdjEntry> out;
    for (const AdjEntry& a : adjacency[node]) {
      if (a.time <= cutoff) out.push_back(a);
    }
    return out;
  }

  bool HasEdge(NodeId u, NodeId v) const {
    if (u >= adjacency.size()) return false;
    for (const AdjEntry& a : adjacency[u]) {
      if (a.neighbor == v) return true;
    }
    return false;
  }
};

bool SameEntry(const AdjEntry& a, const AdjEntry& b) {
  return a.neighbor == b.neighbor && a.time == b.time &&
         a.weight == b.weight && a.edge_id == b.edge_id;
}

/// One randomized edge-set configuration of the differential sweep.
struct EdgeSetConfig {
  std::string name;
  NodeId num_nodes = 0;
  size_t num_edges = 0;
  bool directed = false;
  /// Timestamps are drawn from `distinct_times` buckets; small values force
  /// heavy duplicate-timestamp runs (the stable-sort tie cases).
  size_t distinct_times = 0;
  /// Endpoints come from [0, active_nodes); nodes past that stay isolated.
  NodeId active_nodes = 0;
  /// Skew endpoint draws toward low ids (cubed-uniform), producing hub
  /// nodes with degrees hundreds of times the median.
  bool skewed = false;
};

std::vector<TemporalEdge> RandomEdges(const EdgeSetConfig& cfg, Rng* rng) {
  std::vector<TemporalEdge> edges;
  edges.reserve(cfg.num_edges);
  auto draw_node = [&]() -> NodeId {
    if (cfg.skewed) {
      const double u = rng->Uniform();
      return static_cast<NodeId>(u * u * u * cfg.active_nodes);
    }
    return static_cast<NodeId>(rng->UniformInt(cfg.active_nodes));
  };
  while (edges.size() < cfg.num_edges) {
    const NodeId src = draw_node();
    const NodeId dst = draw_node();
    if (src == dst) continue;  // graph rejects self-loops by contract.
    const Timestamp t =
        static_cast<Timestamp>(rng->UniformInt(cfg.distinct_times)) * 0.5;
    const float w = static_cast<float>(rng->UniformInt(1, 8)) * 0.25f;
    edges.push_back(TemporalEdge{src, dst, t, w});
  }
  return edges;
}

std::vector<EdgeSetConfig> SweepConfigs() {
  return {
      {"undirected_dense_ties", 24, 600, false, 5, 24, false},
      {"directed_dense_ties", 24, 600, true, 5, 24, false},
      {"undirected_isolated", 64, 300, false, 40, 16, false},
      {"directed_isolated", 64, 300, true, 40, 16, false},
      {"undirected_skewed", 200, 2000, false, 500, 200, true},
      {"directed_skewed", 200, 2000, true, 500, 200, true},
      {"tiny_multigraph", 4, 120, false, 3, 4, false},
  };
}

class CsrDifferentialTest : public ::testing::TestWithParam<EdgeSetConfig> {};

TEST_P(CsrDifferentialTest, AllObservationsMatchReference) {
  const EdgeSetConfig cfg = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed * 7919);
    const auto input = RandomEdges(cfg, &rng);
    const ReferenceGraph ref =
        ReferenceGraph::Build(input, cfg.num_nodes, cfg.directed);
    auto built = TemporalGraph::FromEdges(input, cfg.num_nodes, cfg.directed);
    ASSERT_TRUE(built.ok()) << built.status();
    const TemporalGraph& g = built.value();

    ASSERT_EQ(g.num_nodes(), cfg.num_nodes);
    ASSERT_EQ(g.num_edges(), ref.edges.size());
    EXPECT_EQ(g.directed(), cfg.directed);

    // edges(): same multiset in the same (stable time-sorted) order.
    for (size_t i = 0; i < ref.edges.size(); ++i) {
      ASSERT_EQ(g.edges()[i], ref.edges[i]) << "edge " << i;
    }

    std::vector<Timestamp> cutoffs = {-1.0, 0.0, 0.25, 1.0,
                                      g.max_time(), g.max_time() + 1.0};
    for (int i = 0; i < 8; ++i) {
      cutoffs.push_back(rng.Uniform(g.min_time() - 0.5, g.max_time() + 0.5));
    }

    for (NodeId v = 0; v < cfg.num_nodes; ++v) {
      const auto got = g.Neighbors(v);
      const auto& want = ref.adjacency[v];
      ASSERT_EQ(g.Degree(v), want.size()) << "node " << v;
      ASSERT_EQ(got.size(), want.size()) << "node " << v;
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_TRUE(SameEntry(got[i], want[i]))
            << "node " << v << " slot " << i;
      }
      for (const Timestamp cutoff : cutoffs) {
        const auto got_before = g.NeighborsBefore(v, cutoff);
        const auto want_before = ref.NeighborsBefore(v, cutoff);
        ASSERT_EQ(got_before.size(), want_before.size())
            << "node " << v << " cutoff " << cutoff;
        for (size_t i = 0; i < want_before.size(); ++i) {
          ASSERT_TRUE(SameEntry(got_before[i], want_before[i]))
              << "node " << v << " cutoff " << cutoff << " slot " << i;
        }
      }
      for (NodeId u = 0; u < cfg.num_nodes; ++u) {
        ASSERT_EQ(g.HasEdge(v, u), ref.HasEdge(v, u))
            << "pair (" << v << ", " << u << ")";
      }
    }
    // Out-of-range sources never have edges (walk code relies on this).
    EXPECT_FALSE(g.HasEdge(cfg.num_nodes, 0));
    EXPECT_FALSE(g.HasEdge(kInvalidNode, 0));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CsrDifferentialTest,
                         ::testing::ValuesIn(SweepConfigs()),
                         [](const auto& info) { return info.param.name; });

// ----------------------------------------------- FromEdges vs FromEdgeLog

std::string TempLogPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

/// Builds the same random graph through both construction paths: sorted
/// in-RAM vector -> FromEdges, and sorted vector -> edge log -> mmap ->
/// FromEdgeLog.
struct GraphPair {
  TemporalGraph from_edges;
  TemporalGraph from_log;
};

GraphPair BuildBothPaths(const EdgeSetConfig& cfg, uint64_t seed,
                         const std::string& log_name) {
  Rng rng(seed);
  auto input = RandomEdges(cfg, &rng);
  // The log requires time-sorted appends; FromEdges stable-sorts anyway, so
  // pre-sorting feeds both paths the identical sequence.
  std::stable_sort(input.begin(), input.end(),
                   [](const TemporalEdge& a, const TemporalEdge& b) {
                     return a.time < b.time;
                   });
  const std::string path = TempLogPath(log_name);
  EHNA_CHECK(WriteEdgeLog(path, input, cfg.num_nodes, cfg.directed).ok());

  auto a = TemporalGraph::FromEdges(std::move(input), cfg.num_nodes,
                                    cfg.directed);
  auto b = TemporalGraph::FromEdgeLog(path);
  EHNA_CHECK(a.ok());
  EHNA_CHECK(b.ok());
  fs::remove(path);
  return GraphPair{std::move(a).value(), std::move(b).value()};
}

TEST(CsrEdgeLogEquivalenceTest, BothConstructionPathsObserveIdentically) {
  const EdgeSetConfig cfg = {"paths", 100, 1500, false, 40, 80, true};
  auto [ram, mapped] = BuildBothPaths(cfg, 17, "ehna_csr_paths.ehnl");

  ASSERT_EQ(ram.num_nodes(), mapped.num_nodes());
  ASSERT_EQ(ram.num_edges(), mapped.num_edges());
  ASSERT_EQ(ram.directed(), mapped.directed());
  for (size_t i = 0; i < ram.num_edges(); ++i) {
    ASSERT_EQ(ram.edges()[i], mapped.edges()[i]) << "edge " << i;
  }
  for (NodeId v = 0; v < ram.num_nodes(); ++v) {
    const auto na = ram.Neighbors(v);
    const auto nb = mapped.Neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "node " << v;
    for (size_t i = 0; i < na.size(); ++i) {
      ASSERT_TRUE(SameEntry(na[i], nb[i])) << "node " << v << " slot " << i;
    }
  }
  EXPECT_EQ(ram.min_time(), mapped.min_time());
  EXPECT_EQ(ram.max_time(), mapped.max_time());
}

std::vector<TemporalWalkSampler::Anchor> WalkAnchors(const TemporalGraph& g,
                                                     size_t count) {
  std::vector<TemporalWalkSampler::Anchor> anchors;
  Rng rng(123);
  for (size_t i = 0; i < count; ++i) {
    anchors.push_back({static_cast<NodeId>(rng.UniformInt(g.num_nodes())),
                       rng.Uniform(g.min_time(), g.max_time() + 1.0)});
  }
  return anchors;
}

TEST(CsrEdgeLogEquivalenceTest, WalksBitwiseIdenticalAcrossPathsAndThreads) {
  const EdgeSetConfig cfg = {"walks", 120, 2000, false, 60, 120, true};
  auto [ram, mapped] = BuildBothPaths(cfg, 29, "ehna_csr_walks.ehnl");

  TemporalWalkConfig wcfg;
  wcfg.walk_length = 8;
  wcfg.num_walks = 4;
  wcfg.p = 2.0;
  wcfg.q = 0.5;
  TemporalWalkSampler ram_sampler(&ram, wcfg);
  TemporalWalkSampler mapped_sampler(&mapped, wcfg);
  const auto anchors = WalkAnchors(ram, 64);

  const auto serial = ram_sampler.SampleWalksBatch(anchors, 77, nullptr);
  ASSERT_EQ(serial.size(), anchors.size());
  size_t steps = 0;
  for (const auto& per_anchor : serial) {
    for (const auto& walk : per_anchor) steps += walk.size();
  }
  ASSERT_GT(steps, anchors.size()) << "walks never left their start nodes; "
                                      "the determinism check would be vacuous";

  // Same seed, mmap-built graph, four threads: Walk has operator==, so
  // equality here is step-for-step bitwise agreement.
  ThreadPool pool(4);
  const auto threaded = mapped_sampler.SampleWalksBatch(anchors, 77, &pool);
  EXPECT_EQ(serial, threaded);

  // And the single-thread mmap run matches too (associativity sanity).
  EXPECT_EQ(serial, mapped_sampler.SampleWalksBatch(anchors, 77, nullptr));
}

TEST(CsrEdgeLogEquivalenceTest, TrainingCheckpointsByteIdenticalAcrossPaths) {
  // End-to-end: a short training run over the mmap-built graph must leave
  // the model in the bit-for-bit state of the in-RAM-built run. The
  // checkpoint serializes embeddings, LSTM/attention parameters, optimizer
  // state, and RNG state, so byte equality is the strongest available
  // statement that the CSR swap did not perturb the training path.
  auto ds = MakePaperDataset(PaperDataset::kDblp, 0.02, 9);
  ASSERT_TRUE(ds.ok());
  const TemporalGraph& ram = ds.value();

  const std::string log = TempLogPath("ehna_csr_train.ehnl");
  ASSERT_TRUE(
      WriteEdgeLog(log, ram.edges(), ram.num_nodes(), ram.directed()).ok());
  auto mapped = TemporalGraph::FromEdgeLog(log);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  fs::remove(log);

  EhnaConfig cfg;
  cfg.dim = 4;
  cfg.num_walks = 2;
  cfg.walk_length = 3;
  cfg.num_negatives = 1;
  cfg.batch_edges = 8;
  cfg.lstm_layers = 1;
  cfg.epochs = 2;
  cfg.max_edges_per_epoch = 24;
  cfg.learning_rate = 5e-3f;
  cfg.seed = 3;

  const fs::path dir = fs::temp_directory_path() / "ehna_csr_train_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path_a = (dir / "ram.ehnc").string();
  const std::string path_b = (dir / "mapped.ehnc").string();

  EhnaModel model_a(&ram, cfg);
  model_a.Train(cfg.epochs);
  ASSERT_TRUE(model_a.SaveCheckpoint(path_a).ok());

  EhnaModel model_b(&mapped.value(), cfg);
  model_b.Train(cfg.epochs);
  ASSERT_TRUE(model_b.SaveCheckpoint(path_b).ok());

  auto read_bytes = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string bytes_a = read_bytes(path_a);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, read_bytes(path_b));
  fs::remove_all(dir);
}

// ------------------------------------------------------ edge-count ceiling

TEST(EdgeCountLimitTest, BoundaryExactlyAtThirtyTwoBits) {
  EXPECT_TRUE(TemporalGraph::ValidateEdgeCount(0).ok());
  EXPECT_TRUE(TemporalGraph::ValidateEdgeCount(TemporalGraph::kMaxEdges).ok());

  const Status over =
      TemporalGraph::ValidateEdgeCount(TemporalGraph::kMaxEdges + 1);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.code(), StatusCode::kInvalidArgument);
  // The message names the limit and a remediation, not just "too big".
  EXPECT_NE(over.message().find("4294967295"), std::string::npos);
  EXPECT_NE(over.message().find("shard"), std::string::npos);

  EXPECT_FALSE(
      TemporalGraph::ValidateEdgeCount(uint64_t{1} << 40).ok());
}

TEST(EdgeCountLimitTest, ScaleGeneratorRefusesOverflowingRequests) {
  ScaleGraphOptions opt;
  opt.num_edges = TemporalGraph::kMaxEdges + 1;
  const Status st = StreamScaleGraph(
      opt, [](const TemporalEdge&) { return Status::OK(); });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("32-bit EdgeId limit"), std::string::npos);
}

// ----------------------------------------------------- scale-generator shape

TEST(ScaleGraphTest, GeneratorProducesValidConnectedishGraph) {
  ScaleGraphOptions opt;
  opt.num_nodes = 5000;
  opt.num_edges = 50'000;
  opt.seed = 4;
  auto g = MakeScaleGraph(opt);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g.value().num_nodes(), opt.num_nodes);
  EXPECT_EQ(g.value().num_edges(), opt.num_edges);

  // Timestamps are the event index: strictly increasing, spanning the run.
  EXPECT_EQ(g.value().min_time(), 0.0);
  EXPECT_EQ(g.value().max_time(),
            static_cast<Timestamp>(opt.num_edges - 1));

  // The power-law popularity draw concentrates degree on low ids: the top
  // node should dwarf the median, or the generator lost its skew.
  auto degrees = g.value().Degrees();
  std::sort(degrees.begin(), degrees.end());
  EXPECT_GT(degrees.back(), 20 * std::max<size_t>(degrees[degrees.size() / 2], 1));

  // Determinism: same options, same graph.
  auto g2 = MakeScaleGraph(opt);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g.value().edges(), g2.value().edges());
}

}  // namespace
}  // namespace ehna
