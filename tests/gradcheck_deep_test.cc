// Finite-difference gradient checks through the composite modules (LSTM
// cell, stacked LSTM with masks, BatchNorm in both statistics modes, and
// the full EHNA aggregation graph down to individual embedding entries).
// These catch chain-rule mistakes that per-op checks cannot.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/aggregator.h"
#include "graph/temporal_graph.h"
#include "nn/batchnorm.h"
#include "nn/init.h"
#include "nn/lstm.h"
#include "nn/ops.h"

namespace ehna {
namespace {

/// Central finite difference of `eval` w.r.t. one tensor element.
float NumericGrad(float* slot, const std::function<float()>& eval,
                  float eps = 1e-3f) {
  const float orig = *slot;
  *slot = orig + eps;
  const float up = eval();
  *slot = orig - eps;
  const float down = eval();
  *slot = orig;
  return (up - down) / (2.0f * eps);
}

TEST(DeepGradCheckTest, LstmCellInputAndWeights) {
  Rng rng(1);
  LstmCell cell(3, 2, &rng);
  Tensor x0(2, 3);
  UniformInit(&x0, -1, 1, &rng);

  Var x = Var::Leaf(x0, /*requires_grad=*/true);
  auto forward = [&](const Var& input) {
    auto state = cell.InitialState(2);
    auto next = cell.Forward(input, state);
    next = cell.Forward(input, next);  // two steps reuse the weights.
    return ag::SumSquares(next.h);
  };
  Var loss = forward(x);
  Backward(loss);

  // Check input gradient entries.
  for (int64_t i = 0; i < x0.numel(); ++i) {
    const float numeric = NumericGrad(
        x.mutable_value().data() + i,
        [&] { return forward(x).value()[0]; });
    EXPECT_NEAR(x.grad().data()[i], numeric,
                2e-2f + 0.05f * std::abs(numeric))
        << "input element " << i;
  }
  // Check a handful of weight entries on each parameter.
  for (Var& p : cell.Parameters()) {
    ASSERT_GT(p.grad().numel(), 0);
    for (int64_t i = 0; i < std::min<int64_t>(4, p.value().numel()); ++i) {
      const float numeric = NumericGrad(
          p.mutable_value().data() + i,
          [&] { return forward(x).value()[0]; });
      EXPECT_NEAR(p.grad().data()[i], numeric,
                  2e-2f + 0.05f * std::abs(numeric));
    }
  }
}

TEST(DeepGradCheckTest, StackedLstmWithMasks) {
  Rng rng(2);
  StackedLstm lstm(2, 2, 2, &rng);
  Tensor in0(2, 2), in1(2, 2);
  UniformInit(&in0, -1, 1, &rng);
  UniformInit(&in1, -1, 1, &rng);
  std::vector<Tensor> masks{Tensor::FromVector({1.0f, 1.0f}),
                            Tensor::FromVector({1.0f, 0.0f})};

  Var a = Var::Leaf(in0, true);
  Var b = Var::Leaf(in1, true);
  auto forward = [&] {
    return ag::SumSquares(lstm.Forward({a, b}, masks));
  };
  Backward(forward());

  for (int64_t i = 0; i < in0.numel(); ++i) {
    const float numeric = NumericGrad(a.mutable_value().data() + i,
                                      [&] { return forward().value()[0]; });
    EXPECT_NEAR(a.grad().data()[i], numeric,
                2e-2f + 0.05f * std::abs(numeric));
  }
  // Step-1 gradients of the masked-out row (batch row 1) must be zero.
  const Tensor& gb = b.grad();
  EXPECT_NEAR(gb.at(1, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(gb.at(1, 1), 0.0f, 1e-6f);
}

TEST(DeepGradCheckTest, BatchNormTrainingStatistics) {
  // Finite differences through the full batch-stat backward (mean and
  // variance depend on x). A fresh BN instance per evaluation keeps the
  // running-stat side effects from contaminating the numeric baseline.
  Rng rng(3);
  Tensor x0(5, 2);
  UniformInit(&x0, -1, 1, &rng);

  Var x = Var::Leaf(x0, true);
  BatchNorm1d bn(2);
  Var loss = ag::SumSquares(
      ag::Mul(bn.Forward(x, true), bn.Forward(x, true)));
  (void)loss;  // the double-use above would double-update stats; rebuild:

  BatchNorm1d bn2(2);
  Var y = bn2.Forward(x, true);
  // Make the loss depend non-uniformly on rows so dmean/dvar terms matter.
  Tensor weights(5, 2);
  for (int64_t i = 0; i < weights.numel(); ++i) {
    weights.data()[i] = 0.3f + 0.2f * static_cast<float>(i % 3);
  }
  Var loss2 = ag::Sum(ag::Mul(y, ag::Mul(y, Var::Leaf(weights))));
  Backward(loss2);

  auto eval = [&] {
    BatchNorm1d fresh(2);
    Var yy = fresh.Forward(x, true);
    return ag::Sum(ag::Mul(yy, ag::Mul(yy, Var::Leaf(weights)))).value()[0];
  };
  for (int64_t i = 0; i < x0.numel(); ++i) {
    const float numeric =
        NumericGrad(x.mutable_value().data() + i, eval);
    EXPECT_NEAR(x.grad().data()[i], numeric,
                3e-2f + 0.05f * std::abs(numeric))
        << "element " << i;
  }
}

TEST(DeepGradCheckTest, AggregatorEmbeddingGradients) {
  // End-to-end: d(||z_x||-ish loss)/d(embedding entries) through walks,
  // attention, two LSTMs, BNs and the fuse projection.
  auto made = TemporalGraph::FromEdges({{0, 1, 1.0, 1.0f},
                                        {1, 2, 2.0, 1.0f},
                                        {0, 2, 3.0, 1.0f},
                                        {2, 3, 4.0, 1.0f},
                                        {0, 3, 5.0, 1.0f}});
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();

  EhnaConfig cfg;
  cfg.dim = 4;
  cfg.num_walks = 2;
  cfg.walk_length = 3;
  cfg.seed = 4;

  Rng init_rng(5);
  Embedding emb(g.num_nodes(), cfg.dim, &init_rng);
  EhnaAggregator agg(&g, &emb, cfg, &init_rng);

  // A fixed probe direction makes the loss scalar and non-degenerate.
  Tensor probe(cfg.dim);
  Rng probe_rng(6);
  UniformInit(&probe, -1.0f, 1.0f, &probe_rng);

  // The aggregation is stochastic; clone the RNG state per evaluation so
  // forward passes are identical across finite-difference probes.
  auto eval = [&](Rng rng_state) {
    Var z = agg.Aggregate(0, 6.0, /*training=*/false, &rng_state);
    const float value = ag::Dot(z, Var::Leaf(probe)).value()[0];
    emb.ClearGradients();
    return value;
  };

  Rng walk_rng(7);
  Rng walk_rng_copy = walk_rng;
  Var z = agg.Aggregate(0, 6.0, /*training=*/false, &walk_rng);
  Var loss = ag::Dot(z, Var::Leaf(probe));
  Backward(loss);
  ASSERT_GT(emb.num_pending_rows(), 0u);

  // Compare the analytic sparse gradient of node 0's first two entries with
  // finite differences over the table.
  // Snapshot the analytic grads before clearing.
  struct Entry {
    int64_t row;
    int64_t col;
    float analytic;
  };
  std::vector<Entry> entries;
  {
    // Pull two touched entries out via re-running backward bookkeeping:
    // we read from the map through ApplySgd-free access: recompute by
    // applying SGD with lr 0 is a no-op, so instead copy via internals:
    // (num_pending_rows > 0 checked above). We re-derive by finite diffs
    // for specific (row, col) pairs and match against an SGD(-1) trick:
  }
  // SGD with lr = -1 adds the gradient to the table; diff gives grads.
  Tensor before = emb.table();
  emb.ApplySgd(-1.0f);
  Tensor after = emb.table();
  for (int64_t row : {int64_t{0}, int64_t{1}, int64_t{2}}) {
    for (int64_t col = 0; col < 2; ++col) {
      const float analytic = after.at(row, col) - before.at(row, col);
      // Restore table entry.
      entries.push_back({row, col, analytic});
    }
  }
  // Restore the table to its pre-SGD state.
  for (int64_t r = 0; r < before.rows(); ++r) emb.SetRow(r, before.Row(r));

  for (const Entry& e : entries) {
    float* slot = const_cast<float*>(emb.RowData(e.row)) + e.col;
    const float orig = *slot;
    const float eps = 1e-3f;
    *slot = orig + eps;
    const float up = eval(walk_rng_copy);
    *slot = orig - eps;
    const float down = eval(walk_rng_copy);
    *slot = orig;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(e.analytic, numeric, 2e-2f + 0.05f * std::abs(numeric))
        << "embedding (" << e.row << ", " << e.col << ")";
  }
}

}  // namespace
}  // namespace ehna
