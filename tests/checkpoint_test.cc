// Fault-injection and resume-determinism tests for the checkpoint
// subsystem (ISSUE 2 tentpole): every truncation and every byte-level
// corruption of a snapshot must be rejected with a clean Status (no crash,
// no std::bad_alloc, model left untouched); a training run killed after a
// snapshot and resumed must produce bitwise-identical final embeddings to
// an uninterrupted run; and the directory manager must rotate snapshots
// and fall back to the last good one.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/model.h"
#include "graph/generators/generators.h"
#include "util/metrics.h"

namespace ehna {
namespace {

namespace fs = std::filesystem;

TemporalGraph TinyGraph() {
  auto g = MakePaperDataset(PaperDataset::kDblp, 0.02, 9);
  EHNA_CHECK(g.ok());
  return std::move(g).value();
}

/// Deliberately tiny: the fault-injection tests walk every byte of the
/// snapshot, so the snapshot should be a few tens of KB at most.
EhnaConfig TinyConfig() {
  EhnaConfig cfg;
  cfg.dim = 4;
  cfg.num_walks = 2;
  cfg.walk_length = 3;
  cfg.num_negatives = 1;
  cfg.batch_edges = 8;
  cfg.lstm_layers = 1;
  cfg.epochs = 4;
  cfg.max_edges_per_epoch = 24;
  cfg.learning_rate = 5e-3f;
  cfg.seed = 3;
  return cfg;
}

/// A scratch directory unique to the calling test, wiped on entry.
std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------------- round trip

TEST(CheckpointTest, SaveRestoreRoundTripsFullState) {
  TemporalGraph g = TinyGraph();
  const EhnaConfig cfg = TinyConfig();
  const std::string dir = FreshDir("ehna_ckpt_roundtrip");
  const std::string path = dir + "/snap.ehnc";

  EhnaModel model(&g, cfg);
  model.Train(2);
  ASSERT_TRUE(model.SaveCheckpoint(path).ok());

  EhnaModel restored(&g, cfg);
  ASSERT_TRUE(restored.RestoreCheckpoint(path).ok());
  EXPECT_EQ(restored.completed_epochs(), 2u);
  EXPECT_EQ(restored.embedding_table(), model.embedding_table());

  // A snapshot of the restored model is byte-identical to the original
  // snapshot: nothing was lost or reordered in the round trip.
  const std::string path2 = dir + "/snap2.ehnc";
  ASSERT_TRUE(restored.SaveCheckpoint(path2).ok());
  EXPECT_EQ(ReadBytes(path), ReadBytes(path2));
  fs::remove_all(dir);
}

TEST(CheckpointTest, RejectsMismatchedModelFingerprint) {
  TemporalGraph g = TinyGraph();
  const std::string dir = FreshDir("ehna_ckpt_mismatch");
  const std::string path = dir + "/snap.ehnc";
  EhnaConfig cfg = TinyConfig();
  EhnaModel model(&g, cfg);
  ASSERT_TRUE(model.SaveCheckpoint(path).ok());

  EhnaConfig other = cfg;
  other.dim = 8;
  EhnaModel wrong_dim(&g, other);
  const Status st = wrong_dim.RestoreCheckpoint(path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  EhnaConfig reseeded = cfg;
  reseeded.seed = 99;
  EhnaModel wrong_seed(&g, reseeded);
  EXPECT_FALSE(wrong_seed.RestoreCheckpoint(path).ok());
  fs::remove_all(dir);
}

// -------------------------------------------------------- fault injection

TEST(CheckpointTest, EveryTruncationRejectedCleanly) {
  TemporalGraph g = TinyGraph();
  const EhnaConfig cfg = TinyConfig();
  const std::string dir = FreshDir("ehna_ckpt_trunc");
  const std::string path = dir + "/snap.ehnc";

  EhnaModel model(&g, cfg);
  model.Train(1);
  ASSERT_TRUE(model.SaveCheckpoint(path).ok());
  const uint64_t size = fs::file_size(path);
  ASSERT_GT(size, 0u);

  EhnaModel victim(&g, cfg);
  const Tensor before = victim.embedding_table();
  // Shrink in place one byte at a time: every prefix of the snapshot must
  // be rejected with a Status — never a crash or bad_alloc.
  for (uint64_t len = size; len-- > 0;) {
    fs::resize_file(path, len);
    const Status st = victim.RestoreCheckpoint(path);
    ASSERT_FALSE(st.ok()) << "truncation to " << len << " bytes accepted";
  }
  // And every rejection left the model untouched.
  EXPECT_EQ(victim.embedding_table(), before);
  EXPECT_EQ(victim.completed_epochs(), 0u);
  fs::remove_all(dir);
}

TEST(CheckpointTest, EveryByteCorruptionRejectedCleanly) {
  TemporalGraph g = TinyGraph();
  const EhnaConfig cfg = TinyConfig();
  const std::string dir = FreshDir("ehna_ckpt_flip");
  const std::string path = dir + "/snap.ehnc";

  EhnaModel model(&g, cfg);
  model.Train(1);
  ASSERT_TRUE(model.SaveCheckpoint(path).ok());
  const std::string good = ReadBytes(path);
  ASSERT_FALSE(good.empty());

  EhnaModel victim(&g, cfg);
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  for (size_t i = 0; i < good.size(); ++i) {
    const char flipped = static_cast<char>(good[i] ^ 0xFF);
    f.seekp(static_cast<std::streamoff>(i));
    f.put(flipped);
    f.flush();
    const Status st = victim.RestoreCheckpoint(path);
    ASSERT_FALSE(st.ok()) << "flipped byte " << i << " accepted";
    f.seekp(static_cast<std::streamoff>(i));
    f.put(good[i]);
  }
  f.flush();
  // The pristine file still loads after all that surgery.
  EXPECT_TRUE(victim.RestoreCheckpoint(path).ok());
  fs::remove_all(dir);
}

// ------------------------------------------------------ resume determinism

void ExpectResumeMatchesUninterrupted(int num_threads) {
  TemporalGraph g = TinyGraph();
  EhnaConfig cfg = TinyConfig();
  cfg.num_threads = num_threads;

  // Reference: 4 epochs straight through, no checkpointing.
  EhnaModel uninterrupted(&g, cfg);
  uninterrupted.Train(4);

  // "Killed" run: checkpointing enabled, stopped after 2 epochs, model
  // destroyed (the in-process equivalent of SIGKILL — nothing outlives the
  // object but the snapshot directory).
  EhnaConfig ckpt_cfg = cfg;
  ckpt_cfg.checkpoint_dir =
      FreshDir("ehna_ckpt_resume_t" + std::to_string(num_threads));
  {
    EhnaModel killed(&g, ckpt_cfg);
    killed.Train(2);
  }

  // Resumed run: fresh process state, restore, finish the remaining epochs.
  EhnaModel resumed(&g, ckpt_cfg);
  CheckpointManager manager(ckpt_cfg.checkpoint_dir, ckpt_cfg.checkpoint_keep);
  ASSERT_TRUE(manager.RestoreLatest(&resumed).ok());
  ASSERT_EQ(resumed.completed_epochs(), 2u);
  const auto history = resumed.Train(4);
  EXPECT_EQ(history.size(), 2u);  // only the missing epochs ran.

  // Bitwise identical: both the raw trained table and the §IV.D finalized
  // embeddings.
  EXPECT_EQ(resumed.embedding_table(), uninterrupted.embedding_table());
  EXPECT_EQ(resumed.FinalizeEmbeddings(), uninterrupted.FinalizeEmbeddings());
  fs::remove_all(ckpt_cfg.checkpoint_dir);
}

TEST(CheckpointTest, ResumeMatchesUninterruptedSerial) {
  ExpectResumeMatchesUninterrupted(1);
}

TEST(CheckpointTest, ResumeMatchesUninterruptedParallel) {
  ExpectResumeMatchesUninterrupted(2);
}

// ------------------------------------------- instrumentation determinism

/// The observability layer's core contract (util/metrics.h): recording
/// counters and phase timings must not perturb training. Train the same
/// config with metrics enabled and disabled; the checkpoint files — a full
/// serialization of embeddings, parameters, optimizer moments, BN stats,
/// and RNG state — must be byte-identical, as must the final embeddings.
void ExpectMetricsOnOffBitwiseIdentical(int num_threads) {
  TemporalGraph g = TinyGraph();
  EhnaConfig cfg = TinyConfig();
  cfg.num_threads = num_threads;
  const std::string tag = "t" + std::to_string(num_threads);

  auto run = [&](bool metrics_enabled, const std::string& dir) {
    MetricsRegistry::SetEnabled(metrics_enabled);
    EhnaModel model(&g, cfg);
    model.Train(2);
    const std::string path = dir + "/snap.ehnc";
    EHNA_CHECK(model.SaveCheckpoint(path).ok());
    Tensor final = model.FinalizeEmbeddings();
    MetricsRegistry::SetEnabled(true);
    return std::make_pair(ReadBytes(path), std::move(final));
  };

  const std::string dir_on = FreshDir("ehna_ckpt_metrics_on_" + tag);
  const std::string dir_off = FreshDir("ehna_ckpt_metrics_off_" + tag);
  const auto [bytes_on, final_on] = run(/*metrics_enabled=*/true, dir_on);
  const auto [bytes_off, final_off] = run(/*metrics_enabled=*/false, dir_off);

  ASSERT_FALSE(bytes_on.empty());
  EXPECT_EQ(bytes_on, bytes_off) << "instrumentation changed training bytes";
  EXPECT_EQ(final_on, final_off);
  fs::remove_all(dir_on);
  fs::remove_all(dir_off);
}

TEST(CheckpointTest, MetricsOnOffBitwiseIdenticalSerial) {
  ExpectMetricsOnOffBitwiseIdentical(1);
}

TEST(CheckpointTest, MetricsOnOffBitwiseIdenticalParallel) {
  ExpectMetricsOnOffBitwiseIdentical(4);
}

// --------------------------------------------------------- dir management

TEST(CheckpointManagerTest, RotationKeepsLastNWithLatestPointer) {
  TemporalGraph g = TinyGraph();
  EhnaConfig cfg = TinyConfig();
  cfg.checkpoint_dir = FreshDir("ehna_ckpt_rotate");
  cfg.checkpoint_keep = 2;
  EhnaModel model(&g, cfg);
  model.Train(4);  // snapshots after every epoch.

  CheckpointManager manager(cfg.checkpoint_dir, cfg.checkpoint_keep);
  const auto names = manager.ListSnapshots();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "ckpt-00000000000000000003.ehnc");
  EXPECT_EQ(names[1], "ckpt-00000000000000000004.ehnc");

  std::ifstream latest(cfg.checkpoint_dir + "/LATEST");
  std::string pointed;
  ASSERT_TRUE(static_cast<bool>(latest >> pointed));
  EXPECT_EQ(pointed, names[1]);
  fs::remove_all(cfg.checkpoint_dir);
}

TEST(CheckpointManagerTest, FallsBackToLastGoodSnapshot) {
  TemporalGraph g = TinyGraph();
  EhnaConfig cfg = TinyConfig();
  cfg.checkpoint_dir = FreshDir("ehna_ckpt_fallback");
  EhnaModel model(&g, cfg);
  model.Train(3);

  CheckpointManager manager(cfg.checkpoint_dir, cfg.checkpoint_keep);
  auto names = manager.ListSnapshots();
  ASSERT_EQ(names.size(), 3u);
  // Corrupt the newest snapshot the way a torn disk would: truncate it.
  fs::resize_file(cfg.checkpoint_dir + "/" + names.back(),
                  fs::file_size(cfg.checkpoint_dir + "/" + names.back()) / 2);

  EhnaModel resumed(&g, cfg);
  ASSERT_TRUE(manager.RestoreLatest(&resumed).ok());
  // The corrupt epoch-3 snapshot was skipped; epoch 2 is the last good one.
  EXPECT_EQ(resumed.completed_epochs(), 2u);

  // A garbage LATEST pointer must not prevent recovery either.
  WriteBytes(cfg.checkpoint_dir + "/LATEST", "no-such-snapshot\n");
  EhnaModel resumed2(&g, cfg);
  ASSERT_TRUE(manager.RestoreLatest(&resumed2).ok());
  EXPECT_EQ(resumed2.completed_epochs(), 2u);
  fs::remove_all(cfg.checkpoint_dir);
}

TEST(CheckpointManagerTest, EmptyDirReportsNotFound) {
  TemporalGraph g = TinyGraph();
  const EhnaConfig cfg = TinyConfig();
  EhnaModel model(&g, cfg);
  CheckpointManager manager(FreshDir("ehna_ckpt_empty"), 3);
  const Status st = manager.RestoreLatest(&model);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  fs::remove_all(manager.dir());
}

}  // namespace
}  // namespace ehna
