#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/autograd.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "util/rng.h"

namespace ehna {
namespace {

/// Checks d(loss)/d(leaf) against central finite differences for every
/// element of every leaf. `build` must construct a scalar loss from the
/// given leaves (freshly, on each call).
void CheckGradients(std::vector<Var> leaves,
                    const std::function<Var(const std::vector<Var>&)>& build,
                    float eps = 1e-3f, float tol = 2e-2f) {
  Var loss = build(leaves);
  ASSERT_EQ(loss.value().numel(), 1);
  Backward(loss);

  for (size_t li = 0; li < leaves.size(); ++li) {
    Var& leaf = leaves[li];
    const Tensor analytic = leaf.grad().numel() == 0
                                ? Tensor()  // no gradient flowed.
                                : leaf.grad();
    for (int64_t i = 0; i < leaf.value().numel(); ++i) {
      const float orig = leaf.value().data()[i];
      leaf.mutable_value().data()[i] = orig + eps;
      const float up = build(leaves).value()[0];
      leaf.mutable_value().data()[i] = orig - eps;
      const float down = build(leaves).value()[0];
      leaf.mutable_value().data()[i] = orig;
      const float numeric = (up - down) / (2.0f * eps);
      const float got = analytic.numel() == 0 ? 0.0f : analytic.data()[i];
      EXPECT_NEAR(got, numeric, tol + 0.05f * std::abs(numeric))
          << "leaf " << li << " element " << i;
    }
  }
}

Var RandomLeaf(int64_t n, Rng* rng) {
  Tensor t(n);
  UniformInit(&t, -1.0f, 1.0f, rng);
  return Var::Leaf(std::move(t), true);
}

Var RandomLeaf(int64_t r, int64_t c, Rng* rng) {
  Tensor t(r, c);
  UniformInit(&t, -1.0f, 1.0f, rng);
  return Var::Leaf(std::move(t), true);
}

// ------------------------------------------------------------ Mechanics

TEST(AutogradTest, LeafHoldsValue) {
  Var v = Var::Leaf(Tensor::FromVector({1, 2}));
  EXPECT_FALSE(v.requires_grad());
  EXPECT_FLOAT_EQ(v.value()[1], 2.0f);
}

TEST(AutogradTest, BackwardSeedsScalarOne) {
  Var x = Var::Leaf(Tensor::FromVector({3.0f}), true);
  Var y = ag::ScalarMul(x, 2.0f);
  Backward(y);
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossUses) {
  Var x = Var::Leaf(Tensor::FromVector({1.0f}), true);
  Var y = ag::Add(x, x);  // dy/dx = 2.
  Backward(y);
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(AutogradTest, ZeroGradClears) {
  Var x = Var::Leaf(Tensor::FromVector({1.0f}), true);
  Backward(ag::ScalarMul(x, 3.0f));
  EXPECT_EQ(x.grad().numel(), 1);
  x.ZeroGrad();
  EXPECT_EQ(x.grad().numel(), 0);
}

TEST(AutogradTest, NoGradForConstantSubtree) {
  Var c = Var::Leaf(Tensor::FromVector({5.0f}), false);
  Var x = Var::Leaf(Tensor::FromVector({2.0f}), true);
  Var y = ag::Add(ag::ScalarMul(c, 2.0f), x);
  Backward(y);
  EXPECT_EQ(c.grad().numel(), 0);  // backward skipped for constants.
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

TEST(AutogradTest, DiamondGraphCorrectGradient) {
  // y = x*x + x  =>  dy/dx = 2x + 1.
  Var x = Var::Leaf(Tensor::FromVector({3.0f}), true);
  Var y = ag::Add(ag::Mul(x, x), x);
  Backward(y);
  EXPECT_FLOAT_EQ(x.grad()[0], 7.0f);
}

TEST(AutogradTest, RepeatedBackwardAccumulates) {
  Var x = Var::Leaf(Tensor::FromVector({1.0f}), true);
  Backward(ag::ScalarMul(x, 2.0f));
  Backward(ag::ScalarMul(x, 3.0f));
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
}

// ------------------------------------------------- Finite-diff checks

TEST(GradCheckTest, AddSubMul) {
  Rng rng(1);
  CheckGradients({RandomLeaf(5, &rng), RandomLeaf(5, &rng)},
                 [](const std::vector<Var>& v) {
                   return ag::Sum(ag::Mul(ag::Add(v[0], v[1]),
                                          ag::Sub(v[0], v[1])));
                 });
}

TEST(GradCheckTest, MatMul) {
  Rng rng(2);
  CheckGradients({RandomLeaf(3, 4, &rng), RandomLeaf(4, 2, &rng)},
                 [](const std::vector<Var>& v) {
                   return ag::Sum(ag::MatMul(v[0], v[1]));
                 });
}

TEST(GradCheckTest, MatVec) {
  Rng rng(3);
  CheckGradients({RandomLeaf(3, 4, &rng), RandomLeaf(4, &rng)},
                 [](const std::vector<Var>& v) {
                   return ag::Sum(ag::MatVec(v[0], v[1]));
                 });
}

TEST(GradCheckTest, RowBroadcastOps) {
  Rng rng(4);
  CheckGradients({RandomLeaf(3, 4, &rng), RandomLeaf(4, &rng)},
                 [](const std::vector<Var>& v) {
                   return ag::Sum(ag::Mul(ag::AddRowBroadcast(v[0], v[1]),
                                          ag::SubRowBroadcast(v[0], v[1])));
                 });
}

TEST(GradCheckTest, Activations) {
  Rng rng(5);
  CheckGradients({RandomLeaf(6, &rng)}, [](const std::vector<Var>& v) {
    return ag::Sum(
        ag::Add(ag::Sigmoid(v[0]), ag::Add(ag::Tanh(v[0]), ag::Relu(v[0]))));
  });
}

TEST(GradCheckTest, ExpAndLog) {
  Rng rng(6);
  // Keep log inputs positive via exp.
  CheckGradients({RandomLeaf(5, &rng)}, [](const std::vector<Var>& v) {
    return ag::Sum(ag::Log(ag::AddScalar(ag::Exp(v[0]), 1.0f)));
  });
}

TEST(GradCheckTest, LogSigmoid) {
  Rng rng(7);
  CheckGradients({RandomLeaf(5, &rng)}, [](const std::vector<Var>& v) {
    return ag::Sum(ag::LogSigmoid(ag::ScalarMul(v[0], 3.0f)));
  });
}

TEST(GradCheckTest, SoftmaxWeightedSum) {
  Rng rng(8);
  CheckGradients({RandomLeaf(5, &rng), RandomLeaf(5, &rng)},
                 [](const std::vector<Var>& v) {
                   return ag::Dot(ag::Softmax(v[0]), v[1]);
                 });
}

TEST(GradCheckTest, SumSquaresAndRowSumSquares) {
  Rng rng(9);
  CheckGradients({RandomLeaf(3, 4, &rng)}, [](const std::vector<Var>& v) {
    return ag::Add(ag::Sum(ag::RowSumSquares(v[0])),
                   ag::ScalarMul(ag::SumSquares(v[0]), 0.5f));
  });
}

TEST(GradCheckTest, MeanAndAddScalar) {
  Rng rng(10);
  CheckGradients({RandomLeaf(7, &rng)}, [](const std::vector<Var>& v) {
    return ag::Mean(ag::AddScalar(v[0], 2.5f));
  });
}

TEST(GradCheckTest, RowAndConcatRows) {
  Rng rng(11);
  CheckGradients({RandomLeaf(3, 4, &rng)}, [](const std::vector<Var>& v) {
    std::vector<Var> rows{ag::Row(v[0], 2), ag::Row(v[0], 0),
                          ag::Row(v[0], 1)};
    return ag::SumSquares(ag::ConcatRows(rows));
  });
}

TEST(GradCheckTest, ConcatVectors) {
  Rng rng(12);
  CheckGradients({RandomLeaf(3, &rng), RandomLeaf(4, &rng)},
                 [](const std::vector<Var>& v) {
                   return ag::SumSquares(ag::Concat(v[0], v[1]));
                 });
}

TEST(GradCheckTest, SliceCols) {
  Rng rng(13);
  CheckGradients({RandomLeaf(3, 6, &rng)}, [](const std::vector<Var>& v) {
    return ag::Add(ag::Sum(ag::SliceCols(v[0], 0, 2)),
                   ag::SumSquares(ag::SliceCols(v[0], 3, 3)));
  });
}

TEST(GradCheckTest, ScaleRows) {
  Rng rng(14);
  CheckGradients({RandomLeaf(3, 4, &rng), RandomLeaf(3, &rng)},
                 [](const std::vector<Var>& v) {
                   return ag::SumSquares(ag::ScaleRows(v[0], v[1]));
                 });
}

TEST(GradCheckTest, ScaleRowsConstAndMulConst) {
  Rng rng(15);
  Tensor scale = Tensor::FromVector({0.5f, 2.0f, -1.0f});
  Tensor cmat = Tensor::FromVector({1.0f, -2.0f, 0.5f, 3.0f});
  CheckGradients({RandomLeaf(3, 4, &rng), RandomLeaf(4, &rng)},
                 [scale, cmat](const std::vector<Var>& v) {
                   return ag::Add(
                       ag::Sum(ag::ScaleRowsConst(v[0], scale)),
                       ag::Sum(ag::MulConst(v[1], cmat)));
                 });
}

TEST(GradCheckTest, MaskRows) {
  Rng rng(16);
  Tensor mask = Tensor::FromVector({1.0f, 0.0f, 1.0f});
  CheckGradients({RandomLeaf(3, 4, &rng), RandomLeaf(3, 4, &rng)},
                 [mask](const std::vector<Var>& v) {
                   return ag::SumSquares(ag::MaskRows(v[0], v[1], mask));
                 });
}

TEST(GradCheckTest, L2Normalize) {
  Rng rng(17);
  CheckGradients({RandomLeaf(5, &rng), RandomLeaf(5, &rng)},
                 [](const std::vector<Var>& v) {
                   return ag::Dot(ag::L2Normalize(v[0]), v[1]);
                 });
}

TEST(GradCheckTest, BroadcastScalar) {
  Rng rng(18);
  CheckGradients({RandomLeaf(1, &rng), RandomLeaf(6, &rng)},
                 [](const std::vector<Var>& v) {
                   return ag::Dot(ag::BroadcastScalar(v[0], 6), v[1]);
                 });
}

TEST(GradCheckTest, ColMean) {
  Rng rng(19);
  CheckGradients({RandomLeaf(4, 3, &rng)}, [](const std::vector<Var>& v) {
    return ag::SumSquares(ag::ColMean(v[0]));
  });
}

TEST(GradCheckTest, AsMatrixAsVectorRoundTrip) {
  Rng rng(20);
  CheckGradients({RandomLeaf(5, &rng)}, [](const std::vector<Var>& v) {
    return ag::SumSquares(ag::AsVector(ag::AsMatrix(v[0])));
  });
}

TEST(GradCheckTest, HingeActiveAndInactive) {
  Var x = Var::Leaf(Tensor::FromVector({2.0f}), true);
  Backward(ag::Hinge(x));
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);

  Var y = Var::Leaf(Tensor::FromVector({-2.0f}), true);
  Var h = ag::Hinge(y);
  EXPECT_FLOAT_EQ(h.value()[0], 0.0f);
  Backward(h);
  EXPECT_FLOAT_EQ(y.grad()[0], 0.0f);
}

TEST(GradCheckTest, CompositeExpressionLikeLoss) {
  // A miniature version of the EHNA objective over raw leaves:
  // [m + ||a-b||^2 - ||a-c||^2]_+.
  Rng rng(21);
  CheckGradients(
      {RandomLeaf(4, &rng), RandomLeaf(4, &rng), RandomLeaf(4, &rng)},
      [](const std::vector<Var>& v) {
        Var d_pos = ag::SumSquares(ag::Sub(v[0], v[1]));
        Var d_neg = ag::SumSquares(ag::Sub(v[0], v[2]));
        return ag::Hinge(ag::AddScalar(ag::Sub(d_pos, d_neg), 1.0f));
      });
}

}  // namespace
}  // namespace ehna
