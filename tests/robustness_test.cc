// Robustness and failure-injection tests: degenerate graphs, extreme
// configurations, and the less-traveled configuration flags (population
// BatchNorm, bidirectional negatives, directed graphs).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/htne.h"
#include "baselines/line.h"
#include "core/model.h"
#include "eval/link_prediction.h"
#include "graph/generators/generators.h"
#include "graph/split.h"

namespace ehna {
namespace {

TemporalGraph SmallGraph(uint64_t seed = 11) {
  auto g = MakePaperDataset(PaperDataset::kDblp, 0.03, seed);
  EHNA_CHECK(g.ok());
  return std::move(g).value();
}

EhnaConfig SmallConfig() {
  EhnaConfig cfg;
  cfg.dim = 8;
  cfg.num_walks = 3;
  cfg.walk_length = 4;
  cfg.num_negatives = 1;
  cfg.batch_edges = 8;
  cfg.epochs = 1;
  cfg.max_edges_per_epoch = 40;
  cfg.seed = 3;
  return cfg;
}

// ------------------------------------------------ Degenerate graph shapes

TEST(RobustnessTest, TrainsOnSingleEdgeGraph) {
  auto made = TemporalGraph::FromEdges({{0, 1, 1.0, 1.0f}});
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  EhnaConfig cfg = SmallConfig();
  cfg.max_edges_per_epoch = 0;
  EhnaModel model(&g, cfg);
  auto stats = model.TrainEpoch();
  EXPECT_TRUE(std::isfinite(stats.avg_loss));
  Tensor emb = model.FinalizeEmbeddings();
  for (int64_t i = 0; i < emb.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(emb.data()[i]));
  }
}

TEST(RobustnessTest, TrainsOnStarGraph) {
  // Every edge shares node 0; negatives will often equal the hub's
  // neighbors; walks from leaves immediately reach the hub.
  std::vector<TemporalEdge> edges;
  for (NodeId v = 1; v <= 12; ++v) {
    edges.push_back({0, v, static_cast<Timestamp>(v), 1.0f});
  }
  auto made = TemporalGraph::FromEdges(edges);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  EhnaModel model(&g, SmallConfig());
  EXPECT_TRUE(std::isfinite(model.TrainEpoch().avg_loss));
}

TEST(RobustnessTest, TrainsWithManyIsolatedNodes) {
  std::vector<TemporalEdge> edges{{0, 1, 1.0, 1.0f}, {1, 2, 2.0, 1.0f},
                                  {2, 0, 3.0, 1.0f}};
  auto made = TemporalGraph::FromEdges(edges, /*num_nodes=*/50);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  EhnaModel model(&g, SmallConfig());
  EXPECT_TRUE(std::isfinite(model.TrainEpoch().avg_loss));
  Tensor emb = model.FinalizeEmbeddings();
  // Isolated nodes keep normalized raw embeddings.
  double norm = 0.0;
  for (int64_t j = 0; j < emb.cols(); ++j) {
    norm += static_cast<double>(emb.at(49, j)) * emb.at(49, j);
  }
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-3);
}

TEST(RobustnessTest, IdenticalTimestampsEverywhere) {
  // A graph where every edge carries the same timestamp: the time span
  // floors at epsilon and all temporal machinery must stay finite.
  std::vector<TemporalEdge> edges;
  for (NodeId v = 0; v < 10; ++v) {
    edges.push_back({v, static_cast<NodeId>((v + 1) % 10), 7.0, 1.0f});
  }
  auto made = TemporalGraph::FromEdges(edges);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  EhnaModel model(&g, SmallConfig());
  EXPECT_TRUE(std::isfinite(model.TrainEpoch().avg_loss));
}

// ----------------------------------------------- Configuration variations

TEST(RobustnessTest, PopulationBatchNormVariant) {
  TemporalGraph g = SmallGraph();
  EhnaConfig cfg = SmallConfig();
  cfg.population_batchnorm = true;
  cfg.embedding_lr_multiplier = 5.0f;
  EhnaModel model(&g, cfg);
  EXPECT_TRUE(std::isfinite(model.TrainEpoch().avg_loss));
  Tensor emb = model.FinalizeEmbeddings();
  for (int64_t i = 0; i < emb.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(emb.data()[i]));
  }
}

TEST(RobustnessTest, BidirectionalNegativesOnBipartiteGraph) {
  BipartiteGraphOptions opt;
  opt.num_users = 60;
  opt.num_items = 40;
  opt.num_edges = 400;
  opt.mode = BipartiteMode::kPurchase;
  opt.seed = 5;
  auto made = MakeBipartiteGraph(opt);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  EhnaConfig cfg = SmallConfig();
  cfg.bidirectional_negatives = true;  // Eq. 7.
  EhnaModel model(&g, cfg);
  EXPECT_TRUE(std::isfinite(model.TrainEpoch().avg_loss));
}

TEST(RobustnessTest, ExtremePAndQ) {
  TemporalGraph g = SmallGraph();
  for (double pq : {0.01, 100.0}) {
    EhnaConfig cfg = SmallConfig();
    cfg.p = pq;
    cfg.q = 1.0 / pq;
    EhnaModel model(&g, cfg);
    EXPECT_TRUE(std::isfinite(model.TrainEpoch().avg_loss)) << "pq=" << pq;
  }
}

TEST(RobustnessTest, WalkLengthOne) {
  TemporalGraph g = SmallGraph();
  EhnaConfig cfg = SmallConfig();
  cfg.walk_length = 1;  // each walk is (target, one neighbor).
  EhnaModel model(&g, cfg);
  EXPECT_TRUE(std::isfinite(model.TrainEpoch().avg_loss));
}

TEST(RobustnessTest, ZeroDecayRateIsStaticWeighting) {
  TemporalGraph g = SmallGraph();
  EhnaConfig cfg = SmallConfig();
  cfg.decay_rate = 0.0;  // exp(0) = 1 everywhere: weight-only kernel.
  EhnaModel model(&g, cfg);
  EXPECT_TRUE(std::isfinite(model.TrainEpoch().avg_loss));
}

// --------------------------------------------------------- Baseline edges

TEST(RobustnessTest, HtneOnGraphWithoutHistory) {
  // All events share one timestamp: every event has an empty history and
  // HTNE must fall back to the base intensity alone.
  std::vector<TemporalEdge> edges;
  for (NodeId v = 0; v < 8; ++v) {
    edges.push_back({v, static_cast<NodeId>((v + 3) % 8), 1.0, 1.0f});
  }
  auto made = TemporalGraph::FromEdges(edges);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  HtneConfig cfg;
  cfg.dim = 4;
  cfg.epochs = 1;
  cfg.negatives = 1;
  HtneEmbedder embedder(cfg);
  Tensor emb = embedder.Fit(g);
  for (int64_t i = 0; i < emb.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(emb.data()[i]));
  }
}

TEST(RobustnessTest, LineOnWeightedGraph) {
  std::vector<TemporalEdge> edges{{0, 1, 1.0, 10.0f},
                                  {1, 2, 2.0, 0.1f},
                                  {2, 3, 3.0, 5.0f},
                                  {3, 0, 4.0, 1.0f}};
  auto made = TemporalGraph::FromEdges(edges);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  LineConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 2;
  LineEmbedder embedder(cfg);
  Tensor emb = embedder.Fit(g);
  for (int64_t i = 0; i < emb.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(emb.data()[i]));
  }
}

// -------------------------------------------------- Split failure injection

TEST(RobustnessTest, SplitFailsCleanlyOnDenseGraph) {
  // A near-complete graph cannot yield enough non-edges quickly: the split
  // must return FailedPrecondition instead of hanging or crashing.
  std::vector<TemporalEdge> edges;
  Timestamp t = 0.0;
  const NodeId n = 8;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      edges.push_back({u, v, t, 1.0f});
      t += 1.0;
    }
  }
  auto made = TemporalGraph::FromEdges(edges);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Rng rng(1);
  TemporalSplitOptions opt;
  opt.holdout_fraction = 0.2;
  opt.max_negative_attempts = 5;
  auto split = MakeTemporalSplit(g, opt, &rng);
  // Complete graph: no negatives exist at all.
  EXPECT_FALSE(split.ok());
  EXPECT_EQ(split.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RobustnessTest, LinkPredictionRejectsMismatchedEmbeddings) {
  TemporalGraph g = SmallGraph();
  Rng rng(2);
  auto split = MakeTemporalSplit(g, {}, &rng);
  ASSERT_TRUE(split.ok());
  Tensor tiny(2, 4);  // far fewer rows than nodes.
  auto m = EvaluateLinkPrediction(split.value(), tiny, EdgeOperator::kMean,
                                  {});
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace ehna
