// Equivalence tests for the minibatch-packed aggregation path (ISSUE 5
// tentpole, DESIGN.md §10). Three contracts are enforced here:
//
//  1. Forward equivalence: AggregateBatch produces bitwise the same z as a
//     sequence of legacy Aggregate calls driven by an identically seeded
//     RNG, for every variant, for multi-plan packs with mixed walk
//     lengths, and for the fallback / isolated-node paths.
//  2. Training-mode equivalence: a run with `batched_aggregation = true`
//     (one pack per batch/shard) is bitwise identical — checkpoint bytes
//     and final embeddings — to a run with `batched_aggregation = false`
//     (one pack per edge), serial and 4-threaded, metrics on and off.
//  3. Gradient reach: one Backward through a packed batch populates every
//     parameter group and the sparse embedding accumulator.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/aggregator.h"
#include "core/model.h"
#include "graph/generators/generators.h"
#include "nn/ops.h"
#include "util/metrics.h"

namespace ehna {
namespace {

namespace fs = std::filesystem;

TemporalGraph SmallGraph() {
  auto g = MakePaperDataset(PaperDataset::kDigg, 0.05, 42);
  EHNA_CHECK(g.ok());
  return std::move(g).value();
}

EhnaConfig SmallConfig() {
  EhnaConfig cfg;
  cfg.dim = 8;
  cfg.num_walks = 3;
  cfg.walk_length = 4;
  cfg.lstm_layers = 2;
  cfg.num_negatives = 1;
  cfg.seed = 1;
  return cfg;
}

std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Element-exact comparison; any mismatch reports the first bad index.
void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const std::string& what) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverges at element " << i;
  }
}

/// Runs the same aggregation sequence through the legacy per-call path and
/// through one AggregateBatch pack, from identically seeded state, and
/// asserts bitwise-equal outputs. Exercising them in ONE sequence matters:
/// BatchNorm running statistics evolve across calls, so equality here also
/// proves the packed path updates them in the same order.
void ExpectPackMatchesLegacy(const TemporalGraph& g, const EhnaConfig& cfg,
                             const std::vector<NodeId>& targets,
                             const std::vector<Timestamp>& times,
                             bool training) {
  Rng rng_a(7), rng_b(7);
  Embedding emb_a(g.num_nodes(), cfg.dim, &rng_a);
  Embedding emb_b(g.num_nodes(), cfg.dim, &rng_b);
  EhnaAggregator agg_a(&g, &emb_a, cfg, &rng_a);
  EhnaAggregator agg_b(&g, &emb_b, cfg, &rng_b);

  std::vector<Var> legacy;
  for (size_t i = 0; i < targets.size(); ++i) {
    legacy.push_back(agg_a.Aggregate(targets[i], times[i], training, &rng_a));
  }

  std::vector<AggregationPlan> plans(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    agg_b.PlanAggregation(targets[i], times[i], &rng_b, &plans[i]);
  }
  std::vector<Var> packed = agg_b.AggregateBatch(plans, training);

  ASSERT_EQ(packed.size(), legacy.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    ExpectBitwiseEqual(legacy[i].value(), packed[i].value(),
                       EhnaVariantName(cfg.variant) + std::string(" plan ") +
                           std::to_string(i));
  }
  emb_a.ClearGradients();
  emb_b.ClearGradients();
}

TEST(AggregatorBatchTest, SinglePlanMatchesLegacyAllVariants) {
  TemporalGraph g = SmallGraph();
  for (EhnaVariant variant :
       {EhnaVariant::kFull, EhnaVariant::kNoAttention,
        EhnaVariant::kStaticWalk, EhnaVariant::kSingleLayer}) {
    EhnaConfig cfg = SmallConfig();
    cfg.variant = variant;
    for (bool training : {true, false}) {
      ExpectPackMatchesLegacy(g, cfg, {2}, {g.max_time() + 1.0}, training);
    }
  }
}

TEST(AggregatorBatchTest, MultiPlanPackMatchesLegacySequenceAllVariants) {
  TemporalGraph g = SmallGraph();
  // Mixed targets force ragged walk lengths (tail plans drop out of the
  // pack mid-sequence) and the fallback path (ref_time before any edge)
  // inside the same pack as standard plans.
  const std::vector<NodeId> targets = {0, 5, 3, 17, 1};
  const std::vector<Timestamp> times = {
      g.max_time() + 1.0, g.max_time() + 1.0, g.min_time() - 1.0,
      g.max_time() + 1.0, g.max_time() + 1.0};
  for (EhnaVariant variant :
       {EhnaVariant::kFull, EhnaVariant::kNoAttention,
        EhnaVariant::kStaticWalk, EhnaVariant::kSingleLayer}) {
    EhnaConfig cfg = SmallConfig();
    cfg.variant = variant;
    ExpectPackMatchesLegacy(g, cfg, targets, times, /*training=*/true);
  }
}

TEST(AggregatorBatchTest, IsolatedNodeInPackMatchesLegacy) {
  auto made = TemporalGraph::FromEdges({{0, 1, 1.0, 1.0f}}, /*num_nodes=*/5);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  // Node 4 is isolated: its fallback pool is empty and its neighborhood
  // summary is the zero vector; packing it next to a connected node must
  // not disturb either output.
  ExpectPackMatchesLegacy(g, SmallConfig(), {4, 0}, {10.0, 10.0},
                          /*training=*/true);
}

TEST(AggregatorBatchTest, GradientsReachAllParameterGroups) {
  TemporalGraph g = SmallGraph();
  Rng rng(4);
  EhnaConfig cfg = SmallConfig();
  Embedding emb(g.num_nodes(), cfg.dim, &rng);
  EhnaAggregator agg(&g, &emb, cfg, &rng);
  std::vector<AggregationPlan> plans(3);
  agg.PlanAggregation(1, g.max_time() + 1.0, &rng, &plans[0]);
  agg.PlanAggregation(2, g.max_time() + 1.0, &rng, &plans[1]);
  agg.PlanAggregation(7, g.max_time() + 1.0, &rng, &plans[2]);
  std::vector<Var> z = agg.AggregateBatch(plans, /*training=*/true);
  std::vector<Var> terms;
  for (const Var& zi : z) terms.push_back(ag::SumSquares(zi));
  Backward(ag::SumN(terms));
  int with_grad = 0;
  for (const Var& p : agg.Parameters()) with_grad += p.grad().numel() > 0;
  EXPECT_GE(with_grad, 8);
  EXPECT_GT(emb.num_pending_rows(), 0u);
  emb.ClearGradients();
}

// ---------------------------------------------------- training equivalence

TemporalGraph TinyGraph() {
  auto g = MakePaperDataset(PaperDataset::kDblp, 0.02, 9);
  EHNA_CHECK(g.ok());
  return std::move(g).value();
}

EhnaConfig TinyTrainConfig() {
  EhnaConfig cfg;
  cfg.dim = 4;
  cfg.num_walks = 2;
  cfg.walk_length = 3;
  cfg.lstm_layers = 2;
  cfg.num_negatives = 1;
  cfg.batch_edges = 8;
  cfg.epochs = 2;
  cfg.max_edges_per_epoch = 24;
  cfg.learning_rate = 5e-3f;
  cfg.seed = 3;
  return cfg;
}

/// Trains `cfg` for its configured epochs and returns {checkpoint bytes,
/// finalized embeddings}.
std::pair<std::string, Tensor> TrainAndSnapshot(const TemporalGraph& g,
                                                EhnaConfig cfg,
                                                const std::string& dir,
                                                const std::string& tag) {
  EhnaModel model(&g, cfg);
  model.Train();
  const std::string path = dir + "/" + tag + ".ehnc";
  EHNA_CHECK(model.SaveCheckpoint(path).ok());
  Tensor final_emb = model.FinalizeEmbeddings();
  return {ReadBytes(path), std::move(final_emb)};
}

/// The tentpole contract: `batched_aggregation` on/off must be bitwise
/// indistinguishable after training — same checkpoint bytes (parameters,
/// Adam moments, BN statistics, RNG state) and same final embeddings.
void ExpectModesBitwiseIdentical(EhnaConfig cfg, int num_threads,
                                 bool metrics_enabled,
                                 const std::string& dir_tag) {
  TemporalGraph g = TinyGraph();
  cfg.num_threads = num_threads;
  const std::string dir = FreshDir(dir_tag);
  const bool metrics_before = MetricsEnabled();
  MetricsRegistry::SetEnabled(metrics_enabled);

  EhnaConfig per_edge = cfg;
  per_edge.batched_aggregation = false;
  auto [bytes_a, emb_a] = TrainAndSnapshot(g, per_edge, dir, "per_edge");

  EhnaConfig batched = cfg;
  batched.batched_aggregation = true;
  auto [bytes_b, emb_b] = TrainAndSnapshot(g, batched, dir, "batched");

  MetricsRegistry::SetEnabled(metrics_before);
  EXPECT_EQ(bytes_a, bytes_b)
      << dir_tag << ": checkpoint bytes differ between per-edge and "
      << "batched aggregation";
  ExpectBitwiseEqual(emb_a, emb_b, dir_tag + ": final embeddings");
  fs::remove_all(dir);
}

TEST(AggregatorBatchTest, TrainingModesBitwiseIdenticalSerial) {
  ExpectModesBitwiseIdentical(TinyTrainConfig(), /*num_threads=*/1,
                              /*metrics_enabled=*/true,
                              "ehna_aggbatch_serial");
}

TEST(AggregatorBatchTest, TrainingModesBitwiseIdenticalFourThreads) {
  ExpectModesBitwiseIdentical(TinyTrainConfig(), /*num_threads=*/4,
                              /*metrics_enabled=*/true,
                              "ehna_aggbatch_4t");
}

TEST(AggregatorBatchTest, TrainingModesBitwiseIdenticalMetricsOff) {
  ExpectModesBitwiseIdentical(TinyTrainConfig(), /*num_threads=*/4,
                              /*metrics_enabled=*/false,
                              "ehna_aggbatch_nometrics");
}

TEST(AggregatorBatchTest, TrainingModesBitwiseIdenticalAcrossVariants) {
  for (EhnaVariant variant :
       {EhnaVariant::kNoAttention, EhnaVariant::kStaticWalk,
        EhnaVariant::kSingleLayer}) {
    EhnaConfig cfg = TinyTrainConfig();
    cfg.variant = variant;
    cfg.epochs = 1;
    ExpectModesBitwiseIdentical(cfg, /*num_threads=*/1,
                                /*metrics_enabled=*/true,
                                std::string("ehna_aggbatch_") +
                                    EhnaVariantName(variant));
  }
}

}  // namespace
}  // namespace ehna
