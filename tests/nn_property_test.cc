// Parameterized properties of the neural-network substrate: shape
// correctness and gradient flow across dimension grids, optimizer
// convergence across learning rates, and algebraic identities of the
// tensor kernels under random inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "nn/batchnorm.h"
#include "nn/embedding.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace ehna {
namespace {

// ----------------------------------------------------- Linear dimensions

class LinearDimProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LinearDimProperty, ShapesAndGradientFlow) {
  const auto [in, out, batch] = GetParam();
  Rng rng(1);
  Linear lin(in, out, &rng);
  Tensor x0(batch, in);
  UniformInit(&x0, -1, 1, &rng);
  Var x = Var::Leaf(x0, true);
  Var y = lin.Forward(x);
  EXPECT_EQ(y.value().rows(), batch);
  EXPECT_EQ(y.value().cols(), out);
  Backward(ag::SumSquares(y));
  EXPECT_EQ(x.grad().rows(), batch);
  for (const Var& p : lin.Parameters()) {
    EXPECT_GT(p.grad().numel(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, LinearDimProperty,
                         ::testing::Combine(::testing::Values(1, 3, 16),
                                            ::testing::Values(1, 5, 32),
                                            ::testing::Values(1, 4)));

// ------------------------------------------------------- LSTM dimensions

class LstmDimProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(LstmDimProperty, SequenceShapesAndBoundedOutputs) {
  const auto [input_dim, hidden, layers, steps] = GetParam();
  Rng rng(2);
  StackedLstm lstm(input_dim, hidden, layers, &rng);
  std::vector<Var> inputs;
  for (int t = 0; t < steps; ++t) {
    Tensor x(2, input_dim);
    UniformInit(&x, -2, 2, &rng);
    inputs.push_back(Var::Leaf(x));
  }
  Var h = lstm.Forward(inputs, {});
  EXPECT_EQ(h.value().rows(), 2);
  EXPECT_EQ(h.value().cols(), hidden);
  for (int64_t i = 0; i < h.value().numel(); ++i) {
    EXPECT_LT(std::abs(h.value().data()[i]), 1.0f);  // |tanh * sigmoid| < 1.
  }
  EXPECT_EQ(lstm.Parameters().size(), static_cast<size_t>(3 * layers));
}

INSTANTIATE_TEST_SUITE_P(Dims, LstmDimProperty,
                         ::testing::Combine(::testing::Values(1, 4),
                                            ::testing::Values(2, 8),
                                            ::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 5)));

// ------------------------------------------------- BatchNorm feature dims

class BatchNormDimProperty : public ::testing::TestWithParam<int> {};

TEST_P(BatchNormDimProperty, NormalizesEveryFeature) {
  const int features = GetParam();
  Rng rng(3);
  BatchNorm1d bn(features);
  Tensor x(16, features);
  UniformInit(&x, -5, 5, &rng);
  Var y = bn.Forward(Var::Leaf(x), true);
  for (int64_t j = 0; j < features; ++j) {
    float mean = 0.0f;
    for (int64_t i = 0; i < 16; ++i) mean += y.value().at(i, j);
    EXPECT_NEAR(mean / 16.0f, 0.0f, 1e-4f) << "feature " << j;
  }
}

TEST_P(BatchNormDimProperty, PopulationModeIsAffine) {
  // With fixed running stats, population mode is the same affine map for
  // every row: equal inputs give equal outputs regardless of batch mix.
  const int features = GetParam();
  Rng rng(4);
  BatchNorm1d bn(features);
  // Seed running stats with one training batch.
  Tensor warm(8, features);
  UniformInit(&warm, -1, 1, &rng);
  bn.ForwardPopulation(Var::Leaf(warm), /*update_stats=*/true);

  Tensor probe_row(features);
  UniformInit(&probe_row, -1, 1, &rng);
  Tensor batch_a(1, features), batch_b(3, features);
  for (int64_t j = 0; j < features; ++j) {
    batch_a.at(0, j) = probe_row[j];
    batch_b.at(0, j) = probe_row[j];
    batch_b.at(1, j) = 5.0f;   // different companions must not matter.
    batch_b.at(2, j) = -7.0f;
  }
  Var ya = bn.ForwardPopulation(Var::Leaf(batch_a), false);
  Var yb = bn.ForwardPopulation(Var::Leaf(batch_b), false);
  for (int64_t j = 0; j < features; ++j) {
    EXPECT_FLOAT_EQ(ya.value().at(0, j), yb.value().at(0, j));
  }
}

INSTANTIATE_TEST_SUITE_P(Features, BatchNormDimProperty,
                         ::testing::Values(1, 3, 16));

// ------------------------------------------------ Optimizer learning rates

class AdamLrProperty : public ::testing::TestWithParam<float> {};

TEST_P(AdamLrProperty, ConvergesOnConvexProblem) {
  const float lr = GetParam();
  Var w = Var::Leaf(Tensor::FromVector({4.0f, -2.0f, 1.0f}), true);
  Adam opt({w}, lr);
  for (int i = 0; i < 2000; ++i) {
    Backward(ag::SumSquares(w));
    opt.Step();
    opt.ZeroGrad();
  }
  EXPECT_LT(w.value().Norm(), 0.1f) << "lr=" << lr;
}

INSTANTIATE_TEST_SUITE_P(Rates, AdamLrProperty,
                         ::testing::Values(0.01f, 0.05f, 0.2f));

// ------------------------------------------- Sparse/dense SGD equivalence

class EmbeddingDimProperty : public ::testing::TestWithParam<int> {};

TEST_P(EmbeddingDimProperty, SparseSgdMatchesManualDenseUpdate) {
  const int dim = GetParam();
  Rng rng(5);
  Embedding emb(6, dim, &rng);
  const Tensor before = emb.table();

  // Loss = sum of rows 1 and 4 -> gradient 1 on each of their entries.
  Var g = emb.Gather({1, 4});
  Backward(ag::Sum(g));
  emb.ApplySgd(0.25f);

  for (int64_t row = 0; row < 6; ++row) {
    for (int64_t j = 0; j < dim; ++j) {
      const float expected = (row == 1 || row == 4)
                                 ? before.at(row, j) - 0.25f
                                 : before.at(row, j);
      EXPECT_FLOAT_EQ(emb.table().at(row, j), expected)
          << "row " << row << " col " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, EmbeddingDimProperty,
                         ::testing::Values(1, 4, 32));

// --------------------------------------------------- Tensor kernel algebra

class MatMulSizeProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(MatMulSizeProperty, AssociativityHolds) {
  const auto [m, k, n, p] = GetParam();
  Rng rng(6);
  Tensor a(m, k), b(k, n), c(n, p);
  UniformInit(&a, -1, 1, &rng);
  UniformInit(&b, -1, 1, &rng);
  UniformInit(&c, -1, 1, &rng);
  const Tensor left = MatMul(MatMul(a, b), c);
  const Tensor right = MatMul(a, MatMul(b, c));
  ASSERT_TRUE(left.SameShape(right));
  for (int64_t i = 0; i < left.numel(); ++i) {
    EXPECT_NEAR(left.data()[i], right.data()[i],
                1e-4f * (1.0f + std::abs(left.data()[i])));
  }
}

TEST_P(MatMulSizeProperty, TransposeDistributes) {
  // (A B)^T == B^T A^T.
  const auto [m, k, n, p] = GetParam();
  (void)p;
  Rng rng(7);
  Tensor a(m, k), b(k, n);
  UniformInit(&a, -1, 1, &rng);
  UniformInit(&b, -1, 1, &rng);
  const Tensor lhs = Transpose(MatMul(a, b));
  const Tensor rhs = MatMul(Transpose(b), Transpose(a));
  ASSERT_TRUE(lhs.SameShape(rhs));
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i], 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatMulSizeProperty,
                         ::testing::Values(std::make_tuple(1, 1, 1, 1),
                                           std::make_tuple(2, 3, 4, 5),
                                           std::make_tuple(7, 2, 9, 3),
                                           std::make_tuple(16, 16, 16, 4)));

}  // namespace
}  // namespace ehna
