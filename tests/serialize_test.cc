#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "eval/knn.h"
#include "graph/graph_builder.h"
#include "nn/init.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace ehna {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------- Serialization

TEST(SerializeTest, TextRoundTrip) {
  Rng rng(1);
  Tensor t(7, 5);
  UniformInit(&t, -2.0f, 2.0f, &rng);
  const std::string path = TempPath("ehna_ser_text.txt");
  ASSERT_TRUE(WriteTensorText(path, t).ok());
  auto back = ReadTensorText(path);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back.value().SameShape(t));
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_NEAR(back.value().data()[i], t.data()[i], 1e-4f);
  }
  std::filesystem::remove(path);
}

TEST(SerializeTest, BinaryRoundTripExact) {
  Rng rng(2);
  Tensor t(9, 3);
  UniformInit(&t, -1.0f, 1.0f, &rng);
  const std::string path = TempPath("ehna_ser_bin.ehnt");
  ASSERT_TRUE(WriteTensorBinary(path, t).ok());
  auto back = ReadTensorBinary(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), t);  // bit-exact.
  std::filesystem::remove(path);
}

TEST(SerializeTest, RejectsRank1) {
  EXPECT_FALSE(WriteTensorText(TempPath("x.txt"), Tensor(5)).ok());
  EXPECT_FALSE(WriteTensorBinary(TempPath("x.bin"), Tensor(5)).ok());
}

TEST(SerializeTest, MissingFileFails) {
  EXPECT_FALSE(ReadTensorText("/nonexistent_zzz/t.txt").ok());
  EXPECT_FALSE(ReadTensorBinary("/nonexistent_zzz/t.bin").ok());
}

TEST(SerializeTest, BinaryRejectsWrongMagic) {
  const std::string path = TempPath("ehna_bad_magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPExxxxxxxxxxxxxxxxxxxxxxxx";
  }
  auto r = ReadTensorBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(SerializeTest, BinaryRejectsTruncatedPayload) {
  Rng rng(3);
  Tensor t(4, 4);
  UniformInit(&t, -1, 1, &rng);
  const std::string path = TempPath("ehna_trunc.bin");
  ASSERT_TRUE(WriteTensorBinary(path, t).ok());
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 8);
  EXPECT_FALSE(ReadTensorBinary(path).ok());
  std::filesystem::remove(path);
}

TEST(SerializeTest, TextRejectsDuplicateRowIndex) {
  const std::string path = TempPath("ehna_dup_row.txt");
  {
    std::ofstream out(path);
    out << "2 2\n0 1 2\n0 3 4\n";
  }
  EXPECT_FALSE(ReadTensorText(path).ok());
  std::filesystem::remove(path);
}

TEST(SerializeTest, TextRoundTripIsBitExact) {
  // max_digits10 precision makes the text format lossless: values with no
  // short decimal representation survive write/read bit-for-bit.
  Tensor t = Tensor::FromVector(
      2, 3,
      {1.0f / 3.0f, 0.1f, 3.14159274f, std::nextafter(1.0f, 2.0f), -0.0f,
       1.17549435e-38f});
  const std::string path = TempPath("ehna_ser_text_exact.txt");
  ASSERT_TRUE(WriteTensorText(path, t).ok());
  auto back = ReadTensorText(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), t);  // bit-exact, not just NEAR.
  std::filesystem::remove(path);
}

TEST(SerializeTest, BinaryRejectsOversizedHeaderBeforeAllocating) {
  // A header declaring a huge tensor over a tiny payload must be rejected
  // by the size check — not by attempting (and possibly dying on) a
  // multi-terabyte allocation.
  const std::string path = TempPath("ehna_huge_header.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("EHNT", 4);
    const uint32_t version = 1;
    const int64_t rows = int64_t{1} << 40, cols = int64_t{1} << 20;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out << "tiny";
  }
  auto r = ReadTensorBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // rows * cols overflowing int64 must also fail cleanly.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("EHNT", 4);
    const uint32_t version = 1;
    const int64_t rows = int64_t{1} << 62, cols = int64_t{1} << 62;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  }
  EXPECT_FALSE(ReadTensorBinary(path).ok());
  std::filesystem::remove(path);
}

TEST(SerializeTest, BinaryRejectsTrailingBytes) {
  Tensor t(2, 2);
  const std::string path = TempPath("ehna_trailing.bin");
  ASSERT_TRUE(WriteTensorBinary(path, t).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "extra";
  }
  EXPECT_FALSE(ReadTensorBinary(path).ok());
  std::filesystem::remove(path);
}

TEST(SerializeTest, TextRejectsMalformedHeader) {
  const std::string path = TempPath("ehna_bad_header.txt");
  {
    std::ofstream out(path);
    out << "not a header\n";
  }
  EXPECT_FALSE(ReadTensorText(path).ok());
  std::filesystem::remove(path);
}

// ------------------------------------------------------------------- kNN

TEST(KnnTest, FindsExactTopK) {
  // 4 points on a line in 1-D (padded to 2-D).
  Tensor emb = Tensor::FromVector(4, 2, {0, 0, 1, 0, 2, 0, 10, 0});
  auto top = TopKNeighbors(emb, 0, 2, Similarity::kNegativeEuclidean);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top.value().size(), 2u);
  EXPECT_EQ(top.value()[0].node, 1u);
  EXPECT_EQ(top.value()[1].node, 2u);
  EXPECT_DOUBLE_EQ(top.value()[0].score, -1.0);
}

TEST(KnnTest, DotProductRanking) {
  Tensor emb = Tensor::FromVector(3, 2, {1, 0, 0.9f, 0.1f, -1, 0});
  auto top = TopKNeighbors(emb, 0, 2, Similarity::kDotProduct);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top.value()[0].node, 1u);
  EXPECT_EQ(top.value()[1].node, 2u);
}

TEST(KnnTest, CosineIgnoresMagnitude) {
  Tensor emb = Tensor::FromVector(3, 2, {1, 0, 100, 0.0f, 0.1f, 0.1f});
  auto s01 = PairSimilarity(emb, 0, 1, Similarity::kCosine);
  ASSERT_TRUE(s01.ok());
  EXPECT_NEAR(s01.value(), 1.0, 1e-6);
  auto s02 = PairSimilarity(emb, 0, 2, Similarity::kCosine);
  ASSERT_TRUE(s02.ok());
  EXPECT_NEAR(s02.value(), std::sqrt(0.5), 1e-5);
}

TEST(KnnTest, ExcludesQueryAndBoundsK) {
  Tensor emb(5, 3);
  auto top = TopKNeighbors(emb, 2, 100, Similarity::kDotProduct);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top.value().size(), 4u);  // everyone but the query.
  for (const auto& n : top.value()) EXPECT_NE(n.node, 2u);
}

TEST(KnnTest, KZeroGivesEmpty) {
  Tensor emb(3, 2);
  auto top = TopKNeighbors(emb, 0, 0, Similarity::kCosine);
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE(top.value().empty());
}

TEST(KnnTest, RejectsOutOfRangeQuery) {
  Tensor emb(3, 2);
  EXPECT_FALSE(TopKNeighbors(emb, 9, 1, Similarity::kCosine).ok());
  EXPECT_FALSE(PairSimilarity(emb, 0, 9, Similarity::kCosine).ok());
}

// ----------------------------------------------------------- GraphBuilder

TEST(GraphBuilderTest, BuildsSnapshotOfAppendedEvents) {
  TemporalGraphBuilder builder;
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, 2.0, 0.5f).ok());
  EXPECT_EQ(builder.num_edges(), 2u);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 3u);
  EXPECT_EQ(g.value().num_edges(), 2u);
}

TEST(GraphBuilderTest, RejectsBadEventsEagerly) {
  TemporalGraphBuilder builder;
  EXPECT_FALSE(builder.AddEdge(3, 3, 1.0).ok());
  EXPECT_FALSE(builder.AddEdge(0, 1, 1.0, -2.0f).ok());
  EXPECT_EQ(builder.num_edges(), 0u);
}

TEST(GraphBuilderTest, BuildUpToKeepsNodeSpaceStable) {
  TemporalGraphBuilder builder;
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(7, 8, 9.0).ok());  // late nodes.
  auto prefix = builder.BuildUpTo(5.0);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix.value().num_edges(), 1u);
  // Node-id space covers the late nodes even though they have no edges yet.
  EXPECT_EQ(prefix.value().num_nodes(), 9u);
  EXPECT_EQ(prefix.value().Degree(8), 0u);
}

TEST(GraphBuilderTest, ReserveNodesExtendsIdSpace) {
  TemporalGraphBuilder builder;
  builder.ReserveNodes(100);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 100u);
}

TEST(GraphBuilderTest, AddEdgesBatch) {
  TemporalGraphBuilder builder;
  std::vector<TemporalEdge> batch{{0, 1, 1.0, 1.0f}, {1, 2, 2.0, 1.0f}};
  ASSERT_TRUE(builder.AddEdges(batch).ok());
  EXPECT_EQ(builder.num_edges(), 2u);
  std::vector<TemporalEdge> bad{{3, 3, 1.0, 1.0f}};
  EXPECT_FALSE(builder.AddEdges(bad).ok());
}

TEST(GraphBuilderTest, DirectedMode) {
  TemporalGraphBuilder builder(/*directed=*/true);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g.value().HasEdge(0, 1));
  EXPECT_FALSE(g.value().HasEdge(1, 0));
}

}  // namespace
}  // namespace ehna
