// Fault-injection and round-trip tests for the EHNL edge log (ISSUE 8
// satellites), in the style of checkpoint_test.cc: every single-byte
// truncation and bit flip of a valid log must be rejected with a clean
// Status (never a crash, hang, or silently wrong graph); crafted headers
// with bad magic/version, non-finite timestamps, out-of-range node ids, and
// edge counts past the 32-bit EdgeId limit must fail with actionable
// messages; and a scale-generator graph must round-trip through the log
// byte-identically.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "graph/edge_log.h"
#include "graph/generators/generators.h"
#include "graph/temporal_graph.h"
#include "util/crc32.h"

namespace ehna {
namespace {

namespace fs = std::filesystem;

// On-disk framing constants, mirrored from edge_log.cc so the byte-surgery
// helpers below can patch specific fields.
constexpr size_t kHeaderBytes = 40;
constexpr size_t kRecordBytes = 24;
constexpr size_t kVersionOffset = 4;
constexpr size_t kNumNodesOffset = 8;
constexpr size_t kNumEdgesOffset = 16;
constexpr size_t kFlagsOffset = 24;
constexpr size_t kRecordBytesOffset = 28;
constexpr size_t kHeaderCrcOffset = 36;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<TemporalEdge> SampleEdges() {
  return {{0, 1, 1.0, 1.0f},
          {1, 2, 1.0, 0.5f},  // duplicate timestamp.
          {0, 3, 2.5, 2.0f},
          {2, 4, 2.5, 1.0f},
          {3, 4, 7.0, 1.0f}};
}

/// Writes SampleEdges() to a fresh log and returns its bytes.
std::string ValidLogBytes(const std::string& path) {
  EXPECT_TRUE(
      WriteEdgeLog(path, SampleEdges(), /*num_nodes=*/6, /*directed=*/false)
          .ok());
  return ReadBytes(path);
}

template <typename T>
void Patch(std::string* bytes, size_t offset, T value) {
  ASSERT_LE(offset + sizeof(T), bytes->size());
  std::memcpy(bytes->data() + offset, &value, sizeof(T));
}

/// Recomputes the header CRC after a header field patch, so the test
/// reaches the semantic validation it targets instead of tripping the
/// checksum.
void FixHeaderCrc(std::string* bytes) {
  Patch<uint32_t>(bytes, kHeaderCrcOffset,
                  Crc32(bytes->data(), kHeaderCrcOffset));
}

/// Recomputes the payload (record) CRC footer after a record patch.
void FixPayloadCrc(std::string* bytes) {
  const size_t payload = bytes->size() - kHeaderBytes - 4;
  Patch<uint32_t>(bytes, bytes->size() - 4,
                  Crc32(bytes->data() + kHeaderBytes, payload));
}

// -------------------------------------------------------------- round trip

TEST(EdgeLogTest, WriteReadRoundTrip) {
  const std::string path = TempPath("ehna_edge_log_roundtrip.ehnl");
  const auto edges = SampleEdges();
  ASSERT_TRUE(WriteEdgeLog(path, edges, 6, /*directed=*/false).ok());

  auto reader = EdgeLogReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader.value().num_nodes(), 6u);
  EXPECT_EQ(reader.value().num_edges(), edges.size());
  EXPECT_FALSE(reader.value().directed());
  for (size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(reader.value().Edge(i), edges[i]) << "record " << i;
  }
  fs::remove(path);
}

TEST(EdgeLogTest, DirectedFlagRoundTrips) {
  const std::string path = TempPath("ehna_edge_log_directed.ehnl");
  ASSERT_TRUE(WriteEdgeLog(path, SampleEdges(), 6, /*directed=*/true).ok());
  auto reader = EdgeLogReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.value().directed());

  auto g = TemporalGraph::FromEdgeLog(reader.value());
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g.value().directed());
  fs::remove(path);
}

TEST(EdgeLogTest, EmptyLogRoundTrips) {
  const std::string path = TempPath("ehna_edge_log_empty.ehnl");
  ASSERT_TRUE(
      WriteEdgeLog(path, std::span<const TemporalEdge>{}, 10, false).ok());
  auto reader = EdgeLogReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader.value().num_edges(), 0u);
  EXPECT_EQ(reader.value().num_nodes(), 10u);

  auto g = TemporalGraph::FromEdgeLog(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 10u);
  EXPECT_EQ(g.value().num_edges(), 0u);
  fs::remove(path);
}

TEST(EdgeLogTest, StreamingWriterMatchesConvenienceWrapper) {
  const std::string path_a = TempPath("ehna_edge_log_stream_a.ehnl");
  const std::string path_b = TempPath("ehna_edge_log_stream_b.ehnl");
  const auto edges = SampleEdges();
  ASSERT_TRUE(WriteEdgeLog(path_a, edges, 6, false).ok());

  auto writer = EdgeLogWriter::Create(path_b, 6, false);
  ASSERT_TRUE(writer.ok());
  for (const auto& e : edges) {
    ASSERT_TRUE(writer.value().Append(e).ok());
  }
  EXPECT_EQ(writer.value().num_appended(), edges.size());
  ASSERT_TRUE(writer.value().Finish().ok());

  EXPECT_EQ(ReadBytes(path_a), ReadBytes(path_b));
  fs::remove(path_a);
  fs::remove(path_b);
}

TEST(EdgeLogTest, AbandonedWriterLeavesNoFiles) {
  const std::string path = TempPath("ehna_edge_log_abandoned.ehnl");
  fs::remove(path);
  {
    auto writer = EdgeLogWriter::Create(path, 6, false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Append({0, 1, 1.0, 1.0f}).ok());
    // Destroyed without Finish(): the in-progress temporary must vanish and
    // the destination must never appear.
  }
  EXPECT_FALSE(fs::exists(path));
  for (const auto& entry : fs::directory_iterator(fs::temp_directory_path())) {
    EXPECT_EQ(entry.path().string().find("ehna_edge_log_abandoned"),
              std::string::npos)
        << "leftover: " << entry.path();
  }
}

// ------------------------------------------------------- writer validation

TEST(EdgeLogTest, WriterRejectsInvalidEdges) {
  const std::string path = TempPath("ehna_edge_log_writer_reject.ehnl");
  auto writer = EdgeLogWriter::Create(path, 4, false);
  ASSERT_TRUE(writer.ok());
  EdgeLogWriter& w = writer.value();

  EXPECT_EQ(w.Append({2, 2, 1.0, 1.0f}).code(),
            StatusCode::kInvalidArgument);  // self-loop.
  EXPECT_EQ(w.Append({0, 9, 1.0, 1.0f}).code(),
            StatusCode::kInvalidArgument);  // out of range.
  EXPECT_EQ(w.Append({0, 1, std::nan(""), 1.0f}).code(),
            StatusCode::kInvalidArgument);  // non-finite time.
  EXPECT_EQ(
      w.Append({0, 1, std::numeric_limits<double>::infinity(), 1.0f}).code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(w.Append({0, 1, 1.0, -2.0f}).code(),
            StatusCode::kInvalidArgument);  // negative weight.

  ASSERT_TRUE(w.Append({0, 1, 5.0, 1.0f}).ok());
  const Status regress = w.Append({1, 2, 4.0, 1.0f});  // time travel.
  EXPECT_EQ(regress.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(regress.message().find("time-sorted"), std::string::npos);
}

TEST(EdgeLogTest, WriterRejectsSentinelNodeCount) {
  EXPECT_FALSE(
      EdgeLogWriter::Create(TempPath("ehna_edge_log_sentinel.ehnl"),
                            kInvalidNode, false)
          .ok());
}

// ------------------------------------------------------------ fault injection

TEST(EdgeLogTest, EveryTruncationRejectedCleanly) {
  const std::string path = TempPath("ehna_edge_log_trunc.ehnl");
  const std::string good = ValidLogBytes(path);
  ASSERT_FALSE(good.empty());

  for (size_t len = good.size(); len-- > 0;) {
    fs::resize_file(path, len);
    const auto r = EdgeLogReader::Open(path);
    ASSERT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
  }
  fs::remove(path);
}

TEST(EdgeLogTest, EveryByteCorruptionRejectedCleanly) {
  const std::string path = TempPath("ehna_edge_log_flip.ehnl");
  const std::string good = ValidLogBytes(path);
  ASSERT_FALSE(good.empty());

  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  for (size_t i = 0; i < good.size(); ++i) {
    const char flipped = static_cast<char>(good[i] ^ 0xFF);
    f.seekp(static_cast<std::streamoff>(i));
    f.put(flipped);
    f.flush();
    const auto r = EdgeLogReader::Open(path);
    ASSERT_FALSE(r.ok()) << "flipped byte " << i << " accepted";
    f.seekp(static_cast<std::streamoff>(i));
    f.put(good[i]);
  }
  f.flush();
  f.close();
  // The pristine file still loads after all that surgery.
  EXPECT_TRUE(EdgeLogReader::Open(path).ok());
  fs::remove(path);
}

// -------------------------------------------------- crafted-header rejection

TEST(EdgeLogTest, RejectsBadMagic) {
  const std::string path = TempPath("ehna_edge_log_magic.ehnl");
  std::string bytes = ValidLogBytes(path);
  bytes[0] = 'X';
  WriteBytes(path, bytes);
  const auto r = EdgeLogReader::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("bad magic"), std::string::npos);
  fs::remove(path);
}

TEST(EdgeLogTest, RejectsUnsupportedVersionWithActionableMessage) {
  const std::string path = TempPath("ehna_edge_log_version.ehnl");
  std::string bytes = ValidLogBytes(path);
  Patch<uint32_t>(&bytes, kVersionOffset, 99);
  FixHeaderCrc(&bytes);  // past the checksum, into the semantic check.
  WriteBytes(path, bytes);
  const auto r = EdgeLogReader::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("version 99"), std::string::npos);
  EXPECT_NE(r.status().message().find("version 1"), std::string::npos);
  fs::remove(path);
}

TEST(EdgeLogTest, RejectsUnknownFlagsAndRecordSize) {
  const std::string path = TempPath("ehna_edge_log_flags.ehnl");
  std::string bytes = ValidLogBytes(path);
  Patch<uint32_t>(&bytes, kFlagsOffset, 0x8000'0000u);
  FixHeaderCrc(&bytes);
  WriteBytes(path, bytes);
  EXPECT_FALSE(EdgeLogReader::Open(path).ok());

  bytes = ValidLogBytes(path);
  Patch<uint32_t>(&bytes, kRecordBytesOffset, 32);
  FixHeaderCrc(&bytes);
  WriteBytes(path, bytes);
  const auto r = EdgeLogReader::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("record size 32"), std::string::npos);
  fs::remove(path);
}

TEST(EdgeLogTest, RejectsEdgeCountBeyondEdgeIdLimitWithClearError) {
  const std::string path = TempPath("ehna_edge_log_overflow.ehnl");
  std::string bytes = ValidLogBytes(path);
  // Claim 2^32 edges: one past what a 32-bit EdgeId can index. The reader
  // must name the limit rather than wrap the count (or complain only about
  // the file size).
  Patch<uint64_t>(&bytes, kNumEdgesOffset, uint64_t{1} << 32);
  FixHeaderCrc(&bytes);
  WriteBytes(path, bytes);
  const auto r = EdgeLogReader::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("32-bit EdgeId limit"),
            std::string::npos)
      << r.status().message();
  fs::remove(path);
}

TEST(EdgeLogTest, RejectsNodeCountBeyondNodeIdSpace) {
  const std::string path = TempPath("ehna_edge_log_node_overflow.ehnl");
  std::string bytes = ValidLogBytes(path);
  Patch<uint64_t>(&bytes, kNumNodesOffset, uint64_t{1} << 33);
  FixHeaderCrc(&bytes);
  WriteBytes(path, bytes);
  const auto r = EdgeLogReader::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("NodeId"), std::string::npos);
  fs::remove(path);
}

// ------------------------------------------------- crafted-record rejection

TEST(EdgeLogTest, RejectsNonFiniteTimestampNamingTheRecord) {
  const std::string path = TempPath("ehna_edge_log_nan.ehnl");
  std::string bytes = ValidLogBytes(path);
  Patch<double>(&bytes, kHeaderBytes + 1 * kRecordBytes + 8,
                std::numeric_limits<double>::quiet_NaN());
  FixPayloadCrc(&bytes);
  WriteBytes(path, bytes);
  const auto r = EdgeLogReader::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("record 1"), std::string::npos);
  EXPECT_NE(r.status().message().find("non-finite timestamp"),
            std::string::npos);
  fs::remove(path);
}

TEST(EdgeLogTest, RejectsOutOfRangeNodeIdNamingTheRecord) {
  const std::string path = TempPath("ehna_edge_log_badnode.ehnl");
  std::string bytes = ValidLogBytes(path);
  Patch<uint32_t>(&bytes, kHeaderBytes + 2 * kRecordBytes + 4, 1000);
  FixPayloadCrc(&bytes);
  WriteBytes(path, bytes);
  const auto r = EdgeLogReader::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("record 2"), std::string::npos);
  EXPECT_NE(r.status().message().find("1000"), std::string::npos);
  fs::remove(path);
}

TEST(EdgeLogTest, RejectsRegressingTimestampsAndNonzeroPad) {
  const std::string path = TempPath("ehna_edge_log_regress.ehnl");
  std::string bytes = ValidLogBytes(path);
  Patch<double>(&bytes, kHeaderBytes + 4 * kRecordBytes + 8, 0.25);
  FixPayloadCrc(&bytes);
  WriteBytes(path, bytes);
  auto r = EdgeLogReader::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("time-sorted"), std::string::npos);

  bytes = ValidLogBytes(path);
  Patch<uint32_t>(&bytes, kHeaderBytes + 0 * kRecordBytes + 20, 7);
  FixPayloadCrc(&bytes);
  WriteBytes(path, bytes);
  r = EdgeLogReader::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("pad"), std::string::npos);
  fs::remove(path);
}

TEST(EdgeLogTest, MissingFileIsIoError) {
  const auto r = EdgeLogReader::Open("/nonexistent_zzz/graph.ehnl");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

// ----------------------------------------------------- scale-graph round trip

/// The scale regression of ISSUE 8 satellite 4: a generator graph streamed
/// into a log must re-emit byte-identically after a mmap read — proving
/// the mapped records carry exactly the written bits end to end. Runs at
/// 2·10⁵ edges by default so every ctest sweep (including sanitizers)
/// covers it; EHNA_SCALE_TESTS=full lifts it to the 10⁷-edge / 10⁶-node
/// scale target (the CI scale-smoke step and local verification use this).
TEST(EdgeLogScaleTest, GeneratorGraphRoundTripsByteIdentically) {
  const char* full = std::getenv("EHNA_SCALE_TESTS");
  const bool full_scale =
      full != nullptr && std::string(full) == "full";
  ScaleGraphOptions opt;
  opt.num_nodes = full_scale ? 1'000'000 : 20'000;
  opt.num_edges = full_scale ? 10'000'000 : 200'000;
  opt.seed = 11;

  const std::string path_a = TempPath("ehna_edge_log_scale_a.ehnl");
  const std::string path_b = TempPath("ehna_edge_log_scale_b.ehnl");

  // Stream the generator straight into the log: no edge vector exists at
  // any point on the write side.
  {
    auto writer = EdgeLogWriter::Create(path_a, opt.num_nodes, false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(StreamScaleGraph(opt, [&](const TemporalEdge& e) {
                  return writer.value().Append(e);
                }).ok());
    ASSERT_EQ(writer.value().num_appended(), opt.num_edges);
    ASSERT_TRUE(writer.value().Finish().ok());
  }

  // Re-emit every mapped record through a second writer.
  {
    auto reader = EdgeLogReader::Open(path_a);
    ASSERT_TRUE(reader.ok()) << reader.status();
    ASSERT_EQ(reader.value().num_edges(), opt.num_edges);
    auto writer = EdgeLogWriter::Create(path_b, opt.num_nodes, false);
    ASSERT_TRUE(writer.ok());
    for (uint64_t i = 0; i < reader.value().num_edges(); ++i) {
      ASSERT_TRUE(writer.value().Append(reader.value().Edge(i)).ok());
    }
    ASSERT_TRUE(writer.value().Finish().ok());
  }

  // Chunked byte comparison keeps peak memory flat even at 240 MB logs.
  ASSERT_EQ(fs::file_size(path_a), fs::file_size(path_b));
  std::ifstream a(path_a, std::ios::binary), b(path_b, std::ios::binary);
  std::vector<char> buf_a(1 << 20), buf_b(1 << 20);
  while (a && b) {
    a.read(buf_a.data(), static_cast<std::streamsize>(buf_a.size()));
    b.read(buf_b.data(), static_cast<std::streamsize>(buf_b.size()));
    ASSERT_EQ(a.gcount(), b.gcount());
    ASSERT_TRUE(std::memcmp(buf_a.data(), buf_b.data(),
                            static_cast<size_t>(a.gcount())) == 0);
    if (a.gcount() == 0) break;
  }
  fs::remove(path_a);
  fs::remove(path_b);
}

}  // namespace
}  // namespace ehna
