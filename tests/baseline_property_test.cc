// Parameterized invariants of the baseline embedders: output shapes,
// finiteness, and determinism under a fixed seed, across dimension and
// configuration grids.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/ctdne.h"
#include "baselines/htne.h"
#include "baselines/line.h"
#include "baselines/node2vec.h"
#include "graph/generators/generators.h"

namespace ehna {
namespace {

const TemporalGraph& SharedGraph() {
  static const TemporalGraph* graph = [] {
    auto g = MakePaperDataset(PaperDataset::kDblp, 0.03, 13);
    EHNA_CHECK(g.ok());
    return new TemporalGraph(std::move(g).value());
  }();
  return *graph;
}

void ExpectFinite(const Tensor& emb) {
  for (int64_t i = 0; i < emb.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(emb.data()[i])) << "element " << i;
  }
}

// ------------------------------------------------------------- Node2Vec

class Node2VecProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Node2VecProperty, ShapeFinitenessDeterminism) {
  const auto [dim, window] = GetParam();
  const TemporalGraph& g = SharedGraph();
  Node2VecConfig cfg;
  cfg.sgns.dim = dim;
  cfg.sgns.window = window;
  cfg.walk.walk_length = 10;
  cfg.walk.walks_per_node = 2;
  cfg.epochs = 1;
  cfg.seed = 21;
  Tensor a = Node2VecEmbedder(cfg).Fit(g);
  EXPECT_EQ(a.rows(), static_cast<int64_t>(g.num_nodes()));
  EXPECT_EQ(a.cols(), dim);
  ExpectFinite(a);
  Tensor b = Node2VecEmbedder(cfg).Fit(g);
  EXPECT_EQ(a, b);  // deterministic under a fixed seed.
}

INSTANTIATE_TEST_SUITE_P(Grid, Node2VecProperty,
                         ::testing::Combine(::testing::Values(4, 16),
                                            ::testing::Values(2, 6)));

// ---------------------------------------------------------------- CTDNE

class CtdneProperty : public ::testing::TestWithParam<int> {};

TEST_P(CtdneProperty, ShapeFinitenessDeterminism) {
  const int dim = GetParam();
  const TemporalGraph& g = SharedGraph();
  CtdneConfig cfg;
  cfg.sgns.dim = dim;
  cfg.walk.walk_length = 10;
  cfg.walk.min_length = 2;
  cfg.walks_per_epoch = 150;
  cfg.epochs = 1;
  cfg.seed = 22;
  Tensor a = CtdneEmbedder(cfg).Fit(g);
  EXPECT_EQ(a.cols(), dim);
  ExpectFinite(a);
  Tensor b = CtdneEmbedder(cfg).Fit(g);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Dims, CtdneProperty, ::testing::Values(4, 16, 32));

// ----------------------------------------------------------------- LINE

class LineProperty : public ::testing::TestWithParam<int> {};

TEST_P(LineProperty, HalvesNormalizedAndDeterministic) {
  const int dim = GetParam();
  const TemporalGraph& g = SharedGraph();
  LineConfig cfg;
  cfg.dim = dim;
  cfg.epochs = 1;
  cfg.samples_per_epoch = 400;
  cfg.seed = 23;
  Tensor a = LineEmbedder(cfg).Fit(g);
  const int64_t half = std::max<int64_t>(1, dim / 2);
  EXPECT_EQ(a.cols(), 2 * half);
  ExpectFinite(a);
  // Both halves unit-norm for nodes with any updates (all nodes have
  // degree > 0 in this generator).
  for (NodeId v = 0; v < std::min<NodeId>(g.num_nodes(), 20); ++v) {
    double n1 = 0.0;
    for (int64_t j = 0; j < half; ++j) {
      n1 += static_cast<double>(a.at(v, j)) * a.at(v, j);
    }
    EXPECT_NEAR(n1, 1.0, 1e-3) << "node " << v;
  }
  Tensor b = LineEmbedder(cfg).Fit(g);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Dims, LineProperty, ::testing::Values(8, 16, 30));

// ----------------------------------------------------------------- HTNE

class HtneProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HtneProperty, ShapeFinitenessDeterminism) {
  const auto [dim, history] = GetParam();
  const TemporalGraph& g = SharedGraph();
  HtneConfig cfg;
  cfg.dim = dim;
  cfg.history_size = history;
  cfg.epochs = 1;
  cfg.events_per_epoch = 200;
  cfg.negatives = 1;
  cfg.seed = 24;
  Tensor a = HtneEmbedder(cfg).Fit(g);
  EXPECT_EQ(a.cols(), dim);
  ExpectFinite(a);
  Tensor b = HtneEmbedder(cfg).Fit(g);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Grid, HtneProperty,
                         ::testing::Combine(::testing::Values(4, 16),
                                            ::testing::Values(1, 5, 10)));

}  // namespace
}  // namespace ehna
