#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "util/alias_sampler.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ehna {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, StreamOperatorRendersToString) {
  std::ostringstream os;
  os << Status::NotFound("missing");
  EXPECT_EQ(os.str(), "NotFound: missing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, OkStatusNormalizedToInternalError) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  EHNA_ASSIGN_OR_RETURN(int half, HalveEven(x));
  EHNA_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  auto ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  auto err = QuarterEven(6);  // 6 -> 3 -> odd.
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(6);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit.
}

TEST(RngTest, SignedUniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(8);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, PowerLawWithinRangeAndSkewed) {
  Rng rng(11);
  int small = 0;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k = rng.PowerLaw(2.0, 100);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 100u);
    small += k <= 3;
  }
  // A 2.0-exponent power law concentrates mass on small values.
  EXPECT_GT(small, 2500);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  for (size_t k : {size_t{1}, size_t{5}, size_t{50}, size_t{99}}) {
    auto s = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (size_t x : s) EXPECT_LT(x, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementAllWhenKTooLarge) {
  Rng rng(14);
  auto s = rng.SampleWithoutReplacement(10, 50);
  EXPECT_EQ(s.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(15);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

// -------------------------------------------------------- AliasSampler

TEST(AliasSamplerTest, EmptyWeightsYieldEmptySampler) {
  AliasSampler s{std::vector<double>{}};
  EXPECT_TRUE(s.empty());
  AliasSampler zero{std::vector<double>{0.0, 0.0}};
  EXPECT_TRUE(zero.empty());
}

TEST(AliasSamplerTest, SingleOutcome) {
  AliasSampler s{std::vector<double>{3.0}};
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s.Sample(&rng), 0u);
}

TEST(AliasSamplerTest, MatchesTargetDistribution) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  AliasSampler s(weights);
  Rng rng(2);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[s.Sample(&rng)];
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), weights[i] / 10.0, 0.01)
        << "outcome " << i;
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler s{std::vector<double>{1.0, 0.0, 1.0}};
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(s.Sample(&rng), 1u);
}

TEST(AliasSamplerTest, RebuildReplacesDistribution) {
  AliasSampler s{std::vector<double>{1.0, 0.0}};
  s.Build({0.0, 1.0});
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(s.Sample(&rng), 1u);
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

// ---------------------------------------------------------------- Timer

TEST(TimerTest, MeasuresElapsedMonotonically) {
  Timer t;
  const double a = t.ElapsedSeconds();
  const double b = t.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(TimerTest, RestartResets) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  t.Restart();
  EXPECT_LT(t.ElapsedSeconds(), 0.5);
}

// ---------------------------------------------------------- TableWriter

TEST(TableWriterTest, PrintsAlignedTable) {
  TableWriter tw("Demo", {"name", "value"});
  tw.AddRow({"alpha", "1"});
  tw.AddRow({"b", "22"});
  std::ostringstream os;
  tw.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("| b    "), std::string::npos);  // padded cell.
}

TEST(TableWriterTest, FormatDouble) {
  EXPECT_EQ(TableWriter::FormatDouble(0.123456, 4), "0.1235");
  EXPECT_EQ(TableWriter::FormatDouble(2.0, 1), "2.0");
}

TEST(TableWriterTest, WritesTsv) {
  TableWriter tw("T", {"a", "b"});
  tw.AddRow({"1", "2"});
  const std::string path =
      (std::filesystem::temp_directory_path() / "ehna_table_test.tsv")
          .string();
  ASSERT_TRUE(tw.WriteTsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a\tb");
  std::getline(in, line);
  EXPECT_EQ(line, "1\t2");
  std::filesystem::remove(path);
}

TEST(TableWriterTest, TsvToMissingDirectoryFails) {
  TableWriter tw("T", {"a"});
  EXPECT_FALSE(tw.WriteTsv("/nonexistent_dir_zzz/file.tsv").ok());
}

// ------------------------------------------------------------ RNG state

TEST(RngStateTest, SnapshotRestoreContinuesExactSequence) {
  Rng rng(42);
  for (int i = 0; i < 100; ++i) rng.Next();
  rng.Normal();  // leaves a cached Box-Muller spare in the state.
  const Rng::State snapshot = rng.state();

  std::vector<double> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(rng.Normal());

  Rng other(7);  // arbitrary diverged generator.
  other.set_state(snapshot);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(other.Normal(), expected[i]);
}

// ---------------------------------------------------------------- CRC-32

TEST(Crc32Test, KnownVectorAndIncrementalEquivalence) {
  // The canonical IEEE test vector.
  const char kCheck[] = "123456789";
  EXPECT_EQ(Crc32(kCheck, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Incremental over a split buffer matches one shot.
  const uint32_t part = Crc32(kCheck, 4);
  EXPECT_EQ(Crc32(kCheck + 4, 5, part), 0xCBF43926u);
  // A single flipped bit changes the sum.
  const char kFlipped[] = "123456788";
  EXPECT_NE(Crc32(kFlipped, 9), 0xCBF43926u);
}

// ----------------------------------------------------------- Atomic write

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Temp files share the destination's directory and name prefix; any left
/// behind would start with "<name>.tmp.".
size_t CountTempFiles(const std::string& dir, const std::string& name) {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind(name + ".tmp.", 0) == 0) ++n;
  }
  return n;
}

TEST(AtomicFileTest, WritesContentAndReplacesExisting) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "ehna_atomic_ok.txt").string();
  ASSERT_TRUE(AtomicWriteFile(path, std::string("first")).ok());
  EXPECT_EQ(Slurp(path), "first");
  ASSERT_TRUE(AtomicWriteFile(path, std::string("second")).ok());
  EXPECT_EQ(Slurp(path), "second");
  EXPECT_EQ(CountTempFiles(dir.string(), "ehna_atomic_ok.txt"), 0u);
  std::filesystem::remove(path);
}

TEST(AtomicFileTest, WriterErrorLeavesDestinationUntouched) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "ehna_atomic_err.txt").string();
  ASSERT_TRUE(AtomicWriteFile(path, std::string("precious")).ok());
  // The writer streams half its output and then reports failure —
  // simulating a crash/abort mid-write. The destination must keep its old
  // complete content, never a truncated hybrid, and the temp must be gone.
  const Status st = AtomicWriteFile(path, [](std::ostream& out) -> Status {
    out << "partial garbage";
    return Status::IoError("simulated mid-write failure");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(Slurp(path), "precious");
  EXPECT_EQ(CountTempFiles(dir.string(), "ehna_atomic_err.txt"), 0u);
  std::filesystem::remove(path);
}

TEST(AtomicFileTest, FailedRenameCleansUpTempAndReportsError) {
  const auto dir = std::filesystem::temp_directory_path();
  // A directory at the destination makes the final rename itself fail
  // after a fully successful temp write.
  const std::string path = (dir / "ehna_atomic_dir_dest").string();
  std::filesystem::create_directories(path);
  std::filesystem::create_directories(path + "/occupant");  // non-empty.
  const Status st = AtomicWriteFile(path, std::string("content"));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_TRUE(std::filesystem::is_directory(path));
  EXPECT_EQ(CountTempFiles(dir.string(), "ehna_atomic_dir_dest"), 0u);
  std::filesystem::remove_all(path);
}

TEST(AtomicFileTest, UnwritableTemporaryFails) {
  EXPECT_FALSE(
      AtomicWriteFile("/nonexistent_dir_zzz/file", std::string("x")).ok());
}

// -------------------------------------------------------------- Log level

/// Restores the log level on scope exit so these tests cannot leak
/// verbosity changes into the rest of the suite.
class ScopedLogLevel {
 public:
  ScopedLogLevel() : saved_(GetLogLevel()) {}
  ~ScopedLogLevel() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogLevelTest, SetFromStringAcceptsNamesAndNumbers) {
  ScopedLogLevel restore;
  EXPECT_TRUE(SetLogLevelFromString("debug"));
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  EXPECT_TRUE(SetLogLevelFromString("WARNING"));  // case-insensitive.
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  EXPECT_TRUE(SetLogLevelFromString("warn"));
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  EXPECT_TRUE(SetLogLevelFromString("3"));
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  EXPECT_TRUE(SetLogLevelFromString("1"));
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST(LogLevelTest, InvalidSpecLeavesLevelUnchanged) {
  ScopedLogLevel restore;
  SetLogLevel(LogLevel::kWarning);
  EXPECT_FALSE(SetLogLevelFromString(nullptr));
  EXPECT_FALSE(SetLogLevelFromString(""));
  EXPECT_FALSE(SetLogLevelFromString("verbose"));
  EXPECT_FALSE(SetLogLevelFromString("42"));
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST(LogLevelTest, InitFromEnvHonorsVariable) {
  ScopedLogLevel restore;
  SetLogLevel(LogLevel::kInfo);
  ASSERT_EQ(setenv("EHNA_LOG_LEVEL", "error", /*overwrite=*/1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // An invalid value is ignored, keeping the current level.
  ASSERT_EQ(setenv("EHNA_LOG_LEVEL", "bogus", 1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  ASSERT_EQ(unsetenv("EHNA_LOG_LEVEL"), 0);
  InitLogLevelFromEnv();  // no variable: also a no-op.
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LogLevelTest, ConcurrentGetSetIsSafe) {
  // The level lives in a std::atomic: hammering Get/Set from pool workers
  // must neither tear nor deadlock (TSan-clean under the CI tsan job).
  ScopedLogLevel restore;
  ThreadPool pool(4);
  for (int t = 0; t < 16; ++t) {
    pool.Submit([t] {
      for (int i = 0; i < 1000; ++i) {
        if (t % 2 == 0) {
          SetLogLevel(i % 2 == 0 ? LogLevel::kDebug : LogLevel::kError);
        } else {
          const LogLevel level = GetLogLevel();
          ASSERT_GE(static_cast<int>(level), 0);
          ASSERT_LE(static_cast<int>(level), 3);
        }
      }
    });
  }
  pool.Wait();
}

// -------------------------------------------- AliasSampler degenerate use

TEST(AliasSamplerDeathTest, SampleFromDegenerateSamplerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(1);
  AliasSampler empty;
  EXPECT_DEATH(empty.Sample(&rng), "degenerate");
  // All-zero weights build an empty sampler: also a checked, hard error in
  // Release builds (previously UB guarded only by a DCHECK).
  AliasSampler zeros(std::vector<double>{0.0, 0.0, 0.0});
  EXPECT_TRUE(zeros.empty());
  EXPECT_DEATH(zeros.Sample(&rng), "degenerate");
}

}  // namespace
}  // namespace ehna
