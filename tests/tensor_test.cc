#include <gtest/gtest.h>

#include <cmath>

#include "nn/init.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace ehna {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, Rank1ZeroInitialized) {
  Tensor t(5);
  EXPECT_EQ(t.rank(), 1);
  EXPECT_EQ(t.numel(), 5);
  for (int64_t i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(TensorTest, Rank2Shape) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.numel(), 12);
}

TEST(TensorTest, FromVector1D) {
  Tensor t = Tensor::FromVector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.rank(), 1);
  EXPECT_FLOAT_EQ(t[1], 2.0f);
}

TEST(TensorTest, FromVector2DRowMajor) {
  Tensor t = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(t.at(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 4.0f);
}

TEST(TensorTest, FullFills) {
  Tensor t = Tensor::Full(2, 2, 7.0f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(t.data()[i], 7.0f);
}

TEST(TensorTest, SameShape) {
  EXPECT_TRUE(Tensor(2, 3).SameShape(Tensor(2, 3)));
  EXPECT_FALSE(Tensor(2, 3).SameShape(Tensor(3, 2)));
  EXPECT_FALSE(Tensor(6).SameShape(Tensor(6, 1)));  // rank differs.
}

TEST(TensorTest, AddInPlaceAndAxpy) {
  Tensor a = Tensor::FromVector({1, 2, 3});
  Tensor b = Tensor::FromVector({10, 20, 30});
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a[2], 33.0f);
  a.Axpy(0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 16.0f);
}

TEST(TensorTest, ScaleSumNorm) {
  Tensor a = Tensor::FromVector({3, 4});
  EXPECT_FLOAT_EQ(a.Sum(), 7.0f);
  EXPECT_FLOAT_EQ(a.Norm(), 5.0f);
  a.ScaleInPlace(2.0f);
  EXPECT_FLOAT_EQ(a.Sum(), 14.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6});
  Tensor m = a.Reshape(2, 3);
  EXPECT_EQ(m.rank(), 2);
  EXPECT_FLOAT_EQ(m.at(1, 2), 6.0f);
}

TEST(TensorTest, ToStringTruncates) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5});
  EXPECT_EQ(a.ToString(2), "[5]{1, 2, ...}");
}

TEST(TensorTest, MatMulCorrectness) {
  Tensor a = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  // [[58, 64], [139, 154]]
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorTest, MatMulTransposeVariantsAgree) {
  Rng rng(1);
  Tensor a(4, 3), b(3, 5);
  UniformInit(&a, -1, 1, &rng);
  UniformInit(&b, -1, 1, &rng);
  Tensor direct = MatMul(a, b);
  Tensor via_tb = MatMulTransposeB(a, Transpose(b));
  Tensor via_ta = MatMulTransposeA(Transpose(a), b);
  for (int64_t i = 0; i < direct.numel(); ++i) {
    EXPECT_NEAR(direct.data()[i], via_tb.data()[i], 1e-5);
    EXPECT_NEAR(direct.data()[i], via_ta.data()[i], 1e-5);
  }
}

TEST(TensorTest, TransposeInvolution) {
  Rng rng(2);
  Tensor a(3, 7);
  UniformInit(&a, -1, 1, &rng);
  Tensor tt = Transpose(Transpose(a));
  EXPECT_EQ(tt, a);
}

TEST(InitTest, XavierBounds) {
  Rng rng(3);
  Tensor w(50, 50);
  XavierInit(&w, 50, 50, &rng);
  const float bound = std::sqrt(6.0f / 100.0f);
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::abs(w.data()[i]), bound);
  }
}

TEST(InitTest, NormalInitSpread) {
  Rng rng(4);
  Tensor w(100, 100);
  NormalInit(&w, 0.1f, &rng);
  double sq = 0.0;
  for (int64_t i = 0; i < w.numel(); ++i) {
    sq += static_cast<double>(w.data()[i]) * w.data()[i];
  }
  EXPECT_NEAR(std::sqrt(sq / w.numel()), 0.1, 0.01);
}

}  // namespace
}  // namespace ehna
