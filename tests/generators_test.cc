#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators/generators.h"
#include "graph/generators/recency_buffer.h"

namespace ehna {
namespace {

// ----------------------------------------------------------- RecencyBuffer

TEST(RecencyBufferTest, SamplesRecentEntriesMoreOften) {
  gen_internal::RecencyBuffer buf(/*half_life=*/10.0);
  for (NodeId v = 0; v < 100; ++v) buf.Append(v);
  Rng rng(1);
  int recent = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (buf.Sample(&rng) >= 80) ++recent;  // last 20 entries = 2 half-lives.
  }
  // Geometric weighting concentrates most mass on the last ~2 half-lives.
  EXPECT_GT(recent, n / 2);
}

TEST(RecencyBufferTest, SingleEntry) {
  gen_internal::RecencyBuffer buf(5.0);
  buf.Append(42);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(buf.Sample(&rng), 42u);
}

// -------------------------------------------------------------- Coauthor

TEST(CoauthorGeneratorTest, ProducesRequestedScale) {
  CoauthorGraphOptions opt;
  opt.num_papers = 500;
  opt.seed = 3;
  auto g = MakeCoauthorGraph(opt);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g.value().num_edges(), 500u);  // >= 1 edge per paper.
  EXPECT_GT(g.value().num_nodes(), 20u);
}

TEST(CoauthorGeneratorTest, TimestampsAreChronologicalPaperIndices) {
  CoauthorGraphOptions opt;
  opt.num_papers = 200;
  auto g = MakeCoauthorGraph(opt);
  ASSERT_TRUE(g.ok());
  EXPECT_GE(g.value().min_time(), 0.0);
  EXPECT_LT(g.value().max_time(), 200.0);
}

TEST(CoauthorGeneratorTest, DeterministicForSeed) {
  CoauthorGraphOptions opt;
  opt.num_papers = 100;
  opt.seed = 7;
  auto a = MakeCoauthorGraph(opt);
  auto b = MakeCoauthorGraph(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().edges(), b.value().edges());
}

TEST(CoauthorGeneratorTest, RejectsBadOptions) {
  CoauthorGraphOptions opt;
  opt.num_papers = 1;
  EXPECT_FALSE(MakeCoauthorGraph(opt).ok());
  opt.num_papers = 100;
  opt.new_author_prob = 1.5;
  EXPECT_FALSE(MakeCoauthorGraph(opt).ok());
}

TEST(CoauthorGeneratorTest, HasTransitiveStructure) {
  CoauthorGraphOptions opt;
  opt.num_papers = 800;
  opt.seed = 5;
  auto g = MakeCoauthorGraph(opt);
  ASSERT_TRUE(g.ok());
  // Papers with >= 3 authors create triangles; check some exist.
  size_t triangles = 0;
  const auto& graph = g.value();
  for (NodeId v = 0; v < std::min<NodeId>(graph.num_nodes(), 100); ++v) {
    auto nbrs = graph.Neighbors(v);
    for (size_t i = 0; i < nbrs.size() && triangles == 0; ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (graph.HasEdge(nbrs[i].neighbor, nbrs[j].neighbor)) {
          ++triangles;
          break;
        }
      }
    }
  }
  EXPECT_GT(triangles, 0u);
}

// ---------------------------------------------------------------- Social

TEST(SocialGeneratorTest, ExactEdgeCountAndDedup) {
  SocialGraphOptions opt;
  opt.num_nodes = 300;
  opt.num_edges = 1500;
  opt.seed = 4;
  auto g = MakeSocialGraph(opt);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_edges(), 1500u);
  EXPECT_EQ(g.value().num_nodes(), 300u);
  // Friendships are unique (no parallel edges).
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& e : g.value().edges()) {
    auto key = std::minmax(e.src, e.dst);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
  }
}

TEST(SocialGeneratorTest, RejectsTooDenseRequest) {
  SocialGraphOptions opt;
  opt.num_nodes = 10;
  opt.num_edges = 40;  // > half of C(10,2)=45/2.
  EXPECT_FALSE(MakeSocialGraph(opt).ok());
}

TEST(SocialGeneratorTest, TimestampsStrictlyIncreasing) {
  SocialGraphOptions opt;
  opt.num_nodes = 200;
  opt.num_edges = 800;
  auto g = MakeSocialGraph(opt);
  ASSERT_TRUE(g.ok());
  const auto& edges = g.value().edges();
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GT(edges[i].time, edges[i - 1].time);
  }
}

TEST(SocialGeneratorTest, DeterministicForSeed) {
  SocialGraphOptions opt;
  opt.num_nodes = 100;
  opt.num_edges = 300;
  opt.seed = 9;
  auto a = MakeSocialGraph(opt);
  auto b = MakeSocialGraph(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().edges(), b.value().edges());
}

// ------------------------------------------------------------- Bipartite

TEST(BipartiteGeneratorTest, EdgesRespectBipartition) {
  BipartiteGraphOptions opt;
  opt.num_users = 100;
  opt.num_items = 50;
  opt.num_edges = 800;
  opt.seed = 5;
  for (BipartiteMode mode : {BipartiteMode::kReview, BipartiteMode::kPurchase}) {
    opt.mode = mode;
    auto g = MakeBipartiteGraph(opt);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().num_edges(), 800u);
    for (const auto& e : g.value().edges()) {
      EXPECT_LT(e.src, 100u);   // user side.
      EXPECT_GE(e.dst, 100u);   // item side.
      EXPECT_LT(e.dst, 150u);
    }
  }
}

TEST(BipartiteGeneratorTest, ReviewModeDeduplicates) {
  BipartiteGraphOptions opt;
  opt.num_users = 150;
  opt.num_items = 100;
  opt.num_edges = 1000;
  opt.mode = BipartiteMode::kReview;
  auto g = MakeBipartiteGraph(opt);
  ASSERT_TRUE(g.ok());
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& e : g.value().edges()) {
    EXPECT_TRUE(seen.insert({e.src, e.dst}).second);
  }
}

TEST(BipartiteGeneratorTest, PurchaseModeAllowsRepeats) {
  BipartiteGraphOptions opt;
  opt.num_users = 20;
  opt.num_items = 10;
  opt.num_edges = 2000;
  opt.mode = BipartiteMode::kPurchase;
  auto g = MakeBipartiteGraph(opt);
  ASSERT_TRUE(g.ok());
  std::set<std::pair<NodeId, NodeId>> seen;
  size_t repeats = 0;
  for (const auto& e : g.value().edges()) {
    if (!seen.insert({e.src, e.dst}).second) ++repeats;
  }
  EXPECT_GT(repeats, 0u);
}

TEST(BipartiteGeneratorTest, PopularityIsSkewed) {
  BipartiteGraphOptions opt;
  opt.num_users = 300;
  opt.num_items = 200;
  opt.num_edges = 3000;
  auto g = MakeBipartiteGraph(opt);
  ASSERT_TRUE(g.ok());
  auto degrees = g.value().Degrees();
  std::vector<size_t> item_degrees(degrees.begin() + 300, degrees.end());
  std::sort(item_degrees.rbegin(), item_degrees.rend());
  size_t top_mass = 0, total = 0;
  for (size_t i = 0; i < item_degrees.size(); ++i) {
    if (i < item_degrees.size() / 10) top_mass += item_degrees[i];
    total += item_degrees[i];
  }
  // Top 10% of items should attract well above 10% of interactions.
  EXPECT_GT(top_mass, total / 5);
}

// ------------------------------------------------------------ Random/null

TEST(RandomGeneratorTest, ProducesSimpleGraph) {
  RandomGraphOptions opt;
  opt.num_nodes = 100;
  opt.num_edges = 500;
  auto g = MakeRandomGraph(opt);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_edges(), 500u);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& e : g.value().edges()) {
    EXPECT_NE(e.src, e.dst);
    auto key = std::minmax(e.src, e.dst);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
  }
}

TEST(RandomGeneratorTest, ImpossibleDensityFails) {
  RandomGraphOptions opt;
  opt.num_nodes = 5;
  opt.num_edges = 100;  // > C(5,2)=10.
  EXPECT_FALSE(MakeRandomGraph(opt).ok());
}

// ---------------------------------------------------------- PaperDataset

TEST(PaperDatasetTest, AllFourBuild) {
  for (PaperDataset d : {PaperDataset::kDigg, PaperDataset::kYelp,
                         PaperDataset::kTmall, PaperDataset::kDblp}) {
    auto g = MakePaperDataset(d, /*scale=*/0.1, /*seed=*/1);
    ASSERT_TRUE(g.ok()) << PaperDatasetName(d) << ": " << g.status();
    EXPECT_GT(g.value().num_edges(), 100u) << PaperDatasetName(d);
    EXPECT_GT(g.value().num_nodes(), 10u) << PaperDatasetName(d);
  }
}

TEST(PaperDatasetTest, ScaleGrowsGraph) {
  auto small = MakePaperDataset(PaperDataset::kDigg, 0.1, 1);
  auto large = MakePaperDataset(PaperDataset::kDigg, 0.3, 1);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large.value().num_edges(), small.value().num_edges());
}

TEST(PaperDatasetTest, NamesAreStable) {
  EXPECT_STREQ(PaperDatasetName(PaperDataset::kDigg), "Digg");
  EXPECT_STREQ(PaperDatasetName(PaperDataset::kYelp), "Yelp");
  EXPECT_STREQ(PaperDatasetName(PaperDataset::kTmall), "Tmall");
  EXPECT_STREQ(PaperDatasetName(PaperDataset::kDblp), "DBLP");
}

TEST(PaperDatasetTest, InvalidScaleRejected) {
  EXPECT_FALSE(MakePaperDataset(PaperDataset::kDigg, 0.0, 1).ok());
}

}  // namespace
}  // namespace ehna
