// Verifies observable consequences of §III Problem 1 on trained EHNA
// embeddings at test scale: (1) second-order proximity — nodes with
// similar neighborhoods end up closer than nodes with disjoint
// neighborhoods even without a direct link; (2) the hinge objective's
// degenerate collapse optimum is avoided. (First-order separation under
// *unweighted* distance is not stable at micro training scale — the
// link-prediction protocol's classifier reweights dimensions, which
// integration_test covers end-to-end.)
#include <gtest/gtest.h>

#include <cmath>

#include "core/model.h"
#include "graph/generators/generators.h"

namespace ehna {
namespace {

double SquaredDistance(const Tensor& emb, NodeId a, NodeId b) {
  double d = 0.0;
  for (int64_t j = 0; j < emb.cols(); ++j) {
    const double diff = emb.at(a, j) - emb.at(b, j);
    d += diff * diff;
  }
  return d;
}

Tensor TrainSmallEhna(const TemporalGraph& g, uint64_t seed) {
  EhnaConfig cfg;
  cfg.dim = 16;
  cfg.num_walks = 4;
  cfg.walk_length = 5;
  cfg.num_negatives = 2;
  cfg.batch_edges = 16;
  cfg.epochs = 3;
  cfg.max_edges_per_epoch = 800;
  cfg.seed = seed;
  EhnaModel model(&g, cfg);
  model.Train();
  return model.FinalizeEmbeddings();
}

TEST(ProximityTest, SecondOrderSharedNeighborhoodsCloser) {
  // Build a graph where pairs (a, b) share all neighbors but never link
  // directly, vs. pairs with disjoint neighborhoods. Star-of-stars:
  // groups of "siblings" hang off the same hubs.
  std::vector<TemporalEdge> edges;
  Timestamp t = 0.0;
  // 6 hubs (0..5); siblings 6..17 attach to two hubs each; pairs of
  // siblings sharing the same two hubs are the "similar neighborhood"
  // pairs.
  for (NodeId s = 0; s < 12; ++s) {
    const NodeId sibling = 6 + s;
    const NodeId hub_a = s / 2 % 6;
    const NodeId hub_b = (s / 2 + 3) % 6;
    // Repeat interactions so temporal walks have history.
    for (int r = 0; r < 4; ++r) {
      edges.push_back({sibling, hub_a, t, 1.0f});
      t += 1.0;
      edges.push_back({sibling, hub_b, t, 1.0f});
      t += 1.0;
    }
  }
  auto made = TemporalGraph::FromEdges(edges);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  const Tensor emb = TrainSmallEhna(g, 3);

  double shared = 0.0, disjoint = 0.0;
  int shared_n = 0, disjoint_n = 0;
  for (NodeId s1 = 6; s1 < 18; ++s1) {
    for (NodeId s2 = s1 + 1; s2 < 18; ++s2) {
      ASSERT_FALSE(g.HasEdge(s1, s2));  // siblings never link directly.
      const bool same_hubs = (s1 - 6) / 2 == (s2 - 6) / 2;
      const double d = SquaredDistance(emb, s1, s2);
      if (same_hubs) {
        shared += d;
        ++shared_n;
      } else {
        disjoint += d;
        ++disjoint_n;
      }
    }
  }
  ASSERT_GT(shared_n, 0);
  ASSERT_GT(disjoint_n, 0);
  // Second-order proximity: same-neighborhood siblings closer on average.
  EXPECT_LT(shared / shared_n, disjoint / disjoint_n);
}

TEST(ProximityTest, EmbeddingsDoNotCollapse) {
  // Guard against the degenerate optimum of the hinge objective: after
  // training, the embedding cloud must retain spread (mean pairwise
  // squared distance on the unit sphere well above zero).
  auto made = MakePaperDataset(PaperDataset::kTmall, 0.04, 33);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  const Tensor emb = TrainSmallEhna(g, 5);
  Rng rng(6);
  double total = 0.0;
  const int n = 2000;
  for (int s = 0; s < n; ++s) {
    const NodeId a = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    const NodeId b = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    if (a == b) continue;
    total += SquaredDistance(emb, a, b);
  }
  EXPECT_GT(total / n, 0.05);
}

}  // namespace
}  // namespace ehna
