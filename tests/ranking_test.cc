#include <gtest/gtest.h>

#include <cmath>

#include "eval/ranking_metrics.h"
#include "graph/generators/generators.h"
#include "walk/temporal_walk.h"
#include "walk/walk_stats.h"

namespace ehna {
namespace {

// Ranked order by score desc: items 0(0.9,rel) 1(0.8) 2(0.7,rel) 3(0.6)
const std::vector<double> kScores{0.9, 0.8, 0.7, 0.6};
const std::vector<int> kRel{1, 0, 1, 0};

TEST(RankingMetricsTest, PrecisionAtK) {
  EXPECT_DOUBLE_EQ(PrecisionAtK(kScores, kRel, 1).value(), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kScores, kRel, 2).value(), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kScores, kRel, 3).value(), 2.0 / 3.0);
  // k beyond the list clamps.
  EXPECT_DOUBLE_EQ(PrecisionAtK(kScores, kRel, 100).value(), 0.5);
}

TEST(RankingMetricsTest, RecallAtK) {
  EXPECT_DOUBLE_EQ(RecallAtK(kScores, kRel, 1).value(), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(kScores, kRel, 3).value(), 1.0);
}

TEST(RankingMetricsTest, AveragePrecision) {
  // Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2 = 5/6.
  EXPECT_NEAR(AveragePrecision(kScores, kRel).value(), 5.0 / 6.0, 1e-12);
  // Perfect ranking has AP 1.
  EXPECT_DOUBLE_EQ(
      AveragePrecision({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}).value(), 1.0);
}

TEST(RankingMetricsTest, ReciprocalRank) {
  EXPECT_DOUBLE_EQ(ReciprocalRank(kScores, kRel).value(), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({0.9, 0.8}, {0, 1}).value(), 0.5);
  EXPECT_DOUBLE_EQ(ReciprocalRank({0.9, 0.8}, {0, 0}).value(), 0.0);
}

TEST(RankingMetricsTest, NdcgAtK) {
  // Relevant at ranks 1 and 3 of 4; ideal puts them at ranks 1 and 2.
  const double dcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(4.0);
  const double ideal = 1.0 / std::log2(2.0) + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK(kScores, kRel, 4).value(), dcg / ideal, 1e-12);
  // Perfect ordering = 1.
  EXPECT_DOUBLE_EQ(NdcgAtK({0.9, 0.8}, {1, 1}, 2).value(), 1.0);
}

TEST(RankingMetricsTest, ValidatesInputs) {
  EXPECT_FALSE(PrecisionAtK({}, {}, 1).ok());
  EXPECT_FALSE(PrecisionAtK({0.5}, {1, 0}, 1).ok());
  EXPECT_FALSE(PrecisionAtK({0.5}, {2}, 1).ok());
  EXPECT_FALSE(PrecisionAtK(kScores, kRel, 0).ok());
  EXPECT_FALSE(RecallAtK({0.5, 0.4}, {0, 0}, 1).ok());
  EXPECT_FALSE(AveragePrecision({0.5}, {0}).ok());
  EXPECT_FALSE(NdcgAtK({0.5}, {0}, 1).ok());
}

TEST(RankingMetricsTest, StableTieBreaking) {
  // Equal scores keep input order.
  EXPECT_DOUBLE_EQ(PrecisionAtK({0.5, 0.5}, {1, 0}, 1).value(), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({0.5, 0.5}, {0, 1}, 1).value(), 0.0);
}

// -------------------------------------------------------------- WalkStats

Walk MakeWalk(std::initializer_list<NodeId> nodes,
              std::initializer_list<Timestamp> times) {
  Walk w;
  auto tit = times.begin();
  bool first = true;
  for (NodeId v : nodes) {
    w.push_back(WalkStep{v, first ? 0.0 : *tit++, 1.0f});
    first = false;
  }
  return w;
}

TEST(WalkStatsTest, BasicCorpusStatistics) {
  std::vector<Walk> walks{
      MakeWalk({0, 1, 2}, {5.0, 4.0}),
      MakeWalk({0, 1}, {3.0}),
  };
  auto stats = ComputeWalkCorpusStats(walks, /*requested_steps=*/2);
  EXPECT_EQ(stats.num_walks, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_length, 1.5);
  EXPECT_EQ(stats.min_length, 1u);
  EXPECT_EQ(stats.max_length, 2u);
  EXPECT_DOUBLE_EQ(stats.early_termination_rate, 0.5);
  EXPECT_EQ(stats.distinct_nodes, 3u);
  EXPECT_GT(stats.visit_entropy, 0.0);
}

TEST(WalkStatsTest, BacktrackRateDetectsReturns) {
  // 0 -> 1 -> 0 -> 1: both interior steps are returns.
  std::vector<Walk> walks{MakeWalk({0, 1, 0, 1}, {3.0, 2.0, 1.0})};
  auto stats = ComputeWalkCorpusStats(walks, 0);
  EXPECT_DOUBLE_EQ(stats.backtrack_rate, 1.0);
  std::vector<Walk> forward{MakeWalk({0, 1, 2, 3}, {3.0, 2.0, 1.0})};
  EXPECT_DOUBLE_EQ(ComputeWalkCorpusStats(forward, 0).backtrack_rate, 0.0);
}

TEST(WalkStatsTest, NormalizedAgeReflectsRecency) {
  // Corpus A traverses only the newest timestamps; corpus B the oldest.
  std::vector<Walk> recent{MakeWalk({0, 1, 2}, {10.0, 9.9}),
                           MakeWalk({0, 1}, {0.0})};  // span setter.
  std::vector<Walk> old{MakeWalk({0, 1, 2}, {0.1, 0.0}),
                        MakeWalk({0, 1}, {10.0})};
  const double age_recent =
      ComputeWalkCorpusStats(recent, 0).mean_normalized_age;
  const double age_old = ComputeWalkCorpusStats(old, 0).mean_normalized_age;
  EXPECT_LT(age_recent, age_old);
}

TEST(WalkStatsTest, EmptyCorpus) {
  auto stats = ComputeWalkCorpusStats({}, 5);
  EXPECT_EQ(stats.num_walks, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_length, 0.0);
}

TEST(WalkStatsTest, VisitCountsAggregate) {
  std::vector<Walk> walks{MakeWalk({0, 1, 0}, {2.0, 1.0})};
  auto counts = VisitCounts(walks);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(WalkStatsTest, DecayRateShiftsAgeOnRealWalks) {
  // Strong decay should traverse younger edges on average than no decay.
  auto made = MakePaperDataset(PaperDataset::kDblp, 0.05, 3);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  auto corpus_for = [&](double decay) {
    TemporalWalkConfig cfg;
    cfg.walk_length = 5;
    cfg.num_walks = 1;
    cfg.decay_rate = decay;
    TemporalWalkSampler sampler(&g, cfg);
    Rng rng(9);
    std::vector<Walk> walks;
    for (int i = 0; i < 300; ++i) {
      const NodeId v = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
      walks.push_back(sampler.SampleWalk(v, g.max_time() + 1.0, &rng));
    }
    return ComputeWalkCorpusStats(walks, cfg.walk_length);
  };
  EXPECT_LT(corpus_for(20.0).mean_normalized_age,
            corpus_for(0.0).mean_normalized_age);
}

}  // namespace
}  // namespace ehna
