// The async training pipeline (DESIGN.md §11): BoundedQueue semantics,
// producer-exception surfacing, and — the contract everything else hangs
// off — bitwise equivalence between pipeline_depth = 0 and pipeline_depth
// >= 1 training at both thread counts, with metrics on and off, including
// a crash-and-resume run under the async pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/model.h"
#include "graph/generators/generators.h"
#include "util/metrics.h"
#include "util/pipeline.h"
#include "util/thread_pool.h"

namespace ehna {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------ BoundedQueue

TEST(BoundedQueueTest, FifoOrderAcrossThreads) {
  BoundedQueue<int> q(4);
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) q.Push(i);
    q.Close();
  });
  for (int i = 0; i < 100; ++i) {
    std::optional<int> v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.Pop().has_value());  // closed and drained.
  producer.join();
}

TEST(BoundedQueueTest, PushBlocksAtCapacityUntilPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(0));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    q.Push(1);  // must block: capacity 1, slot occupied.
    second_pushed.store(true);
  });
  // Give the producer a chance to (wrongly) slip past the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.Pop().value_or(-1), 0);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.Pop().value_or(-1), 1);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducerAndDropsItem) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(0));
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result.store(q.Push(1)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  producer.join();
  EXPECT_FALSE(push_result.load());  // rejected, not enqueued.
  // The item accepted before Close drains; the dropped one never appears.
  EXPECT_EQ(q.Pop().value_or(-1), 0);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(2);
  std::optional<int> popped = 123;
  std::thread consumer([&] { popped = q.Pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
  EXPECT_FALSE(popped.has_value());
}

TEST(BoundedQueueTest, ProducerExceptionSurfacesThroughPoolJoin) {
  // The pipeline's abort protocol: a producer task that throws is captured
  // by its pool and rethrown at the Wait() join; the consumer side closes
  // the queues so nobody deadlocks.
  BoundedQueue<int> q(1);
  ThreadPool pool(1);
  pool.Submit([&] {
    q.Push(7);
    throw std::runtime_error("producer boom");
  });
  EXPECT_EQ(q.Pop().value_or(-1), 7);
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

// ------------------------------------------------- bitwise sync/async

TemporalGraph TinyGraph() {
  auto g = MakePaperDataset(PaperDataset::kDblp, 0.02, 9);
  EHNA_CHECK(g.ok());
  return std::move(g).value();
}

EhnaConfig TinyConfig(int num_threads, int pipeline_depth) {
  EhnaConfig cfg;
  cfg.dim = 4;
  cfg.num_walks = 2;
  cfg.walk_length = 3;
  cfg.num_negatives = 1;
  cfg.batch_edges = 8;
  cfg.lstm_layers = 1;
  cfg.epochs = 4;
  cfg.max_edges_per_epoch = 24;
  cfg.learning_rate = 5e-3f;
  cfg.seed = 3;
  cfg.num_threads = num_threads;
  cfg.pipeline_depth = pipeline_depth;
  return cfg;
}

std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Trains to completion under `cfg` and returns the final checkpoint's
/// bytes — the strongest equality we can ask for: parameters, embedding
/// table, dense + sparse Adam moments, BatchNorm statistics, and the RNG
/// stream state all serialize into it.
std::string TrainedCheckpointBytes(const TemporalGraph& g, EhnaConfig cfg,
                                   const std::string& dir) {
  EhnaModel model(&g, cfg);
  model.Train();
  const std::string path = dir + "/final.ehnc";
  EHNA_CHECK(model.SaveCheckpoint(path).ok());
  return ReadBytes(path);
}

void ExpectAsyncMatchesSyncBitwise(int num_threads, bool metrics_enabled) {
  TemporalGraph g = TinyGraph();
  const bool was_enabled = MetricsEnabled();
  MetricsRegistry::SetEnabled(metrics_enabled);

  const std::string dir = FreshDir(
      "ehna_pipe_eq_" + std::to_string(num_threads) +
      (metrics_enabled ? "_m1" : "_m0"));
  const std::string sync_bytes =
      TrainedCheckpointBytes(g, TinyConfig(num_threads, 0), dir);
  const std::string depth1_bytes =
      TrainedCheckpointBytes(g, TinyConfig(num_threads, 1), dir);
  const std::string depth3_bytes =
      TrainedCheckpointBytes(g, TinyConfig(num_threads, 3), dir);

  MetricsRegistry::SetEnabled(was_enabled);
  EXPECT_EQ(sync_bytes, depth1_bytes)
      << "pipeline_depth=1 diverged from sync at " << num_threads
      << " thread(s), metrics " << (metrics_enabled ? "on" : "off");
  EXPECT_EQ(sync_bytes, depth3_bytes)
      << "pipeline_depth=3 diverged from sync at " << num_threads
      << " thread(s), metrics " << (metrics_enabled ? "on" : "off");
  EXPECT_FALSE(sync_bytes.empty());
  fs::remove_all(dir);
}

TEST(PipelineDeterminismTest, AsyncMatchesSyncSerialMetricsOn) {
  ExpectAsyncMatchesSyncBitwise(/*num_threads=*/1, /*metrics_enabled=*/true);
}

TEST(PipelineDeterminismTest, AsyncMatchesSyncSerialMetricsOff) {
  ExpectAsyncMatchesSyncBitwise(/*num_threads=*/1, /*metrics_enabled=*/false);
}

TEST(PipelineDeterminismTest, AsyncMatchesSyncParallelMetricsOn) {
  ExpectAsyncMatchesSyncBitwise(/*num_threads=*/4, /*metrics_enabled=*/true);
}

TEST(PipelineDeterminismTest, AsyncMatchesSyncParallelMetricsOff) {
  ExpectAsyncMatchesSyncBitwise(/*num_threads=*/4, /*metrics_enabled=*/false);
}

TEST(PipelineDeterminismTest, AsyncEmbeddingsMatchSyncExactly) {
  // Same contract one level up: the final inference pass built on async-
  // trained state is bitwise identical to the sync-trained one.
  TemporalGraph g = TinyGraph();
  EhnaModel sync_model(&g, TinyConfig(1, 0));
  EhnaModel async_model(&g, TinyConfig(1, 2));
  const auto hs = sync_model.Train();
  const auto ha = async_model.Train();
  ASSERT_EQ(hs.size(), ha.size());
  for (size_t e = 0; e < hs.size(); ++e) {
    EXPECT_EQ(hs[e].avg_loss, ha[e].avg_loss) << "epoch " << e;
  }
  EXPECT_TRUE(sync_model.FinalizeEmbeddings() ==
              async_model.FinalizeEmbeddings());
}

TEST(PipelineDeterminismTest, CrashAndResumeUnderAsyncPipeline) {
  // Kill-and-resume composes with the pipeline: an async run interrupted
  // mid-training and restored from its checkpoint lands on the same final
  // state as an uninterrupted async run — and as an uninterrupted sync
  // run, which the tests above already pin to the async one.
  TemporalGraph g = TinyGraph();
  const std::string dir = FreshDir("ehna_pipe_resume");

  EhnaConfig cfg = TinyConfig(/*num_threads=*/1, /*pipeline_depth=*/2);
  cfg.checkpoint_dir = dir + "/snaps";
  cfg.checkpoint_every = 1;

  EhnaModel uninterrupted(&g, cfg);
  uninterrupted.Train();

  {
    EhnaModel doomed(&g, cfg);
    doomed.Train(2);  // "crash" after 2 of 4 epochs; snapshots remain.
  }
  EhnaModel resumed(&g, cfg);
  const CheckpointManager manager(cfg.checkpoint_dir);
  ASSERT_TRUE(manager.RestoreLatest(&resumed).ok());
  EXPECT_EQ(resumed.completed_epochs(), 2u);
  resumed.Train();  // finishes the remaining epochs.

  const std::string a = dir + "/uninterrupted.ehnc";
  const std::string b = dir + "/resumed.ehnc";
  ASSERT_TRUE(uninterrupted.SaveCheckpoint(a).ok());
  ASSERT_TRUE(resumed.SaveCheckpoint(b).ok());
  EXPECT_EQ(ReadBytes(a), ReadBytes(b));
  EXPECT_TRUE(uninterrupted.FinalizeEmbeddings() ==
              resumed.FinalizeEmbeddings());
  fs::remove_all(dir);
}

TEST(PipelineDeterminismTest, PipelineStressManySmallBatches) {
  // Concurrency stress (runs under TSan via the `concurrency` label):
  // batch_edges = 1 maximizes queue traffic and slot recycling; depth 4
  // keeps several packs in flight. The run must stay finite and match its
  // own sync twin.
  TemporalGraph g = TinyGraph();
  EhnaConfig sync_cfg = TinyConfig(/*num_threads=*/2, /*pipeline_depth=*/0);
  sync_cfg.batch_edges = 1;
  sync_cfg.epochs = 2;
  EhnaConfig async_cfg = sync_cfg;
  async_cfg.pipeline_depth = 4;

  EhnaModel sync_model(&g, sync_cfg);
  EhnaModel async_model(&g, async_cfg);
  const auto hs = sync_model.Train();
  const auto ha = async_model.Train();
  ASSERT_EQ(hs.size(), ha.size());
  for (size_t e = 0; e < hs.size(); ++e) {
    EXPECT_EQ(hs[e].avg_loss, ha[e].avg_loss) << "epoch " << e;
  }
  EXPECT_TRUE(sync_model.FinalizeEmbeddings() ==
              async_model.FinalizeEmbeddings());
}

TEST(PipelineDeterminismTest, PipelineFeedsQueueTelemetry) {
  // The observability half of the tentpole: an async run must populate the
  // pipeline phases and queue gauges/counters the bench reads.
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.Reset();
  TemporalGraph g = TinyGraph();
  EhnaModel model(&g, TinyConfig(/*num_threads=*/1, /*pipeline_depth=*/2));
  model.Train();
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_GT(snap.CounterValue("pipeline.packs"), 0u);
  EXPECT_GT(snap.PhaseSeconds("train.phase.pipeline_plan"), 0.0);
  EXPECT_GT(snap.PhaseSeconds("train.phase.pipeline_wait"), 0.0);
  EXPECT_GT(snap.PhaseSeconds("train.phase.forward_backward"), 0.0);
  // Stall time accrues on at least one side of the queue (which side
  // depends on relative stage speed; the sum must be live).
  EXPECT_GE(snap.CounterValue("pipeline.producer_stall_ns") +
                snap.CounterValue("pipeline.consumer_stall_ns"),
            0u);
}

}  // namespace
}  // namespace ehna
