#include <gtest/gtest.h>

#include <cmath>

#include "baselines/ctdne.h"
#include "baselines/htne.h"
#include "baselines/line.h"
#include "baselines/node2vec.h"
#include "baselines/sgns.h"
#include "graph/generators/generators.h"

namespace ehna {
namespace {

TemporalGraph TwoCliqueGraph() {
  // Two 5-cliques bridged by one edge: embeddings should separate the
  // cliques.
  std::vector<TemporalEdge> edges;
  Timestamp t = 0.0;
  auto add_clique = [&](NodeId base) {
    for (NodeId i = 0; i < 5; ++i) {
      for (NodeId j = i + 1; j < 5; ++j) {
        edges.push_back({base + i, base + j, t, 1.0f});
        t += 1.0;
      }
    }
  };
  add_clique(0);
  add_clique(5);
  edges.push_back({4, 5, t, 1.0f});
  auto g = TemporalGraph::FromEdges(edges);
  EHNA_CHECK(g.ok());
  return std::move(g).value();
}

double CosineSim(const Tensor& emb, NodeId a, NodeId b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int64_t j = 0; j < emb.cols(); ++j) {
    dot += static_cast<double>(emb.at(a, j)) * emb.at(b, j);
    na += static_cast<double>(emb.at(a, j)) * emb.at(a, j);
    nb += static_cast<double>(emb.at(b, j)) * emb.at(b, j);
  }
  return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
}

/// Average same-clique vs cross-clique cosine similarity gap.
double CliqueSeparation(const Tensor& emb) {
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = a + 1; b < 10; ++b) {
      const bool same_clique = (a < 5) == (b < 5);
      const double s = CosineSim(emb, a, b);
      if (same_clique) {
        same += s;
        ++same_n;
      } else {
        cross += s;
        ++cross_n;
      }
    }
  }
  return same / same_n - cross / cross_n;
}

// ------------------------------------------------------------------ SGNS

TEST(SgnsTest, PositivePairsGainSimilarity) {
  Rng rng(1);
  SgnsConfig cfg;
  cfg.dim = 8;
  cfg.negatives = 2;
  SgnsTrainer trainer(10, cfg, &rng);
  NoiseDistribution noise(std::vector<size_t>(10, 1));
  const Tensor before = trainer.embeddings();
  for (int i = 0; i < 500; ++i) {
    trainer.TrainPair(0, 1, noise, &rng, 0.05f);
  }
  // in-vector of 0 should have rotated toward out-vector of 1; verify the
  // pair scores higher than a random pair under the model.
  EXPECT_NE(trainer.embeddings(), before);
}

TEST(SgnsTest, TrainWalkSkipsSelfPairs) {
  Rng rng(2);
  SgnsConfig cfg;
  cfg.dim = 4;
  cfg.window = 2;
  SgnsTrainer trainer(5, cfg, &rng);
  NoiseDistribution noise(std::vector<size_t>(5, 1));
  // Walk of identical nodes: no (v, v) updates must occur; embeddings for
  // other nodes stay untouched.
  const Tensor before = trainer.embeddings();
  trainer.TrainWalk({3, 3, 3, 3}, noise, &rng, 0.05f);
  EXPECT_EQ(trainer.embeddings(), before);
}

// -------------------------------------------------------------- Node2Vec

TEST(Node2VecTest, SeparatesCliques) {
  TemporalGraph g = TwoCliqueGraph();
  Node2VecConfig cfg;
  cfg.sgns.dim = 16;
  cfg.sgns.window = 4;
  cfg.walk.walk_length = 20;
  cfg.walk.walks_per_node = 5;
  cfg.epochs = 3;
  cfg.seed = 3;
  Node2VecEmbedder embedder(cfg);
  Tensor emb = embedder.Fit(g);
  EXPECT_EQ(emb.rows(), 10);
  EXPECT_EQ(emb.cols(), 16);
  EXPECT_GT(CliqueSeparation(emb), 0.1);
  EXPECT_EQ(embedder.epoch_seconds().size(), 3u);
}

TEST(Node2VecTest, MultiThreadedMatchesShape) {
  TemporalGraph g = TwoCliqueGraph();
  Node2VecConfig cfg;
  cfg.sgns.dim = 8;
  cfg.walk.walk_length = 10;
  cfg.walk.walks_per_node = 2;
  cfg.epochs = 1;
  cfg.num_threads = 3;
  Node2VecEmbedder embedder(cfg);
  Tensor emb = embedder.Fit(g);
  EXPECT_EQ(emb.rows(), 10);
  for (int64_t i = 0; i < emb.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(emb.data()[i]));
  }
}

// ----------------------------------------------------------------- CTDNE

TEST(CtdneTest, ProducesFiniteEmbeddings) {
  auto made = MakePaperDataset(PaperDataset::kDblp, 0.03, 4);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  CtdneConfig cfg;
  cfg.sgns.dim = 8;
  cfg.walk.walk_length = 15;
  cfg.walk.min_length = 3;
  cfg.epochs = 2;
  CtdneEmbedder embedder(cfg);
  Tensor emb = embedder.Fit(g);
  EXPECT_EQ(emb.rows(), static_cast<int64_t>(g.num_nodes()));
  for (int64_t i = 0; i < emb.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(emb.data()[i]));
  }
  EXPECT_EQ(embedder.epoch_seconds().size(), 2u);
}

TEST(CtdneTest, SeparatesCliquesOnStaticLikeData) {
  TemporalGraph g = TwoCliqueGraph();
  CtdneConfig cfg;
  cfg.sgns.dim = 16;
  cfg.sgns.window = 4;
  cfg.walk.walk_length = 20;
  cfg.walk.min_length = 2;
  cfg.walks_per_epoch = 200;
  cfg.epochs = 3;
  CtdneEmbedder embedder(cfg);
  Tensor emb = embedder.Fit(g);
  EXPECT_GT(CliqueSeparation(emb), 0.05);
}

// ------------------------------------------------------------------ LINE

TEST(LineTest, ConcatenatedHalvesAreUnitNorm) {
  TemporalGraph g = TwoCliqueGraph();
  LineConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 2;
  LineEmbedder embedder(cfg);
  Tensor emb = embedder.Fit(g);
  EXPECT_EQ(emb.cols(), 16);
  for (NodeId v = 0; v < 10; ++v) {
    double n1 = 0.0, n2 = 0.0;
    for (int64_t j = 0; j < 8; ++j) {
      n1 += static_cast<double>(emb.at(v, j)) * emb.at(v, j);
      n2 += static_cast<double>(emb.at(v, 8 + j)) * emb.at(v, 8 + j);
    }
    EXPECT_NEAR(n1, 1.0, 1e-3);
    EXPECT_NEAR(n2, 1.0, 1e-3);
  }
}

TEST(LineTest, SeparatesCliques) {
  TemporalGraph g = TwoCliqueGraph();
  LineConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 20;
  cfg.samples_per_epoch = 500;
  cfg.seed = 5;
  LineEmbedder embedder(cfg);
  Tensor emb = embedder.Fit(g);
  EXPECT_GT(CliqueSeparation(emb), 0.1);
}

// ------------------------------------------------------------------ HTNE

TEST(HtneTest, ProducesFiniteEmbeddings) {
  auto made = MakePaperDataset(PaperDataset::kDblp, 0.03, 6);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  HtneConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 1;
  cfg.events_per_epoch = 500;
  cfg.negatives = 2;
  HtneEmbedder embedder(cfg);
  Tensor emb = embedder.Fit(g);
  EXPECT_EQ(emb.rows(), static_cast<int64_t>(g.num_nodes()));
  for (int64_t i = 0; i < emb.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(emb.data()[i]));
  }
  EXPECT_EQ(embedder.epoch_seconds().size(), 1u);
}

TEST(HtneTest, LinkedPairsEndUpCloserThanRandom) {
  TemporalGraph g = TwoCliqueGraph();
  HtneConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 10;
  cfg.negatives = 3;
  cfg.learning_rate = 0.02f;
  cfg.seed = 6;
  HtneEmbedder embedder(cfg);
  Tensor emb = embedder.Fit(g);
  // Average squared distance of linked pairs should undercut unlinked.
  double linked = 0.0, unlinked = 0.0;
  int ln = 0, un = 0;
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = a + 1; b < 10; ++b) {
      double d = 0.0;
      for (int64_t j = 0; j < emb.cols(); ++j) {
        const double diff = emb.at(a, j) - emb.at(b, j);
        d += diff * diff;
      }
      if (g.HasEdge(a, b)) {
        linked += d;
        ++ln;
      } else {
        unlinked += d;
        ++un;
      }
    }
  }
  EXPECT_LT(linked / ln, unlinked / un);
}

}  // namespace
}  // namespace ehna
