#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "graph/generators/generators.h"
#include "graph/temporal_graph.h"
#include "walk/ctdne_walk.h"
#include "walk/node2vec_walk.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "walk/temporal_walk.h"

namespace ehna {
namespace {

TemporalGraph MakePathGraph() {
  // 0 -(t3)- 1 -(t2)- 2 -(t1)- 3: times decrease along the path, so a
  // temporal walk from 0 at ref >= 3 can reach 3.
  auto g = TemporalGraph::FromEdges(
      {{0, 1, 3.0, 1.0f}, {1, 2, 2.0, 1.0f}, {2, 3, 1.0, 1.0f}});
  EHNA_CHECK(g.ok());
  return std::move(g).value();
}

TemporalGraph MakeIncreasingPath() {
  // Times increase away from 0: the relevance constraint blocks the walk
  // after the first hop.
  auto g = TemporalGraph::FromEdges(
      {{0, 1, 1.0, 1.0f}, {1, 2, 2.0, 1.0f}, {2, 3, 3.0, 1.0f}});
  EHNA_CHECK(g.ok());
  return std::move(g).value();
}

// ---------------------------------------------------------- TemporalWalk

TEST(TemporalWalkTest, WalkStartsAtTarget) {
  TemporalGraph g = MakePathGraph();
  TemporalWalkConfig cfg;
  cfg.walk_length = 5;
  TemporalWalkSampler sampler(&g, cfg);
  Rng rng(1);
  Walk w = sampler.SampleWalk(0, 10.0, &rng);
  ASSERT_FALSE(w.empty());
  EXPECT_EQ(w[0].node, 0u);
}

TEST(TemporalWalkTest, TimestampsNonIncreasingAlongWalk) {
  // Definition 2's relevance constraint, as sampled backwards in time.
  TemporalGraph g = MakePathGraph();
  TemporalWalkConfig cfg;
  cfg.walk_length = 10;
  TemporalWalkSampler sampler(&g, cfg);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    Walk w = sampler.SampleWalk(0, 10.0, &rng);
    for (size_t j = 2; j < w.size(); ++j) {
      EXPECT_LE(w[j].edge_time, w[j - 1].edge_time);
    }
  }
}

TEST(TemporalWalkTest, NeverTraversesEdgesAfterRefTime) {
  TemporalGraph g = MakeIncreasingPath();
  TemporalWalkConfig cfg;
  cfg.walk_length = 10;
  TemporalWalkSampler sampler(&g, cfg);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Walk w = sampler.SampleWalk(1, 1.5, &rng);  // only (0,1)@1 is history.
    for (size_t j = 1; j < w.size(); ++j) {
      EXPECT_LE(w[j].edge_time, 1.5);
    }
  }
}

TEST(TemporalWalkTest, EarlyTerminationWithoutRelevantNeighbors) {
  TemporalGraph g = MakeIncreasingPath();
  TemporalWalkConfig cfg;
  cfg.walk_length = 10;
  TemporalWalkSampler sampler(&g, cfg);
  Rng rng(4);
  // From node 0 at ref 0.5 there is no historical edge at all.
  Walk w = sampler.SampleWalk(0, 0.5, &rng);
  EXPECT_EQ(w.size(), 1u);
}

TEST(TemporalWalkTest, NoHistoryAnchorIsCountedAndDrawsNoRng) {
  // Degenerate anchor: every edge in the start node's history is at-or-
  // after the reference time, so the walk is the bare anchor. This must be
  // observable (dedicated counter, distinct from mid-walk terminations) and
  // must consume zero RNG — the aggregator's fast path relies on that to
  // skip the k sampler calls without perturbing the draw sequence.
  TemporalGraph g = MakeIncreasingPath();
  TemporalWalkConfig cfg;
  cfg.walk_length = 10;
  TemporalWalkSampler sampler(&g, cfg);

  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.Reset();
  Rng rng(11);
  Rng untouched(11);
  Walk w = sampler.SampleWalk(0, 0.5, &rng);  // 0's only edge is at t=1.
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].node, 0u);
  EXPECT_EQ(rng.Next(), untouched.Next());

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("walk.temporal.no_history_anchors"), 1u);
  EXPECT_EQ(snap.CounterValue("walk.temporal.early_terminations"), 1u);

  // A walk from an anchor that does have history is not a no-history
  // anchor, whatever happens later in the walk.
  Walk mid = sampler.SampleWalk(1, 1.5, &rng);  // (0,1)@1 is history.
  ASSERT_GT(mid.size(), 1u);
  snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("walk.temporal.no_history_anchors"), 1u);
}

TEST(TemporalWalkTest, NoBacktrackWhenPIsInfinite) {
  TemporalGraph g = MakeIncreasingPath();
  TemporalWalkConfig cfg;
  cfg.walk_length = 10;
  cfg.p = std::numeric_limits<double>::infinity();
  TemporalWalkSampler sampler(&g, cfg);
  Rng rng(5);
  // From 3 at ref 10: history 3->2@3 then 2->1@2 then 1->0@1; backtracking
  // forbidden, so the walk is the simple path 3,2,1,0.
  Walk w = sampler.SampleWalk(3, 10.0, &rng);
  std::vector<NodeId> nodes = WalkNodes(w);
  EXPECT_EQ(nodes, (std::vector<NodeId>{3, 2, 1, 0}));
}

TEST(TemporalWalkTest, SmallPEncouragesBacktracking) {
  TemporalGraph g = MakePathGraph();
  TemporalWalkConfig cfg;
  cfg.walk_length = 4;
  cfg.p = 0.01;  // strong return bias.
  cfg.q = 1.0;
  TemporalWalkSampler sampler(&g, cfg);
  Rng rng(6);
  int returns = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    Walk w = sampler.SampleWalk(0, 10.0, &rng);
    if (w.size() >= 3) {
      ++total;
      if (w[2].node == w[0].node) ++returns;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(returns, total / 2);
}

TEST(TemporalWalkTest, TimeDecayPrefersRecentEdges) {
  // Star around 0 with one recent and one old edge; both valid history.
  auto made = TemporalGraph::FromEdges(
      {{0, 1, 1.0, 1.0f}, {0, 2, 99.0, 1.0f}, {1, 3, 0.5, 1.0f},
       {2, 3, 50.0, 1.0f}});
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  TemporalWalkConfig cfg;
  cfg.walk_length = 1;
  cfg.decay_rate = 8.0;
  TemporalWalkSampler sampler(&g, cfg);
  Rng rng(7);
  int recent = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    Walk w = sampler.SampleWalk(0, 100.0, &rng);
    ASSERT_EQ(w.size(), 2u);
    if (w[1].node == 2) ++recent;
  }
  EXPECT_GT(recent, n * 9 / 10);  // decay 8 over ~1 normalized unit.
}

TEST(TemporalWalkTest, WithoutDecayFollowsWeights) {
  auto made = TemporalGraph::FromEdges(
      {{0, 1, 1.0, 1.0f}, {0, 2, 99.0, 1.0f}});
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  TemporalWalkConfig cfg;
  cfg.walk_length = 1;
  cfg.use_time_decay = false;
  TemporalWalkSampler sampler(&g, cfg);
  Rng rng(8);
  int old_edge = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    Walk w = sampler.SampleWalk(0, 100.0, &rng);
    if (w.size() == 2 && w[1].node == 1) ++old_edge;
  }
  EXPECT_NEAR(old_edge / static_cast<double>(n), 0.5, 0.05);
}

TEST(TemporalWalkTest, HighDegreeSelectionFollowsWeightsAndIsDeterministic) {
  // Degree 24 pushes candidate selection onto the binary-search side of
  // the prefix-sum cutoff. One hub neighbor carries half the total weight;
  // the empirical pick frequency must track it, the picks must all be real
  // temporal neighbors, and a re-seeded sampler must replay the exact same
  // walks (same Uniform draw -> same prefix index).
  std::vector<TemporalEdge> edges;
  for (NodeId v = 1; v <= 24; ++v) {
    edges.push_back({0, v, 1.0, v == 1 ? 23.0f : 1.0f});
  }
  auto made = TemporalGraph::FromEdges(edges);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  TemporalWalkConfig cfg;
  cfg.walk_length = 1;
  cfg.use_time_decay = false;
  TemporalWalkSampler sampler(&g, cfg);

  Rng rng(11);
  int hub_hits = 0;
  std::vector<NodeId> picks;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    Walk w = sampler.SampleWalk(0, 10.0, &rng);
    ASSERT_EQ(w.size(), 2u);
    EXPECT_GE(w[1].node, 1u);
    EXPECT_LE(w[1].node, 24u);
    hub_hits += w[1].node == 1u;
    picks.push_back(w[1].node);
  }
  // Neighbor 1 holds 23/46 = 50% of the mass; 2000 trials keep the
  // binomial noise well inside +-5 points.
  EXPECT_NEAR(static_cast<double>(hub_hits) / trials, 0.5, 0.05);

  Rng replay(11);
  for (int i = 0; i < trials; ++i) {
    Walk w = sampler.SampleWalk(0, 10.0, &replay);
    ASSERT_EQ(w[1].node, picks[static_cast<size_t>(i)]) << "trial " << i;
  }
}

TEST(TemporalWalkTest, SampleWalksReturnsConfiguredCount) {
  TemporalGraph g = MakePathGraph();
  TemporalWalkConfig cfg;
  cfg.num_walks = 7;
  TemporalWalkSampler sampler(&g, cfg);
  Rng rng(9);
  EXPECT_EQ(sampler.SampleWalks(0, 10.0, &rng).size(), 7u);
}

TEST(TemporalWalkTest, RespectsWalkLengthBound) {
  auto made = MakePaperDataset(PaperDataset::kDigg, 0.05, 21);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  TemporalWalkConfig cfg;
  cfg.walk_length = 6;
  TemporalWalkSampler sampler(&g, cfg);
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    const NodeId v = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    Walk w = sampler.SampleWalk(v, g.max_time() + 1.0, &rng);
    EXPECT_LE(w.size(), 7u);  // start + 6 steps.
  }
}

// ---------------------------------------------------------- Node2VecWalk

TEST(Node2VecWalkTest, WalkHasConfiguredLength) {
  TemporalGraph g = MakePathGraph();
  Node2VecWalkConfig cfg;
  cfg.walk_length = 8;
  Node2VecWalkSampler sampler(&g, cfg);
  Rng rng(1);
  auto w = sampler.SampleWalk(1, &rng);
  EXPECT_EQ(w.size(), 9u);  // start + 8 (path graph never dead-ends).
  EXPECT_EQ(w[0], 1u);
}

TEST(Node2VecWalkTest, IsolatedNodeReturnsSingleton) {
  auto made = TemporalGraph::FromEdges({{0, 1, 1.0, 1.0f}}, /*num_nodes=*/3);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Node2VecWalkSampler sampler(&g, {});
  Rng rng(2);
  auto w = sampler.SampleWalk(2, &rng);
  EXPECT_EQ(w, (std::vector<NodeId>{2}));
}

TEST(Node2VecWalkTest, StepsFollowEdges) {
  auto made = MakePaperDataset(PaperDataset::kDigg, 0.05, 3);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Node2VecWalkConfig cfg;
  cfg.walk_length = 10;
  Node2VecWalkSampler sampler(&g, cfg);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const NodeId v = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    auto w = sampler.SampleWalk(v, &rng);
    for (size_t j = 1; j < w.size(); ++j) {
      EXPECT_TRUE(g.HasEdge(w[j - 1], w[j]));
    }
  }
}

TEST(Node2VecWalkTest, LowQEncouragesExploration) {
  // On a path graph, q -> 0 biases outward (DFS): the walk should reach
  // the far end more often than with high q.
  auto made = TemporalGraph::FromEdges({{0, 1, 1, 1.0f},
                                        {1, 2, 1, 1.0f},
                                        {2, 3, 1, 1.0f},
                                        {3, 4, 1, 1.0f},
                                        {4, 5, 1, 1.0f}});
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  auto reach_rate = [&](double q) {
    Node2VecWalkConfig cfg;
    cfg.walk_length = 5;
    cfg.q = q;
    cfg.p = 1.0;
    Node2VecWalkSampler sampler(&g, cfg);
    Rng rng(4);
    int reached = 0;
    for (int i = 0; i < 500; ++i) {
      auto w = sampler.SampleWalk(0, &rng);
      if (std::find(w.begin(), w.end(), NodeId{5}) != w.end()) ++reached;
    }
    return reached;
  };
  EXPECT_GT(reach_rate(0.25), reach_rate(4.0));
}

// ------------------------------------------------------------- CtdneWalk

TEST(CtdneWalkTest, TimesNonDecreasing) {
  auto made = MakePaperDataset(PaperDataset::kDblp, 0.05, 5);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  CtdneWalkConfig cfg;
  cfg.walk_length = 12;
  CtdneWalkSampler sampler(&g, cfg);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    auto w = sampler.SampleWalk(&rng);
    ASSERT_GE(w.size(), 2u);
    // Verify consecutive steps use edges; times are enforced internally,
    // so at minimum each hop must be a real edge.
    for (size_t j = 1; j < w.size(); ++j) {
      EXPECT_TRUE(g.HasEdge(w[j - 1], w[j]));
    }
  }
}

TEST(CtdneWalkTest, DeadEndsTerminateEarly) {
  TemporalGraph g = MakeIncreasingPath();
  CtdneWalkConfig cfg;
  cfg.walk_length = 50;
  CtdneWalkSampler sampler(&g, cfg);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    auto w = sampler.SampleWalk(&rng);
    EXPECT_LE(w.size(), 5u);  // the path has only 4 nodes.
  }
}

TEST(CtdneWalkTest, EmptyGraphGivesEmptyWalk) {
  auto made = TemporalGraph::FromEdges({});
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  CtdneWalkSampler sampler(&g, {});
  Rng rng(7);
  EXPECT_TRUE(sampler.SampleWalk(&rng).empty());
}

TEST(CtdneWalkTest, ForwardInTimeOnIncreasingPath) {
  TemporalGraph g = MakeIncreasingPath();
  CtdneWalkConfig cfg;
  cfg.walk_length = 10;
  CtdneWalkSampler sampler(&g, cfg);
  Rng rng(8);
  // Any walk that starts at edge (0,1)@1 can continue only toward 2 then 3.
  bool saw_full_path = false;
  for (int i = 0; i < 200; ++i) {
    auto w = sampler.SampleWalk(&rng);
    if (w.size() >= 2 && w[0] == 0 && w[1] == 1) {
      if (w == std::vector<NodeId>({0, 1, 2, 3})) saw_full_path = true;
      // It must never go back to 0 (edge (0,1) is in the past).
      for (size_t j = 2; j < w.size(); ++j) EXPECT_NE(w[j], 0u);
    }
  }
  EXPECT_TRUE(saw_full_path);
}

TEST(WalkNodesTest, ExtractsSequence) {
  Walk w{{5, 0.0, 0.0f}, {6, 1.0, 1.0f}, {7, 2.0, 1.0f}};
  EXPECT_EQ(WalkNodes(w), (std::vector<NodeId>{5, 6, 7}));
}

}  // namespace
}  // namespace ehna
