// Cross-ISA bitwise-equivalence suite for the dispatched kernel hot set
// (nn/cpu_dispatch.h). The scalar table is the pinned reference; when this
// build carries the AVX2 table and the host CPU can run it, every kernel is
// exercised over shapes chosen to hit the vector bodies, the 8-wide panels,
// and the scalar remainder tails, and the outputs must match the reference
// bit for bit — EXPECT_EQ on floats, not a tolerance.
//
// The dispatch-pinning test must run first in this binary: it sets
// EHNA_KERNEL_ISA before any kernel call so that the process-wide one-shot
// resolution observes the override. gtest runs tests in declaration order
// within a file, and this file's binary links no other test file.

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "nn/cpu_dispatch.h"
#include "nn/kernels.h"
#include "nn/kernels_common.h"
#include "util/rng.h"

namespace ehna::kernels {
namespace {

// ---------------------------------------------------------------- dispatch

TEST(KernelDispatchPinning, EnvScalarPinsScalarTable) {
  // First kernel-touching test in the binary: the resolver has not yet run.
  ASSERT_EQ(setenv("EHNA_KERNEL_ISA", "scalar", /*overwrite=*/1), 0);
  EXPECT_EQ(ActiveIsa(), KernelIsa::kScalar);
  EXPECT_EQ(&ActiveKernels(), &ScalarKernels());
  // The public entry points now go through the pinned table.
  const float x[3] = {1.0f, 2.0f, 3.0f};
  const float y[3] = {4.0f, 5.0f, 6.0f};
  EXPECT_EQ(Dot(x, y, 3), ScalarKernels().dot(x, y, 3));
}

TEST(KernelDispatchPolicy, ForcedScalar) {
  const IsaDecision d = ResolveKernelIsa("scalar", true, true);
  EXPECT_TRUE(d.ok);
  EXPECT_TRUE(d.forced);
  EXPECT_EQ(d.isa, KernelIsa::kScalar);
}

TEST(KernelDispatchPolicy, ForcedAvx2RequiresCpuAndBuild) {
  EXPECT_TRUE(ResolveKernelIsa("avx2", true, true).ok);
  EXPECT_EQ(ResolveKernelIsa("avx2", true, true).isa, KernelIsa::kAvx2);
  EXPECT_FALSE(ResolveKernelIsa("avx2", false, true).ok);
  EXPECT_FALSE(ResolveKernelIsa("avx2", true, false).ok);
  EXPECT_FALSE(ResolveKernelIsa("AVX2", false, false).ok);  // case-folded
}

TEST(KernelDispatchPolicy, AutoPrefersAvx2WhenAvailable) {
  EXPECT_EQ(ResolveKernelIsa(nullptr, true, true).isa, KernelIsa::kAvx2);
  EXPECT_EQ(ResolveKernelIsa("auto", true, true).isa, KernelIsa::kAvx2);
  EXPECT_EQ(ResolveKernelIsa(nullptr, false, true).isa, KernelIsa::kScalar);
  EXPECT_EQ(ResolveKernelIsa(nullptr, true, false).isa, KernelIsa::kScalar);
  EXPECT_FALSE(ResolveKernelIsa(nullptr, false, false).forced);
}

TEST(KernelDispatchPolicy, UnrecognizedValueFallsBackToAuto) {
  const IsaDecision d = ResolveKernelIsa("sse9", true, true);
  EXPECT_TRUE(d.ok);
  EXPECT_FALSE(d.forced);
  EXPECT_EQ(d.isa, KernelIsa::kAvx2);
  EXPECT_EQ(d.note.rfind("unrecognized", 0), 0u);
}

// ------------------------------------------------------- pinned math sanity

TEST(PinnedTranscendentals, CloseToLibmAndSymmetric) {
  Rng rng(11);
  for (int t = 0; t < 2000; ++t) {
    const float x = static_cast<float>(rng.Uniform(-12.0, 12.0));
    EXPECT_NEAR(detail::SigmoidPinned(x), 1.0 / (1.0 + std::exp(-(double)x)),
                3e-7);
    EXPECT_NEAR(detail::TanhPinned(x), std::tanh((double)x), 5e-6);
    EXPECT_EQ(detail::TanhPinned(-x), -detail::TanhPinned(x));
  }
  EXPECT_EQ(detail::TanhPinned(0.0f), 0.0f);
  EXPECT_EQ(detail::SigmoidPinned(0.0f), 0.5f);
  // Saturation stays bounded and finite far outside the exp clamp: the
  // positive side reaches exactly 1, the negative side bottoms out at
  // 1/(1+e^87.3) ~ 1.2e-38 rather than a true zero.
  EXPECT_EQ(detail::SigmoidPinned(200.0f), 1.0f);
  EXPECT_LT(detail::SigmoidPinned(-200.0f), 1e-37f);
  EXPECT_GT(detail::SigmoidPinned(-200.0f), 0.0f);
  EXPECT_EQ(detail::TanhPinned(90.0f), 1.0f);
  EXPECT_EQ(detail::TanhPinned(-90.0f), -1.0f);
}

// ------------------------------------------------------ bitwise equivalence

class IsaEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Avx2KernelsCompiled()) {
      GTEST_SKIP() << "AVX2 kernels not compiled into this build "
                      "(EHNA_DISABLE_AVX2 or non-x86 target)";
    }
    if (!CpuSupportsAvx2Fma()) {
      GTEST_SKIP() << "host CPU lacks AVX2/FMA";
    }
    avx2_ = Avx2KernelsOrNull();
    ASSERT_NE(avx2_, nullptr);
  }

  std::vector<float> Random(int64_t n, Rng* rng, double lo = -2.0,
                            double hi = 2.0) {
    std::vector<float> v(static_cast<size_t>(n));
    for (auto& x : v) x = static_cast<float>(rng->Uniform(lo, hi));
    return v;
  }

  // EXPECT_EQ element-by-element: reports the first offending index
  // instead of a blob, and treats NaN mismatch as failure via bit pattern.
  static void ExpectBitwiseEq(const std::vector<float>& ref,
                              const std::vector<float>& got,
                              const char* what) {
    ASSERT_EQ(ref.size(), got.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      if (std::memcmp(&ref[i], &got[i], sizeof(float)) != 0) {
        ADD_FAILURE() << what << ": first mismatch at [" << i
                      << "]: scalar=" << ref[i] << " avx2=" << got[i];
        return;
      }
    }
  }

  const KernelTable* avx2_ = nullptr;
};

// Shapes chosen to cover full 16-wide strips, the 8-wide panel, and scalar
// tails: n mod 16 ∈ {0, 1, 7, 8, 9, 15}, tiny k < 16, single rows/columns.
constexpr int64_t kDims[] = {1, 2, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100};

TEST_F(IsaEquivalenceTest, GemmAllVariants) {
  Rng rng(42);
  for (const int64_t m : {1, 3, 5, 6, 7, 13, 24}) {
    for (const int64_t n : kDims) {
      for (const int64_t k : {1, 4, 15, 16, 17, 48}) {
        const auto a = Random(m * k, &rng);
        const auto b_nn = Random(k * n, &rng);
        const auto b_nt = Random(n * k, &rng);
        const auto a_tn = Random(k * m, &rng);
        for (const bool acc : {false, true}) {
          const auto c0 = Random(m * n, &rng);
          for (int variant = 0; variant < 3; ++variant) {
            auto ref = c0;
            auto got = c0;
            switch (variant) {
              case 0:
                ScalarKernels().gemm_nn(m, n, k, a.data(), b_nn.data(),
                                        ref.data(), acc);
                avx2_->gemm_nn(m, n, k, a.data(), b_nn.data(), got.data(),
                               acc);
                break;
              case 1:
                ScalarKernels().gemm_nt(m, n, k, a.data(), b_nt.data(),
                                        ref.data(), acc);
                avx2_->gemm_nt(m, n, k, a.data(), b_nt.data(), got.data(),
                               acc);
                break;
              default:
                ScalarKernels().gemm_tn(m, n, k, a_tn.data(), b_nn.data(),
                                        ref.data(), acc);
                avx2_->gemm_tn(m, n, k, a_tn.data(), b_nn.data(), got.data(),
                               acc);
                break;
            }
            ExpectBitwiseEq(ref, got, "gemm");
            if (HasFailure()) return;
          }
        }
      }
    }
  }
}

TEST_F(IsaEquivalenceTest, GemvBothOrientationsAndDot) {
  Rng rng(43);
  for (const int64_t m : {1, 2, 3, 4, 5, 9, 33}) {
    for (const int64_t n : kDims) {
      const auto a = Random(m * n, &rng);
      const auto x = Random(n, &rng);
      const auto xt = Random(m, &rng);
      for (const bool acc : {false, true}) {
        const auto y0 = Random(m, &rng);
        auto ref = y0;
        auto got = y0;
        ScalarKernels().gemv(m, n, a.data(), x.data(), ref.data(), acc);
        avx2_->gemv(m, n, a.data(), x.data(), got.data(), acc);
        ExpectBitwiseEq(ref, got, "gemv");

        const auto z0 = Random(n, &rng);
        auto reft = z0;
        auto gott = z0;
        ScalarKernels().gemv_t(m, n, a.data(), xt.data(), reft.data(), acc);
        avx2_->gemv_t(m, n, a.data(), xt.data(), gott.data(), acc);
        ExpectBitwiseEq(reft, gott, "gemv_t");
      }
      const float ds = ScalarKernels().dot(a.data(), a.data() + (m - 1) * n, n);
      const float dv = avx2_->dot(a.data(), a.data() + (m - 1) * n, n);
      EXPECT_EQ(std::memcmp(&ds, &dv, sizeof(float)), 0)
          << "dot n=" << n << " scalar=" << ds << " avx2=" << dv;
    }
  }
}

// Reduced-precision serving kernels (DESIGN.md §14): same bitwise bar as
// the fp32 hot set, over the same dim sweep — int8 covers the 32- and
// 16-wide vector bodies plus the scalar tail, bf16 the 16-wide fma strips
// plus the widening tail. Row counts off the 4-row (int8) / 2-row (bf16)
// panel width exercise the per-row fallback.
TEST_F(IsaEquivalenceTest, Int8DotAndGemvAllTails) {
  Rng rng(46);
  auto random_i8 = [&](int64_t n) {
    std::vector<int8_t> v(static_cast<size_t>(n));
    for (auto& x : v) {
      x = static_cast<int8_t>(
          static_cast<int64_t>(rng.UniformInt(uint64_t{255})) - 127);
    }
    return v;
  };
  for (const int64_t rows : {1, 2, 3, 4, 5, 7, 8, 9, 33}) {
    for (const int64_t n : kDims) {
      const auto a = random_i8(rows * n);
      const auto x = random_i8(n);
      EXPECT_EQ(ScalarKernels().dot_i8(a.data(), x.data(), n),
                avx2_->dot_i8(a.data(), x.data(), n))
          << "dot_i8 n=" << n;
      std::vector<int32_t> ref(static_cast<size_t>(rows));
      std::vector<int32_t> got(static_cast<size_t>(rows));
      ScalarKernels().gemv_i8(rows, n, a.data(), x.data(), ref.data());
      avx2_->gemv_i8(rows, n, a.data(), x.data(), got.data());
      for (int64_t r = 0; r < rows; ++r) {
        EXPECT_EQ(ref[static_cast<size_t>(r)], got[static_cast<size_t>(r)])
            << "gemv_i8 rows=" << rows << " n=" << n << " row=" << r;
      }
    }
  }
  // Extremes: saturated codes at the documented exact-accumulation bound's
  // working sizes must still agree (and not wrap in any lane pattern).
  for (const int64_t n : {33, 64, 257}) {
    std::vector<int8_t> hi(static_cast<size_t>(n), int8_t{127});
    std::vector<int8_t> lo(static_cast<size_t>(n), int8_t{-127});
    EXPECT_EQ(ScalarKernels().dot_i8(hi.data(), lo.data(), n),
              avx2_->dot_i8(hi.data(), lo.data(), n));
    EXPECT_EQ(ScalarKernels().dot_i8(hi.data(), hi.data(), n),
              static_cast<int32_t>(n) * 127 * 127);
  }
}

TEST_F(IsaEquivalenceTest, Bf16DotAndGemvAllTails) {
  Rng rng(47);
  auto random_bf16 = [&](int64_t n) {
    std::vector<uint16_t> v(static_cast<size_t>(n));
    for (auto& x : v) {
      const float f = static_cast<float>(rng.Uniform(-2.0, 2.0));
      x = static_cast<uint16_t>(std::bit_cast<uint32_t>(f) >> 16);
    }
    return v;
  };
  for (const int64_t rows : {1, 2, 3, 4, 5, 9, 33}) {
    for (const int64_t n : kDims) {
      const auto a = random_bf16(rows * n);
      const auto x = Random(n, &rng);
      const float ds = ScalarKernels().dot_bf16(a.data(), x.data(), n);
      const float dv = avx2_->dot_bf16(a.data(), x.data(), n);
      EXPECT_EQ(std::memcmp(&ds, &dv, sizeof(float)), 0)
          << "dot_bf16 n=" << n << " scalar=" << ds << " avx2=" << dv;
      std::vector<float> ref(static_cast<size_t>(rows));
      std::vector<float> got(static_cast<size_t>(rows));
      ScalarKernels().gemv_bf16(rows, n, a.data(), x.data(), ref.data());
      avx2_->gemv_bf16(rows, n, a.data(), x.data(), got.data());
      ExpectBitwiseEq(ref, got, "gemv_bf16");
    }
  }
}

TEST_F(IsaEquivalenceTest, LstmGatesForwardBackward) {
  Rng rng(44);
  for (const int64_t b : {1, 3}) {
    for (const int64_t h : {1, 5, 8, 13, 16, 33, 64}) {
      const auto z = Random(b * 4 * h, &rng, -6.0, 6.0);
      const auto c_prev = Random(b * h, &rng);
      std::vector<float> ifgo_r(b * 4 * h), tanh_r(b * h), hc_r(b * 2 * h);
      std::vector<float> ifgo_v(b * 4 * h), tanh_v(b * h), hc_v(b * 2 * h);
      ScalarKernels().lstm_gate_forward(b, h, z.data(), c_prev.data(),
                                        ifgo_r.data(), tanh_r.data(),
                                        hc_r.data());
      avx2_->lstm_gate_forward(b, h, z.data(), c_prev.data(), ifgo_v.data(),
                               tanh_v.data(), hc_v.data());
      ExpectBitwiseEq(ifgo_r, ifgo_v, "lstm fwd ifgo");
      ExpectBitwiseEq(tanh_r, tanh_v, "lstm fwd tanh_c");
      ExpectBitwiseEq(hc_r, hc_v, "lstm fwd hc");

      const auto ghc = Random(b * 2 * h, &rng);
      std::vector<float> gz_r(b * 4 * h), gcp_r(b * h);
      std::vector<float> gz_v(b * 4 * h), gcp_v(b * h);
      ScalarKernels().lstm_gate_backward(b, h, ghc.data(), ifgo_r.data(),
                                         tanh_r.data(), c_prev.data(),
                                         gz_r.data(), gcp_r.data());
      avx2_->lstm_gate_backward(b, h, ghc.data(), ifgo_r.data(),
                                tanh_r.data(), c_prev.data(), gz_v.data(),
                                gcp_v.data());
      ExpectBitwiseEq(gz_r, gz_v, "lstm bwd gz");
      ExpectBitwiseEq(gcp_r, gcp_v, "lstm bwd gc_prev");
    }
  }
}

TEST_F(IsaEquivalenceTest, AttentionSoftmaxForwardBackward) {
  Rng rng(45);
  for (const int64_t l : {1, 3, 9}) {
    for (const int64_t d : {1, 7, 8, 17, 64, 100}) {
      const auto emb = Random(l * d, &rng);
      const auto target = Random(d, &rng);
      auto neg = Random(l, &rng, -1.0, -0.01);
      std::vector<float> alpha_r(l), alpha_v(l);
      ScalarKernels().attention_softmax_forward(
          l, d, emb.data(), target.data(), neg.data(), alpha_r.data());
      avx2_->attention_softmax_forward(l, d, emb.data(), target.data(),
                                       neg.data(), alpha_v.data());
      ExpectBitwiseEq(alpha_r, alpha_v, "attention fwd alpha");

      const auto g = Random(l, &rng);
      const auto gemb0 = Random(l * d, &rng);
      const auto gtgt0 = Random(d, &rng);
      auto gemb_r = gemb0, gemb_v = gemb0;
      auto gtgt_r = gtgt0, gtgt_v = gtgt0;
      ScalarKernels().attention_softmax_backward(
          l, d, g.data(), alpha_r.data(), emb.data(), target.data(),
          neg.data(), gemb_r.data(), gtgt_r.data());
      avx2_->attention_softmax_backward(l, d, g.data(), alpha_v.data(),
                                        emb.data(), target.data(), neg.data(),
                                        gemb_v.data(), gtgt_v.data());
      ExpectBitwiseEq(gemb_r, gemb_v, "attention bwd gemb");
      ExpectBitwiseEq(gtgt_r, gtgt_v, "attention bwd gtarget");
    }
  }
}

}  // namespace
}  // namespace ehna::kernels
