// Parallelism and determinism tests: the ThreadPool shard helper, the
// per-stream RNG derivation, bitwise-reproducible parallel walk sampling
// and inference, and bounded divergence of data-parallel training against
// the legacy serial path (see README "Parallelism & determinism").
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "core/model.h"
#include "graph/generators/generators.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "walk/temporal_walk.h"

namespace ehna {
namespace {

TEST(ThreadPoolShardsTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1003;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelForShards(n, 7, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolShardsTest, ShardDecompositionIndependentOfPoolSize) {
  // The (shard, begin, end) triples must be a pure function of (n,
  // num_shards) — that's what callers key per-shard RNG streams on.
  auto decompose = [](size_t pool_threads, size_t n, size_t shards) {
    ThreadPool pool(pool_threads);
    std::mutex mu;
    std::vector<std::tuple<size_t, size_t, size_t>> out;
    pool.ParallelForShards(n, shards, [&](size_t s, size_t b, size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      out.emplace_back(s, b, e);
    });
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(decompose(1, 100, 6), decompose(8, 100, 6));
  EXPECT_EQ(decompose(2, 5, 16), decompose(5, 5, 16));
}

TEST(ThreadPoolShardsTest, HandlesFewerItemsThanShards) {
  ThreadPool pool(3);
  std::atomic<size_t> covered{0};
  pool.ParallelForShards(2, 8, [&](size_t, size_t begin, size_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 2u);
}

TEST(ThreadPoolErrorTest, TaskExceptionRethrownAtWait) {
  // A throwing task must not kill the worker thread; the exception
  // surfaces at the next Wait() join point.
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task boom"); });
  try {
    pool.Wait();
    FAIL() << "Wait() swallowed the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
  // The pool is still usable afterwards, and a clean wave rethrows
  // nothing — the captured error does not linger.
  std::atomic<int> ran{0};
  pool.Submit([&] { ran.fetch_add(1); });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolErrorTest, FirstOfManyExceptionsWins) {
  // Concurrent failures must not race destructively: exactly one
  // exception comes out of Wait(), the rest are dropped, and every task
  // still runs to its throw point.
  ThreadPool pool(4);
  std::atomic<int> attempts{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      attempts.fetch_add(1);
      throw std::runtime_error("concurrent boom");
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(attempts.load(), 16);
  EXPECT_NO_THROW(pool.Wait());  // error was consumed by the first Wait.
}

TEST(ThreadPoolErrorTest, ParallelForShardsPropagatesShardException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelForShards(100, 4,
                                      [](size_t shard, size_t, size_t) {
                                        if (shard == 2) {
                                          throw std::logic_error("shard 2");
                                        }
                                      }),
               std::logic_error);
}

TEST(ThreadPoolErrorTest, CollectErrorReturnsInsteadOfThrowing) {
  // The unwind-safe variant: same join semantics as Wait(), but the error
  // comes back as an exception_ptr (nullptr when the wave was clean).
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("collected"); });
  std::exception_ptr err = pool.CollectError();
  ASSERT_NE(err, nullptr);
  try {
    std::rethrow_exception(err);
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "collected");
  }
  pool.Submit([] {});
  EXPECT_EQ(pool.CollectError(), nullptr);
}

TEST(RngStreamTest, StreamsArePureFunctionsOfSeedAndIndex) {
  Rng a = Rng::Stream(42, 7);
  Rng b = Rng::Stream(42, 7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngStreamTest, DistinctStreamsDecorrelate) {
  Rng a = Rng::Stream(42, 0);
  Rng b = Rng::Stream(42, 1);
  Rng c = Rng::Stream(43, 0);
  int equal_ab = 0, equal_ac = 0;
  for (int i = 0; i < 64; ++i) {
    const uint64_t x = a.Next();
    if (x == b.Next()) ++equal_ab;
    if (x == c.Next()) ++equal_ac;
  }
  EXPECT_EQ(equal_ab, 0);
  EXPECT_EQ(equal_ac, 0);
}

TemporalGraph SmallGraph() {
  auto g = MakePaperDataset(PaperDataset::kDblp, 0.03, 9);
  EHNA_CHECK(g.ok());
  return std::move(g).value();
}

TEST(ParallelWalksTest, BatchSamplingBitwiseDeterministicAcrossThreadCounts) {
  TemporalGraph g = SmallGraph();
  TemporalWalkConfig cfg;
  cfg.walk_length = 6;
  cfg.num_walks = 4;
  TemporalWalkSampler sampler(&g, cfg);

  std::vector<TemporalWalkSampler::Anchor> anchors;
  for (NodeId v = 0; v < std::min<NodeId>(g.num_nodes(), 64); ++v) {
    anchors.push_back({v, g.max_time() + 1.0});
  }

  const auto serial = sampler.SampleWalksBatch(anchors, /*seed=*/11, nullptr);
  ThreadPool pool2(2), pool4(4);
  const auto par2 = sampler.SampleWalksBatch(anchors, 11, &pool2);
  const auto par4 = sampler.SampleWalksBatch(anchors, 11, &pool4);

  ASSERT_EQ(serial.size(), anchors.size());
  EXPECT_EQ(serial, par2);
  EXPECT_EQ(serial, par4);

  // A different seed must actually change something.
  const auto reseeded = sampler.SampleWalksBatch(anchors, 12, &pool4);
  EXPECT_NE(serial, reseeded);
}

EhnaConfig SmallTrainConfig(int num_threads) {
  EhnaConfig cfg;
  cfg.dim = 8;
  cfg.num_walks = 3;
  cfg.walk_length = 4;
  cfg.num_negatives = 1;
  cfg.batch_edges = 8;
  cfg.epochs = 2;
  cfg.max_edges_per_epoch = 48;
  cfg.learning_rate = 2e-3f;
  cfg.seed = 3;
  cfg.num_threads = num_threads;
  return cfg;
}

TEST(ParallelTrainingTest, SingleThreadMatchesLegacySerialExactly) {
  // num_threads = 1 must take the exact legacy code path: two models with
  // the same seed produce bitwise-identical losses and embeddings.
  TemporalGraph g = SmallGraph();
  EhnaModel a(&g, SmallTrainConfig(1));
  EhnaModel b(&g, SmallTrainConfig(1));
  const auto ha = a.Train();
  const auto hb = b.Train();
  ASSERT_EQ(ha.size(), hb.size());
  for (size_t e = 0; e < ha.size(); ++e) {
    EXPECT_EQ(ha[e].avg_loss, hb[e].avg_loss);
  }
  EXPECT_TRUE(a.FinalizeEmbeddings() == b.FinalizeEmbeddings());
}

TEST(ParallelTrainingTest, FixedThreadCountIsDeterministic) {
  // For a fixed (seed, num_threads) the parallel trainer is reproducible:
  // shard decomposition, per-edge streams, and reduction order are all
  // deterministic.
  TemporalGraph g = SmallGraph();
  EhnaModel a(&g, SmallTrainConfig(4));
  EhnaModel b(&g, SmallTrainConfig(4));
  const auto ha = a.Train();
  const auto hb = b.Train();
  ASSERT_EQ(ha.size(), hb.size());
  for (size_t e = 0; e < ha.size(); ++e) {
    EXPECT_EQ(ha[e].avg_loss, hb[e].avg_loss);
  }
  EXPECT_TRUE(a.FinalizeEmbeddings() == b.FinalizeEmbeddings());
}

TEST(ParallelTrainingTest, ParallelTrainingStaysCloseToSerial) {
  // Thread counts change the per-edge RNG streams and float reduction
  // order, so bitwise equality is out of scope — but two epochs of training
  // from identical init must land in the same neighborhood: finite,
  // same-magnitude losses and strongly aligned final embeddings.
  TemporalGraph g = SmallGraph();
  EhnaModel serial(&g, SmallTrainConfig(1));
  EhnaModel parallel(&g, SmallTrainConfig(4));
  const auto hs = serial.Train();
  const auto hp = parallel.Train();
  ASSERT_EQ(hs.size(), hp.size());
  for (size_t e = 0; e < hs.size(); ++e) {
    EXPECT_TRUE(std::isfinite(hp[e].avg_loss));
    EXPECT_GT(hp[e].avg_loss, 0.0);
    EXPECT_LT(std::abs(hp[e].avg_loss - hs[e].avg_loss),
              0.5 * hs[e].avg_loss)
        << "epoch " << e << ": serial " << hs[e].avg_loss << " vs parallel "
        << hp[e].avg_loss;
  }

  const auto mean_cosine = [](const Tensor& x, const Tensor& y) {
    double cos_sum = 0.0;
    for (int64_t v = 0; v < x.rows(); ++v) {
      double dot = 0.0, nx = 0.0, ny = 0.0;
      for (int64_t j = 0; j < x.cols(); ++j) {
        dot += static_cast<double>(x.at(v, j)) * y.at(v, j);
        nx += static_cast<double>(x.at(v, j)) * x.at(v, j);
        ny += static_cast<double>(y.at(v, j)) * y.at(v, j);
      }
      cos_sum += dot / std::max(1e-12, std::sqrt(nx) * std::sqrt(ny));
    }
    return cos_sum / x.rows();
  };

  const Tensor es = serial.FinalizeEmbeddings();
  const Tensor ep = parallel.FinalizeEmbeddings();
  ASSERT_TRUE(es.SameShape(ep));
  const double serial_vs_parallel = mean_cosine(es, ep);
  EXPECT_GT(serial_vs_parallel, 0.65)
      << "mean cosine " << serial_vs_parallel;

  // Control: an unrelated seed (different init and samples) must be far
  // less aligned, so the bound above actually certifies that serial and
  // parallel training converge to the same solution, not that any two runs
  // look alike.
  EhnaConfig other_cfg = SmallTrainConfig(1);
  other_cfg.seed = 77;
  EhnaModel other(&g, other_cfg);
  other.Train();
  const double serial_vs_other = mean_cosine(es, other.FinalizeEmbeddings());
  EXPECT_LT(serial_vs_other + 0.2, serial_vs_parallel)
      << "control cosine " << serial_vs_other;
}

void ExpectMetricsDoNotPerturbTraining(int num_threads) {
  // Instrumentation determinism (util/metrics.h): an identically seeded run
  // with metric recording disabled must produce bitwise-identical losses
  // and embeddings to one with it enabled — recording never touches an Rng
  // or any model state. (checkpoint_test.cc extends this to the serialized
  // checkpoint bytes.)
  TemporalGraph g = SmallGraph();
  MetricsRegistry::SetEnabled(true);
  EhnaModel with_metrics(&g, SmallTrainConfig(num_threads));
  const auto h_on = with_metrics.Train();
  const Tensor e_on = with_metrics.FinalizeEmbeddings();

  MetricsRegistry::SetEnabled(false);
  EhnaModel without_metrics(&g, SmallTrainConfig(num_threads));
  const auto h_off = without_metrics.Train();
  const Tensor e_off = without_metrics.FinalizeEmbeddings();
  MetricsRegistry::SetEnabled(true);

  ASSERT_EQ(h_on.size(), h_off.size());
  for (size_t e = 0; e < h_on.size(); ++e) {
    EXPECT_EQ(h_on[e].avg_loss, h_off[e].avg_loss) << "epoch " << e;
  }
  EXPECT_TRUE(e_on == e_off);
}

TEST(ParallelTrainingTest, MetricsOnOffIdenticalSerial) {
  ExpectMetricsDoNotPerturbTraining(1);
}

TEST(ParallelTrainingTest, MetricsOnOffIdenticalParallel) {
  ExpectMetricsDoNotPerturbTraining(4);
}

TEST(ParallelTrainingTest, TrainingPopulatesTelemetry) {
  // The instrumented hot paths actually feed the registry: after a real
  // training run the walk counters, epoch histogram, and throughput gauges
  // are all non-trivial.
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.Reset();
  TemporalGraph g = SmallGraph();
  EhnaModel model(&g, SmallTrainConfig(2));
  model.Train();

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("train.epochs"), 2u);
  EXPECT_GT(snap.CounterValue("train.edges"), 0u);
  EXPECT_GT(snap.CounterValue("walk.temporal.walks"), 0u);
  EXPECT_GT(snap.CounterValue("agg.aggregations"), 0u);
  EXPECT_GT(snap.GaugeValue("train.edges_per_sec"), 0.0);
  const HistogramData* epochs = snap.Histogram("train.phase.epoch");
  ASSERT_NE(epochs, nullptr);
  EXPECT_EQ(epochs->count(), 2u);
  // Phase accounting: forward+backward and the optimizer both ran, and the
  // nested walk-sampling phase is a fraction of forward+backward.
  EXPECT_GT(snap.PhaseSeconds("train.phase.forward_backward"), 0.0);
  EXPECT_GT(snap.PhaseSeconds("train.phase.optimizer_step"), 0.0);
  EXPECT_GT(snap.PhaseSeconds("train.phase.grad_reduce"), 0.0);
  EXPECT_GT(snap.PhaseSeconds("train.phase.walk_sampling"), 0.0);
  EXPECT_LT(snap.PhaseSeconds("train.phase.walk_sampling"),
            snap.PhaseSeconds("train.phase.forward_backward"));
}

TEST(ParallelTrainingTest, ZeroResolvesToHardwareConcurrency) {
  TemporalGraph g = SmallGraph();
  EhnaConfig cfg = SmallTrainConfig(0);
  EhnaModel model(&g, cfg);
  EXPECT_GE(model.num_threads(), 1);
  // Whatever it resolves to, one epoch must train and stay finite.
  const auto stats = model.TrainEpoch();
  EXPECT_TRUE(std::isfinite(stats.avg_loss));
}

}  // namespace
}  // namespace ehna
