#include <gtest/gtest.h>

#include "core/grid_search.h"
#include "graph/generators/generators.h"

namespace ehna {
namespace {

EhnaConfig TinyBase() {
  EhnaConfig cfg;
  cfg.dim = 8;
  cfg.num_walks = 2;
  cfg.walk_length = 3;
  cfg.num_negatives = 1;
  cfg.epochs = 1;
  cfg.max_edges_per_epoch = 40;
  cfg.seed = 5;
  return cfg;
}

TEST(GridSearchTest, EvaluatesEveryGridPointAndPicksBest) {
  auto made = MakePaperDataset(PaperDataset::kDblp, 0.03, 7);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();

  EhnaGridSpace space;
  space.p_values = {0.5, 2.0};
  space.q_values = {1.0};
  space.learning_rates = {2e-3f, 5e-3f};
  auto result = GridSearchEhna(g, TinyBase(), space);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().trials.size(), 4u);
  // The reported best matches the max over trials.
  double best = -1.0;
  for (const auto& t : result.value().trials) best = std::max(best, t.score);
  EXPECT_DOUBLE_EQ(result.value().best_score, best);
  // The winning config carries one of the searched (p, lr) combinations.
  bool found = false;
  for (const auto& t : result.value().trials) {
    if (t.p == result.value().best_config.p &&
        t.learning_rate == result.value().best_config.learning_rate &&
        t.score == result.value().best_score) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GridSearchTest, RejectsEmptyGrid) {
  auto made = MakePaperDataset(PaperDataset::kDblp, 0.03, 7);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  EhnaGridSpace space;
  space.p_values = {};
  EXPECT_FALSE(GridSearchEhna(g, TinyBase(), space).ok());
}

TEST(GridSearchTest, DefaultSpaceMatchesPaperGrid) {
  EhnaGridSpace space;
  EXPECT_EQ(space.p_values.size(), 5u);
  EXPECT_EQ(space.q_values.size(), 5u);
  EXPECT_DOUBLE_EQ(space.p_values.front(), 0.25);
  EXPECT_DOUBLE_EQ(space.p_values.back(), 4.0);
}

}  // namespace
}  // namespace ehna
