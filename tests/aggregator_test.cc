#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregator.h"
#include "core/model.h"
#include "graph/generators/generators.h"
#include "nn/ops.h"
#include "util/metrics.h"

namespace ehna {
namespace {

TemporalGraph SmallGraph() {
  auto g = MakePaperDataset(PaperDataset::kDigg, 0.05, 42);
  EHNA_CHECK(g.ok());
  return std::move(g).value();
}

EhnaConfig SmallConfig() {
  EhnaConfig cfg;
  cfg.dim = 8;
  cfg.num_walks = 3;
  cfg.walk_length = 4;
  cfg.lstm_layers = 2;
  cfg.num_negatives = 1;
  cfg.seed = 1;
  return cfg;
}

TEST(AggregatorTest, OutputIsUnitNormVector) {
  TemporalGraph g = SmallGraph();
  Rng rng(1);
  EhnaConfig cfg = SmallConfig();
  Embedding emb(g.num_nodes(), cfg.dim, &rng);
  EhnaAggregator agg(&g, &emb, cfg, &rng);
  for (NodeId v : {NodeId{0}, NodeId{5}, NodeId{17}}) {
    Var z = agg.Aggregate(v, g.max_time() + 1.0, /*training=*/true, &rng);
    ASSERT_EQ(z.value().rank(), 1);
    ASSERT_EQ(z.value().numel(), cfg.dim);
    EXPECT_NEAR(z.value().Norm(), 1.0f, 1e-4f);
  }
  emb.ClearGradients();
}

TEST(AggregatorTest, EarlyRefTimeTriggersFallback) {
  TemporalGraph g = SmallGraph();
  Rng rng(2);
  EhnaConfig cfg = SmallConfig();
  Embedding emb(g.num_nodes(), cfg.dim, &rng);
  EhnaAggregator agg(&g, &emb, cfg, &rng);
  // Before the first edge nobody has history; the fallback path must still
  // produce a valid normalized embedding.
  Var z = agg.Aggregate(0, g.min_time() - 1.0, true, &rng);
  EXPECT_NEAR(z.value().Norm(), 1.0f, 1e-4f);
  emb.ClearGradients();
}

TEST(AggregatorTest, IsolatedNodeUsesOwnEmbeddingOnly) {
  auto made = TemporalGraph::FromEdges({{0, 1, 1.0, 1.0f}}, /*num_nodes=*/5);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Rng rng(3);
  EhnaConfig cfg = SmallConfig();
  Embedding emb(g.num_nodes(), cfg.dim, &rng);
  EhnaAggregator agg(&g, &emb, cfg, &rng);
  Var z = agg.Aggregate(4, 10.0, true, &rng);  // node 4 isolated.
  EXPECT_NEAR(z.value().Norm(), 1.0f, 1e-4f);
  emb.ClearGradients();
}

TEST(AggregatorTest, NoHistoryTargetTakesCountedFallbackPath) {
  // A node whose entire history sits at-or-after the anchor time must take
  // an explicit, metric-counted fallback: the plan carries no walks but a
  // populated fallback neighborhood, the dedicated counter fires, and the
  // aggregated output is still a valid unit vector. Node 0's only edges
  // are at t = 5 and t = 6; the anchor is t = 1.
  auto made = TemporalGraph::FromEdges(
      {{0, 1, 5.0, 1.0f}, {0, 2, 6.0, 1.0f}, {1, 2, 1.0, 1.0f}});
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Rng rng(7);
  EhnaConfig cfg = SmallConfig();
  Embedding emb(g.num_nodes(), cfg.dim, &rng);
  EhnaAggregator agg(&g, &emb, cfg, &rng);

  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.Reset();
  AggregationPlan plan;
  Rng plan_rng(21);
  agg.PlanAggregation(0, 1.0, &plan_rng, &plan);
  EXPECT_TRUE(plan.walks.empty());
  EXPECT_FALSE(plan.fallback_ids.empty());

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("agg.no_history_targets"), 1u);
  EXPECT_EQ(snap.CounterValue("agg.fallbacks"), 1u);
  // The fast path skips the k per-walk sampler calls entirely (they would
  // each be a zero-draw length-1 walk), so the walk counter stays at zero.
  EXPECT_EQ(snap.CounterValue("walk.temporal.walks"), 0u);

  // The planned fallback and the direct Aggregate call consume the RNG
  // identically and produce the same normalized output.
  Rng direct_rng(21);
  Var direct = agg.Aggregate(0, 1.0, /*training=*/true, &direct_rng);
  EXPECT_EQ(plan_rng.Next(), direct_rng.Next());
  EXPECT_NEAR(direct.value().Norm(), 1.0f, 1e-4f);
  const std::vector<Var> packed =
      agg.AggregateBatch({plan}, /*training=*/true);
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_TRUE(packed[0].value() == direct.value());
  emb.ClearGradients();
}

TEST(AggregatorTest, GradientsReachAllParameterGroups) {
  TemporalGraph g = SmallGraph();
  Rng rng(4);
  EhnaConfig cfg = SmallConfig();
  Embedding emb(g.num_nodes(), cfg.dim, &rng);
  EhnaAggregator agg(&g, &emb, cfg, &rng);
  Var z = agg.Aggregate(1, g.max_time() + 1.0, true, &rng);
  Backward(ag::SumSquares(z));
  int with_grad = 0;
  for (const Var& p : agg.Parameters()) with_grad += p.grad().numel() > 0;
  // At least the node-level LSTM, BNs, and fuse weight must receive grads.
  EXPECT_GE(with_grad, 8);
  EXPECT_GT(emb.num_pending_rows(), 0u);
  emb.ClearGradients();
}

TEST(AggregatorTest, VariantsProduceValidOutputs) {
  TemporalGraph g = SmallGraph();
  for (EhnaVariant variant :
       {EhnaVariant::kFull, EhnaVariant::kNoAttention,
        EhnaVariant::kStaticWalk, EhnaVariant::kSingleLayer}) {
    Rng rng(5);
    EhnaConfig cfg = SmallConfig();
    cfg.variant = variant;
    Embedding emb(g.num_nodes(), cfg.dim, &rng);
    EhnaAggregator agg(&g, &emb, cfg, &rng);
    Var z = agg.Aggregate(2, g.max_time() + 1.0, true, &rng);
    EXPECT_NEAR(z.value().Norm(), 1.0f, 1e-4f) << EhnaVariantName(variant);
    for (int64_t i = 0; i < z.value().numel(); ++i) {
      EXPECT_TRUE(std::isfinite(z.value()[i])) << EhnaVariantName(variant);
    }
    emb.ClearGradients();
  }
}

TEST(AggregatorTest, VariantNames) {
  EXPECT_STREQ(EhnaVariantName(EhnaVariant::kFull), "EHNA");
  EXPECT_STREQ(EhnaVariantName(EhnaVariant::kNoAttention), "EHNA-NA");
  EXPECT_STREQ(EhnaVariantName(EhnaVariant::kStaticWalk), "EHNA-RW");
  EXPECT_STREQ(EhnaVariantName(EhnaVariant::kSingleLayer), "EHNA-SL");
}

TEST(AggregatorTest, DeterministicGivenSameRngState) {
  TemporalGraph g = SmallGraph();
  EhnaConfig cfg = SmallConfig();
  Rng rng_a(7), rng_b(7);
  Embedding emb_a(g.num_nodes(), cfg.dim, &rng_a);
  Embedding emb_b(g.num_nodes(), cfg.dim, &rng_b);
  EhnaAggregator agg_a(&g, &emb_a, cfg, &rng_a);
  EhnaAggregator agg_b(&g, &emb_b, cfg, &rng_b);
  Var za = agg_a.Aggregate(3, g.max_time() + 1.0, false, &rng_a);
  Var zb = agg_b.Aggregate(3, g.max_time() + 1.0, false, &rng_b);
  for (int64_t i = 0; i < za.value().numel(); ++i) {
    EXPECT_FLOAT_EQ(za.value()[i], zb.value()[i]);
  }
  emb_a.ClearGradients();
  emb_b.ClearGradients();
}

}  // namespace
}  // namespace ehna
