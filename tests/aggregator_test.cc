#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregator.h"
#include "core/model.h"
#include "graph/generators/generators.h"
#include "nn/ops.h"

namespace ehna {
namespace {

TemporalGraph SmallGraph() {
  auto g = MakePaperDataset(PaperDataset::kDigg, 0.05, 42);
  EHNA_CHECK(g.ok());
  return std::move(g).value();
}

EhnaConfig SmallConfig() {
  EhnaConfig cfg;
  cfg.dim = 8;
  cfg.num_walks = 3;
  cfg.walk_length = 4;
  cfg.lstm_layers = 2;
  cfg.num_negatives = 1;
  cfg.seed = 1;
  return cfg;
}

TEST(AggregatorTest, OutputIsUnitNormVector) {
  TemporalGraph g = SmallGraph();
  Rng rng(1);
  EhnaConfig cfg = SmallConfig();
  Embedding emb(g.num_nodes(), cfg.dim, &rng);
  EhnaAggregator agg(&g, &emb, cfg, &rng);
  for (NodeId v : {NodeId{0}, NodeId{5}, NodeId{17}}) {
    Var z = agg.Aggregate(v, g.max_time() + 1.0, /*training=*/true, &rng);
    ASSERT_EQ(z.value().rank(), 1);
    ASSERT_EQ(z.value().numel(), cfg.dim);
    EXPECT_NEAR(z.value().Norm(), 1.0f, 1e-4f);
  }
  emb.ClearGradients();
}

TEST(AggregatorTest, EarlyRefTimeTriggersFallback) {
  TemporalGraph g = SmallGraph();
  Rng rng(2);
  EhnaConfig cfg = SmallConfig();
  Embedding emb(g.num_nodes(), cfg.dim, &rng);
  EhnaAggregator agg(&g, &emb, cfg, &rng);
  // Before the first edge nobody has history; the fallback path must still
  // produce a valid normalized embedding.
  Var z = agg.Aggregate(0, g.min_time() - 1.0, true, &rng);
  EXPECT_NEAR(z.value().Norm(), 1.0f, 1e-4f);
  emb.ClearGradients();
}

TEST(AggregatorTest, IsolatedNodeUsesOwnEmbeddingOnly) {
  auto made = TemporalGraph::FromEdges({{0, 1, 1.0, 1.0f}}, /*num_nodes=*/5);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Rng rng(3);
  EhnaConfig cfg = SmallConfig();
  Embedding emb(g.num_nodes(), cfg.dim, &rng);
  EhnaAggregator agg(&g, &emb, cfg, &rng);
  Var z = agg.Aggregate(4, 10.0, true, &rng);  // node 4 isolated.
  EXPECT_NEAR(z.value().Norm(), 1.0f, 1e-4f);
  emb.ClearGradients();
}

TEST(AggregatorTest, GradientsReachAllParameterGroups) {
  TemporalGraph g = SmallGraph();
  Rng rng(4);
  EhnaConfig cfg = SmallConfig();
  Embedding emb(g.num_nodes(), cfg.dim, &rng);
  EhnaAggregator agg(&g, &emb, cfg, &rng);
  Var z = agg.Aggregate(1, g.max_time() + 1.0, true, &rng);
  Backward(ag::SumSquares(z));
  int with_grad = 0;
  for (const Var& p : agg.Parameters()) with_grad += p.grad().numel() > 0;
  // At least the node-level LSTM, BNs, and fuse weight must receive grads.
  EXPECT_GE(with_grad, 8);
  EXPECT_GT(emb.num_pending_rows(), 0u);
  emb.ClearGradients();
}

TEST(AggregatorTest, VariantsProduceValidOutputs) {
  TemporalGraph g = SmallGraph();
  for (EhnaVariant variant :
       {EhnaVariant::kFull, EhnaVariant::kNoAttention,
        EhnaVariant::kStaticWalk, EhnaVariant::kSingleLayer}) {
    Rng rng(5);
    EhnaConfig cfg = SmallConfig();
    cfg.variant = variant;
    Embedding emb(g.num_nodes(), cfg.dim, &rng);
    EhnaAggregator agg(&g, &emb, cfg, &rng);
    Var z = agg.Aggregate(2, g.max_time() + 1.0, true, &rng);
    EXPECT_NEAR(z.value().Norm(), 1.0f, 1e-4f) << EhnaVariantName(variant);
    for (int64_t i = 0; i < z.value().numel(); ++i) {
      EXPECT_TRUE(std::isfinite(z.value()[i])) << EhnaVariantName(variant);
    }
    emb.ClearGradients();
  }
}

TEST(AggregatorTest, VariantNames) {
  EXPECT_STREQ(EhnaVariantName(EhnaVariant::kFull), "EHNA");
  EXPECT_STREQ(EhnaVariantName(EhnaVariant::kNoAttention), "EHNA-NA");
  EXPECT_STREQ(EhnaVariantName(EhnaVariant::kStaticWalk), "EHNA-RW");
  EXPECT_STREQ(EhnaVariantName(EhnaVariant::kSingleLayer), "EHNA-SL");
}

TEST(AggregatorTest, DeterministicGivenSameRngState) {
  TemporalGraph g = SmallGraph();
  EhnaConfig cfg = SmallConfig();
  Rng rng_a(7), rng_b(7);
  Embedding emb_a(g.num_nodes(), cfg.dim, &rng_a);
  Embedding emb_b(g.num_nodes(), cfg.dim, &rng_b);
  EhnaAggregator agg_a(&g, &emb_a, cfg, &rng_a);
  EhnaAggregator agg_b(&g, &emb_b, cfg, &rng_b);
  Var za = agg_a.Aggregate(3, g.max_time() + 1.0, false, &rng_a);
  Var zb = agg_b.Aggregate(3, g.max_time() + 1.0, false, &rng_b);
  for (int64_t i = 0; i < za.value().numel(); ++i) {
    EXPECT_FLOAT_EQ(za.value()[i], zb.value()[i]);
  }
  emb_a.ClearGradients();
  emb_b.ClearGradients();
}

}  // namespace
}  // namespace ehna
