// Concurrency and registry tests for the observability layer (DESIGN.md
// §8): counters and histograms hammered from ThreadPool workers must report
// exact totals, sharded merges must be independent of thread interleaving,
// and snapshots must export through TableWriter/JSON without perturbing the
// recorded values.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"

namespace ehna {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Each test uses its own metric names so tests stay independent even
/// though the registry is process-global.
TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter.hammer");
  c->Reset();
  const size_t kThreads = 8;
  const uint64_t kPerTask = 10000;
  ThreadPool pool(kThreads);
  for (size_t t = 0; t < 32; ++t) {
    pool.Submit([c] {
      for (uint64_t i = 0; i < kPerTask; ++i) c->Add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(c->Total(), 32 * kPerTask);
}

TEST(CounterTest, WeightedAddsAndReset) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter.weighted");
  c->Reset();
  c->Add(5);
  c->Add();  // default delta 1.
  EXPECT_EQ(c->Total(), 6u);
  c->Reset();
  EXPECT_EQ(c->Total(), 0u);
}

TEST(CounterTest, RegistryReturnsStablePointerPerName) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.counter.stable");
  Counter* b = MetricsRegistry::Global().GetCounter("test.counter.stable");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, MetricsRegistry::Global().GetCounter("test.counter.other"));
}

TEST(GaugeTest, LastWriteWinsAndRoundTripsDoubles) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge.basic");
  g->Set(1.5);
  g->Set(-273.125);
  EXPECT_EQ(g->Value(), -273.125);
  g->Set(1e308);
  EXPECT_EQ(g->Value(), 1e308);
  g->Reset();
  EXPECT_EQ(g->Value(), 0.0);
}

TEST(StreamingHistogramTest, ConcurrentRecordsMergeToExactCountAndSum) {
  StreamingHistogram* h =
      MetricsRegistry::Global().GetHistogram("test.hist.hammer");
  h->Reset();
  const size_t kTasks = 24;
  const uint64_t kPerTask = 5000;
  ThreadPool pool(8);
  for (size_t t = 0; t < kTasks; ++t) {
    pool.Submit([h, t] {
      for (uint64_t i = 0; i < kPerTask; ++i) h->Record(t * 1000 + i);
    });
  }
  pool.Wait();
  const HistogramData d = h->Merged();
  EXPECT_EQ(d.count(), kTasks * kPerTask);
  uint64_t expected_sum = 0;
  for (size_t t = 0; t < kTasks; ++t) {
    for (uint64_t i = 0; i < kPerTask; ++i) expected_sum += t * 1000 + i;
  }
  EXPECT_EQ(d.sum(), expected_sum);
  EXPECT_EQ(d.min(), 0u);
  EXPECT_EQ(d.max(), (kTasks - 1) * 1000 + kPerTask - 1);
}

TEST(StreamingHistogramTest, MergedResultIndependentOfInterleaving) {
  // Record the same multiset of samples under three different threading
  // regimes; the merged histograms must compare equal bucket-for-bucket.
  const std::vector<uint64_t> samples = [] {
    std::vector<uint64_t> s;
    for (uint64_t i = 0; i < 20000; ++i) {
      s.push_back((i * 2654435761u) % 1000000u);
    }
    return s;
  }();

  auto run = [&](const char* name, size_t threads) {
    StreamingHistogram* h = MetricsRegistry::Global().GetHistogram(name);
    h->Reset();
    if (threads <= 1) {
      for (uint64_t v : samples) h->Record(v);
    } else {
      ThreadPool pool(threads);
      pool.ParallelFor(samples.size(),
                       [&](size_t i) { h->Record(samples[i]); });
    }
    return h->Merged();
  };

  const HistogramData serial = run("test.hist.interleave_serial", 1);
  const HistogramData par2 = run("test.hist.interleave_par2", 2);
  const HistogramData par8 = run("test.hist.interleave_par8", 8);
  EXPECT_TRUE(serial == par2);
  EXPECT_TRUE(serial == par8);
  EXPECT_EQ(serial.count(), samples.size());
}

TEST(StreamingHistogramTest, DisabledRecordingIsDropped) {
  StreamingHistogram* h =
      MetricsRegistry::Global().GetHistogram("test.hist.disabled");
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter.disabled");
  h->Reset();
  c->Reset();
  MetricsRegistry::SetEnabled(false);
  h->Record(42);
  c->Add(7);
  MetricsRegistry::SetEnabled(true);
  EXPECT_EQ(h->Merged().count(), 0u);
  EXPECT_EQ(c->Total(), 0u);
  h->Record(42);
  c->Add(7);
  EXPECT_EQ(h->Merged().count(), 1u);
  EXPECT_EQ(c->Total(), 7u);
}

TEST(PhaseScopeTest, TraceMacroRecordsOnePerScopeExit) {
  StreamingHistogram* h =
      MetricsRegistry::Global().GetHistogram("test.phase.macro");
  h->Reset();
  for (int i = 0; i < 3; ++i) {
    EHNA_TRACE_PHASE("test.phase.macro");
  }
  EXPECT_EQ(h->Merged().count(), 3u);
}

TEST(PhaseScopeTest, DisabledScopeIsInert) {
  StreamingHistogram* h =
      MetricsRegistry::Global().GetHistogram("test.phase.inert");
  h->Reset();
  MetricsRegistry::SetEnabled(false);
  {
    EHNA_TRACE_PHASE("test.phase.inert");
  }
  MetricsRegistry::SetEnabled(true);
  EXPECT_EQ(h->Merged().count(), 0u);
}

TEST(SnapshotTest, LookupHelpersAndPhaseSeconds) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.snap.counter")->Reset();
  reg.GetCounter("test.snap.counter")->Add(11);
  reg.GetGauge("test.snap.gauge")->Set(2.5);
  StreamingHistogram* h = reg.GetHistogram("test.snap.phase");
  h->Reset();
  h->Record(1'500'000'000);  // 1.5 s in ns.
  h->Record(500'000'000);    // 0.5 s.

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("test.snap.counter"), 11u);
  EXPECT_EQ(snap.GaugeValue("test.snap.gauge"), 2.5);
  ASSERT_NE(snap.Histogram("test.snap.phase"), nullptr);
  EXPECT_EQ(snap.Histogram("test.snap.phase")->count(), 2u);
  EXPECT_NEAR(snap.PhaseSeconds("test.snap.phase"), 2.0, 1e-9);
  // Missing names degrade to zero / null, never crash.
  EXPECT_EQ(snap.CounterValue("test.snap.absent"), 0u);
  EXPECT_EQ(snap.GaugeValue("test.snap.absent"), 0.0);
  EXPECT_EQ(snap.Histogram("test.snap.absent"), nullptr);
  EXPECT_EQ(snap.PhaseSeconds("test.snap.absent"), 0.0);
}

TEST(SnapshotTest, EntriesAreNameSorted) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.sorted.b");
  reg.GetCounter("test.sorted.a");
  const MetricsSnapshot snap = reg.Snapshot();
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  for (size_t i = 1; i < snap.histograms.size(); ++i) {
    EXPECT_LT(snap.histograms[i - 1].name, snap.histograms[i].name);
  }
}

TEST(SnapshotTest, WritesTsvAndJson) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.export.counter")->Reset();
  reg.GetCounter("test.export.counter")->Add(3);
  StreamingHistogram* h = reg.GetHistogram("test.export.hist");
  h->Reset();
  h->Record(10);
  h->Record(20);
  const MetricsSnapshot snap = reg.Snapshot();

  const auto dir = std::filesystem::temp_directory_path();
  const std::string tsv = (dir / "ehna_metrics_test.tsv").string();
  const std::string json = (dir / "ehna_metrics_test.json").string();
  ASSERT_TRUE(snap.WriteTsv(tsv).ok());
  ASSERT_TRUE(snap.WriteJson(json).ok());

  const std::string tsv_text = Slurp(tsv);
  EXPECT_NE(tsv_text.find("test.export.counter"), std::string::npos);
  EXPECT_NE(tsv_text.find("test.export.hist"), std::string::npos);

  const std::string json_text = Slurp(json);
  EXPECT_NE(json_text.find("\"test.export.counter\""), std::string::npos);
  EXPECT_NE(json_text.find("\"counters\""), std::string::npos);
  EXPECT_NE(json_text.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(json_text.front(), '{');
  EXPECT_EQ(json_text[json_text.find_last_not_of('\n')], '}');

  std::filesystem::remove(tsv);
  std::filesystem::remove(json);
}

TEST(SnapshotTest, ToTableHasOneRowPerMetric) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.table.counter");
  reg.GetGauge("test.table.gauge");
  reg.GetHistogram("test.table.hist");
  const MetricsSnapshot snap = reg.Snapshot();
  TableWriter table = snap.ToTable();
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("test.table.counter"), std::string::npos);
  EXPECT_NE(out.find("test.table.gauge"), std::string::npos);
  EXPECT_NE(out.find("test.table.hist"), std::string::npos);
}

TEST(RegistryTest, ResetZeroesValuesButKeepsPointers) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.reset.counter");
  Gauge* g = reg.GetGauge("test.reset.gauge");
  StreamingHistogram* h = reg.GetHistogram("test.reset.hist");
  c->Add(9);
  g->Set(4.0);
  h->Record(100);
  reg.Reset();
  EXPECT_EQ(c->Total(), 0u);
  EXPECT_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Merged().count(), 0u);
  // Cached pointers still record after Reset.
  c->Add(2);
  EXPECT_EQ(reg.GetCounter("test.reset.counter"), c);
  EXPECT_EQ(c->Total(), 2u);
}

TEST(RegistryTest, ConcurrentRegistrationIsSafeAndConsistent) {
  // Many threads race to register overlapping names; every thread must see
  // the same pointer for the same name.
  ThreadPool pool(8);
  std::vector<Counter*> seen(64, nullptr);
  pool.ParallelFor(seen.size(), [&](size_t i) {
    const std::string name =
        "test.race.counter." + std::to_string(i % 4);
    seen[i] = MetricsRegistry::Global().GetCounter(name);
    seen[i]->Add(1);
  });
  for (size_t i = 0; i < seen.size(); ++i) {
    ASSERT_NE(seen[i], nullptr);
    EXPECT_EQ(seen[i],
              MetricsRegistry::Global().GetCounter(
                  "test.race.counter." + std::to_string(i % 4)));
  }
}

}  // namespace
}  // namespace ehna
