// Parameterized property tests: invariants that must hold across whole
// parameter grids rather than at single points.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "core/attention.h"
#include "eval/edge_ops.h"
#include "eval/metrics.h"
#include "graph/generators/generators.h"
#include "graph/split.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "util/alias_sampler.h"
#include "util/logging.h"
#include "walk/node2vec_walk.h"
#include "walk/temporal_walk.h"

namespace ehna {
namespace {

// ------------------------------------------------ Temporal walk invariants

class TemporalWalkProperty
    : public ::testing::TestWithParam<std::tuple<double, double, int, int>> {
};

TEST_P(TemporalWalkProperty, RelevanceConstraintHoldsForAllConfigs) {
  const auto [p, q, length, dataset_idx] = GetParam();
  auto made = MakePaperDataset(static_cast<PaperDataset>(dataset_idx), 0.05,
                               /*seed=*/dataset_idx + 1);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();

  TemporalWalkConfig cfg;
  cfg.p = p;
  cfg.q = q;
  cfg.walk_length = length;
  TemporalWalkSampler sampler(&g, cfg);
  Rng rng(42);
  const Timestamp ref = g.min_time() + 0.7 * (g.max_time() - g.min_time());
  for (int i = 0; i < 30; ++i) {
    const NodeId start = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    Walk w = sampler.SampleWalk(start, ref, &rng);
    ASSERT_FALSE(w.empty());
    EXPECT_EQ(w[0].node, start);
    EXPECT_LE(w.size(), static_cast<size_t>(length) + 1);
    // Definition 2: all traversed edges historical w.r.t. ref and
    // non-increasing along the walk.
    for (size_t j = 1; j < w.size(); ++j) {
      EXPECT_LE(w[j].edge_time, ref);
      if (j >= 2) {
        EXPECT_LE(w[j].edge_time, w[j - 1].edge_time);
      }
      EXPECT_TRUE(g.HasEdge(w[j - 1].node, w[j].node));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PqGrid, TemporalWalkProperty,
    ::testing::Combine(::testing::Values(0.25, 1.0, 4.0),
                       ::testing::Values(0.25, 1.0, 4.0),
                       ::testing::Values(3, 8),
                       ::testing::Values(0, 3)));  // Digg, DBLP.

// ------------------------------------------------ Node2Vec walk invariants

class Node2VecWalkProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(Node2VecWalkProperty, WalksFollowEdgesAndRespectLength) {
  const auto [p, q] = GetParam();
  auto made = MakePaperDataset(PaperDataset::kDigg, 0.05, 3);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Node2VecWalkConfig cfg;
  cfg.p = p;
  cfg.q = q;
  cfg.walk_length = 12;
  Node2VecWalkSampler sampler(&g, cfg);
  Rng rng(7);
  for (int i = 0; i < 25; ++i) {
    const NodeId start = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    auto w = sampler.SampleWalk(start, &rng);
    ASSERT_FALSE(w.empty());
    EXPECT_EQ(w[0], start);
    EXPECT_LE(w.size(), 13u);
    for (size_t j = 1; j < w.size(); ++j) {
      EXPECT_TRUE(g.HasEdge(w[j - 1], w[j]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PqGrid, Node2VecWalkProperty,
                         ::testing::Combine(::testing::Values(0.25, 1.0, 4.0),
                                            ::testing::Values(0.25, 1.0,
                                                              4.0)));

// ------------------------------------------------- Generator invariants

class GeneratorProperty
    : public ::testing::TestWithParam<std::tuple<int, double, uint64_t>> {};

TEST_P(GeneratorProperty, DatasetInvariants) {
  const auto [dataset_idx, scale, seed] = GetParam();
  const auto dataset = static_cast<PaperDataset>(dataset_idx);
  auto made = MakePaperDataset(dataset, scale, seed);
  ASSERT_TRUE(made.ok()) << made.status();
  const TemporalGraph& g = made.value();

  EXPECT_GT(g.num_nodes(), 0u);
  EXPECT_GT(g.num_edges(), 0u);
  // Timestamps sorted and non-negative.
  const auto& edges = g.edges();
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LE(edges[i - 1].time, edges[i].time);
  }
  EXPECT_GE(g.min_time(), 0.0);
  // No self loops; endpoints valid.
  for (const auto& e : edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_LT(e.src, g.num_nodes());
    EXPECT_LT(e.dst, g.num_nodes());
  }
  // Adjacency count is twice the edge count (undirected).
  size_t total_adj = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) total_adj += g.Degree(v);
  EXPECT_EQ(total_adj, 2 * g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsScalesSeeds, GeneratorProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0.05, 0.2),
                       ::testing::Values(uint64_t{1}, uint64_t{99})));

// ------------------------------------- Historical-prefix (CSR) invariants

/// NeighborsBefore is the load-bearing query of the temporal walk
/// (Definition 2's historical neighborhood); these properties pin its
/// algebra to the spec independent of the CSR binary search that
/// implements it: it equals the time-filter of the full adjacency, it is a
/// *prefix* of it (same objects, same order), and it is monotone in the
/// cutoff.
class NeighborsBeforeProperty
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(NeighborsBeforeProperty, EqualsTimeFilterIsPrefixAndMonotone) {
  const auto [dataset_idx, seed] = GetParam();
  auto made = MakePaperDataset(static_cast<PaperDataset>(dataset_idx), 0.05,
                               seed);
  ASSERT_TRUE(made.ok());
  const TemporalGraph& g = made.value();

  Rng rng(seed * 31 + 7);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto all = g.Neighbors(v);
    ASSERT_EQ(all.size(), g.Degree(v));

    // Cutoffs: below, above, exactly on edge timestamps, and random.
    std::vector<Timestamp> cutoffs = {g.min_time() - 1.0, g.min_time(),
                                      g.max_time(), g.max_time() + 1.0};
    for (int i = 0; i < 6; ++i) {
      cutoffs.push_back(rng.Uniform(g.min_time(), g.max_time()));
    }
    if (!all.empty()) {
      cutoffs.push_back(all[all.size() / 2].time);  // duplicate-heavy point.
    }
    std::sort(cutoffs.begin(), cutoffs.end());

    size_t prev_size = 0;
    for (size_t c = 0; c < cutoffs.size(); ++c) {
      const Timestamp t = cutoffs[c];
      const auto before = g.NeighborsBefore(v, t);

      // (1) Extensional equality with the filter of Neighbors.
      size_t want = 0;
      for (const AdjEntry& a : all) {
        if (a.time <= t) ++want;
      }
      ASSERT_EQ(before.size(), want) << "node " << v << " cutoff " << t;

      // (2) Prefix: the span aliases the head of the full adjacency, so
      // every element matches positionally (and no a.time > t slips in).
      ASSERT_TRUE(before.empty() || before.data() == all.data())
          << "node " << v << ": NeighborsBefore is not a prefix view";
      for (size_t i = 0; i < before.size(); ++i) {
        ASSERT_EQ(before[i].neighbor, all[i].neighbor);
        ASSERT_EQ(before[i].edge_id, all[i].edge_id);
        ASSERT_LE(before[i].time, t);
      }

      // (3) Monotone in the cutoff (cutoffs are sorted ascending).
      ASSERT_GE(before.size(), prev_size)
          << "node " << v << ": NeighborsBefore shrank as the cutoff grew";
      prev_size = before.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsSeeds, NeighborsBeforeProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(uint64_t{1}, uint64_t{42})));

// ------------------------------------------------------ Split invariants

class SplitProperty : public ::testing::TestWithParam<double> {};

TEST_P(SplitProperty, HoldoutFractionRespected) {
  const double fraction = GetParam();
  auto made = MakePaperDataset(PaperDataset::kDigg, 0.05, 5);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Rng rng(5);
  TemporalSplitOptions opt;
  opt.holdout_fraction = fraction;
  auto split = MakeTemporalSplit(g, opt, &rng);
  ASSERT_TRUE(split.ok());
  const size_t expected_holdout =
      static_cast<size_t>(g.num_edges() * fraction);
  EXPECT_EQ(split.value().train.num_edges(),
            g.num_edges() - expected_holdout);
  // Train edges all strictly older than (or equal to boundary of) test.
  const Timestamp train_max = split.value().train.max_time();
  for (const auto& e : split.value().test_positive) {
    EXPECT_GE(e.time, train_max);
  }
  // Negatives never collide with true edges.
  for (const auto& [u, v] : split.value().test_negative) {
    EXPECT_FALSE(g.HasEdge(u, v));
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitProperty,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5));

// ------------------------------------------------- Alias sampler fidelity

class AliasSamplerProperty : public ::testing::TestWithParam<int> {};

TEST_P(AliasSamplerProperty, EmpiricalMatchesTarget) {
  const int n = GetParam();
  Rng wrng(static_cast<uint64_t>(n));
  std::vector<double> weights(n);
  double total = 0.0;
  for (double& w : weights) {
    w = wrng.Uniform(0.0, 10.0);
    total += w;
  }
  AliasSampler sampler(weights);
  Rng rng(17);
  std::vector<int> counts(n, 0);
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) ++counts[sampler.Sample(&rng)];
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(draws), weights[i] / total,
                0.015)
        << "outcome " << i << " of " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AliasSamplerProperty,
                         ::testing::Values(2, 3, 7, 16, 64));

// --------------------------------------------------- Edge-op invariants

class EdgeOpProperty : public ::testing::TestWithParam<EdgeOperator> {};

TEST_P(EdgeOpProperty, SymmetricInEndpoints) {
  // Every operator of Table II is symmetric: f(x,y) == f(y,x). (This is
  // why they suit undirected link prediction.)
  const EdgeOperator op = GetParam();
  Rng rng(3);
  const int64_t d = 24;
  std::vector<float> ex(d), ey(d), ab(d), ba(d);
  for (int64_t j = 0; j < d; ++j) {
    ex[j] = static_cast<float>(rng.Normal());
    ey[j] = static_cast<float>(rng.Normal());
  }
  ApplyEdgeOperator(op, ex.data(), ey.data(), d, ab.data());
  ApplyEdgeOperator(op, ey.data(), ex.data(), d, ba.data());
  for (int64_t j = 0; j < d; ++j) EXPECT_FLOAT_EQ(ab[j], ba[j]);
}

TEST_P(EdgeOpProperty, IdenticalEmbeddingsGiveCanonicalValue) {
  const EdgeOperator op = GetParam();
  const int64_t d = 8;
  std::vector<float> e(d, 0.5f), out(d);
  ApplyEdgeOperator(op, e.data(), e.data(), d, out.data());
  for (int64_t j = 0; j < d; ++j) {
    switch (op) {
      case EdgeOperator::kMean:
        EXPECT_FLOAT_EQ(out[j], 0.5f);
        break;
      case EdgeOperator::kHadamard:
        EXPECT_FLOAT_EQ(out[j], 0.25f);
        break;
      case EdgeOperator::kWeightedL1:
      case EdgeOperator::kWeightedL2:
        EXPECT_FLOAT_EQ(out[j], 0.0f);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, EdgeOpProperty,
                         ::testing::ValuesIn(kAllEdgeOperators));

// -------------------------------------------- Softmax/attention property

class SoftmaxSizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxSizeProperty, SumsToOneAndOrdersMonotonically) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 7 + 1);
  Tensor logits(n);
  UniformInit(&logits, -3.0f, 3.0f, &rng);
  Var x = Var::Leaf(logits);
  Var y = ag::Softmax(x);
  float total = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_GT(y.value()[i], 0.0f);
    total += y.value()[i];
  }
  EXPECT_NEAR(total, 1.0f, 1e-5f);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (logits[i] < logits[j]) {
        EXPECT_LE(y.value()[i], y.value()[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SoftmaxSizeProperty,
                         ::testing::Values(1, 2, 5, 17, 64));

// ------------------------------------------- Attention coefficient bounds

class AttentionWalkLengthProperty : public ::testing::TestWithParam<int> {};

TEST_P(AttentionWalkLengthProperty, CoefficientsBoundedAndPositive) {
  const int length = GetParam();
  Rng rng(static_cast<uint64_t>(length));
  Walk walk;
  walk.push_back(WalkStep{0, 0.0, 0.0f});
  for (int j = 1; j <= length; ++j) {
    walk.push_back(WalkStep{static_cast<NodeId>(rng.UniformInt(5)),
                            rng.Uniform(0.0, 100.0), 1.0f});
  }
  const float floor = 0.05f;
  const auto coeffs = NodeAttentionCoefficients(walk, 0.0, 100.0, floor);
  ASSERT_EQ(coeffs.size(), walk.size());
  for (float c : coeffs) {
    EXPECT_GT(c, 0.0f);
    EXPECT_LE(c, 1.0f / floor + 1e-4f);
  }
  const float a = WalkAttentionCoefficient(coeffs);
  EXPECT_GT(a, 0.0f);
  EXPECT_LE(a, 1.0f / floor + 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AttentionWalkLengthProperty,
                         ::testing::Values(1, 2, 5, 10, 25));

// ------------------------------------------------------ AUC invariances

class AucScaleProperty : public ::testing::TestWithParam<double> {};

TEST_P(AucScaleProperty, InvariantUnderMonotoneTransforms) {
  const double scale = GetParam();
  Rng rng(11);
  std::vector<double> scores(200);
  std::vector<int> labels(200);
  for (size_t i = 0; i < scores.size(); ++i) {
    labels[i] = rng.Bernoulli(0.4);
    scores[i] = rng.Normal() + labels[i];  // informative scores.
  }
  auto base = AreaUnderRoc(scores, labels);
  ASSERT_TRUE(base.ok());
  std::vector<double> transformed(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    transformed[i] = scale * scores[i] + 3.0;  // strictly monotone.
  }
  auto after = AreaUnderRoc(transformed, labels);
  ASSERT_TRUE(after.ok());
  EXPECT_NEAR(base.value(), after.value(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Scales, AucScaleProperty,
                         ::testing::Values(0.5, 1.0, 10.0, 1000.0));

// -------------------------------------- L2Normalize across magnitudes

class NormalizeProperty : public ::testing::TestWithParam<float> {};

TEST_P(NormalizeProperty, UnitNormForAnyScale) {
  const float scale = GetParam();
  Rng rng(5);
  Tensor v(12);
  UniformInit(&v, -1.0f, 1.0f, &rng);
  v.ScaleInPlace(scale);
  Var x = Var::Leaf(v);
  Var y = ag::L2Normalize(x);
  EXPECT_NEAR(y.value().Norm(), 1.0f, 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, NormalizeProperty,
                         ::testing::Values(1e-3f, 0.1f, 1.0f, 100.0f, 1e4f));

}  // namespace
}  // namespace ehna
