#!/usr/bin/env python3
"""Unit tests for bench/check_bench_regression.py.

Covers the comparison logic and — the regression this file exists for —
the malformed-input handling: a bad JSON file must produce exit status 2
and a message naming the file and offending record, never a raw
KeyError/TypeError traceback.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "bench",
    "check_bench_regression.py",
)


def record(bench="gemm", shape="64x64", isa="avx2", value=10.0,
           metric="gflops"):
    return {"bench": bench, "shape": shape, "isa": isa, "value": value,
            "metric": metric}


class CheckBenchRegressionTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)
        return path

    def run_check(self, current, baseline, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, current, baseline, *extra],
            capture_output=True, text=True,
        )

    # ------------------------------------------------ comparison logic

    def test_within_tolerance_passes(self):
        cur = self.write("cur.json", [record(value=8.0)])
        base = self.write("base.json", [record(value=10.0)])
        proc = self.run_check(cur, base, "--tolerance", "0.30")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("ok", proc.stdout)

    def test_regression_fails_with_status_one(self):
        cur = self.write("cur.json", [record(value=5.0)])
        base = self.write("base.json", [record(value=10.0)])
        proc = self.run_check(cur, base, "--tolerance", "0.30")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)

    def test_one_sided_records_never_fail(self):
        cur = self.write("cur.json", [record(bench="only_current")])
        base = self.write("base.json", [record(bench="only_baseline")])
        proc = self.run_check(cur, base)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("in baseline only", proc.stdout)
        self.assertIn("new record, no baseline", proc.stdout)

    def test_non_gflops_records_ignored_even_if_malformed(self):
        cur = self.write(
            "cur.json",
            [record(value=10.0), {"metric": "seconds", "weird": True}],
        )
        base = self.write("base.json", [record(value=10.0)])
        proc = self.run_check(cur, base)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    # ------------------------------------------- metric allowlist logic

    def test_scale_graph_throughput_metrics_are_gated(self):
        cur = self.write(
            "cur.json",
            [record(bench="scale_graph_build", shape="1e6 edges", isa="any",
                    metric="medges_per_s", value=2.0)],
        )
        base = self.write(
            "base.json",
            [record(bench="scale_graph_build", shape="1e6 edges", isa="any",
                    metric="medges_per_s", value=10.0)],
        )
        proc = self.run_check(cur, base, "--tolerance", "0.30")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertIn("medges_per_s", proc.stdout)

    def test_rss_records_are_informational_only(self):
        # Memory records are lower-is-better and host-dependent; the gate
        # must ignore them no matter how wildly they differ.
        cur = self.write(
            "cur.json",
            [record(value=10.0),
             record(metric="rss_mb", value=9999.0)],
        )
        base = self.write(
            "base.json",
            [record(value=10.0),
             record(metric="rss_mb", value=1.0)],
        )
        proc = self.run_check(cur, base)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_metrics_keyed_independently_per_record(self):
        # The same (bench, shape, isa) can carry several metrics; each is
        # matched to its own baseline, not the last one parsed.
        cur = self.write(
            "cur.json",
            [record(metric="medges_per_s", value=10.0),
             record(metric="kwalks_per_s", value=2.0)],
        )
        base = self.write(
            "base.json",
            [record(metric="medges_per_s", value=10.0),
             record(metric="kwalks_per_s", value=10.0)],
        )
        proc = self.run_check(cur, base, "--tolerance", "0.30")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("kwalks_per_s", proc.stdout)

    # ------------------------------------------- malformed-input paths

    def assert_clean_failure(self, proc, *needles):
        """Exit status 2, no traceback, stderr names the problem."""
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)
        self.assertNotIn("Traceback", proc.stdout)
        for needle in needles:
            self.assertIn(needle, proc.stderr, proc.stderr)

    def test_missing_file(self):
        base = self.write("base.json", [record()])
        missing = os.path.join(self.dir.name, "nope.json")
        self.assert_clean_failure(
            self.run_check(missing, base), "ERROR", "nope.json",
            "cannot read")

    def test_invalid_json(self):
        cur = self.write("cur.json", "{not json")
        base = self.write("base.json", [record()])
        self.assert_clean_failure(
            self.run_check(cur, base), "ERROR", "cur.json", "invalid JSON")

    def test_top_level_not_a_list(self):
        cur = self.write("cur.json", {"bench": "gemm"})
        base = self.write("base.json", [record()])
        self.assert_clean_failure(
            self.run_check(cur, base), "ERROR", "cur.json",
            "must be a JSON array")

    def test_record_not_an_object(self):
        cur = self.write("cur.json", [record(), "gemm"])
        base = self.write("base.json", [record()])
        self.assert_clean_failure(
            self.run_check(cur, base), "ERROR", "record #1",
            "not a JSON object")

    def test_record_missing_field(self):
        bad = record()
        del bad["shape"]
        cur = self.write("cur.json", [bad])
        base = self.write("base.json", [record()])
        self.assert_clean_failure(
            self.run_check(cur, base), "ERROR", "record #0", "'shape'")

    def test_record_field_wrong_type(self):
        cur = self.write("cur.json", [record(value="fast")])
        base = self.write("base.json", [record()])
        self.assert_clean_failure(
            self.run_check(cur, base), "ERROR", "record #0", "'value'")

    def test_malformed_baseline_also_caught(self):
        cur = self.write("cur.json", [record()])
        base = self.write("base.json", [{"metric": "gflops"}])
        self.assert_clean_failure(
            self.run_check(cur, base), "ERROR", "base.json", "record #0")


if __name__ == "__main__":
    unittest.main()
