// Per-op finite-difference gradient checks for every differentiable op in
// nn/ops.h, including the fused LSTM pre-activation / gate kernels and the
// fused attention softmax. Each op is exercised in isolation (scalarized
// through a fixed weighted sum), with central differences evaluated at the
// same leaves the analytic backward saw. The acceptance bar is a relative
// error of at most 1e-3 per element (relative to max(1, |analytic|,
// |numeric|)), which fp32 forward passes meet comfortably at eps = 1e-2.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "nn/autograd.h"
#include "nn/kernels.h"
#include "nn/ops.h"

namespace ehna {
namespace {

constexpr double kTol = 1e-3;

/// Deterministic smooth filler: values in offset ± scale, no two elements
/// equal, no dependence on any RNG.
void FillPattern(Tensor* t, float scale, float offset, int phase = 0) {
  float* d = t->data();
  for (int64_t i = 0; i < t->numel(); ++i) {
    d[i] = offset + scale * std::sin(1.7f * static_cast<float>(i + phase) +
                                     0.3f);
  }
}

Var Leaf1d(int64_t n, float scale = 0.8f, float offset = 0.0f,
           int phase = 0) {
  Tensor t(n);
  FillPattern(&t, scale, offset, phase);
  return Var::Leaf(std::move(t), /*requires_grad=*/true);
}

Var Leaf2d(int64_t rows, int64_t cols, float scale = 0.8f,
           float offset = 0.0f, int phase = 0) {
  Tensor t(rows, cols);
  FillPattern(&t, scale, offset, phase);
  return Var::Leaf(std::move(t), /*requires_grad=*/true);
}

/// Scalarizes an op output with fixed, element-distinct weights so every
/// output element contributes a distinct gradient signal.
Var WeightedSum(const Var& out) {
  if (out.value().numel() == 1) return out;
  Tensor w = out.value();
  FillPattern(&w, 0.5f, 0.7f, /*phase=*/23);
  return ag::Sum(ag::Mul(out, Var::Leaf(std::move(w))));
}

double RelErr(double a, double n) {
  return std::abs(a - n) / std::max({1.0, std::abs(a), std::abs(n)});
}

/// Runs one analytic backward through `build`, then probes every element of
/// every input with central differences and asserts the per-element
/// relative error bound.
void CheckGrads(const char* op, std::vector<Var> inputs,
                const std::function<Var()>& build, float eps = 1e-2f) {
  Var loss = build();
  ASSERT_EQ(loss.value().numel(), 1) << op;
  Backward(loss);
  double max_rel = 0.0;
  for (size_t k = 0; k < inputs.size(); ++k) {
    Var& in = inputs[k];
    const Tensor& g = in.grad();
    ASSERT_EQ(g.numel(), in.value().numel()) << op << " input " << k;
    for (int64_t i = 0; i < in.value().numel(); ++i) {
      float* slot = in.mutable_value().data() + i;
      const float orig = *slot;
      *slot = orig + eps;
      const double up = build().value()[0];
      *slot = orig - eps;
      const double down = build().value()[0];
      *slot = orig;
      const double numeric = (up - down) / (2.0 * static_cast<double>(eps));
      const double analytic = g.data()[i];
      const double rel = RelErr(analytic, numeric);
      max_rel = std::max(max_rel, rel);
      EXPECT_LE(rel, kTol) << op << " input " << k << " element " << i
                           << ": analytic " << analytic << " vs numeric "
                           << numeric;
    }
  }
  ::testing::Test::RecordProperty("max_rel_err", std::to_string(max_rel));
}

TEST(GradCheckOps, Add) {
  Var a = Leaf2d(3, 4), b = Leaf2d(3, 4, 0.8f, 0.0f, 7);
  CheckGrads("add", {a, b}, [&] { return WeightedSum(ag::Add(a, b)); });
}

TEST(GradCheckOps, SumN) {
  Var a = Leaf2d(2, 3), b = Leaf2d(2, 3, 0.8f, 0.0f, 5);
  Var c = Leaf2d(2, 3, 0.6f, 0.1f, 11);
  // `a` appears twice: SumN must accumulate 2x its gradient.
  CheckGrads("sum_n", {a, b, c},
             [&] { return WeightedSum(ag::SumN({a, b, a, c})); });
}

TEST(GradCheckOps, AddRowBroadcast) {
  Var m = Leaf2d(3, 4), r = Leaf1d(4, 0.8f, 0.0f, 3);
  CheckGrads("add_row_broadcast", {m, r},
             [&] { return WeightedSum(ag::AddRowBroadcast(m, r)); });
}

TEST(GradCheckOps, Sub) {
  Var a = Leaf2d(3, 4), b = Leaf2d(3, 4, 0.8f, 0.0f, 7);
  CheckGrads("sub", {a, b}, [&] { return WeightedSum(ag::Sub(a, b)); });
}

TEST(GradCheckOps, SubRowBroadcast) {
  Var m = Leaf2d(3, 4), r = Leaf1d(4, 0.8f, 0.0f, 3);
  CheckGrads("sub_row_broadcast", {m, r},
             [&] { return WeightedSum(ag::SubRowBroadcast(m, r)); });
}

TEST(GradCheckOps, Mul) {
  Var a = Leaf2d(3, 4), b = Leaf2d(3, 4, 0.8f, 0.0f, 7);
  CheckGrads("mul", {a, b}, [&] { return WeightedSum(ag::Mul(a, b)); });
}

TEST(GradCheckOps, ScalarMul) {
  Var a = Leaf2d(3, 4);
  CheckGrads("scalar_mul", {a},
             [&] { return WeightedSum(ag::ScalarMul(a, 1.7f)); });
}

TEST(GradCheckOps, AddScalar) {
  Var a = Leaf2d(3, 4);
  CheckGrads("add_scalar", {a},
             [&] { return WeightedSum(ag::AddScalar(a, 0.4f)); });
}

TEST(GradCheckOps, MatMul) {
  Var a = Leaf2d(3, 4), b = Leaf2d(4, 2, 0.8f, 0.0f, 9);
  CheckGrads("matmul", {a, b},
             [&] { return WeightedSum(ag::MatMul(a, b)); });
}

TEST(GradCheckOps, MatVec) {
  Var m = Leaf2d(3, 4), v = Leaf1d(4, 0.8f, 0.0f, 9);
  CheckGrads("matvec", {m, v},
             [&] { return WeightedSum(ag::MatVec(m, v)); });
}

TEST(GradCheckOps, Sigmoid) {
  Var a = Leaf2d(3, 4, 1.5f);
  CheckGrads("sigmoid", {a}, [&] { return WeightedSum(ag::Sigmoid(a)); });
}

TEST(GradCheckOps, Tanh) {
  Var a = Leaf2d(3, 4, 1.5f);
  CheckGrads("tanh", {a}, [&] { return WeightedSum(ag::Tanh(a)); });
}

TEST(GradCheckOps, Relu) {
  // Values bounded away from the kink at 0 so finite differences are valid.
  Var a = Leaf2d(3, 4, 0.6f, 0.9f);        // strictly positive.
  Var b = Leaf2d(3, 4, 0.6f, -0.9f, 13);   // strictly negative.
  CheckGrads("relu", {a, b}, [&] {
    return ag::Add(WeightedSum(ag::Relu(a)), WeightedSum(ag::Relu(b)));
  });
}

TEST(GradCheckOps, Exp) {
  Var a = Leaf2d(3, 4, 0.7f);
  CheckGrads("exp", {a}, [&] { return WeightedSum(ag::Exp(a)); });
}

TEST(GradCheckOps, Log) {
  Var a = Leaf2d(3, 4, 0.4f, 1.0f);  // values in [0.6, 1.4].
  CheckGrads("log", {a}, [&] { return WeightedSum(ag::Log(a)); });
}

TEST(GradCheckOps, Softmax) {
  Var a = Leaf1d(6, 1.2f);
  CheckGrads("softmax", {a}, [&] { return WeightedSum(ag::Softmax(a)); });
}

TEST(GradCheckOps, Sum) {
  Var a = Leaf2d(3, 4);
  CheckGrads("sum", {a}, [&] { return ag::Sum(a); });
}

TEST(GradCheckOps, Mean) {
  Var a = Leaf2d(3, 4);
  CheckGrads("mean", {a}, [&] { return ag::Mean(a); });
}

TEST(GradCheckOps, SumSquares) {
  Var a = Leaf2d(3, 4);
  CheckGrads("sum_squares", {a}, [&] { return ag::SumSquares(a); });
}

TEST(GradCheckOps, RowSumSquares) {
  Var m = Leaf2d(3, 4);
  CheckGrads("row_sum_squares", {m},
             [&] { return WeightedSum(ag::RowSumSquares(m)); });
}

TEST(GradCheckOps, Dot) {
  Var a = Leaf1d(5), b = Leaf1d(5, 0.8f, 0.0f, 9);
  CheckGrads("dot", {a, b}, [&] { return ag::Dot(a, b); });
}

TEST(GradCheckOps, RowAndConcatRows) {
  Var m = Leaf2d(3, 4);
  Var r0 = Leaf1d(4, 0.8f, 0.0f, 3), r1 = Leaf1d(4, 0.8f, 0.0f, 5);
  CheckGrads("row/concat_rows", {m, r0, r1}, [&] {
    return WeightedSum(ag::ConcatRows({ag::Row(m, 1), r0, r1, ag::Row(m, 0)}));
  });
}

TEST(GradCheckOps, Concat) {
  Var a = Leaf1d(3), b = Leaf1d(5, 0.8f, 0.0f, 9);
  CheckGrads("concat", {a, b},
             [&] { return WeightedSum(ag::Concat(a, b)); });
}

TEST(GradCheckOps, SliceCols) {
  Var m = Leaf2d(3, 6);
  CheckGrads("slice_cols", {m},
             [&] { return WeightedSum(ag::SliceCols(m, 2, 3)); });
}

TEST(GradCheckOps, ScaleRows) {
  Var m = Leaf2d(3, 4);
  Var s = Leaf1d(3, 0.5f, 1.0f, 6);
  CheckGrads("scale_rows", {m, s},
             [&] { return WeightedSum(ag::ScaleRows(m, s)); });
}

TEST(GradCheckOps, ScaleRowsConst) {
  Var m = Leaf2d(3, 4);
  Tensor s(3);
  FillPattern(&s, 0.5f, 1.0f, 6);
  CheckGrads("scale_rows_const", {m},
             [&] { return WeightedSum(ag::ScaleRowsConst(m, s)); });
}

TEST(GradCheckOps, MaskRows) {
  Var a = Leaf2d(3, 4), b = Leaf2d(3, 4, 0.8f, 0.0f, 7);
  Tensor mask = Tensor::FromVector({1.0f, 0.0f, 1.0f});
  CheckGrads("mask_rows", {a, b},
             [&] { return WeightedSum(ag::MaskRows(a, b, mask)); });
}

TEST(GradCheckOps, L2Normalize) {
  Var v = Leaf1d(5, 0.5f, 1.0f);  // norm well above the eps clamp.
  CheckGrads("l2_normalize", {v},
             [&] { return WeightedSum(ag::L2Normalize(v)); });
}

TEST(GradCheckOps, Hinge) {
  Var a = Leaf1d(1, 0.0f, 0.7f);   // active side of the hinge.
  Var b = Leaf1d(1, 0.0f, -0.7f);  // clamped side: zero gradient.
  CheckGrads("hinge", {a, b},
             [&] { return ag::Add(ag::Hinge(a), ag::Hinge(b)); });
}

TEST(GradCheckOps, LogSigmoid) {
  Var a = Leaf2d(3, 4, 1.5f);
  CheckGrads("log_sigmoid", {a},
             [&] { return WeightedSum(ag::LogSigmoid(a)); });
}

TEST(GradCheckOps, BroadcastScalar) {
  Var s = Leaf1d(1, 0.0f, 0.6f);
  CheckGrads("broadcast_scalar", {s},
             [&] { return WeightedSum(ag::BroadcastScalar(s, 5)); });
}

TEST(GradCheckOps, MulConst) {
  Var a = Leaf2d(3, 4);
  Tensor c(3, 4);
  FillPattern(&c, 0.6f, 0.4f, 17);
  CheckGrads("mul_const", {a},
             [&] { return WeightedSum(ag::MulConst(a, c)); });
}

TEST(GradCheckOps, ColMean) {
  Var m = Leaf2d(4, 3);
  CheckGrads("col_mean", {m},
             [&] { return WeightedSum(ag::ColMean(m)); });
}

TEST(GradCheckOps, AsMatrixAsVector) {
  Var v = Leaf1d(4);
  CheckGrads("as_matrix/as_vector", {v}, [&] {
    return WeightedSum(ag::AsVector(ag::AsMatrix(v)));
  });
}

// ------------------------------------------------------------- fused ops

TEST(GradCheckFused, LstmPreact) {
  const int64_t b = 2, in = 3, h = 2;
  Var x = Leaf2d(b, in);
  Var w_ih = Leaf2d(in, 4 * h, 0.6f, 0.0f, 5);
  Var hs = Leaf2d(b, h, 0.8f, 0.0f, 9);
  Var w_hh = Leaf2d(h, 4 * h, 0.6f, 0.0f, 13);
  Var bias = Leaf1d(4 * h, 0.4f, 0.0f, 17);
  CheckGrads("lstm_preact", {x, w_ih, hs, w_hh, bias}, [&] {
    return WeightedSum(ag::LstmPreact(x, w_ih, hs, w_hh, bias));
  });
}

TEST(GradCheckFused, LstmGates) {
  const int64_t b = 2, h = 3;
  Var z = Leaf2d(b, 4 * h, 1.2f);
  Var c = Leaf2d(b, h, 0.8f, 0.0f, 7);
  CheckGrads("lstm_gates", {z, c},
             [&] { return WeightedSum(ag::LstmGates(z, c)); });
}

TEST(GradCheckFused, LstmFusedMatchesUnfusedChain) {
  // The fused pair must agree (forward and backward) with the op-by-op
  // formulation it replaced.
  const int64_t b = 2, in = 3, h = 2;
  Tensor x0(b, in), wi0(in, 4 * h), h0(b, h), wh0(h, 4 * h), bias0(4 * h);
  FillPattern(&x0, 0.8f, 0.0f, 1);
  FillPattern(&wi0, 0.6f, 0.0f, 5);
  FillPattern(&h0, 0.8f, 0.0f, 9);
  FillPattern(&wh0, 0.6f, 0.0f, 13);
  FillPattern(&bias0, 0.4f, 0.0f, 17);
  Tensor c0(b, h);
  FillPattern(&c0, 0.7f, 0.0f, 21);

  auto run = [&](bool fused, Tensor* gx_out) -> std::pair<Tensor, Tensor> {
    Var x = Var::Leaf(x0, true), wi = Var::Leaf(wi0, true);
    Var hprev = Var::Leaf(h0, true), wh = Var::Leaf(wh0, true);
    Var bias = Var::Leaf(bias0, true), c = Var::Leaf(c0, true);
    Var hn, cn;
    if (fused) {
      Var hc = ag::LstmGates(ag::LstmPreact(x, wi, hprev, wh, bias), c);
      hn = ag::SliceCols(hc, 0, h);
      cn = ag::SliceCols(hc, h, h);
    } else {
      Var gates = ag::AddRowBroadcast(
          ag::Add(ag::MatMul(x, wi), ag::MatMul(hprev, wh)), bias);
      Var ig = ag::Sigmoid(ag::SliceCols(gates, 0, h));
      Var fg = ag::Sigmoid(ag::SliceCols(gates, h, h));
      Var gg = ag::Tanh(ag::SliceCols(gates, 2 * h, h));
      Var og = ag::Sigmoid(ag::SliceCols(gates, 3 * h, h));
      cn = ag::Add(ag::Mul(fg, c), ag::Mul(ig, gg));
      hn = ag::Mul(og, ag::Tanh(cn));
    }
    Backward(ag::Add(WeightedSum(hn), ag::ScalarMul(WeightedSum(cn), 0.5f)));
    *gx_out = x.grad();
    return {hn.value(), cn.value()};
  };

  Tensor gx_fused, gx_chain;
  auto [h_fused, c_fused] = run(true, &gx_fused);
  auto [h_chain, c_chain] = run(false, &gx_chain);
  for (int64_t i = 0; i < h_fused.numel(); ++i) {
    EXPECT_NEAR(h_fused.data()[i], h_chain.data()[i], 1e-5f) << i;
    EXPECT_NEAR(c_fused.data()[i], c_chain.data()[i], 1e-5f) << i;
  }
  for (int64_t i = 0; i < gx_fused.numel(); ++i) {
    EXPECT_NEAR(gx_fused.data()[i], gx_chain.data()[i], 1e-4f) << i;
  }
}

TEST(GradCheckFused, AttentionSoftmax) {
  const int64_t l = 4, d = 3;
  Var emb = Leaf2d(l, d);
  Var target = Leaf1d(d, 0.8f, 0.0f, 11);
  Tensor neg_coeffs(l);
  FillPattern(&neg_coeffs, 0.4f, -1.0f, 3);  // strictly negative coeffs.
  CheckGrads("attention_softmax", {emb, target}, [&] {
    return WeightedSum(ag::AttentionSoftmax(emb, target, neg_coeffs));
  });
}

TEST(GradCheckFused, AttentionFusedMatchesUnfusedChain) {
  const int64_t l = 4, d = 3;
  Tensor e0(l, d), t0(d), nc(l);
  FillPattern(&e0, 0.8f, 0.0f, 1);
  FillPattern(&t0, 0.8f, 0.0f, 11);
  FillPattern(&nc, 0.4f, -1.0f, 3);

  auto run = [&](bool fused, Tensor* ge_out) -> Tensor {
    Var emb = Var::Leaf(e0, true), target = Var::Leaf(t0, true);
    Var alpha;
    if (fused) {
      alpha = ag::AttentionSoftmax(emb, target, nc);
    } else {
      Var dist = ag::RowSumSquares(ag::SubRowBroadcast(emb, target));
      alpha = ag::Softmax(ag::MulConst(dist, nc));
    }
    Backward(WeightedSum(alpha));
    *ge_out = emb.grad();
    return alpha.value();
  };

  Tensor ge_fused, ge_chain;
  Tensor a_fused = run(true, &ge_fused);
  Tensor a_chain = run(false, &ge_chain);
  for (int64_t i = 0; i < a_fused.numel(); ++i) {
    EXPECT_NEAR(a_fused.data()[i], a_chain.data()[i], 1e-6f) << i;
  }
  for (int64_t i = 0; i < ge_fused.numel(); ++i) {
    EXPECT_NEAR(ge_fused.data()[i], ge_chain.data()[i], 1e-5f) << i;
  }
}

// ------------------------------------------------------------- packed ops
// Ops backing the minibatch-packed aggregation path (DESIGN.md §10). The
// deferred variants park part of their gradient in caller-owned buffers for
// the replay sentinel; those buffers are finite-difference-checked here too.

TEST(GradCheckPacked, SegmentRows) {
  Var m = Leaf2d(5, 3);
  // Rows outside the segment must keep a zero gradient (checked implicitly:
  // CheckGrads probes every element of m).
  CheckGrads("segment_rows", {m},
             [&] { return WeightedSum(ag::SegmentRows(m, 1, 3)); });
}

TEST(GradCheckPacked, PackRows) {
  Var a = Leaf2d(2, 3), b = Leaf2d(3, 3, 0.8f, 0.0f, 7);
  // Row {0,1} appears twice (gradient must accumulate 2x) and {-1,0} is a
  // padding row (its gradient must be dropped).
  const std::vector<ag::PackedRowRef> refs = {
      {0, 1}, {1, 0}, {-1, 0}, {1, 2}, {0, 1}};
  CheckGrads("pack_rows", {a, b},
             [&] { return WeightedSum(ag::PackRows({a, b}, refs, 3)); });
}

TEST(GradCheckPacked, FanInUses) {
  Var src = Leaf2d(3, 2);
  // Three consumers through a junction: the slot-ordered sum must equal the
  // plain 3-way fan-in gradient.
  CheckGrads("fan_in_uses", {src}, [&] {
    std::vector<Var> uses = ag::FanInUses(src, 3);
    return WeightedSum(ag::Add(ag::Add(uses[0], uses[1]), uses[2]));
  });
}

TEST(GradCheckPacked, LstmPreactNoWeightGrad) {
  const int64_t b = 2, in = 3, h = 2;
  Var x = Leaf2d(b, in);
  Var w_ih = Leaf2d(in, 4 * h, 0.6f, 0.0f, 5);
  Var hs = Leaf2d(b, h, 0.8f, 0.0f, 9);
  Var w_hh = Leaf2d(h, 4 * h, 0.6f, 0.0f, 13);
  Var bias = Leaf1d(4 * h, 0.4f, 0.0f, 17);
  // Only x and h flow through the node itself; the weight gradients are
  // replayed from the retained pre-activation grad (next test).
  CheckGrads("lstm_preact_nwg", {x, hs}, [&] {
    return WeightedSum(ag::LstmPreactNoWeightGrad(x, hs, w_ih, w_hh, bias));
  });
}

TEST(GradCheckPacked, LstmPreactReplayedWeightGradsMatchFusedOp) {
  // The packed path's sentinel recomputes the LSTM weight gradients from
  // the retained pre-activation gradient via GemmTN — exactly the kernel
  // calls the fused LstmPreact backward makes. Replay the accumulation
  // here by hand and require bitwise equality with the fused op's grads.
  const int64_t b = 3, in = 3, h = 2;
  Tensor x0(b, in), wi0(in, 4 * h), h0(b, h), wh0(h, 4 * h), bias0(4 * h);
  FillPattern(&x0, 0.8f, 0.0f, 1);
  FillPattern(&wi0, 0.6f, 0.0f, 5);
  FillPattern(&h0, 0.8f, 0.0f, 9);
  FillPattern(&wh0, 0.6f, 0.0f, 13);
  FillPattern(&bias0, 0.4f, 0.0f, 17);

  Var xf = Var::Leaf(x0, true), wif = Var::Leaf(wi0, true);
  Var hf = Var::Leaf(h0, true), whf = Var::Leaf(wh0, true);
  Var bf = Var::Leaf(bias0, true);
  Backward(WeightedSum(ag::LstmPreact(xf, wif, hf, whf, bf)));

  Var xn = Var::Leaf(x0, true), win = Var::Leaf(wi0, true);
  Var hn = Var::Leaf(h0, true), whn = Var::Leaf(wh0, true);
  Var bn = Var::Leaf(bias0, true);
  Var z = ag::LstmPreactNoWeightGrad(xn, hn, win, whn, bn);
  Backward(WeightedSum(z));
  const Tensor& gz = z.grad();
  Tensor gwi(in, 4 * h), gwh(h, 4 * h), gb(4 * h);
  kernels::GemmTN(in, 4 * h, b, x0.data(), gz.data(), gwi.data(),
                  /*accumulate=*/false);
  kernels::GemmTN(h, 4 * h, b, h0.data(), gz.data(), gwh.data(),
                  /*accumulate=*/false);
  for (int64_t r = 0; r < b; ++r) {
    kernels::Axpy(4 * h, 1.0f, gz.Row(r), gb.data());
  }
  for (int64_t i = 0; i < gwi.numel(); ++i) {
    ASSERT_EQ(gwi.data()[i], wif.grad().data()[i]) << i;
  }
  for (int64_t i = 0; i < gwh.numel(); ++i) {
    ASSERT_EQ(gwh.data()[i], whf.grad().data()[i]) << i;
  }
  for (int64_t i = 0; i < gb.numel(); ++i) {
    ASSERT_EQ(gb.data()[i], bf.grad().data()[i]) << i;
  }
}

TEST(GradCheckPacked, MatMulNoWeightGrad) {
  Var a = Leaf2d(2, 3);
  Var w = Leaf2d(3, 4, 0.6f, 0.0f, 5);
  CheckGrads("matmul_nwg", {a},
             [&] { return WeightedSum(ag::MatMulNoWeightGrad(a, w)); });
}

TEST(GradCheckPacked, ConcatDeferredB) {
  const int64_t d = 3;
  Var a = Leaf1d(d);
  Tensor b0(d);
  FillPattern(&b0, 0.8f, 0.0f, 7);
  auto b_grad = std::make_shared<Tensor>(d);
  auto build = [&] { return WeightedSum(ag::ConcatDeferredB(a, b0, b_grad, a)); };
  CheckGrads("concat_deferred_b", {a}, build);
  // The constant side's gradient landed in the deferred buffer during the
  // single Backward; finite-difference it against b0.
  for (int64_t i = 0; i < d; ++i) {
    float* slot = b0.data() + i;
    const float orig = *slot;
    *slot = orig + 1e-2f;
    const double up = build().value()[0];
    *slot = orig - 1e-2f;
    const double down = build().value()[0];
    *slot = orig;
    const double numeric = (up - down) / 2e-2;
    EXPECT_LE(RelErr((*b_grad)[i], numeric), kTol) << "b element " << i;
  }
}

TEST(GradCheckPacked, AttentionSoftmaxDeferredTarget) {
  const int64_t l = 4, d = 3;
  Var emb = Leaf2d(l, d);
  Tensor t0(d), nc(l);
  FillPattern(&t0, 0.8f, 0.0f, 11);
  FillPattern(&nc, 0.4f, -1.0f, 3);  // strictly negative coeffs.
  auto gtarget = std::make_shared<Tensor>(d);
  auto build = [&] {
    return WeightedSum(
        ag::AttentionSoftmaxDeferredTarget(emb, t0, nc, gtarget, emb));
  };
  CheckGrads("attention_softmax_dt", {emb}, build);
  for (int64_t i = 0; i < d; ++i) {
    float* slot = t0.data() + i;
    const float orig = *slot;
    *slot = orig + 1e-2f;
    const double up = build().value()[0];
    *slot = orig - 1e-2f;
    const double down = build().value()[0];
    *slot = orig;
    const double numeric = (up - down) / 2e-2;
    EXPECT_LE(RelErr((*gtarget)[i], numeric), kTol) << "target element " << i;
  }
}

}  // namespace
}  // namespace ehna
