#include <gtest/gtest.h>

#include "core/attention.h"

namespace ehna {
namespace {

Walk MakeWalk(std::vector<NodeId> nodes, std::vector<Timestamp> edge_times) {
  Walk w;
  w.push_back(WalkStep{nodes[0], 0.0, 0.0f});
  for (size_t i = 1; i < nodes.size(); ++i) {
    w.push_back(WalkStep{nodes[i], edge_times[i - 1], 1.0f});
  }
  return w;
}

TEST(AttentionTest, CoefficientPerPosition) {
  // Walk 0 -(t=10)- 1 -(t=5)- 2 over span [0, 10].
  Walk w = MakeWalk({0, 1, 2}, {10.0, 5.0});
  auto c = NodeAttentionCoefficients(w, 0.0, 10.0);
  ASSERT_EQ(c.size(), 3u);
  // Node 0: edge (0,1) normalized 1.0 -> c = 1.
  EXPECT_NEAR(c[0], 1.0f, 1e-5f);
  // Node 1: edges 1.0 + 0.5 -> c = 1/1.5.
  EXPECT_NEAR(c[1], 1.0f / 1.5f, 1e-5f);
  // Node 2: edge 0.5 -> c = 2.
  EXPECT_NEAR(c[2], 2.0f, 1e-5f);
}

TEST(AttentionTest, MoreRecentInteractionsGiveSmallerCoefficient) {
  // Smaller coefficient => larger attention after exp(-c * dist).
  Walk recent = MakeWalk({0, 1}, {100.0});
  Walk old = MakeWalk({0, 1}, {1.0});
  auto c_recent = NodeAttentionCoefficients(recent, 0.0, 100.0);
  auto c_old = NodeAttentionCoefficients(old, 0.0, 100.0);
  EXPECT_LT(c_recent[1], c_old[1]);
}

TEST(AttentionTest, RepeatedNodeSharesAccumulatedSum) {
  // Walk 0-1-0: node 0 appears twice; both positions carry the same
  // coefficient computed from *both* incident edges.
  Walk w = MakeWalk({0, 1, 0}, {10.0, 10.0});
  auto c = NodeAttentionCoefficients(w, 0.0, 10.0);
  EXPECT_FLOAT_EQ(c[0], c[2]);
  // Node 0 total mass = 1.0 + 1.0 = 2 -> c = 0.5; node 1 same edges -> 0.5.
  EXPECT_NEAR(c[0], 0.5f, 1e-5f);
}

TEST(AttentionTest, FrequencyLowersCoefficient) {
  // A node touched by two walk edges has a smaller coefficient than one
  // touched by a single equally recent edge.
  Walk twice = MakeWalk({0, 1, 2}, {10.0, 10.0});  // node 1 touched twice.
  auto c = NodeAttentionCoefficients(twice, 0.0, 10.0);
  EXPECT_LT(c[1], c[0]);
}

TEST(AttentionTest, IsolatedStartGetsFloorCoefficient) {
  Walk w{{7, 0.0, 0.0f}};  // length-1 walk: no incident edges.
  auto c = NodeAttentionCoefficients(w, 0.0, 10.0, /*floor=*/0.05f);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_FLOAT_EQ(c[0], 1.0f / 0.05f);
}

TEST(AttentionTest, OldTimesClampedToPositiveMass) {
  // Edge exactly at min_time still contributes (clamped to 1e-6), so the
  // coefficient is finite and bounded by the floor.
  Walk w = MakeWalk({0, 1}, {0.0});
  auto c = NodeAttentionCoefficients(w, 0.0, 10.0, 0.05f);
  EXPECT_LE(c[1], 1.0f / 0.05f + 1e-3f);
  EXPECT_GT(c[1], 0.0f);
}

TEST(AttentionTest, WalkCoefficientIsMeanOfNodeCoefficients) {
  const std::vector<float> coeffs{1.0f, 2.0f, 3.0f};
  EXPECT_FLOAT_EQ(WalkAttentionCoefficient(coeffs), 2.0f);
}

TEST(AttentionTest, WalkCoefficientSingleNode) {
  EXPECT_FLOAT_EQ(WalkAttentionCoefficient({4.0f}), 4.0f);
}

}  // namespace
}  // namespace ehna
