// Parameterized properties of the log-linear streaming histogram
// (util/metrics.h): merge associativity and commutativity over random
// partitions, the quantile rank-error bound against exact order statistics,
// bucket index/bound round-trips across the full uint64 range, and
// empty/single-sample edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include "util/metrics.h"
#include "util/rng.h"

namespace ehna {
namespace {

// ------------------------------------------------- Bucket index geometry

TEST(HistogramBucketTest, IndexIsMonotoneAndBoundsRoundTrip) {
  // Representative values across the whole range, including every
  // power-of-two boundary.
  std::vector<uint64_t> values{0, 1, 2, 3, 15, 16, 17, 31, 32, 33};
  for (int e = 6; e < 64; ++e) {
    const uint64_t p = uint64_t{1} << e;
    values.push_back(p - 1);
    values.push_back(p);
    if (e < 63) values.push_back(p + p / 3);
  }
  values.push_back(UINT64_MAX);

  size_t prev_index = 0;
  std::sort(values.begin(), values.end());
  for (uint64_t v : values) {
    const size_t idx = HistogramData::BucketIndex(v);
    ASSERT_LT(idx, HistogramData::kNumBuckets) << "value " << v;
    EXPECT_GE(idx, prev_index) << "value " << v;  // monotone in value.
    // The value lands inside its own bucket's bounds.
    EXPECT_GE(v, HistogramData::BucketLowerBound(idx)) << "value " << v;
    EXPECT_LE(v, HistogramData::BucketUpperBound(idx)) << "value " << v;
    prev_index = idx;
  }
}

TEST(HistogramBucketTest, BucketWidthBoundedByMaxRelativeError) {
  // For any non-zero value, upper/lower bucket bounds differ by at most
  // MaxRelativeError() of the lower bound — the source of the quantile
  // error guarantee.
  Rng rng(21);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.Next() >> (rng.Next() % 40);  // spread magnitudes.
    if (v == 0) continue;
    const size_t idx = HistogramData::BucketIndex(v);
    const uint64_t lo = HistogramData::BucketLowerBound(idx);
    const uint64_t hi = HistogramData::BucketUpperBound(idx);
    ASSERT_GE(hi, lo);
    EXPECT_LE(static_cast<double>(hi - lo),
              HistogramData::MaxRelativeError() * static_cast<double>(lo) +
                  1.0)
        << "value " << v << " bucket [" << lo << ", " << hi << "]";
  }
}

// ----------------------------------------------------------- Edge cases

TEST(HistogramEdgeCaseTest, EmptyHistogramIsAllZero) {
  HistogramData h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(HistogramEdgeCaseTest, MergeWithEmptyIsIdentity) {
  HistogramData h;
  h.Record(7);
  h.Record(1000);
  HistogramData empty;
  HistogramData left = h;
  left.Merge(empty);
  EXPECT_TRUE(left == h);
  HistogramData right = empty;
  right.Merge(h);
  EXPECT_TRUE(right == h);
}

TEST(HistogramEdgeCaseTest, SingleSampleQuantilesCollapseToIt) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{12345},
                     uint64_t{1} << 40}) {
    HistogramData h;
    h.Record(v);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), v);
    EXPECT_EQ(h.max(), v);
    EXPECT_EQ(h.Mean(), static_cast<double>(v));
    // Every quantile of a one-point distribution is that point (the
    // min/max clamp makes this exact, not just within bucket error).
    for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
      EXPECT_EQ(h.Quantile(q), static_cast<double>(v)) << "q=" << q;
    }
  }
}

TEST(HistogramEdgeCaseTest, RepeatCountEquivalentToRepeatedRecords) {
  HistogramData a, b;
  a.Record(42, 1000);
  for (int i = 0; i < 1000; ++i) b.Record(42);
  EXPECT_TRUE(a == b);
}

// ------------------------------------------- Merge algebra (parameterized)

/// (number of parts, samples per part, value-magnitude shift).
class HistogramMergeProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HistogramMergeProperty, MergeIsAssociativeAndCommutative) {
  const auto [parts, per_part, shift] = GetParam();
  Rng rng(1000 + parts * 31 + per_part * 7 + shift);
  std::vector<HistogramData> h(parts);
  for (int p = 0; p < parts; ++p) {
    for (int i = 0; i < per_part; ++i) {
      h[p].Record(rng.Next() >> shift);
    }
  }

  // Left fold in order.
  HistogramData forward;
  for (const HistogramData& part : h) forward.Merge(part);

  // Reverse order.
  HistogramData reverse;
  for (int p = parts - 1; p >= 0; --p) reverse.Merge(h[p]);
  EXPECT_TRUE(forward == reverse);

  // Arbitrary parenthesization: pairwise tree reduction.
  std::vector<HistogramData> tree = h;
  while (tree.size() > 1) {
    std::vector<HistogramData> next;
    for (size_t i = 0; i + 1 < tree.size(); i += 2) {
      HistogramData merged = tree[i];
      merged.Merge(tree[i + 1]);
      next.push_back(merged);
    }
    if (tree.size() % 2 == 1) next.push_back(tree.back());
    tree = std::move(next);
  }
  EXPECT_TRUE(forward == tree[0]);

  // A random shuffle of the parts.
  std::vector<size_t> order(h.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  HistogramData shuffled;
  for (size_t i : order) shuffled.Merge(h[i]);
  EXPECT_TRUE(forward == shuffled);

  EXPECT_EQ(forward.count(),
            static_cast<uint64_t>(parts) * static_cast<uint64_t>(per_part));
}

INSTANTIATE_TEST_SUITE_P(
    Partitions, HistogramMergeProperty,
    ::testing::Combine(::testing::Values(2, 3, 7, 16),
                       ::testing::Values(1, 64, 500),
                       ::testing::Values(0, 24, 48)));

// -------------------------------------- Quantile bound (parameterized)

/// (sample count, magnitude shift): quantile estimates must bracket the
/// exact order statistic within MaxRelativeError().
class HistogramQuantileProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HistogramQuantileProperty, EstimateWithinRelativeErrorOfExact) {
  const auto [n, shift] = GetParam();
  Rng rng(500 + n * 13 + shift);
  std::vector<uint64_t> samples;
  samples.reserve(n);
  HistogramData h;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = rng.Next() >> shift;
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());

  for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    // The estimate's contract: never below the true rank-q sample, and at
    // most MaxRelativeError() above it.
    const size_t rank = std::min<size_t>(
        samples.size() - 1,
        q <= 0.0 ? 0
                 : static_cast<size_t>(
                       std::ceil(q * static_cast<double>(n))) -
                       1);
    const double exact = static_cast<double>(samples[rank]);
    const double est = h.Quantile(q);
    EXPECT_GE(est, exact) << "q=" << q << " n=" << n;
    EXPECT_LE(est, exact * (1.0 + HistogramData::MaxRelativeError()) + 1e-9)
        << "q=" << q << " n=" << n << " exact=" << exact;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Samples, HistogramQuantileProperty,
    ::testing::Combine(::testing::Values(1, 2, 10, 1000, 20000),
                       ::testing::Values(0, 32, 52)));

// ------------------------------------- Streaming vs value-type agreement

TEST(StreamingHistogramPropertyTest, MergedMatchesDirectHistogramData) {
  // Recording the same samples through the sharded concurrent histogram and
  // the plain value type must produce identical results.
  Rng rng(77);
  StreamingHistogram* s =
      MetricsRegistry::Global().GetHistogram("test.prop.stream_vs_value");
  s->Reset();
  HistogramData direct;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t v = rng.Next() >> (i % 50);
    s->Record(v);
    direct.Record(v);
  }
  EXPECT_TRUE(s->Merged() == direct);
}

}  // namespace
}  // namespace ehna
