#include <gtest/gtest.h>

#include <cmath>

#include "core/model.h"
#include "graph/generators/generators.h"

namespace ehna {
namespace {

TemporalGraph TinyGraph() {
  auto g = MakePaperDataset(PaperDataset::kDblp, 0.03, 9);
  EHNA_CHECK(g.ok());
  return std::move(g).value();
}

EhnaConfig TinyConfig() {
  EhnaConfig cfg;
  cfg.dim = 8;
  cfg.num_walks = 3;
  cfg.walk_length = 4;
  cfg.num_negatives = 1;
  cfg.batch_edges = 8;
  cfg.epochs = 1;
  cfg.max_edges_per_epoch = 60;
  cfg.learning_rate = 5e-3f;
  cfg.seed = 2;
  return cfg;
}

TEST(EhnaModelTest, EdgeLossIsFiniteAndNonNegative) {
  TemporalGraph g = TinyGraph();
  EhnaModel model(&g, TinyConfig());
  const TemporalEdge& e = g.edges().back();
  Var loss = model.EdgeLoss(e, /*training=*/true);
  ASSERT_EQ(loss.value().numel(), 1);
  EXPECT_GE(loss.value()[0], 0.0f);
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
  model.embedding()->ClearGradients();
}

TEST(EhnaModelTest, BidirectionalDoublesNegativeTerms) {
  TemporalGraph g = TinyGraph();
  EhnaConfig cfg = TinyConfig();
  cfg.bidirectional_negatives = true;
  EhnaModel model(&g, cfg);
  Var loss = model.EdgeLoss(g.edges().back(), true);
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
  model.embedding()->ClearGradients();
}

TEST(EhnaModelTest, TrainEpochReturnsStats) {
  TemporalGraph g = TinyGraph();
  EhnaModel model(&g, TinyConfig());
  auto stats = model.TrainEpoch();
  EXPECT_EQ(stats.edges, 60u);
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_TRUE(std::isfinite(stats.avg_loss));
}

TEST(EhnaModelTest, TrainingReducesLoss) {
  TemporalGraph g = TinyGraph();
  EhnaConfig cfg = TinyConfig();
  cfg.max_edges_per_epoch = 120;
  EhnaModel model(&g, cfg);
  const double first = model.TrainEpoch().avg_loss;
  double last = first;
  for (int e = 0; e < 4; ++e) last = model.TrainEpoch().avg_loss;
  EXPECT_LT(last, first);
}

TEST(EhnaModelTest, TrainRunsRequestedEpochsWithProgress) {
  TemporalGraph g = TinyGraph();
  EhnaModel model(&g, TinyConfig());
  int calls = 0;
  auto history = model.Train(2, [&](int, const EhnaModel::EpochStats&) {
    ++calls;
  });
  EXPECT_EQ(history.size(), 2u);
  EXPECT_EQ(calls, 2);
}

TEST(EhnaModelTest, FinalizeEmbeddingsShapeAndNorms) {
  TemporalGraph g = TinyGraph();
  EhnaModel model(&g, TinyConfig());
  model.TrainEpoch();
  Tensor final = model.FinalizeEmbeddings();
  EXPECT_EQ(final.rows(), static_cast<int64_t>(g.num_nodes()));
  EXPECT_EQ(final.cols(), 8);
  for (int64_t v = 0; v < final.rows(); ++v) {
    double norm = 0.0;
    for (int64_t j = 0; j < final.cols(); ++j) {
      ASSERT_TRUE(std::isfinite(final.at(v, j)));
      norm += static_cast<double>(final.at(v, j)) * final.at(v, j);
    }
    // Aggregated embeddings are L2-normalized; isolated nodes may be zero
    // only if their raw embedding was zero (never, given the init).
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-3);
  }
  // Table rows were overwritten with the final embeddings.
  for (int64_t j = 0; j < final.cols(); ++j) {
    EXPECT_FLOAT_EQ(model.embedding_table().at(0, j), final.at(0, j));
  }
}

TEST(EhnaModelTest, AggregateAtProducesNormalizedVector) {
  TemporalGraph g = TinyGraph();
  EhnaModel model(&g, TinyConfig());
  Tensor z = model.AggregateAt(0, g.max_time() + 1.0);
  EXPECT_EQ(z.numel(), 8);
  EXPECT_NEAR(z.Norm(), 1.0f, 1e-4f);
}

TEST(EhnaModelTest, AllVariantsTrainOneEpoch) {
  TemporalGraph g = TinyGraph();
  for (EhnaVariant variant :
       {EhnaVariant::kNoAttention, EhnaVariant::kStaticWalk,
        EhnaVariant::kSingleLayer}) {
    EhnaConfig cfg = TinyConfig();
    cfg.variant = variant;
    cfg.max_edges_per_epoch = 30;
    EhnaModel model(&g, cfg);
    auto stats = model.TrainEpoch();
    EXPECT_TRUE(std::isfinite(stats.avg_loss)) << EhnaVariantName(variant);
  }
}

}  // namespace
}  // namespace ehna
