#include <gtest/gtest.h>

#include <cmath>

#include "nn/batchnorm.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/ops.h"
#include "nn/init.h"
#include "nn/optim.h"
#include "util/rng.h"

namespace ehna {
namespace {

// ---------------------------------------------------------------- Linear

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  Linear lin(4, 3, &rng);
  Var x = Var::Leaf(Tensor(2, 4));
  Var y = lin.Forward(x);
  EXPECT_EQ(y.value().rows(), 2);
  EXPECT_EQ(y.value().cols(), 3);
  EXPECT_EQ(lin.Parameters().size(), 2u);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(2);
  Linear lin(4, 3, &rng, /*bias=*/false);
  EXPECT_EQ(lin.Parameters().size(), 1u);
  // Zero input maps to zero without bias.
  Var y = lin.Forward(Var::Leaf(Tensor(1, 4)));
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(y.value().data()[i], 0.0f);
}

TEST(LinearTest, ForwardVecMatchesMatrixPath) {
  Rng rng(3);
  Linear lin(4, 3, &rng);
  Tensor xv = Tensor::FromVector({1, -2, 0.5, 3});
  Var as_vec = lin.ForwardVec(Var::Leaf(xv));
  Var as_mat = lin.Forward(Var::Leaf(xv.Reshape(1, 4)));
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(as_vec.value()[i], as_mat.value().data()[i], 1e-6);
  }
}

TEST(LinearTest, TrainsToFitLinearMap) {
  // y = 2x - 1, one input, one output.
  Rng rng(4);
  Linear lin(1, 1, &rng);
  Adam opt(lin.Parameters(), 0.05f);
  for (int step = 0; step < 400; ++step) {
    const float xval = static_cast<float>(rng.Uniform(-1, 1));
    Var x = Var::Leaf(Tensor::FromVector(1, 1, {xval}));
    Var target = Var::Leaf(Tensor::FromVector(1, 1, {2.0f * xval - 1.0f}));
    Var loss = ag::SumSquares(ag::Sub(lin.Forward(x), target));
    Backward(loss);
    opt.Step();
    opt.ZeroGrad();
  }
  Var probe = lin.Forward(Var::Leaf(Tensor::FromVector(1, 1, {0.5f})));
  EXPECT_NEAR(probe.value().data()[0], 0.0f, 0.05f);
}

// ------------------------------------------------------------------ LSTM

TEST(LstmCellTest, OutputShapesAndBoundedValues) {
  Rng rng(5);
  LstmCell cell(3, 4, &rng);
  auto state = cell.InitialState(2);
  Var x = Var::Leaf(Tensor::Full(2, 3, 0.7f));
  auto next = cell.Forward(x, state);
  EXPECT_EQ(next.h.value().rows(), 2);
  EXPECT_EQ(next.h.value().cols(), 4);
  for (int64_t i = 0; i < next.h.value().numel(); ++i) {
    EXPECT_LT(std::abs(next.h.value().data()[i]), 1.0f);  // tanh * sigmoid.
  }
  EXPECT_EQ(cell.Parameters().size(), 3u);
}

TEST(LstmCellTest, ZeroInputZeroStateGivesNearZeroOutput) {
  Rng rng(6);
  LstmCell cell(3, 4, &rng);
  auto s = cell.InitialState(1);
  auto next = cell.Forward(Var::Leaf(Tensor(1, 3)), s);
  // With zero x and h the gate preactivations equal the bias; cell starts
  // at 0 so h' = o * tanh(i * g) is small but nonzero.
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_LT(std::abs(next.h.value().data()[i]), 0.5f);
  }
}

TEST(StackedLstmTest, FinalStateShape) {
  Rng rng(7);
  StackedLstm lstm(3, 5, 2, &rng);
  std::vector<Var> inputs;
  for (int t = 0; t < 4; ++t) inputs.push_back(Var::Leaf(Tensor(2, 3)));
  Var h = lstm.Forward(inputs, {});
  EXPECT_EQ(h.value().rows(), 2);
  EXPECT_EQ(h.value().cols(), 5);
  EXPECT_EQ(lstm.Parameters().size(), 6u);  // 3 per layer.
}

TEST(StackedLstmTest, MaskFreezesFinishedSequences) {
  Rng rng(8);
  StackedLstm lstm(2, 3, 1, &rng);
  // Batch of 2; row 1 ends after step 0.
  Var step0 = Var::Leaf(Tensor::Full(2, 2, 0.5f));
  Var step1 = Var::Leaf(Tensor::Full(2, 2, -0.9f));
  std::vector<Tensor> masks{Tensor::FromVector({1.0f, 1.0f}),
                            Tensor::FromVector({1.0f, 0.0f})};
  Var h_masked = lstm.Forward({step0, step1}, masks);

  // Row 1's state must equal the one-step-only result.
  Var single0 = Var::Leaf(Tensor::Full(1, 2, 0.5f));
  Var h_single = lstm.Forward({single0}, {});
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(h_masked.value().at(1, j), h_single.value().at(0, j), 1e-6);
  }
  // Row 0 saw both steps, so it differs from the one-step result.
  float diff = 0.0f;
  for (int64_t j = 0; j < 3; ++j) {
    diff += std::abs(h_masked.value().at(0, j) - h_single.value().at(0, j));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(StackedLstmTest, GradientsFlowToAllLayers) {
  Rng rng(9);
  StackedLstm lstm(2, 3, 2, &rng);
  std::vector<Var> inputs{Var::Leaf(Tensor::Full(1, 2, 1.0f)),
                          Var::Leaf(Tensor::Full(1, 2, -1.0f))};
  Var loss = ag::SumSquares(lstm.Forward(inputs, {}));
  Backward(loss);
  for (const Var& p : lstm.Parameters()) {
    EXPECT_GT(p.grad().numel(), 0) << "parameter missing gradient";
  }
}

TEST(StackedLstmTest, CanLearnToRememberFirstToken) {
  // Distinguish sequences by their first input; the LSTM must carry the
  // information across 4 steps.
  Rng rng(10);
  StackedLstm lstm(1, 4, 1, &rng);
  Linear head(4, 1, &rng);
  std::vector<Var> params = lstm.Parameters();
  auto hp = head.Parameters();
  params.insert(params.end(), hp.begin(), hp.end());
  Adam opt(params, 0.02f);

  auto forward = [&](float first) {
    std::vector<Var> inputs{Var::Leaf(Tensor::Full(1, 1, first))};
    for (int t = 0; t < 3; ++t) inputs.push_back(Var::Leaf(Tensor(1, 1)));
    return head.Forward(lstm.Forward(inputs, {}));
  };
  for (int step = 0; step < 300; ++step) {
    const float label = step % 2 == 0 ? 1.0f : -1.0f;
    Var out = forward(label);
    Var target = Var::Leaf(Tensor::Full(1, 1, label));
    Backward(ag::SumSquares(ag::Sub(out, target)));
    opt.Step();
    opt.ZeroGrad();
  }
  EXPECT_GT(forward(1.0f).value().data()[0], 0.3f);
  EXPECT_LT(forward(-1.0f).value().data()[0], -0.3f);
}

// ------------------------------------------------------------- BatchNorm

TEST(BatchNormTest, NormalizesBatchStatistics) {
  BatchNorm1d bn(2);
  Tensor x = Tensor::FromVector(4, 2, {1, 10, 2, 20, 3, 30, 4, 40});
  Var y = bn.Forward(Var::Leaf(x), /*training=*/true);
  // Per-column mean ~0, variance ~1 (gamma=1, beta=0).
  for (int64_t j = 0; j < 2; ++j) {
    float mean = 0.0f, var = 0.0f;
    for (int64_t i = 0; i < 4; ++i) mean += y.value().at(i, j);
    mean /= 4.0f;
    for (int64_t i = 0; i < 4; ++i) {
      const float d = y.value().at(i, j) - mean;
      var += d * d;
    }
    var /= 4.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(BatchNormTest, RunningStatsTrackBatches) {
  BatchNorm1d bn(1);
  Tensor x = Tensor::FromVector(4, 1, {2, 4, 6, 8});  // mean 5, var 5.
  bn.Forward(Var::Leaf(x), true);
  EXPECT_NEAR(bn.running_mean()[0], 5.0f, 1e-4f);
  EXPECT_NEAR(bn.running_var()[0], 5.0f, 1e-3f);
}

TEST(BatchNormTest, SingleRowUsesRunningStats) {
  BatchNorm1d bn(1);
  bn.Forward(Var::Leaf(Tensor::FromVector(4, 1, {2, 4, 6, 8})), true);
  // One-sample "batch" during training must not divide by zero variance.
  Var y = bn.Forward(Var::Leaf(Tensor::FromVector(1, 1, {5.0f})), true);
  EXPECT_NEAR(y.value().data()[0], 0.0f, 1e-3f);  // (5-5)/sqrt(5).
}

TEST(BatchNormTest, GradCheckTrainingMode) {
  Rng rng(11);
  BatchNorm1d bn(3);
  Tensor x0(4, 3);
  UniformInit(&x0, -1, 1, &rng);
  Var x = Var::Leaf(x0, true);

  // Finite differences against the *inference-stat-frozen* behaviour would
  // be wrong; rebuild each time with identical running state by using a
  // fresh BN each evaluation is costly — instead check gradient direction:
  Var y = bn.Forward(x, true);
  Var loss = ag::SumSquares(y);
  Backward(loss);
  EXPECT_EQ(x.grad().rows(), 4);
  for (const Var& p : bn.Parameters()) {
    EXPECT_GT(p.grad().numel(), 0);
  }
}

TEST(BatchNormTest, InferenceModeAffine) {
  BatchNorm1d bn(1);
  bn.Forward(Var::Leaf(Tensor::FromVector(4, 1, {0, 0, 2, 2})), true);
  // Inference: y = (x - 1)/sqrt(1+eps).
  Var y = bn.Forward(Var::Leaf(Tensor::FromVector(1, 1, {3.0f})),
                     /*training=*/false);
  EXPECT_NEAR(y.value().data()[0], 2.0f, 1e-2f);
}

// ------------------------------------------------------------- Embedding

TEST(EmbeddingTest, GatherReadsRows) {
  Rng rng(12);
  Embedding emb(10, 4, &rng);
  Var g = emb.Gather({3, 7, 3});
  EXPECT_EQ(g.value().rows(), 3);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(g.value().at(0, j), emb.RowData(3)[j]);
    EXPECT_FLOAT_EQ(g.value().at(2, j), emb.RowData(3)[j]);
    EXPECT_FLOAT_EQ(g.value().at(1, j), emb.RowData(7)[j]);
  }
}

TEST(EmbeddingTest, BackwardScattersSparseGradients) {
  Rng rng(13);
  Embedding emb(10, 3, &rng);
  Var g = emb.Gather({2, 5});
  Backward(ag::Sum(g));
  EXPECT_EQ(emb.num_pending_rows(), 2u);
  emb.ClearGradients();
  EXPECT_EQ(emb.num_pending_rows(), 0u);
}

TEST(EmbeddingTest, DuplicateIdsAccumulate) {
  Rng rng(14);
  Embedding emb(10, 2, &rng);
  const float before = emb.RowData(1)[0];
  Var g = emb.Gather({1, 1});
  Backward(ag::Sum(g));  // grad 1 per occurrence -> 2 total on row 1.
  emb.ApplySgd(0.5f);
  EXPECT_NEAR(emb.RowData(1)[0], before - 0.5f * 2.0f, 1e-5f);
}

TEST(EmbeddingTest, SgdOnlyTouchesGatheredRows) {
  Rng rng(15);
  Embedding emb(10, 2, &rng);
  const float row0 = emb.RowData(0)[0];
  Var g = emb.GatherRow(4);
  Backward(ag::Sum(g));
  emb.ApplySgd(0.1f);
  EXPECT_FLOAT_EQ(emb.RowData(0)[0], row0);  // untouched row unchanged.
}

TEST(EmbeddingTest, AdamMovesAgainstGradient) {
  Rng rng(16);
  Embedding emb(4, 2, &rng);
  const float before = emb.RowData(2)[0];
  Var g = emb.GatherRow(2);
  Backward(ag::Sum(g));  // gradient +1 on every element.
  emb.ApplyAdam(0.1f);
  EXPECT_LT(emb.RowData(2)[0], before);
}

TEST(EmbeddingTest, SetRowWrites) {
  Rng rng(17);
  Embedding emb(4, 3, &rng);
  const float vals[3] = {1.0f, 2.0f, 3.0f};
  emb.SetRow(1, vals);
  EXPECT_FLOAT_EQ(emb.RowData(1)[2], 3.0f);
}

TEST(EmbeddingTest, TrainsTowardTarget) {
  // Minimize ||e_0 - target||^2 via sparse Adam.
  Rng rng(18);
  Embedding emb(3, 2, &rng);
  Var target = Var::Leaf(Tensor::FromVector({0.5f, -0.5f}));
  for (int step = 0; step < 300; ++step) {
    Var e = emb.GatherRow(0);
    Backward(ag::SumSquares(ag::Sub(e, target)));
    emb.ApplyAdam(0.05f);
  }
  EXPECT_NEAR(emb.RowData(0)[0], 0.5f, 0.02f);
  EXPECT_NEAR(emb.RowData(0)[1], -0.5f, 0.02f);
}

// ------------------------------------------------------------- Optimizers

TEST(OptimTest, SgdStepsAgainstGradient) {
  Var w = Var::Leaf(Tensor::FromVector({1.0f}), true);
  Sgd opt({w}, 0.1f);
  Backward(ag::SumSquares(w));  // grad = 2w = 2.
  opt.Step();
  EXPECT_NEAR(w.value()[0], 0.8f, 1e-5f);
}

TEST(OptimTest, SgdMomentumAccelerates) {
  Var w1 = Var::Leaf(Tensor::FromVector({1.0f}), true);
  Var w2 = Var::Leaf(Tensor::FromVector({1.0f}), true);
  Sgd plain({w1}, 0.01f, 0.0f);
  Sgd momentum({w2}, 0.01f, 0.9f);
  for (int i = 0; i < 20; ++i) {
    Backward(ag::SumSquares(w1));
    plain.Step();
    plain.ZeroGrad();
    Backward(ag::SumSquares(w2));
    momentum.Step();
    momentum.ZeroGrad();
  }
  EXPECT_LT(w2.value()[0], w1.value()[0]);
}

TEST(OptimTest, AdamConvergesOnQuadratic) {
  Var w = Var::Leaf(Tensor::FromVector({5.0f, -3.0f}), true);
  Adam opt({w}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    Backward(ag::SumSquares(w));
    opt.Step();
    opt.ZeroGrad();
  }
  EXPECT_NEAR(w.value()[0], 0.0f, 1e-2f);
  EXPECT_NEAR(w.value()[1], 0.0f, 1e-2f);
}

TEST(OptimTest, SkipsParamsWithoutGrad) {
  Var used = Var::Leaf(Tensor::FromVector({1.0f}), true);
  Var unused = Var::Leaf(Tensor::FromVector({2.0f}), true);
  Adam opt({used, unused}, 0.1f);
  Backward(ag::SumSquares(used));
  opt.Step();
  EXPECT_FLOAT_EQ(unused.value()[0], 2.0f);
}

TEST(OptimTest, ClipGradNormScalesDown) {
  Var w = Var::Leaf(Tensor::FromVector({0.0f}), true);
  w.AccumulateGrad(Tensor::FromVector({30.0f}));
  const float pre = ClipGradNorm({w}, 3.0f);
  EXPECT_FLOAT_EQ(pre, 30.0f);
  EXPECT_NEAR(w.grad()[0], 3.0f, 1e-4f);
}

TEST(OptimTest, ClipGradNormNoopBelowThreshold) {
  Var w = Var::Leaf(Tensor::FromVector({0.0f}), true);
  w.AccumulateGrad(Tensor::FromVector({1.0f}));
  ClipGradNorm({w}, 3.0f);
  EXPECT_FLOAT_EQ(w.grad()[0], 1.0f);
}

}  // namespace
}  // namespace ehna
