#include <gtest/gtest.h>

#include <cmath>

#include "eval/edge_ops.h"
#include "eval/link_prediction.h"
#include "eval/logistic_regression.h"
#include "eval/metrics.h"
#include "eval/reconstruction.h"
#include "graph/generators/generators.h"
#include "nn/init.h"

namespace ehna {
namespace {

// ----------------------------------------------------------------- AUC

TEST(AucTest, PerfectRankingIsOne) {
  auto auc = AreaUnderRoc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(auc.value(), 1.0);
}

TEST(AucTest, InvertedRankingIsZero) {
  auto auc = AreaUnderRoc({0.1, 0.2, 0.8, 0.9}, {1, 1, 0, 0});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(auc.value(), 0.0);
}

TEST(AucTest, AllTiedIsHalf) {
  auto auc = AreaUnderRoc({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(auc.value(), 0.5);
}

TEST(AucTest, KnownMixedCase) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}: pairs won 3/4.
  auto auc = AreaUnderRoc({0.8, 0.4, 0.6, 0.2}, {1, 1, 0, 0});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(auc.value(), 0.75);
}

TEST(AucTest, SingleClassRejected) {
  EXPECT_FALSE(AreaUnderRoc({0.5, 0.6}, {1, 1}).ok());
  EXPECT_FALSE(AreaUnderRoc({0.5}, {1, 0}).ok());  // size mismatch.
  EXPECT_FALSE(AreaUnderRoc({0.5, 0.5}, {1, 2}).ok());
}

// -------------------------------------------------------- BinaryMetrics

TEST(BinaryMetricsTest, PerfectClassifier) {
  auto m = ComputeBinaryMetrics({0.9, 0.8, 0.1, 0.2}, {1, 1, 0, 0});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m.value().precision, 1.0);
  EXPECT_DOUBLE_EQ(m.value().recall, 1.0);
  EXPECT_DOUBLE_EQ(m.value().f1, 1.0);
  EXPECT_DOUBLE_EQ(m.value().accuracy, 1.0);
}

TEST(BinaryMetricsTest, KnownConfusionMatrix) {
  // preds>=0.5: {1, 1, 1, 0}; labels {1, 0, 1, 1} -> tp=2 fp=1 fn=1.
  auto m = ComputeBinaryMetrics({0.9, 0.7, 0.6, 0.4}, {1, 0, 1, 1});
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m.value().precision, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.value().recall, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.value().f1, 2.0 / 3.0, 1e-9);
}

TEST(ErrorReductionTest, MatchesPaperDefinition) {
  // them=0.90, us=0.95 -> reduction (0.10-0.05)/0.10 = 50%.
  EXPECT_NEAR(ErrorReduction(0.90, 0.95), 0.5, 1e-9);
  // Worse than baseline gives negative reduction.
  EXPECT_LT(ErrorReduction(0.90, 0.85), 0.0);
}

// ---------------------------------------------------- LogisticRegression

TEST(LogisticRegressionTest, LearnsLinearlySeparableData) {
  Rng rng(1);
  const int n = 400;
  Tensor x(n, 2);
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.Uniform(-1, 1));
    const float b = static_cast<float>(rng.Uniform(-1, 1));
    x.at(i, 0) = a;
    x.at(i, 1) = b;
    y[i] = a + b > 0 ? 1 : 0;
  }
  LogisticRegression clf;
  ASSERT_TRUE(clf.Fit(x, y).ok());
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    correct += (clf.PredictProba(x.Row(i)) >= 0.5) == (y[i] == 1);
  }
  EXPECT_GT(correct, n * 95 / 100);
}

TEST(LogisticRegressionTest, RejectsBadInput) {
  LogisticRegression clf;
  EXPECT_FALSE(clf.Fit(Tensor(0, 2), {}).ok());
  EXPECT_FALSE(clf.Fit(Tensor(2, 2), {1}).ok());
  EXPECT_FALSE(clf.Fit(Tensor(2, 2), {1, 2}).ok());
}

TEST(LogisticRegressionTest, ProbaVectorMatchesRowwise) {
  Rng rng(2);
  Tensor x(5, 3);
  UniformInit(&x, -1, 1, &rng);
  std::vector<int> y{0, 1, 0, 1, 1};
  LogisticRegression clf;
  ASSERT_TRUE(clf.Fit(x, y).ok());
  auto probs = clf.PredictProba(x);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(probs[i], clf.PredictProba(x.Row(i)));
  }
}

// --------------------------------------------------------------- EdgeOps

TEST(EdgeOpsTest, AllOperatorsMatchDefinitions) {
  const float ex[3] = {1.0f, -2.0f, 0.0f};
  const float ey[3] = {3.0f, 2.0f, -1.0f};
  float out[3];
  ApplyEdgeOperator(EdgeOperator::kMean, ex, ey, 3, out);
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  ApplyEdgeOperator(EdgeOperator::kHadamard, ex, ey, 3, out);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
  EXPECT_FLOAT_EQ(out[1], -4.0f);
  ApplyEdgeOperator(EdgeOperator::kWeightedL1, ex, ey, 3, out);
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[2], 1.0f);
  ApplyEdgeOperator(EdgeOperator::kWeightedL2, ex, ey, 3, out);
  EXPECT_FLOAT_EQ(out[0], 4.0f);
  EXPECT_FLOAT_EQ(out[1], 16.0f);
}

TEST(EdgeOpsTest, NamesAreTableII) {
  EXPECT_STREQ(EdgeOperatorName(EdgeOperator::kMean), "Mean");
  EXPECT_STREQ(EdgeOperatorName(EdgeOperator::kHadamard), "Hadamard");
  EXPECT_STREQ(EdgeOperatorName(EdgeOperator::kWeightedL1), "Weighted-L1");
  EXPECT_STREQ(EdgeOperatorName(EdgeOperator::kWeightedL2), "Weighted-L2");
}

// ---------------------------------------------------------- Reconstruction

TEST(ReconstructionTest, OracleEmbeddingsScoreHigh) {
  // Build embeddings whose dot product is engineered: linked pairs share a
  // coordinate. Two cliques of 6 nodes, embeddings = one-hot of clique.
  std::vector<TemporalEdge> edges;
  Timestamp t = 0.0;
  for (NodeId base : {NodeId{0}, NodeId{6}}) {
    for (NodeId i = 0; i < 6; ++i) {
      for (NodeId j = i + 1; j < 6; ++j) {
        edges.push_back({base + i, base + j, t, 1.0f});
        t += 1.0;
      }
    }
  }
  auto made = TemporalGraph::FromEdges(edges);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Tensor emb(12, 2);
  for (NodeId v = 0; v < 12; ++v) emb.at(v, v < 6 ? 0 : 1) = 1.0f;

  ReconstructionOptions opt;
  opt.sample_nodes = 12;
  opt.repeats = 1;
  opt.precision_at = {30};
  auto p = EvaluateReconstruction(g, emb, opt);
  ASSERT_TRUE(p.ok());
  // All 30 true edges rank in the top 30 (same-clique dot = 1, cross = 0).
  EXPECT_DOUBLE_EQ(p.value()[0], 1.0);
}

TEST(ReconstructionTest, RandomEmbeddingsScoreNearDensity) {
  auto made = MakeRandomGraph({.num_nodes = 60, .num_edges = 300, .seed = 3});
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Rng rng(4);
  Tensor emb(60, 8);
  UniformInit(&emb, -1, 1, &rng);
  ReconstructionOptions opt;
  opt.sample_nodes = 60;
  opt.repeats = 3;
  opt.precision_at = {200};
  auto p = EvaluateReconstruction(g, emb, opt);
  ASSERT_TRUE(p.ok());
  const double density = 300.0 / (60.0 * 59.0 / 2.0);
  EXPECT_NEAR(p.value()[0], density, 0.1);
}

TEST(ReconstructionTest, ValidatesArguments) {
  auto made = MakeRandomGraph({.num_nodes = 20, .num_edges = 40, .seed = 1});
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Tensor emb(20, 4);
  ReconstructionOptions opt;
  opt.precision_at = {};
  EXPECT_FALSE(EvaluateReconstruction(g, emb, opt).ok());
  opt.precision_at = {10};
  opt.sample_nodes = 1;
  EXPECT_FALSE(EvaluateReconstruction(g, emb, opt).ok());
  Tensor wrong(19, 4);
  opt.sample_nodes = 10;
  EXPECT_FALSE(EvaluateReconstruction(g, wrong, opt).ok());
}

TEST(ReconstructionTest, PrecisionMonotoneForOracle) {
  // With oracle one-hot embeddings, precision can only drop as P grows
  // past the number of true edges.
  std::vector<TemporalEdge> edges;
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = i + 1; j < 5; ++j) {
      edges.push_back({i, j, static_cast<Timestamp>(i + j), 1.0f});
    }
  }
  // Plus isolated-ish tail nodes to create non-edges in the sample.
  edges.push_back({5, 6, 100.0, 1.0f});
  auto made = TemporalGraph::FromEdges(edges, 8);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Tensor emb(8, 2);
  for (NodeId v = 0; v < 5; ++v) emb.at(v, 0) = 1.0f;
  emb.at(5, 1) = 1.0f;
  emb.at(6, 1) = 1.0f;
  ReconstructionOptions opt;
  opt.sample_nodes = 8;
  opt.repeats = 1;
  opt.precision_at = {5, 11, 20};
  auto p = EvaluateReconstruction(g, emb, opt);
  ASSERT_TRUE(p.ok());
  EXPECT_GE(p.value()[0], p.value()[1]);
  EXPECT_GE(p.value()[1], p.value()[2]);
}

// -------------------------------------------------------- LinkPrediction

TEST(LinkPredictionTest, OracleGroupEmbeddingsScoreNearPerfect) {
  // Two planted groups of 20 nodes; all edges (train and held-out) are
  // within-group, negatives are sampled globally (mostly cross-group).
  // One-hot group embeddings with the Hadamard operator make positives
  // trivially separable, so the pipeline must report near-perfect metrics.
  Rng build_rng(6);
  std::vector<TemporalEdge> edges;
  Timestamp t = 0.0;
  for (int i = 0; i < 600; ++i) {
    const NodeId base = build_rng.Bernoulli(0.5) ? 0 : 20;
    const NodeId u = base + static_cast<NodeId>(build_rng.UniformInt(20));
    NodeId v = base + static_cast<NodeId>(build_rng.UniformInt(20));
    if (u == v) continue;
    edges.push_back({u, v, t, 1.0f});
    t += 1.0;
  }
  auto made = TemporalGraph::FromEdges(edges, 40);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();

  Rng rng(7);
  auto split_r = MakeTemporalSplit(g, {}, &rng);
  ASSERT_TRUE(split_r.ok());
  const TemporalSplit& split = split_r.value();
  // Sanity: a decent share of negatives must be cross-group.
  int cross = 0;
  for (const auto& [u, v] : split.test_negative) {
    cross += (u < 20) != (v < 20);
  }
  ASSERT_GT(cross, static_cast<int>(split.test_negative.size()) / 4);

  Tensor oracle(40, 2);
  for (NodeId v = 0; v < 40; ++v) oracle.at(v, v < 20 ? 0 : 1) = 1.0f;
  Tensor random(40, 2);
  Rng erng(8);
  UniformInit(&random, -1, 1, &erng);

  LinkPredictionOptions opt;
  opt.repeats = 2;
  opt.classifier.epochs = 60;
  auto oracle_m =
      EvaluateLinkPrediction(split, oracle, EdgeOperator::kHadamard, opt);
  auto random_m =
      EvaluateLinkPrediction(split, random, EdgeOperator::kHadamard, opt);
  ASSERT_TRUE(oracle_m.ok());
  ASSERT_TRUE(random_m.ok());
  // Oracle separates all cross-group negatives; within-group negatives are
  // indistinguishable, bounding AUC below 1 but far above random.
  EXPECT_GT(oracle_m.value().auc, random_m.value().auc + 0.1);
  EXPECT_GT(oracle_m.value().auc, 0.7);
}

TEST(LinkPredictionTest, AllOperatorsReturnMetrics) {
  auto made = MakePaperDataset(PaperDataset::kDigg, 0.04, 8);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Rng rng(9);
  auto split_r = MakeTemporalSplit(g, {}, &rng);
  ASSERT_TRUE(split_r.ok());
  Rng erng(10);
  Tensor emb(g.num_nodes(), 8);
  UniformInit(&emb, -1, 1, &erng);
  LinkPredictionOptions opt;
  opt.repeats = 1;
  opt.classifier.epochs = 5;
  auto all = EvaluateLinkPredictionAllOperators(split_r.value(), emb, opt);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 4u);
  for (const auto& m : all.value()) {
    EXPECT_GE(m.auc, 0.0);
    EXPECT_LE(m.auc, 1.0);
  }
}

TEST(LinkPredictionTest, CombinedOperatorsConcatenateFeatures) {
  auto made = MakePaperDataset(PaperDataset::kDblp, 0.04, 12);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Rng rng(13);
  auto split_r = MakeTemporalSplit(g, {}, &rng);
  ASSERT_TRUE(split_r.ok());
  Rng erng(14);
  Tensor emb(g.num_nodes(), 8);
  UniformInit(&emb, -1, 1, &erng);

  LinkPredictionOptions opt;
  opt.repeats = 2;
  opt.classifier.epochs = 20;
  // All four operators combined must produce valid averaged metrics.
  auto combined = EvaluateLinkPredictionCombined(
      split_r.value(), emb,
      {EdgeOperator::kMean, EdgeOperator::kHadamard,
       EdgeOperator::kWeightedL1, EdgeOperator::kWeightedL2},
      opt);
  ASSERT_TRUE(combined.ok()) << combined.status();
  EXPECT_GE(combined.value().auc, 0.0);
  EXPECT_LE(combined.value().auc, 1.0);
  // Single-operator combination must equal the single-operator API (same
  // features, same seeds, same protocol).
  auto single = EvaluateLinkPrediction(split_r.value(), emb,
                                       EdgeOperator::kHadamard, opt);
  auto single_combined = EvaluateLinkPredictionCombined(
      split_r.value(), emb, {EdgeOperator::kHadamard}, opt);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(single_combined.ok());
  EXPECT_DOUBLE_EQ(single.value().auc, single_combined.value().auc);
  EXPECT_DOUBLE_EQ(single.value().f1, single_combined.value().f1);
}

TEST(LinkPredictionTest, CombinedRejectsEmptyAndDuplicateOperators) {
  auto made = MakePaperDataset(PaperDataset::kDblp, 0.04, 12);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Rng rng(15);
  auto split_r = MakeTemporalSplit(g, {}, &rng);
  ASSERT_TRUE(split_r.ok());
  Tensor emb(g.num_nodes(), 4);
  EXPECT_FALSE(
      EvaluateLinkPredictionCombined(split_r.value(), emb, {}, {}).ok());
  EXPECT_FALSE(EvaluateLinkPredictionCombined(
                   split_r.value(), emb,
                   {EdgeOperator::kMean, EdgeOperator::kMean}, {})
                   .ok());
}

TEST(LinkPredictionTest, RejectsDegenerateOptions) {
  auto made = MakePaperDataset(PaperDataset::kDigg, 0.04, 8);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Rng rng(11);
  auto split_r = MakeTemporalSplit(g, {}, &rng);
  ASSERT_TRUE(split_r.ok());
  Tensor emb(g.num_nodes(), 4);
  LinkPredictionOptions opt;
  opt.train_fraction = 1.5;
  EXPECT_FALSE(
      EvaluateLinkPrediction(split_r.value(), emb, EdgeOperator::kMean, opt)
          .ok());
}

}  // namespace
}  // namespace ehna
