// Inference-core / serving-subsystem equivalence tests (ISSUE 9 tentpole):
// (a) the standalone InferenceEngine must be byte-identical to the
// pre-split EhnaModel::FinalizeEmbeddings — embedding bytes AND checkpoint
// bytes, serial and parallel; (b) the dynamic overlay's compacted graph
// must walk bitwise-identically to a TemporalGraph rebuilt from scratch
// over the same edges; (c) the IVF-flat ANN index must reach recall@10 >=
// 0.95 against the exact scan; (d) concurrent ingest + query must be
// data-race-free (run under TSan via the `concurrency` ctest label).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/inference.h"
#include "core/model.h"
#include "eval/ann.h"
#include "eval/knn.h"
#include "graph/dynamic_graph.h"
#include "graph/generators/generators.h"
#include "nn/quant.h"
#include "serve/embedding_server.h"
#include "util/rng.h"
#include "walk/temporal_walk.h"

namespace ehna {
namespace {

namespace fs = std::filesystem;

TemporalGraph TinyGraph() {
  auto g = MakePaperDataset(PaperDataset::kDblp, 0.02, 9);
  EHNA_CHECK(g.ok());
  return std::move(g).value();
}

EhnaConfig TinyConfig() {
  EhnaConfig cfg;
  cfg.dim = 8;
  cfg.num_walks = 2;
  cfg.walk_length = 3;
  cfg.num_negatives = 1;
  cfg.batch_edges = 8;
  cfg.lstm_layers = 1;
  cfg.epochs = 1;
  cfg.max_edges_per_epoch = 24;
  cfg.learning_rate = 5e-3f;
  cfg.seed = 7;
  return cfg;
}

std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool SameBytes(const Tensor& a, const Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

// --------------------------------------------- (a) inference-core equality

// Model A runs the (delegating) member FinalizeEmbeddings; model B restores
// the same snapshot and runs a standalone InferenceEngine over its state.
// Both the returned matrices, the post-finalize tables, and the
// post-finalize checkpoint files must agree byte-for-byte.
void CheckEngineMatchesModel(int num_threads, const std::string& tag) {
  TemporalGraph g = TinyGraph();
  EhnaConfig cfg = TinyConfig();
  cfg.num_threads = num_threads;
  const std::string dir = FreshDir("ehna_serve_engine_" + tag);

  EhnaModel a(&g, cfg);
  a.Train();
  const std::string trained = dir + "/trained.ehnc";
  ASSERT_TRUE(a.SaveCheckpoint(trained).ok());

  EhnaModel b(&g, cfg);
  ASSERT_TRUE(b.RestoreCheckpoint(trained).ok());

  const Tensor via_model = a.FinalizeEmbeddings();
  InferenceEngine engine(&g, b.embedding(), b.aggregator(), cfg);
  const Tensor via_engine = engine.FinalizeEmbeddings(b.mutable_rng());

  EXPECT_TRUE(SameBytes(via_model, via_engine));
  EXPECT_TRUE(SameBytes(a.embedding_table(), b.embedding_table()));

  const std::string ckpt_a = dir + "/final_a.ehnc";
  const std::string ckpt_b = dir + "/final_b.ehnc";
  ASSERT_TRUE(a.SaveCheckpoint(ckpt_a).ok());
  ASSERT_TRUE(b.SaveCheckpoint(ckpt_b).ok());
  const std::string bytes_a = ReadBytes(ckpt_a);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, ReadBytes(ckpt_b));
  fs::remove_all(dir);
}

TEST(InferenceEngineTest, MatchesModelFinalizeSerial) {
  CheckEngineMatchesModel(1, "1t");
}

TEST(InferenceEngineTest, MatchesModelFinalizeParallel) {
  CheckEngineMatchesModel(4, "4t");
}

// RefreshInto must reproduce the parallel finalize's per-node streams node
// by node: refreshing any subset of nodes yields exactly those rows of the
// full parallel finalize.
TEST(InferenceEngineTest, RefreshIntoMatchesParallelFinalizeRows) {
  TemporalGraph g = TinyGraph();
  EhnaConfig cfg = TinyConfig();
  cfg.num_threads = 4;

  EhnaModel model(&g, cfg);
  model.Train();
  InferenceEngine engine(&g, model.embedding(), model.aggregator(), cfg);
  const Tensor full = engine.ComputeFinalEmbeddings(model.mutable_rng());

  std::vector<NodeId> subset;
  for (NodeId v = 0; v < g.num_nodes(); v += 3) subset.push_back(v);
  Tensor refreshed(g.num_nodes(), cfg.dim);
  engine.RefreshInto(subset, &refreshed);
  for (const NodeId v : subset) {
    EXPECT_EQ(0, std::memcmp(full.Row(v), refreshed.Row(v),
                             static_cast<size_t>(cfg.dim) * sizeof(float)))
        << "node " << v;
  }
}

// ------------------------------------------------- (b) overlay equivalence

std::vector<TemporalEdge> RandomEdges(size_t count, NodeId num_nodes,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<TemporalEdge> edges;
  edges.reserve(count);
  while (edges.size() < count) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(num_nodes));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(num_nodes));
    if (u == v) continue;
    // Coarse timestamps force plenty of ties, exercising the stable-merge
    // argument; interleave a few out-of-order arrivals.
    const Timestamp t = static_cast<Timestamp>(rng.UniformInt(uint64_t{40}));
    edges.push_back({u, v, t, 1.0f + static_cast<float>(rng.Uniform())});
  }
  return edges;
}

TEST(DynamicGraphTest, CompactMatchesRebuildFromScratch) {
  constexpr NodeId kNodes = 60;
  const std::vector<TemporalEdge> all = RandomEdges(400, kNodes, 11);
  const size_t base_count = 150;

  std::vector<TemporalEdge> base_edges(all.begin(), all.begin() + base_count);
  auto base = TemporalGraph::FromEdges(base_edges, kNodes, /*directed=*/false);
  ASSERT_TRUE(base.ok());

  DynamicTemporalGraph overlay(&base.value());
  for (size_t i = base_count; i < all.size(); ++i) {
    ASSERT_TRUE(overlay.Ingest(all[i]).ok());
    // Compact at irregular points to exercise multi-generation merges.
    if (i % 97 == 0) {
      ASSERT_TRUE(overlay.Compact().ok());
    }
  }
  ASSERT_TRUE(overlay.Compact().ok());
  EXPECT_EQ(overlay.pending_edges(), 0u);

  auto rebuilt = TemporalGraph::FromEdges(all, kNodes, /*directed=*/false);
  ASSERT_TRUE(rebuilt.ok());
  const TemporalGraph& a = overlay.current();
  const TemporalGraph& b = rebuilt.value();

  // Identical sorted edge lists => identical CSR => identical observations.
  ASSERT_EQ(a.edges(), b.edges());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());

  // Belt and braces: bitwise-equal walks through both graphs.
  TemporalWalkConfig wcfg;
  wcfg.num_walks = 3;
  wcfg.walk_length = 5;
  TemporalWalkSampler sa(&a, wcfg);
  TemporalWalkSampler sb(&b, wcfg);
  std::vector<TemporalWalkSampler::Anchor> anchors;
  for (NodeId v = 0; v < kNodes; ++v) {
    anchors.push_back({v, a.max_time()});
  }
  EXPECT_EQ(sa.SampleWalksBatch(anchors, 123, nullptr),
            sb.SampleWalksBatch(anchors, 123, nullptr));

  // And matching historical prefixes at a few cutoffs.
  for (const Timestamp cutoff : {0.0, 7.0, 23.0, 40.0}) {
    for (NodeId v = 0; v < kNodes; v += 7) {
      const auto na = a.NeighborsBefore(v, cutoff);
      const auto nb = b.NeighborsBefore(v, cutoff);
      ASSERT_EQ(na.size(), nb.size());
      for (size_t i = 0; i < na.size(); ++i) {
        EXPECT_EQ(na[i].neighbor, nb[i].neighbor);
        EXPECT_EQ(na[i].time, nb[i].time);
        EXPECT_EQ(na[i].edge_id, nb[i].edge_id);
      }
    }
  }
}

TEST(DynamicGraphTest, GrowsNodeSpaceAndValidatesEdges) {
  auto base = TemporalGraph::FromEdges({{0, 1, 1.0}, {1, 2, 2.0}}, 3, false);
  ASSERT_TRUE(base.ok());
  DynamicTemporalGraph overlay(&base.value());

  EXPECT_FALSE(overlay.Ingest({5, 5, 3.0}).ok());          // self-loop
  EXPECT_FALSE(overlay.Ingest({0, 1, 3.0, -1.0f}).ok());   // negative weight
  EXPECT_EQ(overlay.pending_edges(), 0u);

  ASSERT_TRUE(overlay.Ingest({2, 7, 3.0}).ok());  // new node id 7
  EXPECT_EQ(overlay.num_nodes(), 8u);
  ASSERT_TRUE(overlay.Compact().ok());
  EXPECT_EQ(overlay.current().num_nodes(), 8u);
  EXPECT_TRUE(overlay.current().HasEdge(2, 7));
}

TEST(DynamicGraphTest, CandidateCachesAreBoundedAndSeeded) {
  // A hub with many base neighbors: its reservoir must stay at capacity and
  // hold only real neighbors.
  std::vector<TemporalEdge> edges;
  for (NodeId v = 1; v <= 40; ++v) {
    edges.push_back({0, v, static_cast<Timestamp>(v)});
  }
  auto base = TemporalGraph::FromEdges(edges, 41, false);
  ASSERT_TRUE(base.ok());

  DynamicGraphOptions opt;
  opt.cache_capacity = 8;
  DynamicTemporalGraph overlay(&base.value(), opt);
  ASSERT_TRUE(overlay.Ingest({0, 40, 50.0}).ok());

  const auto cached = overlay.CachedNeighbors(0);
  EXPECT_EQ(cached.size(), opt.cache_capacity);
  for (const NodeId c : cached) {
    EXPECT_GE(c, 1u);
    EXPECT_LE(c, 40u);
  }

  std::vector<NodeId> candidates;
  overlay.AffectedCandidates({0, 40, 50.0}, &candidates);
  EXPECT_LE(candidates.size(), 2 + 2 * opt.cache_capacity);
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 0u),
            candidates.end());
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 40u),
            candidates.end());
}

// ------------------------------------------------------ embedding growth

TEST(EmbeddingTest, EnsureRowsPreservesExistingBytes) {
  Rng rng(5);
  Embedding emb(10, 4, &rng);
  const Tensor before = emb.table();

  Rng grow_rng(99);
  emb.EnsureRows(6, &grow_rng);  // no-op
  EXPECT_EQ(emb.num_rows(), 10);
  emb.EnsureRows(14, &grow_rng);
  ASSERT_EQ(emb.num_rows(), 14);
  EXPECT_EQ(0, std::memcmp(before.data(), emb.table().data(),
                           static_cast<size_t>(before.numel()) * sizeof(float)));
  const float bound = 0.5f / 4.0f;
  for (int64_t r = 10; r < 14; ++r) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_LE(std::abs(emb.table().Row(r)[j]), bound);
    }
  }
}

// ------------------------------------------------------- batched exact kNN

TEST(KnnTest, BatchedMatchesPerQuery) {
  Rng rng(21);
  Tensor m(64, 6);
  for (int64_t i = 0; i < m.numel(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  std::vector<NodeId> queries = {0, 5, 5, 63, 17};  // duplicates allowed
  for (const Similarity sim :
       {Similarity::kDotProduct, Similarity::kCosine,
        Similarity::kNegativeEuclidean}) {
    auto batch = TopKNeighborsBatch(m, queries, 10, sim);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch.value().size(), queries.size());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto single = TopKNeighbors(m, queries[qi], 10, sim);
      ASSERT_TRUE(single.ok());
      const auto& got = batch.value()[qi];
      const auto& want = single.value();
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].node, want[i].node);
        EXPECT_EQ(got[i].score, want[i].score);
      }
    }
  }
  auto bad = TopKNeighborsBatch(m, std::vector<NodeId>{64}, 5,
                                Similarity::kCosine);
  EXPECT_FALSE(bad.ok());
}

// ----------------------------------------------------------- (c) ANN recall

// Unit-norm clustered vectors, the shape of serving embeddings: points draw
// a cluster center on the sphere plus Gaussian noise, renormalized.
Tensor ClusteredUnitVectors(int64_t n, int64_t d, int64_t clusters,
                            uint64_t seed) {
  Rng rng(seed);
  Tensor centers(clusters, d);
  for (int64_t i = 0; i < centers.numel(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Normal());
  }
  Tensor out(n, d);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = static_cast<int64_t>(rng.UniformInt(
        static_cast<uint64_t>(clusters)));
    float* row = out.Row(i);
    double norm = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      row[j] = centers.Row(c)[j] + 0.25f * static_cast<float>(rng.Normal());
      norm += static_cast<double>(row[j]) * row[j];
    }
    const float inv = 1.0f / static_cast<float>(std::sqrt(norm));
    for (int64_t j = 0; j < d; ++j) row[j] *= inv;
  }
  return out;
}

TEST(AnnTest, RecallAtLeast95OnClusteredEmbeddings) {
  // Digg-sized: the benchmark-default Digg substitute has ~6k nodes.
  const Tensor emb = ClusteredUnitVectors(6000, 32, 64, 31);
  auto built = IvfFlatIndex::Build(emb);
  ASSERT_TRUE(built.ok());
  const IvfFlatIndex& index = built.value();

  Rng rng(17);
  std::vector<NodeId> queries;
  for (int i = 0; i < 100; ++i) {
    queries.push_back(static_cast<NodeId>(rng.UniformInt(uint64_t{6000})));
  }
  auto oracle = TopKNeighborsBatch(emb, queries, 10,
                                   Similarity::kNegativeEuclidean);
  ASSERT_TRUE(oracle.ok());

  size_t hits = 0, total = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto approx = index.QueryNode(queries[qi], 10);
    ASSERT_TRUE(approx.ok());
    std::set<NodeId> exact_ids;
    for (const Neighbor& nb : oracle.value()[qi]) exact_ids.insert(nb.node);
    total += exact_ids.size();
    for (const Neighbor& nb : approx.value()) {
      hits += exact_ids.count(nb.node);
    }
  }
  const double recall = static_cast<double>(hits) / static_cast<double>(total);
  EXPECT_GE(recall, 0.95) << "recall@10 = " << recall;
}

TEST(AnnTest, UpdateMovesVectorsBetweenCells) {
  const Tensor emb = ClusteredUnitVectors(512, 16, 8, 3);
  auto built = IvfFlatIndex::Build(emb);
  ASSERT_TRUE(built.ok());
  IvfFlatIndex index = std::move(built).value();
  ASSERT_EQ(index.size(), 512u);

  // Teleport node 3 onto node 400's exact vector: it must become (one of)
  // node 400's nearest neighbors under the same metric.
  index.Update(3, emb.Row(400));
  ASSERT_NE(index.VectorOf(3), nullptr);
  EXPECT_EQ(0, std::memcmp(index.VectorOf(3), emb.Row(400),
                           16 * sizeof(float)));
  auto nbrs = index.QueryNode(400, 5);
  ASSERT_TRUE(nbrs.ok());
  ASSERT_FALSE(nbrs.value().empty());
  EXPECT_EQ(nbrs.value()[0].node, 3u);
  EXPECT_EQ(nbrs.value()[0].score, 0.0);  // -||a-b||^2 of identical vectors
  EXPECT_EQ(index.size(), 512u);

  // Upsert of a brand-new id grows the index.
  index.Update(600, emb.Row(0));
  EXPECT_EQ(index.size(), 513u);
  auto nn0 = index.QueryNode(600, 1);
  ASSERT_TRUE(nn0.ok());
  EXPECT_EQ(nn0.value()[0].node, 0u);
}

// ------------------------------------------------------- serving end-to-end

struct ServerFixture {
  TemporalGraph graph;
  EhnaConfig cfg;
  std::string dir;
  std::string ckpt;

  explicit ServerFixture(const std::string& tag, int num_threads = 2)
      : graph(TinyGraph()), cfg(TinyConfig()) {
    cfg.num_threads = num_threads;
    dir = FreshDir("ehna_serve_" + tag);
    ckpt = dir + "/model.ehnc";
    EhnaModel trainer(&graph, cfg);
    trainer.Train();
    EHNA_CHECK(trainer.SaveCheckpoint(ckpt).ok());
  }
  ~ServerFixture() { fs::remove_all(dir); }

  ServeOptions Options() const {
    ServeOptions opt;
    opt.config = cfg;
    opt.refresh_batch = 0;  // manual refresh unless a test overrides.
    return opt;
  }
};

TEST(EmbeddingServerTest, RefreshedRowsMatchOfflineRecompute) {
  ServerFixture fx("offline_eq");
  auto loaded =
      EmbeddingServer::Load(fx.ckpt, fx.graph, fx.Options());
  ASSERT_TRUE(loaded.ok());
  EmbeddingServer& server = *loaded.value();
  const Tensor before = server.ServingEmbeddings();

  // Ingest a burst of fresh interactions among existing nodes, after the
  // trained time range.
  const NodeId n = fx.graph.num_nodes();
  Rng rng(41);
  std::vector<TemporalEdge> stream;
  const Timestamp t0 = fx.graph.max_time();
  std::vector<TemporalEdge> all_edges = fx.graph.edges();
  while (stream.size() < 40) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(uint64_t{n}));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(uint64_t{n}));
    if (u == v) continue;
    const TemporalEdge e{u, v, t0 + 1.0 + static_cast<double>(stream.size())};
    stream.push_back(e);
    all_edges.push_back(e);
  }
  for (const TemporalEdge& e : stream) {
    ASSERT_TRUE(server.Ingest(e).ok());
  }
  EXPECT_EQ(server.stats().pending_edges, stream.size());
  ASSERT_TRUE(server.Refresh().ok());
  EXPECT_EQ(server.stats().pending_edges, 0u);
  const Tensor after = server.ServingEmbeddings();

  // Offline oracle: a fresh model restored from the same checkpoint, its
  // engine re-pointed at the full graph built from scratch; per-node-stream
  // refresh of every node. Affected rows must match the server bitwise;
  // rows the server did not refresh must be bitwise-unchanged.
  auto full = TemporalGraph::FromEdges(all_edges, n, fx.graph.directed());
  ASSERT_TRUE(full.ok());
  EhnaModel offline(&fx.graph, fx.cfg);
  ASSERT_TRUE(offline.RestoreCheckpoint(fx.ckpt).ok());
  InferenceEngine engine(&fx.graph, offline.embedding(), offline.aggregator(),
                         fx.cfg);
  engine.RebindGraph(&full.value());
  std::vector<NodeId> all_nodes(n);
  std::iota(all_nodes.begin(), all_nodes.end(), NodeId{0});
  Tensor oracle(n, fx.cfg.dim);
  engine.RefreshInto(all_nodes, &oracle);

  std::set<NodeId> touched;
  for (const TemporalEdge& e : stream) {
    touched.insert(e.src);
    touched.insert(e.dst);
  }
  const size_t row_bytes = static_cast<size_t>(fx.cfg.dim) * sizeof(float);
  size_t stale = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (touched.count(v)) {
      // Endpoints are always in the refresh set and were recomputed against
      // the same compacted graph the oracle sees: bitwise equality.
      EXPECT_EQ(0, std::memcmp(after.Row(v), oracle.Row(v), row_bytes))
          << "endpoint " << v;
    } else if (std::memcmp(after.Row(v), oracle.Row(v), row_bytes) != 0) {
      // Staleness contract: a non-candidate node may lag the full oracle,
      // but then it must still serve its pre-ingest embedding.
      EXPECT_EQ(0, std::memcmp(after.Row(v), before.Row(v), row_bytes))
          << "node " << v << " neither fresh nor pre-ingest";
      ++stale;
    }
  }
  // The candidate expansion must have refreshed more than just endpoints.
  EXPECT_GT(server.stats().refreshed_nodes,
            static_cast<uint64_t>(touched.size()));
  EXPECT_LT(stale, static_cast<size_t>(n));
}

TEST(EmbeddingServerTest, NewNodesBecomeServableAfterRefresh) {
  ServerFixture fx("new_nodes");
  auto loaded = EmbeddingServer::Load(fx.ckpt, fx.graph, fx.Options());
  ASSERT_TRUE(loaded.ok());
  EmbeddingServer& server = *loaded.value();
  const NodeId n = fx.graph.num_nodes();
  const NodeId fresh = n + 2;

  EXPECT_FALSE(server.Query(fresh, 5).ok());  // not yet servable
  const Timestamp t0 = fx.graph.max_time();
  ASSERT_TRUE(server.Ingest({0, fresh, t0 + 1.0}).ok());
  ASSERT_TRUE(server.Ingest({1, fresh, t0 + 2.0}).ok());
  ASSERT_TRUE(server.Refresh().ok());

  EXPECT_EQ(server.num_nodes(), static_cast<size_t>(fresh) + 1);
  auto nbrs = server.Query(fresh, 5);
  ASSERT_TRUE(nbrs.ok());
  EXPECT_EQ(nbrs.value().size(), 5u);
  auto score = server.LinkScore(0, fresh);
  ASSERT_TRUE(score.ok());
  EXPECT_TRUE(std::isfinite(score.value()));

  // ANN result for the fresh node agrees reasonably with the exact oracle.
  auto exact = server.QueryExact(fresh, 5);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(nbrs.value()[0].node, exact.value()[0].node);
}

TEST(EmbeddingServerTest, AutoRefreshTriggersOnBatchBoundary) {
  ServerFixture fx("auto_refresh");
  ServeOptions opt = fx.Options();
  opt.refresh_batch = 8;
  auto loaded = EmbeddingServer::Load(fx.ckpt, fx.graph, opt);
  ASSERT_TRUE(loaded.ok());
  EmbeddingServer& server = *loaded.value();

  const Timestamp t0 = fx.graph.max_time();
  for (int i = 0; i < 20; ++i) {
    const NodeId u = static_cast<NodeId>(i % 5);
    const NodeId v = static_cast<NodeId>(5 + (i % 7));
    ASSERT_TRUE(server.Ingest({u, v, t0 + 1.0 + i}).ok());
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.ingested_edges, 20u);
  EXPECT_EQ(stats.refreshes, 2u);          // at edges 8 and 16
  EXPECT_EQ(stats.pending_edges, 4u);      // 20 - 2*8
  EXPECT_GT(stats.refreshed_nodes, 0u);
}

// Reduced-precision serving (DESIGN.md §14): with precision=int8 the
// server keeps an int8 mirror of the serving matrix and re-quantizes
// exactly the rows each Refresh rewrote. Quantization must be a pure
// read-side view: fp32 serving bytes, refresh behaviour, and the on-disk
// checkpoint are identical to an fp32-precision server over the same
// stream.
TEST(EmbeddingServerTest, Int8RefreshRequantizesExactlyAffectedRows) {
  ServerFixture fx("quant_refresh");
  const std::string ckpt_before = ReadBytes(fx.ckpt);
  ASSERT_FALSE(ckpt_before.empty());

  ServeOptions opt_q = fx.Options();
  opt_q.precision = ServePrecision::kInt8;
  auto loaded_q = EmbeddingServer::Load(fx.ckpt, fx.graph, opt_q);
  ASSERT_TRUE(loaded_q.ok());
  EmbeddingServer& quant_server = *loaded_q.value();
  auto loaded_f = EmbeddingServer::Load(fx.ckpt, fx.graph, fx.Options());
  ASSERT_TRUE(loaded_f.ok());
  EmbeddingServer& fp32_server = *loaded_f.value();

  const Tensor before = quant_server.ServingEmbeddings();
  const QuantizedMatrix mirror_before = quant_server.QuantizedServingSnapshot();
  ASSERT_EQ(mirror_before.rows(), before.rows());

  // Same stream into both servers; include a brand-new node so the mirror
  // has to grow alongside the serving matrix.
  const NodeId n = fx.graph.num_nodes();
  const Timestamp t0 = fx.graph.max_time();
  std::vector<TemporalEdge> stream;
  Rng rng(57);
  while (stream.size() < 24) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(uint64_t{n}));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(uint64_t{n}));
    if (u == v) continue;
    stream.push_back({u, v, t0 + 1.0 + static_cast<double>(stream.size())});
  }
  stream.push_back({0, n + 1, t0 + 100.0});
  for (const TemporalEdge& e : stream) {
    ASSERT_TRUE(quant_server.Ingest(e).ok());
    ASSERT_TRUE(fp32_server.Ingest(e).ok());
  }
  ASSERT_TRUE(quant_server.Refresh().ok());
  ASSERT_TRUE(fp32_server.Refresh().ok());

  // Quantization never perturbs the fp32 serving state.
  const Tensor after = quant_server.ServingEmbeddings();
  EXPECT_TRUE(SameBytes(after, fp32_server.ServingEmbeddings()));

  // Offline-recompute check: RequantizeRow is a pure function of the fp32
  // row, so the incrementally-maintained mirror must equal quantizing the
  // whole post-refresh matrix from scratch — codes, scales, and norms.
  const QuantizedMatrix mirror = quant_server.QuantizedServingSnapshot();
  const QuantizedMatrix oracle =
      QuantizedMatrix::FromTensor(after, ServePrecision::kInt8);
  ASSERT_EQ(mirror.rows(), oracle.rows());
  ASSERT_EQ(mirror.dim(), oracle.dim());
  const int64_t d = mirror.dim();
  EXPECT_EQ(std::memcmp(mirror.DataI8(), oracle.DataI8(),
                        static_cast<size_t>(mirror.rows() * d)),
            0);
  for (int64_t r = 0; r < mirror.rows(); ++r) {
    const float ms = mirror.scale(r);
    const float os = oracle.scale(r);
    EXPECT_EQ(std::memcmp(&ms, &os, sizeof(float)), 0) << "row " << r;
    EXPECT_EQ(mirror.sqnorm_i32(r), oracle.sqnorm_i32(r)) << "row " << r;
  }

  // Rows the refresh did not rewrite kept their pre-ingest quantized bytes
  // (i.e. refresh re-quantized only affected rows, not the world).
  const size_t row_bytes = static_cast<size_t>(d) * sizeof(float);
  size_t untouched = 0;
  for (int64_t r = 0; r < before.rows(); ++r) {
    if (std::memcmp(after.Row(r), before.Row(r), row_bytes) != 0) continue;
    ++untouched;
    EXPECT_EQ(std::memcmp(mirror.RowI8(r), mirror_before.RowI8(r),
                          static_cast<size_t>(d)),
              0)
        << "row " << r;
    EXPECT_EQ(mirror.sqnorm_i32(r), mirror_before.sqnorm_i32(r));
  }
  EXPECT_GT(untouched, 0u);

  // Quantized queries serve exact fp32 scores after the re-rank, and the
  // full-precision oracle stays reachable for comparison.
  auto q_res = quant_server.QueryExact(3, 5);
  auto f_res = quant_server.QueryExactFp32(3, 5);
  ASSERT_TRUE(q_res.ok());
  ASSERT_TRUE(f_res.ok());
  ASSERT_EQ(q_res.value().size(), 5u);
  EXPECT_EQ(q_res.value()[0].node, f_res.value()[0].node);

  // Serving in reduced precision leaves the checkpoint file untouched.
  EXPECT_EQ(ckpt_before, ReadBytes(fx.ckpt));
}

// (d) Concurrent ingest + query: exercised under TSan via the
// `concurrency` ctest label. Writers stream edges (tripping auto-refreshes
// that mutate the serving matrix and ANN index) while readers hammer
// queries; the shared/exclusive lock must keep every interleaving sound.
TEST(EmbeddingServerTest, ConcurrentIngestAndQuery) {
  ServerFixture fx("concurrent", /*num_threads=*/2);
  ServeOptions opt = fx.Options();
  opt.refresh_batch = 16;
  auto loaded = EmbeddingServer::Load(fx.ckpt, fx.graph, opt);
  ASSERT_TRUE(loaded.ok());
  EmbeddingServer& server = *loaded.value();
  const NodeId n = fx.graph.num_nodes();
  const Timestamp t0 = fx.graph.max_time();

  std::atomic<bool> failed{false};
  std::atomic<uint64_t> query_ok{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(100 + w);
      for (int i = 0; i < 120; ++i) {
        const NodeId u = static_cast<NodeId>(rng.UniformInt(uint64_t{n}));
        const NodeId v = static_cast<NodeId>(rng.UniformInt(uint64_t{n}));
        if (u == v) continue;
        const TemporalEdge e{u, v, t0 + 1.0 + i + 200.0 * w};
        if (!server.Ingest(e).ok()) failed = true;
      }
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(900 + r);
      for (int i = 0; i < 200; ++i) {
        const NodeId q = static_cast<NodeId>(rng.UniformInt(uint64_t{n}));
        auto res = server.Query(q, 5);
        if (res.ok()) {
          query_ok.fetch_add(1);
          for (const Neighbor& nb : res.value()) {
            if (nb.node >= server.num_nodes() + 8) failed = true;
          }
        }
        auto score = server.LinkScore(q, (q + 1) % n);
        if (score.ok() && !std::isfinite(score.value())) failed = true;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(query_ok.load(), 0u);
  ASSERT_TRUE(server.Refresh().ok());
  EXPECT_EQ(server.stats().pending_edges, 0u);
}

}  // namespace
}  // namespace ehna
