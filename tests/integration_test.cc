#include <gtest/gtest.h>

#include <cmath>

#include "baselines/node2vec.h"
#include "core/model.h"
#include "eval/link_prediction.h"
#include "eval/reconstruction.h"
#include "graph/generators/generators.h"
#include "graph/split.h"

namespace ehna {
namespace {

/// End-to-end: generate a temporal graph, split it, train EHNA on the
/// training prefix, finalize embeddings, and verify the full evaluation
/// pipeline produces sane, better-than-chance numbers.
TEST(IntegrationTest, EhnaEndToEndLinkPrediction) {
  auto made = MakePaperDataset(PaperDataset::kDblp, 0.05, 17);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();

  Rng rng(1);
  auto split_r = MakeTemporalSplit(g, {}, &rng);
  ASSERT_TRUE(split_r.ok());
  TemporalSplit split = std::move(split_r).value();

  EhnaConfig cfg;
  cfg.dim = 16;
  cfg.num_walks = 4;
  cfg.walk_length = 5;
  cfg.num_negatives = 2;
  cfg.batch_edges = 16;
  cfg.max_edges_per_epoch = 400;
  cfg.epochs = 3;
  cfg.seed = 2;
  EhnaModel model(&split.train, cfg);
  model.Train();
  Tensor emb = model.FinalizeEmbeddings();

  LinkPredictionOptions opt;
  opt.repeats = 2;
  opt.classifier.epochs = 60;
  auto m = EvaluateLinkPrediction(split, emb, EdgeOperator::kWeightedL2, opt);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m.value().auc, 0.6);  // clearly better than chance.
  EXPECT_GT(m.value().f1, 0.4);
}

TEST(IntegrationTest, EhnaEndToEndReconstruction) {
  auto made = MakePaperDataset(PaperDataset::kDigg, 0.05, 23);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();

  EhnaConfig cfg;
  cfg.dim = 16;
  cfg.num_walks = 4;
  cfg.walk_length = 5;
  cfg.num_negatives = 2;
  cfg.batch_edges = 16;
  cfg.max_edges_per_epoch = 400;
  cfg.epochs = 3;
  cfg.seed = 3;
  EhnaModel model(&g, cfg);
  model.Train();
  Tensor emb = model.FinalizeEmbeddings();

  ReconstructionOptions opt;
  opt.sample_nodes = 80;
  opt.repeats = 2;
  opt.precision_at = {100};
  auto p = EvaluateReconstruction(g, emb, opt);
  ASSERT_TRUE(p.ok());
  // Graph density among 80 sampled nodes is tiny; a trained model must
  // beat it by a wide margin.
  EXPECT_GT(p.value()[0], 0.05);
}

TEST(IntegrationTest, BaselinePipelineRunsOnSplitGraph) {
  auto made = MakePaperDataset(PaperDataset::kYelp, 0.04, 29);
  ASSERT_TRUE(made.ok());
  TemporalGraph g = std::move(made).value();
  Rng rng(4);
  auto split_r = MakeTemporalSplit(g, {}, &rng);
  ASSERT_TRUE(split_r.ok());
  TemporalSplit split = std::move(split_r).value();

  Node2VecConfig cfg;
  cfg.sgns.dim = 16;
  cfg.walk.walk_length = 20;
  cfg.walk.walks_per_node = 2;
  cfg.epochs = 1;
  Node2VecEmbedder embedder(cfg);
  Tensor emb = embedder.Fit(split.train);

  LinkPredictionOptions opt;
  opt.repeats = 1;
  opt.classifier.epochs = 20;
  auto all = EvaluateLinkPredictionAllOperators(split, emb, opt);
  ASSERT_TRUE(all.ok());
  for (const auto& m : all.value()) {
    EXPECT_TRUE(std::isfinite(m.auc));
  }
}

}  // namespace
}  // namespace ehna
