#include <gtest/gtest.h>

#include <cmath>

#include "ehna.h"  // also exercises the umbrella header.
#include "nn/init.h"
#include "nn/pca.h"

namespace ehna {
namespace {

TEST(PcaTest, RecoversDominantAxis) {
  // Points along direction (3,4)/5 with small orthogonal noise.
  Rng rng(1);
  Tensor data(200, 2);
  for (int64_t i = 0; i < 200; ++i) {
    const float t = static_cast<float>(rng.Normal(0.0, 3.0));
    const float noise = static_cast<float>(rng.Normal(0.0, 0.05));
    data.at(i, 0) = 0.6f * t - 0.8f * noise;
    data.at(i, 1) = 0.8f * t + 0.6f * noise;
  }
  auto pca = ComputePca(data, 1, &rng);
  ASSERT_TRUE(pca.ok());
  const float c0 = pca.value().components.at(0, 0);
  const float c1 = pca.value().components.at(0, 1);
  // Axis is (0.6, 0.8) up to sign.
  EXPECT_NEAR(std::abs(c0 * 0.6f + c1 * 0.8f), 1.0f, 1e-2f);
  EXPECT_NEAR(pca.value().explained_variance[0], 9.0, 1.5);
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  Rng rng(2);
  Tensor data(100, 6);
  UniformInit(&data, -1, 1, &rng);
  auto pca = ComputePca(data, 3, &rng);
  ASSERT_TRUE(pca.ok());
  const Tensor& comp = pca.value().components;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      double dot = 0.0;
      for (int64_t j = 0; j < 6; ++j) {
        dot += static_cast<double>(comp.at(a, j)) * comp.at(b, j);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-3) << a << "," << b;
    }
  }
}

TEST(PcaTest, ExplainedVarianceDescending) {
  Rng rng(3);
  Tensor data(150, 5);
  // Anisotropic: column j has stddev 5-j.
  for (int64_t i = 0; i < 150; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      data.at(i, j) = static_cast<float>(rng.Normal(0.0, 5.0 - j));
    }
  }
  auto pca = ComputePca(data, 4, &rng);
  ASSERT_TRUE(pca.ok());
  const auto& ev = pca.value().explained_variance;
  for (size_t i = 1; i < ev.size(); ++i) EXPECT_GE(ev[i - 1], ev[i] - 1e-6);
}

TEST(PcaTest, ProjectionPreservesPairStructure) {
  // Two far-apart clusters stay separated after 2-D projection.
  Rng rng(4);
  Tensor data(60, 8);
  for (int64_t i = 0; i < 60; ++i) {
    const float offset = i < 30 ? 5.0f : -5.0f;
    for (int64_t j = 0; j < 8; ++j) {
      data.at(i, j) =
          offset + static_cast<float>(rng.Normal(0.0, 0.3));
    }
  }
  auto pca = ComputePca(data, 2, &rng);
  ASSERT_TRUE(pca.ok());
  const Tensor& proj = pca.value().projected;
  // First component separates the clusters: signs differ between groups.
  int consistent = 0;
  const float sign = proj.at(0, 0) > 0 ? 1.0f : -1.0f;
  for (int64_t i = 0; i < 60; ++i) {
    const bool first_cluster = i < 30;
    const bool positive = sign * proj.at(i, 0) > 0;
    if (first_cluster == positive) ++consistent;
  }
  EXPECT_GE(consistent, 58);
}

TEST(PcaTest, ValidatesArguments) {
  Rng rng(5);
  EXPECT_FALSE(ComputePca(Tensor(1, 4), 1, &rng).ok());  // too few rows.
  EXPECT_FALSE(ComputePca(Tensor(10, 4), 0, &rng).ok());
  EXPECT_FALSE(ComputePca(Tensor(10, 4), 5, &rng).ok());
}

}  // namespace
}  // namespace ehna
