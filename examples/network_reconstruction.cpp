// Network reconstruction (paper §V.D): train EHNA on a temporal network,
// rank node pairs by dot-product similarity and measure how precisely the
// top-ranked pairs recover true edges (Precision@P), comparing against a
// static Node2Vec baseline.
//
// Usage: network_reconstruction [dataset=digg|yelp|tmall|dblp] [scale=0.1]
#include <cstdio>
#include <cstring>
#include <iostream>

#include "baselines/node2vec.h"
#include "core/model.h"
#include "eval/reconstruction.h"
#include "graph/generators/generators.h"
#include "util/table_writer.h"

namespace {

ehna::PaperDataset ParseDataset(const char* name) {
  using ehna::PaperDataset;
  if (std::strcmp(name, "yelp") == 0) return PaperDataset::kYelp;
  if (std::strcmp(name, "tmall") == 0) return PaperDataset::kTmall;
  if (std::strcmp(name, "dblp") == 0) return PaperDataset::kDblp;
  return PaperDataset::kDigg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ehna;
  const PaperDataset dataset = ParseDataset(argc > 1 ? argv[1] : "digg");
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

  auto graph_or = MakePaperDataset(dataset, scale, /*seed=*/11);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  TemporalGraph graph = std::move(graph_or).value();
  std::printf("dataset %s: %u nodes, %zu edges\n", PaperDatasetName(dataset),
              graph.num_nodes(), graph.num_edges());

  // EHNA embeddings.
  EhnaConfig config;
  config.dim = 16;
  config.num_walks = 4;
  config.walk_length = 5;
  config.num_negatives = 2;
  config.epochs = 3;
  config.max_edges_per_epoch = 800;
  EhnaModel model(&graph, config);
  model.Train();
  const Tensor ehna_emb = model.FinalizeEmbeddings();

  // Static Node2Vec baseline at the same dimensionality.
  Node2VecConfig n2v;
  n2v.sgns.dim = 16;
  n2v.walk.walk_length = 30;
  n2v.walk.walks_per_node = 4;
  n2v.epochs = 2;
  Node2VecEmbedder baseline(n2v);
  const Tensor n2v_emb = baseline.Fit(graph);

  ReconstructionOptions opt;
  opt.sample_nodes = std::min<size_t>(300, graph.num_nodes());
  opt.repeats = 3;
  const size_t max_p = opt.sample_nodes * (opt.sample_nodes - 1) / 2;
  for (size_t p = 100; p < max_p; p *= 4) opt.precision_at.push_back(p);

  auto ehna_curve = EvaluateReconstruction(graph, ehna_emb, opt);
  auto n2v_curve = EvaluateReconstruction(graph, n2v_emb, opt);
  if (!ehna_curve.ok() || !n2v_curve.ok()) {
    std::fprintf(stderr, "evaluation failed\n");
    return 1;
  }

  TableWriter table("Reconstruction Precision@P (cf. paper Figure 4)",
                    {"P", "EHNA", "Node2Vec"});
  for (size_t i = 0; i < opt.precision_at.size(); ++i) {
    table.AddRow({std::to_string(opt.precision_at[i]),
                  TableWriter::FormatDouble(ehna_curve.value()[i]),
                  TableWriter::FormatDouble(n2v_curve.value()[i])});
  }
  table.Print(std::cout);
  return 0;
}
