// Future-link prediction (paper §V.E) on a generated temporal network:
// hold out the 20% most recent edges, train EHNA on the remaining prefix,
// and classify held-out edges vs sampled non-edges with the four edge
// operators of Table II.
//
// Usage: link_prediction [dataset=dblp|digg|yelp|tmall] [scale=0.1]
#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/model.h"
#include "eval/link_prediction.h"
#include "graph/generators/generators.h"
#include "graph/split.h"
#include "util/table_writer.h"

namespace {

ehna::PaperDataset ParseDataset(const char* name) {
  using ehna::PaperDataset;
  if (std::strcmp(name, "digg") == 0) return PaperDataset::kDigg;
  if (std::strcmp(name, "yelp") == 0) return PaperDataset::kYelp;
  if (std::strcmp(name, "tmall") == 0) return PaperDataset::kTmall;
  return PaperDataset::kDblp;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ehna;
  const PaperDataset dataset = ParseDataset(argc > 1 ? argv[1] : "dblp");
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

  auto graph_or = MakePaperDataset(dataset, scale, /*seed=*/7);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  TemporalGraph graph = std::move(graph_or).value();
  std::printf("dataset %s (scale %.2f): %u nodes, %zu edges\n",
              PaperDatasetName(dataset), scale, graph.num_nodes(),
              graph.num_edges());

  // Temporal split: the paper's protocol removes the 20% most recent edges
  // as positives and samples an equal number of never-connected pairs.
  Rng rng(1);
  auto split_or = MakeTemporalSplit(graph, {}, &rng);
  if (!split_or.ok()) {
    std::fprintf(stderr, "%s\n", split_or.status().ToString().c_str());
    return 1;
  }
  TemporalSplit split = std::move(split_or).value();
  std::printf("train edges %zu | test positives %zu | test negatives %zu\n",
              split.train.num_edges(), split.test_positive.size(),
              split.test_negative.size());

  EhnaConfig config;
  config.dim = 16;
  config.num_walks = 4;
  config.walk_length = 5;
  config.num_negatives = 2;
  config.epochs = 3;
  config.max_edges_per_epoch = 800;
  EhnaModel model(&split.train, config);
  model.Train(0, [](int epoch, const EhnaModel::EpochStats& s) {
    std::printf("epoch %d: loss %.4f (%.1fs)\n", epoch, s.avg_loss, s.seconds);
  });
  const Tensor emb = model.FinalizeEmbeddings();

  LinkPredictionOptions opt;
  opt.repeats = 3;
  auto metrics_or = EvaluateLinkPredictionAllOperators(split, emb, opt);
  if (!metrics_or.ok()) {
    std::fprintf(stderr, "%s\n", metrics_or.status().ToString().c_str());
    return 1;
  }

  TableWriter table("EHNA link prediction (operators of Table II)",
                    {"Operator", "AUC", "F1", "Precision", "Recall"});
  for (size_t i = 0; i < kAllEdgeOperators.size(); ++i) {
    const BinaryMetrics& m = metrics_or.value()[i];
    table.AddRow({EdgeOperatorName(kAllEdgeOperators[i]),
                  TableWriter::FormatDouble(m.auc),
                  TableWriter::FormatDouble(m.f1),
                  TableWriter::FormatDouble(m.precision),
                  TableWriter::FormatDouble(m.recall)});
  }
  table.Print(std::cout);
  return 0;
}
