// Quickstart: the smallest end-to-end use of the EHNA library.
//
//   1. Generate (or load) a temporal network.
//   2. Train the EHNA model.
//   3. Finalize embeddings and query nearest neighbors.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/model.h"
#include "graph/generators/generators.h"

int main() {
  using namespace ehna;

  // 1. A small DBLP-like temporal co-authorship network. To use your own
  //    data instead: LoadTemporalGraph("edges.txt") with `src dst time
  //    [weight]` lines.
  CoauthorGraphOptions gen;
  gen.num_papers = 400;
  gen.seed = 42;
  auto graph_or = MakeCoauthorGraph(gen);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 graph_or.status().ToString().c_str());
    return 1;
  }
  TemporalGraph graph = std::move(graph_or).value();
  std::printf("graph: %u authors, %zu temporal co-authorship edges\n",
              graph.num_nodes(), graph.num_edges());

  // 2. Train EHNA. The defaults follow the paper; we shrink them so the
  //    quickstart finishes in seconds.
  EhnaConfig config;
  config.dim = 16;
  config.num_walks = 4;
  config.walk_length = 5;
  config.num_negatives = 2;
  config.epochs = 2;
  config.max_edges_per_epoch = 300;
  EhnaModel model(&graph, config);
  model.Train(0, [](int epoch, const EhnaModel::EpochStats& s) {
    std::printf("epoch %d: avg hinge loss %.4f over %zu edges (%.1fs)\n",
                epoch, s.avg_loss, s.edges, s.seconds);
  });

  // 3. Final inference pass (Section IV.D of the paper): each node's
  //    embedding becomes its aggregated historical-neighborhood embedding.
  const Tensor emb = model.FinalizeEmbeddings();

  // Nearest neighbors of the most prolific author by dot product.
  NodeId star = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.Degree(v) > graph.Degree(star)) star = v;
  }
  std::vector<std::pair<float, NodeId>> scored;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (v == star) continue;
    float dot = 0.0f;
    for (int64_t j = 0; j < emb.cols(); ++j) dot += emb.at(star, j) * emb.at(v, j);
    scored.push_back({dot, v});
  }
  std::partial_sort(scored.begin(), scored.begin() + 5, scored.end(),
                    [](auto& a, auto& b) { return a.first > b.first; });

  std::printf("\nauthor %u (degree %zu) — closest authors in the embedding "
              "space:\n", star, graph.Degree(star));
  for (int i = 0; i < 5; ++i) {
    const auto& [score, v] = scored[i];
    std::printf("  author %-6u similarity %.4f  (co-authored with %u: %s)\n",
                v, score, star, graph.HasEdge(star, v) ? "yes" : "no");
  }
  return 0;
}
