// A small command-line trainer: load (or generate) a temporal network,
// train any of the implemented embedding methods, and save the embedding
// matrix — the "adopt this library without writing C++" path.
//
// Usage:
//   train_embeddings --method=ehna|htne|ctdne|node2vec|line
//                    [--input=edges.txt | --dataset=digg|yelp|tmall|dblp]
//                    [--scale=0.1] [--dim=64] [--epochs=3]
//                    [--output=embeddings.txt] [--binary] [--seed=1]
//                    [--threads=1] [--pipeline-depth=0]
//                    [--checkpoint-dir=DIR] [--checkpoint-every=1]
//
// With --checkpoint-dir (EHNA only) the trainer snapshots its full state
// into DIR after every --checkpoint-every epochs and, on startup, resumes
// from the last good snapshot found there — a run killed at any instant and
// restarted produces bitwise-identical embeddings to an uninterrupted one.
#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/ctdne.h"
#include "baselines/htne.h"
#include "baselines/line.h"
#include "baselines/node2vec.h"
#include "core/checkpoint.h"
#include "core/model.h"
#include "graph/edgelist_io.h"
#include "graph/generators/generators.h"
#include "nn/serialize.h"

namespace {

struct Args {
  std::string method = "ehna";
  std::string input;
  std::string dataset = "dblp";
  std::string output = "embeddings.txt";
  std::string checkpoint_dir;
  double scale = 0.1;
  int64_t dim = 64;
  int epochs = 3;
  int checkpoint_every = 1;
  int threads = 1;
  int pipeline_depth = 0;
  bool binary = false;
  uint64_t seed = 1;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--method", &v)) args.method = v;
    else if (ParseFlag(argv[i], "--input", &v)) args.input = v;
    else if (ParseFlag(argv[i], "--dataset", &v)) args.dataset = v;
    else if (ParseFlag(argv[i], "--output", &v)) args.output = v;
    else if (ParseFlag(argv[i], "--scale", &v)) args.scale = std::atof(v.c_str());
    else if (ParseFlag(argv[i], "--dim", &v)) args.dim = std::atol(v.c_str());
    else if (ParseFlag(argv[i], "--epochs", &v)) args.epochs = std::atoi(v.c_str());
    else if (ParseFlag(argv[i], "--checkpoint-dir", &v)) args.checkpoint_dir = v;
    else if (ParseFlag(argv[i], "--checkpoint-every", &v)) args.checkpoint_every = std::atoi(v.c_str());
    else if (ParseFlag(argv[i], "--threads", &v)) args.threads = std::atoi(v.c_str());
    else if (ParseFlag(argv[i], "--pipeline-depth", &v)) args.pipeline_depth = std::atoi(v.c_str());
    else if (ParseFlag(argv[i], "--seed", &v)) args.seed = std::atoll(v.c_str());
    else if (std::strcmp(argv[i], "--binary") == 0) args.binary = true;
    else std::fprintf(stderr, "ignoring unknown argument %s\n", argv[i]);
  }
  return args;
}

ehna::PaperDataset DatasetByName(const std::string& name) {
  using ehna::PaperDataset;
  if (name == "digg") return PaperDataset::kDigg;
  if (name == "yelp") return PaperDataset::kYelp;
  if (name == "tmall") return PaperDataset::kTmall;
  return PaperDataset::kDblp;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ehna;
  const Args args = ParseArgs(argc, argv);

  Result<TemporalGraph> graph_or =
      args.input.empty()
          ? MakePaperDataset(DatasetByName(args.dataset), args.scale,
                             args.seed)
          : LoadTemporalGraph(args.input);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "failed to load graph: %s\n",
                 graph_or.status().ToString().c_str());
    return 1;
  }
  TemporalGraph graph = std::move(graph_or).value();
  std::printf("graph: %u nodes, %zu temporal edges (span %.0f)\n",
              graph.num_nodes(), graph.num_edges(), graph.TimeSpan());

  Tensor embeddings;
  if (args.method == "ehna") {
    EhnaConfig cfg;
    cfg.dim = args.dim;
    cfg.epochs = args.epochs;
    cfg.seed = args.seed;
    cfg.num_walks = 4;
    cfg.walk_length = 5;
    cfg.num_negatives = 2;
    cfg.num_threads = args.threads;
    cfg.pipeline_depth = args.pipeline_depth;
    cfg.checkpoint_dir = args.checkpoint_dir;
    cfg.checkpoint_every = args.checkpoint_every;
    EhnaModel model(&graph, cfg);
    if (!cfg.checkpoint_dir.empty()) {
      CheckpointManager manager(cfg.checkpoint_dir, cfg.checkpoint_keep);
      const Status st = manager.RestoreLatest(&model);
      if (st.ok()) {
        std::printf("resumed from %s at epoch %llu\n",
                    cfg.checkpoint_dir.c_str(),
                    static_cast<unsigned long long>(model.completed_epochs()));
      } else if (st.code() != StatusCode::kNotFound) {
        std::fprintf(stderr, "cannot resume: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    model.Train(0, [](int e, const EhnaModel::EpochStats& s) {
      std::printf("epoch %d: loss %.4f (%.1fs)\n", e, s.avg_loss, s.seconds);
    });
    embeddings = model.FinalizeEmbeddings();
  } else if (args.method == "htne") {
    HtneConfig cfg;
    cfg.dim = args.dim;
    cfg.epochs = args.epochs;
    cfg.seed = args.seed;
    embeddings = HtneEmbedder(cfg).Fit(graph);
  } else if (args.method == "ctdne") {
    CtdneConfig cfg;
    cfg.sgns.dim = args.dim;
    cfg.epochs = args.epochs;
    cfg.seed = args.seed;
    embeddings = CtdneEmbedder(cfg).Fit(graph);
  } else if (args.method == "node2vec") {
    Node2VecConfig cfg;
    cfg.sgns.dim = args.dim;
    cfg.epochs = args.epochs;
    cfg.seed = args.seed;
    embeddings = Node2VecEmbedder(cfg).Fit(graph);
  } else if (args.method == "line") {
    LineConfig cfg;
    cfg.dim = args.dim;
    cfg.epochs = args.epochs;
    cfg.seed = args.seed;
    embeddings = LineEmbedder(cfg).Fit(graph);
  } else {
    std::fprintf(stderr, "unknown method '%s'\n", args.method.c_str());
    return 1;
  }

  const Status st = args.binary
                        ? WriteTensorBinary(args.output, embeddings)
                        : WriteTensorText(args.output, embeddings);
  if (!st.ok()) {
    std::fprintf(stderr, "failed to save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %lldx%lld embeddings (%s) to %s\n",
              static_cast<long long>(embeddings.rows()),
              static_cast<long long>(embeddings.cols()), args.method.c_str(),
              args.output.c_str());
  return 0;
}
