// Embedding visualization (one of the embedding applications the paper's
// introduction lists): train EHNA on a community-structured social
// network, project the embeddings to 2-D with PCA, and write a TSV
// (x, y, community, degree) ready for any plotting tool. Also prints a
// quantitative check: 2-D community separation vs. random embeddings.
#include <cstdio>
#include <fstream>

#include "core/model.h"
#include "graph/generators/generators.h"
#include "nn/init.h"
#include "nn/pca.h"

namespace {

using namespace ehna;

/// Mean within-community distance divided by mean cross-community distance
/// in the 2-D projection (lower = better separated).
double SeparationRatio(const Tensor& xy, const std::vector<int>& community,
                       Rng* rng) {
  double within = 0.0, cross = 0.0;
  int within_n = 0, cross_n = 0;
  for (int s = 0; s < 20000; ++s) {
    const NodeId a = static_cast<NodeId>(rng->UniformInt(xy.rows()));
    const NodeId b = static_cast<NodeId>(rng->UniformInt(xy.rows()));
    if (a == b) continue;
    const double dx = xy.at(a, 0) - xy.at(b, 0);
    const double dy = xy.at(a, 1) - xy.at(b, 1);
    const double d = std::sqrt(dx * dx + dy * dy);
    if (community[a] == community[b]) {
      within += d;
      ++within_n;
    } else {
      cross += d;
      ++cross_n;
    }
  }
  return (within / within_n) / (cross / cross_n);
}

}  // namespace

int main() {
  SocialGraphOptions gen;
  gen.num_nodes = 240;
  gen.num_edges = 1800;
  gen.num_communities = 8;
  gen.intra_community_prob = 0.9;
  gen.seed = 5;
  auto graph_or = MakeSocialGraph(gen);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  TemporalGraph graph = std::move(graph_or).value();

  // Recover the generator's community assignment for coloring: nodes were
  // assigned round-robin over a shuffled order, so re-derive by majority of
  // neighbors is unnecessary — we simply re-run the assignment logic via a
  // majority vote over each node's neighbors after training instead. For
  // the demo we approximate community labels by connected majority:
  // initialize by node id buckets and refine with neighbor majority votes.
  std::vector<int> community(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    community[v] = static_cast<int>(v) % gen.num_communities;
  }
  for (int round = 0; round < 10; ++round) {
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      std::vector<int> votes(gen.num_communities, 0);
      for (const auto& a : graph.Neighbors(v)) ++votes[community[a.neighbor]];
      int best = community[v];
      for (int c = 0; c < gen.num_communities; ++c) {
        if (votes[c] > votes[best]) best = c;
      }
      community[v] = best;
    }
  }

  EhnaConfig cfg;
  cfg.dim = 16;
  cfg.num_walks = 4;
  cfg.walk_length = 5;
  cfg.num_negatives = 2;
  cfg.epochs = 3;
  cfg.population_batchnorm = true;  // community graphs need 2-hop signal.
  cfg.embedding_lr_multiplier = 5.0f;
  EhnaModel model(&graph, cfg);
  model.Train();
  const Tensor emb = model.FinalizeEmbeddings();

  Rng rng(9);
  auto pca = ComputePca(emb, 2, &rng);
  if (!pca.ok()) {
    std::fprintf(stderr, "%s\n", pca.status().ToString().c_str());
    return 1;
  }
  const Tensor& xy = pca.value().projected;

  const char* out_path = "embedding_projection.tsv";
  {
    std::ofstream out(out_path);
    out << "node\tx\ty\tcommunity\tdegree\n";
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      out << v << "\t" << xy.at(v, 0) << "\t" << xy.at(v, 1) << "\t"
          << community[v] << "\t" << graph.Degree(v) << "\n";
    }
  }

  Tensor random(graph.num_nodes(), 2);
  UniformInit(&random, -1.0f, 1.0f, &rng);
  const double trained_ratio = SeparationRatio(xy, community, &rng);
  const double random_ratio = SeparationRatio(random, community, &rng);

  std::printf("wrote %u projected nodes to %s\n", graph.num_nodes(), out_path);
  std::printf("within/cross community distance ratio: trained %.3f vs "
              "random %.3f (lower = clearer community layout)\n",
              trained_ratio, random_ratio);
  std::printf("explained variance: PC1 %.4f, PC2 %.4f\n",
              pca.value().explained_variance[0],
              pca.value().explained_variance[1]);
  return 0;
}
