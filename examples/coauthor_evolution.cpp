// A pedagogical walkthrough of the paper's motivating example (Figures 1
// and 2): the temporal ego-network of author "1", whose collaborations
// evolve from a Ph.D. supervisor (node 3) toward a new community reached
// through indirect ties (nodes 4-8). The example shows what the temporal
// random walk and the attention coefficients "see" when analyzing the
// formation of the most recent edge (1, 7) in 2018.
#include <cstdio>
#include <map>

#include "core/attention.h"
#include "graph/temporal_graph.h"
#include "walk/temporal_walk.h"

int main() {
  using namespace ehna;

  // The co-author network of the paper's Figure 1. Edge years are used as
  // raw timestamps; nodes are 1..8 (0 unused).
  std::vector<TemporalEdge> edges{
      {1, 2, 2011, 1.0f}, {1, 3, 2011, 1.0f}, {2, 3, 2012, 1.0f},
      {1, 4, 2013, 1.0f}, {4, 5, 2014, 1.0f}, {1, 5, 2015, 1.0f},
      {5, 8, 2016, 1.0f}, {1, 6, 2016, 1.0f}, {6, 7, 2017, 1.0f},
      {8, 7, 2017, 1.0f}, {1, 7, 2018, 1.0f},
  };
  auto graph_or = TemporalGraph::FromEdges(edges, /*num_nodes=*/9);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  const TemporalGraph graph = std::move(graph_or).value();

  std::printf("Ego network of author 1 (paper Figure 1): %zu timestamped "
              "co-authorships, 2011-2018\n\n", graph.num_edges());

  // Without temporal information nodes 2,3 and 4,6,7 look alike: they are
  // all direct neighbors of 1. The historical prefix shows the drift.
  for (Timestamp cutoff : {2012.0, 2015.0, 2018.0}) {
    std::printf("collaborators of author 1 up to %.0f:", cutoff);
    for (const auto& a : graph.NeighborsBefore(1, cutoff)) {
      std::printf("  %u(@%.0f)", a.neighbor, a.time);
    }
    std::printf("\n");
  }

  // Analyze the formation of edge (1, 7) at t=2018 the way EHNA does:
  // temporal random walks from node 1 restricted to its history.
  TemporalWalkConfig cfg;
  cfg.walk_length = 6;
  cfg.num_walks = 2000;
  cfg.decay_rate = 5.0;
  TemporalWalkSampler sampler(&graph, cfg);
  Rng rng(1);

  std::map<NodeId, int> visits;
  Walk sample_walk;
  for (int i = 0; i < cfg.num_walks; ++i) {
    Walk w = sampler.SampleWalk(1, 2018.0, &rng);
    if (i == 0) sample_walk = w;
    for (size_t j = 1; j < w.size(); ++j) ++visits[w[j].node];
  }

  std::printf("\ntemporal-walk visit frequency from author 1 at t=2018 "
              "(2000 walks):\n");
  for (const auto& [node, count] : visits) {
    std::printf("  node %u: %5.1f%%  %s\n", node,
                100.0 * count / static_cast<double>(cfg.num_walks * 2),
                node == 5 ? "<- indirectly relevant broker (paper's node 5)"
                          : "");
  }
  std::printf("note: recent collaborators (5,6,8) dominate; the 2011 "
              "connections (2,3) are reachable but heavily decayed.\n");

  // Node-level attention coefficients (Eq. 3) for one sampled walk.
  std::printf("\none sampled walk and its attention coefficients c_v "
              "(smaller c_v => more attention):\n  ");
  const auto coeffs = NodeAttentionCoefficients(sample_walk, graph.min_time(),
                                                graph.TimeSpan());
  for (size_t j = 0; j < sample_walk.size(); ++j) {
    std::printf("%u(c=%.2f)%s", sample_walk[j].node, coeffs[j],
                j + 1 < sample_walk.size() ? " -> " : "\n");
  }
  std::printf("walk-level coefficient a_r = %.3f (Eq. 4)\n",
              WalkAttentionCoefficient(coeffs));
  return 0;
}
