// Out-of-core workflow entry point: converts a text edge list (or a
// synthetic scale-generator graph) into the EHNL binary edge log, and
// inspects / smoke-tests existing logs. The log is the on-disk form that
// TemporalGraph::FromEdgeLog memory-maps, so this is how a 10⁷-edge graph
// gets from "dump on disk" to "training-ready" without ever holding two
// copies in RAM. See README.md "Out-of-core graphs" and DESIGN.md §12.
//
// Usage:
//   edge_log_convert --input=edges.txt --output=graph.ehnl [--directed]
//   edge_log_convert --generate=scale --nodes=1000000 --edges=10000000
//                    --seed=1 --output=graph.ehnl
//   edge_log_convert --info=graph.ehnl
//   edge_log_convert --info=graph.ehnl --walk-smoke=64
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "graph/edge_log.h"
#include "graph/edgelist_io.h"
#include "graph/generators/generators.h"
#include "graph/temporal_graph.h"
#include "util/rng.h"
#include "walk/temporal_walk.h"

namespace {

using namespace ehna;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Args {
  std::string input;
  std::string generate;
  std::string output;
  std::string info;
  uint64_t nodes = 1'000'000;
  uint64_t edges = 10'000'000;
  uint64_t seed = 1;
  int walk_smoke = 0;
  bool directed = false;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  edge_log_convert --input=EDGES.txt --output=LOG.ehnl [--directed]\n"
      "  edge_log_convert --generate=scale --nodes=N --edges=M --seed=S "
      "--output=LOG.ehnl\n"
      "  edge_log_convert --info=LOG.ehnl [--walk-smoke=K]\n");
  return 2;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

/// --input: parse a text edge list, time-sort it, stream it into the log.
int ConvertTextList(const Args& args) {
  const auto start = std::chrono::steady_clock::now();
  auto edges_or = ReadEdgeList(args.input);
  if (!edges_or.ok()) return Fail(edges_or.status());
  auto edges = std::move(edges_or).value();

  std::stable_sort(edges.begin(), edges.end(),
                   [](const TemporalEdge& a, const TemporalEdge& b) {
                     return a.time < b.time;
                   });
  NodeId max_id = 0;
  for (const auto& e : edges) max_id = std::max(max_id, std::max(e.src, e.dst));
  const NodeId num_nodes = edges.empty() ? 0 : max_id + 1;

  const Status st = WriteEdgeLog(args.output, edges, num_nodes, args.directed);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s: %zu edges, %u nodes, %s (%.2f s)\n",
              args.output.c_str(), edges.size(), num_nodes,
              args.directed ? "directed" : "undirected",
              SecondsSince(start));
  return 0;
}

/// --generate=scale: stream the synthetic generator straight into the log.
/// No edge vector exists at any point, so peak memory is the recency window
/// regardless of --edges.
int GenerateScale(const Args& args) {
  const auto start = std::chrono::steady_clock::now();
  ScaleGraphOptions opt;
  opt.num_nodes = static_cast<NodeId>(args.nodes);
  opt.num_edges = args.edges;
  opt.seed = args.seed;

  auto writer_or =
      EdgeLogWriter::Create(args.output, opt.num_nodes, /*directed=*/false);
  if (!writer_or.ok()) return Fail(writer_or.status());
  EdgeLogWriter& writer = writer_or.value();
  Status st = StreamScaleGraph(
      opt, [&](const TemporalEdge& e) { return writer.Append(e); });
  if (st.ok()) st = writer.Finish();
  if (!st.ok()) return Fail(st);

  const double secs = SecondsSince(start);
  std::printf("generated %s: %llu edges, %llu nodes, seed %llu "
              "(%.2f s, %.2f Medges/s)\n",
              args.output.c_str(),
              static_cast<unsigned long long>(args.edges),
              static_cast<unsigned long long>(args.nodes),
              static_cast<unsigned long long>(args.seed), secs,
              static_cast<double>(args.edges) / secs / 1e6);
  return 0;
}

/// --info: mmap-validate the log, print its shape, optionally mmap-build
/// the graph and run a short walk pass over it (--walk-smoke=K anchors).
int Inspect(const Args& args) {
  auto reader_or = EdgeLogReader::Open(args.info);
  if (!reader_or.ok()) return Fail(reader_or.status());
  const EdgeLogReader& reader = reader_or.value();
  std::printf("%s: %llu edges, %u nodes, %s, valid (header+payload CRC ok)\n",
              args.info.c_str(),
              static_cast<unsigned long long>(reader.num_edges()),
              reader.num_nodes(),
              reader.directed() ? "directed" : "undirected");
  if (args.walk_smoke <= 0) return 0;

  auto start = std::chrono::steady_clock::now();
  auto graph_or = TemporalGraph::FromEdgeLog(reader);
  if (!graph_or.ok()) return Fail(graph_or.status());
  const TemporalGraph& g = graph_or.value();
  std::printf("CSR build from mapping: %.2f s\n", SecondsSince(start));

  TemporalWalkConfig wcfg;
  TemporalWalkSampler sampler(&g, wcfg);
  std::vector<TemporalWalkSampler::Anchor> anchors;
  Rng rng(args.seed);
  for (int i = 0; i < args.walk_smoke; ++i) {
    anchors.push_back({static_cast<NodeId>(rng.UniformInt(g.num_nodes())),
                       rng.Uniform(g.min_time(), g.max_time())});
  }
  start = std::chrono::steady_clock::now();
  const auto walks = sampler.SampleWalksBatch(anchors, args.seed, nullptr);
  size_t steps = 0;
  for (const auto& per_anchor : walks) {
    for (const auto& w : per_anchor) steps += w.size();
  }
  std::printf("walk smoke: %d anchors x %d walks, %zu total steps (%.2f s)\n",
              args.walk_smoke, wcfg.num_walks, steps, SecondsSince(start));
  return steps > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParseFlag(arg, "input", &args.input) ||
        ParseFlag(arg, "generate", &args.generate) ||
        ParseFlag(arg, "output", &args.output) ||
        ParseFlag(arg, "info", &args.info)) {
      continue;
    } else if (ParseFlag(arg, "nodes", &value)) {
      args.nodes = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "edges", &value)) {
      args.edges = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "seed", &value)) {
      args.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "walk-smoke", &value)) {
      args.walk_smoke = std::atoi(value.c_str());
    } else if (arg == "--directed") {
      args.directed = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage();
    }
  }

  if (!args.info.empty()) return Inspect(args);
  if (!args.generate.empty()) {
    if (args.generate != "scale" || args.output.empty()) return Usage();
    return GenerateScale(args);
  }
  if (!args.input.empty() && !args.output.empty()) return ConvertTextList(args);
  return Usage();
}
