// Streaming/evolving-network workflow, serving edition: train ONCE on the
// warmup history, checkpoint, and hand the model to an EmbeddingServer.
// Interactions then arrive as a live stream — the server ingests each edge
// into its dynamic overlay, incrementally re-finalizes only the affected
// nodes' embeddings, and keeps answering nearest-neighbor queries
// throughout. After each wave we test how well the *currently served*
// embeddings anticipate the next wave of edges — rolling future-link
// prediction, the deployment pattern the paper's introduction motivates
// (recommendation over evolving graphs) — without ever retraining.
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/model.h"
#include "eval/metrics.h"
#include "graph/generators/generators.h"
#include "graph/graph_builder.h"
#include "serve/embedding_server.h"

int main() {
  using namespace ehna;

  // The "stream": a DBLP-like network's chronological edge list.
  CoauthorGraphOptions gen;
  gen.num_papers = 900;
  gen.seed = 3;
  auto full_or = MakeCoauthorGraph(gen);
  if (!full_or.ok()) {
    std::fprintf(stderr, "%s\n", full_or.status().ToString().c_str());
    return 1;
  }
  const TemporalGraph full = std::move(full_or).value();
  const auto& stream = full.edges();
  std::printf("stream: %zu timestamped edges over %u nodes\n\n",
              stream.size(), full.num_nodes());

  const size_t waves = 4;
  const size_t warmup = stream.size() / 2;
  const size_t wave_size = (stream.size() - warmup) / waves;

  // ---- Offline: train on the warmup prefix and checkpoint. -------------
  TemporalGraphBuilder builder;
  builder.ReserveNodes(full.num_nodes());
  for (size_t i = 0; i < warmup; ++i) {
    const auto& e = stream[i];
    if (!builder.AddEdge(e.src, e.dst, e.time, e.weight).ok()) return 1;
  }
  auto warmup_or = builder.Build();
  if (!warmup_or.ok()) {
    std::fprintf(stderr, "%s\n", warmup_or.status().ToString().c_str());
    return 1;
  }
  TemporalGraph warmup_graph = std::move(warmup_or).value();

  EhnaConfig cfg;
  cfg.dim = 16;
  cfg.num_walks = 4;
  cfg.walk_length = 5;
  cfg.num_negatives = 2;
  cfg.epochs = 3;
  cfg.max_edges_per_epoch = 800;
  cfg.seed = 10;
  EhnaModel model(&warmup_graph, cfg);
  model.Train();
  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "ehna_streaming_demo.ehnc")
          .string();
  if (auto st = model.SaveCheckpoint(ckpt); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("trained on %zu warmup edges, checkpointed to %s\n",
              warmup_graph.num_edges(), ckpt.c_str());

  // ---- Online: load the checkpoint into a server and go live. ----------
  ServeOptions opt;
  opt.config = cfg;
  opt.refresh_batch = 64;  // auto-refresh every 64 ingested edges.
  auto server_or = EmbeddingServer::Load(ckpt, warmup_graph, opt);
  if (!server_or.ok()) {
    std::fprintf(stderr, "%s\n", server_or.status().ToString().c_str());
    return 1;
  }
  EmbeddingServer& server = *server_or.value();
  std::printf("serving %zu nodes (ANN over %zu-dim embeddings)\n\n",
              server.num_nodes(), static_cast<size_t>(cfg.dim));

  size_t consumed = warmup;
  for (size_t wave = 0; wave < waves; ++wave) {
    // Score the next wave BEFORE ingesting it: do upcoming edges rank above
    // random non-edges under the served similarity?
    Rng rng(20 + wave);
    std::vector<double> scores;
    std::vector<int> labels;
    const size_t wave_end = std::min(consumed + wave_size, stream.size());
    const size_t servable = server.num_nodes();
    for (size_t i = consumed; i < wave_end; ++i) {
      // Only pairs the server can already serve are scorable — an embedding
      // cannot anticipate a node it has never seen.
      if (stream[i].src >= servable || stream[i].dst >= servable) continue;
      auto pos = server.LinkScore(stream[i].src, stream[i].dst);
      if (!pos.ok()) continue;
      scores.push_back(pos.value());
      labels.push_back(1);
      // One random non-edge per positive.
      for (int attempt = 0; attempt < 100; ++attempt) {
        const NodeId u = static_cast<NodeId>(rng.UniformInt(servable));
        const NodeId v = static_cast<NodeId>(rng.UniformInt(servable));
        if (u == v || full.HasEdge(u, v)) continue;
        auto neg = server.LinkScore(u, v);
        if (!neg.ok()) break;
        scores.push_back(neg.value());
        labels.push_back(0);
        break;
      }
    }
    auto auc = AreaUnderRoc(scores, labels);

    // Now ingest the wave through the server (auto-refreshing as batches
    // fill) and flush the remainder.
    for (size_t i = consumed; i < wave_end; ++i) {
      if (!server.Ingest(stream[i]).ok()) return 1;
    }
    consumed = wave_end;
    if (!server.Refresh().ok()) return 1;

    const auto stats = server.stats();
    std::printf(
        "wave %zu: next-wave AUC %s | ingested %llu edges, "
        "%llu refreshes re-finalized %llu node embeddings\n",
        wave + 1, auc.ok() ? std::to_string(auc.value()).c_str() : "n/a",
        static_cast<unsigned long long>(stats.ingested_edges),
        static_cast<unsigned long long>(stats.refreshes),
        static_cast<unsigned long long>(stats.refreshed_nodes));
  }

  // A taste of the query side: live nearest neighbors for one node.
  const NodeId probe = 0;
  auto nbrs = server.Query(probe, 5);
  if (nbrs.ok()) {
    std::printf("\nlive top-5 neighbors of node %u:", probe);
    for (const Neighbor& nb : nbrs.value()) {
      std::printf(" %u(%.3f)", nb.node, nb.score);
    }
    std::printf("\n");
  }
  std::printf(
      "\n(one offline training run; every wave is absorbed by incremental "
      "refresh — only nodes near new edges are re-finalized, queries stay "
      "online throughout. AUC above 0.5 means the served embeddings "
      "anticipate upcoming interactions.)\n");
  std::filesystem::remove(ckpt);
  return 0;
}
