// Streaming/evolving-network workflow: interactions arrive over time, and
// the application periodically refreshes embeddings from the accumulated
// history using TemporalGraphBuilder snapshots. After each refresh we test
// how well the *current* embeddings anticipate the next wave of edges —
// i.e. rolling future-link prediction, the deployment pattern the paper's
// introduction motivates (recommendation over evolving graphs).
#include <cstdio>

#include "core/model.h"
#include "eval/metrics.h"
#include "graph/generators/generators.h"
#include "graph/graph_builder.h"

int main() {
  using namespace ehna;

  // The "stream": a DBLP-like network's chronological edge list.
  CoauthorGraphOptions gen;
  gen.num_papers = 900;
  gen.seed = 3;
  auto full_or = MakeCoauthorGraph(gen);
  if (!full_or.ok()) {
    std::fprintf(stderr, "%s\n", full_or.status().ToString().c_str());
    return 1;
  }
  const TemporalGraph full = std::move(full_or).value();
  const auto& stream = full.edges();
  std::printf("stream: %zu timestamped edges over %u nodes\n\n",
              stream.size(), full.num_nodes());

  TemporalGraphBuilder builder;
  builder.ReserveNodes(full.num_nodes());

  const size_t waves = 4;
  const size_t warmup = stream.size() / 2;
  const size_t wave_size = (stream.size() - warmup) / waves;

  size_t consumed = 0;
  auto ingest = [&](size_t count) {
    for (size_t i = 0; i < count && consumed < stream.size(); ++i, ++consumed) {
      const auto& e = stream[consumed];
      if (!builder.AddEdge(e.src, e.dst, e.time, e.weight).ok()) return;
    }
  };
  ingest(warmup);

  for (size_t wave = 0; wave < waves; ++wave) {
    // Refresh embeddings from everything seen so far.
    auto snapshot_or = builder.Build();
    if (!snapshot_or.ok()) {
      std::fprintf(stderr, "%s\n", snapshot_or.status().ToString().c_str());
      return 1;
    }
    TemporalGraph snapshot = std::move(snapshot_or).value();

    EhnaConfig cfg;
    cfg.dim = 16;
    cfg.num_walks = 4;
    cfg.walk_length = 5;
    cfg.num_negatives = 2;
    cfg.epochs = 3;
    cfg.max_edges_per_epoch = 800;
    cfg.seed = 10 + wave;
    EhnaModel model(&snapshot, cfg);
    model.Train();
    const Tensor emb = model.FinalizeEmbeddings();

    // Score the next wave before ingesting it: do upcoming edges rank above
    // random non-edges under -||z_u - z_v||^2?
    Rng rng(20 + wave);
    std::vector<double> scores;
    std::vector<int> labels;
    const size_t wave_end = std::min(consumed + wave_size, stream.size());
    auto pair_score = [&](NodeId u, NodeId v) {
      double d = 0.0;
      for (int64_t j = 0; j < emb.cols(); ++j) {
        const double diff = emb.at(u, j) - emb.at(v, j);
        d += diff * diff;
      }
      return -d;
    };
    for (size_t i = consumed; i < wave_end; ++i) {
      // Only pairs whose endpoints existed in the snapshot are scorable —
      // an embedding cannot anticipate a node it has never seen.
      if (snapshot.Degree(stream[i].src) == 0 ||
          snapshot.Degree(stream[i].dst) == 0) {
        continue;
      }
      scores.push_back(pair_score(stream[i].src, stream[i].dst));
      labels.push_back(1);
      // One random non-edge per positive.
      for (int attempt = 0; attempt < 100; ++attempt) {
        const NodeId u = static_cast<NodeId>(rng.UniformInt(full.num_nodes()));
        const NodeId v = static_cast<NodeId>(rng.UniformInt(full.num_nodes()));
        if (u == v || full.HasEdge(u, v)) continue;
        scores.push_back(pair_score(u, v));
        labels.push_back(0);
        break;
      }
    }
    auto auc = AreaUnderRoc(scores, labels);
    std::printf("wave %zu: trained on %zu edges, next-wave AUC %s\n",
                wave + 1, snapshot.num_edges(),
                auc.ok() ? std::to_string(auc.value()).c_str() : "n/a");
    ingest(wave_size);
  }
  std::printf("\n(each refresh retrains on strictly more history and is "
              "scored on edges between already-seen nodes; AUC above 0.5 "
              "means the embeddings anticipate upcoming interactions.)\n");
  return 0;
}
