// Interactive embedding-serving demo: trains a small EHNA model on a
// generated co-author network, checkpoints it, loads the checkpoint into an
// EmbeddingServer, and then speaks a line protocol on stdin:
//
//   INGEST <u> <v> <t> [w]   append a timestamped edge to the live overlay
//   QUERY <v> [k]            ANN top-k nearest neighbors of node v
//   EXACT <v> [k]            exact-scan top-k (the recall oracle)
//   SCORE <u> <v>            link score between two nodes
//   REFRESH                  compact + incrementally re-finalize affected nodes
//   STATS                    server counters
//   QUIT                     exit
//
// `serve_demo --smoke` instead runs a scripted end-to-end check (used by
// CI): ingest a stream of edges, refresh, and verify the served embeddings
// against a from-scratch offline recompute — bitwise for refreshed nodes —
// plus ANN-vs-exact agreement. Exits non-zero on any mismatch.
//
// `--precision=fp32|int8|bf16` selects the serving read-path tier
// (DESIGN.md §14). Under a quantized tier the smoke additionally verifies
// that the server's quantized mirror is byte-identical to quantizing the
// served fp32 matrix offline, and that the quantized exact scan agrees
// with the fp32 oracle at recall@10 >= 0.99.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/inference.h"
#include "core/model.h"
#include "graph/generators/generators.h"
#include "serve/embedding_server.h"

namespace {

using namespace ehna;

struct TrainedServer {
  TemporalGraph graph;
  EhnaConfig cfg;
  std::string ckpt;
  std::unique_ptr<EmbeddingServer> server;
};

bool BuildServer(TrainedServer* out, size_t refresh_batch, size_t nprobe = 0,
                 ServePrecision precision = ServePrecision::kFp32) {
  CoauthorGraphOptions gen;
  gen.num_papers = 600;
  gen.seed = 5;
  auto graph_or = MakeCoauthorGraph(gen);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return false;
  }
  out->graph = std::move(graph_or).value();

  out->cfg.dim = 16;
  out->cfg.num_walks = 4;
  out->cfg.walk_length = 5;
  out->cfg.num_negatives = 2;
  out->cfg.epochs = 2;
  out->cfg.max_edges_per_epoch = 600;
  out->cfg.seed = 12;

  std::fprintf(stderr, "training on %zu edges / %u nodes...\n",
               out->graph.num_edges(), out->graph.num_nodes());
  EhnaModel model(&out->graph, out->cfg);
  model.Train();
  out->ckpt =
      (std::filesystem::temp_directory_path() / "ehna_serve_demo.ehnc")
          .string();
  if (auto st = model.SaveCheckpoint(out->ckpt); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return false;
  }

  ServeOptions opt;
  opt.config = out->cfg;
  opt.refresh_batch = refresh_batch;
  opt.ann.nprobe = nprobe;
  opt.precision = precision;
  auto server_or = EmbeddingServer::Load(out->ckpt, out->graph, opt);
  if (!server_or.ok()) {
    std::fprintf(stderr, "%s\n", server_or.status().ToString().c_str());
    return false;
  }
  out->server = std::move(server_or).value();
  std::fprintf(stderr, "serving %zu nodes\n", out->server->num_nodes());
  return true;
}

void PrintNeighbors(const Result<std::vector<Neighbor>>& res) {
  if (!res.ok()) {
    std::printf("ERR %s\n", res.status().ToString().c_str());
    return;
  }
  std::printf("OK");
  for (const Neighbor& nb : res.value()) {
    std::printf(" %u:%.6f", nb.node, nb.score);
  }
  std::printf("\n");
}

int RunRepl(ServePrecision precision) {
  TrainedServer ts;
  if (!BuildServer(&ts, /*refresh_batch=*/256, /*nprobe=*/0, precision)) {
    return 1;
  }
  EmbeddingServer& server = *ts.server;
  std::fprintf(stderr,
               "commands: INGEST u v t [w] | QUERY v [k] | EXACT v [k] | "
               "SCORE u v | REFRESH | STATS | QUIT\n");

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "QUIT" || cmd == "quit") break;
    if (cmd == "INGEST" || cmd == "ingest") {
      NodeId u, v;
      double t;
      float w = 1.0f;
      if (!(in >> u >> v >> t)) {
        std::printf("ERR usage: INGEST u v t [w]\n");
        continue;
      }
      in >> w;
      Status st = server.Ingest({u, v, t, w});
      std::printf("%s\n", st.ok() ? "OK" : ("ERR " + st.ToString()).c_str());
    } else if (cmd == "QUERY" || cmd == "query" || cmd == "EXACT" ||
               cmd == "exact") {
      NodeId v;
      size_t k = 10;
      if (!(in >> v)) {
        std::printf("ERR usage: %s v [k]\n", cmd.c_str());
        continue;
      }
      in >> k;
      const bool exact = (cmd == "EXACT" || cmd == "exact");
      PrintNeighbors(exact ? server.QueryExact(v, k) : server.Query(v, k));
    } else if (cmd == "SCORE" || cmd == "score") {
      NodeId u, v;
      if (!(in >> u >> v)) {
        std::printf("ERR usage: SCORE u v\n");
        continue;
      }
      auto score = server.LinkScore(u, v);
      if (score.ok()) {
        std::printf("OK %.6f\n", score.value());
      } else {
        std::printf("ERR %s\n", score.status().ToString().c_str());
      }
    } else if (cmd == "REFRESH" || cmd == "refresh") {
      Status st = server.Refresh();
      std::printf("%s\n", st.ok() ? "OK" : ("ERR " + st.ToString()).c_str());
    } else if (cmd == "STATS" || cmd == "stats") {
      const auto s = server.stats();
      std::printf("OK ingested=%llu pending=%llu refreshes=%llu "
                  "refreshed_nodes=%llu queries=%llu nodes=%llu edges=%llu\n",
                  static_cast<unsigned long long>(s.ingested_edges),
                  static_cast<unsigned long long>(s.pending_edges),
                  static_cast<unsigned long long>(s.refreshes),
                  static_cast<unsigned long long>(s.refreshed_nodes),
                  static_cast<unsigned long long>(s.queries),
                  static_cast<unsigned long long>(s.num_nodes),
                  static_cast<unsigned long long>(s.num_edges));
    } else {
      std::printf("ERR unknown command %s\n", cmd.c_str());
    }
  }
  std::filesystem::remove(ts.ckpt);
  return 0;
}

// Byte-level equality of two quantized mirrors (codes + per-row metadata).
bool SameQuantizedBytes(const QuantizedMatrix& a, const QuantizedMatrix& b) {
  if (a.precision() != b.precision() || a.rows() != b.rows() ||
      a.dim() != b.dim()) {
    return false;
  }
  const size_t n = static_cast<size_t>(a.rows());
  const size_t nd = n * static_cast<size_t>(a.dim());
  switch (a.precision()) {
    case ServePrecision::kInt8:
      if (std::memcmp(a.DataI8(), b.DataI8(), nd) != 0) return false;
      for (size_t r = 0; r < n; ++r) {
        const float as = a.scale(static_cast<int64_t>(r));
        const float bs = b.scale(static_cast<int64_t>(r));
        if (std::memcmp(&as, &bs, sizeof(float)) != 0) return false;
        if (a.sqnorm_i32(static_cast<int64_t>(r)) !=
            b.sqnorm_i32(static_cast<int64_t>(r))) {
          return false;
        }
      }
      return true;
    case ServePrecision::kBf16:
      if (std::memcmp(a.DataBf16(), b.DataBf16(), nd * 2) != 0) return false;
      for (size_t r = 0; r < n; ++r) {
        const double an = a.sqnorm(static_cast<int64_t>(r));
        const double bn = b.sqnorm(static_cast<int64_t>(r));
        if (std::memcmp(&an, &bn, sizeof(double)) != 0) return false;
      }
      return true;
    case ServePrecision::kFp32:
      return true;
  }
  return false;
}

// Scripted end-to-end check for CI: every claim the serving subsystem makes
// is verified against a from-scratch offline recompute.
int RunSmoke(ServePrecision precision) {
  TrainedServer ts;
  // Manual refresh only, so ALL affected nodes are re-finalized against the
  // final graph — the precondition for exact offline comparison. The demo
  // graph is tiny (a few hundred nodes, ~15 IVF cells), so probe half the
  // cells; the default nlist/4 is tuned for serving-scale indexes.
  if (!BuildServer(&ts, /*refresh_batch=*/0, /*nprobe=*/8, precision)) {
    return 1;
  }
  EmbeddingServer& server = *ts.server;
  const NodeId n = ts.graph.num_nodes();
  const Tensor before = server.ServingEmbeddings();

  // Stream fresh interactions (existing nodes, post-training timestamps).
  Rng rng(77);
  std::vector<TemporalEdge> all_edges = ts.graph.edges();
  std::vector<TemporalEdge> stream;
  const Timestamp t0 = ts.graph.max_time();
  while (stream.size() < 10'000) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(uint64_t{n}));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(uint64_t{n}));
    if (u == v) continue;
    const TemporalEdge e{u, v, t0 + 1.0 + static_cast<double>(stream.size())};
    stream.push_back(e);
    all_edges.push_back(e);
  }
  for (const TemporalEdge& e : stream) {
    if (!server.Ingest(e).ok()) {
      std::fprintf(stderr, "smoke: ingest failed\n");
      return 1;
    }
  }
  if (!server.Refresh().ok()) {
    std::fprintf(stderr, "smoke: refresh failed\n");
    return 1;
  }
  const Tensor after = server.ServingEmbeddings();

  // Offline oracle: restore the same checkpoint, point the inference engine
  // at the full graph rebuilt from scratch, re-finalize everything.
  auto full_or = TemporalGraph::FromEdges(all_edges, n, ts.graph.directed());
  if (!full_or.ok()) return 1;
  EhnaModel offline(&ts.graph, ts.cfg);
  if (!offline.RestoreCheckpoint(ts.ckpt).ok()) return 1;
  InferenceEngine engine(&ts.graph, offline.embedding(), offline.aggregator(),
                         ts.cfg);
  engine.RebindGraph(&full_or.value());
  std::vector<NodeId> all_nodes(n);
  std::iota(all_nodes.begin(), all_nodes.end(), NodeId{0});
  Tensor oracle(n, ts.cfg.dim);
  engine.RefreshInto(all_nodes, &oracle);

  std::set<NodeId> endpoints;
  for (const TemporalEdge& e : stream) {
    endpoints.insert(e.src);
    endpoints.insert(e.dst);
  }
  const size_t row_bytes = static_cast<size_t>(ts.cfg.dim) * sizeof(float);
  size_t fresh = 0, stale = 0;
  for (NodeId v = 0; v < n; ++v) {
    const bool matches_oracle =
        std::memcmp(after.Row(v), oracle.Row(v), row_bytes) == 0;
    if (endpoints.count(v) && !matches_oracle) {
      std::fprintf(stderr,
                   "smoke: endpoint %u served bytes differ from offline "
                   "recompute\n", v);
      return 1;
    }
    if (matches_oracle) {
      ++fresh;
    } else if (std::memcmp(after.Row(v), before.Row(v), row_bytes) == 0) {
      ++stale;  // allowed: boundedly stale, still the pre-ingest bytes.
    } else {
      std::fprintf(stderr,
                   "smoke: node %u neither fresh nor pre-ingest\n", v);
      return 1;
    }
  }

  // ANN sanity: top-1 of a sample of nodes agrees with the exact scan.
  size_t agree = 0, tried = 0;
  for (NodeId v = 0; v < n; v += 17) {
    auto approx = server.Query(v, 1);
    auto exact = server.QueryExact(v, 1);
    if (!approx.ok() || !exact.ok() || approx.value().empty()) continue;
    ++tried;
    if (approx.value()[0].node == exact.value()[0].node) ++agree;
  }
  if (tried == 0 || agree * 10 < tried * 9) {
    std::fprintf(stderr, "smoke: ANN top-1 agreement %zu/%zu below 90%%\n",
                 agree, tried);
    return 1;
  }

  // Quantized tier: the mirror the server queries through must be exactly
  // what quantizing the served fp32 matrix offline produces (RequantizeRow
  // is a pure per-row function, so incremental refresh and full
  // re-quantization agree byte-for-byte), and the quantized exact scan
  // must find (nearly) the same neighbors as the fp32 oracle.
  size_t q_hits = 0, q_total = 0;
  if (precision != ServePrecision::kFp32) {
    const QuantizedMatrix mirror = server.QuantizedServingSnapshot();
    const QuantizedMatrix offline_q =
        QuantizedMatrix::FromTensor(after, precision);
    if (!SameQuantizedBytes(mirror, offline_q)) {
      std::fprintf(stderr,
                   "smoke: served quantized mirror differs from offline "
                   "re-quantization of the serving matrix\n");
      return 1;
    }
    for (NodeId v = 0; v < n; v += 7) {
      auto quant = server.QueryExact(v, 10);
      auto oracle_nn = server.QueryExactFp32(v, 10);
      if (!quant.ok() || !oracle_nn.ok()) continue;
      std::set<NodeId> truth;
      for (const Neighbor& nb : oracle_nn.value()) truth.insert(nb.node);
      q_total += truth.size();
      for (const Neighbor& nb : quant.value()) q_hits += truth.count(nb.node);
    }
    if (q_total == 0 || static_cast<double>(q_hits) <
                            0.99 * static_cast<double>(q_total)) {
      std::fprintf(stderr,
                   "smoke: quantized exact-scan recall@10 %zu/%zu below "
                   "0.99\n", q_hits, q_total);
      return 1;
    }
  }

  const auto stats = server.stats();
  std::printf(
      "smoke OK (%s): %zu edges ingested, %llu nodes re-finalized "
      "(%zu fresh / %zu stale of %u), ANN top-1 agreement %zu/%zu",
      ServePrecisionName(precision), stream.size(),
      static_cast<unsigned long long>(stats.refreshed_nodes), fresh, stale, n,
      agree, tried);
  if (precision != ServePrecision::kFp32) {
    std::printf(", quantized recall@10 %zu/%zu", q_hits, q_total);
  }
  std::printf("\n");
  std::filesystem::remove(ts.ckpt);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  ServePrecision precision = ServePrecision::kFp32;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--precision=", 12) == 0) {
      auto p = ParseServePrecision(argv[i] + 12);
      if (!p.ok()) {
        std::fprintf(stderr, "%s\n", p.status().ToString().c_str());
        return 2;
      }
      precision = p.value();
    } else {
      std::fprintf(stderr, "usage: serve_demo [--smoke] "
                   "[--precision=fp32|int8|bf16]\n");
      return 2;
    }
  }
  if (smoke) return RunSmoke(precision);
  return RunRepl(precision);
}
