#ifndef EHNA_CORE_AGGREGATOR_H_
#define EHNA_CORE_AGGREGATOR_H_

#include <memory>
#include <vector>

#include "core/ehna_config.h"
#include "graph/temporal_graph.h"
#include "nn/batchnorm.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "util/rng.h"
#include "walk/node2vec_walk.h"
#include "walk/temporal_walk.h"

namespace ehna {

/// Everything one Aggregate call would have drawn from the RNG, captured up
/// front so a batch of aggregations can run through one packed tape
/// (DESIGN.md §10). Produced by EhnaAggregator::PlanAggregation, which
/// consumes the RNG in exactly the order Aggregate would.
struct AggregationPlan {
  NodeId target = 0;
  Timestamp ref_time = 0;
  /// Sampled walks; empty selects the GraphSAGE-style fallback.
  std::vector<Walk> walks;
  /// Fallback: pre-sampled 2-hop neighborhood ids (empty for an isolated
  /// node, whose neighborhood summary is the zero vector).
  std::vector<NodeId> fallback_ids;
};

/// The historical-neighborhood aggregation network of Algorithm 1: samples
/// temporal random walks from a target node, applies node-level attention
/// (Eq. 3) + a stacked LSTM + BatchNorm + ReLU per walk, walk-level
/// attention (Eq. 4) + a stacked LSTM + BatchNorm across walks, and fuses
/// the neighborhood summary H with the node's own embedding through
/// z = normalize(W [H || e_x]).
///
/// Nodes with no historical neighborhood fall back to a GraphSAGE-style
/// mean over a sampled 2-hop neighborhood (§IV.D).
class EhnaAggregator {
 public:
  /// `graph` and `embedding` must outlive the aggregator.
  EhnaAggregator(const TemporalGraph* graph, Embedding* embedding,
                 const EhnaConfig& config, Rng* rng);

  /// Computes the aggregated embedding z_x (rank-1 [dim]) for `target`,
  /// analyzing history strictly before-or-at `ref_time`. `training` selects
  /// BatchNorm statistics mode.
  Var Aggregate(NodeId target, Timestamp ref_time, bool training, Rng* rng);

  /// Captures the walk/fallback sampling for one aggregation, consuming
  /// `rng` in exactly the order Aggregate(target, ref_time, ..., rng)
  /// would. Counters (agg.aggregations / agg.fallbacks) and the
  /// train.phase.walk_sampling trace region fire here, as they would in
  /// Aggregate.
  void PlanAggregation(NodeId target, Timestamp ref_time, Rng* rng,
                       AggregationPlan* plan);

  /// Computes every plan's z on ONE packed tape: all walk sequences run
  /// through a single length-bucketed masked LSTM pack per level, and every
  /// accumulation whose float order could depend on how many aggregations
  /// share the tape (LSTM/fuse weight grads, BatchNorm gamma/beta, the
  /// sparse embedding scatter) is deferred to a replay sentinel that fires
  /// once per call, in canonical reverse-plan order. Consequently losses
  /// and gradients are bitwise identical whether a caller packs one edge
  /// per call or a whole batch/shard per call. Returns one rank-1 [dim] Var
  /// per plan, in plan order. See DESIGN.md §10.
  std::vector<Var> AggregateBatch(const std::vector<AggregationPlan>& plans,
                                  bool training);

  /// All trainable dense parameters (LSTMs, BatchNorms, output projection).
  /// The embedding table updates sparsely through its own optimizer.
  /// The order is fixed by construction, so two aggregators built from the
  /// same config have positionally matching parameter lists — which is what
  /// the data-parallel trainer's replica sync/reduce relies on.
  std::vector<Var> Parameters() const;

  /// Redirects this aggregator's embedding gathers to `sink` (nullptr
  /// restores the embedding's internal accumulator). A worker replica sets
  /// its own sink so concurrent backward passes never share gradient state.
  void set_grad_sink(std::shared_ptr<SparseRowGrads> sink) {
    grad_sink_ = std::move(sink);
  }
  const std::shared_ptr<SparseRowGrads>& grad_sink() const {
    return grad_sink_;
  }

  /// The aggregator's BatchNorms ({node-level, walk-level}), exposed so the
  /// data-parallel trainer can sync/merge running statistics between the
  /// master and its worker replicas.
  std::vector<BatchNorm1d*> MutableBatchNorms() {
    return {&node_bn_, &walk_bn_};
  }

  /// Repoints the aggregator at a new graph, rebuilding both walk samplers
  /// (the temporal sampler caches the graph's inverse time span at
  /// construction, so reseating the pointer alone would leave walk
  /// probabilities computed against the old span). Trained parameters and
  /// BatchNorm statistics are untouched. Used by the serving layer after
  /// compacting its dynamic overlay; `graph` must outlive the aggregator.
  void ResetGraph(const TemporalGraph* graph);

  const EhnaConfig& config() const { return config_; }

 private:
  /// Walk sampling according to the configured variant. Walks of length 1
  /// (no historical step possible) are dropped; an empty result triggers
  /// the fallback path.
  std::vector<Walk> SampleWalks(NodeId target, Timestamp ref_time, Rng* rng);

  /// Algorithm 1 lines 1-4 batched over walks: attention-weighted node
  /// embeddings -> stacked LSTM -> BN -> ReLU. Returns [k, dim].
  Var NodeLevel(const std::vector<Walk>& walks, const Var& target_embedding,
                std::vector<float>* walk_coeffs, bool training);

  /// Algorithm 1 lines 5-6: walk attention -> stacked LSTM -> BN. [dim].
  Var WalkLevel(const Var& walk_reprs, const Var& target_embedding,
                const std::vector<float>& walk_coeffs, bool training);

  /// EHNA-SL: one single-layer LSTM pass over the flattened walk sequence.
  Var SingleLevel(const std::vector<Walk>& walks, bool training);

  /// GraphSAGE-style neighborhood mean for history-less targets.
  Var FallbackNeighborhood(NodeId target, Timestamp ref_time, Rng* rng);

  /// z = normalize(W [H || e_x]).
  Var Fuse(const Var& neighborhood, const Var& target_embedding);

  const TemporalGraph* graph_;
  Embedding* embedding_;
  EhnaConfig config_;
  bool use_attention_;
  std::shared_ptr<SparseRowGrads> grad_sink_;  // null = internal accumulator.

  TemporalWalkSampler temporal_sampler_;
  Node2VecWalkSampler static_sampler_;  // used by the EHNA-RW variant.

  StackedLstm node_lstm_;
  BatchNorm1d node_bn_;
  StackedLstm walk_lstm_;
  BatchNorm1d walk_bn_;
  Linear fuse_;  // [2*dim -> dim], the trainable W of Algorithm 1 line 7.
};

}  // namespace ehna

#endif  // EHNA_CORE_AGGREGATOR_H_
