#ifndef EHNA_CORE_GRID_SEARCH_H_
#define EHNA_CORE_GRID_SEARCH_H_

#include <vector>

#include "core/ehna_config.h"
#include "eval/edge_ops.h"
#include "graph/temporal_graph.h"
#include "util/status.h"

namespace ehna {

/// The hyperparameter grid of the paper's §V.C: "grid search over
/// p, q ∈ {0.25, 0.50, 1, 2, 4} and r ∈ {2e-5, 2e-6, 2e-7}". Defaults
/// reproduce that grid (with learning rates rescaled for Adam — see
/// DESIGN.md §2); shrink the vectors for faster searches.
struct EhnaGridSpace {
  std::vector<double> p_values{0.25, 0.5, 1.0, 2.0, 4.0};
  std::vector<double> q_values{0.25, 0.5, 1.0, 2.0, 4.0};
  std::vector<float> learning_rates{2e-3f};
};

/// One evaluated grid point.
struct EhnaGridTrial {
  double p = 1.0;
  double q = 1.0;
  float learning_rate = 0.0f;
  double score = 0.0;  // validation F1 under the chosen operator.
};

/// Result of a grid search: the winning configuration plus every trial.
struct EhnaGridSearchResult {
  EhnaConfig best_config;
  double best_score = 0.0;
  std::vector<EhnaGridTrial> trials;
};

/// Options controlling the validation protocol of the search.
struct EhnaGridSearchOptions {
  /// Fraction of the most recent *training* edges held out as the
  /// validation set (nested temporal split, so the search never sees the
  /// final test edges).
  double validation_fraction = 0.2;
  EdgeOperator operator_used = EdgeOperator::kWeightedL2;
  int eval_repeats = 2;
  uint64_t seed = 17;
};

/// Trains one EHNA model per (p, q, lr) combination of `space` on a nested
/// temporal split of `train_graph` and returns the configuration with the
/// best validation F1. `base` provides all other hyperparameters.
Result<EhnaGridSearchResult> GridSearchEhna(
    const TemporalGraph& train_graph, const EhnaConfig& base,
    const EhnaGridSpace& space, const EhnaGridSearchOptions& options = {});

}  // namespace ehna

#endif  // EHNA_CORE_GRID_SEARCH_H_
