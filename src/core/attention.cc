#include "core/attention.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace ehna {

std::vector<float> NodeAttentionCoefficients(const Walk& walk,
                                             Timestamp min_time,
                                             Timestamp time_span,
                                             float floor) {
  EHNA_CHECK(!walk.empty());
  EHNA_CHECK_GT(time_span, 0.0);

  // Accumulate the normalized-timestamp sum per *node* (all occurrences of
  // a node share one coefficient, per Eq. 3's sum over (u,v) in r).
  std::unordered_map<NodeId, double> time_sum;
  auto normalized = [&](Timestamp t) {
    double x = (t - min_time) / time_span;
    // Clamp to (0, 1]: a timestamp at min_time still contributes mass.
    return std::clamp(x, 1e-6, 1.0);
  };
  for (size_t j = 1; j < walk.size(); ++j) {
    const double t = normalized(walk[j].edge_time);
    time_sum[walk[j - 1].node] += t;
    time_sum[walk[j].node] += t;
  }

  std::vector<float> coeffs(walk.size());
  for (size_t j = 0; j < walk.size(); ++j) {
    const auto it = time_sum.find(walk[j].node);
    const double sum = it == time_sum.end() ? 0.0 : it->second;
    coeffs[j] = 1.0f / std::max(static_cast<float>(sum), floor);
  }
  return coeffs;
}

float WalkAttentionCoefficient(const std::vector<float>& node_coeffs) {
  EHNA_CHECK(!node_coeffs.empty());
  double total = 0.0;
  for (float c : node_coeffs) total += c;
  return static_cast<float>(total / static_cast<double>(node_coeffs.size()));
}

Tensor NegatedCoefficients(const std::vector<float>& coeffs) {
  Tensor out = Tensor::Uninit(static_cast<int64_t>(coeffs.size()));
  for (size_t i = 0; i < coeffs.size(); ++i) out[i] = -coeffs[i];
  return out;
}

}  // namespace ehna
