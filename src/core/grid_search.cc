#include "core/grid_search.h"

#include "core/model.h"
#include "eval/link_prediction.h"
#include "graph/split.h"

namespace ehna {

Result<EhnaGridSearchResult> GridSearchEhna(
    const TemporalGraph& train_graph, const EhnaConfig& base,
    const EhnaGridSpace& space, const EhnaGridSearchOptions& options) {
  if (space.p_values.empty() || space.q_values.empty() ||
      space.learning_rates.empty()) {
    return Status::InvalidArgument("empty grid dimension");
  }

  // Nested temporal split: the validation edges are the most recent slice
  // of the training timeline.
  Rng rng(options.seed);
  TemporalSplitOptions split_opt;
  split_opt.holdout_fraction = options.validation_fraction;
  EHNA_ASSIGN_OR_RETURN(TemporalSplit validation,
                        MakeTemporalSplit(train_graph, split_opt, &rng));

  LinkPredictionOptions eval_opt;
  eval_opt.repeats = options.eval_repeats;

  EhnaGridSearchResult result;
  result.best_config = base;
  result.best_score = -1.0;
  for (double p : space.p_values) {
    for (double q : space.q_values) {
      for (float lr : space.learning_rates) {
        EhnaConfig cfg = base;
        cfg.p = p;
        cfg.q = q;
        cfg.learning_rate = lr;
        EhnaModel model(&validation.train, cfg);
        model.Train();
        const Tensor emb = model.FinalizeEmbeddings();
        EHNA_ASSIGN_OR_RETURN(
            const BinaryMetrics metrics,
            EvaluateLinkPrediction(validation, emb, options.operator_used,
                                   eval_opt));
        result.trials.push_back(EhnaGridTrial{p, q, lr, metrics.f1});
        if (metrics.f1 > result.best_score) {
          result.best_score = metrics.f1;
          result.best_config = cfg;
        }
      }
    }
  }
  return result;
}

}  // namespace ehna
