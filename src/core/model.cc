#include "core/model.h"

#include <algorithm>
#include <numeric>
#include <thread>

#include "core/checkpoint.h"
#include "core/inference.h"
#include "nn/ops.h"
#include "util/metrics.h"
#include "util/pipeline.h"
#include "util/timer.h"

namespace ehna {

namespace {

// Seed salt separating the per-edge training streams from the per-node
// inference streams (inference.h's kFinalizeStreamSalt) and from everything
// the master rng_ draws.
constexpr uint64_t kTrainStreamSalt = 0x45484E4154524E00ULL;  // "EHNATRN"

// Training stream index for edge `position` of epoch `epoch`: the epoch id
// occupies the high bits so streams never collide across epochs (supports
// up to 2^40 edges per epoch and 2^24 epochs).
uint64_t TrainStream(uint64_t epoch, uint64_t position) {
  return (epoch << 40) | position;
}

}  // namespace

/// A data-parallel worker replica. The aggregator owns fresh parameter
/// leaves (initial values are irrelevant — SyncWorkerFromMaster overwrites
/// them before the first forward pass) and routes its embedding gathers to
/// a private sparse sink, so a worker's forward/backward touches no state
/// shared with other workers: the embedding table and graph are only read,
/// and all writes land in the replica's own tape, parameter grads, and
/// sink.
struct EhnaModel::Worker {
  Rng init_rng;
  std::shared_ptr<SparseRowGrads> sink;
  EhnaAggregator aggregator;
  std::vector<Var> params;
  /// Per-replica tape arena: activated on the shard's pool thread for the
  /// batch's forward/backward, Reset by the main thread after the shard's
  /// gradients (which live in it) have been reduced into the master.
  TensorArena arena;
  double loss_sum = 0.0;
  size_t edges = 0;

  Worker(const TemporalGraph* graph, Embedding* embedding,
         const EhnaConfig& config, Rng rng)
      : init_rng(rng),
        sink(std::make_shared<SparseRowGrads>()),
        aggregator(graph, embedding, config, &init_rng),
        params(aggregator.Parameters()) {
    aggregator.set_grad_sink(sink);
  }
};

/// One pipeline slot (DESIGN.md §11): the producer fills `shard_plans` /
/// `shard_edge_base` (heap-backed captures of every RNG draw the batch
/// needs), the consumer then runs the batch's tape inside `arena`. Serial
/// training uses a single shard; data-parallel training pre-partitions the
/// batch with exactly ParallelForShards' decomposition so per-shard
/// gradient reduction order is unchanged. The bounded queues' mutexes are
/// the happens-before edges that hand a slot (and its arena) between the
/// producer and consumer threads; Reset() runs on the consumer after the
/// optimizer step, before the slot is recycled.
struct EhnaModel::BatchPack {
  size_t begin = 0;
  size_t count = 0;
  size_t shards = 0;
  std::vector<std::vector<AggregationPlan>> shard_plans;
  std::vector<std::vector<size_t>> shard_edge_base;
  /// Tape memory for this pack's forward/backward (serial consumer only;
  /// the data-parallel consumer keeps using the worker replica arenas).
  TensorArena arena;
};

EhnaModel::EhnaModel(const TemporalGraph* graph, const EhnaConfig& config)
    : graph_(graph),
      config_(config),
      rng_(config.seed),
      embedding_(graph->num_nodes(), config.dim, &rng_),
      aggregator_(graph, &embedding_, config, &rng_),
      noise_(*graph),
      optimizer_(aggregator_.Parameters(), config.learning_rate) {
  EHNA_CHECK_GT(graph->num_nodes(), 0u);
  EHNA_CHECK_GT(graph->num_edges(), 0u);
}

EhnaModel::~EhnaModel() = default;

int EhnaModel::num_threads() const {
  if (config_.num_threads > 0) return config_.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool* EhnaModel::EnsurePool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(num_threads()));
  }
  return pool_.get();
}

void EhnaModel::EnsureWorkers() {
  EnsurePool();
  while (workers_.size() < static_cast<size_t>(num_threads())) {
    workers_.push_back(std::make_unique<Worker>(
        graph_, &embedding_, config_,
        Rng::Stream(config_.seed, 0xC0FFEEULL + workers_.size())));
  }
}

bool EhnaModel::PipelineEnabled() const {
  return config_.pipeline_depth > 0 && config_.batched_aggregation &&
         config_.num_negatives > 0;
}

ThreadPool* EhnaModel::EnsurePipelinePool() {
  if (pipeline_pool_ == nullptr) {
    pipeline_pool_ = std::make_unique<ThreadPool>(1);
  }
  return pipeline_pool_.get();
}

void EhnaModel::EnsurePipelineSlots(size_t num_slots) {
  while (pipeline_slots_.size() < num_slots) {
    pipeline_slots_.push_back(std::make_unique<BatchPack>());
  }
}

void EhnaModel::SyncWorkerFromMaster(Worker* worker) {
  const std::vector<Var>& master = optimizer_.params();
  EHNA_CHECK_EQ(master.size(), worker->params.size());
  for (size_t i = 0; i < master.size(); ++i) {
    worker->params[i].mutable_value() = master[i].value();
  }
  const auto master_bns = aggregator_.MutableBatchNorms();
  const auto worker_bns = worker->aggregator.MutableBatchNorms();
  for (size_t b = 0; b < master_bns.size(); ++b) {
    worker_bns[b]->SetRunningStats(master_bns[b]->running_mean(),
                                   master_bns[b]->running_var(),
                                   master_bns[b]->stats_initialized());
  }
}

void EhnaModel::ReduceWorkerGrads(Worker* worker) {
  const std::vector<Var>& master = optimizer_.params();
  for (size_t i = 0; i < master.size(); ++i) {
    const Tensor& g = worker->params[i].grad();
    if (g.numel() > 0) master[i].AccumulateGrad(g);
    worker->params[i].ZeroGrad();
  }
  embedding_.AccumulateSparse(*worker->sink);
  worker->sink->clear();
}

void EhnaModel::MergeWorkerBatchNormStats(size_t num_used) {
  const auto master_bns = aggregator_.MutableBatchNorms();
  for (size_t b = 0; b < master_bns.size(); ++b) {
    Tensor mean, var;
    double total = 0.0;
    for (size_t w = 0; w < num_used; ++w) {
      Worker& worker = *workers_[w];
      BatchNorm1d* bn = worker.aggregator.MutableBatchNorms()[b];
      if (worker.edges == 0 || !bn->stats_initialized()) continue;
      const float weight = static_cast<float>(worker.edges);
      if (mean.numel() == 0) {
        mean = Tensor(bn->running_mean().numel());
        var = Tensor(bn->running_var().numel());
      }
      mean.Axpy(weight, bn->running_mean());
      var.Axpy(weight, bn->running_var());
      total += weight;
    }
    if (total > 0.0) {
      mean.ScaleInPlace(1.0f / static_cast<float>(total));
      var.ScaleInPlace(1.0f / static_cast<float>(total));
      master_bns[b]->SetRunningStats(mean, var, /*initialized=*/true);
    }
  }
}

Var EhnaModel::EdgeLoss(const TemporalEdge& edge, bool training) {
  return EdgeLossOn(&aggregator_, edge, training, &rng_);
}

Var EhnaModel::EdgeLossOn(EhnaAggregator* aggregator, const TemporalEdge& edge,
                          bool training, Rng* rng) {
  const Timestamp t = edge.time;
  Var zx = aggregator->Aggregate(edge.src, t, training, rng);
  Var zy = aggregator->Aggregate(edge.dst, t, training, rng);
  Var d_pos = ag::SumSquares(ag::Sub(zx, zy));

  const NodeId exclude[] = {edge.src, edge.dst};
  std::vector<Var> terms;
  terms.reserve(static_cast<size_t>(config_.num_negatives) *
                (config_.bidirectional_negatives ? 2 : 1));
  auto add_negative_terms = [&](const Var& anchor) {
    for (int q = 0; q < config_.num_negatives; ++q) {
      const NodeId v = noise_.SampleExcluding(exclude, rng);
      Var zv = aggregator->Aggregate(v, t, training, rng);
      Var d_neg = ag::SumSquares(ag::Sub(anchor, zv));
      terms.push_back(
          ag::Hinge(ag::AddScalar(ag::Sub(d_pos, d_neg), config_.margin)));
    }
  };
  add_negative_terms(zx);                                   // Eq. 6.
  if (config_.bidirectional_negatives) add_negative_terms(zy);  // Eq. 7.
  return terms.empty() ? Var() : ag::SumN(terms);
}

void EhnaModel::PlanEdge(EhnaAggregator* aggregator, const TemporalEdge& edge,
                         Rng* rng, std::vector<AggregationPlan>* plans) {
  const Timestamp t = edge.time;
  plans->emplace_back();
  aggregator->PlanAggregation(edge.src, t, rng, &plans->back());
  plans->emplace_back();
  aggregator->PlanAggregation(edge.dst, t, rng, &plans->back());
  const NodeId exclude[] = {edge.src, edge.dst};
  const int rounds = config_.bidirectional_negatives ? 2 : 1;
  for (int r = 0; r < rounds; ++r) {
    for (int q = 0; q < config_.num_negatives; ++q) {
      const NodeId v = noise_.SampleExcluding(exclude, rng);
      plans->emplace_back();
      aggregator->PlanAggregation(v, t, rng, &plans->back());
    }
  }
}

Var EhnaModel::EdgeLossFromZ(const std::vector<Var>& z, size_t base) {
  const Var& zx = z[base];
  const Var& zy = z[base + 1];
  Var d_pos = ag::SumSquares(ag::Sub(zx, zy));

  std::vector<Var> terms;
  terms.reserve(static_cast<size_t>(config_.num_negatives) *
                (config_.bidirectional_negatives ? 2 : 1));
  size_t idx = base + 2;
  auto add_negative_terms = [&](const Var& anchor) {
    for (int q = 0; q < config_.num_negatives; ++q) {
      Var d_neg = ag::SumSquares(ag::Sub(anchor, z[idx++]));
      terms.push_back(
          ag::Hinge(ag::AddScalar(ag::Sub(d_pos, d_neg), config_.margin)));
    }
  };
  add_negative_terms(zx);                                       // Eq. 6.
  if (config_.bidirectional_negatives) add_negative_terms(zy);  // Eq. 7.
  return terms.empty() ? Var() : ag::SumN(terms);
}

EhnaModel::EpochStats EhnaModel::TrainEpoch() {
  // Epoch-level telemetry (DESIGN.md §8): completed epochs/edges, the last
  // epoch's loss, and walks/sec + edges/sec throughput derived from the
  // walk engine's own counter.
  static Counter* const epochs_total =
      MetricsRegistry::Global().GetCounter("train.epochs");
  static Counter* const edges_total =
      MetricsRegistry::Global().GetCounter("train.edges");
  static Counter* const walks_counter =
      MetricsRegistry::Global().GetCounter("walk.temporal.walks");
  static Gauge* const loss_gauge =
      MetricsRegistry::Global().GetGauge("train.last_epoch_loss");
  static Gauge* const edges_per_sec =
      MetricsRegistry::Global().GetGauge("train.edges_per_sec");
  static Gauge* const walks_per_sec =
      MetricsRegistry::Global().GetGauge("train.walks_per_sec");
  static StreamingHistogram* const epoch_hist =
      MetricsRegistry::Global().GetHistogram("train.phase.epoch");

  const uint64_t walks_before = walks_counter->Total();
  const bool async = PipelineEnabled();
  EpochStats stats =
      num_threads() > 1
          ? (async ? TrainEpochParallelAsync() : TrainEpochParallel())
          : (async ? TrainEpochSerialAsync() : TrainEpochSerial());
  ++epoch_index_;

  epochs_total->Add(1);
  edges_total->Add(stats.edges);
  loss_gauge->Set(stats.avg_loss);
  epoch_hist->Record(static_cast<uint64_t>(stats.seconds * 1e9));
  if (stats.seconds > 0.0) {
    edges_per_sec->Set(static_cast<double>(stats.edges) / stats.seconds);
    walks_per_sec->Set(
        static_cast<double>(walks_counter->Total() - walks_before) /
        stats.seconds);
  }
  return stats;
}

std::vector<size_t> EhnaModel::ShuffledEpochOrder() {
  std::vector<size_t> order(graph_->edges().size());
  std::iota(order.begin(), order.end(), size_t{0});
  rng_.Shuffle(&order);
  if (config_.max_edges_per_epoch > 0 &&
      order.size() > config_.max_edges_per_epoch) {
    order.resize(config_.max_edges_per_epoch);
  }
  return order;
}

EhnaModel::EpochStats EhnaModel::TrainEpochSerial() {
  Timer timer;
  const auto& edges = graph_->edges();
  const std::vector<size_t> order = ShuffledEpochOrder();

  EpochStats stats;
  double loss_sum = 0.0;
  const int batch = std::max(1, config_.batch_edges);
  size_t i = 0;
  while (i < order.size()) {
    bool batch_empty = true;
    {
      // The whole batch tape — every forward value, stashed intermediate,
      // and backward gradient — bump-allocates from arena_. Long-lived
      // state (parameters, Adam moments, BN running stats, the sparse
      // embedding accumulator) stays heap-backed; see DESIGN.md §9.
      EHNA_TRACE_PHASE("train.phase.forward_backward");
      TensorArena::Scope tape_scope(&arena_);
      std::vector<Var> losses;
      losses.reserve(batch);
      if (config_.batched_aggregation) {
        // Plan every aggregation the batch needs up front (consuming the
        // master RNG in exactly the per-edge order), run them all through
        // one packed tape, then assemble each edge's hinge terms from its
        // z slice.
        std::vector<AggregationPlan> plans;
        std::vector<size_t> edge_base;
        edge_base.reserve(batch);
        for (int b = 0; b < batch && i < order.size(); ++i, ++b) {
          edge_base.push_back(plans.size());
          PlanEdge(&aggregator_, edges[order[i]], &rng_, &plans);
        }
        if (!plans.empty()) {
          const std::vector<Var> z =
              aggregator_.AggregateBatch(plans, /*training=*/true);
          for (size_t base : edge_base) {
            Var loss = EdgeLossFromZ(z, base);
            if (loss.defined()) losses.push_back(loss);
          }
        }
      } else {
        // Reference mode: identical machinery, one pack per edge. Losses
        // and gradients are bitwise identical to the batched mode by
        // construction (DESIGN.md §10).
        for (int b = 0; b < batch && i < order.size(); ++i, ++b) {
          std::vector<AggregationPlan> plans;
          PlanEdge(&aggregator_, edges[order[i]], &rng_, &plans);
          const std::vector<Var> z =
              aggregator_.AggregateBatch(plans, /*training=*/true);
          Var loss = EdgeLossFromZ(z, 0);
          if (loss.defined()) losses.push_back(loss);
        }
      }
      if (!losses.empty()) {
        batch_empty = false;
        const auto count = static_cast<float>(losses.size());
        Var mean_loss = ag::ScalarMul(ag::SumN(losses), 1.0f / count);
        loss_sum += mean_loss.value()[0] * count;
        Backward(mean_loss);
      }
    }
    if (batch_empty) break;

    {
      EHNA_TRACE_PHASE("train.phase.optimizer_step");
      ClipGradNorm(optimizer_.params(), config_.grad_clip);
      optimizer_.Step();
      optimizer_.ZeroGrad();
      embedding_.ApplyAdam(config_.learning_rate *
                           config_.embedding_lr_multiplier);
    }
    // Gradients were consumed by the step above; the tape is dead.
    arena_.Reset();
  }

  stats.edges = order.size();
  stats.avg_loss = order.empty() ? 0.0 : loss_sum / order.size();
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

EhnaModel::EpochStats EhnaModel::TrainEpochParallel() {
  Timer timer;
  EnsureWorkers();
  const auto& edges = graph_->edges();
  const std::vector<size_t> order = ShuffledEpochOrder();

  EpochStats stats;
  double loss_sum = 0.0;
  const size_t batch = static_cast<size_t>(std::max(1, config_.batch_edges));
  size_t i = 0;
  while (i < order.size()) {
    const size_t begin = i;
    const size_t count = std::min(batch, order.size() - begin);
    i = begin + count;

    const size_t used = std::min(workers_.size(), count);
    for (size_t w = 0; w < used; ++w) SyncWorkerFromMaster(workers_[w].get());

    // Each shard runs its edges sequentially on its own replica tape; the
    // 1/count scale makes the reduced gradient equal the serial batch-mean
    // gradient.
    const float inv_count = 1.0f / static_cast<float>(count);
    {
      EHNA_TRACE_PHASE("train.phase.forward_backward");
      pool_->ParallelForShards(
          count, used, [&](size_t shard, size_t a, size_t b) {
            Worker& worker = *workers_[shard];
            // The shard's tapes (and its replica parameter gradients, which
            // accumulate across the shard's edges) live in the worker's
            // arena; it is Reset by the main thread after reduction.
            TensorArena::Scope tape_scope(&worker.arena);
            worker.loss_sum = 0.0;
            worker.edges = 0;
            // Each edge keeps its own RNG stream (planning consumes it in
            // the legacy per-edge order), but the shard's aggregations run
            // on one packed tape with a single backward pass.
            std::vector<AggregationPlan> plans;
            std::vector<size_t> edge_base;
            edge_base.reserve(b - a);
            if (config_.batched_aggregation) {
              for (size_t j = a; j < b; ++j) {
                const size_t pos = begin + j;
                Rng edge_rng = Rng::Stream(config_.seed ^ kTrainStreamSalt,
                                           TrainStream(epoch_index_, pos));
                edge_base.push_back(plans.size());
                PlanEdge(&worker.aggregator, edges[order[pos]], &edge_rng,
                         &plans);
              }
              std::vector<Var> shard_losses;
              shard_losses.reserve(b - a);
              if (!plans.empty()) {
                const std::vector<Var> z = worker.aggregator.AggregateBatch(
                    plans, /*training=*/true);
                for (size_t base : edge_base) {
                  Var loss = EdgeLossFromZ(z, base);
                  if (loss.defined()) {
                    worker.loss_sum += loss.value()[0];
                    shard_losses.push_back(loss);
                  }
                  ++worker.edges;
                }
              }
              if (!shard_losses.empty()) {
                Backward(ag::ScalarMul(ag::SumN(shard_losses), inv_count));
              }
            } else {
              // Reference mode: one pack per edge, same shard-level
              // backward structure so the two modes stay bitwise equal.
              std::vector<Var> shard_losses;
              shard_losses.reserve(b - a);
              for (size_t j = a; j < b; ++j) {
                const size_t pos = begin + j;
                Rng edge_rng = Rng::Stream(config_.seed ^ kTrainStreamSalt,
                                           TrainStream(epoch_index_, pos));
                std::vector<AggregationPlan> edge_plans;
                PlanEdge(&worker.aggregator, edges[order[pos]], &edge_rng,
                         &edge_plans);
                const std::vector<Var> z = worker.aggregator.AggregateBatch(
                    edge_plans, /*training=*/true);
                Var loss = EdgeLossFromZ(z, 0);
                if (loss.defined()) {
                  worker.loss_sum += loss.value()[0];
                  shard_losses.push_back(loss);
                }
                ++worker.edges;
              }
              if (!shard_losses.empty()) {
                Backward(ag::ScalarMul(ag::SumN(shard_losses), inv_count));
              }
            }
          });
    }

    {
      // Deterministic reduction: workers merge in shard order, so the result
      // depends only on (seed, num_threads), not on scheduling.
      EHNA_TRACE_PHASE("train.phase.grad_reduce");
      for (size_t w = 0; w < used; ++w) {
        loss_sum += workers_[w]->loss_sum;
        ReduceWorkerGrads(workers_[w].get());
      }
      MergeWorkerBatchNormStats(used);
      // Replica gradients and sinks have been drained into the master (all
      // heap-backed); the worker tapes are dead.
      for (size_t w = 0; w < used; ++w) workers_[w]->arena.Reset();
    }

    {
      EHNA_TRACE_PHASE("train.phase.optimizer_step");
      ClipGradNorm(optimizer_.params(), config_.grad_clip);
      optimizer_.Step();
      optimizer_.ZeroGrad();
      embedding_.ApplyAdam(config_.learning_rate *
                           config_.embedding_lr_multiplier);
    }
  }

  stats.edges = order.size();
  stats.avg_loss = order.empty() ? 0.0 : loss_sum / order.size();
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

/// The async pipeline (DESIGN.md §11), serial consumer. One producer task
/// on the dedicated pipeline thread walks the epoch's edge order and
/// captures each batch's plans — consuming the master RNG in exactly the
/// synchronous loop's order — into recycled BatchPack slots behind a
/// bounded queue; this (consumer) thread pops packs and runs
/// forward/backward/optimizer, which consumes no RNG. Determinism argument:
/// the RNG draw sequence is a pure function of the edge order, the plan
/// pack fully determines the tape, and AggregateBatch's deferred replay
/// makes gradients pack-independent — so checkpoints are byte-identical to
/// pipeline_depth = 0.
EhnaModel::EpochStats EhnaModel::TrainEpochSerialAsync() {
  Timer timer;
  const auto& edges = graph_->edges();
  const std::vector<size_t> order = ShuffledEpochOrder();

  static Counter* const packs_counter =
      MetricsRegistry::Global().GetCounter("pipeline.packs");

  EpochStats stats;
  double loss_sum = 0.0;
  const size_t batch = static_cast<size_t>(std::max(1, config_.batch_edges));
  const size_t depth = static_cast<size_t>(config_.pipeline_depth);
  const size_t num_slots = depth + 1;  // one in flight + `depth` queued.
  EnsurePipelineSlots(num_slots);
  BoundedQueue<BatchPack*> free_packs(num_slots);
  BoundedQueue<BatchPack*> ready_packs(depth, TrainPipelineQueueMetrics());
  for (size_t s = 0; s < num_slots; ++s) {
    free_packs.Push(pipeline_slots_[s].get());
  }

  ThreadPool* producer = EnsurePipelinePool();
  producer->Submit([&] {
    size_t i = 0;
    while (i < order.size()) {
      std::optional<BatchPack*> slot = free_packs.Pop();
      if (!slot.has_value()) break;  // consumer aborted the epoch.
      BatchPack* pack = *slot;
      pack->begin = i;
      pack->shards = 1;
      pack->shard_plans.resize(1);
      pack->shard_edge_base.resize(1);
      std::vector<AggregationPlan>& plans = pack->shard_plans[0];
      std::vector<size_t>& edge_base = pack->shard_edge_base[0];
      plans.clear();
      edge_base.clear();
      {
        EHNA_TRACE_PHASE("train.phase.pipeline_plan");
        for (size_t b = 0; b < batch && i < order.size(); ++i, ++b) {
          edge_base.push_back(plans.size());
          PlanEdge(&aggregator_, edges[order[i]], &rng_, &plans);
        }
      }
      pack->count = i - pack->begin;
      packs_counter->Add(1);
      if (!ready_packs.Push(pack)) break;
    }
    ready_packs.Close();
  });

  try {
    for (;;) {
      BatchPack* pack = nullptr;
      {
        EHNA_TRACE_PHASE("train.phase.pipeline_wait");
        std::optional<BatchPack*> popped = ready_packs.Pop();
        if (!popped.has_value()) break;  // epoch drained (or producer died).
        pack = *popped;
      }
      {
        EHNA_TRACE_PHASE("train.phase.forward_backward");
        TensorArena::Scope tape_scope(&pack->arena);
        const std::vector<AggregationPlan>& plans = pack->shard_plans[0];
        std::vector<Var> losses;
        losses.reserve(pack->shard_edge_base[0].size());
        if (!plans.empty()) {
          const std::vector<Var> z =
              aggregator_.AggregateBatch(plans, /*training=*/true);
          for (size_t base : pack->shard_edge_base[0]) {
            Var loss = EdgeLossFromZ(z, base);
            if (loss.defined()) losses.push_back(loss);
          }
        }
        if (!losses.empty()) {
          const auto count = static_cast<float>(losses.size());
          Var mean_loss = ag::ScalarMul(ag::SumN(losses), 1.0f / count);
          loss_sum += mean_loss.value()[0] * count;
          Backward(mean_loss);
        }
      }
      {
        EHNA_TRACE_PHASE("train.phase.optimizer_step");
        ClipGradNorm(optimizer_.params(), config_.grad_clip);
        optimizer_.Step();
        optimizer_.ZeroGrad();
        embedding_.ApplyAdam(config_.learning_rate *
                             config_.embedding_lr_multiplier);
      }
      pack->arena.Reset();
      free_packs.Push(pack);
    }
    free_packs.Close();
    producer->Wait();  // surfaces a producer exception at the join point.
  } catch (...) {
    // Unwind without stranding the producer on a queue it can never pass:
    // close both queues, drain the pool without throwing, then rethrow the
    // original error (a later producer error would only mask it).
    ready_packs.Close();
    free_packs.Close();
    producer->CollectError();
    throw;
  }

  stats.edges = order.size();
  stats.avg_loss = order.empty() ? 0.0 : loss_sum / order.size();
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

/// Async pipeline, data-parallel consumer. The producer pre-partitions
/// each batch with exactly ParallelForShards' decomposition and captures
/// per-shard plans under the same per-edge RNG streams the synchronous
/// loop derives on the pool threads — streams are keyed on (seed, epoch,
/// edge position), so *where* they are drawn cannot matter. The consumer
/// then syncs the replicas, fans the pre-built shards out across the pool
/// (compute only), and reduces gradients in shard order, unchanged.
EhnaModel::EpochStats EhnaModel::TrainEpochParallelAsync() {
  Timer timer;
  EnsureWorkers();
  const auto& edges = graph_->edges();
  const std::vector<size_t> order = ShuffledEpochOrder();

  static Counter* const packs_counter =
      MetricsRegistry::Global().GetCounter("pipeline.packs");

  EpochStats stats;
  double loss_sum = 0.0;
  const size_t batch = static_cast<size_t>(std::max(1, config_.batch_edges));
  const size_t depth = static_cast<size_t>(config_.pipeline_depth);
  const size_t num_slots = depth + 1;
  EnsurePipelineSlots(num_slots);
  BoundedQueue<BatchPack*> free_packs(num_slots);
  BoundedQueue<BatchPack*> ready_packs(depth, TrainPipelineQueueMetrics());
  for (size_t s = 0; s < num_slots; ++s) {
    free_packs.Push(pipeline_slots_[s].get());
  }

  const size_t num_workers = workers_.size();
  const uint64_t epoch = epoch_index_;
  ThreadPool* producer = EnsurePipelinePool();
  producer->Submit([&, num_workers, epoch] {
    size_t i = 0;
    while (i < order.size()) {
      std::optional<BatchPack*> slot = free_packs.Pop();
      if (!slot.has_value()) break;
      BatchPack* pack = *slot;
      const size_t begin = i;
      const size_t count = std::min(batch, order.size() - begin);
      i = begin + count;
      const size_t used = std::min(num_workers, count);
      const size_t shards = ThreadPool::ResolveShards(count, used);
      pack->begin = begin;
      pack->count = count;
      pack->shards = shards;
      pack->shard_plans.resize(shards);
      pack->shard_edge_base.resize(shards);
      {
        EHNA_TRACE_PHASE("train.phase.pipeline_plan");
        for (size_t s = 0; s < shards; ++s) {
          std::vector<AggregationPlan>& plans = pack->shard_plans[s];
          std::vector<size_t>& edge_base = pack->shard_edge_base[s];
          plans.clear();
          edge_base.clear();
          const auto [a, b] = ThreadPool::ShardBounds(count, shards, s);
          edge_base.reserve(b - a);
          for (size_t j = a; j < b; ++j) {
            const size_t pos = begin + j;
            Rng edge_rng = Rng::Stream(config_.seed ^ kTrainStreamSalt,
                                       TrainStream(epoch, pos));
            edge_base.push_back(plans.size());
            PlanEdge(&aggregator_, edges[order[pos]], &edge_rng, &plans);
          }
        }
      }
      packs_counter->Add(1);
      if (!ready_packs.Push(pack)) break;
    }
    ready_packs.Close();
  });

  try {
    for (;;) {
      BatchPack* pack = nullptr;
      {
        EHNA_TRACE_PHASE("train.phase.pipeline_wait");
        std::optional<BatchPack*> popped = ready_packs.Pop();
        if (!popped.has_value()) break;
        pack = *popped;
      }
      const size_t used = pack->shards;
      for (size_t w = 0; w < used; ++w) {
        SyncWorkerFromMaster(workers_[w].get());
      }

      const float inv_count = 1.0f / static_cast<float>(pack->count);
      {
        EHNA_TRACE_PHASE("train.phase.forward_backward");
        pool_->ParallelForShards(
            pack->count, used, [&](size_t shard, size_t a, size_t b) {
              Worker& worker = *workers_[shard];
              TensorArena::Scope tape_scope(&worker.arena);
              worker.loss_sum = 0.0;
              worker.edges = 0;
              const std::vector<AggregationPlan>& plans =
                  pack->shard_plans[shard];
              const std::vector<size_t>& edge_base =
                  pack->shard_edge_base[shard];
              EHNA_DCHECK(edge_base.size() == b - a);
              std::vector<Var> shard_losses;
              shard_losses.reserve(b - a);
              if (!plans.empty()) {
                const std::vector<Var> z = worker.aggregator.AggregateBatch(
                    plans, /*training=*/true);
                for (size_t base : edge_base) {
                  Var loss = EdgeLossFromZ(z, base);
                  if (loss.defined()) {
                    worker.loss_sum += loss.value()[0];
                    shard_losses.push_back(loss);
                  }
                  ++worker.edges;
                }
              }
              if (!shard_losses.empty()) {
                Backward(ag::ScalarMul(ag::SumN(shard_losses), inv_count));
              }
            });
      }

      {
        EHNA_TRACE_PHASE("train.phase.grad_reduce");
        for (size_t w = 0; w < used; ++w) {
          loss_sum += workers_[w]->loss_sum;
          ReduceWorkerGrads(workers_[w].get());
        }
        MergeWorkerBatchNormStats(used);
        for (size_t w = 0; w < used; ++w) workers_[w]->arena.Reset();
      }

      {
        EHNA_TRACE_PHASE("train.phase.optimizer_step");
        ClipGradNorm(optimizer_.params(), config_.grad_clip);
        optimizer_.Step();
        optimizer_.ZeroGrad();
        embedding_.ApplyAdam(config_.learning_rate *
                             config_.embedding_lr_multiplier);
      }
      free_packs.Push(pack);
    }
    free_packs.Close();
    producer->Wait();
  } catch (...) {
    ready_packs.Close();
    free_packs.Close();
    producer->CollectError();
    throw;
  }

  stats.edges = order.size();
  stats.avg_loss = order.empty() ? 0.0 : loss_sum / order.size();
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

std::vector<EhnaModel::EpochStats> EhnaModel::Train(
    int epochs,
    const std::function<void(int, const EpochStats&)>& progress) {
  const uint64_t total =
      static_cast<uint64_t>(epochs > 0 ? epochs : config_.epochs);
  std::unique_ptr<CheckpointManager> checkpoints;
  if (!config_.checkpoint_dir.empty()) {
    checkpoints = std::make_unique<CheckpointManager>(config_.checkpoint_dir,
                                                      config_.checkpoint_keep);
  }
  const uint64_t every =
      static_cast<uint64_t>(std::max(1, config_.checkpoint_every));
  std::vector<EpochStats> history;
  if (epoch_index_ < total) history.reserve(total - epoch_index_);
  // `total` counts *completed* epochs (including ones restored from a
  // checkpoint), so a resumed run finishes exactly the epochs the
  // uninterrupted run would have.
  while (epoch_index_ < total) {
    history.push_back(TrainEpoch());
    if (progress) {
      progress(static_cast<int>(epoch_index_) - 1, history.back());
    }
    if (checkpoints != nullptr &&
        (epoch_index_ % every == 0 || epoch_index_ == total)) {
      EHNA_TRACE_PHASE("train.phase.checkpoint_save");
      const Status st = checkpoints->Save(*this, epoch_index_);
      if (!st.ok()) {
        EHNA_LOG(Warning) << "checkpoint save failed at epoch "
                          << epoch_index_ << ": " << st;
      }
    }
  }
  return history;
}

Tensor EhnaModel::AggregateAt(NodeId node, Timestamp ref_time) {
  InferenceEngine engine(graph_, &embedding_, &aggregator_, config_);
  return engine.AggregateAt(node, ref_time, &rng_);
}

Tensor EhnaModel::FinalizeEmbeddings() {
  InferenceEngine engine(graph_, &embedding_, &aggregator_, config_);
  return engine.FinalizeEmbeddings(&rng_,
                                   num_threads() > 1 ? EnsurePool() : nullptr);
}

}  // namespace ehna
