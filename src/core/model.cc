#include "core/model.h"

#include <algorithm>
#include <numeric>

#include "nn/ops.h"
#include "util/timer.h"

namespace ehna {

EhnaModel::EhnaModel(const TemporalGraph* graph, const EhnaConfig& config)
    : graph_(graph),
      config_(config),
      rng_(config.seed),
      embedding_(graph->num_nodes(), config.dim, &rng_),
      aggregator_(graph, &embedding_, config, &rng_),
      noise_(*graph),
      optimizer_(aggregator_.Parameters(), config.learning_rate) {
  EHNA_CHECK_GT(graph->num_nodes(), 0u);
  EHNA_CHECK_GT(graph->num_edges(), 0u);
}

Var EhnaModel::EdgeLoss(const TemporalEdge& edge, bool training) {
  const Timestamp t = edge.time;
  Var zx = aggregator_.Aggregate(edge.src, t, training, &rng_);
  Var zy = aggregator_.Aggregate(edge.dst, t, training, &rng_);
  Var d_pos = ag::SumSquares(ag::Sub(zx, zy));

  const NodeId exclude[] = {edge.src, edge.dst};
  Var loss;
  auto add_negative_terms = [&](const Var& anchor) {
    for (int q = 0; q < config_.num_negatives; ++q) {
      const NodeId v = noise_.SampleExcluding(exclude, &rng_);
      Var zv = aggregator_.Aggregate(v, t, training, &rng_);
      Var d_neg = ag::SumSquares(ag::Sub(anchor, zv));
      Var term =
          ag::Hinge(ag::AddScalar(ag::Sub(d_pos, d_neg), config_.margin));
      loss = loss.defined() ? ag::Add(loss, term) : term;
    }
  };
  add_negative_terms(zx);                                   // Eq. 6.
  if (config_.bidirectional_negatives) add_negative_terms(zy);  // Eq. 7.
  return loss;
}

EhnaModel::EpochStats EhnaModel::TrainEpoch() {
  Timer timer;
  const auto& edges = graph_->edges();
  std::vector<size_t> order(edges.size());
  std::iota(order.begin(), order.end(), size_t{0});
  rng_.Shuffle(&order);
  if (config_.max_edges_per_epoch > 0 &&
      order.size() > config_.max_edges_per_epoch) {
    order.resize(config_.max_edges_per_epoch);
  }

  EpochStats stats;
  double loss_sum = 0.0;
  const int batch = std::max(1, config_.batch_edges);
  size_t i = 0;
  while (i < order.size()) {
    Var batch_loss;
    int batch_count = 0;
    for (; batch_count < batch && i < order.size(); ++i, ++batch_count) {
      Var loss = EdgeLoss(edges[order[i]], /*training=*/true);
      batch_loss = batch_loss.defined() ? ag::Add(batch_loss, loss) : loss;
    }
    if (!batch_loss.defined()) break;
    Var mean_loss =
        ag::ScalarMul(batch_loss, 1.0f / static_cast<float>(batch_count));
    loss_sum += mean_loss.value()[0] * batch_count;

    Backward(mean_loss);
    ClipGradNorm(optimizer_.params(), config_.grad_clip);
    optimizer_.Step();
    optimizer_.ZeroGrad();
    embedding_.ApplyAdam(config_.learning_rate * config_.embedding_lr_multiplier);
  }

  stats.edges = order.size();
  stats.avg_loss = order.empty() ? 0.0 : loss_sum / order.size();
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

std::vector<EhnaModel::EpochStats> EhnaModel::Train(
    int epochs,
    const std::function<void(int, const EpochStats&)>& progress) {
  const int total = epochs > 0 ? epochs : config_.epochs;
  std::vector<EpochStats> history;
  history.reserve(total);
  for (int e = 0; e < total; ++e) {
    history.push_back(TrainEpoch());
    if (progress) progress(e, history.back());
  }
  return history;
}

Tensor EhnaModel::AggregateAt(NodeId node, Timestamp ref_time) {
  Var z = aggregator_.Aggregate(node, ref_time, /*training=*/false, &rng_);
  embedding_.ClearGradients();
  return z.value();
}

Tensor EhnaModel::FinalizeEmbeddings() {
  const NodeId n = graph_->num_nodes();
  const int64_t d = config_.dim;
  Tensor final(n, d);
  for (NodeId v = 0; v < n; ++v) {
    auto recent = graph_->MostRecentInteraction(v);
    if (recent.ok()) {
      const Tensor z = AggregateAt(v, recent.value());
      float* dst = final.Row(v);
      for (int64_t j = 0; j < d; ++j) dst[j] = z[j];
    } else {
      // Isolated node: L2-normalized raw embedding, so its scale matches
      // the (normalized) aggregated embeddings.
      const float* src = embedding_.RowData(v);
      double norm = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        norm += static_cast<double>(src[j]) * src[j];
      }
      const float inv =
          norm > 1e-24 ? 1.0f / static_cast<float>(std::sqrt(norm)) : 0.0f;
      float* dst = final.Row(v);
      for (int64_t j = 0; j < d; ++j) dst[j] = src[j] * inv;
    }
  }
  // Write back only after every node has been aggregated against the
  // *trained* table (§IV.D's e_x := z_x), so later aggregations do not read
  // already-replaced rows.
  for (NodeId v = 0; v < n; ++v) embedding_.SetRow(v, final.Row(v));
  return final;
}

}  // namespace ehna
