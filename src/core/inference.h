#ifndef EHNA_CORE_INFERENCE_H_
#define EHNA_CORE_INFERENCE_H_

#include <memory>
#include <span>

#include "core/aggregator.h"
#include "core/ehna_config.h"
#include "graph/temporal_graph.h"
#include "nn/embedding.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ehna {

/// Seed salt separating the per-node inference streams from the per-edge
/// training streams (model.cc's kTrainStreamSalt) and from everything the
/// master Rng draws. Node v's parallel-inference stream is
/// Rng::Stream(config.seed ^ kFinalizeStreamSalt, v).
inline constexpr uint64_t kFinalizeStreamSalt =
    0x45484E4146494E00ULL;  // "EHNAFIN"

/// The trainer-free inference core: the §IV.D final pass (one aggregation
/// per node anchored at its most recent interaction, the aggregated
/// embedding becoming the node's embedding) plus the incremental per-node
/// refresh the serving layer builds on.
///
/// The engine borrows — never owns — the graph, embedding table, and
/// aggregator, so `EhnaModel` can delegate to it against its own members
/// while `EmbeddingServer` drives the identical code against a restored
/// checkpoint. Inference is a pure read of the trained parameters and table
/// (eval mode never touches BatchNorm running statistics, and no backward
/// runs), which is what makes both the node-parallel fan-out and the
/// serving layer's concurrent refresh sound.
class InferenceEngine {
 public:
  /// `graph`, `embedding`, and `aggregator` must outlive the engine.
  /// `aggregator` must have been built over `embedding` and `config`.
  InferenceEngine(const TemporalGraph* graph, Embedding* embedding,
                  EhnaAggregator* aggregator, const EhnaConfig& config);

  /// The resolved worker count: `config.num_threads`, 0 mapping to the
  /// hardware concurrency (at least 1). Chooses between the serial
  /// (master-RNG) and parallel (per-node-stream) finalize paths, exactly as
  /// EhnaModel::num_threads always has.
  int num_threads() const;

  /// Repoints the engine (and its aggregator's walk samplers) at a new
  /// graph — the serving layer calls this after compacting its dynamic
  /// overlay. The embedding table must already cover the new graph's nodes.
  void RebindGraph(const TemporalGraph* graph);

  const TemporalGraph* graph() const { return graph_; }
  const EhnaConfig& config() const { return config_; }

  /// Aggregated embedding of one node at a reference time (inference mode),
  /// drawing walk randomness from `rng`. Clears the gradient rows the
  /// forward pass's gathers registered.
  Tensor AggregateAt(NodeId node, Timestamp ref_time, Rng* rng);

  /// The §IV.D final pass *without* the write-back: returns the [N, dim]
  /// matrix of per-node aggregated embeddings (isolated nodes contribute
  /// their L2-normalized raw rows), leaving the trained table untouched.
  /// With num_threads() == 1 every node draws from `serial_rng` in node
  /// order (the exact legacy sequence); otherwise nodes fan out across
  /// `pool` (lazily self-built when null) with per-node streams, making the
  /// result a function of the seed alone.
  Tensor ComputeFinalEmbeddings(Rng* serial_rng, ThreadPool* pool = nullptr);

  /// ComputeFinalEmbeddings + §IV.D's e_x := z_x write-back into the table.
  /// The write-back happens only after every node has been aggregated
  /// against the *trained* table, so later aggregations never read
  /// already-replaced rows. Byte-identical to the pre-split
  /// EhnaModel::FinalizeEmbeddings (pinned by tests/serve_test.cc).
  Tensor FinalizeEmbeddings(Rng* serial_rng, ThreadPool* pool = nullptr);

  /// Incremental refresh for the serving layer: recomputes the final
  /// embedding of every node in `nodes` against the current graph and the
  /// (trained, untouched) table, writing row v of `out` for each node v.
  /// Every node uses its per-node stream Rng::Stream(seed ^
  /// kFinalizeStreamSalt, v) regardless of thread count, so a refreshed row
  /// is bitwise-identical to what the parallel finalize path would produce
  /// for that node on the same graph — and independent of which batch of
  /// affected nodes it rode in on. `out` must have at least
  /// graph()->num_nodes() rows.
  void RefreshInto(std::span<const NodeId> nodes, Tensor* out,
                   ThreadPool* pool = nullptr);

 private:
  /// Isolated node: L2-normalized raw embedding row (zero row if the norm
  /// underflows), so its scale matches the normalized aggregated ones.
  void FinalizeIsolated(NodeId v, float* dst) const;

  /// Computes node v's final embedding from its per-node stream into `dst`.
  void FinalizeNodeStreamed(NodeId v, float* dst);

  ThreadPool* EnsurePool();

  const TemporalGraph* graph_;
  Embedding* embedding_;
  EhnaAggregator* aggregator_;
  EhnaConfig config_;
  std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace ehna

#endif  // EHNA_CORE_INFERENCE_H_
