#include "core/inference.h"

#include <cmath>
#include <thread>

namespace ehna {

InferenceEngine::InferenceEngine(const TemporalGraph* graph,
                                 Embedding* embedding,
                                 EhnaAggregator* aggregator,
                                 const EhnaConfig& config)
    : graph_(graph),
      embedding_(embedding),
      aggregator_(aggregator),
      config_(config) {
  EHNA_CHECK(graph != nullptr);
  EHNA_CHECK(embedding != nullptr);
  EHNA_CHECK(aggregator != nullptr);
  EHNA_CHECK_EQ(embedding->dim(), config.dim);
}

int InferenceEngine::num_threads() const {
  if (config_.num_threads > 0) return config_.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void InferenceEngine::RebindGraph(const TemporalGraph* graph) {
  EHNA_CHECK(graph != nullptr);
  graph_ = graph;
  aggregator_->ResetGraph(graph);
}

ThreadPool* InferenceEngine::EnsurePool() {
  if (owned_pool_ == nullptr) {
    owned_pool_ =
        std::make_unique<ThreadPool>(static_cast<size_t>(num_threads()));
  }
  return owned_pool_.get();
}

Tensor InferenceEngine::AggregateAt(NodeId node, Timestamp ref_time,
                                    Rng* rng) {
  Var z = aggregator_->Aggregate(node, ref_time, /*training=*/false, rng);
  embedding_->ClearGradients();
  return z.value();
}

void InferenceEngine::FinalizeIsolated(NodeId v, float* dst) const {
  const int64_t d = config_.dim;
  const float* src = embedding_->RowData(v);
  double norm = 0.0;
  for (int64_t j = 0; j < d; ++j) {
    norm += static_cast<double>(src[j]) * src[j];
  }
  const float inv =
      norm > 1e-24 ? 1.0f / static_cast<float>(std::sqrt(norm)) : 0.0f;
  for (int64_t j = 0; j < d; ++j) dst[j] = src[j] * inv;
}

void InferenceEngine::FinalizeNodeStreamed(NodeId v, float* dst) {
  const int64_t d = config_.dim;
  auto recent = graph_->MostRecentInteraction(v);
  if (recent.ok()) {
    Rng node_rng = Rng::Stream(config_.seed ^ kFinalizeStreamSalt, v);
    Var z = aggregator_->Aggregate(v, recent.value(), /*training=*/false,
                                   &node_rng);
    const Tensor& zv = z.value();
    for (int64_t j = 0; j < d; ++j) dst[j] = zv[j];
  } else {
    FinalizeIsolated(v, dst);
  }
}

Tensor InferenceEngine::ComputeFinalEmbeddings(Rng* serial_rng,
                                               ThreadPool* pool) {
  const NodeId n = graph_->num_nodes();
  const int64_t d = config_.dim;
  Tensor final(n, d);

  if (num_threads() > 1) {
    // Nodes fan out freely (pure read of the trained state); the per-node
    // stream makes the result a function of the seed alone, independent of
    // thread count and scheduling.
    if (pool == nullptr) pool = EnsurePool();
    pool->ParallelFor(n, [&](size_t v) {
      FinalizeNodeStreamed(static_cast<NodeId>(v), final.Row(v));
    });
    embedding_->ClearGradients();
  } else {
    EHNA_CHECK(serial_rng != nullptr);
    for (NodeId v = 0; v < n; ++v) {
      auto recent = graph_->MostRecentInteraction(v);
      if (recent.ok()) {
        const Tensor z = AggregateAt(v, recent.value(), serial_rng);
        float* dst = final.Row(v);
        for (int64_t j = 0; j < d; ++j) dst[j] = z[j];
      } else {
        FinalizeIsolated(v, final.Row(v));
      }
    }
  }
  return final;
}

Tensor InferenceEngine::FinalizeEmbeddings(Rng* serial_rng, ThreadPool* pool) {
  Tensor final = ComputeFinalEmbeddings(serial_rng, pool);
  // Write back only after every node has been aggregated against the
  // *trained* table (§IV.D's e_x := z_x), so later aggregations do not read
  // already-replaced rows.
  const NodeId n = graph_->num_nodes();
  for (NodeId v = 0; v < n; ++v) embedding_->SetRow(v, final.Row(v));
  return final;
}

void InferenceEngine::RefreshInto(std::span<const NodeId> nodes, Tensor* out,
                                  ThreadPool* pool) {
  EHNA_CHECK(out != nullptr);
  EHNA_CHECK_GE(out->rows(), static_cast<int64_t>(graph_->num_nodes()));
  EHNA_CHECK_EQ(out->cols(), config_.dim);
  if (nodes.empty()) return;
  if (pool == nullptr && num_threads() > 1) pool = EnsurePool();
  if (pool != nullptr && pool->num_threads() > 1 && nodes.size() > 1) {
    pool->ParallelFor(nodes.size(), [&](size_t i) {
      const NodeId v = nodes[i];
      FinalizeNodeStreamed(v, out->Row(v));
    });
  } else {
    for (const NodeId v : nodes) FinalizeNodeStreamed(v, out->Row(v));
  }
  embedding_->ClearGradients();
}

}  // namespace ehna
