#ifndef EHNA_CORE_CHECKPOINT_H_
#define EHNA_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ehna {

class EhnaModel;

/// Crash-safe snapshots of the complete EHNA training state.
///
/// File format (version 1, little-endian; see DESIGN.md §7):
///
///   [0..3]   magic "EHNC"
///   [4..7]   u32 format version
///   [8..15]  u64 payload byte count
///   [16..19] u32 CRC-32 (IEEE) of the payload
///   [20.. ]  payload: fingerprint (seed, dim, node count, variant, LSTM
///            depth, parameter/BatchNorm counts), completed-epoch counter,
///            RNG stream state, every aggregator parameter tensor, dense
///            Adam step + first/second moments, BatchNorm running
///            statistics, the embedding table, and the sparse per-row Adam
///            state (rows in ascending order, so two snapshots of the same
///            state are byte-identical).
///
/// Writes are atomic (temp file + rename). Loads validate the magic,
/// version, declared payload size against the actual file size (before any
/// allocation), the CRC, and the model fingerprint; every failure is a
/// clean Status — a truncated or bit-flipped snapshot can never crash the
/// process or escape as std::bad_alloc.

/// Serializes `model`'s full training state to `path` atomically.
Status SaveCheckpoint(const EhnaModel& model, const std::string& path);

/// Restores a snapshot written by SaveCheckpoint into `model`, which must
/// have been constructed over the same graph shape and config (dim,
/// variant, LSTM depth, seed). On any validation failure the model is left
/// unmodified.
Status RestoreCheckpoint(EhnaModel* model, const std::string& path);

/// Manages a checkpoint directory: `ckpt-<epoch padded to 20 digits>.ehnc`
/// snapshot files, a `LATEST` pointer naming the last snapshot that was
/// written completely, and keep-last-N rotation. All writes are atomic, so
/// a crash at any instant leaves the directory loadable.
class CheckpointManager {
 public:
  /// `keep_last` < 1 is treated as 1 (the newest snapshot is always kept).
  explicit CheckpointManager(std::string dir, int keep_last = 3);

  /// Snapshots `model` as epoch `epoch`, updates LATEST, then prunes all
  /// but the newest `keep_last` snapshots. The snapshot itself and the
  /// pointer update are atomic; pruning failures are ignored (stale files
  /// are garbage, not corruption).
  Status Save(const EhnaModel& model, uint64_t epoch);

  /// Restores the most recent loadable snapshot: first the one LATEST
  /// names, then — if that file is missing or fails validation — every
  /// older snapshot in descending epoch order. Returns NotFound when the
  /// directory holds no loadable snapshot (the caller starts fresh), and
  /// the last validation error when snapshots exist but all are corrupt.
  Status RestoreLatest(EhnaModel* model) const;

  /// Snapshot filenames present in the directory, ascending by epoch.
  std::vector<std::string> ListSnapshots() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string PathFor(const std::string& filename) const;

  std::string dir_;
  int keep_last_;
};

}  // namespace ehna

#endif  // EHNA_CORE_CHECKPOINT_H_
