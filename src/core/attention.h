#ifndef EHNA_CORE_ATTENTION_H_
#define EHNA_CORE_ATTENTION_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "nn/tensor.h"
#include "walk/walk.h"

namespace ehna {

/// Per-position temporal coefficients of the node-level attention (Eq. 3).
///
/// For each position j of `walk`, the returned value is
///   c_j = 1 / sum_{(u,v) in r : v = node_j} t~(u,v)
/// where the sum ranges over the walk's edges incident to *any* occurrence
/// of the node at position j, and t~ is the timestamp normalized to
/// (0, 1] over [min_time, max_time] (so recent interactions give large
/// sums, hence small coefficients, hence large attention once negated in
/// the exponent). Positions whose node has no incident walk edge (only the
/// isolated start of a length-1 walk) get 1 / floor.
///
/// `floor` guards the division for degenerate sums.
std::vector<float> NodeAttentionCoefficients(const Walk& walk,
                                             Timestamp min_time,
                                             Timestamp time_span,
                                             float floor = 0.05f);

/// The walk-level temporal coefficient of Eq. 4:
///   a_r = (1/|r|) * sum over positions of the node-level coefficients.
float WalkAttentionCoefficient(const std::vector<float>& node_coeffs);

/// Packs coefficients into the negated form consumed by the fused
/// ag::AttentionSoftmax op: out[i] = -coeffs[i].
Tensor NegatedCoefficients(const std::vector<float>& coeffs);

}  // namespace ehna

#endif  // EHNA_CORE_ATTENTION_H_
