#ifndef EHNA_CORE_EHNA_CONFIG_H_
#define EHNA_CORE_EHNA_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace ehna {

/// Model variants evaluated in the paper's ablation study (Table VII).
enum class EhnaVariant {
  /// The complete model: temporal walks, two-level aggregation, attention.
  kFull,
  /// EHNA-NA: no attention mechanisms (alpha = beta = uniform).
  kNoAttention,
  /// EHNA-RW: traditional (static, non-temporal) random walks and no
  /// attention.
  kStaticWalk,
  /// EHNA-SL: a single-layer LSTM over the flattened walk sequence, without
  /// the two-level aggregation strategy.
  kSingleLayer,
};

const char* EhnaVariantName(EhnaVariant v);

/// Hyperparameters of the EHNA model and trainer. Defaults follow §V.C of
/// the paper where stated (k = 10, l = 10, margin = 5, 2 LSTM layers,
/// Q = 5 negative samples); deviations are noted inline.
struct EhnaConfig {
  EhnaVariant variant = EhnaVariant::kFull;

  /// Embedding dimensionality d (also the LSTM hidden size, which Eq. 4's
  /// ||e_x - h_r||^2 requires to match d). Paper: 128.
  int64_t dim = 128;

  /// Temporal random walk parameters (§IV.A).
  int num_walks = 10;   // k
  int walk_length = 10; // l
  double p = 1.0;
  double q = 1.0;
  /// Kernel decay rate in normalized-time units (see TemporalWalkConfig).
  double decay_rate = 5.0;

  /// Stacked LSTM depth (paper: 2).
  int lstm_layers = 2;

  /// Objective (Eq. 6-7).
  float margin = 5.0f;
  int num_negatives = 5;  // Q
  /// Enable Eq. 7's bidirectional negative sampling (recommended for
  /// bipartite/heterogeneous networks such as Tmall).
  bool bidirectional_negatives = false;

  /// Optimization. The paper uses mini-batch SGD with batch 512; we default
  /// to Adam with a smaller per-step edge batch, which converges in far
  /// fewer epochs at these scales (documented deviation).
  float learning_rate = 2e-3f;
  int batch_edges = 32;
  int epochs = 3;
  /// Cap on (randomly sampled) training edges per epoch; 0 = all edges.
  size_t max_edges_per_epoch = 0;
  float grad_clip = 5.0f;
  /// The sparse embedding rows see far fewer updates per epoch than the
  /// shared network weights; scaling their Adam step compensates. 1.0
  /// recovers a single global rate.
  float embedding_lr_multiplier = 1.0f;
  /// When true, the aggregator's BatchNorms normalize with population
  /// (running) statistics instead of the per-call batch of one target's k
  /// walks. The paper's BN runs over 512-edge batches; per-target batch
  /// statistics would subtract the node-identifying component shared by a
  /// target's walks. See DESIGN.md §2.
  bool population_batchnorm = false;

  /// GraphSAGE-style fallback (§IV.D) for nodes without a historical
  /// neighborhood: number of neighbors sampled per hop.
  int fallback_samples = 10;

  /// When true (the default), the trainer packs every aggregation a batch
  /// (or, data-parallel, a worker shard) of edges needs — both endpoints
  /// plus all negatives — into one cross-edge tape: walks are sampled up
  /// front in the exact legacy RNG order, their sequences run through one
  /// length-bucketed, masked, multi-sequence LSTM pack, and order-sensitive
  /// parameter accumulations are deferred to a canonical replay so losses,
  /// gradients, and checkpoints are bitwise identical to the per-edge
  /// path. See DESIGN.md §10. False restores one aggregation pack per
  /// aggregation call (the equivalence-test reference).
  bool batched_aggregation = true;

  /// Async training pipeline depth (DESIGN.md §11). 0 (the default) runs
  /// the synchronous path: every batch's walk sampling + plan assembly is
  /// serialized in front of its forward/backward. N >= 1 overlaps them: a
  /// producer task on a dedicated pipeline thread pre-builds up to N batch
  /// packs ahead (per-batch plan captures, each pack paired with the
  /// TensorArena its tape will run in) behind a bounded queue while the
  /// consumer runs forward/backward/optimizer on the previous pack; N = 1
  /// is classic double buffering. Because plans capture every RNG draw up
  /// front (in the exact synchronous order) and compute consumes no RNG,
  /// async training is bitwise-identical to synchronous training at any
  /// thread count — checkpoint bytes included. The knob composes with
  /// `num_threads`; it requires `batched_aggregation` and at least one
  /// negative sample (otherwise the synchronous path runs regardless).
  int pipeline_depth = 0;

  /// Worker threads for training and inference. 1 (the default) runs the
  /// exact legacy serial path; 0 resolves to the hardware concurrency; N >
  /// 1 trains data-parallel (per-worker tapes, gradients reduced into one
  /// optimizer step) and runs inference/walk generation with per-task RNG
  /// streams so results are reproducible per (seed, num_threads). See
  /// README "Parallelism & determinism".
  int num_threads = 1;

  /// Crash-safe checkpointing (see DESIGN.md §7 and README "Checkpointing
  /// & resume"). When `checkpoint_dir` is non-empty, Train() snapshots the
  /// complete training state (parameters, embedding table, dense and sparse
  /// Adam moments, BatchNorm running statistics, RNG stream state) into the
  /// directory every `checkpoint_every` completed epochs, atomically, with
  /// keep-last-N rotation and a last-good pointer file. A run restored from
  /// such a snapshot continues bitwise-identically to one that never died.
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  int checkpoint_keep = 3;

  uint64_t seed = 1;
};

}  // namespace ehna

#endif  // EHNA_CORE_EHNA_CONFIG_H_
