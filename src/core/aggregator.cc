#include "core/aggregator.h"

#include <algorithm>
#include <unordered_set>

#include "core/attention.h"
#include "nn/kernels.h"
#include "nn/ops.h"
#include "util/metrics.h"

namespace ehna {

namespace {

TemporalWalkConfig MakeTemporalWalkConfig(const EhnaConfig& c) {
  TemporalWalkConfig w;
  w.p = c.p;
  w.q = c.q;
  w.walk_length = c.walk_length;
  w.num_walks = c.num_walks;
  w.decay_rate = c.decay_rate;
  w.use_time_decay = true;
  return w;
}

Node2VecWalkConfig MakeStaticWalkConfig(const EhnaConfig& c) {
  Node2VecWalkConfig w;
  w.p = c.p;
  w.q = c.q;
  w.walk_length = c.walk_length;
  w.walks_per_node = c.num_walks;
  return w;
}

// ----------------------------------------------------------------------
// Packed-aggregation replay machinery (DESIGN.md §10).
//
// The replay sentinel must not strongly hold any in-graph Var: the tethered
// leaves' parent lists hold the sentinel, so a strong capture would create a
// shared_ptr cycle and leak the whole tape. In-graph nodes are recorded as
// raw VarImpl pointers instead; the loss root keeps them alive for the full
// lifetime of Backward, which is the only time the sentinel runs.

struct RawStep {
  internal::VarImpl* x = nullptr;
  internal::VarImpl* h_prev = nullptr;
  internal::VarImpl* z = nullptr;
};
using RawTrace = std::vector<std::vector<RawStep>>;  // [T][num_layers]

RawTrace ToRaw(const PackedLstmTrace& t) {
  RawTrace raw(t.steps.size());
  for (size_t i = 0; i < t.steps.size(); ++i) {
    raw[i].reserve(t.steps[i].size());
    for (const PackedLstmStep& s : t.steps[i]) {
      raw[i].push_back(RawStep{s.x.impl(), s.h_prev.impl(), s.z.impl()});
    }
  }
  return raw;
}

// Everything the sentinel needs to replay one aggregation's deferred
// parameter/embedding accumulations from its row slice of the packed tape.
struct AggReplay {
  bool fallback = false;
  bool single_layer = false;
  NodeId target = 0;
  // Node-level pack placement: rows [row_off, row_off + k) of every step
  // t < T tensor belong to this aggregation.
  int64_t row_off = 0;
  int64_t k = 0;
  size_t T = 0;
  // Walk-level pack placement (standard variants): one row per step.
  int64_t walk_pos = 0;
  // Per-walk gathers (standard variants).
  std::vector<std::vector<int64_t>> walk_ids;
  std::vector<internal::VarImpl*> walk_leaves;
  std::vector<std::shared_ptr<Tensor>> node_gtargets;  // per-walk Eq. 3 e_x grads
  std::shared_ptr<Tensor> walk_gtarget;                // Eq. 4 e_x grad
  // Flattened gather (EHNA-SL) or fallback-neighborhood gather.
  std::vector<int64_t> flat_ids;
  internal::VarImpl* flat_leaf = nullptr;
  // Target embedding.
  internal::VarImpl* ex_leaf = nullptr;
  std::shared_ptr<Tensor> concat_b;  // e_x grad from the fuse concat
  // Deferred BatchNorm gamma/beta gradients.
  std::shared_ptr<Tensor> node_dg, node_db, walk_dg, walk_db;
  // Fuse projection: z = cmat @ W. gw replays from cmat's value and the
  // matmul node's retained gradient.
  internal::VarImpl* cmat = nullptr;
  internal::VarImpl* mm = nullptr;
};

// Rebuilds one (aggregation, layer, step) LSTM weight-gradient unit from
// the aggregation's contiguous row slice. The slice spans the tensors' full
// width, so the GemmTN operates on exactly the same contiguous memory a
// per-aggregation pack would present — bitwise-identical contributions no
// matter how many aggregations share the pack.
void ReplayLstmUnit(const RawStep& st, int64_t row_off, int64_t k,
                    const LstmCell& cell) {
  if (!st.z->grad_defined) return;
  EHNA_TRACE_PHASE("kernels.phase.lstm_step");
  const Tensor& xv = st.x->value;
  const Tensor& hv = st.h_prev->value;
  const Tensor& gz = st.z->grad;
  const int64_t four_h = gz.cols();
  Tensor gwi = Tensor::Uninit(xv.cols(), four_h);
  kernels::GemmTN(xv.cols(), four_h, k, xv.Row(row_off), gz.Row(row_off),
                  gwi.data(), /*accumulate=*/false);
  cell.w_ih().AccumulateGrad(gwi);
  Tensor gwh = Tensor::Uninit(hv.cols(), four_h);
  kernels::GemmTN(hv.cols(), four_h, k, hv.Row(row_off), gz.Row(row_off),
                  gwh.data(), /*accumulate=*/false);
  cell.w_hh().AccumulateGrad(gwh);
  Tensor gb(four_h);
  for (int64_t r = 0; r < k; ++r) {
    kernels::Axpy(four_h, 1.0f, gz.Row(row_off + r), gb.data());
  }
  cell.bias().AccumulateGrad(gb);
}

}  // namespace

const char* EhnaVariantName(EhnaVariant v) {
  switch (v) {
    case EhnaVariant::kFull:
      return "EHNA";
    case EhnaVariant::kNoAttention:
      return "EHNA-NA";
    case EhnaVariant::kStaticWalk:
      return "EHNA-RW";
    case EhnaVariant::kSingleLayer:
      return "EHNA-SL";
  }
  return "?";
}

EhnaAggregator::EhnaAggregator(const TemporalGraph* graph,
                               Embedding* embedding, const EhnaConfig& config,
                               Rng* rng)
    : graph_(graph),
      embedding_(embedding),
      config_(config),
      use_attention_(config.variant == EhnaVariant::kFull),
      temporal_sampler_(graph, MakeTemporalWalkConfig(config)),
      static_sampler_(graph, MakeStaticWalkConfig(config)),
      node_lstm_(config.dim, config.dim,
                 config.variant == EhnaVariant::kSingleLayer
                     ? 1
                     : config.lstm_layers,
                 rng),
      node_bn_(config.dim),
      walk_lstm_(config.dim, config.dim,
                 config.variant == EhnaVariant::kSingleLayer
                     ? 1
                     : config.lstm_layers,
                 rng),
      walk_bn_(config.dim),
      fuse_(2 * config.dim, config.dim, rng, /*bias=*/false) {
  EHNA_CHECK(graph != nullptr);
  EHNA_CHECK(embedding != nullptr);
  EHNA_CHECK_EQ(embedding->dim(), config.dim);
}

void EhnaAggregator::ResetGraph(const TemporalGraph* graph) {
  EHNA_CHECK(graph != nullptr);
  graph_ = graph;
  temporal_sampler_ = TemporalWalkSampler(graph, MakeTemporalWalkConfig(config_));
  static_sampler_ = Node2VecWalkSampler(graph, MakeStaticWalkConfig(config_));
}

std::vector<Walk> EhnaAggregator::SampleWalks(NodeId target,
                                              Timestamp ref_time, Rng* rng) {
  std::vector<Walk> walks;
  walks.reserve(config_.num_walks);
  if (config_.variant == EhnaVariant::kStaticWalk) {
    for (int i = 0; i < config_.num_walks; ++i) {
      const std::vector<NodeId> nodes = static_sampler_.SampleWalk(target, rng);
      if (nodes.size() < 2) continue;
      Walk w;
      w.reserve(nodes.size());
      for (NodeId v : nodes) w.push_back(WalkStep{v, 0.0, 1.0f});
      walks.push_back(std::move(w));
    }
    return walks;
  }
  // Degenerate anchor: the target's entire history is at-or-after
  // `ref_time`, so each of the k walks would be the bare anchor (length 1)
  // and be dropped below — and, crucially, SampleWalk draws zero RNG for
  // them. Skipping the k calls outright is therefore bitwise-neutral; the
  // counter keeps the case visible (it is what routes the aggregation to
  // the GraphSAGE-style fallback) instead of silently costing k adjacency
  // probes per aggregation.
  if (graph_->NeighborsBefore(target, ref_time).empty()) {
    static Counter* const no_history =
        MetricsRegistry::Global().GetCounter("agg.no_history_targets");
    no_history->Add(1);
    return walks;
  }
  for (Walk& w : temporal_sampler_.SampleWalks(target, ref_time, rng)) {
    if (w.size() < 2) continue;  // no historical neighborhood reached.
    walks.push_back(std::move(w));
  }
  return walks;
}

Var EhnaAggregator::NodeLevel(const std::vector<Walk>& walks,
                              const Var& target_embedding,
                              std::vector<float>* walk_coeffs, bool training) {
  const int64_t dim = config_.dim;
  const size_t k = walks.size();
  walk_coeffs->assign(k, 1.0f);

  // Per walk: gather embeddings and apply node-level attention (Eq. 3).
  std::vector<Var> weighted;  // each [L_i, dim]
  weighted.reserve(k);
  size_t max_len = 0;
  for (size_t i = 0; i < k; ++i) {
    const Walk& walk = walks[i];
    max_len = std::max(max_len, walk.size());
    std::vector<int64_t> ids;
    ids.reserve(walk.size());
    for (const WalkStep& s : walk) ids.push_back(s.node);
    Var emb = embedding_->Gather(ids, grad_sink_);  // [L_i, dim]

    if (use_attention_) {
      const std::vector<float> coeffs = NodeAttentionCoefficients(
          walk, graph_->min_time(), graph_->TimeSpan());
      (*walk_coeffs)[i] = WalkAttentionCoefficient(coeffs);
      // alpha_j = softmax_j(-c_j * ||e_x - e_vj||^2), one fused graph node
      // (kernels::AttentionSoftmaxForward) instead of the former
      // subtract/square/scale/softmax chain.
      Var alpha = ag::AttentionSoftmax(emb, target_embedding,
                                       NegatedCoefficients(coeffs));
      weighted.push_back(ag::ScaleRows(emb, alpha));
    } else {
      weighted.push_back(emb);
    }
  }

  // Batch the k variable-length walks through the stacked LSTM with
  // per-timestep masks (padded rows freeze their state).
  Var zero_row = Var::Leaf(Tensor(dim));
  std::vector<Var> inputs;
  std::vector<Tensor> masks;
  inputs.reserve(max_len);
  masks.reserve(max_len);
  for (size_t t = 0; t < max_len; ++t) {
    std::vector<Var> rows;
    rows.reserve(k);
    Tensor mask(static_cast<int64_t>(k));
    for (size_t i = 0; i < k; ++i) {
      if (t < walks[i].size()) {
        rows.push_back(ag::Row(weighted[i], static_cast<int64_t>(t)));
        mask[static_cast<int64_t>(i)] = 1.0f;
      } else {
        rows.push_back(zero_row);
      }
    }
    inputs.push_back(ag::ConcatRows(rows));
    masks.push_back(std::move(mask));
  }

  Var h = node_lstm_.Forward(inputs, masks);        // [k, dim]
  Var normed = config_.population_batchnorm
                   ? node_bn_.ForwardPopulation(h, training)
                   : node_bn_.Forward(h, training);
  return ag::Relu(normed);  // Algorithm 1 line 4.
}

Var EhnaAggregator::WalkLevel(const Var& walk_reprs,
                              const Var& target_embedding,
                              const std::vector<float>& walk_coeffs,
                              bool training) {
  const int64_t k = walk_reprs.value().rows();
  Var weighted = walk_reprs;
  if (use_attention_ && k > 1) {
    // beta_r = softmax_r(-a_r * ||e_x - h_r||^2)  (Eq. 4), fused.
    Var beta = ag::AttentionSoftmax(walk_reprs, target_embedding,
                                    NegatedCoefficients(walk_coeffs));
    weighted = ag::ScaleRows(walk_reprs, beta);
  }

  // Sequence of k walk representations through the walk-level LSTM
  // (batch of one).
  std::vector<Var> inputs;
  inputs.reserve(k);
  for (int64_t i = 0; i < k; ++i) {
    inputs.push_back(ag::AsMatrix(ag::Row(weighted, i)));
  }
  Var h = walk_lstm_.Forward(inputs, {});            // [1, dim]
  Var normed = config_.population_batchnorm
                   ? walk_bn_.ForwardPopulation(h, training)
                   : walk_bn_.Forward(h, training);
  return ag::AsVector(normed);  // line 6: H.
}

Var EhnaAggregator::SingleLevel(const std::vector<Walk>& walks,
                                bool training) {
  // EHNA-SL: flatten every walk into one long sequence through a
  // single-layer LSTM; no attention, no walk-level stage.
  std::vector<int64_t> ids;
  for (const Walk& w : walks) {
    for (const WalkStep& s : w) ids.push_back(s.node);
  }
  EHNA_CHECK(!ids.empty());
  Var emb = embedding_->Gather(ids, grad_sink_);  // [L, dim]
  std::vector<Var> inputs;
  inputs.reserve(ids.size());
  for (size_t t = 0; t < ids.size(); ++t) {
    inputs.push_back(ag::AsMatrix(ag::Row(emb, static_cast<int64_t>(t))));
  }
  Var h = node_lstm_.Forward(inputs, {});  // [1, dim]
  Var normed = config_.population_batchnorm
                   ? node_bn_.ForwardPopulation(h, training)
                   : node_bn_.Forward(h, training);
  return ag::AsVector(ag::Relu(normed));
}

Var EhnaAggregator::FallbackNeighborhood(NodeId target, Timestamp ref_time,
                                         Rng* rng) {
  // GraphSAGE-style: mean embedding of a sampled 1- and 2-hop neighborhood.
  auto hist = graph_->NeighborsBefore(target, ref_time);
  std::span<const AdjEntry> pool =
      hist.empty() ? graph_->Neighbors(target) : hist;
  if (pool.empty()) {
    // Isolated node: the neighborhood summary is zero; the fused output
    // then depends only on e_x.
    return Var::Leaf(Tensor(config_.dim));
  }
  std::vector<int64_t> ids;
  const size_t want = static_cast<size_t>(config_.fallback_samples);
  for (size_t idx : rng->SampleWithoutReplacement(pool.size(), want)) {
    const NodeId nbr = pool[idx].neighbor;
    ids.push_back(nbr);
    // One 2-hop sample per 1-hop neighbor.
    auto second = graph_->Neighbors(nbr);
    if (!second.empty()) {
      ids.push_back(second[rng->UniformInt(second.size())].neighbor);
    }
  }
  Var emb = embedding_->Gather(ids, grad_sink_);
  return ag::ColMean(emb);
}

Var EhnaAggregator::Fuse(const Var& neighborhood,
                         const Var& target_embedding) {
  Var z = fuse_.ForwardVec(ag::Concat(neighborhood, target_embedding));
  return ag::L2Normalize(z);  // Algorithm 1 line 8.
}

Var EhnaAggregator::Aggregate(NodeId target, Timestamp ref_time, bool training,
                              Rng* rng) {
  static Counter* const aggregations =
      MetricsRegistry::Global().GetCounter("agg.aggregations");
  static Counter* const fallbacks =
      MetricsRegistry::Global().GetCounter("agg.fallbacks");
  aggregations->Add(1);

  Var e_x = embedding_->GatherRow(target, grad_sink_);
  std::vector<Walk> walks;
  {
    // Separates neighborhood sampling cost from the neural forward pass in
    // the Table VIII phase breakdown (nested inside forward_backward).
    EHNA_TRACE_PHASE("train.phase.walk_sampling");
    walks = SampleWalks(target, ref_time, rng);
  }
  if (walks.empty()) {
    fallbacks->Add(1);  // no historical neighborhood: GraphSAGE-style path.
    return Fuse(FallbackNeighborhood(target, ref_time, rng), e_x);
  }
  if (config_.variant == EhnaVariant::kSingleLayer) {
    return Fuse(SingleLevel(walks, training), e_x);
  }
  std::vector<float> walk_coeffs;
  Var walk_reprs = NodeLevel(walks, e_x, &walk_coeffs, training);
  Var h = WalkLevel(walk_reprs, e_x, walk_coeffs, training);
  return Fuse(h, e_x);
}

void EhnaAggregator::PlanAggregation(NodeId target, Timestamp ref_time,
                                     Rng* rng, AggregationPlan* plan) {
  static Counter* const aggregations =
      MetricsRegistry::Global().GetCounter("agg.aggregations");
  static Counter* const fallbacks =
      MetricsRegistry::Global().GetCounter("agg.fallbacks");
  aggregations->Add(1);

  plan->target = target;
  plan->ref_time = ref_time;
  plan->fallback_ids.clear();
  {
    EHNA_TRACE_PHASE("train.phase.walk_sampling");
    plan->walks = SampleWalks(target, ref_time, rng);
  }
  if (!plan->walks.empty()) return;

  // Replicate FallbackNeighborhood's draws (same order, same counts).
  fallbacks->Add(1);
  auto hist = graph_->NeighborsBefore(target, ref_time);
  std::span<const AdjEntry> pool =
      hist.empty() ? graph_->Neighbors(target) : hist;
  if (pool.empty()) return;  // isolated: zero neighborhood summary.
  const size_t want = static_cast<size_t>(config_.fallback_samples);
  for (size_t idx : rng->SampleWithoutReplacement(pool.size(), want)) {
    const NodeId nbr = pool[idx].neighbor;
    plan->fallback_ids.push_back(nbr);
    auto second = graph_->Neighbors(nbr);
    if (!second.empty()) {
      plan->fallback_ids.push_back(
          second[rng->UniformInt(second.size())].neighbor);
    }
  }
}

std::vector<Var> EhnaAggregator::AggregateBatch(
    const std::vector<AggregationPlan>& plans, bool training) {
  EHNA_CHECK(!plans.empty());
  const int64_t dim = config_.dim;
  const size_t P = plans.size();
  const bool single_layer = config_.variant == EhnaVariant::kSingleLayer;

  auto replays = std::make_shared<std::vector<AggReplay>>(P);
  std::vector<Var> ex_leaves(P);
  std::vector<Var> tether_leaves;  // every deferred-gather leaf
  std::vector<std::vector<Var>> weighted(P);  // node-pack sources per walk
  std::vector<std::vector<float>> walk_coeffs(P);
  std::vector<Var> flat_emb(P);  // EHNA-SL flattened gather per plan
  std::vector<Var> H(P);         // neighborhood summary per plan

  // ---- Per-plan leaves, node-level attention weights (plan order). ----
  for (size_t p = 0; p < P; ++p) {
    const AggregationPlan& plan = plans[p];
    AggReplay& rep = (*replays)[p];
    rep.target = plan.target;
    rep.concat_b = std::make_shared<Tensor>(dim);
    Var e_x = embedding_->GatherRowDeferred(plan.target);
    ex_leaves[p] = e_x;
    tether_leaves.push_back(e_x);
    rep.ex_leaf = e_x.impl();

    if (plan.walks.empty()) {
      rep.fallback = true;
      rep.flat_ids.assign(plan.fallback_ids.begin(), plan.fallback_ids.end());
      if (rep.flat_ids.empty()) {
        // Isolated node: the summary is zero; z depends only on e_x.
        H[p] = Var::Leaf(Tensor(dim));
      } else {
        Var emb = embedding_->GatherDeferred(rep.flat_ids);
        tether_leaves.push_back(emb);
        rep.flat_leaf = emb.impl();
        H[p] = ag::ColMean(emb);
      }
      continue;
    }

    if (single_layer) {
      rep.single_layer = true;
      for (const Walk& w : plan.walks) {
        for (const WalkStep& s : w) rep.flat_ids.push_back(s.node);
      }
      Var emb = embedding_->GatherDeferred(rep.flat_ids);
      tether_leaves.push_back(emb);
      rep.flat_leaf = emb.impl();
      flat_emb[p] = emb;
      rep.T = rep.flat_ids.size();
      rep.k = 1;
      continue;
    }

    const size_t k = plan.walks.size();
    rep.k = static_cast<int64_t>(k);
    walk_coeffs[p].assign(k, 1.0f);
    weighted[p].reserve(k);
    for (size_t i = 0; i < k; ++i) {
      const Walk& walk = plan.walks[i];
      rep.T = std::max(rep.T, walk.size());
      std::vector<int64_t> ids;
      ids.reserve(walk.size());
      for (const WalkStep& s : walk) ids.push_back(s.node);
      Var emb = embedding_->GatherDeferred(ids);
      tether_leaves.push_back(emb);
      rep.walk_leaves.push_back(emb.impl());
      rep.walk_ids.push_back(std::move(ids));
      if (use_attention_) {
        const std::vector<float> coeffs = NodeAttentionCoefficients(
            walk, graph_->min_time(), graph_->TimeSpan());
        walk_coeffs[p][i] = WalkAttentionCoefficient(coeffs);
        auto gt = std::make_shared<Tensor>(dim);
        rep.node_gtargets.push_back(gt);
        Var alpha = ag::AttentionSoftmaxDeferredTarget(
            emb, e_x.value(), NegatedCoefficients(coeffs), gt, e_x);
        weighted[p].push_back(ag::ScaleRows(emb, alpha));
      } else {
        weighted[p].push_back(emb);
      }
    }
  }

  // ---- Node-level pack: sequences sorted by descending padded length so
  // whole plans drop off the tail as steps proceed. ----
  std::vector<size_t> node_order;
  for (size_t p = 0; p < P; ++p) {
    if (!(*replays)[p].fallback) node_order.push_back(p);
  }
  std::stable_sort(node_order.begin(), node_order.end(),
                   [&](size_t a, size_t b) {
                     return (*replays)[a].T > (*replays)[b].T;
                   });
  int64_t row_off = 0;
  size_t max_t = 0;
  for (size_t p : node_order) {
    (*replays)[p].row_off = row_off;
    row_off += (*replays)[p].k;
    max_t = std::max(max_t, (*replays)[p].T);
  }

  PackedLstmTrace node_trace;
  if (!node_order.empty()) {
    std::vector<Var> inputs;
    std::vector<Tensor> masks;
    inputs.reserve(max_t);
    if (!single_layer) masks.reserve(max_t);
    for (size_t t = 0; t < max_t; ++t) {
      std::vector<Var> sources;
      std::vector<ag::PackedRowRef> refs;
      int64_t n_t = 0;
      for (size_t p : node_order) {
        if (t >= (*replays)[p].T) break;  // sorted: the tail is done too.
        n_t += (*replays)[p].k;
      }
      sources.reserve(n_t);
      refs.reserve(n_t);
      Tensor mask(n_t);
      for (size_t p : node_order) {
        if (t >= (*replays)[p].T) break;
        if (single_layer) {
          refs.push_back({static_cast<int32_t>(sources.size()),
                          static_cast<int32_t>(t)});
          sources.push_back(flat_emb[p]);
        } else {
          for (size_t i = 0; i < plans[p].walks.size(); ++i) {
            const int32_t src = static_cast<int32_t>(sources.size());
            sources.push_back(weighted[p][i]);
            if (t < plans[p].walks[i].size()) {
              mask[static_cast<int64_t>(refs.size())] = 1.0f;
              refs.push_back({src, static_cast<int32_t>(t)});
            } else {
              refs.push_back({-1, 0});  // padded row inside the plan's block
            }
          }
        }
      }
      inputs.push_back(ag::PackRows(sources, refs, dim));
      if (!single_layer) masks.push_back(std::move(mask));
    }
    node_trace = node_lstm_.ForwardPacked(inputs, masks);
  }

  // ---- Node-level readouts -> BN -> ReLU, in plan order so each
  // BatchNorm object sees exactly the per-call input sequence (and hence
  // running-statistic updates) the per-edge path would produce. ----
  std::vector<Var> relu_reprs(P);
  for (size_t p = 0; p < P; ++p) {
    AggReplay& rep = (*replays)[p];
    if (rep.fallback) continue;
    Var h = ag::SegmentRows(node_trace.top_h[rep.T - 1], rep.row_off, rep.k);
    rep.node_dg = std::make_shared<Tensor>(dim);
    rep.node_db = std::make_shared<Tensor>(dim);
    Var normed = config_.population_batchnorm
                     ? node_bn_.ForwardPopulationDeferred(h, training,
                                                          rep.node_dg,
                                                          rep.node_db)
                     : node_bn_.ForwardDeferred(h, training, rep.node_dg,
                                                rep.node_db);
    Var relu = ag::Relu(normed);
    if (single_layer) {
      H[p] = ag::AsVector(relu);
    } else {
      relu_reprs[p] = relu;
    }
  }

  // ---- Walk-level stage (standard variants): attention, then one packed
  // pass with one sequence (of its k walk representations) per plan. ----
  PackedLstmTrace walk_trace;
  if (!single_layer) {
    std::vector<Var> weighted_w(P);
    std::vector<size_t> walk_order;
    for (size_t p = 0; p < P; ++p) {
      AggReplay& rep = (*replays)[p];
      if (rep.fallback) continue;
      Var wr = relu_reprs[p];
      if (use_attention_ && rep.k > 1) {
        rep.walk_gtarget = std::make_shared<Tensor>(dim);
        Var beta = ag::AttentionSoftmaxDeferredTarget(
            wr, ex_leaves[p].value(), NegatedCoefficients(walk_coeffs[p]),
            rep.walk_gtarget, ex_leaves[p]);
        weighted_w[p] = ag::ScaleRows(wr, beta);
      } else {
        weighted_w[p] = wr;
      }
      walk_order.push_back(p);
    }
    std::stable_sort(walk_order.begin(), walk_order.end(),
                     [&](size_t a, size_t b) {
                       return (*replays)[a].k > (*replays)[b].k;
                     });
    if (!walk_order.empty()) {
      for (size_t pos = 0; pos < walk_order.size(); ++pos) {
        (*replays)[walk_order[pos]].walk_pos = static_cast<int64_t>(pos);
      }
      const int64_t max_k = (*replays)[walk_order[0]].k;
      std::vector<Var> inputs;
      inputs.reserve(max_k);
      for (int64_t i = 0; i < max_k; ++i) {
        std::vector<Var> sources;
        std::vector<ag::PackedRowRef> refs;
        for (size_t p : walk_order) {
          if (i >= (*replays)[p].k) break;
          refs.push_back({static_cast<int32_t>(sources.size()),
                          static_cast<int32_t>(i)});
          sources.push_back(weighted_w[p]);
        }
        inputs.push_back(ag::PackRows(sources, refs, dim));
      }
      walk_trace = walk_lstm_.ForwardPacked(inputs, {});
    }
    for (size_t p = 0; p < P; ++p) {
      AggReplay& rep = (*replays)[p];
      if (rep.fallback) continue;
      Var hw =
          ag::SegmentRows(walk_trace.top_h[rep.k - 1], rep.walk_pos, 1);
      rep.walk_dg = std::make_shared<Tensor>(dim);
      rep.walk_db = std::make_shared<Tensor>(dim);
      Var normed = config_.population_batchnorm
                       ? walk_bn_.ForwardPopulationDeferred(hw, training,
                                                            rep.walk_dg,
                                                            rep.walk_db)
                       : walk_bn_.ForwardDeferred(hw, training, rep.walk_dg,
                                                  rep.walk_db);
      H[p] = ag::AsVector(normed);
    }
  }

  // ---- Fuse + L2-normalize per plan (plan order). ----
  std::vector<Var> outputs(P);
  for (size_t p = 0; p < P; ++p) {
    AggReplay& rep = (*replays)[p];
    Var concat = ag::ConcatDeferredB(H[p], ex_leaves[p].value(), rep.concat_b,
                                     ex_leaves[p]);
    Var cmat = ag::AsMatrix(concat);
    Var mm = ag::MatMulNoWeightGrad(cmat, fuse_.weight());
    rep.cmat = cmat.impl();
    rep.mm = mm.impl();
    outputs[p] = ag::L2Normalize(ag::AsVector(mm));
  }

  // ---- Replay sentinel: a parentless hooked node, pre-seeded so the
  // engine runs it, tethered under every deferred-gather leaf so it is the
  // earliest post-order node of the region — i.e. the LAST closure to
  // execute. It rebuilds all order-sensitive accumulations in canonical
  // reverse-plan order, making gradients independent of pack width. ----
  RawTrace node_raw = ToRaw(node_trace);
  RawTrace walk_raw = ToRaw(walk_trace);
  std::shared_ptr<SparseRowGrads> sink = grad_sink_;
  EhnaAggregator* self = this;
  Var sentinel = Var::Op(
      Tensor(1), {},
      [self, replays, node_raw, walk_raw, sink](const Tensor&,
                                                const Tensor&) {
        const int num_node_layers = self->node_lstm_.num_layers();
        const int num_walk_layers = self->walk_lstm_.num_layers();
        for (size_t pi = replays->size(); pi-- > 0;) {
          const AggReplay& rep = (*replays)[pi];
          // Every path out of an aggregation runs through its fuse matmul,
          // so an undefined gradient there means no loss term consumed this
          // plan's output — nothing in its region executed, and a per-edge
          // pack would never have replayed it either.
          if (rep.mm == nullptr || !rep.mm->grad_defined) continue;
          if (!rep.fallback) {
            // (a) Node-level LSTM weight units: layer-descending, then
            // step-descending, mirroring reverse execution order of the
            // forward tape.
            for (int l = num_node_layers - 1; l >= 0; --l) {
              for (int64_t t = static_cast<int64_t>(rep.T) - 1; t >= 0; --t) {
                ReplayLstmUnit(node_raw[t][l], rep.row_off, rep.k,
                               self->node_lstm_.cell(l));
              }
            }
            // (b) Walk-level LSTM weight units (not in EHNA-SL).
            if (!rep.single_layer) {
              for (int l = num_walk_layers - 1; l >= 0; --l) {
                for (int64_t i = rep.k - 1; i >= 0; --i) {
                  ReplayLstmUnit(walk_raw[i][l], rep.walk_pos, 1,
                                 self->walk_lstm_.cell(l));
                }
              }
            }
            // (c) BatchNorm gamma/beta from the deferred buffers.
            self->node_bn_.gamma().AccumulateGrad(*rep.node_dg);
            self->node_bn_.beta().AccumulateGrad(*rep.node_db);
            if (!rep.single_layer) {
              self->walk_bn_.gamma().AccumulateGrad(*rep.walk_dg);
              self->walk_bn_.beta().AccumulateGrad(*rep.walk_db);
            }
          }
          // (d) Fuse projection weight: gW = cmat^T @ g_mm.
          {
            EHNA_TRACE_PHASE("kernels.phase.gemm");
            self->fuse_.weight().AccumulateGrad(
                MatMulTransposeA(rep.cmat->value, rep.mm->grad));
          }
          // (e) Sparse embedding scatter, exactly as the Gather hooks
          // would, in walk-ascending order.
          if (rep.flat_leaf != nullptr && rep.flat_leaf->grad_defined) {
            self->embedding_->ScatterGrads(rep.flat_ids, rep.flat_leaf->grad,
                                           sink);
          }
          for (size_t w = 0; w < rep.walk_leaves.size(); ++w) {
            if (rep.walk_leaves[w]->grad_defined) {
              self->embedding_->ScatterGrads(rep.walk_ids[w],
                                             rep.walk_leaves[w]->grad, sink);
            }
          }
          // (f) e_x: sum the deferred buffers in fixed order (fuse concat,
          // walk-level attention, node-level attention walk-ascending) and
          // scatter once, as the GatherRow hook would.
          Tensor gex = *rep.concat_b;
          if (rep.walk_gtarget) gex.AddInPlace(*rep.walk_gtarget);
          for (const auto& gt : rep.node_gtargets) gex.AddInPlace(*gt);
          self->embedding_->ScatterRowGrad(rep.target, gex, sink);
        }
      },
      "agg_replay");
  sentinel.impl()->grad = Tensor(1);
  sentinel.impl()->grad_defined = true;
  for (const Var& leaf : tether_leaves) {
    leaf.impl()->parents.push_back(sentinel);
  }
  return outputs;
}

std::vector<Var> EhnaAggregator::Parameters() const {
  std::vector<Var> params;
  for (const auto& module_params :
       {node_lstm_.Parameters(), node_bn_.Parameters(),
        walk_lstm_.Parameters(), walk_bn_.Parameters(),
        fuse_.Parameters()}) {
    params.insert(params.end(), module_params.begin(), module_params.end());
  }
  return params;
}

}  // namespace ehna
