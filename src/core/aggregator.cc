#include "core/aggregator.h"

#include <algorithm>
#include <unordered_set>

#include "core/attention.h"
#include "nn/ops.h"
#include "util/metrics.h"

namespace ehna {

namespace {

TemporalWalkConfig MakeTemporalWalkConfig(const EhnaConfig& c) {
  TemporalWalkConfig w;
  w.p = c.p;
  w.q = c.q;
  w.walk_length = c.walk_length;
  w.num_walks = c.num_walks;
  w.decay_rate = c.decay_rate;
  w.use_time_decay = true;
  return w;
}

Node2VecWalkConfig MakeStaticWalkConfig(const EhnaConfig& c) {
  Node2VecWalkConfig w;
  w.p = c.p;
  w.q = c.q;
  w.walk_length = c.walk_length;
  w.walks_per_node = c.num_walks;
  return w;
}

}  // namespace

const char* EhnaVariantName(EhnaVariant v) {
  switch (v) {
    case EhnaVariant::kFull:
      return "EHNA";
    case EhnaVariant::kNoAttention:
      return "EHNA-NA";
    case EhnaVariant::kStaticWalk:
      return "EHNA-RW";
    case EhnaVariant::kSingleLayer:
      return "EHNA-SL";
  }
  return "?";
}

EhnaAggregator::EhnaAggregator(const TemporalGraph* graph,
                               Embedding* embedding, const EhnaConfig& config,
                               Rng* rng)
    : graph_(graph),
      embedding_(embedding),
      config_(config),
      use_attention_(config.variant == EhnaVariant::kFull),
      temporal_sampler_(graph, MakeTemporalWalkConfig(config)),
      static_sampler_(graph, MakeStaticWalkConfig(config)),
      node_lstm_(config.dim, config.dim,
                 config.variant == EhnaVariant::kSingleLayer
                     ? 1
                     : config.lstm_layers,
                 rng),
      node_bn_(config.dim),
      walk_lstm_(config.dim, config.dim,
                 config.variant == EhnaVariant::kSingleLayer
                     ? 1
                     : config.lstm_layers,
                 rng),
      walk_bn_(config.dim),
      fuse_(2 * config.dim, config.dim, rng, /*bias=*/false) {
  EHNA_CHECK(graph != nullptr);
  EHNA_CHECK(embedding != nullptr);
  EHNA_CHECK_EQ(embedding->dim(), config.dim);
}

std::vector<Walk> EhnaAggregator::SampleWalks(NodeId target,
                                              Timestamp ref_time, Rng* rng) {
  std::vector<Walk> walks;
  walks.reserve(config_.num_walks);
  if (config_.variant == EhnaVariant::kStaticWalk) {
    for (int i = 0; i < config_.num_walks; ++i) {
      const std::vector<NodeId> nodes = static_sampler_.SampleWalk(target, rng);
      if (nodes.size() < 2) continue;
      Walk w;
      w.reserve(nodes.size());
      for (NodeId v : nodes) w.push_back(WalkStep{v, 0.0, 1.0f});
      walks.push_back(std::move(w));
    }
    return walks;
  }
  for (Walk& w : temporal_sampler_.SampleWalks(target, ref_time, rng)) {
    if (w.size() < 2) continue;  // no historical neighborhood reached.
    walks.push_back(std::move(w));
  }
  return walks;
}

Var EhnaAggregator::NodeLevel(const std::vector<Walk>& walks,
                              const Var& target_embedding,
                              std::vector<float>* walk_coeffs, bool training) {
  const int64_t dim = config_.dim;
  const size_t k = walks.size();
  walk_coeffs->assign(k, 1.0f);

  // Per walk: gather embeddings and apply node-level attention (Eq. 3).
  std::vector<Var> weighted;  // each [L_i, dim]
  weighted.reserve(k);
  size_t max_len = 0;
  for (size_t i = 0; i < k; ++i) {
    const Walk& walk = walks[i];
    max_len = std::max(max_len, walk.size());
    std::vector<int64_t> ids;
    ids.reserve(walk.size());
    for (const WalkStep& s : walk) ids.push_back(s.node);
    Var emb = embedding_->Gather(ids, grad_sink_);  // [L_i, dim]

    if (use_attention_) {
      const std::vector<float> coeffs = NodeAttentionCoefficients(
          walk, graph_->min_time(), graph_->TimeSpan());
      (*walk_coeffs)[i] = WalkAttentionCoefficient(coeffs);
      // alpha_j = softmax_j(-c_j * ||e_x - e_vj||^2), one fused graph node
      // (kernels::AttentionSoftmaxForward) instead of the former
      // subtract/square/scale/softmax chain.
      Var alpha = ag::AttentionSoftmax(emb, target_embedding,
                                       NegatedCoefficients(coeffs));
      weighted.push_back(ag::ScaleRows(emb, alpha));
    } else {
      weighted.push_back(emb);
    }
  }

  // Batch the k variable-length walks through the stacked LSTM with
  // per-timestep masks (padded rows freeze their state).
  Var zero_row = Var::Leaf(Tensor(dim));
  std::vector<Var> inputs;
  std::vector<Tensor> masks;
  inputs.reserve(max_len);
  masks.reserve(max_len);
  for (size_t t = 0; t < max_len; ++t) {
    std::vector<Var> rows;
    rows.reserve(k);
    Tensor mask(static_cast<int64_t>(k));
    for (size_t i = 0; i < k; ++i) {
      if (t < walks[i].size()) {
        rows.push_back(ag::Row(weighted[i], static_cast<int64_t>(t)));
        mask[static_cast<int64_t>(i)] = 1.0f;
      } else {
        rows.push_back(zero_row);
      }
    }
    inputs.push_back(ag::ConcatRows(rows));
    masks.push_back(std::move(mask));
  }

  Var h = node_lstm_.Forward(inputs, masks);        // [k, dim]
  Var normed = config_.population_batchnorm
                   ? node_bn_.ForwardPopulation(h, training)
                   : node_bn_.Forward(h, training);
  return ag::Relu(normed);  // Algorithm 1 line 4.
}

Var EhnaAggregator::WalkLevel(const Var& walk_reprs,
                              const Var& target_embedding,
                              const std::vector<float>& walk_coeffs,
                              bool training) {
  const int64_t k = walk_reprs.value().rows();
  Var weighted = walk_reprs;
  if (use_attention_ && k > 1) {
    // beta_r = softmax_r(-a_r * ||e_x - h_r||^2)  (Eq. 4), fused.
    Var beta = ag::AttentionSoftmax(walk_reprs, target_embedding,
                                    NegatedCoefficients(walk_coeffs));
    weighted = ag::ScaleRows(walk_reprs, beta);
  }

  // Sequence of k walk representations through the walk-level LSTM
  // (batch of one).
  std::vector<Var> inputs;
  inputs.reserve(k);
  for (int64_t i = 0; i < k; ++i) {
    inputs.push_back(ag::AsMatrix(ag::Row(weighted, i)));
  }
  Var h = walk_lstm_.Forward(inputs, {});            // [1, dim]
  Var normed = config_.population_batchnorm
                   ? walk_bn_.ForwardPopulation(h, training)
                   : walk_bn_.Forward(h, training);
  return ag::AsVector(normed);  // line 6: H.
}

Var EhnaAggregator::SingleLevel(const std::vector<Walk>& walks,
                                bool training) {
  // EHNA-SL: flatten every walk into one long sequence through a
  // single-layer LSTM; no attention, no walk-level stage.
  std::vector<int64_t> ids;
  for (const Walk& w : walks) {
    for (const WalkStep& s : w) ids.push_back(s.node);
  }
  EHNA_CHECK(!ids.empty());
  Var emb = embedding_->Gather(ids, grad_sink_);  // [L, dim]
  std::vector<Var> inputs;
  inputs.reserve(ids.size());
  for (size_t t = 0; t < ids.size(); ++t) {
    inputs.push_back(ag::AsMatrix(ag::Row(emb, static_cast<int64_t>(t))));
  }
  Var h = node_lstm_.Forward(inputs, {});  // [1, dim]
  Var normed = config_.population_batchnorm
                   ? node_bn_.ForwardPopulation(h, training)
                   : node_bn_.Forward(h, training);
  return ag::AsVector(ag::Relu(normed));
}

Var EhnaAggregator::FallbackNeighborhood(NodeId target, Timestamp ref_time,
                                         Rng* rng) {
  // GraphSAGE-style: mean embedding of a sampled 1- and 2-hop neighborhood.
  auto hist = graph_->NeighborsBefore(target, ref_time);
  std::span<const AdjEntry> pool =
      hist.empty() ? graph_->Neighbors(target) : hist;
  if (pool.empty()) {
    // Isolated node: the neighborhood summary is zero; the fused output
    // then depends only on e_x.
    return Var::Leaf(Tensor(config_.dim));
  }
  std::vector<int64_t> ids;
  const size_t want = static_cast<size_t>(config_.fallback_samples);
  for (size_t idx : rng->SampleWithoutReplacement(pool.size(), want)) {
    const NodeId nbr = pool[idx].neighbor;
    ids.push_back(nbr);
    // One 2-hop sample per 1-hop neighbor.
    auto second = graph_->Neighbors(nbr);
    if (!second.empty()) {
      ids.push_back(second[rng->UniformInt(second.size())].neighbor);
    }
  }
  Var emb = embedding_->Gather(ids, grad_sink_);
  return ag::ColMean(emb);
}

Var EhnaAggregator::Fuse(const Var& neighborhood,
                         const Var& target_embedding) {
  Var z = fuse_.ForwardVec(ag::Concat(neighborhood, target_embedding));
  return ag::L2Normalize(z);  // Algorithm 1 line 8.
}

Var EhnaAggregator::Aggregate(NodeId target, Timestamp ref_time, bool training,
                              Rng* rng) {
  static Counter* const aggregations =
      MetricsRegistry::Global().GetCounter("agg.aggregations");
  static Counter* const fallbacks =
      MetricsRegistry::Global().GetCounter("agg.fallbacks");
  aggregations->Add(1);

  Var e_x = embedding_->GatherRow(target, grad_sink_);
  std::vector<Walk> walks;
  {
    // Separates neighborhood sampling cost from the neural forward pass in
    // the Table VIII phase breakdown (nested inside forward_backward).
    EHNA_TRACE_PHASE("train.phase.walk_sampling");
    walks = SampleWalks(target, ref_time, rng);
  }
  if (walks.empty()) {
    fallbacks->Add(1);  // no historical neighborhood: GraphSAGE-style path.
    return Fuse(FallbackNeighborhood(target, ref_time, rng), e_x);
  }
  if (config_.variant == EhnaVariant::kSingleLayer) {
    return Fuse(SingleLevel(walks, training), e_x);
  }
  std::vector<float> walk_coeffs;
  Var walk_reprs = NodeLevel(walks, e_x, &walk_coeffs, training);
  Var h = WalkLevel(walk_reprs, e_x, walk_coeffs, training);
  return Fuse(h, e_x);
}

std::vector<Var> EhnaAggregator::Parameters() const {
  std::vector<Var> params;
  for (const auto& module_params :
       {node_lstm_.Parameters(), node_bn_.Parameters(),
        walk_lstm_.Parameters(), walk_bn_.Parameters(),
        fuse_.Parameters()}) {
    params.insert(params.end(), module_params.begin(), module_params.end());
  }
  return params;
}

}  // namespace ehna
