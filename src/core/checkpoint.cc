#include "core/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <utility>

#include "core/model.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace ehna {

namespace {

constexpr char kMagic[4] = {'E', 'H', 'N', 'C'};
constexpr uint32_t kVersion = 1;
// magic + version + payload size + payload crc.
constexpr uint64_t kHeaderBytes = 4 + 4 + 8 + 4;

constexpr char kSnapshotPrefix[] = "ckpt-";
constexpr char kSnapshotSuffix[] = ".ehnc";
constexpr char kLatestFile[] = "LATEST";

// ------------------------------------------------------------- payload I/O

/// Appends POD fields and tensors to an in-memory payload. Building the
/// payload in memory first lets the header carry its exact size and CRC,
/// and keeps the on-disk write a single atomic temp-file + rename.
class PayloadWriter {
 public:
  template <typename T>
  void Pod(T value) {
    buf_.append(reinterpret_cast<const char*>(&value), sizeof(value));
  }

  void TensorValue(const Tensor& t) {
    Pod<uint8_t>(static_cast<uint8_t>(t.rank()));
    Pod<int64_t>(t.rows());
    Pod<int64_t>(t.cols());
    buf_.append(reinterpret_cast<const char*>(t.data()),
                t.numel() * sizeof(float));
  }

  const std::string& buffer() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked cursor over a payload buffer. Every read validates the
/// remaining byte count before touching memory, and tensor reads validate
/// the declared shape against the remaining payload *before* allocating, so
/// even a payload that defeats the CRC cannot crash the parser or trigger
/// an oversized allocation.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& buf) : buf_(buf) {}

  template <typename T>
  bool Pod(T* out) {
    if (buf_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(out, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool TensorValue(Tensor* out) {
    uint8_t rank = 0;
    int64_t rows = 0, cols = 0;
    if (!Pod(&rank) || !Pod(&rows) || !Pod(&cols)) return false;
    if ((rank != 1 && rank != 2) || rows < 0 || cols < 0) return false;
    if (rank == 1 && cols != 1) return false;
    if (cols > 0 && rows > std::numeric_limits<int64_t>::max() / cols) {
      return false;
    }
    const uint64_t numel = static_cast<uint64_t>(rows * cols);
    if (numel > (buf_.size() - pos_) / sizeof(float)) return false;
    Tensor t = rank == 1 ? Tensor(rows) : Tensor(rows, cols);
    std::memcpy(t.data(), buf_.data() + pos_, numel * sizeof(float));
    pos_ += numel * sizeof(float);
    *out = std::move(t);
    return true;
  }

  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  const std::string& buf_;
  size_t pos_ = 0;
};

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("corrupt checkpoint " + path + ": " + what);
}

// -------------------------------------------------------- directory layout

std::string SnapshotName(uint64_t epoch) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", kSnapshotPrefix,
                static_cast<unsigned long long>(epoch), kSnapshotSuffix);
  return buf;
}

}  // namespace

// --------------------------------------------------------- model snapshot

Status EhnaModel::SaveCheckpoint(const std::string& path) const {
  PayloadWriter w;

  // Fingerprint: enough to reject restoring into an incompatible model.
  const std::vector<Var>& params = optimizer_.params();
  w.Pod<uint64_t>(config_.seed);
  w.Pod<int64_t>(config_.dim);
  w.Pod<uint64_t>(static_cast<uint64_t>(embedding_.num_rows()));
  w.Pod<uint32_t>(static_cast<uint32_t>(config_.variant));
  w.Pod<int32_t>(config_.lstm_layers);
  w.Pod<uint32_t>(static_cast<uint32_t>(params.size()));
  const auto bns = const_cast<EhnaAggregator&>(aggregator_).MutableBatchNorms();
  w.Pod<uint32_t>(static_cast<uint32_t>(bns.size()));

  w.Pod<uint64_t>(epoch_index_);

  const Rng::State rng_state = rng_.state();
  for (uint64_t lane : rng_state.s) w.Pod<uint64_t>(lane);
  w.Pod<uint8_t>(rng_state.has_spare_normal ? 1 : 0);
  w.Pod<double>(rng_state.spare_normal);

  for (const Var& p : params) w.TensorValue(p.value());

  w.Pod<int64_t>(optimizer_.step_count());
  for (const Tensor& m : optimizer_.first_moments()) w.TensorValue(m);
  for (const Tensor& v : optimizer_.second_moments()) w.TensorValue(v);

  for (BatchNorm1d* bn : bns) {
    w.Pod<uint8_t>(bn->stats_initialized() ? 1 : 0);
    w.TensorValue(bn->running_mean());
    w.TensorValue(bn->running_var());
  }

  w.TensorValue(embedding_.table());
  w.Pod<int64_t>(embedding_.adam_step());
  // The sparse maps are written in ascending row order so two snapshots of
  // the same state are byte-identical regardless of hash iteration order.
  for (const auto* moments : {&embedding_.adam_m(), &embedding_.adam_v()}) {
    std::map<int64_t, const Tensor*> sorted;
    for (const auto& [row, m] : *moments) sorted.emplace(row, &m);
    w.Pod<uint64_t>(sorted.size());
    for (const auto& [row, m] : sorted) {
      w.Pod<int64_t>(row);
      w.TensorValue(*m);
    }
  }

  const std::string& payload = w.buffer();
  const uint32_t crc = Crc32(payload.data(), payload.size());
  return AtomicWriteFile(
      path,
      [&payload, crc](std::ostream& out) -> Status {
        out.write(kMagic, sizeof(kMagic));
        const uint32_t version = kVersion;
        out.write(reinterpret_cast<const char*>(&version), sizeof(version));
        const uint64_t payload_size = payload.size();
        out.write(reinterpret_cast<const char*>(&payload_size),
                  sizeof(payload_size));
        out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
        out.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
        return Status::OK();
      },
      /*binary=*/true);
}

Status EhnaModel::RestoreCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open checkpoint: " + path);
  std::error_code ec;
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IoError("cannot stat checkpoint: " + path);
  if (file_size < kHeaderBytes) return Corrupt(path, "truncated header");

  char magic[4];
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint32_t crc = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&payload_size), sizeof(payload_size));
  in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "bad magic");
  }
  if (version != kVersion) return Corrupt(path, "unsupported version");
  // Size check before the payload allocation: a corrupt length field must
  // yield a Status, never std::bad_alloc.
  if (payload_size != file_size - kHeaderBytes) {
    return Corrupt(path, "payload size mismatch");
  }

  std::string payload(payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (!in) return Corrupt(path, "truncated payload");
  if (Crc32(payload.data(), payload.size()) != crc) {
    return Corrupt(path, "checksum mismatch");
  }

  // Parse everything into staging state, validate it all against this
  // model, and only then commit — a rejected snapshot leaves the model
  // untouched.
  PayloadReader r(payload);
  uint64_t seed = 0, num_rows = 0, map_count = 0;
  int64_t dim = 0;
  uint32_t variant = 0, param_count = 0, bn_count = 0;
  int32_t lstm_layers = 0;
  if (!r.Pod(&seed) || !r.Pod(&dim) || !r.Pod(&num_rows) ||
      !r.Pod(&variant) || !r.Pod(&lstm_layers) || !r.Pod(&param_count) ||
      !r.Pod(&bn_count)) {
    return Corrupt(path, "truncated fingerprint");
  }
  const std::vector<Var>& params = optimizer_.params();
  const auto bns = aggregator_.MutableBatchNorms();
  if (seed != config_.seed || dim != config_.dim ||
      num_rows != static_cast<uint64_t>(embedding_.num_rows()) ||
      variant != static_cast<uint32_t>(config_.variant) ||
      lstm_layers != config_.lstm_layers || param_count != params.size() ||
      bn_count != bns.size()) {
    return Status::InvalidArgument(
        "checkpoint " + path +
        " does not match this model's config/graph fingerprint");
  }

  uint64_t epoch = 0;
  Rng::State rng_state;
  uint8_t flag = 0;
  if (!r.Pod(&epoch)) return Corrupt(path, "truncated epoch counter");
  for (uint64_t& lane : rng_state.s) {
    if (!r.Pod(&lane)) return Corrupt(path, "truncated rng state");
  }
  if (!r.Pod(&flag)) return Corrupt(path, "truncated rng state");
  rng_state.has_spare_normal = flag != 0;
  if (!r.Pod(&rng_state.spare_normal)) {
    return Corrupt(path, "truncated rng state");
  }

  std::vector<Tensor> param_values(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    if (!r.TensorValue(&param_values[i])) {
      return Corrupt(path, "truncated parameter tensor");
    }
    if (!param_values[i].SameShape(params[i].value())) {
      return Corrupt(path, "parameter shape mismatch");
    }
  }

  int64_t adam_t = 0;
  if (!r.Pod(&adam_t)) return Corrupt(path, "truncated optimizer state");
  std::vector<Tensor> adam_m(params.size()), adam_v(params.size());
  for (auto* moments : {&adam_m, &adam_v}) {
    for (size_t i = 0; i < moments->size(); ++i) {
      Tensor& m = (*moments)[i];
      if (!r.TensorValue(&m)) return Corrupt(path, "truncated Adam moment");
      if (m.numel() != 0 && m.numel() != params[i].value().numel()) {
        return Corrupt(path, "Adam moment shape mismatch");
      }
    }
  }

  struct BnState {
    bool initialized = false;
    Tensor mean, var;
  };
  std::vector<BnState> bn_states(bns.size());
  for (size_t b = 0; b < bns.size(); ++b) {
    if (!r.Pod(&flag) || !r.TensorValue(&bn_states[b].mean) ||
        !r.TensorValue(&bn_states[b].var)) {
      return Corrupt(path, "truncated BatchNorm state");
    }
    bn_states[b].initialized = flag != 0;
    if (bn_states[b].mean.numel() != bns[b]->running_mean().numel() ||
        bn_states[b].var.numel() != bns[b]->running_var().numel()) {
      return Corrupt(path, "BatchNorm shape mismatch");
    }
  }

  Tensor table;
  int64_t emb_step = 0;
  if (!r.TensorValue(&table) || !r.Pod(&emb_step)) {
    return Corrupt(path, "truncated embedding state");
  }
  std::unordered_map<int64_t, Tensor> emb_m, emb_v;
  for (auto* moments : {&emb_m, &emb_v}) {
    if (!r.Pod(&map_count)) return Corrupt(path, "truncated sparse Adam map");
    if (map_count > num_rows) return Corrupt(path, "oversized sparse Adam map");
    for (uint64_t i = 0; i < map_count; ++i) {
      int64_t row = 0;
      Tensor m;
      if (!r.Pod(&row) || !r.TensorValue(&m)) {
        return Corrupt(path, "truncated sparse Adam entry");
      }
      if (!moments->emplace(row, std::move(m)).second) {
        return Corrupt(path, "duplicate sparse Adam row");
      }
    }
  }
  if (!r.exhausted()) return Corrupt(path, "trailing bytes");

  // Everything parsed and shape-checked; the component setters re-validate
  // and are ordered so the first (still fallible) ones run before any
  // irreversible mutation.
  EHNA_RETURN_NOT_OK(
      embedding_.SetState(table, emb_step, std::move(emb_m), std::move(emb_v)));
  EHNA_RETURN_NOT_OK(
      optimizer_.SetState(adam_t, std::move(adam_m), std::move(adam_v)));
  std::vector<Var> mutable_params = aggregator_.Parameters();
  EHNA_CHECK_EQ(mutable_params.size(), param_values.size());
  for (size_t i = 0; i < mutable_params.size(); ++i) {
    mutable_params[i].mutable_value() = std::move(param_values[i]);
    mutable_params[i].ZeroGrad();
  }
  for (size_t b = 0; b < bns.size(); ++b) {
    bns[b]->SetRunningStats(bn_states[b].mean, bn_states[b].var,
                            bn_states[b].initialized);
  }
  rng_.set_state(rng_state);
  epoch_index_ = epoch;
  return Status::OK();
}

Status SaveCheckpoint(const EhnaModel& model, const std::string& path) {
  return model.SaveCheckpoint(path);
}

Status RestoreCheckpoint(EhnaModel* model, const std::string& path) {
  EHNA_CHECK(model != nullptr);
  return model->RestoreCheckpoint(path);
}

// ------------------------------------------------------ CheckpointManager

CheckpointManager::CheckpointManager(std::string dir, int keep_last)
    : dir_(std::move(dir)), keep_last_(std::max(1, keep_last)) {}

std::string CheckpointManager::PathFor(const std::string& filename) const {
  return (std::filesystem::path(dir_) / filename).string();
}

std::vector<std::string> CheckpointManager::ListSnapshots() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > std::strlen(kSnapshotPrefix) + std::strlen(kSnapshotSuffix) &&
        name.rfind(kSnapshotPrefix, 0) == 0 &&
        name.compare(name.size() - std::strlen(kSnapshotSuffix),
                     std::string::npos, kSnapshotSuffix) == 0) {
      names.push_back(name);
    }
  }
  // Epochs are zero-padded to fixed width, so lexicographic == numeric.
  std::sort(names.begin(), names.end());
  return names;
}

Status CheckpointManager::Save(const EhnaModel& model, uint64_t epoch) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return Status::IoError("cannot create checkpoint dir: " + dir_);

  const std::string name = SnapshotName(epoch);
  EHNA_RETURN_NOT_OK(model.SaveCheckpoint(PathFor(name)));
  // The pointer flips to the new snapshot only after the snapshot itself is
  // durably in place; a crash between the two writes leaves the previous
  // pointer naming a complete file.
  EHNA_RETURN_NOT_OK(AtomicWriteFile(PathFor(kLatestFile), name + "\n"));

  std::vector<std::string> names = ListSnapshots();
  const size_t keep = static_cast<size_t>(keep_last_);
  if (names.size() > keep) {
    for (size_t i = 0; i + keep < names.size(); ++i) {
      std::filesystem::remove(PathFor(names[i]), ec);  // best-effort.
    }
  }
  return Status::OK();
}

Status CheckpointManager::RestoreLatest(EhnaModel* model) const {
  EHNA_CHECK(model != nullptr);
  std::vector<std::string> names = ListSnapshots();
  // Newest first; the LATEST pointer, when readable and present in the
  // listing, is tried before anything else.
  std::reverse(names.begin(), names.end());
  {
    std::ifstream latest(PathFor(kLatestFile));
    std::string pointed;
    if (latest >> pointed) {
      auto it = std::find(names.begin(), names.end(), pointed);
      if (it != names.end()) std::rotate(names.begin(), it, it + 1);
    }
  }
  if (names.empty()) {
    return Status::NotFound("no checkpoint in " + dir_);
  }
  Status last_error;
  for (const std::string& name : names) {
    const Status st = model->RestoreCheckpoint(PathFor(name));
    if (st.ok()) return st;
    last_error = st;
    EHNA_LOG(Warning) << "skipping unloadable checkpoint " << PathFor(name)
                      << ": " << st;
  }
  return last_error;
}

}  // namespace ehna
