#ifndef EHNA_CORE_MODEL_H_
#define EHNA_CORE_MODEL_H_

#include <functional>
#include <vector>

#include "core/aggregator.h"
#include "core/ehna_config.h"
#include "graph/noise_distribution.h"
#include "graph/temporal_graph.h"
#include "nn/optim.h"

namespace ehna {

/// The complete EHNA model and trainer (§IV): per-edge historical
/// neighborhood aggregation for both endpoints and the sampled negatives,
/// the margin-based hinge objective of Eq. 6/7, sparse-Adam updates for the
/// embedding table, dense Adam for the network parameters, and the final
/// inference pass that replaces each node's embedding with its aggregated
/// embedding anchored at its most recent interaction.
class EhnaModel {
 public:
  /// `graph` must outlive the model.
  EhnaModel(const TemporalGraph* graph, const EhnaConfig& config);

  /// Per-epoch training statistics.
  struct EpochStats {
    double avg_loss = 0.0;
    size_t edges = 0;
    double seconds = 0.0;
  };

  /// One pass over (a shuffled sample of) the training edges.
  EpochStats TrainEpoch();

  /// Runs `config.epochs` epochs (or `epochs` if > 0). `progress`, when
  /// set, is invoked after each epoch.
  std::vector<EpochStats> Train(
      int epochs = 0,
      const std::function<void(int epoch, const EpochStats&)>& progress = {});

  /// Builds the autograd loss for one edge (Eq. 6, or Eq. 7 when
  /// bidirectional negatives are enabled). Exposed for tests.
  Var EdgeLoss(const TemporalEdge& edge, bool training);

  /// §IV.D final pass: one aggregation per node anchored at its most recent
  /// edge; the aggregated embeddings become the final embeddings (written
  /// back into the table) and are returned as an [N, dim] matrix. Isolated
  /// nodes keep their (L2-normalized) raw embeddings.
  Tensor FinalizeEmbeddings();

  /// Aggregated embedding of one node at a reference time (inference mode).
  Tensor AggregateAt(NodeId node, Timestamp ref_time);

  const Tensor& embedding_table() const { return embedding_.table(); }
  Embedding* embedding() { return &embedding_; }
  EhnaAggregator* aggregator() { return &aggregator_; }
  const EhnaConfig& config() const { return config_; }

 private:
  const TemporalGraph* graph_;
  EhnaConfig config_;
  Rng rng_;
  Embedding embedding_;
  EhnaAggregator aggregator_;
  NoiseDistribution noise_;
  Adam optimizer_;
};

}  // namespace ehna

#endif  // EHNA_CORE_MODEL_H_
