#ifndef EHNA_CORE_MODEL_H_
#define EHNA_CORE_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/aggregator.h"
#include "core/ehna_config.h"
#include "graph/noise_distribution.h"
#include "graph/temporal_graph.h"
#include "nn/arena.h"
#include "nn/optim.h"
#include "util/thread_pool.h"

namespace ehna {

/// The complete EHNA model and trainer (§IV): per-edge historical
/// neighborhood aggregation for both endpoints and the sampled negatives,
/// the margin-based hinge objective of Eq. 6/7, sparse-Adam updates for the
/// embedding table, dense Adam for the network parameters, and the final
/// inference pass that replaces each node's embedding with its aggregated
/// embedding anchored at its most recent interaction.
///
/// With `config.num_threads > 1` (0 = hardware concurrency) the trainer is
/// data-parallel: each minibatch is sharded across worker replicas that
/// build independent autograd tapes, and the per-shard gradients are
/// reduced into the single shared parameter set before one optimizer step,
/// so a step remains mathematically equivalent to the serial batch (up to
/// float summation order). Inference (FinalizeEmbeddings) fans out across
/// nodes with per-node RNG streams, making it reproducible for a fixed
/// seed regardless of thread count. `num_threads == 1` runs the exact
/// legacy serial path.
///
/// With `config.pipeline_depth >= 1` the trainer additionally overlaps
/// walk sampling / plan assembly with LSTM compute (DESIGN.md §11): a
/// producer task on a dedicated pipeline thread pre-builds up to
/// `pipeline_depth` batch packs behind a bounded queue while the consumer
/// runs forward/backward/optimizer on the previous pack. Plans capture
/// every RNG draw up front in the exact synchronous order and compute
/// consumes no RNG, so async training is bitwise-identical to the
/// synchronous path — checkpoint bytes included — at any thread count.
class EhnaModel {
 public:
  /// `graph` must outlive the model.
  EhnaModel(const TemporalGraph* graph, const EhnaConfig& config);
  ~EhnaModel();

  /// Per-epoch training statistics.
  struct EpochStats {
    double avg_loss = 0.0;
    size_t edges = 0;
    double seconds = 0.0;
  };

  /// One pass over (a shuffled sample of) the training edges.
  EpochStats TrainEpoch();

  /// Trains until `config.epochs` (or `epochs` if > 0) epochs have been
  /// *completed*, counting epochs restored from a checkpoint — so a model
  /// resumed at epoch k runs exactly the remaining epochs and lands on the
  /// same final state as an uninterrupted run. `progress`, when set, is
  /// invoked after each epoch with its zero-based index. When
  /// `config.checkpoint_dir` is non-empty, a snapshot is written every
  /// `config.checkpoint_every` completed epochs (and after the final one),
  /// with keep-last-N rotation; snapshot failures are logged, not fatal.
  std::vector<EpochStats> Train(
      int epochs = 0,
      const std::function<void(int epoch, const EpochStats&)>& progress = {});

  /// Builds the autograd loss for one edge (Eq. 6, or Eq. 7 when
  /// bidirectional negatives are enabled). Exposed for tests.
  Var EdgeLoss(const TemporalEdge& edge, bool training);

  /// §IV.D final pass: one aggregation per node anchored at its most recent
  /// edge; the aggregated embeddings become the final embeddings (written
  /// back into the table) and are returned as an [N, dim] matrix. Isolated
  /// nodes keep their (L2-normalized) raw embeddings. Delegates to the
  /// trainer-free InferenceEngine (core/inference.h) against this model's
  /// graph/table/aggregator — byte-identical to the pre-split
  /// implementation (pinned by tests/serve_test.cc).
  Tensor FinalizeEmbeddings();

  /// Aggregated embedding of one node at a reference time (inference mode).
  Tensor AggregateAt(NodeId node, Timestamp ref_time);

  /// The resolved worker count: `config.num_threads`, with 0 mapped to the
  /// hardware concurrency (at least 1).
  int num_threads() const;

  /// Serializes the complete training state — aggregator parameters, dense
  /// Adam moments and step counter, BatchNorm running statistics, the
  /// embedding table with its sparse per-row Adam state, the RNG stream
  /// state, and the completed-epoch counter — to `path` atomically (temp
  /// file + rename). Implemented in checkpoint.cc; format in checkpoint.h.
  Status SaveCheckpoint(const std::string& path) const;

  /// Restores a snapshot written by SaveCheckpoint. The model must have
  /// been constructed over the same graph shape and config fingerprint
  /// (seed, dim, variant, LSTM depth). On any validation failure —
  /// truncation, corruption, or fingerprint mismatch — the model is left
  /// unmodified and the Status describes the rejection.
  Status RestoreCheckpoint(const std::string& path);

  /// Epochs completed so far; restored by RestoreCheckpoint, and what
  /// Train() counts toward its target, so a resumed run finishes exactly
  /// the epochs an uninterrupted run would have.
  uint64_t completed_epochs() const { return epoch_index_; }

  const Tensor& embedding_table() const { return embedding_.table(); }
  Embedding* embedding() { return &embedding_; }
  EhnaAggregator* aggregator() { return &aggregator_; }
  const EhnaConfig& config() const { return config_; }

  /// The master RNG stream (serialized into checkpoints). Exposed so a
  /// standalone InferenceEngine driven over this model's state can consume
  /// the exact draw sequence the model's own serial finalize would — the
  /// basis of the inference-core equivalence tests.
  Rng* mutable_rng() { return &rng_; }

 private:
  /// One data-parallel worker: a replica aggregator with its own parameter
  /// leaves, embedding gradient sink, and scratch stats.
  struct Worker;

  /// One async-pipeline slot: a batch's plan captures (per shard) plus the
  /// TensorArena its tape will run in. Slots rotate producer -> ready
  /// queue -> consumer -> free queue; with pipeline_depth = 1 two slots
  /// alternate (double buffering).
  struct BatchPack;

  /// EdgeLoss evaluated against an arbitrary aggregator/RNG (the serial
  /// path passes the master pair; parallel workers pass their replica and
  /// a per-edge stream).
  Var EdgeLossOn(EhnaAggregator* aggregator, const TemporalEdge& edge,
                 bool training, Rng* rng);

  /// Plans every aggregation one edge's loss needs — src, dst, then each
  /// sampled negative — appending to `plans` while consuming `rng` in
  /// exactly the order EdgeLossOn would (walk sampling, fallback draws and
  /// negative sampling interleave identically). The edge's plan span is
  /// [old plans->size(), plans->size()).
  void PlanEdge(EhnaAggregator* aggregator, const TemporalEdge& edge,
                Rng* rng, std::vector<AggregationPlan>* plans);

  /// Assembles Eq. 6/7 from an edge's slice of packed-aggregation outputs
  /// laid out [zx, zy, negatives...] starting at `base`.
  Var EdgeLossFromZ(const std::vector<Var>& z, size_t base);

  /// The epoch's shuffled (and possibly capped) edge-index order, drawn
  /// from the master RNG — the first thing every epoch variant consumes.
  std::vector<size_t> ShuffledEpochOrder();

  EpochStats TrainEpochSerial();
  EpochStats TrainEpochParallel();

  /// Async-pipeline variants of the two epoch loops (DESIGN.md §11):
  /// byte-identical results, with planning overlapped against compute.
  EpochStats TrainEpochSerialAsync();
  EpochStats TrainEpochParallelAsync();

  /// True when this epoch should run the producer/consumer pipeline:
  /// pipeline_depth >= 1, batched aggregation on, and at least one
  /// negative sample (the degenerate negative-free objective keeps the
  /// synchronous path's early-exit semantics).
  bool PipelineEnabled() const;

  /// Lazily builds the pool (and, for EnsureWorkers, the worker replicas)
  /// sized to num_threads().
  ThreadPool* EnsurePool();
  void EnsureWorkers();

  /// Lazily builds the single-thread producer pool and the pipeline's
  /// recycled batch-pack slots (pipeline_depth + 1 of them).
  ThreadPool* EnsurePipelinePool();
  void EnsurePipelineSlots(size_t num_slots);

  /// Copies master parameter values and BatchNorm running statistics into a
  /// worker replica (called between optimizer steps, never concurrently
  /// with them).
  void SyncWorkerFromMaster(Worker* worker);

  /// Accumulates a worker's parameter gradients and sparse embedding
  /// gradients into the master, then clears the worker-side state.
  void ReduceWorkerGrads(Worker* worker);

  /// Folds the workers' post-batch BatchNorm running statistics back into
  /// the master as an edge-count-weighted average.
  void MergeWorkerBatchNormStats(size_t num_used);

  const TemporalGraph* graph_;
  EhnaConfig config_;
  Rng rng_;
  Embedding embedding_;
  EhnaAggregator aggregator_;
  NoiseDistribution noise_;
  Adam optimizer_;

  /// Bump allocator for the serial trainer's per-batch tapes. Active (via
  /// TensorArena::Scope) around each batch's forward/backward, and Reset
  /// once the optimizer step has consumed the gradients (DESIGN.md §9).
  TensorArena arena_;

  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Worker>> workers_;

  /// Async pipeline state: a one-thread pool the per-epoch producer task
  /// runs on (so its exceptions surface at the Wait join point), and the
  /// recycled pack slots. Only materialized when PipelineEnabled().
  std::unique_ptr<ThreadPool> pipeline_pool_;
  std::vector<std::unique_ptr<BatchPack>> pipeline_slots_;

  uint64_t epoch_index_ = 0;  // namespaces the per-edge training streams.
};

}  // namespace ehna

#endif  // EHNA_CORE_MODEL_H_
