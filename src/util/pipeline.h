#ifndef EHNA_UTIL_PIPELINE_H_
#define EHNA_UTIL_PIPELINE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"

namespace ehna {

/// Telemetry hooks for a BoundedQueue (DESIGN.md §11). All pointers are
/// optional; when set, the queue keeps `depth` at its live occupancy and
/// accumulates the nanoseconds producers spent blocked on a full queue
/// (`producer_stall_ns`) and consumers spent blocked on an empty one
/// (`consumer_stall_ns`). Stall clocks are only read when a Push/Pop
/// actually blocks, so an overlapped steady state records (almost) nothing.
struct QueueMetrics {
  Gauge* depth = nullptr;
  Counter* producer_stall_ns = nullptr;
  Counter* consumer_stall_ns = nullptr;
};

/// The async training pipeline's queue metrics, registered under
/// pipeline.queue_depth / pipeline.producer_stall_ns /
/// pipeline.consumer_stall_ns (see DESIGN.md §8 and §11).
QueueMetrics TrainPipelineQueueMetrics();

/// A small bounded MPMC work queue for producer/consumer pipelines:
/// Push blocks while the queue holds `capacity` items, Pop blocks while it
/// is empty, and Close() releases both sides — pending Pops drain the
/// remaining items and then return nullopt; Push on a closed queue drops
/// the item and returns false.
///
/// The implementation is a mutex + two condition variables rather than a
/// lock-free ring: the training pipeline pushes a handful of *batch packs*
/// per epoch (hundreds of operations per second at most), so contention is
/// nil and the mutex doubles as the happens-before edge that publishes a
/// producer-filled pack to the consumer thread.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity, QueueMetrics metrics = {})
      : capacity_(capacity), metrics_(metrics) {
    EHNA_CHECK_GT(capacity, 0u);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false —
  /// and discards `value` — iff the queue was closed.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      StallTimer stall(metrics_.producer_stall_ns);
      not_full_.wait(lock, [this] {
        return closed_ || items_.size() < capacity_;
      });
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    SetDepth();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (or the queue is closed and
  /// drained). Returns nullopt iff the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() && !closed_) {
      StallTimer stall(metrics_.consumer_stall_ns);
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    }
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    SetDepth();
    not_full_.notify_one();
    return value;
  }

  /// Marks the queue closed and wakes every blocked Push/Pop. Items already
  /// queued remain poppable; idempotent.
  void Close() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::unique_lock<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::unique_lock<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  /// Accumulates the lifetime of a blocking wait into a stall counter.
  /// Inert when the counter is unset or metrics are globally disabled.
  class StallTimer {
   public:
    explicit StallTimer(Counter* counter)
        : counter_(MetricsEnabled() ? counter : nullptr) {
      if (counter_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    ~StallTimer() {
      if (counter_ != nullptr) {
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_);
        counter_->Add(ns.count() < 0 ? 0 : static_cast<uint64_t>(ns.count()));
      }
    }
    StallTimer(const StallTimer&) = delete;
    StallTimer& operator=(const StallTimer&) = delete;

   private:
    Counter* counter_;
    std::chrono::steady_clock::time_point start_;
  };

  void SetDepth() {
    if (metrics_.depth != nullptr) {
      metrics_.depth->Set(static_cast<double>(items_.size()));
    }
  }

  const size_t capacity_;
  const QueueMetrics metrics_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ehna

#endif  // EHNA_UTIL_PIPELINE_H_
