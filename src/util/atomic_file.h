#ifndef EHNA_UTIL_ATOMIC_FILE_H_
#define EHNA_UTIL_ATOMIC_FILE_H_

#include <functional>
#include <ostream>
#include <string>

#include "util/status.h"

namespace ehna {

/// Writes a file atomically: `write_fn` streams the full content into a
/// uniquely-named temporary file in the same directory as `path`, which is
/// then `rename()`d over `path`. POSIX rename is atomic within a filesystem,
/// so a reader (or a process that crashes mid-write) either sees the old
/// complete file or the new complete file — never a truncated hybrid.
///
/// On any failure — the temporary cannot be opened, `write_fn` returns an
/// error, the stream enters a failed state, or the rename itself fails — the
/// destination is left untouched and the temporary is removed. This is the
/// single write path for every on-disk artifact the library produces
/// (tensors, edge lists, TSV tables, training checkpoints).
Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(std::ostream&)>& write_fn,
                       bool binary = false);

/// Convenience: atomically replaces `path` with `content` (binary-safe).
Status AtomicWriteFile(const std::string& path, const std::string& content,
                       bool binary = false);

}  // namespace ehna

#endif  // EHNA_UTIL_ATOMIC_FILE_H_
