#ifndef EHNA_UTIL_CRC32_H_
#define EHNA_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace ehna {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `size` bytes.
/// `seed` is the running value for incremental computation: feed the previous
/// return value to continue a checksum across multiple buffers; the default
/// starts a fresh one. Used to detect bit-level corruption in checkpoint
/// payloads, where a truncation check alone cannot.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace ehna

#endif  // EHNA_UTIL_CRC32_H_
