#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/table_writer.h"

namespace ehna {

namespace metrics_internal {

std::atomic<bool> g_enabled{true};

size_t CurrentShard() {
  static std::atomic<size_t> next_slot{0};
  thread_local const size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace metrics_internal

// ---------------------------------------------------------- HistogramData

HistogramData::HistogramData() : buckets_(kNumBuckets, 0) {}

size_t HistogramData::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  const int exp = 63 - std::countl_zero(value);  // floor(log2), >= kSubBucketBits
  const uint64_t sub =
      (value >> (exp - kSubBucketBits)) & (kSubBuckets - 1);
  return static_cast<size_t>(exp - kSubBucketBits + 1) * kSubBuckets +
         static_cast<size_t>(sub);
}

uint64_t HistogramData::BucketLowerBound(size_t index) {
  EHNA_DCHECK(index < kNumBuckets);
  if (index < kSubBuckets) return index;
  const uint64_t octave = index >> kSubBucketBits;  // >= 1
  const uint64_t sub = index & (kSubBuckets - 1);
  return (kSubBuckets + sub) << (octave - 1);
}

uint64_t HistogramData::BucketUpperBound(size_t index) {
  EHNA_DCHECK(index < kNumBuckets);
  if (index < kSubBuckets) return index;
  const uint64_t octave = index >> kSubBucketBits;
  const uint64_t width = uint64_t{1} << (octave - 1);
  return BucketLowerBound(index) + (width - 1);
}

void HistogramData::Record(uint64_t value, uint64_t repeat) {
  if (repeat == 0) return;
  buckets_[BucketIndex(value)] += repeat;
  count_ += repeat;
  sum_ += value * repeat;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void HistogramData::Merge(const HistogramData& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double HistogramData::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      // The rank-th smallest sample lies in bucket i, so its upper bound
      // (clamped by the recorded max) is >= the true quantile and within
      // the bucket's relative width of it.
      return static_cast<double>(std::min(BucketUpperBound(i), max_));
    }
  }
  return static_cast<double>(max_);  // unreachable when counts are coherent
}

bool HistogramData::operator==(const HistogramData& other) const {
  return count_ == other.count_ && sum_ == other.sum_ &&
         min_ == other.min_ && max_ == other.max_ &&
         buckets_ == other.buckets_;
}

// ----------------------------------------------------- StreamingHistogram

StreamingHistogram::StreamingHistogram()
    : shards_(new Shard[metrics_internal::kShards]) {}

void StreamingHistogram::Record(uint64_t value) {
  if (!MetricsEnabled()) return;
  Shard& shard = shards_[metrics_internal::CurrentShard()];
  shard.buckets[HistogramData::BucketIndex(value)].fetch_add(
      1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = shard.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !shard.min.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
  seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !shard.max.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
}

HistogramData StreamingHistogram::Merged() const {
  HistogramData out;
  for (size_t s = 0; s < metrics_internal::kShards; ++s) {
    const Shard& shard = shards_[s];
    for (size_t i = 0; i < HistogramData::kNumBuckets; ++i) {
      out.buckets_[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    out.count_ += shard.count.load(std::memory_order_relaxed);
    out.sum_ += shard.sum.load(std::memory_order_relaxed);
    out.min_ = std::min(out.min_, shard.min.load(std::memory_order_relaxed));
    out.max_ = std::max(out.max_, shard.max.load(std::memory_order_relaxed));
  }
  return out;
}

void StreamingHistogram::Reset() {
  for (size_t s = 0; s < metrics_internal::kShards; ++s) {
    Shard& shard = shards_[s];
    for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.min.store(UINT64_MAX, std::memory_order_relaxed);
    shard.max.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------- Snapshot

namespace {

std::string FormatJsonDouble(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string EscapeJsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string HistogramJson(const HistogramData& h) {
  std::ostringstream os;
  os << "{\"count\": " << h.count() << ", \"sum\": " << h.sum()
     << ", \"min\": " << h.min() << ", \"max\": " << h.max()
     << ", \"mean\": " << FormatJsonDouble(h.Mean())
     << ", \"p50\": " << FormatJsonDouble(h.Quantile(0.5))
     << ", \"p90\": " << FormatJsonDouble(h.Quantile(0.9))
     << ", \"p99\": " << FormatJsonDouble(h.Quantile(0.99)) << "}";
  return os.str();
}

}  // namespace

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const CounterEntry& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const GaugeEntry& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

const HistogramData* MetricsSnapshot::Histogram(std::string_view name) const {
  for (const HistogramEntry& h : histograms) {
    if (h.name == name) return &h.data;
  }
  return nullptr;
}

double MetricsSnapshot::PhaseSeconds(std::string_view name) const {
  const HistogramData* h = Histogram(name);
  return h == nullptr ? 0.0 : static_cast<double>(h->sum()) * 1e-9;
}

TableWriter MetricsSnapshot::ToTable() const {
  TableWriter table("Metrics snapshot",
                    {"metric", "type", "value", "count", "mean", "p50",
                     "p90", "p99", "min", "max"});
  for (const CounterEntry& c : counters) {
    table.AddRow({c.name, "counter", std::to_string(c.value)});
  }
  for (const GaugeEntry& g : gauges) {
    table.AddRow({g.name, "gauge", TableWriter::FormatDouble(g.value, 6)});
  }
  for (const HistogramEntry& h : histograms) {
    table.AddRow({h.name, "histogram", std::to_string(h.data.sum()),
                  std::to_string(h.data.count()),
                  TableWriter::FormatDouble(h.data.Mean(), 1),
                  TableWriter::FormatDouble(h.data.Quantile(0.5), 0),
                  TableWriter::FormatDouble(h.data.Quantile(0.9), 0),
                  TableWriter::FormatDouble(h.data.Quantile(0.99), 0),
                  std::to_string(h.data.min()),
                  std::to_string(h.data.max())});
  }
  return table;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    "
       << EscapeJsonString(counters[i].name) << ": " << counters[i].value;
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    "
       << EscapeJsonString(gauges[i].name) << ": "
       << FormatJsonDouble(gauges[i].value);
  }
  os << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    "
       << EscapeJsonString(histograms[i].name) << ": "
       << HistogramJson(histograms[i].data);
  }
  os << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

Status MetricsSnapshot::WriteTsv(const std::string& path) const {
  return ToTable().WriteTsv(path);
}

Status MetricsSnapshot::WriteJson(const std::string& path) const {
  return AtomicWriteFile(path, ToJson());
}

// ---------------------------------------------------------------- Registry

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: hot paths cache metric pointers in function-local statics, and
  // those must stay valid for the whole process lifetime.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

StreamingHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<StreamingHistogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Total()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.push_back({name, hist->Merged()});
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& kv : counters_) kv.second->Reset();
  for (const auto& kv : gauges_) kv.second->Reset();
  for (const auto& kv : histograms_) kv.second->Reset();
}

}  // namespace ehna
