#ifndef EHNA_UTIL_ALIAS_SAMPLER_H_
#define EHNA_UTIL_ALIAS_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace ehna {

/// Walker's alias method: O(n) construction, O(1) sampling from an arbitrary
/// discrete distribution. Used for edge sampling (LINE), negative-node
/// sampling (degree^0.75 noise distribution) and static-walk transitions.
class AliasSampler {
 public:
  AliasSampler() = default;

  /// Builds the tables from non-negative weights. Zero-total or empty weight
  /// vectors yield an empty sampler (`size() == 0`, sampling is invalid).
  explicit AliasSampler(const std::vector<double>& weights) { Build(weights); }

  /// (Re)builds the tables from `weights`.
  void Build(const std::vector<double>& weights);

  /// Number of outcomes (0 if unbuilt/degenerate).
  size_t size() const { return prob_.size(); }

  bool empty() const { return prob_.empty(); }

  /// Draws one index in [0, size()). Requires size() > 0: sampling from an
  /// empty/degenerate sampler (unbuilt, empty weights, or all-zero weights)
  /// aborts with a checked error in all build types. Callers holding a
  /// possibly-degenerate sampler must test empty() first.
  size_t Sample(Rng* rng) const;

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace ehna

#endif  // EHNA_UTIL_ALIAS_SAMPLER_H_
