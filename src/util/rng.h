#ifndef EHNA_UTIL_RNG_H_
#define EHNA_UTIL_RNG_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ehna {

/// A fast, deterministic pseudo-random generator (xoshiro256**), seeded via
/// splitmix64. All stochastic components of the library (walk sampling,
/// negative sampling, parameter init, generators) draw from this type so
/// that experiments are reproducible from a single seed.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` using splitmix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box-Muller, cached spare).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential variate with the given rate (> 0).
  double Exponential(double rate);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Geometric-like power-law integer in [1, max]: P(k) ~ k^{-alpha}.
  /// Sampled by inversion on the discretized CDF; intended for synthetic
  /// degree/burst-size draws, not for statistical rigor.
  uint64_t PowerLaw(double alpha, uint64_t max);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (floyd's algorithm when k << n,
  /// shuffle otherwise). If k >= n, returns all of [0, n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent generator (for per-thread streams).
  Rng Fork();

  /// A decorrelated generator for logical stream `stream` of `seed`,
  /// derived via splitmix64 so that Stream(s, i) is a pure function of
  /// (s, i). This is what gives parallel walk sampling and inference
  /// bitwise-reproducible results for a fixed seed regardless of how tasks
  /// are scheduled across threads.
  static Rng Stream(uint64_t seed, uint64_t stream);

  /// The complete generator state (xoshiro lanes plus the Box-Muller spare
  /// cache). Snapshotting and restoring this makes a resumed computation
  /// continue the exact draw sequence of the original — the basis of the
  /// trainer's resume-determinism guarantee.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_spare_normal = false;
    double spare_normal = 0.0;
  };

  State state() const;
  void set_state(const State& state);

 private:
  uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace ehna

#endif  // EHNA_UTIL_RNG_H_
