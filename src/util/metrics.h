#ifndef EHNA_UTIL_METRICS_H_
#define EHNA_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ehna {

class TableWriter;

/// Process-wide observability layer for the trainer, walk engines, and eval
/// harness (DESIGN.md §8): named counters, gauges, and mergeable streaming
/// histograms behind a single registry, designed so instrumentation on the
/// data-parallel hot paths is contention-free and cannot perturb training
/// results.
///
/// Determinism contract: every piece of merged state is an integer (event
/// counts, nanosecond sums, histogram bucket counts) or an order-independent
/// reduction (min/max), so `Snapshot()` is a pure function of the *multiset*
/// of recorded events — identical regardless of which worker recorded what,
/// how threads were scheduled, or which shard each thread landed on. And
/// because recording never touches an Rng, a parameter, or any other model
/// state, training with metrics enabled is bitwise-identical to training
/// with them disabled (tests/checkpoint_test.cc proves this on checkpoint
/// bytes).

namespace metrics_internal {

/// Global on/off switch, read with relaxed ordering on every record call.
extern std::atomic<bool> g_enabled;

/// Fixed shard fan-out for all sharded metric storage. Threads are assigned
/// shards round-robin at first use; with at most kShards concurrent writers
/// every writer owns a private cache line (zero contention), and beyond that
/// the relaxed atomics stay correct, merely sharing lines.
constexpr size_t kShards = 16;

/// The round-robin shard slot of the calling thread.
size_t CurrentShard();

}  // namespace metrics_internal

/// True when metric recording is active (the default). Flip with
/// MetricsRegistry::SetEnabled.
inline bool MetricsEnabled() {
  return metrics_internal::g_enabled.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------- Counter

/// Monotonically increasing event counter, sharded across cache-line-padded
/// atomic cells so concurrent workers never contend. Total() merges the
/// shards in shard order; u64 addition is commutative, so the total is
/// exact (no torn or lost updates) and independent of thread interleaving.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta = 1) {
    if (!MetricsEnabled()) return;
    shards_[metrics_internal::CurrentShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Total() const {
    uint64_t total = 0;
    for (const Cell& c : shards_) {
      total += c.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every shard. Not atomic with respect to concurrent Add();
  /// callers reset between phases, not during them.
  void Reset() {
    for (Cell& c : shards_) c.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  std::array<Cell, metrics_internal::kShards> shards_;
};

// ------------------------------------------------------------------ Gauge

/// Last-writer-wins instantaneous value (throughput, loss, sizes). A single
/// atomic double: gauges are written once per epoch, not per event, so
/// sharding would buy nothing.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) {
    if (!MetricsEnabled()) return;
    bits_.store(ToBits(v), std::memory_order_relaxed);
  }

  double Value() const {
    return FromBits(bits_.load(std::memory_order_relaxed));
  }

  void Reset() { bits_.store(ToBits(0.0), std::memory_order_relaxed); }

 private:
  static uint64_t ToBits(double v) {
    uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double FromBits(uint64_t b) {
    double v;
    __builtin_memcpy(&v, &b, sizeof(v));
    return v;
  }
  std::atomic<uint64_t> bits_{0};
};

// ---------------------------------------------------------- HistogramData

/// Value-type log-linear histogram over non-negative integer samples
/// (nanosecond latencies, lengths, counts). Buckets are exact for values
/// below 2^kSubBucketBits and thereafter split each octave [2^e, 2^{e+1})
/// into 2^kSubBucketBits equal sub-buckets, bounding the relative width of
/// any bucket — and hence the value error of any quantile estimate — by
/// 2^-kSubBucketBits.
///
/// All state is integral (bucket counts, count, sum) or an
/// order-independent min/max, so Merge is exactly associative and
/// commutative: merging any permutation or parenthesization of parts yields
/// an identical histogram (tests/metrics_property_test.cc).
class HistogramData {
 public:
  /// Sub-bucket resolution: 16 sub-buckets per octave, 1/16 = 6.25%
  /// worst-case relative bucket width.
  static constexpr int kSubBucketBits = 4;
  static constexpr uint64_t kSubBuckets = uint64_t{1} << kSubBucketBits;
  /// Exact buckets [0, kSubBuckets) + (64 - kSubBucketBits) octaves of
  /// kSubBuckets sub-buckets covers every uint64 value.
  static constexpr size_t kNumBuckets =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

  /// Upper bound on |estimate - true_quantile| / true_quantile for any
  /// non-zero sample (estimates land in the true sample's bucket).
  static constexpr double MaxRelativeError() {
    return 1.0 / static_cast<double>(kSubBuckets);
  }

  HistogramData();

  /// Bucket index of `value`; inverse bounds via BucketLowerBound /
  /// BucketUpperBound (inclusive).
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(size_t index);
  static uint64_t BucketUpperBound(size_t index);

  void Record(uint64_t value, uint64_t repeat = 1);

  /// Adds `other`'s samples into this histogram.
  void Merge(const HistogramData& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  /// Smallest / largest recorded sample; 0 when empty.
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// Value estimate at quantile q in [0, 1]: the upper bound of the bucket
  /// holding the sample of rank ceil(q * count), clamped to [min, max], so
  /// the estimate is never below the true rank-q sample and at most
  /// MaxRelativeError() above it. Returns 0 when empty.
  double Quantile(double q) const;

  bool operator==(const HistogramData& other) const;

 private:
  friend class StreamingHistogram;  // Merged() fills the fields directly.

  std::vector<uint64_t> buckets_;  // dense, kNumBuckets entries
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

// ----------------------------------------------------- StreamingHistogram

/// Concurrent histogram the hot paths record into: per-shard dense atomic
/// bucket arrays with the same layout as HistogramData. Record() touches
/// only the calling thread's shard (relaxed fetch_add / CAS min-max);
/// Merged() folds the shards in shard-index order into one HistogramData.
/// Since every reduction is commutative the merged result depends only on
/// the multiset of recorded samples.
class StreamingHistogram {
 public:
  StreamingHistogram();
  StreamingHistogram(const StreamingHistogram&) = delete;
  StreamingHistogram& operator=(const StreamingHistogram&) = delete;

  void Record(uint64_t value);

  /// Convenience for phase scopes: record a duration in nanoseconds.
  void RecordDuration(std::chrono::nanoseconds ns) {
    Record(ns.count() < 0 ? 0 : static_cast<uint64_t>(ns.count()));
  }

  HistogramData Merged() const;

  void Reset();

 private:
  struct Shard {
    std::array<std::atomic<uint64_t>, HistogramData::kNumBuckets> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
  };
  std::unique_ptr<Shard[]> shards_;
};

// ---------------------------------------------------------------- Snapshot

/// Point-in-time export of every registered metric, name-sorted. Rendered
/// three ways: an aligned table / TSV through the existing TableWriter, and
/// a JSON document written atomically (schema in DESIGN.md §8).
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    HistogramData data;
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  /// Lookup helpers; a missing name yields 0 / nullptr.
  uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  const HistogramData* Histogram(std::string_view name) const;

  /// Sum of a phase histogram in seconds (histograms record nanoseconds);
  /// 0 when the phase never ran.
  double PhaseSeconds(std::string_view name) const;

  /// One row per metric: name, type, value/count/sum, mean, p50/p90/p99,
  /// min, max (blank where not applicable).
  TableWriter ToTable() const;

  std::string ToJson() const;

  /// TSV via TableWriter (atomic write); JSON via AtomicWriteFile.
  Status WriteTsv(const std::string& path) const;
  Status WriteJson(const std::string& path) const;
};

// ---------------------------------------------------------------- Registry

/// Owner of every named metric. Registration (name lookup) takes a mutex;
/// the returned pointers are stable for the process lifetime, so hot paths
/// resolve a metric once (EHNA_TRACE_PHASE caches per call site) and then
/// record lock-free.
class MetricsRegistry {
 public:
  /// The process-wide registry (intentionally leaked: metric pointers must
  /// outlive every static destructor that might still record).
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  StreamingHistogram* GetHistogram(std::string_view name);

  /// Globally enables/disables recording (registration still works).
  static void SetEnabled(bool enabled) {
    metrics_internal::g_enabled.store(enabled, std::memory_order_relaxed);
  }

  /// Coherent name-sorted export of all registered metrics.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric's value, keeping registrations (and thus cached
  /// pointers) intact. For benches and tests; not atomic versus concurrent
  /// recording.
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<StreamingHistogram>, std::less<>>
      histograms_;
};

// ------------------------------------------------------------ Phase scopes

/// RAII phase-tracing scope: records the scope's wall-clock duration (ns)
/// into a StreamingHistogram on destruction. When metrics are disabled at
/// entry the scope is inert (no clock reads).
class PhaseScope {
 public:
  explicit PhaseScope(StreamingHistogram* hist)
      : hist_(MetricsEnabled() ? hist : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~PhaseScope() {
    if (hist_ != nullptr) {
      hist_->RecordDuration(std::chrono::steady_clock::now() - start_);
    }
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  StreamingHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

#define EHNA_METRICS_CONCAT_INNER_(a, b) a##b
#define EHNA_METRICS_CONCAT_(a, b) EHNA_METRICS_CONCAT_INNER_(a, b)

/// Times the rest of the enclosing block into the phase histogram `name`
/// (a string literal, by convention "<subsystem>.phase.<stage>"; recorded
/// unit is nanoseconds). The histogram pointer is resolved once per call
/// site via a function-local static, so steady-state cost is two clock
/// reads plus one relaxed fetch_add on a thread-private shard.
#define EHNA_TRACE_PHASE(name)                                              \
  static ::ehna::StreamingHistogram* const EHNA_METRICS_CONCAT_(            \
      ehna_phase_hist_, __LINE__) =                                         \
      ::ehna::MetricsRegistry::Global().GetHistogram(name);                 \
  ::ehna::PhaseScope EHNA_METRICS_CONCAT_(ehna_phase_scope_, __LINE__)(     \
      EHNA_METRICS_CONCAT_(ehna_phase_hist_, __LINE__))

}  // namespace ehna

#endif  // EHNA_UTIL_METRICS_H_
