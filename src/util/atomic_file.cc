#include "util/atomic_file.h"

#include <atomic>
#include <cstdio>
#include <fstream>

#ifdef _WIN32
#include <process.h>
#define EHNA_GETPID _getpid
#else
#include <unistd.h>
#define EHNA_GETPID getpid
#endif

namespace ehna {

namespace {

/// A per-process counter keeps concurrent writers (threads targeting the
/// same destination) from colliding on one temp name.
std::string TempPathFor(const std::string& path) {
  static std::atomic<uint64_t> counter{0};
  return path + ".tmp." + std::to_string(EHNA_GETPID()) + "." +
         std::to_string(counter.fetch_add(1));
}

}  // namespace

Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(std::ostream&)>& write_fn,
                       bool binary) {
  const std::string tmp = TempPathFor(path);
  {
    std::ofstream out(tmp, binary ? std::ios::binary | std::ios::trunc
                                  : std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open temporary for write: " + tmp);
    }
    Status st = write_fn(out);
    if (st.ok()) {
      out.flush();
      if (!out) st = Status::IoError("write failed: " + tmp);
    }
    if (!st.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return st;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const std::string& content,
                       bool binary) {
  return AtomicWriteFile(
      path,
      [&content](std::ostream& out) -> Status {
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        return Status::OK();
      },
      binary);
}

}  // namespace ehna
