#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace ehna {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for compactness.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_log_level.load()) return;
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[FATAL " << base << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace ehna
