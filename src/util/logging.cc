#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>

namespace ehna {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

bool SetLogLevelFromString(const char* spec) {
  if (spec == nullptr) return false;
  std::string lower(spec);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "0") {
    SetLogLevel(LogLevel::kDebug);
  } else if (lower == "info" || lower == "1") {
    SetLogLevel(LogLevel::kInfo);
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    SetLogLevel(LogLevel::kWarning);
  } else if (lower == "error" || lower == "3") {
    SetLogLevel(LogLevel::kError);
  } else {
    return false;
  }
  return true;
}

void InitLogLevelFromEnv() {
  SetLogLevelFromString(std::getenv("EHNA_LOG_LEVEL"));
}

namespace {
// Runs InitLogLevelFromEnv before main() so EHNA_LOG_LEVEL=debug (or
// =error, to silence benches) works without code changes.
[[maybe_unused]] const bool g_env_init = [] {
  InitLogLevelFromEnv();
  return true;
}();
}  // namespace

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for compactness.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_log_level.load()) return;
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[FATAL " << base << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace ehna
