#include "util/table_writer.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "util/atomic_file.h"

namespace ehna {

TableWriter::TableWriter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TableWriter::FormatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void TableWriter::Print(std::ostream& os) const {
  size_t ncols = columns_.size();
  for (const auto& row : rows_) ncols = std::max(ncols, row.size());

  std::vector<size_t> widths(ncols, 0);
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = std::max(widths[c], columns_[c].size());
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };

  size_t total = 1;
  for (size_t c = 0; c < ncols; ++c) total += widths[c] + 3;

  os << "\n== " << title_ << " ==\n";
  print_row(columns_);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

Status TableWriter::WriteTsv(const std::string& path) const {
  return AtomicWriteFile(path, [this](std::ostream& out) -> Status {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c) out << "\t";
      out << columns_[c];
    }
    out << "\n";
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        if (c) out << "\t";
        out << row[c];
      }
      out << "\n";
    }
    return Status::OK();
  });
}

}  // namespace ehna
