#ifndef EHNA_UTIL_MMAP_FILE_H_
#define EHNA_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace ehna {

/// A read-only memory mapping of a whole file. This is the out-of-core
/// substrate for the edge log (graph/edge_log.h): the kernel pages record
/// data in on demand and evicts it under memory pressure, so a graph far
/// larger than RAM can still be scanned sequentially at disk bandwidth.
///
/// Lifetime rules (see DESIGN.md §12): the mapping is owned by this object
/// and unmapped in the destructor; any pointer or span derived from
/// `data()` is invalidated by destruction or move-assignment. Consumers
/// that keep derived pointers (EdgeLogReader) must therefore keep the
/// MmapFile alive alongside them. The underlying file descriptor is closed
/// immediately after mapping — the mapping itself keeps the file content
/// reachable, so a concurrent unlink cannot invalidate it (POSIX keeps
/// mapped pages valid until munmap).
class MmapFile {
 public:
  /// Maps `path` read-only. Fails with IoError if the file cannot be
  /// opened, stat'ed, or mapped. An empty file maps successfully with
  /// `size() == 0` and `data() == nullptr`.
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }

  /// Advises the kernel that the mapping will be read front to back
  /// (madvise MADV_SEQUENTIAL), which roughly doubles readahead for the
  /// CSR build's single forward pass. Advisory only; errors are ignored.
  void AdviseSequential() const;

 private:
  MmapFile(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace ehna

#endif  // EHNA_UTIL_MMAP_FILE_H_
