#include "util/rng.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/logging.h"

namespace ehna {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53-bit mantissa trick: uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  EHNA_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  EHNA_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  EHNA_DCHECK(rate > 0);
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

uint64_t Rng::PowerLaw(double alpha, uint64_t max) {
  EHNA_DCHECK(max >= 1);
  if (max == 1) return 1;
  // Inverse transform on the continuous Pareto then clamp/round.
  if (std::abs(alpha - 1.0) < 1e-9) {
    // P(x) ~ 1/x: CDF inversion via exp.
    const double x = std::exp(Uniform() * std::log(static_cast<double>(max)));
    uint64_t k = static_cast<uint64_t>(x);
    return std::clamp<uint64_t>(k, 1, max);
  }
  const double one_minus = 1.0 - alpha;
  const double max_pow = std::pow(static_cast<double>(max), one_minus);
  const double u = Uniform();
  const double x = std::pow(1.0 + u * (max_pow - 1.0), 1.0 / one_minus);
  uint64_t k = static_cast<uint64_t>(x);
  return std::clamp<uint64_t>(k, 1, max);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k >= n) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), size_t{0});
    return all;
  }
  if (k * 4 >= n) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), size_t{0});
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  // Floyd's algorithm for k << n.
  std::unordered_set<size_t> chosen;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(UniformInt(static_cast<uint64_t>(j) + 1));
    if (chosen.count(t)) t = j;
    chosen.insert(t);
    out.push_back(t);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.has_spare_normal = has_spare_normal_;
  st.spare_normal = spare_normal_;
  return st;
}

void Rng::set_state(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_spare_normal_ = state.has_spare_normal;
  spare_normal_ = state.spare_normal;
}

Rng Rng::Stream(uint64_t seed, uint64_t stream) {
  // Key the splitmix64 state on both inputs; the +1 keeps stream 0 from
  // collapsing onto the bare seed, and the constructor runs the result
  // through four further splitmix64 rounds to fill the xoshiro lanes.
  uint64_t s = seed ^ ((stream + 1) * 0x9E3779B97F4A7C15ULL);
  return Rng(SplitMix64(&s));
}

}  // namespace ehna
