#ifndef EHNA_UTIL_THREAD_POOL_H_
#define EHNA_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ehna {

/// A fixed-size worker pool with a simple task queue. Used to parallelize
/// walk sampling and hogwild-style SGNS training (Table VIII's k-thread
/// variants). Tasks must not throw.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for every i in [0, n), partitioned into contiguous chunks
  /// across the pool, and waits for completion. `fn` must be thread-safe.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Splits [0, n) into exactly min(num_shards, n) contiguous shards and
  /// runs `fn(shard, begin, end)` for each, waiting for completion. Unlike
  /// ParallelFor, the shard decomposition is a pure function of (n,
  /// num_shards) — independent of the pool size — so callers that key
  /// per-shard state (RNG streams, gradient accumulators) on the shard
  /// index get schedule-independent results. `fn` must be thread-safe.
  void ParallelForShards(
      size_t n, size_t num_shards,
      const std::function<void(size_t shard, size_t begin, size_t end)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;  // queued + running tasks, guarded by mu_.
  bool shutdown_ = false;
};

}  // namespace ehna

#endif  // EHNA_UTIL_THREAD_POOL_H_
