#ifndef EHNA_UTIL_THREAD_POOL_H_
#define EHNA_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ehna {

/// A fixed-size worker pool with a simple task queue. Used to parallelize
/// walk sampling, hogwild-style SGNS training (Table VIII's k-thread
/// variants), and the async training pipeline's producer stage.
///
/// Exception contract: a task that throws does not bring the process down.
/// The first in-flight exception is captured into a std::exception_ptr and
/// rethrown from the next Wait() (and therefore from ParallelFor /
/// ParallelForShards, which Wait internally); later exceptions from the
/// same wave are dropped. Abort paths that must not throw — e.g. unwinding
/// a half-built pipeline — use CollectError() instead.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins the workers. An exception still
  /// pending at destruction is logged and dropped (destructors must not
  /// throw); retrieve it with Wait() or CollectError() first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing, then
  /// rethrows the first exception any of them raised (if any).
  void Wait();

  /// Blocks until every submitted task has finished executing and returns
  /// the first captured exception (nullptr if none) instead of throwing.
  /// Safe to call during stack unwinding.
  std::exception_ptr CollectError() noexcept;

  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for every i in [0, n), partitioned into contiguous chunks
  /// across the pool, and waits for completion. `fn` must be thread-safe.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Splits [0, n) into exactly min(num_shards, n) contiguous shards and
  /// runs `fn(shard, begin, end)` for each, waiting for completion. Unlike
  /// ParallelFor, the shard decomposition is a pure function of (n,
  /// num_shards) — independent of the pool size — so callers that key
  /// per-shard state (RNG streams, gradient accumulators) on the shard
  /// index get schedule-independent results. `fn` must be thread-safe.
  void ParallelForShards(
      size_t n, size_t num_shards,
      const std::function<void(size_t shard, size_t begin, size_t end)>& fn);

  /// The shard count ParallelForShards(n, num_shards, ...) would use:
  /// max(1, min(n, num_shards)). Exposed so off-pool producers (the async
  /// training pipeline) can pre-partition work identically.
  static size_t ResolveShards(size_t n, size_t num_shards) {
    const size_t capped = n < num_shards ? n : num_shards;
    return capped < 1 ? 1 : capped;
  }

  /// The [begin, end) range of shard `s` under ParallelForShards'
  /// decomposition of [0, n) into `shards` (= ResolveShards(...)) pieces.
  static std::pair<size_t, size_t> ShardBounds(size_t n, size_t shards,
                                               size_t s) {
    const size_t per_shard = (n + shards - 1) / shards;
    const size_t begin = s * per_shard;
    const size_t end = begin + per_shard < n ? begin + per_shard : n;
    return {begin < end ? begin : end, end};
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;  // queued + running tasks, guarded by mu_.
  bool shutdown_ = false;
  std::exception_ptr first_error_;  // guarded by mu_.
};

}  // namespace ehna

#endif  // EHNA_UTIL_THREAD_POOL_H_
