#ifndef EHNA_UTIL_TABLE_WRITER_H_
#define EHNA_UTIL_TABLE_WRITER_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace ehna {

/// Accumulates rows of string cells and renders them as an aligned,
/// pipe-separated text table (the format the bench binaries print so each
/// reproduced paper table is directly readable next to the paper's rows).
/// Also supports TSV export for downstream plotting.
class TableWriter {
 public:
  /// `title` is printed above the table; `columns` is the header row.
  TableWriter(std::string title, std::vector<std::string> columns);

  /// Appends a row; missing trailing cells are rendered empty, extra cells
  /// are kept (the column widths adapt).
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string FormatDouble(double value, int precision = 4);

  /// Renders the aligned table to `os`.
  void Print(std::ostream& os) const;

  /// Writes a TSV file (header + rows). Returns IoError on failure.
  Status WriteTsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ehna

#endif  // EHNA_UTIL_TABLE_WRITER_H_
