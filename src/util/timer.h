#ifndef EHNA_UTIL_TIMER_H_
#define EHNA_UTIL_TIMER_H_

#include <chrono>

namespace ehna {

/// Monotonic wall-clock stopwatch used by the training-time benchmarks
/// (Table VIII) and progress logging.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ehna

#endif  // EHNA_UTIL_TIMER_H_
