#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ehna {

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("cannot stat " + path + ": " + std::strerror(err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("cannot map " + path + ": not a regular file");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MmapFile(nullptr, 0);
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int err = errno;
  ::close(fd);  // the mapping holds its own reference to the file content.
  if (addr == MAP_FAILED) {
    return Status::IoError("cannot mmap " + path + ": " + std::strerror(err));
  }
  return MmapFile(static_cast<const uint8_t*>(addr), size);
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MmapFile::AdviseSequential() const {
  if (data_ != nullptr) {
    ::madvise(const_cast<uint8_t*>(data_), size_, MADV_SEQUENTIAL);
  }
}

}  // namespace ehna
