#include "util/alias_sampler.h"

#include <cstdint>

#include "util/logging.h"
#include "util/metrics.h"

namespace ehna {

void AliasSampler::Build(const std::vector<double>& weights) {
  prob_.clear();
  alias_.clear();
  const size_t n = weights.size();
  if (n == 0) return;

  double total = 0.0;
  for (double w : weights) {
    EHNA_CHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0.0) return;

  prob_.resize(n);
  alias_.assign(n, 0);

  // Scaled probabilities; partition into under- and over-full buckets.
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }

  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  // Numerical leftovers are full buckets.
  for (uint32_t l : large) prob_[l] = 1.0;
  for (uint32_t s : small) prob_[s] = 1.0;
}

size_t AliasSampler::Sample(Rng* rng) const {
  // Hard check even in Release: a sampler built from empty or all-zero
  // weights has no outcomes, and indexing prob_ here would be UB. Callers
  // must test empty() before drawing from a possibly-degenerate sampler.
  EHNA_CHECK(!prob_.empty())
      << "AliasSampler::Sample on an empty/degenerate sampler";
  static Counter* const samples_total =
      MetricsRegistry::Global().GetCounter("alias.samples");
  static Counter* const alias_hits =
      MetricsRegistry::Global().GetCounter("alias.alias_hits");
  samples_total->Add(1);
  const size_t i = static_cast<size_t>(rng->UniformInt(prob_.size()));
  if (rng->Uniform() < prob_[i]) return i;
  alias_hits->Add(1);  // redirected through the alias slot.
  return alias_[i];
}

}  // namespace ehna
