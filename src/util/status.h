#ifndef EHNA_UTIL_STATUS_H_
#define EHNA_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace ehna {

/// Error codes used across the library. Modeled after the RocksDB/Arrow
/// convention: library code never throws; fallible operations return a
/// `Status` (or a `Result<T>` when they also produce a value).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (no
/// allocation); the error case carries a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// A value-or-error. Accessing the value of an errored Result aborts, so
/// callers must check `ok()` (or use `ValueOr`) first.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: allows `return Status::...;`. Constructing
  /// a Result from an OK status is a programming error and is normalized to
  /// an Internal error so the bug is observable rather than silent.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error (OK when a value is present).
  const Status& status() const { return status_; }

  /// The contained value; requires `ok()`.
  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? value_.value() : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

/// Propagates an error status out of the current function.
#define EHNA_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::ehna::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

/// Assigns the value of a Result-returning expression to `lhs`, or
/// propagates the error. `lhs` may declare a new variable.
#define EHNA_ASSIGN_OR_RETURN(lhs, expr)      \
  EHNA_ASSIGN_OR_RETURN_IMPL_(                \
      EHNA_STATUS_CONCAT_(_res_, __LINE__), lhs, expr)

#define EHNA_STATUS_CONCAT_INNER_(a, b) a##b
#define EHNA_STATUS_CONCAT_(a, b) EHNA_STATUS_CONCAT_INNER_(a, b)
#define EHNA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace ehna

#endif  // EHNA_UTIL_STATUS_H_
