#include "util/pipeline.h"

#include "util/metrics.h"

namespace ehna {

QueueMetrics TrainPipelineQueueMetrics() {
  // Resolved once; registry pointers are stable for the process lifetime.
  static const QueueMetrics metrics = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    QueueMetrics m;
    m.depth = registry.GetGauge("pipeline.queue_depth");
    m.producer_stall_ns = registry.GetCounter("pipeline.producer_stall_ns");
    m.consumer_stall_ns = registry.GetCounter("pipeline.consumer_stall_ns");
    return m;
  }();
  return metrics;
}

}  // namespace ehna
