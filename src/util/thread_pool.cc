#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace ehna {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
    if (first_error_ != nullptr) {
      EHNA_LOG(Warning)
          << "ThreadPool destroyed with an unretrieved task exception";
      first_error_ = nullptr;
    }
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    EHNA_CHECK(!shutdown_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

std::exception_ptr ThreadPool::CollectError() noexcept {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  return std::exchange(first_error_, nullptr);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = std::min(n, workers_.size() * 4);
  const size_t per_chunk = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * per_chunk;
    const size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    Submit([&fn, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::ParallelForShards(
    size_t n, size_t num_shards,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t shards = ResolveShards(n, num_shards);
  for (size_t s = 0; s < shards; ++s) {
    const auto [begin, end] = ShardBounds(n, shards, s);
    if (begin >= end) break;
    Submit([&fn, s, begin = begin, end = end] { fn(s, begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A throwing task must not escape through the worker loop (that would
    // std::terminate the process); capture the first exception for the
    // join/wait point instead.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error != nullptr && first_error_ == nullptr) {
        first_error_ = std::move(error);
      }
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace ehna
