#ifndef EHNA_UTIL_LOGGING_H_
#define EHNA_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ehna {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are suppressed. Defaults to
/// Info. Stored in a std::atomic, so Get/Set are safe from any thread
/// (worker pools log concurrently with a main thread adjusting verbosity).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Sets the level from a spelling: a name ("debug", "info", "warning",
/// "error", case-insensitive) or a numeric level ("0".."3"). Returns false
/// (level unchanged) for null/unrecognized input.
bool SetLogLevelFromString(const char* spec);

/// Applies the EHNA_LOG_LEVEL environment variable, if set and valid.
/// Invoked automatically before main() (and harmless to call again, e.g.
/// after a setenv in tests).
void InitLogLevelFromEnv();

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process after flushing. Used by checks.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define EHNA_LOG(level)                                                \
  ::ehna::internal::LogMessage(::ehna::LogLevel::k##level, __FILE__, \
                               __LINE__)                               \
      .stream()

/// Unconditional invariant check; aborts with a message on failure. Used for
/// programming errors (not data errors, which use Status).
#define EHNA_CHECK(cond)                                          \
  if (!(cond))                                                    \
  ::ehna::internal::FatalLogMessage(__FILE__, __LINE__).stream()  \
      << "Check failed: " #cond " "

#define EHNA_CHECK_EQ(a, b) EHNA_CHECK((a) == (b))
#define EHNA_CHECK_NE(a, b) EHNA_CHECK((a) != (b))
#define EHNA_CHECK_LT(a, b) EHNA_CHECK((a) < (b))
#define EHNA_CHECK_LE(a, b) EHNA_CHECK((a) <= (b))
#define EHNA_CHECK_GT(a, b) EHNA_CHECK((a) > (b))
#define EHNA_CHECK_GE(a, b) EHNA_CHECK((a) >= (b))

#ifndef NDEBUG
#define EHNA_DCHECK(cond) EHNA_CHECK(cond)
#else
#define EHNA_DCHECK(cond) \
  if (false) ::ehna::internal::FatalLogMessage(__FILE__, __LINE__).stream()
#endif

}  // namespace ehna

#endif  // EHNA_UTIL_LOGGING_H_
