#ifndef EHNA_SERVE_EMBEDDING_SERVER_H_
#define EHNA_SERVE_EMBEDDING_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/inference.h"
#include "core/model.h"
#include "eval/ann.h"
#include "eval/knn.h"
#include "graph/dynamic_graph.h"
#include "graph/temporal_graph.h"
#include "nn/quant.h"
#include "util/status.h"

namespace ehna {

/// Serving configuration (DESIGN.md §13).
struct ServeOptions {
  /// Model hyperparameters; must carry the checkpoint's fingerprint fields
  /// (seed, dim, variant, lstm_layers) or Load rejects the snapshot.
  /// `config.num_threads` sizes the refresh fan-out.
  EhnaConfig config;
  /// Dynamic-overlay knobs (per-node refresh-candidate cache size).
  DynamicGraphOptions overlay;
  /// ANN index knobs. The similarity here is the serving metric for
  /// Query/QueryExact/LinkScore alike.
  IvfFlatOptions ann;
  /// Pending ingested edges that trigger an automatic Refresh. 0 disables
  /// auto-refresh (callers drive Refresh() themselves).
  size_t refresh_batch = 256;
  /// Read-path precision tier (DESIGN.md §14). kFp32 serves exactly as
  /// before; kInt8/kBf16 keep a quantized mirror of the serving matrix that
  /// scores candidates cheaply, with the top `rerank_factor * k` survivors
  /// re-ranked in fp32. Training, checkpoints, and the fp32 serving matrix
  /// itself are byte-for-byte unaffected by this choice.
  ServePrecision precision = ServePrecision::kFp32;
  /// Quantized-path re-rank depth multiplier (survivors = rerank_factor*k).
  size_t rerank_factor = 4;
};

/// The production half of the system (ROADMAP item 1): a long-lived façade
/// that loads a trained checkpoint, ingests a live stream of timestamped
/// edges through a dynamic overlay on the immutable flat-CSR graph,
/// incrementally re-finalizes embeddings for the nodes each batch of edges
/// affects (via the trainer-free InferenceEngine, per-node RNG streams),
/// and answers top-k nearest-neighbor and link-score queries from many
/// concurrent threads through an IVF-flat ANN index over the served
/// embeddings — with the exact O(N) scan kept alongside as the recall
/// oracle.
///
/// Concurrency: queries take a shared lock; Ingest/Refresh take the
/// exclusive lock. Any number of query threads run concurrently against an
/// immutable snapshot of (serving matrix, ANN index); writers serialize.
///
/// Consistency contract (DESIGN.md §13): queries between refreshes see the
/// pre-refresh embeddings ("read-your-refreshes", not read-your-writes); a
/// refresh recomputes exactly the affected candidate set — the new edges'
/// endpoints plus a bounded down-sampled set of their neighbors — against
/// the full compacted graph, so those rows match an offline finalize over
/// the same graph bitwise, while untouched nodes serve (boundedly) stale
/// rows until an edge lands near them.
class EmbeddingServer {
 public:
  struct Stats {
    uint64_t ingested_edges = 0;
    uint64_t pending_edges = 0;
    uint64_t refreshes = 0;
    uint64_t refreshed_nodes = 0;
    uint64_t queries = 0;
    uint64_t num_nodes = 0;
    uint64_t num_edges = 0;  // compacted snapshot edges.
  };

  /// Builds a server over `base` (the graph the checkpoint was trained on,
  /// moved in and owned), restores the snapshot at `checkpoint_path`,
  /// computes the initial serving matrix with the §IV.D final pass
  /// (per-node streams; the trained table itself is never overwritten), and
  /// builds the ANN index. Returns the failure Status on any mismatch.
  static Result<std::unique_ptr<EmbeddingServer>> Load(
      const std::string& checkpoint_path, TemporalGraph base,
      ServeOptions options);

  /// Appends one timestamped edge to the overlay: O(1) plus bounded cache
  /// maintenance. New node ids are accepted (they become servable after the
  /// next refresh). Triggers an automatic Refresh once `refresh_batch`
  /// edges are pending.
  Status Ingest(const TemporalEdge& edge);

  /// Compacts the overlay into a fresh snapshot and re-finalizes every
  /// affected node's embedding against it, updating the serving matrix and
  /// ANN index. No-op when nothing is pending.
  Status Refresh();

  /// ANN top-k nearest neighbors of `node` under the serving similarity.
  /// OutOfRange for nodes not yet servable (never refreshed into the
  /// serving matrix).
  Result<std::vector<Neighbor>> Query(NodeId node, size_t k) const;

  /// The exact-scan counterpart of Query (same metric, full O(N·d) pass).
  /// Under a quantized precision tier this is the quantized scan + fp32
  /// re-rank; under kFp32 it is the plain fp32 scan.
  Result<std::vector<Neighbor>> QueryExact(NodeId node, size_t k) const;

  /// The full-precision exact-scan oracle, regardless of the configured
  /// precision tier — the retained fp32 fallback quantized recall is
  /// measured against.
  Result<std::vector<Neighbor>> QueryExactFp32(NodeId node, size_t k) const;

  /// Serving-metric score between two servable nodes.
  Result<double> LinkScore(NodeId u, NodeId v) const;

  /// Snapshot copy of the serving matrix (for offline comparison).
  Tensor ServingEmbeddings() const;

  /// Snapshot copy of the quantized mirror (empty under kFp32) — for
  /// offline recomputation checks: quantizing ServingEmbeddings() must
  /// reproduce these bytes exactly.
  QuantizedMatrix QuantizedServingSnapshot() const;

  /// Nodes currently servable (rows of the serving matrix).
  size_t num_nodes() const;

  Stats stats() const;

  const EhnaConfig& config() const { return options_.config; }
  ServePrecision precision() const { return options_.precision; }

 private:
  EmbeddingServer(TemporalGraph base, ServeOptions options);

  /// Dedup-appends `node` to the pending refresh set. Caller holds mu_.
  void MarkAffected(NodeId node);
  /// Compact + re-finalize + index update. Caller holds mu_.
  Status RefreshLocked();
  /// Re-quantizes `rows` of the mirror from serving_ and refreshes the
  /// serve.quant.* gauges. Caller holds mu_; no-op under kFp32.
  void RequantizeRows(const std::vector<NodeId>& rows);

  ServeOptions options_;
  TemporalGraph base_;  // keeps the model's construction graph alive.
  std::unique_ptr<EhnaModel> model_;
  std::unique_ptr<DynamicTemporalGraph> overlay_;
  std::unique_ptr<InferenceEngine> engine_;
  Rng grow_rng_;  // init stream for table rows past the trained range.

  mutable std::shared_mutex mu_;
  Tensor serving_;  // [servable nodes, dim]; reads under shared lock.
  QuantizedMatrix quant_;  // read-path mirror of serving_ (empty on kFp32).
  std::unique_ptr<IvfFlatIndex> index_;
  std::vector<NodeId> affected_;       // pending refresh set, deduped...
  std::vector<uint8_t> affected_mark_; // ...via this bitmap.
  std::vector<NodeId> candidate_scratch_;
  uint64_t ingested_edges_ = 0;
  uint64_t refreshes_ = 0;
  uint64_t refreshed_nodes_ = 0;
  mutable std::atomic<uint64_t> queries_{0};
};

}  // namespace ehna

#endif  // EHNA_SERVE_EMBEDDING_SERVER_H_
