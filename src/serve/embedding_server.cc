#include "serve/embedding_server.h"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"

namespace ehna {

namespace {

// Seed salt for the stream that initializes embedding rows of nodes first
// seen in the ingest stream (disjoint from the train/finalize salts).
constexpr uint64_t kServeGrowSalt = 0x45484E4153525647ULL;  // "EHNASRVG"

}  // namespace

EmbeddingServer::EmbeddingServer(TemporalGraph base, ServeOptions options)
    : options_(std::move(options)),
      base_(std::move(base)),
      grow_rng_(Rng::Stream(options_.config.seed, kServeGrowSalt)) {}

Result<std::unique_ptr<EmbeddingServer>> EmbeddingServer::Load(
    const std::string& checkpoint_path, TemporalGraph base,
    ServeOptions options) {
  // Not make_unique: the constructor is private.
  std::unique_ptr<EmbeddingServer> server(
      new EmbeddingServer(std::move(base), std::move(options)));

  // The model restores only over the exact trained shape, so this must
  // happen before the overlay can grow the node space.
  server->model_ = std::make_unique<EhnaModel>(&server->base_,
                                               server->options_.config);
  Status restored = server->model_->RestoreCheckpoint(checkpoint_path);
  if (!restored.ok()) return restored;

  server->overlay_ = std::make_unique<DynamicTemporalGraph>(
      &server->base_, server->options_.overlay);
  server->engine_ = std::make_unique<InferenceEngine>(
      &server->base_, server->model_->embedding(),
      server->model_->aggregator(), server->options_.config);

  // Initial serving matrix: the §IV.D final pass for every node, via the
  // per-node streams (never the master RNG — the serving layer must not
  // perturb the checkpointed draw sequence), leaving the trained table
  // untouched so every later incremental refresh aggregates against it.
  {
    EHNA_TRACE_PHASE("serve.phase.initial_finalize");
    const NodeId n = server->base_.num_nodes();
    server->serving_ = Tensor(n, server->options_.config.dim);
    std::vector<NodeId> all(n);
    std::iota(all.begin(), all.end(), NodeId{0});
    server->engine_->RefreshInto(all, &server->serving_);
  }

  Result<IvfFlatIndex> index =
      IvfFlatIndex::Build(server->serving_, server->options_.ann);
  if (!index.ok()) return index.status();
  server->index_ =
      std::make_unique<IvfFlatIndex>(std::move(index).value());
  server->affected_mark_.assign(server->base_.num_nodes(), 0);

  // Quantized read-path mirror (DESIGN.md §14): derived from the serving
  // matrix, never the other way around — the fp32 matrix, the checkpoint,
  // and the trained table are byte-for-byte identical across tiers.
  if (server->options_.precision != ServePrecision::kFp32) {
    server->quant_ = QuantizedMatrix::FromTensor(server->serving_,
                                                 server->options_.precision);
    const QuantErrorStats err = server->quant_.ErrorStats(server->serving_);
    auto& metrics = MetricsRegistry::Global();
    metrics.GetGauge("serve.quant.bytes")
        ->Set(static_cast<double>(server->quant_.bytes()));
    metrics.GetGauge("serve.quant.max_abs_error")->Set(err.max_abs);
    metrics.GetGauge("serve.quant.mean_abs_error")->Set(err.mean_abs);
  }
  return server;
}

void EmbeddingServer::RequantizeRows(const std::vector<NodeId>& rows) {
  if (options_.precision == ServePrecision::kFp32) return;
  quant_.EnsureRows(serving_.rows());
  for (const NodeId v : rows) {
    quant_.RequantizeRow(static_cast<int64_t>(v), serving_.Row(v));
  }
  // Gauges: exact resident bytes, plus the quantization error of the rows
  // this pass just rewrote (Load sets the whole-matrix figures).
  const QuantErrorStats err =
      quant_.ErrorStatsForRows(serving_, rows.data(), rows.size());
  auto& metrics = MetricsRegistry::Global();
  metrics.GetGauge("serve.quant.bytes")
      ->Set(static_cast<double>(quant_.bytes()));
  metrics.GetGauge("serve.quant.max_abs_error")->Set(err.max_abs);
  metrics.GetGauge("serve.quant.mean_abs_error")->Set(err.mean_abs);
}

void EmbeddingServer::MarkAffected(NodeId node) {
  if (node >= affected_mark_.size()) affected_mark_.resize(node + 1, 0);
  if (affected_mark_[node]) return;
  affected_mark_[node] = 1;
  affected_.push_back(node);
}

Status EmbeddingServer::Ingest(const TemporalEdge& edge) {
  std::unique_lock lock(mu_);
  Status st = overlay_->Ingest(edge);
  if (!st.ok()) return st;
  ++ingested_edges_;
  MetricsRegistry::Global().GetCounter("serve.ingested_edges")->Add(1);
  overlay_->AffectedCandidates(edge, &candidate_scratch_);
  for (const NodeId v : candidate_scratch_) MarkAffected(v);
  if (options_.refresh_batch > 0 &&
      overlay_->pending_edges() >= options_.refresh_batch) {
    return RefreshLocked();
  }
  return Status::OK();
}

Status EmbeddingServer::Refresh() {
  std::unique_lock lock(mu_);
  return RefreshLocked();
}

Status EmbeddingServer::RefreshLocked() {
  if (affected_.empty() && overlay_->pending_edges() == 0) {
    return Status::OK();
  }
  EHNA_TRACE_PHASE("serve.phase.refresh");

  Status st = overlay_->Compact();
  if (!st.ok()) return st;
  const TemporalGraph& graph = overlay_->current();
  engine_->RebindGraph(&graph);

  // Nodes first seen in the stream: extend the trained table (fresh
  // word2vec-style rows from the dedicated grow stream) and the serving
  // matrix. Existing rows keep their bytes.
  const NodeId n = graph.num_nodes();
  if (static_cast<int64_t>(n) > serving_.rows()) {
    model_->embedding()->EnsureRows(n, &grow_rng_);
    Tensor grown(n, serving_.cols());
    std::copy(serving_.data(), serving_.data() + serving_.numel(),
              grown.data());
    serving_ = std::move(grown);
  }

  engine_->RefreshInto(affected_, &serving_);
  // Re-quantize exactly the refreshed rows: RequantizeRow is a pure
  // function of the fp32 row, so untouched mirror rows keep their bytes.
  RequantizeRows(affected_);
  for (const NodeId v : affected_) {
    index_->Update(v, serving_.Row(v));
  }
  ++refreshes_;
  refreshed_nodes_ += affected_.size();
  MetricsRegistry::Global().GetCounter("serve.refreshed_nodes")
      ->Add(affected_.size());
  for (const NodeId v : affected_) affected_mark_[v] = 0;
  affected_.clear();
  return Status::OK();
}

Result<std::vector<Neighbor>> EmbeddingServer::Query(NodeId node,
                                                     size_t k) const {
  std::shared_lock lock(mu_);
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (options_.precision != ServePrecision::kFp32) {
    return index_->QueryNodeQuantized(quant_, node, k, /*nprobe=*/0,
                                      options_.rerank_factor);
  }
  return index_->QueryNode(node, k);
}

Result<std::vector<Neighbor>> EmbeddingServer::QueryExact(NodeId node,
                                                          size_t k) const {
  std::shared_lock lock(mu_);
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (options_.precision != ServePrecision::kFp32) {
    return TopKNeighborsQuantized(serving_, quant_, node, k,
                                  options_.ann.similarity,
                                  options_.rerank_factor);
  }
  return TopKNeighbors(serving_, node, k, options_.ann.similarity);
}

Result<std::vector<Neighbor>> EmbeddingServer::QueryExactFp32(NodeId node,
                                                              size_t k) const {
  std::shared_lock lock(mu_);
  queries_.fetch_add(1, std::memory_order_relaxed);
  return TopKNeighbors(serving_, node, k, options_.ann.similarity);
}

Result<double> EmbeddingServer::LinkScore(NodeId u, NodeId v) const {
  std::shared_lock lock(mu_);
  queries_.fetch_add(1, std::memory_order_relaxed);
  return PairSimilarity(serving_, u, v, options_.ann.similarity);
}

Tensor EmbeddingServer::ServingEmbeddings() const {
  std::shared_lock lock(mu_);
  return serving_;
}

QuantizedMatrix EmbeddingServer::QuantizedServingSnapshot() const {
  std::shared_lock lock(mu_);
  return quant_;
}

size_t EmbeddingServer::num_nodes() const {
  std::shared_lock lock(mu_);
  return static_cast<size_t>(serving_.rows());
}

EmbeddingServer::Stats EmbeddingServer::stats() const {
  std::shared_lock lock(mu_);
  Stats s;
  s.ingested_edges = ingested_edges_;
  s.pending_edges = overlay_->pending_edges();
  s.refreshes = refreshes_;
  s.refreshed_nodes = refreshed_nodes_;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.num_nodes = static_cast<uint64_t>(serving_.rows());
  s.num_edges = overlay_->current().num_edges();
  return s;
}

}  // namespace ehna
