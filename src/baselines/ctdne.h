#ifndef EHNA_BASELINES_CTDNE_H_
#define EHNA_BASELINES_CTDNE_H_

#include <vector>

#include "baselines/sgns.h"
#include "graph/temporal_graph.h"
#include "walk/ctdne_walk.h"

namespace ehna {

/// CTDNE baseline (Nguyen et al., WWW'18 companion): time-respecting walks
/// (uniform initial-edge and next-edge selection, per the paper's §V.C
/// setting) feeding the same skip-gram objective as Node2Vec.
struct CtdneConfig {
  SgnsConfig sgns;
  CtdneWalkConfig walk;
  /// Walks sampled per epoch; 0 derives one walk per node.
  size_t walks_per_epoch = 0;
  int epochs = 2;
  int num_threads = 1;
  uint64_t seed = 1;
};

class CtdneEmbedder {
 public:
  explicit CtdneEmbedder(const CtdneConfig& config) : config_(config) {}

  Tensor Fit(const TemporalGraph& graph);

  const std::vector<double>& epoch_seconds() const { return epoch_seconds_; }

 private:
  CtdneConfig config_;
  std::vector<double> epoch_seconds_;
};

}  // namespace ehna

#endif  // EHNA_BASELINES_CTDNE_H_
