#include "baselines/line.h"

#include <algorithm>
#include <cmath>

#include "graph/noise_distribution.h"
#include "nn/init.h"
#include "util/alias_sampler.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/timer.h"

namespace ehna {

namespace {

float StableSigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

}  // namespace

Tensor LineEmbedder::Fit(const TemporalGraph& graph) {
  Rng rng(config_.seed);
  const int64_t half = std::max<int64_t>(1, config_.dim / 2);
  const NodeId n = graph.num_nodes();

  Tensor first(n, half);        // first-order vectors.
  Tensor second(n, half);       // second-order "vertex" vectors.
  Tensor context(n, half);      // second-order context vectors.
  const float scale = 0.5f / static_cast<float>(half);
  UniformInit(&first, -scale, scale, &rng);
  UniformInit(&second, -scale, scale, &rng);
  // Context starts at zero, as in the reference implementation.

  std::vector<double> edge_weights;
  edge_weights.reserve(graph.num_edges());
  for (const auto& e : graph.edges()) edge_weights.push_back(e.weight);
  AliasSampler edge_sampler(edge_weights);
  NoiseDistribution noise(graph);

  const size_t per_epoch = config_.samples_per_epoch > 0
                               ? config_.samples_per_epoch
                               : graph.num_edges();
  const size_t total = per_epoch * std::max(1, config_.epochs);
  size_t done = 0;
  epoch_seconds_.clear();

  std::vector<float> grad(half);
  auto train_pair = [&](Tensor& src_table, Tensor& dst_table, NodeId u,
                        NodeId v, float lr, bool symmetric_negatives) {
    float* su = src_table.Row(u);
    std::fill(grad.begin(), grad.end(), 0.0f);
    auto step = [&](NodeId target, float label) {
      float* dv = dst_table.Row(target);
      float dot = 0.0f;
      for (int64_t j = 0; j < half; ++j) dot += su[j] * dv[j];
      const float g = (label - StableSigmoid(dot)) * lr;
      for (int64_t j = 0; j < half; ++j) {
        grad[j] += g * dv[j];
        dv[j] += g * su[j];
      }
    };
    step(v, 1.0f);
    const NodeId exclude[] = {u, v};
    for (int q = 0; q < config_.negatives; ++q) {
      step(noise.SampleExcluding(exclude, &rng), 0.0f);
    }
    for (int64_t j = 0; j < half; ++j) su[j] += grad[j];
    (void)symmetric_negatives;
  };

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    Timer timer;
    for (size_t s = 0; s < per_epoch; ++s, ++done) {
      const float lr =
          config_.learning_rate *
          std::max(0.05f, 1.0f - static_cast<float>(done) / total);
      const auto& e = graph.edges()[edge_sampler.Sample(&rng)];
      // Undirected edges contribute in both directions.
      const bool flip = rng.Bernoulli(0.5);
      const NodeId u = flip ? e.dst : e.src;
      const NodeId v = flip ? e.src : e.dst;
      // First order: symmetric model over `first`.
      train_pair(first, first, u, v, lr, true);
      // Second order: vertex -> context.
      train_pair(second, context, u, v, lr, false);
    }
    epoch_seconds_.push_back(timer.ElapsedSeconds());
    static StreamingHistogram* const epoch_hist =
        MetricsRegistry::Global().GetHistogram("baseline.line.epoch");
    epoch_hist->Record(
        static_cast<uint64_t>(epoch_seconds_.back() * 1e9));
  }

  // Concatenate (and L2-normalize each half, as the authors do before
  // concatenation) into [n, 2*half].
  Tensor out(n, 2 * half);
  auto normalized_copy = [&](const Tensor& src, NodeId v, float* dst) {
    const float* row = src.Row(v);
    double norm = 0.0;
    for (int64_t j = 0; j < half; ++j) {
      norm += static_cast<double>(row[j]) * row[j];
    }
    const float inv =
        norm > 1e-24 ? 1.0f / static_cast<float>(std::sqrt(norm)) : 0.0f;
    for (int64_t j = 0; j < half; ++j) dst[j] = row[j] * inv;
  };
  for (NodeId v = 0; v < n; ++v) {
    normalized_copy(first, v, out.Row(v));
    normalized_copy(second, v, out.Row(v) + half);
  }
  return out;
}

}  // namespace ehna
