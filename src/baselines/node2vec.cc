#include "baselines/node2vec.h"

#include <algorithm>
#include <numeric>

#include "graph/noise_distribution.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace ehna {

Tensor Node2VecEmbedder::Fit(const TemporalGraph& graph) {
  Rng rng(config_.seed);
  SgnsTrainer trainer(graph.num_nodes(), config_.sgns, &rng);
  Node2VecWalkSampler sampler(&graph, config_.walk);
  NoiseDistribution noise(graph);
  epoch_seconds_.clear();

  std::vector<NodeId> nodes(graph.num_nodes());
  std::iota(nodes.begin(), nodes.end(), NodeId{0});

  const int total_rounds =
      config_.epochs * std::max(1, config_.walk.walks_per_node);
  int round = 0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    Timer timer;
    for (int w = 0; w < config_.walk.walks_per_node; ++w, ++round) {
      // Linear learning-rate decay over the full schedule, as in word2vec.
      const float lr = config_.sgns.learning_rate *
                       std::max(0.05f, 1.0f - static_cast<float>(round) /
                                                  total_rounds);
      rng.Shuffle(&nodes);
      if (config_.num_threads > 1) {
        ThreadPool pool(config_.num_threads);
        std::vector<Rng> rngs;
        rngs.reserve(config_.num_threads * 4);
        for (int t = 0; t < config_.num_threads * 4; ++t) {
          rngs.push_back(rng.Fork());
        }
        const size_t chunk =
            (nodes.size() + rngs.size() - 1) / rngs.size();
        for (size_t c = 0; c < rngs.size(); ++c) {
          const size_t begin = c * chunk;
          const size_t end = std::min(nodes.size(), begin + chunk);
          if (begin >= end) break;
          pool.Submit([&, begin, end, c] {
            for (size_t i = begin; i < end; ++i) {
              auto walk = sampler.SampleWalk(nodes[i], &rngs[c]);
              trainer.TrainWalk(walk, noise, &rngs[c], lr);
            }
          });
        }
        pool.Wait();
      } else {
        for (NodeId v : nodes) {
          auto walk = sampler.SampleWalk(v, &rng);
          trainer.TrainWalk(walk, noise, &rng, lr);
        }
      }
    }
    epoch_seconds_.push_back(timer.ElapsedSeconds());
    static StreamingHistogram* const epoch_hist =
        MetricsRegistry::Global().GetHistogram("baseline.node2vec.epoch");
    epoch_hist->Record(
        static_cast<uint64_t>(epoch_seconds_.back() * 1e9));
  }
  return trainer.embeddings();
}

}  // namespace ehna
