#include "baselines/ctdne.h"

#include <algorithm>

#include "graph/noise_distribution.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ehna {

Tensor CtdneEmbedder::Fit(const TemporalGraph& graph) {
  Rng rng(config_.seed);
  SgnsTrainer trainer(graph.num_nodes(), config_.sgns, &rng);
  CtdneWalkSampler sampler(&graph, config_.walk);
  NoiseDistribution noise(graph);
  epoch_seconds_.clear();

  const size_t walks_per_epoch = config_.walks_per_epoch > 0
                                     ? config_.walks_per_epoch
                                     : graph.num_nodes();
  const size_t total = walks_per_epoch * std::max(1, config_.epochs);
  size_t done = 0;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    Timer timer;
    auto run_walks = [&](size_t count, Rng* worker_rng, size_t base) {
      for (size_t i = 0; i < count; ++i) {
        const float lr =
            config_.sgns.learning_rate *
            std::max(0.05f, 1.0f - static_cast<float>(base + i) / total);
        auto walk = sampler.SampleWalk(worker_rng);
        if (static_cast<int>(walk.size()) < config_.walk.min_length) continue;
        trainer.TrainWalk(walk, noise, worker_rng, lr);
      }
    };
    if (config_.num_threads > 1) {
      ThreadPool pool(config_.num_threads);
      const size_t shards = static_cast<size_t>(config_.num_threads) * 4;
      std::vector<Rng> rngs;
      rngs.reserve(shards);
      for (size_t s = 0; s < shards; ++s) rngs.push_back(rng.Fork());
      const size_t per_shard = (walks_per_epoch + shards - 1) / shards;
      for (size_t s = 0; s < shards; ++s) {
        const size_t count =
            std::min(per_shard, walks_per_epoch - std::min(walks_per_epoch,
                                                           s * per_shard));
        if (count == 0) break;
        pool.Submit([&, s, count] {
          run_walks(count, &rngs[s], done + s * per_shard);
        });
      }
      pool.Wait();
    } else {
      run_walks(walks_per_epoch, &rng, done);
    }
    done += walks_per_epoch;
    epoch_seconds_.push_back(timer.ElapsedSeconds());
    static StreamingHistogram* const epoch_hist =
        MetricsRegistry::Global().GetHistogram("baseline.ctdne.epoch");
    epoch_hist->Record(
        static_cast<uint64_t>(epoch_seconds_.back() * 1e9));
  }
  return trainer.embeddings();
}

}  // namespace ehna
