#include "baselines/sgns.h"

#include <algorithm>
#include <cmath>

#include "nn/init.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace ehna {

namespace {
float StableSigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}
}  // namespace

SgnsTrainer::SgnsTrainer(NodeId num_nodes, const SgnsConfig& config, Rng* rng)
    : config_(config),
      in_(num_nodes, config.dim),
      out_(num_nodes, config.dim) {
  EHNA_CHECK_GT(num_nodes, 0u);
  EHNA_CHECK_GT(config.dim, 0);
  const float scale = 0.5f / static_cast<float>(config.dim);
  UniformInit(&in_, -scale, scale, rng);
  // Output vectors start at zero, as in word2vec.
}

void SgnsTrainer::TrainPair(NodeId center, NodeId context,
                            const NoiseDistribution& noise, Rng* rng,
                            float lr) {
  const int64_t d = config_.dim;
  float* u = in_.Row(center);
  std::vector<float> u_grad(d, 0.0f);

  auto update_output = [&](NodeId target, float label) {
    float* v = out_.Row(target);
    float dot = 0.0f;
    for (int64_t j = 0; j < d; ++j) dot += u[j] * v[j];
    const float g = (label - StableSigmoid(dot)) * lr;
    for (int64_t j = 0; j < d; ++j) {
      u_grad[j] += g * v[j];
      v[j] += g * u[j];
    }
  };

  update_output(context, 1.0f);
  const NodeId exclude[] = {center, context};
  for (int n = 0; n < config_.negatives; ++n) {
    update_output(noise.SampleExcluding(exclude, rng), 0.0f);
  }
  for (int64_t j = 0; j < d; ++j) u[j] += u_grad[j];
}

void SgnsTrainer::TrainWalk(const std::vector<NodeId>& walk,
                            const NoiseDistribution& noise, Rng* rng,
                            float lr) {
  // Pair throughput telemetry, accumulated locally and flushed once per
  // walk so the (hogwild-hot) pair loop sees no atomics.
  static Counter* const walks_total =
      MetricsRegistry::Global().GetCounter("sgns.walks");
  static Counter* const pairs_total =
      MetricsRegistry::Global().GetCounter("sgns.pairs");
  uint64_t pairs = 0;

  const int n = static_cast<int>(walk.size());
  for (int i = 0; i < n; ++i) {
    const int lo = std::max(0, i - config_.window);
    const int hi = std::min(n - 1, i + config_.window);
    for (int j = lo; j <= hi; ++j) {
      if (j == i || walk[j] == walk[i]) continue;
      TrainPair(walk[i], walk[j], noise, rng, lr);
      ++pairs;
    }
  }
  walks_total->Add(1);
  pairs_total->Add(pairs);
}

}  // namespace ehna
