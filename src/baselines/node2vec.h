#ifndef EHNA_BASELINES_NODE2VEC_H_
#define EHNA_BASELINES_NODE2VEC_H_

#include <vector>

#include "baselines/sgns.h"
#include "graph/temporal_graph.h"
#include "util/thread_pool.h"
#include "walk/node2vec_walk.h"

namespace ehna {

/// Node2Vec baseline (Grover & Leskovec, KDD'16): second-order biased
/// static walks + skip-gram with negative sampling. With p = q = 1 this is
/// DeepWalk. Paper settings (§V.C): k = 10 walks per node, l = 80,
/// window 10, 5 negatives, dim 128.
struct Node2VecConfig {
  SgnsConfig sgns;
  Node2VecWalkConfig walk;
  int epochs = 2;
  /// Worker threads for walk + SGNS hogwild training (Table VIII's
  /// "Node2Vec 10" rows use 10).
  int num_threads = 1;
  uint64_t seed = 1;
};

/// Trains Node2Vec and returns the [N, dim] embedding matrix.
class Node2VecEmbedder {
 public:
  explicit Node2VecEmbedder(const Node2VecConfig& config) : config_(config) {}

  Tensor Fit(const TemporalGraph& graph);

  /// Wall-clock seconds of each completed epoch (for Table VIII).
  const std::vector<double>& epoch_seconds() const { return epoch_seconds_; }

 private:
  Node2VecConfig config_;
  std::vector<double> epoch_seconds_;
};

}  // namespace ehna

#endif  // EHNA_BASELINES_NODE2VEC_H_
