#ifndef EHNA_BASELINES_HTNE_H_
#define EHNA_BASELINES_HTNE_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "nn/tensor.h"

namespace ehna {

/// HTNE baseline (Zuo et al., KDD'18): models each node's neighborhood-
/// formation sequence as a Hawkes process. For the event "x forms neighbor
/// y at time t" with history H_x(t) (x's most recent neighbors before t),
/// the conditional intensity is
///   lambda(y|x,t) = mu(x,y)
///     + sum_{h in H} alpha_h * exp(-delta_x * (t~ - t~_h)) * mu(h,y)
/// with mu(a,b) = -||e_a - e_b||^2, alpha the softmax attention over the
/// history (by -||e_h - e_x||^2) and delta_x a per-node positive decay
/// (softplus-parameterized). Training maximizes log sigma(lambda) for
/// observed events and log sigma(-lambda) for noise-sampled negatives.
/// Implemented over this repository's autograd with sparse-Adam rows.
struct HtneConfig {
  int64_t dim = 128;
  int history_size = 5;
  int negatives = 5;
  float learning_rate = 0.01f;
  int epochs = 3;
  /// Events sampled per epoch; 0 means every directed event (2 per edge).
  size_t events_per_epoch = 0;
  int batch_events = 64;
  uint64_t seed = 1;
};

class HtneEmbedder {
 public:
  explicit HtneEmbedder(const HtneConfig& config) : config_(config) {}

  Tensor Fit(const TemporalGraph& graph);

  const std::vector<double>& epoch_seconds() const { return epoch_seconds_; }

 private:
  HtneConfig config_;
  std::vector<double> epoch_seconds_;
};

}  // namespace ehna

#endif  // EHNA_BASELINES_HTNE_H_
