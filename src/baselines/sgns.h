#ifndef EHNA_BASELINES_SGNS_H_
#define EHNA_BASELINES_SGNS_H_

#include <vector>

#include "graph/noise_distribution.h"
#include "graph/temporal_graph.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace ehna {

/// Configuration of the skip-gram-with-negative-sampling trainer shared by
/// the DeepWalk/Node2Vec/CTDNE baselines.
struct SgnsConfig {
  int64_t dim = 128;
  /// Context window radius (paper: the node2vec default of 10).
  int window = 10;
  int negatives = 5;
  /// Initial SGD learning rate (linearly decayed by the embedder drivers).
  float learning_rate = 0.025f;
};

/// word2vec-style trainer: maintains input ("embedding") and output
/// ("context") vector tables and applies manual-gradient SGD updates for
/// (center, context) pairs drawn from random-walk corpora. Updates are
/// lock-free and safe to run hogwild-style from several threads (benign
/// races, as in the reference word2vec implementation).
class SgnsTrainer {
 public:
  SgnsTrainer(NodeId num_nodes, const SgnsConfig& config, Rng* rng);

  /// Trains on every (center, context) pair of `walk` within the window.
  /// `lr` overrides the configured learning rate (for decay schedules).
  void TrainWalk(const std::vector<NodeId>& walk,
                 const NoiseDistribution& noise, Rng* rng, float lr);

  /// One positive pair + `negatives` sampled negatives.
  void TrainPair(NodeId center, NodeId context, const NoiseDistribution& noise,
                 Rng* rng, float lr);

  /// The learned input vectors, [N, dim].
  const Tensor& embeddings() const { return in_; }

  const SgnsConfig& config() const { return config_; }

 private:
  SgnsConfig config_;
  Tensor in_;   // [N, dim] input vectors.
  Tensor out_;  // [N, dim] context vectors.
};

}  // namespace ehna

#endif  // EHNA_BASELINES_SGNS_H_
