#ifndef EHNA_BASELINES_LINE_H_
#define EHNA_BASELINES_LINE_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "nn/tensor.h"

namespace ehna {

/// LINE baseline (Tang et al., WWW'15). Two models are trained — one
/// preserving first-order proximity (symmetric sigmoid of the dot product)
/// and one preserving second-order proximity (context vectors) — each with
/// edge sampling (alias table over edge weights) and negative sampling.
/// Following the authors' recommendation (and the paper's §V.B), the final
/// representation concatenates the two halves, each of dimension dim/2.
struct LineConfig {
  int64_t dim = 128;  // total; each order gets dim/2.
  int negatives = 5;
  float learning_rate = 0.025f;
  /// Edge samples per epoch; 0 means one pass worth (num_edges).
  size_t samples_per_epoch = 0;
  int epochs = 2;
  uint64_t seed = 1;
};

class LineEmbedder {
 public:
  explicit LineEmbedder(const LineConfig& config) : config_(config) {}

  Tensor Fit(const TemporalGraph& graph);

  const std::vector<double>& epoch_seconds() const { return epoch_seconds_; }

 private:
  LineConfig config_;
  std::vector<double> epoch_seconds_;
};

}  // namespace ehna

#endif  // EHNA_BASELINES_LINE_H_
