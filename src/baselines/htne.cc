#include "baselines/htne.h"

#include <algorithm>
#include <numeric>

#include "graph/noise_distribution.h"
#include "nn/embedding.h"
#include "nn/ops.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace ehna {

namespace {

/// One directed neighbor-formation event: `target` joined `source`'s
/// neighborhood at `time`.
struct Event {
  NodeId source;
  NodeId target;
  Timestamp time;
};

}  // namespace

Tensor HtneEmbedder::Fit(const TemporalGraph& graph) {
  Rng rng(config_.seed);
  Embedding emb(graph.num_nodes(), config_.dim, &rng);
  Embedding delta_raw(graph.num_nodes(), 1, &rng);
  NoiseDistribution noise(graph);
  epoch_seconds_.clear();

  // Every edge produces the two directed events of neighborhood formation.
  std::vector<Event> events;
  events.reserve(graph.num_edges() * 2);
  for (const auto& e : graph.edges()) {
    events.push_back(Event{e.src, e.dst, e.time});
    events.push_back(Event{e.dst, e.src, e.time});
  }

  const double inv_span = 1.0 / graph.TimeSpan();
  const Timestamp min_time = graph.min_time();
  auto normalized = [&](Timestamp t) {
    return static_cast<float>((t - min_time) * inv_span);
  };

  // mu(a, b) = -||e_a - e_b||^2 between two gathered rows.
  auto mu = [&](const Var& a, const Var& b) {
    return ag::ScalarMul(ag::SumSquares(ag::Sub(a, b)), -1.0f);
  };

  auto event_intensity = [&](NodeId candidate,
                             const Var& e_x, const Var& hist,
                             const Var& alpha, const Var& kappa) {
    Var e_c = emb.GatherRow(candidate);
    Var base = mu(e_x, e_c);
    if (!hist.defined()) return base;
    Var mu_h = ag::ScalarMul(
        ag::RowSumSquares(ag::SubRowBroadcast(hist, e_c)), -1.0f);
    Var contribution = ag::Sum(ag::Mul(ag::Mul(alpha, kappa), mu_h));
    return ag::Add(base, contribution);
  };

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    Timer timer;
    std::vector<size_t> order(events.size());
    std::iota(order.begin(), order.end(), size_t{0});
    rng.Shuffle(&order);
    if (config_.events_per_epoch > 0 &&
        order.size() > config_.events_per_epoch) {
      order.resize(config_.events_per_epoch);
    }

    size_t i = 0;
    while (i < order.size()) {
      Var batch_loss;
      int count = 0;
      for (; count < config_.batch_events && i < order.size(); ++i, ++count) {
        const Event& ev = events[order[i]];
        // History: most recent neighbors strictly before the event.
        auto before = graph.NeighborsBefore(ev.source, ev.time);
        while (!before.empty() && before.back().time >= ev.time) {
          before = before.subspan(0, before.size() - 1);
        }
        const size_t hn = std::min<size_t>(
            before.size(), static_cast<size_t>(config_.history_size));

        Var e_x = emb.GatherRow(ev.source);
        Var hist, alpha, kappa;
        if (hn > 0) {
          std::vector<int64_t> hist_ids;
          Tensor dts(static_cast<int64_t>(hn));
          for (size_t h = 0; h < hn; ++h) {
            const AdjEntry& entry = before[before.size() - hn + h];
            hist_ids.push_back(entry.neighbor);
            dts[static_cast<int64_t>(h)] =
                normalized(ev.time) - normalized(entry.time);
          }
          hist = emb.Gather(hist_ids);
          alpha = ag::Softmax(ag::ScalarMul(
              ag::RowSumSquares(ag::SubRowBroadcast(hist, e_x)), -1.0f));
          // delta_x = softplus(raw); kappa_h = exp(-delta_x * dt_h).
          Var raw = delta_raw.GatherRow(ev.source);
          Var delta = ag::Log(ag::AddScalar(ag::Exp(raw), 1.0f));
          kappa = ag::Exp(ag::ScalarMul(
              ag::MulConst(ag::BroadcastScalar(delta, static_cast<int64_t>(hn)),
                           dts),
              -1.0f));
        }

        Var pos = event_intensity(ev.target, e_x, hist, alpha, kappa);
        Var loss = ag::ScalarMul(ag::LogSigmoid(pos), -1.0f);
        const NodeId exclude[] = {ev.source, ev.target};
        for (int q = 0; q < config_.negatives; ++q) {
          const NodeId v = noise.SampleExcluding(exclude, &rng);
          Var neg = event_intensity(v, e_x, hist, alpha, kappa);
          loss = ag::Add(loss, ag::ScalarMul(
                                   ag::LogSigmoid(ag::ScalarMul(neg, -1.0f)),
                                   -1.0f));
        }
        batch_loss = batch_loss.defined() ? ag::Add(batch_loss, loss) : loss;
      }
      if (!batch_loss.defined()) break;
      Var mean = ag::ScalarMul(batch_loss, 1.0f / static_cast<float>(count));
      Backward(mean);
      emb.ApplyAdam(config_.learning_rate);
      delta_raw.ApplyAdam(config_.learning_rate);
    }
    epoch_seconds_.push_back(timer.ElapsedSeconds());
    static StreamingHistogram* const epoch_hist =
        MetricsRegistry::Global().GetHistogram("baseline.htne.epoch");
    epoch_hist->Record(
        static_cast<uint64_t>(epoch_seconds_.back() * 1e9));
  }
  return emb.table();
}

}  // namespace ehna
