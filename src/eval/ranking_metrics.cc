#include "eval/ranking_metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ehna {

namespace {

/// Indices sorted by descending score (stable, so ties keep input order).
Result<std::vector<size_t>> RankedOrder(const std::vector<double>& scores,
                                        const std::vector<int>& relevance) {
  if (scores.size() != relevance.size()) {
    return Status::InvalidArgument("scores/relevance size mismatch");
  }
  if (scores.empty()) {
    return Status::InvalidArgument("empty candidate list");
  }
  for (int r : relevance) {
    if (r != 0 && r != 1) {
      return Status::InvalidArgument("relevance labels must be 0/1");
    }
  }
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  return order;
}

size_t TotalRelevant(const std::vector<int>& relevance) {
  size_t n = 0;
  for (int r : relevance) n += static_cast<size_t>(r);
  return n;
}

}  // namespace

Result<double> PrecisionAtK(const std::vector<double>& scores,
                            const std::vector<int>& relevance, size_t k) {
  EHNA_ASSIGN_OR_RETURN(const std::vector<size_t> order,
                        RankedOrder(scores, relevance));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  k = std::min(k, order.size());
  size_t hits = 0;
  for (size_t i = 0; i < k; ++i) hits += relevance[order[i]];
  return static_cast<double>(hits) / static_cast<double>(k);
}

Result<double> RecallAtK(const std::vector<double>& scores,
                         const std::vector<int>& relevance, size_t k) {
  EHNA_ASSIGN_OR_RETURN(const std::vector<size_t> order,
                        RankedOrder(scores, relevance));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  const size_t total = TotalRelevant(relevance);
  if (total == 0) return Status::InvalidArgument("no relevant items");
  k = std::min(k, order.size());
  size_t hits = 0;
  for (size_t i = 0; i < k; ++i) hits += relevance[order[i]];
  return static_cast<double>(hits) / static_cast<double>(total);
}

Result<double> AveragePrecision(const std::vector<double>& scores,
                                const std::vector<int>& relevance) {
  EHNA_ASSIGN_OR_RETURN(const std::vector<size_t> order,
                        RankedOrder(scores, relevance));
  const size_t total = TotalRelevant(relevance);
  if (total == 0) return Status::InvalidArgument("no relevant items");
  double sum = 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (relevance[order[i]] == 1) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(total);
}

Result<double> ReciprocalRank(const std::vector<double>& scores,
                              const std::vector<int>& relevance) {
  EHNA_ASSIGN_OR_RETURN(const std::vector<size_t> order,
                        RankedOrder(scores, relevance));
  for (size_t i = 0; i < order.size(); ++i) {
    if (relevance[order[i]] == 1) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

Result<double> NdcgAtK(const std::vector<double>& scores,
                       const std::vector<int>& relevance, size_t k) {
  EHNA_ASSIGN_OR_RETURN(const std::vector<size_t> order,
                        RankedOrder(scores, relevance));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  const size_t total = TotalRelevant(relevance);
  if (total == 0) return Status::InvalidArgument("no relevant items");
  k = std::min(k, order.size());
  double dcg = 0.0;
  for (size_t i = 0; i < k; ++i) {
    if (relevance[order[i]] == 1) dcg += 1.0 / std::log2(i + 2.0);
  }
  double ideal = 0.0;
  for (size_t i = 0; i < std::min(k, total); ++i) {
    ideal += 1.0 / std::log2(i + 2.0);
  }
  return dcg / ideal;
}

}  // namespace ehna
