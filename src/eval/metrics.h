#ifndef EHNA_EVAL_METRICS_H_
#define EHNA_EVAL_METRICS_H_

#include <vector>

#include "util/status.h"

namespace ehna {

/// Classification quality metrics for a binary task (the link-prediction
/// tables report AUC, F1, Precision and Recall).
struct BinaryMetrics {
  double auc = 0.0;
  double f1 = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double accuracy = 0.0;
};

/// Area under the ROC curve from scores and 0/1 labels, computed by the
/// rank statistic (ties get the average rank). Returns InvalidArgument if
/// either class is absent.
Result<double> AreaUnderRoc(const std::vector<double>& scores,
                            const std::vector<int>& labels);

/// Precision/recall/F1/accuracy at the given probability threshold plus
/// AUC. `scores` are probabilities (or any monotone score for AUC).
Result<BinaryMetrics> ComputeBinaryMetrics(const std::vector<double>& scores,
                                           const std::vector<int>& labels,
                                           double threshold = 0.5);

/// The paper's "Error Reduction" (Abu-El-Haija et al.):
/// ((1 - them) - (1 - us)) / (1 - them), where `them` is the best baseline
/// score and `us` is EHNA's. Positive numbers favour `us`.
double ErrorReduction(double best_baseline, double ours);

}  // namespace ehna

#endif  // EHNA_EVAL_METRICS_H_
