#ifndef EHNA_EVAL_ANN_H_
#define EHNA_EVAL_ANN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "eval/knn.h"
#include "nn/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace ehna {

/// Tuning knobs for the IVF-flat index.
struct IvfFlatOptions {
  /// Number of inverted lists (k-means cells). 0 picks round(sqrt(N))
  /// clamped to [1, N] — the standard IVF sizing, balancing the centroid
  /// scan against per-list length.
  size_t num_lists = 0;
  /// Lists probed per query. 0 picks max(1, num_lists / 4); raise toward
  /// num_lists for higher recall (== num_lists degenerates to the exact
  /// scan plus centroid overhead). Callers can also override per query.
  size_t nprobe = 0;
  /// Spherical k-means refinement sweeps over the training sample.
  int kmeans_iterations = 4;
  /// Rows the k-means trains on (uniform sample without replacement when N
  /// exceeds it); the final assignment pass always covers every row.
  size_t train_sample = 65536;
  /// Score used for both probe selection and candidate ranking. Defaults to
  /// the metric EHNA optimizes; candidate scores are computed with
  /// SimilarityScore, bit-identical to the exact scan's.
  Similarity similarity = Similarity::kNegativeEuclidean;
  uint64_t seed = 0x45484E41414E4E00ULL;  // "EHNAANN"
};

/// An IVF-flat approximate-nearest-neighbor index over an embedding matrix:
/// spherical k-means partitions the vectors into `num_lists` cells, each
/// cell storing its member ids and vector rows contiguously; a query scores
/// the `nprobe` nearest cell centroids and scans only those cells, cutting
/// the exact scan's O(N·d) to roughly O((num_lists + N·nprobe/num_lists)·d)
/// — a ~num_lists/nprobe speedup at the cost of missing neighbors that fell
/// into unprobed cells. Built for the serving layer's unit-norm final
/// embeddings (DESIGN.md §13); eval/knn.h's exact scan is the recall
/// oracle (recall@10 ≥ 0.95 pinned by tests/serve_test.cc).
///
/// Mutation (`Update`) supports the serving layer's incremental refresh:
/// re-assigning a changed vector is an O(num_lists·d) centroid scan plus an
/// O(1) swap-remove/append; centroids are never re-trained online (cell
/// quality degrades only as far as the embedding distribution drifts, at
/// which point the server rebuilds the index).
///
/// Not internally synchronized: concurrent const queries are safe against
/// each other but not against Update — the serving layer wraps the index in
/// its reader/writer lock.
class IvfFlatIndex {
 public:
  /// Builds an index over the rows of `embeddings` ([N, dim], N >= 1).
  static Result<IvfFlatIndex> Build(const Tensor& embeddings,
                                    IvfFlatOptions options = {});

  int64_t dim() const { return dim_; }
  /// Indexed vectors (grows via Update upserts).
  size_t size() const { return size_; }
  size_t num_lists() const { return static_cast<size_t>(centroids_.rows()); }
  /// The nprobe used when a query passes 0.
  size_t default_nprobe() const { return nprobe_; }

  /// Top-k scan of the `nprobe` (0 = default_nprobe()) cells nearest to
  /// `query` (length dim). `exclude` drops one id from the candidates (pass
  /// the query's own id for neighbor semantics matching TopKNeighbors).
  /// Results sorted by descending score.
  std::vector<Neighbor> Query(const float* query, size_t k,
                              int64_t exclude = -1, size_t nprobe = 0) const;

  /// Query by indexed id, excluding the id itself — the ANN counterpart of
  /// TopKNeighbors(embeddings, node, k, similarity). OutOfRange for ids not
  /// in the index.
  Result<std::vector<Neighbor>> QueryNode(NodeId node, size_t k,
                                          size_t nprobe = 0) const;

  /// Quantized candidate scoring over the probed cells (DESIGN.md §14):
  /// centroid ranking stays fp32, candidates in the probed cells are scored
  /// through `quant` (which must mirror the indexed matrix row-for-row by
  /// id), the top `rerank_factor * k` survivors are re-scored with the
  /// exact fp32 SimilarityScore over the indexed vectors, and the best k
  /// are returned with those exact scores. Ids the mirror does not cover
  /// yet are scored in fp32 directly (never silently dropped).
  std::vector<Neighbor> QueryQuantized(const QuantizedMatrix& quant,
                                       const float* query, size_t k,
                                       int64_t exclude = -1, size_t nprobe = 0,
                                       size_t rerank_factor = 4) const;

  /// QueryNode through the quantized path.
  Result<std::vector<Neighbor>> QueryNodeQuantized(
      const QuantizedMatrix& quant, NodeId node, size_t k, size_t nprobe = 0,
      size_t rerank_factor = 4) const;

  /// Upserts `vec` (length dim) as id `id`: re-assigns it to the nearest
  /// cell, moving it between lists if needed. New ids append (the id space
  /// may be sparse; absent ids cost one slot in the id->location table).
  void Update(NodeId id, const float* vec);

  /// The indexed vector for `id` (nullptr when absent). Valid until the
  /// next Update touching its cell.
  const float* VectorOf(NodeId id) const;

 private:
  IvfFlatIndex() = default;

  /// Index of the centroid nearest to `v` under the configured similarity.
  size_t NearestCentroid(const float* v) const;

  IvfFlatOptions options_;
  int64_t dim_ = 0;
  size_t size_ = 0;
  size_t nprobe_ = 1;
  Tensor centroids_;  // [num_lists, dim]
  std::vector<std::vector<NodeId>> list_ids_;
  std::vector<std::vector<float>> list_data_;  // parallel, row-contiguous.
  /// id -> (list, position); kInvalidList marks absent ids.
  static constexpr uint32_t kInvalidList = 0xFFFFFFFFu;
  std::vector<std::pair<uint32_t, uint32_t>> loc_;
};

}  // namespace ehna

#endif  // EHNA_EVAL_ANN_H_
