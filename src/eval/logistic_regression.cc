#include "eval/logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ehna {

namespace {
double StableSigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}
}  // namespace

Status LogisticRegression::Fit(const Tensor& features,
                               const std::vector<int>& labels) {
  if (features.rank() != 2 || features.rows() == 0) {
    return Status::InvalidArgument("features must be a non-empty matrix");
  }
  if (static_cast<size_t>(features.rows()) != labels.size()) {
    return Status::InvalidArgument("features/labels size mismatch");
  }
  for (int y : labels) {
    if (y != 0 && y != 1) return Status::InvalidArgument("labels must be 0/1");
  }

  const int64_t n = features.rows();
  const int64_t d = features.cols();
  w_.assign(d, 0.0f);
  b_ = 0.0f;

  // Adam state.
  std::vector<float> m(d + 1, 0.0f), v(d + 1, 0.0f);
  int64_t t = 0;
  const float beta1 = 0.9f, beta2 = 0.999f, eps = 1e-8f;

  Rng rng(config_.seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});

  std::vector<float> gw(d);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    size_t i = 0;
    while (i < order.size()) {
      std::fill(gw.begin(), gw.end(), 0.0f);
      float gb = 0.0f;
      int count = 0;
      for (; count < config_.batch && i < order.size(); ++i, ++count) {
        const size_t row = order[i];
        const float* x = features.Row(static_cast<int64_t>(row));
        double z = b_;
        for (int64_t j = 0; j < d; ++j) z += w_[j] * x[j];
        const float err =
            static_cast<float>(StableSigmoid(z) - labels[row]);
        for (int64_t j = 0; j < d; ++j) gw[j] += err * x[j];
        gb += err;
      }
      const float inv = 1.0f / static_cast<float>(count);
      for (int64_t j = 0; j < d; ++j) gw[j] = gw[j] * inv + config_.l2 * w_[j];
      gb *= inv;

      ++t;
      const float bc1 = 1.0f - std::pow(beta1, static_cast<float>(t));
      const float bc2 = 1.0f - std::pow(beta2, static_cast<float>(t));
      auto adam = [&](float g, float* param, int64_t slot) {
        m[slot] = beta1 * m[slot] + (1.0f - beta1) * g;
        v[slot] = beta2 * v[slot] + (1.0f - beta2) * g * g;
        *param -= config_.learning_rate * (m[slot] / bc1) /
                  (std::sqrt(v[slot] / bc2) + eps);
      };
      for (int64_t j = 0; j < d; ++j) adam(gw[j], &w_[j], j);
      adam(gb, &b_, d);
    }
  }
  return Status::OK();
}

double LogisticRegression::PredictProba(const float* x) const {
  double z = b_;
  for (size_t j = 0; j < w_.size(); ++j) z += w_[j] * x[j];
  return StableSigmoid(z);
}

std::vector<double> LogisticRegression::PredictProba(
    const Tensor& features) const {
  EHNA_CHECK_EQ(features.cols(), static_cast<int64_t>(w_.size()));
  std::vector<double> out(features.rows());
  for (int64_t i = 0; i < features.rows(); ++i) {
    out[i] = PredictProba(features.Row(i));
  }
  return out;
}

}  // namespace ehna
