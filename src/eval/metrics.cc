#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/metrics.h"

namespace ehna {

Result<double> AreaUnderRoc(const std::vector<double>& scores,
                            const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores/labels size mismatch");
  }
  const size_t n = scores.size();
  size_t pos = 0;
  for (int y : labels) {
    if (y != 0 && y != 1) {
      return Status::InvalidArgument("labels must be 0/1");
    }
    pos += static_cast<size_t>(y);
  }
  const size_t neg = n - pos;
  if (pos == 0 || neg == 0) {
    return Status::InvalidArgument("AUC needs both classes present");
  }
  EHNA_TRACE_PHASE("eval.phase.auc");

  // Average ranks with tie handling.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[idx[j + 1]] == scores[idx[i]]) ++j;
    // Ranks are 1-based; ties share the average rank of the run [i, j].
    const double avg_rank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) {
      if (labels[idx[k]] == 1) rank_sum_pos += avg_rank;
    }
    i = j + 1;
  }
  const double auc =
      (rank_sum_pos - static_cast<double>(pos) * (pos + 1) / 2.0) /
      (static_cast<double>(pos) * static_cast<double>(neg));
  return auc;
}

Result<BinaryMetrics> ComputeBinaryMetrics(const std::vector<double>& scores,
                                           const std::vector<int>& labels,
                                           double threshold) {
  EHNA_ASSIGN_OR_RETURN(const double auc, AreaUnderRoc(scores, labels));
  size_t tp = 0, fp = 0, tn = 0, fn = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const bool pred = scores[i] >= threshold;
    if (pred && labels[i] == 1) ++tp;
    else if (pred && labels[i] == 0) ++fp;
    else if (!pred && labels[i] == 0) ++tn;
    else ++fn;
  }
  BinaryMetrics m;
  m.auc = auc;
  m.precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
  m.recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
  m.f1 = m.precision + m.recall > 0.0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  m.accuracy = scores.empty()
                   ? 0.0
                   : static_cast<double>(tp + tn) / scores.size();
  return m;
}

double ErrorReduction(double best_baseline, double ours) {
  const double denom = 1.0 - best_baseline;
  if (std::abs(denom) < 1e-12) return 0.0;
  return ((1.0 - best_baseline) - (1.0 - ours)) / denom;
}

}  // namespace ehna
