#include "eval/reconstruction.h"

#include <algorithm>
#include <numeric>

namespace ehna {

Result<std::vector<double>> EvaluateReconstruction(
    const TemporalGraph& graph, const Tensor& embeddings,
    const ReconstructionOptions& options) {
  if (embeddings.rank() != 2 ||
      embeddings.rows() != static_cast<int64_t>(graph.num_nodes())) {
    return Status::InvalidArgument(
        "embeddings must be [num_nodes, dim] for this graph");
  }
  if (options.precision_at.empty()) {
    return Status::InvalidArgument("no P values requested");
  }
  if (options.sample_nodes < 2) {
    return Status::InvalidArgument("need at least 2 sampled nodes");
  }
  if (options.repeats < 1) {
    return Status::InvalidArgument("repeats must be >= 1");
  }

  Rng rng(options.seed);
  const int64_t d = embeddings.cols();
  std::vector<double> totals(options.precision_at.size(), 0.0);

  for (int rep = 0; rep < options.repeats; ++rep) {
    const std::vector<size_t> sample = rng.SampleWithoutReplacement(
        graph.num_nodes(), options.sample_nodes);

    // Score all pairs among the sample.
    struct ScoredPair {
      float score;
      NodeId u, v;
    };
    std::vector<ScoredPair> pairs;
    pairs.reserve(sample.size() * (sample.size() - 1) / 2);
    for (size_t a = 0; a < sample.size(); ++a) {
      const float* ea = embeddings.Row(static_cast<int64_t>(sample[a]));
      for (size_t b = a + 1; b < sample.size(); ++b) {
        const float* eb = embeddings.Row(static_cast<int64_t>(sample[b]));
        float dot = 0.0f;
        for (int64_t j = 0; j < d; ++j) dot += ea[j] * eb[j];
        pairs.push_back(ScoredPair{dot, static_cast<NodeId>(sample[a]),
                                   static_cast<NodeId>(sample[b])});
      }
    }

    // Only the largest requested P pairs matter: partial sort.
    const size_t max_p =
        std::min(pairs.size(),
                 *std::max_element(options.precision_at.begin(),
                                   options.precision_at.end()));
    std::partial_sort(pairs.begin(), pairs.begin() + max_p, pairs.end(),
                      [](const ScoredPair& a, const ScoredPair& b) {
                        return a.score > b.score;
                      });

    // Cumulative hits over the ranked prefix, then read off each P.
    std::vector<size_t> cumulative_hits(max_p + 1, 0);
    for (size_t i = 0; i < max_p; ++i) {
      cumulative_hits[i + 1] =
          cumulative_hits[i] +
          (graph.HasEdge(pairs[i].u, pairs[i].v) ? 1 : 0);
    }
    for (size_t pi = 0; pi < options.precision_at.size(); ++pi) {
      const size_t p = std::min(options.precision_at[pi], max_p);
      totals[pi] += p == 0 ? 0.0
                           : static_cast<double>(cumulative_hits[p]) /
                                 static_cast<double>(p);
    }
  }

  for (double& t : totals) t /= options.repeats;
  return totals;
}

}  // namespace ehna
