#ifndef EHNA_EVAL_LOGISTIC_REGRESSION_H_
#define EHNA_EVAL_LOGISTIC_REGRESSION_H_

#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace ehna {

/// Configuration of the L2-regularized binary logistic-regression
/// classifier used by the link-prediction protocol (the paper trains
/// LIBLINEAR; this is the same model class optimized by mini-batch Adam,
/// which gives all embedding methods the same footing — see DESIGN.md §4).
struct LogisticRegressionConfig {
  float learning_rate = 0.05f;
  int epochs = 60;
  int batch = 64;
  /// L2 penalty weight (LIBLINEAR's 1/(2C); default matches C = 1 at
  /// n ~ a few thousand examples).
  float l2 = 1e-4f;
  uint64_t seed = 7;
};

/// Binary logistic regression over dense float features.
class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticRegressionConfig config = {})
      : config_(config) {}

  /// Fits on `features` [n, d] with labels in {0, 1}.
  Status Fit(const Tensor& features, const std::vector<int>& labels);

  /// P(y = 1 | x) for one feature row of the fitted dimensionality.
  double PredictProba(const float* x) const;

  /// Probabilities for every row of `features`.
  std::vector<double> PredictProba(const Tensor& features) const;

  const std::vector<float>& weights() const { return w_; }
  float bias() const { return b_; }

 private:
  LogisticRegressionConfig config_;
  std::vector<float> w_;
  float b_ = 0.0f;
};

}  // namespace ehna

#endif  // EHNA_EVAL_LOGISTIC_REGRESSION_H_
