#ifndef EHNA_EVAL_KNN_H_
#define EHNA_EVAL_KNN_H_

#include <span>
#include <vector>

#include "graph/temporal_graph.h"
#include "nn/quant.h"
#include "nn/tensor.h"
#include "util/status.h"

namespace ehna {

/// Similarity used by nearest-neighbor queries over an embedding matrix.
enum class Similarity {
  kDotProduct,          // the paper's reconstruction metric.
  kCosine,              // dot product on L2-normalized vectors.
  kNegativeEuclidean,   // -||a-b||^2, the metric EHNA optimizes.
};

/// One nearest-neighbor hit.
struct Neighbor {
  NodeId node = 0;
  double score = 0.0;
};

/// The scalar score behind every nearest-neighbor query in this library
/// (double accumulation over `d` floats). Shared by the exact scan and the
/// IVF index (eval/ann.h) so ANN candidate scores are bit-identical to the
/// oracle's and recall comparisons never hinge on summation order.
double SimilarityScore(const float* a, const float* b, int64_t d,
                       Similarity similarity);

/// Exact top-k search: returns the `k` highest-scoring nodes for `query`
/// (excluding the query itself), sorted by descending score. O(N·d) per
/// query with an O(N log k) heap — appropriate for the graph sizes this
/// library targets; callers needing sublinear search should use the IVF
/// index in eval/ann.h.
Result<std::vector<Neighbor>> TopKNeighbors(const Tensor& embeddings,
                                            NodeId query, size_t k,
                                            Similarity similarity);

/// Batched exact top-k: one pass over the embedding matrix answers every
/// query in `queries`, returning per-query results identical (including tie
/// behavior) to calling TopKNeighbors per query — but touching each of the
/// N rows once instead of Q times, so the row data stays cache-resident
/// across the Q heap updates. This is the harness-side API for Table 3–6
/// style evaluations and the recall oracle for ANN benchmarks.
Result<std::vector<std::vector<Neighbor>>> TopKNeighborsBatch(
    const Tensor& embeddings, std::span<const NodeId> queries, size_t k,
    Similarity similarity);

/// Pairwise similarity of two rows of `embeddings`.
Result<double> PairSimilarity(const Tensor& embeddings, NodeId a, NodeId b,
                              Similarity similarity);

// ------------------------------------------- reduced-precision candidates
//
// Quantized candidate scoring for the serving tier (DESIGN.md §14): the
// quantized mirror ranks candidates cheaply, then the survivors are
// re-scored with the exact fp32 SimilarityScore, so returned scores stay
// bit-identical to the oracle's for the rows that make the cut. The score
// combination here is ISA-independent scalar double arithmetic in one
// fixed expression order per similarity; only the exact int32 dot (int8)
// or the fixed-order widening dot (bf16) runs through the dispatched
// kernels — which is what makes quantized scores bitwise identical under
// EHNA_KERNEL_ISA=scalar and =avx2.

/// Scores rows of a quantized serving mirror against one query under the
/// serving similarity. Not thread-safe (owns GEMV scratch); make one per
/// query or per thread.
class QuantizedScorer {
 public:
  /// `query` (length quant->dim()) is borrowed and must outlive the
  /// scorer; it is prepared once (int8: quantized with the row scheme, so
  /// a node's own fp32 row reproduces its stored codes exactly).
  QuantizedScorer(const QuantizedMatrix* quant, const float* query,
                  Similarity similarity);

  /// Quantized-domain score of one row.
  double Score(int64_t row) const;

  /// Scores the contiguous rows [row0, row0 + count) through the blocked
  /// GemvI8/GemvBf16 kernels; writes `count` scores (bit-identical to
  /// per-row Score calls).
  void ScoreBlock(int64_t row0, int64_t count, double* out);

 private:
  double Combine(int64_t row, int32_t idot) const;
  double Combine(int64_t row, float fdot) const;

  const QuantizedMatrix* quant_;
  Similarity similarity_;
  QuantizedQuery query_;
  std::vector<int32_t> idot_scratch_;
  std::vector<float> fdot_scratch_;
};

/// Exact-scan top-k over the quantized mirror with fp32 re-rank: the
/// quantized scores select the top `rerank_factor * k` candidates (the
/// full O(N·d) scan at reduced precision), which are re-ranked with the
/// exact fp32 SimilarityScore over `embeddings` — so the returned scores
/// are exactly the oracle's, and recall is the only thing quantization can
/// cost. `quant` must mirror `embeddings` row-for-row.
Result<std::vector<Neighbor>> TopKNeighborsQuantized(
    const Tensor& embeddings, const QuantizedMatrix& quant, NodeId query,
    size_t k, Similarity similarity, size_t rerank_factor = 4);

}  // namespace ehna

#endif  // EHNA_EVAL_KNN_H_
