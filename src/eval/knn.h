#ifndef EHNA_EVAL_KNN_H_
#define EHNA_EVAL_KNN_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "nn/tensor.h"
#include "util/status.h"

namespace ehna {

/// Similarity used by nearest-neighbor queries over an embedding matrix.
enum class Similarity {
  kDotProduct,          // the paper's reconstruction metric.
  kCosine,              // dot product on L2-normalized vectors.
  kNegativeEuclidean,   // -||a-b||^2, the metric EHNA optimizes.
};

/// One nearest-neighbor hit.
struct Neighbor {
  NodeId node = 0;
  double score = 0.0;
};

/// Exact top-k search: returns the `k` highest-scoring nodes for `query`
/// (excluding the query itself), sorted by descending score. O(N·d) per
/// query with an O(N log k) heap — appropriate for the graph sizes this
/// library targets; callers needing sublinear search should index the
/// matrix externally.
Result<std::vector<Neighbor>> TopKNeighbors(const Tensor& embeddings,
                                            NodeId query, size_t k,
                                            Similarity similarity);

/// Pairwise similarity of two rows of `embeddings`.
Result<double> PairSimilarity(const Tensor& embeddings, NodeId a, NodeId b,
                              Similarity similarity);

}  // namespace ehna

#endif  // EHNA_EVAL_KNN_H_
