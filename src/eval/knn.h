#ifndef EHNA_EVAL_KNN_H_
#define EHNA_EVAL_KNN_H_

#include <span>
#include <vector>

#include "graph/temporal_graph.h"
#include "nn/tensor.h"
#include "util/status.h"

namespace ehna {

/// Similarity used by nearest-neighbor queries over an embedding matrix.
enum class Similarity {
  kDotProduct,          // the paper's reconstruction metric.
  kCosine,              // dot product on L2-normalized vectors.
  kNegativeEuclidean,   // -||a-b||^2, the metric EHNA optimizes.
};

/// One nearest-neighbor hit.
struct Neighbor {
  NodeId node = 0;
  double score = 0.0;
};

/// The scalar score behind every nearest-neighbor query in this library
/// (double accumulation over `d` floats). Shared by the exact scan and the
/// IVF index (eval/ann.h) so ANN candidate scores are bit-identical to the
/// oracle's and recall comparisons never hinge on summation order.
double SimilarityScore(const float* a, const float* b, int64_t d,
                       Similarity similarity);

/// Exact top-k search: returns the `k` highest-scoring nodes for `query`
/// (excluding the query itself), sorted by descending score. O(N·d) per
/// query with an O(N log k) heap — appropriate for the graph sizes this
/// library targets; callers needing sublinear search should use the IVF
/// index in eval/ann.h.
Result<std::vector<Neighbor>> TopKNeighbors(const Tensor& embeddings,
                                            NodeId query, size_t k,
                                            Similarity similarity);

/// Batched exact top-k: one pass over the embedding matrix answers every
/// query in `queries`, returning per-query results identical (including tie
/// behavior) to calling TopKNeighbors per query — but touching each of the
/// N rows once instead of Q times, so the row data stays cache-resident
/// across the Q heap updates. This is the harness-side API for Table 3–6
/// style evaluations and the recall oracle for ANN benchmarks.
Result<std::vector<std::vector<Neighbor>>> TopKNeighborsBatch(
    const Tensor& embeddings, std::span<const NodeId> queries, size_t k,
    Similarity similarity);

/// Pairwise similarity of two rows of `embeddings`.
Result<double> PairSimilarity(const Tensor& embeddings, NodeId a, NodeId b,
                              Similarity similarity);

}  // namespace ehna

#endif  // EHNA_EVAL_KNN_H_
