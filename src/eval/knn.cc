#include "eval/knn.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <string>

#include "nn/kernels.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace ehna {

double SimilarityScore(const float* a, const float* b, int64_t d,
                       Similarity similarity) {
  switch (similarity) {
    case Similarity::kDotProduct: {
      double dot = 0.0;
      for (int64_t j = 0; j < d; ++j) dot += static_cast<double>(a[j]) * b[j];
      return dot;
    }
    case Similarity::kCosine: {
      double dot = 0.0, na = 0.0, nb = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        dot += static_cast<double>(a[j]) * b[j];
        na += static_cast<double>(a[j]) * a[j];
        nb += static_cast<double>(b[j]) * b[j];
      }
      const double denom = std::sqrt(na) * std::sqrt(nb);
      return denom > 1e-24 ? dot / denom : 0.0;
    }
    case Similarity::kNegativeEuclidean: {
      double dist = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        const double diff = static_cast<double>(a[j]) - b[j];
        dist += diff * diff;
      }
      return -dist;
    }
  }
  return 0.0;
}

namespace {

// Min-heap comparator shared by the single and batched scans: the heap top
// is the worst of the best-k seen so far.
struct WorseNeighbor {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    return a.score > b.score;
  }
};

std::vector<Neighbor> DrainHeapDescending(
    std::priority_queue<Neighbor, std::vector<Neighbor>, WorseNeighbor>* heap) {
  std::vector<Neighbor> out;
  out.reserve(heap->size());
  while (!heap->empty()) {
    out.push_back(heap->top());
    heap->pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace

Result<std::vector<Neighbor>> TopKNeighbors(const Tensor& embeddings,
                                            NodeId query, size_t k,
                                            Similarity similarity) {
  if (embeddings.rank() != 2) {
    return Status::InvalidArgument("embeddings must be a matrix");
  }
  if (query >= embeddings.rows()) {
    return Status::OutOfRange("query node " + std::to_string(query) +
                              " outside embedding matrix");
  }
  if (k == 0) return std::vector<Neighbor>{};
  EHNA_TRACE_PHASE("eval.phase.knn_query");

  const int64_t d = embeddings.cols();
  const float* q = embeddings.Row(query);

  // Min-heap of the best k scores seen so far.
  std::priority_queue<Neighbor, std::vector<Neighbor>, WorseNeighbor> heap;
  for (int64_t v = 0; v < embeddings.rows(); ++v) {
    if (static_cast<NodeId>(v) == query) continue;
    const double s = SimilarityScore(q, embeddings.Row(v), d, similarity);
    if (heap.size() < k) {
      heap.push(Neighbor{static_cast<NodeId>(v), s});
    } else if (s > heap.top().score) {
      heap.pop();
      heap.push(Neighbor{static_cast<NodeId>(v), s});
    }
  }
  return DrainHeapDescending(&heap);
}

Result<std::vector<std::vector<Neighbor>>> TopKNeighborsBatch(
    const Tensor& embeddings, std::span<const NodeId> queries, size_t k,
    Similarity similarity) {
  if (embeddings.rank() != 2) {
    return Status::InvalidArgument("embeddings must be a matrix");
  }
  for (const NodeId q : queries) {
    if (q >= embeddings.rows()) {
      return Status::OutOfRange("query node " + std::to_string(q) +
                                " outside embedding matrix");
    }
  }
  std::vector<std::vector<Neighbor>> results(queries.size());
  if (k == 0 || queries.empty()) return results;
  EHNA_TRACE_PHASE("eval.phase.knn_query_batch");

  const int64_t d = embeddings.cols();
  // One pass over the matrix: row v is scored against every query while its
  // data is hot, with per-query heaps updated by the exact per-query rule —
  // so results (including tie behavior, which keeps the lowest-id node when
  // scores tie at the heap boundary) match TopKNeighbors call-for-call.
  std::vector<
      std::priority_queue<Neighbor, std::vector<Neighbor>, WorseNeighbor>>
      heaps(queries.size());
  for (int64_t v = 0; v < embeddings.rows(); ++v) {
    const float* row = embeddings.Row(v);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      if (static_cast<NodeId>(v) == queries[qi]) continue;
      const double s =
          SimilarityScore(embeddings.Row(queries[qi]), row, d, similarity);
      auto& heap = heaps[qi];
      if (heap.size() < k) {
        heap.push(Neighbor{static_cast<NodeId>(v), s});
      } else if (s > heap.top().score) {
        heap.pop();
        heap.push(Neighbor{static_cast<NodeId>(v), s});
      }
    }
  }
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    results[qi] = DrainHeapDescending(&heaps[qi]);
  }
  return results;
}

QuantizedScorer::QuantizedScorer(const QuantizedMatrix* quant,
                                 const float* query, Similarity similarity)
    : quant_(quant),
      similarity_(similarity),
      query_(PrepareQuantizedQuery(query, quant->dim(), quant->precision())) {}

// The int8 score combinations. Scales and norms enter in one fixed scalar
// expression order per similarity, computed in double:
//   dot      s_r · s_q · idot
//   cosine   idot / sqrt(rn · qn)          (the scales cancel exactly)
//   -L2      2·s_r·s_q·idot − s_r²·rn − s_q²·qn
// where idot/rn/qn are exact int32 quantities from the kernels.
double QuantizedScorer::Combine(int64_t row, int32_t idot) const {
  const double rs = static_cast<double>(quant_->scale(row));
  const double qs = static_cast<double>(query_.scale);
  switch (similarity_) {
    case Similarity::kDotProduct:
      return rs * qs * static_cast<double>(idot);
    case Similarity::kCosine: {
      const double denom = std::sqrt(static_cast<double>(quant_->sqnorm_i32(row)) *
                                     static_cast<double>(query_.sqnorm_i32));
      return denom > 0.0 ? static_cast<double>(idot) / denom : 0.0;
    }
    case Similarity::kNegativeEuclidean:
      return 2.0 * rs * qs * static_cast<double>(idot) -
             rs * rs * static_cast<double>(quant_->sqnorm_i32(row)) -
             qs * qs * static_cast<double>(query_.sqnorm_i32);
  }
  return 0.0;
}

// The bf16 combinations: the widening dot is already fp32; norms are the
// stored per-row double and the query's precomputed double.
double QuantizedScorer::Combine(int64_t row, float fdot) const {
  switch (similarity_) {
    case Similarity::kDotProduct:
      return static_cast<double>(fdot);
    case Similarity::kCosine: {
      const double denom = std::sqrt(quant_->sqnorm(row) * query_.sqnorm);
      return denom > 1e-24 ? static_cast<double>(fdot) / denom : 0.0;
    }
    case Similarity::kNegativeEuclidean:
      return 2.0 * static_cast<double>(fdot) - quant_->sqnorm(row) -
             query_.sqnorm;
  }
  return 0.0;
}

double QuantizedScorer::Score(int64_t row) const {
  const int64_t d = quant_->dim();
  switch (quant_->precision()) {
    case ServePrecision::kInt8:
      return Combine(row,
                     kernels::DotI8(quant_->RowI8(row), query_.i8.data(), d));
    case ServePrecision::kBf16:
      return Combine(row, kernels::DotBf16(quant_->RowBf16(row), query_.fp32, d));
    case ServePrecision::kFp32:
      break;
  }
  EHNA_CHECK(false) << "QuantizedScorer over an fp32 (empty) mirror";
  return 0.0;
}

void QuantizedScorer::ScoreBlock(int64_t row0, int64_t count, double* out) {
  const int64_t d = quant_->dim();
  switch (quant_->precision()) {
    case ServePrecision::kInt8:
      idot_scratch_.resize(static_cast<size_t>(count));
      kernels::GemvI8(count, d, quant_->DataI8() + row0 * d, query_.i8.data(),
                      idot_scratch_.data());
      for (int64_t i = 0; i < count; ++i) {
        out[i] = Combine(row0 + i, idot_scratch_[static_cast<size_t>(i)]);
      }
      return;
    case ServePrecision::kBf16:
      fdot_scratch_.resize(static_cast<size_t>(count));
      kernels::GemvBf16(count, d, quant_->DataBf16() + row0 * d, query_.fp32,
                        fdot_scratch_.data());
      for (int64_t i = 0; i < count; ++i) {
        out[i] = Combine(row0 + i, fdot_scratch_[static_cast<size_t>(i)]);
      }
      return;
    case ServePrecision::kFp32:
      break;
  }
  EHNA_CHECK(false) << "QuantizedScorer over an fp32 (empty) mirror";
}

Result<std::vector<Neighbor>> TopKNeighborsQuantized(
    const Tensor& embeddings, const QuantizedMatrix& quant, NodeId query,
    size_t k, Similarity similarity, size_t rerank_factor) {
  if (embeddings.rank() != 2) {
    return Status::InvalidArgument("embeddings must be a matrix");
  }
  if (quant.rows() != embeddings.rows() || quant.dim() != embeddings.cols()) {
    return Status::InvalidArgument(
        "quantized mirror does not match the embedding matrix");
  }
  if (quant.precision() == ServePrecision::kFp32) {
    return TopKNeighbors(embeddings, query, k, similarity);
  }
  if (query >= embeddings.rows()) {
    return Status::OutOfRange("query node " + std::to_string(query) +
                              " outside embedding matrix");
  }
  if (k == 0) return std::vector<Neighbor>{};
  EHNA_TRACE_PHASE("eval.phase.knn_query_quantized");

  const int64_t n = embeddings.rows();
  const int64_t d = embeddings.cols();
  const float* q = embeddings.Row(query);
  const size_t survivors =
      std::min<size_t>(std::max<size_t>(rerank_factor, 1) * k,
                       static_cast<size_t>(n));

  // Quantized O(N·d) selection pass, blocked through the GEMV kernels.
  QuantizedScorer scorer(&quant, q, similarity);
  constexpr int64_t kBlockRows = 1024;
  std::vector<double> block(kBlockRows);
  std::priority_queue<Neighbor, std::vector<Neighbor>, WorseNeighbor> heap;
  for (int64_t base = 0; base < n; base += kBlockRows) {
    const int64_t rows = std::min<int64_t>(kBlockRows, n - base);
    scorer.ScoreBlock(base, rows, block.data());
    for (int64_t i = 0; i < rows; ++i) {
      const NodeId v = static_cast<NodeId>(base + i);
      if (v == query) continue;
      const double s = block[static_cast<size_t>(i)];
      if (heap.size() < survivors) {
        heap.push(Neighbor{v, s});
      } else if (s > heap.top().score) {
        heap.pop();
        heap.push(Neighbor{v, s});
      }
    }
  }

  // fp32 re-rank: exact oracle scores for the survivors; ties break toward
  // the lower node id so results are deterministic.
  std::vector<Neighbor> cand = DrainHeapDescending(&heap);
  for (Neighbor& nb : cand) {
    nb.score = SimilarityScore(q, embeddings.Row(nb.node), d, similarity);
  }
  std::sort(cand.begin(), cand.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  });
  if (cand.size() > k) cand.resize(k);
  return cand;
}

Result<double> PairSimilarity(const Tensor& embeddings, NodeId a, NodeId b,
                              Similarity similarity) {
  if (embeddings.rank() != 2) {
    return Status::InvalidArgument("embeddings must be a matrix");
  }
  if (a >= embeddings.rows() || b >= embeddings.rows()) {
    return Status::OutOfRange("node outside embedding matrix");
  }
  return SimilarityScore(embeddings.Row(a), embeddings.Row(b),
                         embeddings.cols(), similarity);
}

}  // namespace ehna
