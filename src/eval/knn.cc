#include "eval/knn.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <string>

#include "util/metrics.h"

namespace ehna {

double SimilarityScore(const float* a, const float* b, int64_t d,
                       Similarity similarity) {
  switch (similarity) {
    case Similarity::kDotProduct: {
      double dot = 0.0;
      for (int64_t j = 0; j < d; ++j) dot += static_cast<double>(a[j]) * b[j];
      return dot;
    }
    case Similarity::kCosine: {
      double dot = 0.0, na = 0.0, nb = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        dot += static_cast<double>(a[j]) * b[j];
        na += static_cast<double>(a[j]) * a[j];
        nb += static_cast<double>(b[j]) * b[j];
      }
      const double denom = std::sqrt(na) * std::sqrt(nb);
      return denom > 1e-24 ? dot / denom : 0.0;
    }
    case Similarity::kNegativeEuclidean: {
      double dist = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        const double diff = static_cast<double>(a[j]) - b[j];
        dist += diff * diff;
      }
      return -dist;
    }
  }
  return 0.0;
}

namespace {

// Min-heap comparator shared by the single and batched scans: the heap top
// is the worst of the best-k seen so far.
struct WorseNeighbor {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    return a.score > b.score;
  }
};

std::vector<Neighbor> DrainHeapDescending(
    std::priority_queue<Neighbor, std::vector<Neighbor>, WorseNeighbor>* heap) {
  std::vector<Neighbor> out;
  out.reserve(heap->size());
  while (!heap->empty()) {
    out.push_back(heap->top());
    heap->pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace

Result<std::vector<Neighbor>> TopKNeighbors(const Tensor& embeddings,
                                            NodeId query, size_t k,
                                            Similarity similarity) {
  if (embeddings.rank() != 2) {
    return Status::InvalidArgument("embeddings must be a matrix");
  }
  if (query >= embeddings.rows()) {
    return Status::OutOfRange("query node " + std::to_string(query) +
                              " outside embedding matrix");
  }
  if (k == 0) return std::vector<Neighbor>{};
  EHNA_TRACE_PHASE("eval.phase.knn_query");

  const int64_t d = embeddings.cols();
  const float* q = embeddings.Row(query);

  // Min-heap of the best k scores seen so far.
  std::priority_queue<Neighbor, std::vector<Neighbor>, WorseNeighbor> heap;
  for (int64_t v = 0; v < embeddings.rows(); ++v) {
    if (static_cast<NodeId>(v) == query) continue;
    const double s = SimilarityScore(q, embeddings.Row(v), d, similarity);
    if (heap.size() < k) {
      heap.push(Neighbor{static_cast<NodeId>(v), s});
    } else if (s > heap.top().score) {
      heap.pop();
      heap.push(Neighbor{static_cast<NodeId>(v), s});
    }
  }
  return DrainHeapDescending(&heap);
}

Result<std::vector<std::vector<Neighbor>>> TopKNeighborsBatch(
    const Tensor& embeddings, std::span<const NodeId> queries, size_t k,
    Similarity similarity) {
  if (embeddings.rank() != 2) {
    return Status::InvalidArgument("embeddings must be a matrix");
  }
  for (const NodeId q : queries) {
    if (q >= embeddings.rows()) {
      return Status::OutOfRange("query node " + std::to_string(q) +
                                " outside embedding matrix");
    }
  }
  std::vector<std::vector<Neighbor>> results(queries.size());
  if (k == 0 || queries.empty()) return results;
  EHNA_TRACE_PHASE("eval.phase.knn_query_batch");

  const int64_t d = embeddings.cols();
  // One pass over the matrix: row v is scored against every query while its
  // data is hot, with per-query heaps updated by the exact per-query rule —
  // so results (including tie behavior, which keeps the lowest-id node when
  // scores tie at the heap boundary) match TopKNeighbors call-for-call.
  std::vector<
      std::priority_queue<Neighbor, std::vector<Neighbor>, WorseNeighbor>>
      heaps(queries.size());
  for (int64_t v = 0; v < embeddings.rows(); ++v) {
    const float* row = embeddings.Row(v);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      if (static_cast<NodeId>(v) == queries[qi]) continue;
      const double s =
          SimilarityScore(embeddings.Row(queries[qi]), row, d, similarity);
      auto& heap = heaps[qi];
      if (heap.size() < k) {
        heap.push(Neighbor{static_cast<NodeId>(v), s});
      } else if (s > heap.top().score) {
        heap.pop();
        heap.push(Neighbor{static_cast<NodeId>(v), s});
      }
    }
  }
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    results[qi] = DrainHeapDescending(&heaps[qi]);
  }
  return results;
}

Result<double> PairSimilarity(const Tensor& embeddings, NodeId a, NodeId b,
                              Similarity similarity) {
  if (embeddings.rank() != 2) {
    return Status::InvalidArgument("embeddings must be a matrix");
  }
  if (a >= embeddings.rows() || b >= embeddings.rows()) {
    return Status::OutOfRange("node outside embedding matrix");
  }
  return SimilarityScore(embeddings.Row(a), embeddings.Row(b),
                         embeddings.cols(), similarity);
}

}  // namespace ehna
