#include "eval/knn.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <string>

#include "util/metrics.h"

namespace ehna {

namespace {

double Score(const float* a, const float* b, int64_t d,
             Similarity similarity) {
  switch (similarity) {
    case Similarity::kDotProduct: {
      double dot = 0.0;
      for (int64_t j = 0; j < d; ++j) dot += static_cast<double>(a[j]) * b[j];
      return dot;
    }
    case Similarity::kCosine: {
      double dot = 0.0, na = 0.0, nb = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        dot += static_cast<double>(a[j]) * b[j];
        na += static_cast<double>(a[j]) * a[j];
        nb += static_cast<double>(b[j]) * b[j];
      }
      const double denom = std::sqrt(na) * std::sqrt(nb);
      return denom > 1e-24 ? dot / denom : 0.0;
    }
    case Similarity::kNegativeEuclidean: {
      double dist = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        const double diff = static_cast<double>(a[j]) - b[j];
        dist += diff * diff;
      }
      return -dist;
    }
  }
  return 0.0;
}

}  // namespace

Result<std::vector<Neighbor>> TopKNeighbors(const Tensor& embeddings,
                                            NodeId query, size_t k,
                                            Similarity similarity) {
  if (embeddings.rank() != 2) {
    return Status::InvalidArgument("embeddings must be a matrix");
  }
  if (query >= embeddings.rows()) {
    return Status::OutOfRange("query node " + std::to_string(query) +
                              " outside embedding matrix");
  }
  if (k == 0) return std::vector<Neighbor>{};
  EHNA_TRACE_PHASE("eval.phase.knn_query");

  const int64_t d = embeddings.cols();
  const float* q = embeddings.Row(query);

  // Min-heap of the best k scores seen so far.
  auto worse = [](const Neighbor& a, const Neighbor& b) {
    return a.score > b.score;
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(worse)> heap(
      worse);
  for (int64_t v = 0; v < embeddings.rows(); ++v) {
    if (static_cast<NodeId>(v) == query) continue;
    const double s = Score(q, embeddings.Row(v), d, similarity);
    if (heap.size() < k) {
      heap.push(Neighbor{static_cast<NodeId>(v), s});
    } else if (s > heap.top().score) {
      heap.pop();
      heap.push(Neighbor{static_cast<NodeId>(v), s});
    }
  }
  std::vector<Neighbor> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

Result<double> PairSimilarity(const Tensor& embeddings, NodeId a, NodeId b,
                              Similarity similarity) {
  if (embeddings.rank() != 2) {
    return Status::InvalidArgument("embeddings must be a matrix");
  }
  if (a >= embeddings.rows() || b >= embeddings.rows()) {
    return Status::OutOfRange("node outside embedding matrix");
  }
  return Score(embeddings.Row(a), embeddings.Row(b), embeddings.cols(),
               similarity);
}

}  // namespace ehna
