#ifndef EHNA_EVAL_RANKING_METRICS_H_
#define EHNA_EVAL_RANKING_METRICS_H_

#include <vector>

#include "util/status.h"

namespace ehna {

/// Ranking-quality metrics over a scored candidate list, complementing the
/// paper's Precision@P with the standard retrieval suite (used by the
/// reconstruction analyses and available to library users for
/// recommendation-style evaluations).
///
/// All functions take parallel `scores` (higher = ranked earlier) and 0/1
/// `relevance` labels; ties are broken by original index, matching a
/// stable sort of the candidates.

/// Precision@k: fraction of the top-k that is relevant. k is clamped to
/// the list size.
Result<double> PrecisionAtK(const std::vector<double>& scores,
                            const std::vector<int>& relevance, size_t k);

/// Recall@k: fraction of all relevant items that appear in the top-k.
Result<double> RecallAtK(const std::vector<double>& scores,
                         const std::vector<int>& relevance, size_t k);

/// Average precision: mean of Precision@rank over the ranks of relevant
/// items (the building block of MAP).
Result<double> AveragePrecision(const std::vector<double>& scores,
                                const std::vector<int>& relevance);

/// Reciprocal rank of the first relevant item (0 if none).
Result<double> ReciprocalRank(const std::vector<double>& scores,
                              const std::vector<int>& relevance);

/// Normalized discounted cumulative gain at k with binary gains.
Result<double> NdcgAtK(const std::vector<double>& scores,
                       const std::vector<int>& relevance, size_t k);

}  // namespace ehna

#endif  // EHNA_EVAL_RANKING_METRICS_H_
