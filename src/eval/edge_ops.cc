#include "eval/edge_ops.h"

#include <cmath>

namespace ehna {

const char* EdgeOperatorName(EdgeOperator op) {
  switch (op) {
    case EdgeOperator::kMean:
      return "Mean";
    case EdgeOperator::kHadamard:
      return "Hadamard";
    case EdgeOperator::kWeightedL1:
      return "Weighted-L1";
    case EdgeOperator::kWeightedL2:
      return "Weighted-L2";
  }
  return "?";
}

void ApplyEdgeOperator(EdgeOperator op, const float* ex, const float* ey,
                       int64_t dim, float* out) {
  switch (op) {
    case EdgeOperator::kMean:
      for (int64_t i = 0; i < dim; ++i) out[i] = 0.5f * (ex[i] + ey[i]);
      return;
    case EdgeOperator::kHadamard:
      for (int64_t i = 0; i < dim; ++i) out[i] = ex[i] * ey[i];
      return;
    case EdgeOperator::kWeightedL1:
      for (int64_t i = 0; i < dim; ++i) out[i] = std::abs(ex[i] - ey[i]);
      return;
    case EdgeOperator::kWeightedL2:
      for (int64_t i = 0; i < dim; ++i) {
        const float d = ex[i] - ey[i];
        out[i] = d * d;
      }
      return;
  }
}

}  // namespace ehna
