#include "eval/link_prediction.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/rng.h"

namespace ehna {

namespace {

/// Repeated 50/50 classify-and-score over prebuilt features: shuffle,
/// split, standardize with train statistics, fit logistic regression,
/// average the metrics. Shared by the single-operator and combined-
/// operator entry points.
Result<BinaryMetrics> RunClassificationProtocol(
    const Tensor& features, const std::vector<int>& labels,
    const LinkPredictionOptions& options) {
  const size_t n = static_cast<size_t>(features.rows());
  const int64_t d = features.cols();

  Rng rng(options.seed);
  BinaryMetrics total;
  for (int rep = 0; rep < options.repeats; ++rep) {
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    rng.Shuffle(&order);
    const size_t train_n =
        static_cast<size_t>(static_cast<double>(n) * options.train_fraction);
    if (train_n == 0 || train_n >= n) {
      return Status::FailedPrecondition("degenerate train/test split");
    }

    Tensor train_x(static_cast<int64_t>(train_n), d);
    std::vector<int> train_y(train_n);
    Tensor test_x(static_cast<int64_t>(n - train_n), d);
    std::vector<int> test_y(n - train_n);
    for (size_t i = 0; i < n; ++i) {
      const float* src = features.Row(static_cast<int64_t>(order[i]));
      float* dst = i < train_n
                       ? train_x.Row(static_cast<int64_t>(i))
                       : test_x.Row(static_cast<int64_t>(i - train_n));
      std::copy(src, src + d, dst);
      (i < train_n ? train_y[i] : test_y[i - train_n]) = labels[order[i]];
    }

    // Standardize features with train-split statistics (unit-norm
    // embeddings produce tiny raw feature magnitudes that starve the
    // classifier; LIBLINEAR practice is to scale inputs).
    std::vector<float> mean(d, 0.0f), inv_std(d, 0.0f);
    for (size_t i = 0; i < train_n; ++i) {
      const float* row = train_x.Row(static_cast<int64_t>(i));
      for (int64_t j = 0; j < d; ++j) mean[j] += row[j];
    }
    for (int64_t j = 0; j < d; ++j) mean[j] /= static_cast<float>(train_n);
    for (size_t i = 0; i < train_n; ++i) {
      const float* row = train_x.Row(static_cast<int64_t>(i));
      for (int64_t j = 0; j < d; ++j) {
        const float diff = row[j] - mean[j];
        inv_std[j] += diff * diff;
      }
    }
    for (int64_t j = 0; j < d; ++j) {
      inv_std[j] =
          1.0f / std::max(1e-6f, std::sqrt(inv_std[j] /
                                           static_cast<float>(train_n)));
    }
    auto standardize = [&](Tensor* x) {
      for (int64_t i = 0; i < x->rows(); ++i) {
        float* row = x->Row(i);
        for (int64_t j = 0; j < d; ++j) {
          row[j] = (row[j] - mean[j]) * inv_std[j];
        }
      }
    };
    standardize(&train_x);
    standardize(&test_x);

    LogisticRegressionConfig cfg = options.classifier;
    cfg.seed = options.classifier.seed + static_cast<uint64_t>(rep);
    LogisticRegression clf(cfg);
    EHNA_RETURN_NOT_OK(clf.Fit(train_x, train_y));
    const std::vector<double> probs = clf.PredictProba(test_x);
    EHNA_ASSIGN_OR_RETURN(const BinaryMetrics m,
                          ComputeBinaryMetrics(probs, test_y));
    total.auc += m.auc;
    total.f1 += m.f1;
    total.precision += m.precision;
    total.recall += m.recall;
    total.accuracy += m.accuracy;
  }
  const double inv = 1.0 / options.repeats;
  total.auc *= inv;
  total.f1 *= inv;
  total.precision *= inv;
  total.recall *= inv;
  total.accuracy *= inv;
  return total;
}

/// Builds the feature matrix for the split's positive + negative pairs,
/// one block of `dim` columns per operator in `ops`.
Result<Tensor> BuildEdgeFeatures(const TemporalSplit& split,
                                 const Tensor& embeddings,
                                 const std::vector<EdgeOperator>& ops,
                                 std::vector<int>* labels) {
  const int64_t d = embeddings.cols();
  const int64_t nodes = embeddings.rows();
  const size_t n = split.test_positive.size() + split.test_negative.size();
  const int64_t blocks = static_cast<int64_t>(ops.size());

  Tensor features(static_cast<int64_t>(n), d * blocks);
  labels->assign(n, 0);
  int64_t row = 0;
  auto emit = [&](NodeId u, NodeId v, int label) -> Status {
    if (u >= nodes || v >= nodes) {
      return Status::OutOfRange("pair endpoint outside embedding matrix");
    }
    for (int64_t b = 0; b < blocks; ++b) {
      ApplyEdgeOperator(ops[static_cast<size_t>(b)], embeddings.Row(u),
                        embeddings.Row(v), d, features.Row(row) + b * d);
    }
    (*labels)[row] = label;
    ++row;
    return Status::OK();
  };
  for (const auto& e : split.test_positive) {
    EHNA_RETURN_NOT_OK(emit(e.src, e.dst, 1));
  }
  for (const auto& [u, v] : split.test_negative) {
    EHNA_RETURN_NOT_OK(emit(u, v, 0));
  }
  return features;
}

Status ValidateInputs(const TemporalSplit& split, const Tensor& embeddings,
                      const LinkPredictionOptions& options) {
  if (embeddings.rank() != 2) {
    return Status::InvalidArgument("embeddings must be a matrix");
  }
  if (split.test_positive.empty() || split.test_negative.empty()) {
    return Status::InvalidArgument("split has no test examples");
  }
  if (options.train_fraction <= 0.0 || options.train_fraction >= 1.0) {
    return Status::InvalidArgument("train_fraction must be in (0,1)");
  }
  return Status::OK();
}

}  // namespace

Result<BinaryMetrics> EvaluateLinkPrediction(
    const TemporalSplit& split, const Tensor& embeddings, EdgeOperator op,
    const LinkPredictionOptions& options) {
  EHNA_RETURN_NOT_OK(ValidateInputs(split, embeddings, options));
  std::vector<int> labels;
  EHNA_ASSIGN_OR_RETURN(const Tensor features,
                        BuildEdgeFeatures(split, embeddings, {op}, &labels));
  return RunClassificationProtocol(features, labels, options);
}

Result<std::vector<BinaryMetrics>> EvaluateLinkPredictionAllOperators(
    const TemporalSplit& split, const Tensor& embeddings,
    const LinkPredictionOptions& options) {
  std::vector<BinaryMetrics> out;
  out.reserve(kAllEdgeOperators.size());
  for (EdgeOperator op : kAllEdgeOperators) {
    EHNA_ASSIGN_OR_RETURN(
        BinaryMetrics m, EvaluateLinkPrediction(split, embeddings, op, options));
    out.push_back(m);
  }
  return out;
}

Result<BinaryMetrics> EvaluateLinkPredictionCombined(
    const TemporalSplit& split, const Tensor& embeddings,
    const std::vector<EdgeOperator>& ops,
    const LinkPredictionOptions& options) {
  EHNA_RETURN_NOT_OK(ValidateInputs(split, embeddings, options));
  if (ops.empty()) {
    return Status::InvalidArgument("need at least one operator");
  }
  std::set<EdgeOperator> distinct(ops.begin(), ops.end());
  if (distinct.size() != ops.size()) {
    return Status::InvalidArgument("duplicate operators in combination");
  }
  std::vector<int> labels;
  EHNA_ASSIGN_OR_RETURN(const Tensor features,
                        BuildEdgeFeatures(split, embeddings, ops, &labels));
  return RunClassificationProtocol(features, labels, options);
}

}  // namespace ehna
