#include "eval/ann.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <string>

#include "nn/kernels.h"
#include "util/metrics.h"

namespace ehna {

namespace {

constexpr size_t kAssignBlockRows = 4096;

// Assignment score of a (row, centroid) pair given the raw dot product:
// for the negative-Euclidean metric, argmax_c -||a-c||^2 ==
// argmax_c (2 a.c - ||c||^2) exactly (the ||a||^2 term is constant per
// row), so cell assignment can ride on one GemmNT over the dot products.
// For dot/cosine the dot itself ranks cells (centroids are unit-normalized
// in that mode).
float AdjustedAssignScore(float dot, float centroid_sqnorm,
                          Similarity similarity) {
  if (similarity == Similarity::kNegativeEuclidean) {
    return 2.0f * dot - centroid_sqnorm;
  }
  return dot;
}

std::vector<float> CentroidSquaredNorms(const Tensor& centroids) {
  std::vector<float> out(centroids.rows());
  for (int64_t c = 0; c < centroids.rows(); ++c) {
    const float* row = centroids.Row(c);
    double s = 0.0;
    for (int64_t j = 0; j < centroids.cols(); ++j) {
      s += static_cast<double>(row[j]) * row[j];
    }
    out[c] = static_cast<float>(s);
  }
  return out;
}

struct WorseNeighbor {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    return a.score > b.score;
  }
};

}  // namespace

Result<IvfFlatIndex> IvfFlatIndex::Build(const Tensor& embeddings,
                                         IvfFlatOptions options) {
  if (embeddings.rank() != 2) {
    return Status::InvalidArgument("embeddings must be a matrix");
  }
  const int64_t n = embeddings.rows();
  const int64_t d = embeddings.cols();
  if (n < 1 || d < 1) {
    return Status::InvalidArgument("embeddings must be non-empty");
  }
  EHNA_TRACE_PHASE("eval.phase.ann_build");

  IvfFlatIndex index;
  index.options_ = options;
  index.dim_ = d;

  size_t num_lists =
      options.num_lists > 0
          ? options.num_lists
          : static_cast<size_t>(std::lround(std::sqrt(static_cast<double>(n))));
  num_lists = std::clamp<size_t>(num_lists, 1, static_cast<size_t>(n));
  index.nprobe_ = options.nprobe > 0 ? std::min(options.nprobe, num_lists)
                                     : std::max<size_t>(1, num_lists / 4);

  Rng rng(options.seed);

  // Centroid init: `num_lists` distinct data rows.
  index.centroids_ = Tensor(static_cast<int64_t>(num_lists), d);
  {
    const std::vector<size_t> init =
        rng.SampleWithoutReplacement(static_cast<size_t>(n), num_lists);
    for (size_t c = 0; c < num_lists; ++c) {
      kernels::Copy(embeddings.Row(static_cast<int64_t>(init[c])),
                    index.centroids_.Row(static_cast<int64_t>(c)), d);
    }
  }

  // Spherical k-means over a bounded training sample: Lloyd sweeps with the
  // assignment ridden on one GemmNT per sweep (scores[s, c] = sample . c^T).
  const size_t sample_size =
      std::min<size_t>(static_cast<size_t>(n),
                       std::max<size_t>(num_lists, options.train_sample));
  std::vector<size_t> sample_rows =
      rng.SampleWithoutReplacement(static_cast<size_t>(n), sample_size);
  Tensor sample(static_cast<int64_t>(sample_size), d);
  for (size_t i = 0; i < sample_size; ++i) {
    kernels::Copy(embeddings.Row(static_cast<int64_t>(sample_rows[i])),
                  sample.Row(static_cast<int64_t>(i)), d);
  }

  Tensor scores(static_cast<int64_t>(sample_size),
                static_cast<int64_t>(num_lists));
  Tensor sums(static_cast<int64_t>(num_lists), d);
  std::vector<int64_t> counts(num_lists);
  for (int iter = 0; iter < options.kmeans_iterations; ++iter) {
    kernels::GemmNT(static_cast<int64_t>(sample_size),
                    static_cast<int64_t>(num_lists), d, sample.data(),
                    index.centroids_.data(), scores.data(),
                    /*accumulate=*/false);
    const std::vector<float> sqnorms = CentroidSquaredNorms(index.centroids_);
    std::fill(sums.data(), sums.data() + sums.numel(), 0.0f);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < sample_size; ++i) {
      const float* row_scores = scores.Row(static_cast<int64_t>(i));
      size_t best = 0;
      float best_score = AdjustedAssignScore(row_scores[0], sqnorms[0],
                                             options.similarity);
      for (size_t c = 1; c < num_lists; ++c) {
        const float s =
            AdjustedAssignScore(row_scores[c], sqnorms[c], options.similarity);
        if (s > best_score) {
          best_score = s;
          best = c;
        }
      }
      kernels::Axpy(d, 1.0f, sample.Row(static_cast<int64_t>(i)),
                    sums.Row(static_cast<int64_t>(best)));
      ++counts[best];
    }
    for (size_t c = 0; c < num_lists; ++c) {
      if (counts[c] == 0) continue;  // empty cell keeps its old centroid.
      float* centroid = index.centroids_.Row(static_cast<int64_t>(c));
      const float inv = 1.0f / static_cast<float>(counts[c]);
      const float* sum = sums.Row(static_cast<int64_t>(c));
      for (int64_t j = 0; j < d; ++j) centroid[j] = sum[j] * inv;
      if (options.similarity != Similarity::kNegativeEuclidean) {
        // Spherical mode: cells rank by dot, so keep centroids unit-norm.
        double norm = 0.0;
        for (int64_t j = 0; j < d; ++j) {
          norm += static_cast<double>(centroid[j]) * centroid[j];
        }
        if (norm > 1e-24) {
          const float s = 1.0f / static_cast<float>(std::sqrt(norm));
          for (int64_t j = 0; j < d; ++j) centroid[j] *= s;
        }
      }
    }
  }

  // Final assignment pass over every row, blocked so the score scratch
  // stays at kAssignBlockRows x num_lists.
  index.list_ids_.resize(num_lists);
  index.list_data_.resize(num_lists);
  index.loc_.assign(static_cast<size_t>(n), {kInvalidList, 0});
  const std::vector<float> sqnorms = CentroidSquaredNorms(index.centroids_);
  Tensor block_scores(static_cast<int64_t>(kAssignBlockRows),
                      static_cast<int64_t>(num_lists));
  for (int64_t base = 0; base < n; base += kAssignBlockRows) {
    const int64_t rows = std::min<int64_t>(kAssignBlockRows, n - base);
    kernels::GemmNT(rows, static_cast<int64_t>(num_lists), d,
                    embeddings.Row(base), index.centroids_.data(),
                    block_scores.data(), /*accumulate=*/false);
    for (int64_t i = 0; i < rows; ++i) {
      const float* row_scores = block_scores.Row(i);
      size_t best = 0;
      float best_score = AdjustedAssignScore(row_scores[0], sqnorms[0],
                                             options.similarity);
      for (size_t c = 1; c < num_lists; ++c) {
        const float s =
            AdjustedAssignScore(row_scores[c], sqnorms[c], options.similarity);
        if (s > best_score) {
          best_score = s;
          best = c;
        }
      }
      const NodeId id = static_cast<NodeId>(base + i);
      index.loc_[id] = {static_cast<uint32_t>(best),
                        static_cast<uint32_t>(index.list_ids_[best].size())};
      index.list_ids_[best].push_back(id);
      const float* row = embeddings.Row(base + i);
      index.list_data_[best].insert(index.list_data_[best].end(), row,
                                    row + d);
    }
  }
  index.size_ = static_cast<size_t>(n);
  return index;
}

size_t IvfFlatIndex::NearestCentroid(const float* v) const {
  size_t best = 0;
  double best_score = SimilarityScore(v, centroids_.Row(0), dim_,
                                      options_.similarity);
  for (int64_t c = 1; c < centroids_.rows(); ++c) {
    const double s =
        SimilarityScore(v, centroids_.Row(c), dim_, options_.similarity);
    if (s > best_score) {
      best_score = s;
      best = static_cast<size_t>(c);
    }
  }
  return best;
}

std::vector<Neighbor> IvfFlatIndex::Query(const float* query, size_t k,
                                          int64_t exclude,
                                          size_t nprobe) const {
  if (k == 0) return {};
  EHNA_TRACE_PHASE("eval.phase.ann_query");
  const size_t lists = num_lists();
  const size_t probes = std::min(nprobe > 0 ? nprobe : nprobe_, lists);

  // Rank cells by centroid score and take the best `probes`.
  std::vector<std::pair<double, size_t>> cell_scores;
  cell_scores.reserve(lists);
  for (size_t c = 0; c < lists; ++c) {
    cell_scores.emplace_back(
        SimilarityScore(query, centroids_.Row(static_cast<int64_t>(c)), dim_,
                        options_.similarity),
        c);
  }
  std::partial_sort(cell_scores.begin(), cell_scores.begin() + probes,
                    cell_scores.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });

  // Exact-scan semantics within the probed cells: same score function, same
  // min-heap replacement rule as TopKNeighbors.
  std::priority_queue<Neighbor, std::vector<Neighbor>, WorseNeighbor> heap;
  for (size_t p = 0; p < probes; ++p) {
    const size_t c = cell_scores[p].second;
    const std::vector<NodeId>& ids = list_ids_[c];
    const float* data = list_data_[c].data();
    for (size_t i = 0; i < ids.size(); ++i) {
      if (static_cast<int64_t>(ids[i]) == exclude) continue;
      const double s = SimilarityScore(query, data + i * dim_, dim_,
                                       options_.similarity);
      if (heap.size() < k) {
        heap.push(Neighbor{ids[i], s});
      } else if (s > heap.top().score) {
        heap.pop();
        heap.push(Neighbor{ids[i], s});
      }
    }
  }
  std::vector<Neighbor> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<Neighbor> IvfFlatIndex::QueryQuantized(const QuantizedMatrix& quant,
                                                   const float* query, size_t k,
                                                   int64_t exclude,
                                                   size_t nprobe,
                                                   size_t rerank_factor) const {
  if (k == 0) return {};
  EHNA_TRACE_PHASE("eval.phase.ann_query_quantized");
  const size_t lists = num_lists();
  const size_t probes = std::min(nprobe > 0 ? nprobe : nprobe_, lists);

  // Probe selection is unchanged from Query: fp32 centroid scores.
  std::vector<std::pair<double, size_t>> cell_scores;
  cell_scores.reserve(lists);
  for (size_t c = 0; c < lists; ++c) {
    cell_scores.emplace_back(
        SimilarityScore(query, centroids_.Row(static_cast<int64_t>(c)), dim_,
                        options_.similarity),
        c);
  }
  std::partial_sort(cell_scores.begin(), cell_scores.begin() + probes,
                    cell_scores.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });

  // Quantized candidate pass: keep the best rerank_factor*k survivors under
  // the cheap score, same heap-replacement rule as the fp32 scan.
  const size_t survivors = std::max<size_t>(rerank_factor, 1) * k;
  QuantizedScorer scorer(&quant, query, options_.similarity);
  const int64_t quant_rows = quant.rows();
  std::priority_queue<Neighbor, std::vector<Neighbor>, WorseNeighbor> heap;
  for (size_t p = 0; p < probes; ++p) {
    const size_t c = cell_scores[p].second;
    const std::vector<NodeId>& ids = list_ids_[c];
    const float* data = list_data_[c].data();
    for (size_t i = 0; i < ids.size(); ++i) {
      if (static_cast<int64_t>(ids[i]) == exclude) continue;
      const double s =
          static_cast<int64_t>(ids[i]) < quant_rows
              ? scorer.Score(static_cast<int64_t>(ids[i]))
              : SimilarityScore(query, data + i * dim_, dim_,
                                options_.similarity);
      if (heap.size() < survivors) {
        heap.push(Neighbor{ids[i], s});
      } else if (s > heap.top().score) {
        heap.pop();
        heap.push(Neighbor{ids[i], s});
      }
    }
  }

  // fp32 re-rank over the indexed vectors (same bytes as the serving rows),
  // ties toward the lower id for determinism.
  std::vector<Neighbor> cand;
  cand.reserve(heap.size());
  while (!heap.empty()) {
    cand.push_back(heap.top());
    heap.pop();
  }
  for (Neighbor& nb : cand) {
    nb.score =
        SimilarityScore(query, VectorOf(nb.node), dim_, options_.similarity);
  }
  std::sort(cand.begin(), cand.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  });
  if (cand.size() > k) cand.resize(k);
  return cand;
}

Result<std::vector<Neighbor>> IvfFlatIndex::QueryNodeQuantized(
    const QuantizedMatrix& quant, NodeId node, size_t k, size_t nprobe,
    size_t rerank_factor) const {
  const float* vec = VectorOf(node);
  if (vec == nullptr) {
    return Status::OutOfRange("node " + std::to_string(node) +
                              " not in ANN index");
  }
  return QueryQuantized(quant, vec, k, static_cast<int64_t>(node), nprobe,
                        rerank_factor);
}

Result<std::vector<Neighbor>> IvfFlatIndex::QueryNode(NodeId node, size_t k,
                                                      size_t nprobe) const {
  const float* vec = VectorOf(node);
  if (vec == nullptr) {
    return Status::OutOfRange("node " + std::to_string(node) +
                              " not in ANN index");
  }
  return Query(vec, k, static_cast<int64_t>(node), nprobe);
}

const float* IvfFlatIndex::VectorOf(NodeId id) const {
  if (id >= loc_.size()) return nullptr;
  const auto [list, pos] = loc_[id];
  if (list == kInvalidList) return nullptr;
  return list_data_[list].data() + static_cast<size_t>(pos) * dim_;
}

void IvfFlatIndex::Update(NodeId id, const float* vec) {
  if (id >= loc_.size()) loc_.resize(id + 1, {kInvalidList, 0});
  const size_t target = NearestCentroid(vec);
  const auto [old_list, old_pos] = loc_[id];

  if (old_list != kInvalidList) {
    if (old_list == target) {
      kernels::Copy(vec, list_data_[old_list].data() +
                             static_cast<size_t>(old_pos) * dim_,
                    dim_);
      return;
    }
    // Swap-remove from the old cell, keeping its storage contiguous.
    std::vector<NodeId>& ids = list_ids_[old_list];
    std::vector<float>& data = list_data_[old_list];
    const size_t last = ids.size() - 1;
    if (old_pos != last) {
      ids[old_pos] = ids[last];
      kernels::Copy(data.data() + last * dim_,
                    data.data() + static_cast<size_t>(old_pos) * dim_, dim_);
      loc_[ids[old_pos]].second = old_pos;
    }
    ids.pop_back();
    data.resize(data.size() - dim_);
  } else {
    ++size_;
  }

  loc_[id] = {static_cast<uint32_t>(target),
              static_cast<uint32_t>(list_ids_[target].size())};
  list_ids_[target].push_back(id);
  list_data_[target].insert(list_data_[target].end(), vec, vec + dim_);
}

}  // namespace ehna
