#ifndef EHNA_EVAL_RECONSTRUCTION_H_
#define EHNA_EVAL_RECONSTRUCTION_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "nn/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace ehna {

/// Parameters of the network-reconstruction protocol (§V.D): sample
/// `sample_nodes` nodes, rank all pairs among them by dot-product
/// similarity (descending), and report Precision@P — the fraction of the
/// top-P ranked pairs that are true edges of the original network — for
/// each requested P. Repeated `repeats` times and averaged.
struct ReconstructionOptions {
  size_t sample_nodes = 500;  // paper: 10'000 (scaled; see DESIGN.md §4).
  int repeats = 3;            // paper: 10.
  std::vector<size_t> precision_at;  // the P values (paper: 1e2 .. 1e6).
  uint64_t seed = 11;
};

/// Precision@P for every requested P, aligned with
/// `ReconstructionOptions::precision_at`.
Result<std::vector<double>> EvaluateReconstruction(
    const TemporalGraph& graph, const Tensor& embeddings,
    const ReconstructionOptions& options);

}  // namespace ehna

#endif  // EHNA_EVAL_RECONSTRUCTION_H_
