#ifndef EHNA_EVAL_LINK_PREDICTION_H_
#define EHNA_EVAL_LINK_PREDICTION_H_

#include <vector>

#include "eval/edge_ops.h"
#include "eval/logistic_regression.h"
#include "eval/metrics.h"
#include "graph/split.h"
#include "nn/tensor.h"
#include "util/status.h"

namespace ehna {

/// Parameters of the link-prediction evaluation (§V.E): edge
/// representations from a binary operator, a 50/50 train/test split of the
/// positive+negative examples, a logistic-regression classifier, repeated
/// `repeats` times with different splits and averaged.
struct LinkPredictionOptions {
  double train_fraction = 0.5;
  int repeats = 3;  // paper: 10.
  LogisticRegressionConfig classifier;
  uint64_t seed = 13;
};

/// Evaluates one operator: builds edge features from `embeddings` for the
/// split's positive and negative pairs, then runs the classify-and-score
/// protocol. Returns averaged metrics.
Result<BinaryMetrics> EvaluateLinkPrediction(
    const TemporalSplit& split, const Tensor& embeddings, EdgeOperator op,
    const LinkPredictionOptions& options);

/// Convenience: all four operators of Table II, in kAllEdgeOperators order.
Result<std::vector<BinaryMetrics>> EvaluateLinkPredictionAllOperators(
    const TemporalSplit& split, const Tensor& embeddings,
    const LinkPredictionOptions& options);

/// The paper's stated future work (§V.E: "we are unaware of any systematic
/// and sensible evaluation of combining operators ... we leave this
/// exploration to further work"): concatenates the edge representations of
/// several operators into one feature vector per pair and runs the same
/// classify-and-score protocol. `ops` must be non-empty and
/// duplicate-free.
Result<BinaryMetrics> EvaluateLinkPredictionCombined(
    const TemporalSplit& split, const Tensor& embeddings,
    const std::vector<EdgeOperator>& ops,
    const LinkPredictionOptions& options);

}  // namespace ehna

#endif  // EHNA_EVAL_LINK_PREDICTION_H_
