#ifndef EHNA_EVAL_EDGE_OPS_H_
#define EHNA_EVAL_EDGE_OPS_H_

#include <array>
#include <cstdint>

namespace ehna {

/// The four binary operators of Table II that turn two node embeddings
/// into one edge representation for the link-prediction classifier.
enum class EdgeOperator {
  kMean,        // (e_x[i] + e_y[i]) / 2
  kHadamard,    // e_x[i] * e_y[i]
  kWeightedL1,  // |e_x[i] - e_y[i]|
  kWeightedL2,  // (e_x[i] - e_y[i])^2
};

constexpr std::array<EdgeOperator, 4> kAllEdgeOperators = {
    EdgeOperator::kMean, EdgeOperator::kHadamard, EdgeOperator::kWeightedL1,
    EdgeOperator::kWeightedL2};

const char* EdgeOperatorName(EdgeOperator op);

/// Writes the d-dimensional edge representation of (ex, ey) into `out`.
void ApplyEdgeOperator(EdgeOperator op, const float* ex, const float* ey,
                       int64_t dim, float* out);

}  // namespace ehna

#endif  // EHNA_EVAL_EDGE_OPS_H_
