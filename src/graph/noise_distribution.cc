#include "graph/noise_distribution.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ehna {

namespace {
std::vector<double> PoweredWeights(const std::vector<size_t>& degrees,
                                   double power) {
  std::vector<double> w(degrees.size());
  for (size_t i = 0; i < degrees.size(); ++i) {
    w[i] = degrees[i] == 0 ? 0.0
                           : std::pow(static_cast<double>(degrees[i]), power);
  }
  return w;
}
}  // namespace

NoiseDistribution::NoiseDistribution(const TemporalGraph& g, double power)
    : NoiseDistribution(g.Degrees(), power) {}

NoiseDistribution::NoiseDistribution(const std::vector<size_t>& degrees,
                                     double power)
    : sampler_(PoweredWeights(degrees, power)), power_(power) {}

NodeId NoiseDistribution::Sample(Rng* rng) const {
  EHNA_CHECK(!sampler_.empty());
  return static_cast<NodeId>(sampler_.Sample(rng));
}

NodeId NoiseDistribution::SampleExcluding(std::span<const NodeId> exclude,
                                          Rng* rng) const {
  NodeId v = Sample(rng);
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (std::find(exclude.begin(), exclude.end(), v) == exclude.end()) break;
    v = Sample(rng);
  }
  return v;
}

}  // namespace ehna
