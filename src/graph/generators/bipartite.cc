#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "graph/generators/generators.h"
#include "util/alias_sampler.h"

namespace ehna {

namespace {

uint64_t PackPair(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

/// Time-varying item attractiveness: zero before the item emerges, a sharp
/// onset at emergence, then exponential decay with the mode's trend
/// duration. Established items (early emergence) keep a baseline floor so
/// the catalogue never empties.
double ItemWeight(double base_popularity, double emergence, double now,
                  double trend_duration) {
  if (now < emergence) return 0.0;
  const double age = now - emergence;
  const double trending = std::exp(-age / trend_duration);
  return base_popularity * (0.15 + trending);
}

}  // namespace

Result<TemporalGraph> MakeBipartiteGraph(const BipartiteGraphOptions& options) {
  if (options.num_users < 2 || options.num_items < 2) {
    return Status::InvalidArgument("need at least 2 users and 2 items");
  }
  if (options.num_edges < 10) {
    return Status::InvalidArgument("num_edges must be >= 10");
  }
  Rng rng(options.seed);

  const double horizon = static_cast<double>(options.num_edges);
  const bool purchase = options.mode == BipartiteMode::kPurchase;
  const double trend_duration = (purchase ? 0.06 : 0.30) * horizon;
  const double alpha =
      purchase ? options.popularity_alpha + 0.4 : options.popularity_alpha;

  // Item base popularity (power law) and emergence times. A third of the
  // catalogue is "established" (emerges at t=0); the rest trickles in over
  // the first 80% of the horizon so late test edges hit recently trending
  // items.
  std::vector<double> base_pop(options.num_items);
  std::vector<double> emergence(options.num_items);
  for (NodeId i = 0; i < options.num_items; ++i) {
    base_pop[i] = static_cast<double>(rng.PowerLaw(alpha, 1000));
    emergence[i] = rng.Bernoulli(0.33) ? 0.0 : rng.Uniform(0.0, 0.8 * horizon);
  }

  // User activity propensity (power law) — heavy users dominate, as in both
  // datasets.
  std::vector<double> user_propensity(options.num_users);
  for (NodeId u = 0; u < options.num_users; ++u) {
    user_propensity[u] = static_cast<double>(rng.PowerLaw(1.6, 200));
  }
  AliasSampler user_sampler(user_propensity);

  // The item distribution drifts over time; rebuild its alias table on a
  // fixed schedule instead of per event.
  const size_t num_epochs = 50;
  const size_t epoch_len = std::max<size_t>(1, options.num_edges / num_epochs);
  AliasSampler item_sampler;
  auto rebuild_items = [&](double now) {
    std::vector<double> w(options.num_items);
    for (NodeId i = 0; i < options.num_items; ++i) {
      w[i] = ItemWeight(base_pop[i], emergence[i], now, trend_duration);
    }
    item_sampler.Build(w);
  };

  std::unordered_set<uint64_t> seen;  // dedup for review mode.
  std::vector<TemporalEdge> edges;
  edges.reserve(options.num_edges);

  size_t event = 0;
  NodeId session_user = kInvalidNode;
  size_t session_left = 0;
  size_t attempts = 0;
  const size_t max_attempts = options.num_edges * 60 + 1000;
  while (edges.size() < options.num_edges && attempts < max_attempts) {
    ++attempts;
    if (event % epoch_len == 0 || item_sampler.empty()) {
      rebuild_items(static_cast<double>(event));
    }
    if (session_left == 0 || session_user == kInvalidNode) {
      session_user = static_cast<NodeId>(user_sampler.Sample(&rng));
      session_left = 1 + static_cast<size_t>(rng.Exponential(
                             1.0 / std::max(0.5, options.session_burst_mean)));
    }
    if (item_sampler.empty()) {
      return Status::Internal("no item has positive weight");
    }
    const NodeId item_local = static_cast<NodeId>(item_sampler.Sample(&rng));
    const NodeId item = options.num_users + item_local;

    if (!purchase) {
      // A user reviews a business at most once. On a collision, end the
      // session so a fresh user is drawn — otherwise a heavy user stuck on
      // the trending catalogue head can stall the generator.
      if (!seen.insert(PackPair(session_user, item)).second) {
        session_left = 0;
        continue;
      }
    }
    const Timestamp t = static_cast<Timestamp>(event);
    edges.push_back(TemporalEdge{session_user, item, t, 1.0f});
    ++event;
    --session_left;
  }
  if (edges.size() < options.num_edges) {
    return Status::Internal("bipartite generator stalled (catalogue too "
                            "small for deduplicated reviews?)");
  }
  return TemporalGraph::FromEdges(std::move(edges),
                                  options.num_users + options.num_items,
                                  /*directed=*/false);
}

Result<TemporalGraph> MakeRandomGraph(const RandomGraphOptions& options) {
  if (options.num_nodes < 2) {
    return Status::InvalidArgument("num_nodes must be >= 2");
  }
  Rng rng(options.seed);
  std::unordered_set<uint64_t> seen;
  std::vector<TemporalEdge> edges;
  edges.reserve(options.num_edges);
  size_t attempts = 0;
  while (edges.size() < options.num_edges &&
         attempts < options.num_edges * 100 + 1000) {
    ++attempts;
    const NodeId u = static_cast<NodeId>(rng.UniformInt(options.num_nodes));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(options.num_nodes));
    if (u == v) continue;
    const uint64_t key = u < v ? PackPair(u, v) : PackPair(v, u);
    if (!seen.insert(key).second) continue;
    edges.push_back(TemporalEdge{u, v,
                                 static_cast<Timestamp>(edges.size()), 1.0f});
  }
  if (edges.size() < options.num_edges) {
    return Status::InvalidArgument("num_edges too large for simple graph");
  }
  return TemporalGraph::FromEdges(std::move(edges), options.num_nodes,
                                  /*directed=*/false);
}

const char* PaperDatasetName(PaperDataset d) {
  switch (d) {
    case PaperDataset::kDigg:
      return "Digg";
    case PaperDataset::kYelp:
      return "Yelp";
    case PaperDataset::kTmall:
      return "Tmall";
    case PaperDataset::kDblp:
      return "DBLP";
  }
  return "?";
}

Result<TemporalGraph> MakePaperDataset(PaperDataset dataset, double scale,
                                       uint64_t seed) {
  if (scale <= 0) return Status::InvalidArgument("scale must be > 0");
  switch (dataset) {
    case PaperDataset::kDigg: {
      SocialGraphOptions o;
      o.num_nodes = static_cast<NodeId>(2000 * scale);
      o.num_edges = static_cast<size_t>(12000 * scale);
      // Keep the community *size* (~15 nodes) scale-invariant so the
      // planted structure stays equally learnable at every benchmark scale.
      o.num_communities = std::max(4, static_cast<int>(o.num_nodes / 15));
      o.intra_community_prob = 0.9;
      o.seed = seed;
      return MakeSocialGraph(o);
    }
    case PaperDataset::kYelp: {
      BipartiteGraphOptions o;
      o.num_users = static_cast<NodeId>(1200 * scale);
      o.num_items = static_cast<NodeId>(800 * scale);
      o.num_edges = static_cast<size_t>(15000 * scale);
      o.mode = BipartiteMode::kReview;
      o.seed = seed;
      return MakeBipartiteGraph(o);
    }
    case PaperDataset::kTmall: {
      BipartiteGraphOptions o;
      o.num_users = static_cast<NodeId>(1400 * scale);
      o.num_items = static_cast<NodeId>(900 * scale);
      o.num_edges = static_cast<size_t>(18000 * scale);
      o.mode = BipartiteMode::kPurchase;
      o.seed = seed;
      return MakeBipartiteGraph(o);
    }
    case PaperDataset::kDblp: {
      CoauthorGraphOptions o;
      o.num_papers = static_cast<size_t>(3500 * scale);
      o.seed = seed;
      return MakeCoauthorGraph(o);
    }
  }
  return Status::InvalidArgument("unknown dataset");
}

}  // namespace ehna
