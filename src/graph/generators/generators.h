#ifndef EHNA_GRAPH_GENERATORS_GENERATORS_H_
#define EHNA_GRAPH_GENERATORS_GENERATORS_H_

#include <cstddef>
#include <functional>

#include "graph/temporal_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace ehna {

// ---------------------------------------------------------------------------
// Synthetic temporal-network generators.
//
// The paper evaluates on four proprietary-scale public dumps (Digg, Yelp,
// Tmall, DBLP). This repository substitutes scale-parameterized generators
// that reproduce the *mechanisms* those datasets contribute to the
// evaluation: recency-driven edge formation (what temporal methods exploit),
// community / transitive structure (what proximity-preserving methods
// exploit), and — for Yelp/Tmall — bipartite interaction structure with
// popularity drift. See DESIGN.md §4 for the substitution rationale.
//
// All generators emit integer event indices as timestamps (0, 1, 2, ...);
// downstream code only ever uses timestamps relative to the graph's span.
// ---------------------------------------------------------------------------

/// DBLP-like growing co-authorship network: "papers" arrive in chronological
/// order; each paper's author team mixes recently active authors, brand-new
/// authors, and recent co-authors of the chosen authors (triadic closure),
/// then forms a clique of co-authorship edges.
struct CoauthorGraphOptions {
  size_t num_papers = 3000;
  /// Expected team size is roughly 1 + mean_extra_authors.
  double mean_extra_authors = 1.6;
  /// Probability a slot introduces a previously unseen author.
  double new_author_prob = 0.15;
  /// Probability an additional author is drawn from a chosen author's recent
  /// collaborators rather than by global recent activity.
  double collaborator_prob = 0.55;
  /// Exponential decay rate (per event) of author activity, as a fraction of
  /// the total event horizon: activity halves every
  /// `recency_half_life_fraction * num_papers` events.
  double recency_half_life_fraction = 0.1;
  uint64_t seed = 1;
};
Result<TemporalGraph> MakeCoauthorGraph(const CoauthorGraphOptions& options);

/// Digg-like social friendship network: nodes belong to planted communities;
/// each new friendship is triadic (friend of a recent friend) with high
/// probability, otherwise intra-community biased, and initiators are chosen
/// by recency-weighted activity. Friendships are deduplicated (a friendship
/// forms once).
struct SocialGraphOptions {
  NodeId num_nodes = 2000;
  size_t num_edges = 12000;
  int num_communities = 20;
  /// Probability an edge closes a length-2 path over recent edges.
  double triadic_prob = 0.55;
  /// Probability a non-triadic edge stays inside the community.
  double intra_community_prob = 0.8;
  double recency_half_life_fraction = 0.1;
  uint64_t seed = 1;
};
Result<TemporalGraph> MakeSocialGraph(const SocialGraphOptions& options);

/// Behaviour profile for the bipartite generator.
enum class BipartiteMode {
  /// Yelp-like review network: broad popularity tail, slow popularity drift,
  /// repeat interactions uncommon.
  kReview,
  /// Tmall-like purchase network: sharper popularity concentration, strong
  /// trending dynamics (short event horizon), repeat purchases allowed.
  kPurchase,
};

/// User-item bipartite interaction network. Users are ids
/// [0, num_users); items are [num_users, num_users + num_items). Items have
/// an "emergence" time and a popularity that rises then decays, so which
/// items a user interacts with depends strongly on *when* — the signal that
/// separates temporal embeddings from static ones on Yelp/Tmall.
struct BipartiteGraphOptions {
  NodeId num_users = 1200;
  NodeId num_items = 800;
  size_t num_edges = 15000;
  BipartiteMode mode = BipartiteMode::kReview;
  /// Power-law exponent of base item popularity.
  double popularity_alpha = 1.3;
  /// Mean number of interactions in one user session burst.
  double session_burst_mean = 3.0;
  uint64_t seed = 1;
};
Result<TemporalGraph> MakeBipartiteGraph(const BipartiteGraphOptions& options);

/// Uniform temporal Erdos-Renyi-style graph (no temporal signal). Used by
/// tests and as a null model: temporal methods should NOT beat static ones
/// here.
struct RandomGraphOptions {
  NodeId num_nodes = 500;
  size_t num_edges = 2000;
  uint64_t seed = 1;
};
Result<TemporalGraph> MakeRandomGraph(const RandomGraphOptions& options);

/// Receives generated edges one at a time, in non-decreasing time order.
/// Returning an error aborts generation and propagates the status.
using EdgeSink = std::function<Status(const TemporalEdge&)>;

/// Production-scale synthetic network for the out-of-core path (DESIGN.md
/// §12): recency-driven initiators (a bounded ring of recent participants)
/// and power-law-popular targets, emitted straight into `sink` in
/// chronological order with O(recency_window) working memory — no edge
/// vector is ever materialized, so 10⁷ edges stream into an EdgeLogWriter
/// at a flat memory footprint.
struct ScaleGraphOptions {
  NodeId num_nodes = 1'000'000;
  uint64_t num_edges = 10'000'000;
  /// Power-law exponent of target-node popularity (low ids are popular),
  /// giving the skewed degree distributions real interaction graphs have.
  double popularity_alpha = 1.1;
  /// Probability an edge's initiator is drawn (recency-weighted) from the
  /// ring of recent participants rather than uniformly.
  double recency_prob = 0.7;
  /// Probability the target is popularity-skewed rather than uniform.
  double popularity_prob = 0.5;
  /// Capacity of the recent-participant ring; also the horizon of the
  /// geometric recency weighting (half-life = window / 8).
  size_t recency_window = 1 << 20;
  uint64_t seed = 1;
};

/// Streams `options.num_edges` edges into `sink`. Timestamps are the event
/// indices 0, 1, 2, ...; weights are 1.
Status StreamScaleGraph(const ScaleGraphOptions& options,
                        const EdgeSink& sink);

/// Convenience for tests and in-RAM benchmarks: materializes the stream
/// into a TemporalGraph (undirected). Prefer StreamScaleGraph +
/// EdgeLogWriter + TemporalGraph::FromEdgeLog beyond ~10⁶ edges.
Result<TemporalGraph> MakeScaleGraph(const ScaleGraphOptions& options);

/// Identifier for the paper's four datasets; `MakePaperDataset` maps each to
/// its substitute generator with benchmark-default scales.
enum class PaperDataset { kDigg, kYelp, kTmall, kDblp };

const char* PaperDatasetName(PaperDataset d);

/// Scale multiplier `scale` >= 1 grows node and edge counts proportionally.
Result<TemporalGraph> MakePaperDataset(PaperDataset dataset, double scale = 1.0,
                                       uint64_t seed = 1);

}  // namespace ehna

#endif  // EHNA_GRAPH_GENERATORS_GENERATORS_H_
