#ifndef EHNA_GRAPH_GENERATORS_RECENCY_BUFFER_H_
#define EHNA_GRAPH_GENERATORS_RECENCY_BUFFER_H_

#include <cmath>
#include <vector>

#include "graph/temporal_graph.h"
#include "util/rng.h"

namespace ehna::gen_internal {

/// An append-only log of event participants supporting O(1) recency-weighted
/// sampling: the probability of drawing the entry `k` positions from the end
/// decays geometrically with `k` (half-life `half_life` entries). This is the
/// mechanism all generators use to make edge formation depend on *recent*
/// activity — the temporal signal EHNA is designed to exploit.
class RecencyBuffer {
 public:
  /// `half_life`: number of appended entries over which sampling weight
  /// halves. Values < 1 are clamped to 1.
  explicit RecencyBuffer(double half_life)
      : rate_(std::log(2.0) / std::max(1.0, half_life)) {}

  void Append(NodeId node) { entries_.push_back(node); }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  /// Draws an entry with geometric recency weighting; requires !empty().
  NodeId Sample(Rng* rng) const {
    const double back = rng->Exponential(rate_);
    const double pos = static_cast<double>(entries_.size()) - 1.0 - back;
    if (pos < 0.0) {
      // Older than the log: fall back to uniform over the whole history.
      return entries_[rng->UniformInt(entries_.size())];
    }
    return entries_[static_cast<size_t>(pos)];
  }

 private:
  double rate_;
  std::vector<NodeId> entries_;
};

/// Samples an index into a chronologically appended list (size `n`) with
/// geometric recency weighting; returns n-1-k for k ~ floor(Exp(ln2 /
/// half_life)), clamped to uniform fallback for over-draws.
inline size_t SampleRecentIndex(size_t n, double half_life, Rng* rng) {
  const double rate = std::log(2.0) / std::max(1.0, half_life);
  const double back = rng->Exponential(rate);
  const double pos = static_cast<double>(n) - 1.0 - back;
  if (pos < 0.0) return static_cast<size_t>(rng->UniformInt(n));
  return static_cast<size_t>(pos);
}

}  // namespace ehna::gen_internal

#endif  // EHNA_GRAPH_GENERATORS_RECENCY_BUFFER_H_
