#include <unordered_set>
#include <vector>

#include "graph/generators/generators.h"
#include "graph/generators/recency_buffer.h"

namespace ehna {

namespace {
using gen_internal::RecencyBuffer;
using gen_internal::SampleRecentIndex;

uint64_t PackPair(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}
}  // namespace

Result<TemporalGraph> MakeSocialGraph(const SocialGraphOptions& options) {
  if (options.num_nodes < 4) {
    return Status::InvalidArgument("num_nodes must be >= 4");
  }
  if (options.num_communities < 1) {
    return Status::InvalidArgument("num_communities must be >= 1");
  }
  const double max_edges = static_cast<double>(options.num_nodes) *
                           (options.num_nodes - 1) / 2.0;
  if (static_cast<double>(options.num_edges) > 0.5 * max_edges) {
    return Status::InvalidArgument(
        "num_edges too large for a deduplicated friendship graph");
  }
  Rng rng(options.seed);

  // Community assignment (round-robin shuffled for even sizes).
  std::vector<int> community(options.num_nodes);
  std::vector<std::vector<NodeId>> members(options.num_communities);
  {
    std::vector<NodeId> order(options.num_nodes);
    for (NodeId v = 0; v < options.num_nodes; ++v) order[v] = v;
    rng.Shuffle(&order);
    for (NodeId i = 0; i < options.num_nodes; ++i) {
      const int c = static_cast<int>(i) % options.num_communities;
      community[order[i]] = c;
      members[c].push_back(order[i]);
    }
  }

  const double half_life =
      options.recency_half_life_fraction * 2.0 *
      static_cast<double>(options.num_edges);
  RecencyBuffer participants(half_life);

  std::vector<std::vector<NodeId>> adj(options.num_nodes);
  std::unordered_set<uint64_t> seen;
  seen.reserve(options.num_edges * 2);

  auto recent_neighbor = [&](NodeId u) -> NodeId {
    if (adj[u].empty()) return kInvalidNode;
    const size_t idx =
        SampleRecentIndex(adj[u].size(), half_life / 8.0, &rng);
    return adj[u][idx];
  };

  std::vector<TemporalEdge> edges;
  edges.reserve(options.num_edges);

  size_t event = 0;
  size_t stagnation = 0;
  while (edges.size() < options.num_edges &&
         stagnation < options.num_edges * 50 + 1000) {
    ++stagnation;
    // Initiator: mostly recency-weighted (active users stay active), with a
    // uniform floor so every node can appear.
    NodeId u;
    if (participants.empty() || rng.Bernoulli(0.2)) {
      u = static_cast<NodeId>(rng.UniformInt(options.num_nodes));
    } else {
      u = participants.Sample(&rng);
    }

    NodeId w = kInvalidNode;
    if (rng.Bernoulli(options.triadic_prob)) {
      // Close a 2-path over *recent* edges: friend of a recent friend.
      const NodeId v = recent_neighbor(u);
      if (v != kInvalidNode) {
        const NodeId cand = recent_neighbor(v);
        if (cand != kInvalidNode && cand != u) w = cand;
      }
    }
    if (w == kInvalidNode) {
      if (rng.Bernoulli(options.intra_community_prob)) {
        const auto& pool = members[community[u]];
        if (pool.size() > 1) {
          w = pool[rng.UniformInt(pool.size())];
        }
      }
      if (w == kInvalidNode || w == u) {
        w = static_cast<NodeId>(rng.UniformInt(options.num_nodes));
      }
    }
    if (w == u) continue;
    if (!seen.insert(PackPair(u, w)).second) continue;  // friendship exists.

    const Timestamp t = static_cast<Timestamp>(event++);
    edges.push_back(TemporalEdge{u, w, t, 1.0f});
    adj[u].push_back(w);
    adj[w].push_back(u);
    participants.Append(u);
    participants.Append(w);
    stagnation = 0;
  }
  if (edges.size() < options.num_edges) {
    return Status::Internal("social generator stalled before reaching the "
                            "requested edge count");
  }
  return TemporalGraph::FromEdges(std::move(edges), options.num_nodes,
                                  /*directed=*/false);
}

}  // namespace ehna
