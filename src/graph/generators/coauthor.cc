#include <algorithm>
#include <unordered_set>
#include <vector>

#include "graph/generators/generators.h"
#include "graph/generators/recency_buffer.h"

namespace ehna {

namespace {
using gen_internal::RecencyBuffer;
using gen_internal::SampleRecentIndex;
}  // namespace

Result<TemporalGraph> MakeCoauthorGraph(const CoauthorGraphOptions& options) {
  if (options.num_papers < 2) {
    return Status::InvalidArgument("num_papers must be >= 2");
  }
  if (options.new_author_prob < 0 || options.new_author_prob > 1 ||
      options.collaborator_prob < 0 || options.collaborator_prob > 1) {
    return Status::InvalidArgument("probabilities must be in [0,1]");
  }
  Rng rng(options.seed);

  const double expected_entries =
      static_cast<double>(options.num_papers) *
      (1.0 + options.mean_extra_authors);
  const double half_life =
      options.recency_half_life_fraction * expected_entries;
  RecencyBuffer participants(half_life);

  NodeId next_author = 0;
  auto new_author = [&]() { return next_author++; };

  // Seed pool so the first papers have someone to collaborate with.
  for (int i = 0; i < 5; ++i) participants.Append(new_author());

  // Adjacency built incrementally (chronological) for "recent collaborator"
  // draws.
  std::vector<std::vector<NodeId>> collab;
  auto ensure_node = [&](NodeId a) {
    if (collab.size() <= a) collab.resize(a + 1);
  };

  std::vector<TemporalEdge> edges;
  edges.reserve(options.num_papers * 3);

  for (size_t paper = 0; paper < options.num_papers; ++paper) {
    const Timestamp t = static_cast<Timestamp>(paper);
    std::vector<NodeId> team;
    std::unordered_set<NodeId> team_set;
    auto add_member = [&](NodeId a) {
      if (team_set.insert(a).second) team.push_back(a);
    };

    // Lead author.
    if (rng.Bernoulli(options.new_author_prob)) {
      add_member(new_author());
    } else {
      add_member(participants.Sample(&rng));
    }

    // Additional authors; at least one so every paper creates edges.
    const size_t extras = std::max<size_t>(
        1, static_cast<size_t>(
               std::round(rng.Exponential(1.0 / std::max(
                                              0.1, options.mean_extra_authors)))));
    for (size_t s = 0; s < std::min<size_t>(extras, 6); ++s) {
      if (rng.Bernoulli(options.new_author_prob)) {
        add_member(new_author());
        continue;
      }
      if (rng.Bernoulli(options.collaborator_prob)) {
        // Recent collaborator of an already chosen team member.
        const NodeId anchor = team[rng.UniformInt(team.size())];
        if (anchor < collab.size() && !collab[anchor].empty()) {
          const size_t idx = SampleRecentIndex(
              collab[anchor].size(), half_life / 4.0, &rng);
          add_member(collab[anchor][idx]);
          continue;
        }
      }
      add_member(participants.Sample(&rng));
    }
    if (team.size() < 2) add_member(new_author());

    // Clique of co-authorship edges for this paper.
    for (size_t i = 0; i < team.size(); ++i) {
      for (size_t j = i + 1; j < team.size(); ++j) {
        edges.push_back(TemporalEdge{team[i], team[j], t, 1.0f});
        ensure_node(std::max(team[i], team[j]));
        collab[team[i]].push_back(team[j]);
        collab[team[j]].push_back(team[i]);
      }
    }
    for (NodeId a : team) participants.Append(a);
  }

  return TemporalGraph::FromEdges(std::move(edges), next_author,
                                  /*directed=*/false);
}

}  // namespace ehna
