#include <algorithm>
#include <vector>

#include "graph/generators/generators.h"

namespace ehna {

namespace {

/// Fixed-capacity ring of recent event participants with geometric
/// recency-weighted sampling — the bounded-memory analogue of
/// gen_internal::RecencyBuffer, which grows with the event count and would
/// cost O(num_edges) memory at 10⁷ edges.
class RecencyRing {
 public:
  explicit RecencyRing(size_t capacity)
      : slots_(std::max<size_t>(capacity, 2)) {}

  void Append(NodeId node) {
    slots_[write_pos_] = node;
    write_pos_ = (write_pos_ + 1) % slots_.size();
    filled_ = std::min(filled_ + 1, slots_.size());
  }

  bool empty() const { return filled_ == 0; }

  /// Draws an entry k positions back with P(k) geometric (half-life =
  /// capacity / 8), falling back to uniform over the retained window when
  /// the draw overshoots; requires !empty().
  NodeId Sample(Rng* rng) const {
    const double rate = 5.545177444479562 /  // 8 * ln(2): half-life cap/8.
                        static_cast<double>(slots_.size());
    size_t back = static_cast<size_t>(rng->Exponential(rate));
    if (back >= filled_) back = static_cast<size_t>(rng->UniformInt(filled_));
    const size_t idx =
        (write_pos_ + slots_.size() - 1 - back) % slots_.size();
    return slots_[idx];
  }

 private:
  std::vector<NodeId> slots_;
  size_t write_pos_ = 0;
  size_t filled_ = 0;
};

}  // namespace

Status StreamScaleGraph(const ScaleGraphOptions& options,
                        const EdgeSink& sink) {
  if (options.num_nodes < 2) {
    return Status::InvalidArgument("num_nodes must be >= 2");
  }
  EHNA_RETURN_NOT_OK(TemporalGraph::ValidateEdgeCount(options.num_edges));
  if (options.popularity_alpha <= 0.0) {
    return Status::InvalidArgument("popularity_alpha must be > 0");
  }
  Rng rng(options.seed);
  RecencyRing recent(options.recency_window);

  for (uint64_t event = 0; event < options.num_edges; ++event) {
    NodeId src;
    if (!recent.empty() && rng.Bernoulli(options.recency_prob)) {
      src = recent.Sample(&rng);
    } else {
      src = static_cast<NodeId>(rng.UniformInt(options.num_nodes));
    }
    NodeId dst = src;
    // A handful of redraws dodges self-loops even from a tiny id space;
    // the deterministic fallback guarantees termination regardless.
    for (int attempt = 0; attempt < 8 && dst == src; ++attempt) {
      if (rng.Bernoulli(options.popularity_prob)) {
        dst = static_cast<NodeId>(
            rng.PowerLaw(options.popularity_alpha, options.num_nodes) - 1);
      } else {
        dst = static_cast<NodeId>(rng.UniformInt(options.num_nodes));
      }
    }
    if (dst == src) dst = (src + 1) % options.num_nodes;

    EHNA_RETURN_NOT_OK(sink(TemporalEdge{
        src, dst, static_cast<Timestamp>(event), 1.0f}));
    recent.Append(src);
    recent.Append(dst);
  }
  return Status::OK();
}

Result<TemporalGraph> MakeScaleGraph(const ScaleGraphOptions& options) {
  std::vector<TemporalEdge> edges;
  edges.reserve(options.num_edges);
  EHNA_RETURN_NOT_OK(StreamScaleGraph(options, [&](const TemporalEdge& e) {
    edges.push_back(e);
    return Status::OK();
  }));
  return TemporalGraph::FromEdges(std::move(edges), options.num_nodes,
                                  /*directed=*/false);
}

}  // namespace ehna
