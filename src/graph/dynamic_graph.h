#ifndef EHNA_GRAPH_DYNAMIC_GRAPH_H_
#define EHNA_GRAPH_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/temporal_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace ehna {

/// Tuning knobs for the dynamic overlay.
struct DynamicGraphOptions {
  /// Per-node down-sampled neighbor cache capacity (reservoir size). The
  /// cache bounds refresh-candidate selection at O(capacity) per event
  /// irrespective of true degree ("Neighborhood-aware Scalable Temporal
  /// Network Representation Learning", PAPERS.md).
  size_t cache_capacity = 16;
  /// Seed of the reservoir-sampling RNG (cache contents only — never walk
  /// or training randomness).
  uint64_t seed = 0x45484E414459474EULL;  // "EHNADYGN"
};

/// A mutable streaming overlay over the immutable flat-CSR TemporalGraph:
/// ingested edges append to an O(1) delta in arrival order, queries against
/// graph structure go to the latest compacted snapshot, and Compact() merges
/// the delta into a fresh snapshot that is bitwise-indistinguishable from
/// TemporalGraph::FromEdges over the full edge multiset (pinned by
/// tests/serve_test.cc).
///
/// The equivalence argument: snapshots keep `edges()` sorted by time with
/// ties in input order (FromEdges stable_sorts). Compact stable-sorts the
/// delta by time (preserving arrival order within a tie) and merges it with
/// the already-sorted snapshot edges, ties drawing from the snapshot side —
/// exactly the permutation stable_sort would apply to the concatenated
/// list. Since every downstream observation (adjacency order, walk
/// sampling, HasEdge) is a function of the sorted edge list, overlay-built
/// graphs walk bitwise-identically to rebuilt-from-scratch ones.
///
/// Alongside the delta, the overlay maintains bounded per-node neighbor
/// caches (uniform reservoir over every adjacency event a node has seen,
/// seeded from the base snapshot's adjacency on a node's first event) so
/// the serving layer can pick incremental-refresh candidates — the
/// endpoints plus a bounded sample of the nodes whose neighborhoods the new
/// edge entered — in O(cache_capacity) per event instead of O(degree).
///
/// Not thread-safe; the serving layer serializes mutation behind its write
/// lock.
class DynamicTemporalGraph {
 public:
  /// `base` must outlive the overlay. New node ids past the base's range
  /// are accepted and grow num_nodes().
  explicit DynamicTemporalGraph(const TemporalGraph* base,
                                DynamicGraphOptions options = {});

  /// The latest compacted snapshot (the base until the first Compact).
  /// Pending (un-compacted) edges are NOT visible here.
  const TemporalGraph& current() const {
    return merged_ != nullptr ? *merged_ : *base_;
  }

  /// Nodes across base + pending delta (max endpoint id + 1).
  NodeId num_nodes() const { return num_nodes_; }
  /// Edges appended since the last Compact.
  size_t pending_edges() const { return pending_.size(); }
  /// Snapshot edges + pending delta.
  uint64_t total_edges() const { return current().num_edges() + pending_.size(); }
  bool directed() const { return current().directed(); }

  /// Appends one edge to the delta: O(1) plus O(cache_capacity) reservoir
  /// maintenance. Applies FromEdges' validation eagerly (self-loops and
  /// negative weights rejected, edge-count ceiling enforced) so Compact
  /// cannot fail on data accepted here. Timestamps may arrive out of
  /// order — Compact's stable merge restores chronology.
  Status Ingest(const TemporalEdge& edge);

  /// The bounded refresh-candidate set for `edge`: its endpoints plus the
  /// cached (down-sampled) neighbors of each endpoint — the nodes whose
  /// historical neighborhoods the edge just entered. Call after Ingest so
  /// the caches already include this event. May contain duplicates.
  void AffectedCandidates(const TemporalEdge& edge,
                          std::vector<NodeId>* out) const;

  /// The current reservoir contents for `node` (empty for nodes with no
  /// observed events). Exposed for tests.
  std::span<const NodeId> CachedNeighbors(NodeId node) const;

  /// Merges the pending delta into a fresh snapshot (see class comment for
  /// the bitwise-equivalence argument) and clears the delta. No-op when
  /// nothing is pending. On failure the overlay is unchanged.
  Status Compact();

 private:
  /// First event for `node`: seeds its reservoir with a uniform sample of
  /// its snapshot adjacency, so pre-existing neighbors are candidates too.
  void EnsureCacheSeeded(NodeId node);
  /// One reservoir step: `neighbor` entered `node`'s adjacency.
  void ObserveNeighbor(NodeId node, NodeId neighbor);

  const TemporalGraph* base_;
  std::unique_ptr<TemporalGraph> merged_;  // null until the first Compact.
  DynamicGraphOptions options_;
  std::vector<TemporalEdge> pending_;  // arrival order.
  NodeId num_nodes_ = 0;

  std::vector<std::vector<NodeId>> cache_;  // per-node reservoir.
  std::vector<uint64_t> cache_events_;      // reservoir denominators.
  std::vector<uint8_t> cache_seeded_;
  Rng cache_rng_;
};

}  // namespace ehna

#endif  // EHNA_GRAPH_DYNAMIC_GRAPH_H_
