#ifndef EHNA_GRAPH_TEMPORAL_GRAPH_H_
#define EHNA_GRAPH_TEMPORAL_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace ehna {

class EdgeLogReader;  // graph/edge_log.h

/// Node identifier. Nodes are dense integers in [0, num_nodes).
using NodeId = uint32_t;
/// Index into the graph's chronological edge list.
using EdgeId = uint32_t;
/// Edge creation time. The library treats timestamps as opaque reals; the
/// walk/attention code normalizes them relative to the graph's time span.
using Timestamp = double;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// One timestamped, weighted interaction (Definition 1 in the paper).
struct TemporalEdge {
  NodeId src = 0;
  NodeId dst = 0;
  Timestamp time = 0.0;
  float weight = 1.0f;

  bool operator==(const TemporalEdge&) const = default;
};

/// One adjacency slot: the neighbor reached, the annotation of the edge that
/// reaches it, and the id of the underlying logical edge.
struct AdjEntry {
  NodeId neighbor = 0;
  Timestamp time = 0.0;
  float weight = 1.0f;
  EdgeId edge_id = 0;
};

/// An immutable temporal network (Definition 1): nodes 0..n-1 and a
/// chronologically sorted multiset of timestamped edges. By default edges
/// are undirected (each logical edge appears in both endpoints' adjacency
/// lists). Storage is flat CSR (DESIGN.md §12): one contiguous `AdjEntry`
/// array sorted by ascending timestamp within each node's segment plus a
/// per-node offset table, so the historical prefix "all interactions at or
/// before time t" (the domain of the temporal random walk, Definition 2) is
/// a binary-searchable prefix of a contiguous range; a parallel
/// neighbor-sorted id array over the same offsets serves static
/// connectivity queries (HasEdge) in O(log d) with 4 bytes per slot.
class TemporalGraph {
 public:
  /// Hard ceiling on the logical edge count: `EdgeId` is 32-bit, and the
  /// chronological fill loop indexes edges with it, so a count that does
  /// not fit would silently wrap ids. FromEdges/FromEdgeLog reject larger
  /// inputs with a clear error instead (ValidateEdgeCount).
  static constexpr uint64_t kMaxEdges = 0xFFFFFFFFull;

  /// OK iff a graph of `count` edges is representable (count <= kMaxEdges).
  /// Factored out of the builders so the overflow boundary is testable
  /// without materializing 4 billion edges.
  static Status ValidateEdgeCount(uint64_t count);

  /// Builds a graph from `edges`. Node ids must be < `num_nodes`; if
  /// `num_nodes` is 0 it is inferred as max id + 1. Self-loops are rejected.
  /// When `directed` is false (the paper's setting for all four datasets)
  /// each edge contributes adjacency in both directions.
  static Result<TemporalGraph> FromEdges(std::vector<TemporalEdge> edges,
                                         NodeId num_nodes = 0,
                                         bool directed = false);

  /// Builds a graph from an already-validated memory-mapped edge log
  /// (graph/edge_log.h). Log records are time-sorted by construction, so
  /// this skips the sort and copies records straight into the CSR build —
  /// the resulting graph is indistinguishable (including iteration order
  /// and walk output) from FromEdges on the same edge multiset.
  static Result<TemporalGraph> FromEdgeLog(const EdgeLogReader& log);

  /// Convenience: EdgeLogReader::Open + FromEdgeLog.
  static Result<TemporalGraph> FromEdgeLog(const std::string& path);

  TemporalGraph() = default;

  NodeId num_nodes() const { return num_nodes_; }
  /// Number of logical (input) edges.
  size_t num_edges() const { return edges_.size(); }
  bool directed() const { return directed_; }

  /// All logical edges, sorted by ascending timestamp (ties broken by input
  /// order). `EdgeId` values index into this vector.
  const std::vector<TemporalEdge>& edges() const { return edges_; }

  /// Full adjacency of `node`, ascending in time.
  std::span<const AdjEntry> Neighbors(NodeId node) const;

  /// The historical prefix of `node`'s adjacency: entries with
  /// `time <= cutoff`. O(log d) via binary search on the sorted adjacency.
  std::span<const AdjEntry> NeighborsBefore(NodeId node, Timestamp cutoff) const;

  /// Number of adjacency entries of `node` (== degree for undirected graphs).
  size_t Degree(NodeId node) const;

  /// True if any edge (in either direction for undirected graphs) connects
  /// u and v, irrespective of time. Used by the second-order walk bias
  /// (Eq. 2's shortest-path distance d_uw ∈ {0,1,2}). O(log deg(u)) over
  /// the neighbor-sorted CSR index; out-of-range u never has edges.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Timestamp of `node`'s most recent interaction; NotFound for isolated
  /// nodes.
  Result<Timestamp> MostRecentInteraction(NodeId node) const;

  /// Earliest / latest edge timestamps (0 for empty graphs).
  Timestamp min_time() const { return min_time_; }
  Timestamp max_time() const { return max_time_; }
  /// max_time - min_time, floored at a tiny epsilon so that callers can
  /// divide by it.
  Timestamp TimeSpan() const;

  /// Sum of adjacency weights at `node`.
  double WeightedDegree(NodeId node) const;

  /// Degrees of all nodes (adjacency-entry counts).
  std::vector<size_t> Degrees() const;

 private:
  /// Builds the CSR arrays from `edges_` (which must already be sorted by
  /// non-decreasing time) for the current num_nodes_/directed_ setting.
  void BuildAdjacency();

  NodeId num_nodes_ = 0;
  bool directed_ = false;
  std::vector<TemporalEdge> edges_;   // sorted by time.
  std::vector<size_t> adj_offsets_;   // CSR offsets, size num_nodes_+1.
  std::vector<AdjEntry> adj_;         // per-node, ascending time.
  std::vector<NodeId> nbr_sorted_;    // per-node neighbor ids, ascending id;
                                      // shares adj_offsets_. Connectivity
                                      // index behind HasEdge.
  Timestamp min_time_ = 0.0;
  Timestamp max_time_ = 0.0;
};

}  // namespace ehna

#endif  // EHNA_GRAPH_TEMPORAL_GRAPH_H_
