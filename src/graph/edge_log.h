#ifndef EHNA_GRAPH_EDGE_LOG_H_
#define EHNA_GRAPH_EDGE_LOG_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>

#include "graph/temporal_graph.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace ehna {

// ---------------------------------------------------------------------------
// The EHNL edge log: a versioned, CRC-guarded binary format for time-sorted
// temporal edge multisets, designed to be memory-mapped (util/mmap_file.h)
// and consumed in place — TemporalGraph::FromEdgeLog builds its CSR
// adjacency straight off the mapping with no intermediate edge vector, which
// is what makes 10⁷-edge graphs loadable without 2× peak RAM.
//
// Layout (all integers little-endian, as written by the host):
//
//   header  (40 bytes)  magic "EHNL" | u32 version | u64 num_nodes
//                       | u64 num_edges | u32 flags | u32 record_bytes
//                       | u32 reserved(=0) | u32 header_crc
//   records (24 bytes × num_edges, 8-byte aligned since 40 % 8 == 0)
//                       u32 src | u32 dst | f64 time | f32 weight
//                       | u32 pad(=0)
//   footer  (4 bytes)   u32 payload_crc over all record bytes
//
// header_crc is CRC-32 of the 36 header bytes before it; payload_crc covers
// every record byte (including pads). Between the two CRCs and the exact
// file-size equation  size == 40 + 24*num_edges + 4, every single-byte
// truncation or bit flip of a valid log is detected (tests/edge_log_test.cc
// proves this byte by byte, mirroring checkpoint_test.cc).
//
// Semantic validity (checked at open so a successfully opened reader is a
// total guarantee): version and record size supported, num_edges within
// TemporalGraph::kMaxEdges, endpoints < num_nodes and distinct, timestamps
// finite and non-decreasing, weights finite and non-negative, pads zero.
// ---------------------------------------------------------------------------

/// One on-disk edge record. The struct's in-memory layout is the on-disk
/// layout (static_asserts in edge_log.cc pin offsets), so a mapped record
/// array can be read through `const EdgeLogRecord*` directly.
struct EdgeLogRecord {
  uint32_t src = 0;
  uint32_t dst = 0;
  double time = 0.0;
  float weight = 1.0f;
  uint32_t pad = 0;
};

/// Streaming writer: appends records one at a time with a running CRC, so a
/// generator can emit a 10⁷-edge log in O(1) memory. Writes to a temporary
/// sibling of `path` and renames into place on Finish() — the destination
/// is never observable half-written (same contract as AtomicWriteFile; the
/// header is back-patched with the final edge count before the rename).
class EdgeLogWriter {
 public:
  /// Starts a log claiming `num_nodes` nodes. Every appended edge must have
  /// endpoints below that, in non-decreasing time order.
  static Result<EdgeLogWriter> Create(const std::string& path,
                                      NodeId num_nodes, bool directed);

  EdgeLogWriter(EdgeLogWriter&& other) noexcept;
  EdgeLogWriter& operator=(EdgeLogWriter&&) = delete;
  EdgeLogWriter(const EdgeLogWriter&) = delete;
  EdgeLogWriter& operator=(const EdgeLogWriter&) = delete;

  /// Aborts (removes the temporary) unless Finish() succeeded.
  ~EdgeLogWriter();

  /// Validates and appends one edge. Rejects out-of-range or equal
  /// endpoints, non-finite or time-travelling timestamps, non-finite or
  /// negative weights, and appending past kMaxEdges.
  Status Append(const TemporalEdge& edge);

  /// Seals the log: writes the payload CRC footer, back-patches the header
  /// with the final edge count, and renames the temporary over `path`.
  /// No Append is allowed afterwards.
  Status Finish();

  uint64_t num_appended() const { return num_edges_; }

 private:
  EdgeLogWriter(std::string path, std::string tmp_path, std::FILE* file,
                NodeId num_nodes, bool directed)
      : path_(std::move(path)),
        tmp_path_(std::move(tmp_path)),
        file_(file),
        num_nodes_(num_nodes),
        directed_(directed) {}

  void Abort();

  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;  // null once finished or aborted.
  NodeId num_nodes_ = 0;
  bool directed_ = false;
  uint64_t num_edges_ = 0;
  uint32_t payload_crc_ = 0;
  double last_time_ = 0.0;
};

/// Convenience: streams `edges` (which must already be sorted by
/// non-decreasing time) through an EdgeLogWriter.
Status WriteEdgeLog(const std::string& path,
                    std::span<const TemporalEdge> edges, NodeId num_nodes,
                    bool directed);

/// Memory-mapped reader. Open() validates the entire log (framing, both
/// CRCs, every record) before returning, so all accessors are infallible.
/// The record span points into the mapping and lives exactly as long as
/// this reader.
class EdgeLogReader {
 public:
  static Result<EdgeLogReader> Open(const std::string& path);

  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return num_edges_; }
  bool directed() const { return directed_; }

  /// All records, time-sorted, backed by the mapping.
  std::span<const EdgeLogRecord> records() const {
    return {records_, num_edges_};
  }

  TemporalEdge Edge(uint64_t i) const {
    const EdgeLogRecord& r = records_[i];
    return TemporalEdge{r.src, r.dst, r.time, r.weight};
  }

 private:
  EdgeLogReader(MmapFile mapping, const EdgeLogRecord* records,
                NodeId num_nodes, uint64_t num_edges, bool directed)
      : mapping_(std::move(mapping)),
        records_(records),
        num_nodes_(num_nodes),
        num_edges_(num_edges),
        directed_(directed) {}

  MmapFile mapping_;
  const EdgeLogRecord* records_ = nullptr;
  NodeId num_nodes_ = 0;
  uint64_t num_edges_ = 0;
  bool directed_ = false;
};

}  // namespace ehna

#endif  // EHNA_GRAPH_EDGE_LOG_H_
