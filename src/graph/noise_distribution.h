#ifndef EHNA_GRAPH_NOISE_DISTRIBUTION_H_
#define EHNA_GRAPH_NOISE_DISTRIBUTION_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "util/alias_sampler.h"
#include "util/rng.h"

namespace ehna {

/// The negative-sampling noise distribution P_n(v) ~ d_v^power used by the
/// EHNA objective (Eq. 6-7) and by all skip-gram baselines; the paper (and
/// word2vec) fixes power = 0.75. Nodes with zero degree get zero mass.
class NoiseDistribution {
 public:
  /// Builds the alias table over `g`'s nodes.
  explicit NoiseDistribution(const TemporalGraph& g, double power = 0.75);

  /// Builds from raw degrees (used by tests and by baselines that maintain
  /// their own degree counts).
  explicit NoiseDistribution(const std::vector<size_t>& degrees,
                             double power = 0.75);

  /// Draws one node id.
  NodeId Sample(Rng* rng) const;

  /// Draws one node id distinct from every entry of `exclude` (rejection
  /// sampling, bounded; falls back to the last draw if the graph is tiny).
  NodeId SampleExcluding(std::span<const NodeId> exclude, Rng* rng) const;

  double power() const { return power_; }

 private:
  AliasSampler sampler_;
  double power_;
};

}  // namespace ehna

#endif  // EHNA_GRAPH_NOISE_DISTRIBUTION_H_
