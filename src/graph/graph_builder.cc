#include "graph/graph_builder.h"

#include <algorithm>
#include <string>

namespace ehna {

Status TemporalGraphBuilder::AddEdge(NodeId src, NodeId dst, Timestamp time,
                                     float weight) {
  if (src == dst) {
    return Status::InvalidArgument("self-loop on node " + std::to_string(src));
  }
  if (weight < 0.0f) {
    return Status::InvalidArgument("negative edge weight");
  }
  edges_.push_back(TemporalEdge{src, dst, time, weight});
  return Status::OK();
}

Status TemporalGraphBuilder::AddEdges(const std::vector<TemporalEdge>& edges) {
  for (const auto& e : edges) {
    EHNA_RETURN_NOT_OK(AddEdge(e.src, e.dst, e.time, e.weight));
  }
  return Status::OK();
}

void TemporalGraphBuilder::ReserveNodes(NodeId num_nodes) {
  min_nodes_ = std::max(min_nodes_, num_nodes);
}

Result<TemporalGraph> TemporalGraphBuilder::Build() const {
  NodeId num_nodes = min_nodes_;
  for (const auto& e : edges_) {
    num_nodes = std::max({num_nodes, e.src + 1, e.dst + 1});
  }
  return TemporalGraph::FromEdges(edges_, num_nodes, directed_);
}

Result<TemporalGraph> TemporalGraphBuilder::BuildUpTo(Timestamp cutoff) const {
  std::vector<TemporalEdge> prefix;
  prefix.reserve(edges_.size());
  for (const auto& e : edges_) {
    if (e.time <= cutoff) prefix.push_back(e);
  }
  NodeId num_nodes = min_nodes_;
  for (const auto& e : edges_) {
    // Keep the full node-id space so embeddings stay aligned across
    // snapshots even when late nodes are absent from early prefixes.
    num_nodes = std::max({num_nodes, e.src + 1, e.dst + 1});
  }
  return TemporalGraph::FromEdges(std::move(prefix), num_nodes, directed_);
}

}  // namespace ehna
