#include "graph/edge_log.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <utility>

#include "util/crc32.h"
#include "util/logging.h"

namespace ehna {

namespace {

constexpr char kMagic[4] = {'E', 'H', 'N', 'L'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kFlagDirected = 1u << 0;
constexpr uint32_t kKnownFlags = kFlagDirected;
constexpr uint32_t kRecordBytes = 24;
constexpr uint64_t kHeaderBytes = 40;
constexpr uint64_t kFooterBytes = 4;

// The mapped record array is read through EdgeLogRecord directly; pin the
// struct to the on-disk layout so a compiler that padded differently fails
// the build instead of misreading logs.
static_assert(sizeof(EdgeLogRecord) == kRecordBytes);
static_assert(offsetof(EdgeLogRecord, src) == 0);
static_assert(offsetof(EdgeLogRecord, dst) == 4);
static_assert(offsetof(EdgeLogRecord, time) == 8);
static_assert(offsetof(EdgeLogRecord, weight) == 16);
static_assert(offsetof(EdgeLogRecord, pad) == 20);
// Records start at byte 40, so the 8-aligned `time` field stays 8-aligned
// in the mapping.
static_assert(kHeaderBytes % alignof(EdgeLogRecord) == 0);

struct Header {
  char magic[4];
  uint32_t version;
  uint64_t num_nodes;
  uint64_t num_edges;
  uint32_t flags;
  uint32_t record_bytes;
  uint32_t reserved;
  uint32_t crc;  // CRC-32 of the 36 bytes above.
};
static_assert(sizeof(Header) == kHeaderBytes);
static_assert(offsetof(Header, crc) == kHeaderBytes - 4);

Header MakeHeader(NodeId num_nodes, uint64_t num_edges, bool directed) {
  Header h;
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.flags = directed ? kFlagDirected : 0;
  h.num_nodes = num_nodes;
  h.num_edges = num_edges;
  h.record_bytes = kRecordBytes;
  h.reserved = 0;
  h.crc = Crc32(&h, offsetof(Header, crc));
  return h;
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("corrupt edge log " + path + ": " + what);
}

Status ValidateRecord(const std::string& path, const EdgeLogRecord& r,
                      uint64_t index, uint64_t num_nodes, double prev_time) {
  const std::string at = "record " + std::to_string(index) + ": ";
  if (r.src >= num_nodes || r.dst >= num_nodes) {
    return Corrupt(path, at + "endpoint " +
                             std::to_string(std::max(r.src, r.dst)) +
                             " >= num_nodes " + std::to_string(num_nodes));
  }
  if (r.src == r.dst) {
    return Corrupt(path, at + "self-loop on node " + std::to_string(r.src));
  }
  if (!std::isfinite(r.time)) {
    return Corrupt(path, at + "non-finite timestamp");
  }
  if (r.time < prev_time) {
    return Corrupt(path, at + "timestamp regresses (log must be time-sorted)");
  }
  if (!std::isfinite(r.weight) || r.weight < 0.0f) {
    return Corrupt(path, at + "non-finite or negative weight");
  }
  if (r.pad != 0) {
    return Corrupt(path, at + "nonzero pad bytes");
  }
  return Status::OK();
}

}  // namespace

// ----------------------------------------------------------------- writer

Result<EdgeLogWriter> EdgeLogWriter::Create(const std::string& path,
                                            NodeId num_nodes, bool directed) {
  if (num_nodes == kInvalidNode) {
    return Status::InvalidArgument("num_nodes " + std::to_string(num_nodes) +
                                   " is the invalid-node sentinel");
  }
  std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create " + tmp + ": " +
                           std::strerror(errno));
  }
  // Placeholder header; Finish() rewrites it with the real edge count.
  const Header h = MakeHeader(num_nodes, 0, directed);
  if (std::fwrite(&h, sizeof(h), 1, f) != 1) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IoError("cannot write header to " + tmp);
  }
  return EdgeLogWriter(path, std::move(tmp), f, num_nodes, directed);
}

EdgeLogWriter::EdgeLogWriter(EdgeLogWriter&& other) noexcept
    : path_(std::move(other.path_)),
      tmp_path_(std::move(other.tmp_path_)),
      file_(std::exchange(other.file_, nullptr)),
      num_nodes_(other.num_nodes_),
      directed_(other.directed_),
      num_edges_(other.num_edges_),
      payload_crc_(other.payload_crc_),
      last_time_(other.last_time_) {}

EdgeLogWriter::~EdgeLogWriter() { Abort(); }

void EdgeLogWriter::Abort() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(tmp_path_.c_str());
    file_ = nullptr;
  }
}

Status EdgeLogWriter::Append(const TemporalEdge& edge) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("edge log writer already finished");
  }
  if (edge.src >= num_nodes_ || edge.dst >= num_nodes_) {
    return Status::InvalidArgument(
        "edge endpoint " + std::to_string(std::max(edge.src, edge.dst)) +
        " >= num_nodes " + std::to_string(num_nodes_));
  }
  if (edge.src == edge.dst) {
    return Status::InvalidArgument("self-loop on node " +
                                   std::to_string(edge.src));
  }
  if (!std::isfinite(edge.time)) {
    return Status::InvalidArgument("non-finite timestamp");
  }
  if (num_edges_ > 0 && edge.time < last_time_) {
    return Status::InvalidArgument(
        "edge log appends must be time-sorted: time " +
        std::to_string(edge.time) + " < previous " +
        std::to_string(last_time_));
  }
  if (!std::isfinite(edge.weight) || edge.weight < 0.0f) {
    return Status::InvalidArgument("non-finite or negative edge weight");
  }
  EHNA_RETURN_NOT_OK(TemporalGraph::ValidateEdgeCount(num_edges_ + 1));

  EdgeLogRecord r;
  r.src = edge.src;
  r.dst = edge.dst;
  r.time = edge.time;
  r.weight = edge.weight;
  r.pad = 0;
  if (std::fwrite(&r, sizeof(r), 1, file_) != 1) {
    return Status::IoError("cannot append record to " + tmp_path_);
  }
  payload_crc_ = Crc32(&r, sizeof(r), payload_crc_);
  last_time_ = edge.time;
  ++num_edges_;
  return Status::OK();
}

Status EdgeLogWriter::Finish() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("edge log writer already finished");
  }
  bool io_ok = std::fwrite(&payload_crc_, sizeof(payload_crc_), 1, file_) == 1;
  const Header h = MakeHeader(num_nodes_, num_edges_, directed_);
  io_ok = io_ok && std::fseek(file_, 0, SEEK_SET) == 0 &&
          std::fwrite(&h, sizeof(h), 1, file_) == 1 &&
          std::fflush(file_) == 0;
  io_ok = std::fclose(file_) == 0 && io_ok;
  file_ = nullptr;
  if (!io_ok) {
    std::remove(tmp_path_.c_str());
    return Status::IoError("cannot finalize edge log " + tmp_path_);
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp_path_.c_str());
    return Status::IoError("cannot rename " + tmp_path_ + " to " + path_ +
                           ": " + std::strerror(err));
  }
  return Status::OK();
}

Status WriteEdgeLog(const std::string& path,
                    std::span<const TemporalEdge> edges, NodeId num_nodes,
                    bool directed) {
  EHNA_ASSIGN_OR_RETURN(EdgeLogWriter writer,
                        EdgeLogWriter::Create(path, num_nodes, directed));
  for (const TemporalEdge& e : edges) {
    EHNA_RETURN_NOT_OK(writer.Append(e));
  }
  return writer.Finish();
}

// ----------------------------------------------------------------- reader

Result<EdgeLogReader> EdgeLogReader::Open(const std::string& path) {
  EHNA_ASSIGN_OR_RETURN(MmapFile mapping, MmapFile::Open(path));
  if (mapping.size() < kHeaderBytes + kFooterBytes) {
    return Corrupt(path, "truncated header");
  }

  Header h;
  std::memcpy(&h, mapping.data(), sizeof(h));
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "bad magic");
  }
  if (h.crc != Crc32(&h, offsetof(Header, crc))) {
    return Corrupt(path, "header checksum mismatch");
  }
  if (h.version != kVersion) {
    return Corrupt(path, "unsupported version " + std::to_string(h.version) +
                             " (this build reads version " +
                             std::to_string(kVersion) + ")");
  }
  if ((h.flags & ~kKnownFlags) != 0 || h.reserved != 0) {
    return Corrupt(path, "unknown flags or nonzero reserved field");
  }
  if (h.record_bytes != kRecordBytes) {
    return Corrupt(path, "record size " + std::to_string(h.record_bytes) +
                             " != expected " + std::to_string(kRecordBytes));
  }
  if (h.num_nodes > kInvalidNode - 1) {
    return Corrupt(path, "num_nodes " + std::to_string(h.num_nodes) +
                             " exceeds the 32-bit NodeId space");
  }
  EHNA_RETURN_NOT_OK(TemporalGraph::ValidateEdgeCount(h.num_edges));
  // Exact size equation before touching any record: a corrupt count can
  // never walk the reader off the mapping.
  const uint64_t want =
      kHeaderBytes + h.num_edges * uint64_t{kRecordBytes} + kFooterBytes;
  if (mapping.size() != want) {
    return Corrupt(path, "file size " + std::to_string(mapping.size()) +
                             " != " + std::to_string(want) +
                             " implied by the header's edge count");
  }

  mapping.AdviseSequential();
  const uint8_t* payload = mapping.data() + kHeaderBytes;
  const uint64_t payload_bytes = h.num_edges * uint64_t{kRecordBytes};
  uint32_t footer_crc = 0;
  std::memcpy(&footer_crc, payload + payload_bytes, sizeof(footer_crc));
  if (Crc32(payload, payload_bytes) != footer_crc) {
    return Corrupt(path, "payload checksum mismatch");
  }

  const auto* records = reinterpret_cast<const EdgeLogRecord*>(payload);
  double prev_time = -std::numeric_limits<double>::infinity();
  for (uint64_t i = 0; i < h.num_edges; ++i) {
    EHNA_RETURN_NOT_OK(
        ValidateRecord(path, records[i], i, h.num_nodes, prev_time));
    prev_time = records[i].time;
  }

  return EdgeLogReader(std::move(mapping), records,
                       static_cast<NodeId>(h.num_nodes), h.num_edges,
                       (h.flags & kFlagDirected) != 0);
}

// ------------------------------------------------- CSR build from the log

Result<TemporalGraph> TemporalGraph::FromEdgeLog(const EdgeLogReader& log) {
  TemporalGraph g;
  g.directed_ = log.directed();
  g.num_nodes_ = log.num_nodes();
  // Records are validated and time-sorted, so the only work left is one
  // sequential copy out of the mapping plus the CSR counting fill — no
  // re-validation, no sort, no intermediate edge vector.
  g.edges_.reserve(log.num_edges());
  for (const EdgeLogRecord& r : log.records()) {
    g.edges_.push_back(TemporalEdge{r.src, r.dst, r.time, r.weight});
  }
  g.BuildAdjacency();
  return g;
}

Result<TemporalGraph> TemporalGraph::FromEdgeLog(const std::string& path) {
  EHNA_ASSIGN_OR_RETURN(EdgeLogReader log, EdgeLogReader::Open(path));
  return FromEdgeLog(log);
}

}  // namespace ehna
