#include "graph/dynamic_graph.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace ehna {

DynamicTemporalGraph::DynamicTemporalGraph(const TemporalGraph* base,
                                           DynamicGraphOptions options)
    : base_(base),
      options_(options),
      num_nodes_(base != nullptr ? base->num_nodes() : 0),
      cache_rng_(options.seed) {
  EHNA_CHECK(base != nullptr);
  EHNA_CHECK_GT(options_.cache_capacity, 0u);
  cache_.resize(num_nodes_);
  cache_events_.resize(num_nodes_, 0);
  cache_seeded_.resize(num_nodes_, 0);
}

Status DynamicTemporalGraph::Ingest(const TemporalEdge& edge) {
  if (edge.src == edge.dst) {
    return Status::InvalidArgument("self-loop edge (" +
                                   std::to_string(edge.src) + ")");
  }
  if (edge.weight < 0.0f) {
    return Status::InvalidArgument("negative edge weight");
  }
  Status count_ok = TemporalGraph::ValidateEdgeCount(total_edges() + 1);
  if (!count_ok.ok()) return count_ok;

  const NodeId needed = std::max(edge.src, edge.dst) + 1;
  if (needed > num_nodes_) {
    num_nodes_ = needed;
    cache_.resize(num_nodes_);
    cache_events_.resize(num_nodes_, 0);
    cache_seeded_.resize(num_nodes_, 0);
  }

  // Seed from the snapshot before this event enters the reservoirs, so a
  // node's pre-existing neighbors stay candidates for refresh.
  EnsureCacheSeeded(edge.src);
  EnsureCacheSeeded(edge.dst);
  ObserveNeighbor(edge.src, edge.dst);
  ObserveNeighbor(edge.dst, edge.src);

  pending_.push_back(edge);
  return Status::OK();
}

void DynamicTemporalGraph::EnsureCacheSeeded(NodeId node) {
  if (cache_seeded_[node]) return;
  cache_seeded_[node] = 1;
  const std::span<const AdjEntry> adj =
      node < current().num_nodes() ? current().Neighbors(node)
                                   : std::span<const AdjEntry>{};
  cache_events_[node] = adj.size();
  if (adj.empty()) return;
  std::vector<NodeId>& res = cache_[node];
  if (adj.size() <= options_.cache_capacity) {
    res.reserve(adj.size());
    for (const AdjEntry& e : adj) res.push_back(e.neighbor);
    return;
  }
  res.reserve(options_.cache_capacity);
  for (size_t idx :
       cache_rng_.SampleWithoutReplacement(adj.size(), options_.cache_capacity)) {
    res.push_back(adj[idx].neighbor);
  }
}

void DynamicTemporalGraph::ObserveNeighbor(NodeId node, NodeId neighbor) {
  std::vector<NodeId>& res = cache_[node];
  const uint64_t seen = ++cache_events_[node];
  if (res.size() < options_.cache_capacity) {
    res.push_back(neighbor);
    return;
  }
  // Algorithm R: the new event replaces a random slot with probability
  // capacity / seen, keeping the reservoir a uniform sample of all events.
  const uint64_t j = cache_rng_.UniformInt(seen);
  if (j < options_.cache_capacity) res[j] = neighbor;
}

void DynamicTemporalGraph::AffectedCandidates(const TemporalEdge& edge,
                                              std::vector<NodeId>* out) const {
  out->clear();
  out->push_back(edge.src);
  out->push_back(edge.dst);
  for (const NodeId endpoint : {edge.src, edge.dst}) {
    if (endpoint >= cache_.size()) continue;
    const std::vector<NodeId>& res = cache_[endpoint];
    out->insert(out->end(), res.begin(), res.end());
  }
}

std::span<const NodeId> DynamicTemporalGraph::CachedNeighbors(
    NodeId node) const {
  if (node >= cache_.size()) return {};
  return cache_[node];
}

Status DynamicTemporalGraph::Compact() {
  if (pending_.empty()) return Status::OK();

  std::vector<TemporalEdge> delta = std::move(pending_);
  pending_.clear();
  // Stable: delta edges with equal timestamps keep arrival order, exactly
  // as FromEdges' stable_sort would order them within the concatenation.
  std::stable_sort(delta.begin(), delta.end(),
                   [](const TemporalEdge& a, const TemporalEdge& b) {
                     return a.time < b.time;
                   });

  const std::vector<TemporalEdge>& head = current().edges();
  std::vector<TemporalEdge> all;
  all.reserve(head.size() + delta.size());
  // Ties draw from the snapshot side first — the stable-sort permutation of
  // the concatenated list (snapshot edges precede delta edges in it).
  std::merge(head.begin(), head.end(), delta.begin(), delta.end(),
             std::back_inserter(all),
             [](const TemporalEdge& a, const TemporalEdge& b) {
               return a.time < b.time;
             });

  Result<TemporalGraph> rebuilt =
      TemporalGraph::FromEdges(std::move(all), num_nodes_, directed());
  if (!rebuilt.ok()) {
    // Restore the delta so the overlay stays consistent (unreachable for
    // edges Ingest accepted; belt and braces).
    pending_ = std::move(delta);
    return rebuilt.status();
  }
  merged_ = std::make_unique<TemporalGraph>(std::move(rebuilt).value());
  return Status::OK();
}

}  // namespace ehna
