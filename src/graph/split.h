#ifndef EHNA_GRAPH_SPLIT_H_
#define EHNA_GRAPH_SPLIT_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace ehna {

/// Output of the paper's future-link-prediction protocol (§V.E): the most
/// recent `holdout_fraction` of edges are removed and become positive test
/// examples; an equal number of never-connected node pairs are sampled as
/// negatives; the remaining prefix of the timeline forms the training graph.
struct TemporalSplit {
  TemporalGraph train;
  std::vector<TemporalEdge> test_positive;
  /// Sampled pairs with no edge anywhere in the *full* graph.
  std::vector<std::pair<NodeId, NodeId>> test_negative;
};

/// Options for MakeTemporalSplit.
struct TemporalSplitOptions {
  /// Fraction of the most recent edges to hold out (paper: 0.20).
  double holdout_fraction = 0.20;
  /// Negatives per positive (paper: 1.0, "an equal number").
  double negative_ratio = 1.0;
  /// Drop held-out edges whose endpoints never appear in the training graph
  /// (an embedding method cannot score a node it has never seen). The paper
  /// implicitly relies on this; we make it explicit and deterministic.
  bool drop_unseen_endpoints = true;
  /// Cap on rejection-sampling attempts per negative pair.
  int max_negative_attempts = 200;
};

/// Splits `g` per the paper's protocol. Fails if the holdout would be empty
/// or if negatives cannot be found (graph too dense).
Result<TemporalSplit> MakeTemporalSplit(const TemporalGraph& g,
                                        const TemporalSplitOptions& options,
                                        Rng* rng);

}  // namespace ehna

#endif  // EHNA_GRAPH_SPLIT_H_
