#ifndef EHNA_GRAPH_GRAPH_BUILDER_H_
#define EHNA_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "util/status.h"

namespace ehna {

/// Incrementally accumulates a stream of timestamped interactions and
/// materializes immutable `TemporalGraph` snapshots. This is the intended
/// way to consume an evolving network: append events as they arrive, then
/// `Build()` (or `BuildUpTo(t)`) whenever an embedding refresh is needed —
/// mirroring the snapshot-free, event-level view the paper argues for.
class TemporalGraphBuilder {
 public:
  /// `directed` matches TemporalGraph::FromEdges semantics.
  explicit TemporalGraphBuilder(bool directed = false)
      : directed_(directed) {}

  /// Appends one interaction. Returns InvalidArgument for self-loops or
  /// negative weights (checked eagerly so a bad event is attributable to
  /// its call site rather than a later Build()).
  Status AddEdge(NodeId src, NodeId dst, Timestamp time, float weight = 1.0f);

  /// Appends a batch.
  Status AddEdges(const std::vector<TemporalEdge>& edges);

  /// Ensures the node-id space covers [0, num_nodes) even if some nodes
  /// have no events yet.
  void ReserveNodes(NodeId num_nodes);

  size_t num_edges() const { return edges_.size(); }

  /// Snapshot over every event appended so far.
  Result<TemporalGraph> Build() const;

  /// Snapshot restricted to events with time <= cutoff (the historical
  /// prefix G_t).
  Result<TemporalGraph> BuildUpTo(Timestamp cutoff) const;

 private:
  bool directed_;
  NodeId min_nodes_ = 0;
  std::vector<TemporalEdge> edges_;
};

}  // namespace ehna

#endif  // EHNA_GRAPH_GRAPH_BUILDER_H_
