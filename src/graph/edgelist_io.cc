#include "graph/edgelist_io.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/atomic_file.h"

namespace ehna {

namespace {

Status LineError(const std::string& what, const std::string& path,
                 size_t lineno) {
  return Status::InvalidArgument(what + " at " + path + ":" +
                                 std::to_string(lineno));
}

/// Strict double parse of one whitespace-delimited token: the whole token
/// must be consumed and the value must be finite. `operator>>` alone accepts
/// "nan"/"inf" (which corrupt the chronologically-sorted adjacency and its
/// binary searches) and stops silently at the first bad character.
bool ParseFiniteDouble(const std::string& token, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || token.empty()) return false;
  if (errno == ERANGE || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

}  // namespace

Result<std::vector<TemporalEdge>> ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);

  std::vector<TemporalEdge> edges;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    long long src = -1, dst = -1;
    std::string time_tok;
    if (!(ls >> src >> dst >> time_tok)) {
      return LineError("malformed edge", path, lineno);
    }
    double time = 0.0;
    if (!ParseFiniteDouble(time_tok, &time)) {
      return LineError("non-finite or malformed timestamp '" + time_tok + "'",
                       path, lineno);
    }
    double weight = 1.0;  // optional fourth column.
    std::string weight_tok;
    if (ls >> weight_tok) {
      if (!ParseFiniteDouble(weight_tok, &weight)) {
        return LineError("non-finite or malformed weight '" + weight_tok + "'",
                         path, lineno);
      }
      std::string junk;
      if (ls >> junk) {
        return LineError("trailing garbage '" + junk + "'", path, lineno);
      }
    }
    if (src < 0 || dst < 0 ||
        src > static_cast<long long>(kInvalidNode) - 1 ||
        dst > static_cast<long long>(kInvalidNode) - 1) {
      return LineError("node id out of range", path, lineno);
    }
    edges.push_back(TemporalEdge{static_cast<NodeId>(src),
                                 static_cast<NodeId>(dst), time,
                                 static_cast<float>(weight)});
  }
  return edges;
}

Status WriteEdgeList(const std::string& path,
                     const std::vector<TemporalEdge>& edges) {
  return AtomicWriteFile(path, [&edges](std::ostream& out) -> Status {
    // Full precision so written timestamps/weights read back exactly.
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (const auto& e : edges) {
      out << e.src << " " << e.dst << " " << e.time << " " << e.weight
          << "\n";
    }
    return Status::OK();
  });
}

Result<TemporalGraph> LoadTemporalGraph(const std::string& path,
                                        bool directed) {
  EHNA_ASSIGN_OR_RETURN(std::vector<TemporalEdge> edges, ReadEdgeList(path));
  return TemporalGraph::FromEdges(std::move(edges), /*num_nodes=*/0, directed);
}

}  // namespace ehna
