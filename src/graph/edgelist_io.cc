#include "graph/edgelist_io.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ehna {

Result<std::vector<TemporalEdge>> ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);

  std::vector<TemporalEdge> edges;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    long long src = -1, dst = -1;
    double time = 0.0;
    double weight = 1.0;
    if (!(ls >> src >> dst >> time)) {
      return Status::InvalidArgument("malformed edge at " + path + ":" +
                                     std::to_string(lineno));
    }
    ls >> weight;  // optional; leaves 1.0 if absent.
    if (src < 0 || dst < 0 ||
        src > static_cast<long long>(kInvalidNode) - 1 ||
        dst > static_cast<long long>(kInvalidNode) - 1) {
      return Status::InvalidArgument("node id out of range at " + path + ":" +
                                     std::to_string(lineno));
    }
    edges.push_back(TemporalEdge{static_cast<NodeId>(src),
                                 static_cast<NodeId>(dst), time,
                                 static_cast<float>(weight)});
  }
  return edges;
}

Status WriteEdgeList(const std::string& path,
                     const std::vector<TemporalEdge>& edges) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  for (const auto& e : edges) {
    out << e.src << " " << e.dst << " " << e.time << " " << e.weight << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<TemporalGraph> LoadTemporalGraph(const std::string& path,
                                        bool directed) {
  EHNA_ASSIGN_OR_RETURN(std::vector<TemporalEdge> edges, ReadEdgeList(path));
  return TemporalGraph::FromEdges(std::move(edges), /*num_nodes=*/0, directed);
}

}  // namespace ehna
