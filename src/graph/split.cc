#include "graph/split.h"

#include <algorithm>
#include <string>

namespace ehna {

Result<TemporalSplit> MakeTemporalSplit(const TemporalGraph& g,
                                        const TemporalSplitOptions& options,
                                        Rng* rng) {
  if (options.holdout_fraction <= 0.0 || options.holdout_fraction >= 1.0) {
    return Status::InvalidArgument("holdout_fraction must be in (0,1)");
  }
  const auto& all = g.edges();  // already time-sorted.
  const size_t holdout =
      static_cast<size_t>(all.size() * options.holdout_fraction);
  if (holdout == 0 || holdout >= all.size()) {
    return Status::FailedPrecondition("graph too small to split: " +
                                      std::to_string(all.size()) + " edges");
  }
  const size_t train_count = all.size() - holdout;

  std::vector<TemporalEdge> train_edges(all.begin(),
                                        all.begin() + train_count);
  EHNA_ASSIGN_OR_RETURN(
      TemporalGraph train,
      TemporalGraph::FromEdges(std::move(train_edges), g.num_nodes(),
                               g.directed()));

  TemporalSplit split;
  split.test_positive.reserve(holdout);
  for (size_t i = train_count; i < all.size(); ++i) {
    const TemporalEdge& e = all[i];
    if (options.drop_unseen_endpoints &&
        (train.Degree(e.src) == 0 || train.Degree(e.dst) == 0)) {
      continue;
    }
    split.test_positive.push_back(e);
  }
  if (split.test_positive.empty()) {
    return Status::FailedPrecondition(
        "no held-out edge has both endpoints in the training graph");
  }

  const size_t num_negative = static_cast<size_t>(
      static_cast<double>(split.test_positive.size()) *
      options.negative_ratio);
  split.test_negative.reserve(num_negative);
  const NodeId n = g.num_nodes();
  for (size_t i = 0; i < num_negative; ++i) {
    bool found = false;
    for (int attempt = 0; attempt < options.max_negative_attempts; ++attempt) {
      const NodeId u = static_cast<NodeId>(rng->UniformInt(n));
      const NodeId v = static_cast<NodeId>(rng->UniformInt(n));
      if (u == v) continue;
      if (g.HasEdge(u, v)) continue;  // no edge anywhere in the full graph.
      if (options.drop_unseen_endpoints &&
          (train.Degree(u) == 0 || train.Degree(v) == 0)) {
        continue;
      }
      split.test_negative.emplace_back(u, v);
      found = true;
      break;
    }
    if (!found) {
      return Status::FailedPrecondition(
          "could not sample a non-edge pair; graph too dense?");
    }
  }
  split.train = std::move(train);
  return split;
}

}  // namespace ehna
