#include "graph/temporal_graph.h"

#include <algorithm>
#include <limits>
#include <string>

#include "util/logging.h"

namespace ehna {

Result<TemporalGraph> TemporalGraph::FromEdges(std::vector<TemporalEdge> edges,
                                               NodeId num_nodes,
                                               bool directed) {
  TemporalGraph g;
  g.directed_ = directed;

  NodeId max_id = 0;
  for (const auto& e : edges) {
    if (e.src == e.dst) {
      return Status::InvalidArgument("self-loop on node " +
                                     std::to_string(e.src));
    }
    if (e.weight < 0.0f) {
      return Status::InvalidArgument("negative edge weight");
    }
    max_id = std::max(max_id, std::max(e.src, e.dst));
  }
  if (num_nodes == 0) {
    num_nodes = edges.empty() ? 0 : max_id + 1;
  } else if (!edges.empty() && max_id >= num_nodes) {
    return Status::InvalidArgument("edge endpoint " + std::to_string(max_id) +
                                   " >= num_nodes " +
                                   std::to_string(num_nodes));
  }
  g.num_nodes_ = num_nodes;

  std::stable_sort(edges.begin(), edges.end(),
                   [](const TemporalEdge& a, const TemporalEdge& b) {
                     return a.time < b.time;
                   });
  g.edges_ = std::move(edges);

  if (!g.edges_.empty()) {
    g.min_time_ = g.edges_.front().time;
    g.max_time_ = g.edges_.back().time;
  }

  // Count adjacency slots per node.
  std::vector<size_t> counts(num_nodes + 1, 0);
  for (const auto& e : g.edges_) {
    ++counts[e.src];
    if (!directed) ++counts[e.dst];
  }
  g.adj_offsets_.assign(num_nodes + 1, 0);
  for (NodeId v = 0; v < num_nodes; ++v) {
    g.adj_offsets_[v + 1] = g.adj_offsets_[v] + counts[v];
  }
  g.adj_.resize(g.adj_offsets_[num_nodes]);

  // Fill in chronological order: edges_ is time-sorted, so appending each
  // edge to its endpoints' cursors leaves every adjacency list ascending in
  // time without a per-node sort.
  std::vector<size_t> cursor(g.adj_offsets_.begin(), g.adj_offsets_.end() - 1);
  g.edge_keys_.reserve(g.edges_.size() * 2);
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const TemporalEdge& e = g.edges_[id];
    g.adj_[cursor[e.src]++] = AdjEntry{e.dst, e.time, e.weight, id};
    if (!directed) {
      g.adj_[cursor[e.dst]++] = AdjEntry{e.src, e.time, e.weight, id};
    }
    g.edge_keys_.insert(PackEdgeKey(e.src, e.dst));
    if (!directed) g.edge_keys_.insert(PackEdgeKey(e.dst, e.src));
  }
  return g;
}

std::span<const AdjEntry> TemporalGraph::Neighbors(NodeId node) const {
  EHNA_DCHECK(node < num_nodes_);
  return {adj_.data() + adj_offsets_[node],
          adj_offsets_[node + 1] - adj_offsets_[node]};
}

std::span<const AdjEntry> TemporalGraph::NeighborsBefore(
    NodeId node, Timestamp cutoff) const {
  auto all = Neighbors(node);
  auto it = std::upper_bound(
      all.begin(), all.end(), cutoff,
      [](Timestamp t, const AdjEntry& a) { return t < a.time; });
  return all.subspan(0, static_cast<size_t>(it - all.begin()));
}

size_t TemporalGraph::Degree(NodeId node) const {
  EHNA_DCHECK(node < num_nodes_);
  return adj_offsets_[node + 1] - adj_offsets_[node];
}

bool TemporalGraph::HasEdge(NodeId u, NodeId v) const {
  return edge_keys_.count(PackEdgeKey(u, v)) > 0;
}

Result<Timestamp> TemporalGraph::MostRecentInteraction(NodeId node) const {
  auto nbrs = Neighbors(node);
  if (nbrs.empty()) {
    return Status::NotFound("node " + std::to_string(node) + " is isolated");
  }
  return nbrs.back().time;
}

Timestamp TemporalGraph::TimeSpan() const {
  const Timestamp span = max_time_ - min_time_;
  return span > 1e-12 ? span : 1e-12;
}

double TemporalGraph::WeightedDegree(NodeId node) const {
  double total = 0.0;
  for (const auto& a : Neighbors(node)) total += a.weight;
  return total;
}

std::vector<size_t> TemporalGraph::Degrees() const {
  std::vector<size_t> d(num_nodes_);
  for (NodeId v = 0; v < num_nodes_; ++v) d[v] = Degree(v);
  return d;
}

}  // namespace ehna
