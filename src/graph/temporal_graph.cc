#include "graph/temporal_graph.h"

#include <algorithm>
#include <limits>
#include <string>

#include "util/logging.h"

namespace ehna {

Status TemporalGraph::ValidateEdgeCount(uint64_t count) {
  if (count > kMaxEdges) {
    return Status::InvalidArgument(
        "edge count " + std::to_string(count) +
        " exceeds the 32-bit EdgeId limit of " + std::to_string(kMaxEdges) +
        " edges; shard the graph or widen EdgeId");
  }
  return Status::OK();
}

Result<TemporalGraph> TemporalGraph::FromEdges(std::vector<TemporalEdge> edges,
                                               NodeId num_nodes,
                                               bool directed) {
  EHNA_RETURN_NOT_OK(ValidateEdgeCount(edges.size()));
  TemporalGraph g;
  g.directed_ = directed;

  NodeId max_id = 0;
  for (const auto& e : edges) {
    if (e.src == e.dst) {
      return Status::InvalidArgument("self-loop on node " +
                                     std::to_string(e.src));
    }
    if (e.weight < 0.0f) {
      return Status::InvalidArgument("negative edge weight");
    }
    max_id = std::max(max_id, std::max(e.src, e.dst));
  }
  if (num_nodes == 0) {
    num_nodes = edges.empty() ? 0 : max_id + 1;
  } else if (!edges.empty() && max_id >= num_nodes) {
    return Status::InvalidArgument("edge endpoint " + std::to_string(max_id) +
                                   " >= num_nodes " +
                                   std::to_string(num_nodes));
  }
  g.num_nodes_ = num_nodes;

  std::stable_sort(edges.begin(), edges.end(),
                   [](const TemporalEdge& a, const TemporalEdge& b) {
                     return a.time < b.time;
                   });
  g.edges_ = std::move(edges);
  g.BuildAdjacency();
  return g;
}

void TemporalGraph::BuildAdjacency() {
  const NodeId num_nodes = num_nodes_;
  if (!edges_.empty()) {
    min_time_ = edges_.front().time;
    max_time_ = edges_.back().time;
  }

  // Count adjacency slots per node directly into the offset table (shifted
  // by one), then prefix-sum in place — no separate counts vector, which at
  // 10⁶ nodes is 8 MB saved off the build's peak.
  adj_offsets_.assign(num_nodes + 1, 0);
  for (const auto& e : edges_) {
    ++adj_offsets_[e.src + 1];
    if (!directed_) ++adj_offsets_[e.dst + 1];
  }
  for (NodeId v = 0; v < num_nodes; ++v) {
    adj_offsets_[v + 1] += adj_offsets_[v];
  }
  adj_.resize(adj_offsets_[num_nodes]);

  // Fill in chronological order: edges_ is time-sorted, so appending each
  // edge to its endpoints' cursors leaves every adjacency list ascending in
  // time without a per-node sort.
  std::vector<size_t> cursor(adj_offsets_.begin(), adj_offsets_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const TemporalEdge& e = edges_[id];
    adj_[cursor[e.src]++] = AdjEntry{e.dst, e.time, e.weight, id};
    if (!directed_) {
      adj_[cursor[e.dst]++] = AdjEntry{e.src, e.time, e.weight, id};
    }
  }

  // Static connectivity index: the same CSR segments with neighbor ids
  // sorted ascending, so HasEdge is a binary search instead of a hash
  // probe. 4 bytes per adjacency slot, vs ~50 per edge for the
  // unordered_set this replaced — the difference between fitting a
  // 10⁷-edge graph's index in cache-friendly flat memory and a gigabyte of
  // hash nodes.
  nbr_sorted_.resize(adj_.size());
  for (size_t i = 0; i < adj_.size(); ++i) nbr_sorted_[i] = adj_[i].neighbor;
  for (NodeId v = 0; v < num_nodes; ++v) {
    std::sort(nbr_sorted_.begin() + adj_offsets_[v],
              nbr_sorted_.begin() + adj_offsets_[v + 1]);
  }
}

std::span<const AdjEntry> TemporalGraph::Neighbors(NodeId node) const {
  EHNA_DCHECK(node < num_nodes_);
  return {adj_.data() + adj_offsets_[node],
          adj_offsets_[node + 1] - adj_offsets_[node]};
}

std::span<const AdjEntry> TemporalGraph::NeighborsBefore(
    NodeId node, Timestamp cutoff) const {
  auto all = Neighbors(node);
  auto it = std::upper_bound(
      all.begin(), all.end(), cutoff,
      [](Timestamp t, const AdjEntry& a) { return t < a.time; });
  return all.subspan(0, static_cast<size_t>(it - all.begin()));
}

size_t TemporalGraph::Degree(NodeId node) const {
  EHNA_DCHECK(node < num_nodes_);
  return adj_offsets_[node + 1] - adj_offsets_[node];
}

bool TemporalGraph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes_) return false;
  return std::binary_search(nbr_sorted_.begin() + adj_offsets_[u],
                            nbr_sorted_.begin() + adj_offsets_[u + 1], v);
}

Result<Timestamp> TemporalGraph::MostRecentInteraction(NodeId node) const {
  auto nbrs = Neighbors(node);
  if (nbrs.empty()) {
    return Status::NotFound("node " + std::to_string(node) + " is isolated");
  }
  return nbrs.back().time;
}

Timestamp TemporalGraph::TimeSpan() const {
  const Timestamp span = max_time_ - min_time_;
  return span > 1e-12 ? span : 1e-12;
}

double TemporalGraph::WeightedDegree(NodeId node) const {
  double total = 0.0;
  for (const auto& a : Neighbors(node)) total += a.weight;
  return total;
}

std::vector<size_t> TemporalGraph::Degrees() const {
  std::vector<size_t> d(num_nodes_);
  for (NodeId v = 0; v < num_nodes_; ++v) d[v] = Degree(v);
  return d;
}

}  // namespace ehna
