#ifndef EHNA_GRAPH_EDGELIST_IO_H_
#define EHNA_GRAPH_EDGELIST_IO_H_

#include <string>
#include <vector>

#include "graph/temporal_graph.h"
#include "util/status.h"

namespace ehna {

/// Parses a whitespace-separated temporal edge list. Each non-empty,
/// non-comment ('#' or '%') line is `src dst time [weight]`. This matches the
/// common format of the SNAP / KONECT temporal datasets the paper uses, so a
/// user with the real Digg/DBLP dumps can load them directly.
///
/// Input is validated strictly: timestamps and weights must be finite (a
/// NaN time would corrupt the chronologically-sorted adjacency and every
/// binary search over it) and any trailing token after the optional weight
/// is rejected. Errors carry the offending `path:line`.
Result<std::vector<TemporalEdge>> ReadEdgeList(const std::string& path);

/// Writes edges as `src dst time weight` lines.
Status WriteEdgeList(const std::string& path,
                     const std::vector<TemporalEdge>& edges);

/// Convenience: ReadEdgeList + TemporalGraph::FromEdges.
Result<TemporalGraph> LoadTemporalGraph(const std::string& path,
                                        bool directed = false);

}  // namespace ehna

#endif  // EHNA_GRAPH_EDGELIST_IO_H_
