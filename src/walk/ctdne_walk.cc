#include "walk/ctdne_walk.h"

#include <algorithm>

#include "util/logging.h"
#include "util/metrics.h"

namespace ehna {

namespace {

/// Suffix of `node`'s (time-ascending) adjacency with time strictly after
/// `cutoff` (CTDNE walks are strictly increasing in time, which also rules
/// out oscillating forever across one timestamp).
std::span<const AdjEntry> NeighborsAfter(const TemporalGraph& g, NodeId node,
                                         Timestamp cutoff) {
  auto all = g.Neighbors(node);
  auto it = std::upper_bound(
      all.begin(), all.end(), cutoff,
      [](Timestamp t, const AdjEntry& a) { return t < a.time; });
  return all.subspan(static_cast<size_t>(it - all.begin()));
}

}  // namespace

CtdneWalkSampler::CtdneWalkSampler(const TemporalGraph* graph,
                                   CtdneWalkConfig config)
    : graph_(graph), config_(config) {
  EHNA_CHECK(graph != nullptr);
  EHNA_CHECK_GE(config_.walk_length, 1);
}

std::vector<NodeId> CtdneWalkSampler::SampleWalk(Rng* rng) const {
  static Counter* const walks_total =
      MetricsRegistry::Global().GetCounter("walk.ctdne.walks");
  static Counter* const steps_total =
      MetricsRegistry::Global().GetCounter("walk.ctdne.steps");
  static Counter* const dead_ends =
      MetricsRegistry::Global().GetCounter("walk.ctdne.dead_ends");

  std::vector<NodeId> walk;
  if (graph_->num_edges() == 0) return walk;

  // Uniform initial edge; walk continues from its destination.
  const TemporalEdge& first =
      graph_->edges()[rng->UniformInt(graph_->num_edges())];
  walk.reserve(config_.walk_length + 1);
  walk.push_back(first.src);
  walk.push_back(first.dst);

  NodeId current = first.dst;
  Timestamp now = first.time;
  for (int step = 2; step <= config_.walk_length; ++step) {
    auto candidates = NeighborsAfter(*graph_, current, now);
    if (candidates.empty()) {
      dead_ends->Add(1);  // temporal frontier exhausted before full length.
      break;
    }
    const AdjEntry& next = candidates[rng->UniformInt(candidates.size())];
    walk.push_back(next.neighbor);
    current = next.neighbor;
    now = next.time;
  }
  walks_total->Add(1);
  steps_total->Add(walk.size() - 1);
  return walk;
}

}  // namespace ehna
