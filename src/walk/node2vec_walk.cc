#include "walk/node2vec_walk.h"

#include "util/logging.h"

namespace ehna {

Node2VecWalkSampler::Node2VecWalkSampler(const TemporalGraph* graph,
                                         Node2VecWalkConfig config)
    : graph_(graph), config_(config) {
  EHNA_CHECK(graph != nullptr);
  EHNA_CHECK_GT(config_.p, 0.0);
  EHNA_CHECK_GT(config_.q, 0.0);
  EHNA_CHECK_GE(config_.walk_length, 1);
}

std::vector<NodeId> Node2VecWalkSampler::SampleWalk(NodeId start,
                                                    Rng* rng) const {
  std::vector<NodeId> walk;
  walk.reserve(config_.walk_length + 1);
  walk.push_back(start);

  NodeId prev = kInvalidNode;
  NodeId current = start;
  std::vector<double> weights;
  for (int step = 0; step < config_.walk_length; ++step) {
    auto nbrs = graph_->Neighbors(current);
    if (nbrs.empty()) break;

    size_t chosen;
    if (prev == kInvalidNode) {
      // First step: weighted by edge weight only.
      double total = 0.0;
      weights.resize(nbrs.size());
      for (size_t i = 0; i < nbrs.size(); ++i) {
        weights[i] = nbrs[i].weight;
        total += weights[i];
      }
      if (total <= 0.0) break;
      double pick = rng->Uniform() * total;
      chosen = nbrs.size() - 1;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        pick -= weights[i];
        if (pick <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      weights.resize(nbrs.size());
      double total = 0.0;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        double beta;
        if (nbrs[i].neighbor == prev) {
          beta = 1.0 / config_.p;
        } else if (graph_->HasEdge(prev, nbrs[i].neighbor)) {
          beta = 1.0;
        } else {
          beta = 1.0 / config_.q;
        }
        weights[i] = beta * nbrs[i].weight;
        total += weights[i];
      }
      if (total <= 0.0) break;
      double pick = rng->Uniform() * total;
      chosen = nbrs.size() - 1;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        pick -= weights[i];
        if (pick <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    prev = current;
    current = nbrs[chosen].neighbor;
    walk.push_back(current);
  }
  return walk;
}

}  // namespace ehna
