#include "walk/walk_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ehna {

std::unordered_map<NodeId, size_t> VisitCounts(
    const std::vector<Walk>& walks) {
  std::unordered_map<NodeId, size_t> counts;
  for (const Walk& w : walks) {
    for (const WalkStep& s : w) ++counts[s.node];
  }
  return counts;
}

WalkCorpusStats ComputeWalkCorpusStats(const std::vector<Walk>& walks,
                                       int requested_steps) {
  WalkCorpusStats stats;
  stats.num_walks = walks.size();
  if (walks.empty()) return stats;

  size_t total_steps = 0;
  size_t early = 0;
  size_t backtracks = 0;
  size_t interior_steps = 0;
  stats.min_length = std::numeric_limits<size_t>::max();

  Timestamp min_time = std::numeric_limits<Timestamp>::max();
  Timestamp max_time = std::numeric_limits<Timestamp>::lowest();
  std::vector<Timestamp> edge_times;
  for (const Walk& w : walks) {
    const size_t steps = w.empty() ? 0 : w.size() - 1;
    total_steps += steps;
    stats.min_length = std::min(stats.min_length, steps);
    stats.max_length = std::max(stats.max_length, steps);
    if (requested_steps > 0 && steps < static_cast<size_t>(requested_steps)) {
      ++early;
    }
    for (size_t j = 2; j < w.size(); ++j) {
      ++interior_steps;
      if (w[j].node == w[j - 2].node) ++backtracks;
    }
    for (size_t j = 1; j < w.size(); ++j) {
      edge_times.push_back(w[j].edge_time);
      min_time = std::min(min_time, w[j].edge_time);
      max_time = std::max(max_time, w[j].edge_time);
    }
  }
  stats.mean_length =
      static_cast<double>(total_steps) / static_cast<double>(walks.size());
  if (requested_steps > 0) {
    stats.early_termination_rate =
        static_cast<double>(early) / static_cast<double>(walks.size());
  }
  stats.backtrack_rate =
      interior_steps == 0
          ? 0.0
          : static_cast<double>(backtracks) /
                static_cast<double>(interior_steps);

  const auto counts = VisitCounts(walks);
  stats.distinct_nodes = counts.size();
  double total_visits = 0.0;
  for (const auto& [node, c] : counts) total_visits += c;
  for (const auto& [node, c] : counts) {
    const double p = static_cast<double>(c) / total_visits;
    stats.visit_entropy -= p * std::log(p);
  }

  if (!edge_times.empty() && max_time > min_time) {
    double age_sum = 0.0;
    const double span = max_time - min_time;
    for (Timestamp t : edge_times) {
      age_sum += (max_time - t) / span;
    }
    stats.mean_normalized_age = age_sum / static_cast<double>(edge_times.size());
  }
  return stats;
}

}  // namespace ehna
