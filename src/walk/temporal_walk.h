#ifndef EHNA_WALK_TEMPORAL_WALK_H_
#define EHNA_WALK_TEMPORAL_WALK_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "walk/walk.h"

namespace ehna {

/// Configuration of the EHNA temporal random walk (§IV.A).
struct TemporalWalkConfig {
  /// Return parameter: 1/p multiplies the weight of stepping back to the
  /// previous node (d_uw = 0 in Eq. 2). p = +inf forbids backtracking.
  double p = 1.0;
  /// In-out parameter: 1/q multiplies the weight of moving two hops away
  /// from the previous node (d_uw = 2); q > 1 biases toward BFS.
  double q = 1.0;
  /// Number of steps per walk (paper default l = 10). The realized walk may
  /// be shorter if it terminates early (no relevant neighbor).
  int walk_length = 10;
  /// Walks per target node (paper default k = 10).
  int num_walks = 10;
  /// Decay rate of the kernel K (Eq. 1) in *normalized-time* units: the
  /// kernel is exp(-decay_rate * (t_ref - t) / time_span). With
  /// decay_rate = time_span the paper's raw exp(-(t_ref - t)) is recovered;
  /// exposing the rate keeps the kernel numerically sane for second- or
  /// year-resolution timestamps alike. See DESIGN.md §2.
  double decay_rate = 5.0;
  /// When false (paper's EHNA-RW ablation pairs with this), the kernel K is
  /// replaced by the static edge weight — i.e. a plain node2vec walk over
  /// the historical subgraph.
  bool use_time_decay = true;
};

/// Samples EHNA temporal random walks: starting from a target node `x` with
/// reference time `t_ref` (the timestamp of the edge formation being
/// analyzed), the walk moves only across historical edges whose timestamps
/// are non-increasing along the walk (Definition 2's relevance constraint),
/// with per-step transition weights
///   beta(u,w; p,q) * w_(v,w) * exp(-decay_rate * (t_ref - t_(v,w)) / span)
/// (Eq. 1-2). Walks terminate early when no relevant neighbor exists.
class TemporalWalkSampler {
 public:
  /// `graph` must outlive the sampler.
  TemporalWalkSampler(const TemporalGraph* graph, TemporalWalkConfig config);

  /// Samples a single walk of at most `config.walk_length` steps (plus the
  /// starting node). The first candidate set is `NeighborsBefore(start,
  /// t_ref)`.
  Walk SampleWalk(NodeId start, Timestamp ref_time, Rng* rng) const;

  /// Samples `config.num_walks` walks from `start`.
  std::vector<Walk> SampleWalks(NodeId start, Timestamp ref_time,
                                Rng* rng) const;

  /// One (start node, reference time) anchor of a batched sampling request.
  struct Anchor {
    NodeId start = 0;
    Timestamp ref_time = 0.0;
  };

  /// Samples `config.num_walks` walks for every anchor, fanning the anchors
  /// out across `pool` (serial when `pool` is null or single-threaded).
  /// Anchor i draws from the independent stream Rng::Stream(seed, i), so
  /// the output is bitwise-identical for a fixed seed regardless of thread
  /// count or scheduling.
  std::vector<std::vector<Walk>> SampleWalksBatch(
      const std::vector<Anchor>& anchors, uint64_t seed,
      ThreadPool* pool) const;

  const TemporalWalkConfig& config() const { return config_; }

 private:
  /// Unnormalized transition weight for the candidate entry `cand` when the
  /// walk sits at `v`, arrived from `prev` (kInvalidNode on the first step,
  /// which drops the beta factor per Eq. 1).
  double TransitionWeight(NodeId prev, Timestamp prev_time, NodeId v,
                          const AdjEntry& cand, Timestamp ref_time) const;

  const TemporalGraph* graph_;
  TemporalWalkConfig config_;
  double inv_span_;
};

}  // namespace ehna

#endif  // EHNA_WALK_TEMPORAL_WALK_H_
