#ifndef EHNA_WALK_WALK_STATS_H_
#define EHNA_WALK_WALK_STATS_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "graph/temporal_graph.h"
#include "walk/walk.h"

namespace ehna {

/// Summary statistics of a sampled walk corpus — instrumentation for
/// understanding what the temporal random walk actually explores (used by
/// tests, examples, and when tuning p/q/decay on a new dataset).
struct WalkCorpusStats {
  size_t num_walks = 0;
  /// Length counted in steps (nodes - 1).
  double mean_length = 0.0;
  size_t min_length = 0;
  size_t max_length = 0;
  /// Fraction of walks that terminated before the configured length
  /// (length < requested steps).
  double early_termination_rate = 0.0;
  /// Number of distinct nodes visited anywhere in the corpus.
  size_t distinct_nodes = 0;
  /// Shannon entropy (nats) of the node-visit distribution; higher means
  /// broader exploration.
  double visit_entropy = 0.0;
  /// Fraction of steps that return to the node visited two steps earlier
  /// (the behaviour the p parameter controls).
  double backtrack_rate = 0.0;
  /// Mean of the traversed edges' ages relative to the most recent edge in
  /// the corpus, normalized by the span of traversed timestamps: 0 = only
  /// the newest edges, 1 = only the oldest (the behaviour the decay rate
  /// controls).
  double mean_normalized_age = 0.0;
};

/// Computes statistics over `walks`. `requested_steps` is the configured
/// walk length (for the early-termination rate); pass 0 to skip that
/// metric.
WalkCorpusStats ComputeWalkCorpusStats(const std::vector<Walk>& walks,
                                       int requested_steps);

/// Per-node visit counts across the corpus.
std::unordered_map<NodeId, size_t> VisitCounts(const std::vector<Walk>& walks);

}  // namespace ehna

#endif  // EHNA_WALK_WALK_STATS_H_
