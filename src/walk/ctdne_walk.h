#ifndef EHNA_WALK_CTDNE_WALK_H_
#define EHNA_WALK_CTDNE_WALK_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "util/rng.h"
#include "walk/walk.h"

namespace ehna {

/// Configuration of the CTDNE time-respecting walk (Nguyen et al., WWW'18
/// companion), the paper's third baseline: walks start from a uniformly
/// sampled edge and only traverse edges with non-decreasing timestamps, so
/// every walk moves forward in time.
struct CtdneWalkConfig {
  int walk_length = 80;
  /// Walks whose realized length falls below this are discarded by callers
  /// (CTDNE requires a minimum context; we default to window size).
  int min_length = 5;
};

/// Samples time-increasing walks with uniform initial-edge and uniform
/// next-edge selection (the paper's §V.C setting: "uniform sampling for
/// initial edge selections and node selections").
class CtdneWalkSampler {
 public:
  CtdneWalkSampler(const TemporalGraph* graph, CtdneWalkConfig config);

  /// Samples one walk starting from a uniformly drawn edge. May be shorter
  /// than `walk_length` when the temporal frontier dead-ends.
  std::vector<NodeId> SampleWalk(Rng* rng) const;

  const CtdneWalkConfig& config() const { return config_; }

 private:
  const TemporalGraph* graph_;
  CtdneWalkConfig config_;
};

}  // namespace ehna

#endif  // EHNA_WALK_CTDNE_WALK_H_
