#ifndef EHNA_WALK_WALK_H_
#define EHNA_WALK_WALK_H_

#include <vector>

#include "graph/temporal_graph.h"

namespace ehna {

/// One visited position in a walk. For step i > 0, `edge_time` and
/// `edge_weight` describe the edge traversed from step i-1 to step i; for the
/// starting step they are 0 (there is no incoming edge).
struct WalkStep {
  NodeId node = 0;
  Timestamp edge_time = 0.0;
  float edge_weight = 0.0f;

  bool operator==(const WalkStep&) const = default;
};

/// A (temporal) random walk: the chronological record of visited nodes and
/// the timestamps of the edges used, which the EHNA attention coefficients
/// (Eq. 3-4) consume.
using Walk = std::vector<WalkStep>;

/// Extracts just the node sequence (what skip-gram baselines consume).
inline std::vector<NodeId> WalkNodes(const Walk& walk) {
  std::vector<NodeId> nodes;
  nodes.reserve(walk.size());
  for (const auto& s : walk) nodes.push_back(s.node);
  return nodes;
}

}  // namespace ehna

#endif  // EHNA_WALK_WALK_H_
