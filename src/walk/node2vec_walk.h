#ifndef EHNA_WALK_NODE2VEC_WALK_H_
#define EHNA_WALK_NODE2VEC_WALK_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "util/rng.h"
#include "walk/walk.h"

namespace ehna {

/// Configuration of the static second-order biased walk of Grover &
/// Leskovec (node2vec). With p = q = 1 this degenerates to DeepWalk's
/// uniform first-order walk.
struct Node2VecWalkConfig {
  double p = 1.0;
  double q = 1.0;
  int walk_length = 80;
  /// Walks started per node per epoch.
  int walks_per_node = 10;
};

/// Samples node2vec walks over the static projection of the graph
/// (timestamps ignored, weights respected). Transition weights are computed
/// on the fly (O(degree) per step) rather than via precomputed per-edge
/// alias tables, trading a small constant for O(V+E) memory.
class Node2VecWalkSampler {
 public:
  Node2VecWalkSampler(const TemporalGraph* graph, Node2VecWalkConfig config);

  /// Samples one walk (node sequence) starting at `start`. Returns just
  /// {start} if the node is isolated.
  std::vector<NodeId> SampleWalk(NodeId start, Rng* rng) const;

  const Node2VecWalkConfig& config() const { return config_; }

 private:
  const TemporalGraph* graph_;
  Node2VecWalkConfig config_;
};

}  // namespace ehna

#endif  // EHNA_WALK_NODE2VEC_WALK_H_
