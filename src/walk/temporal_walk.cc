#include "walk/temporal_walk.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/metrics.h"

namespace ehna {
namespace {

/// Degree above which candidate selection switches from a linear scan of
/// the inclusive prefix sums to binary search. Below this the scan wins on
/// branch predictability and cache residency.
constexpr size_t kBinarySearchDegree = 16;

/// Per-thread scratch for the transition-weight prefix sums. SampleWalk is
/// on the trainer's per-edge hot path and runs concurrently from worker
/// shards; a function-local vector would pay one allocation per call and
/// serialize the workers on the allocator.
std::vector<double>& PrefixScratch() {
  static thread_local std::vector<double> scratch;
  return scratch;
}

}  // namespace

TemporalWalkSampler::TemporalWalkSampler(const TemporalGraph* graph,
                                         TemporalWalkConfig config)
    : graph_(graph), config_(config), inv_span_(1.0 / graph->TimeSpan()) {
  EHNA_CHECK(graph != nullptr);
  EHNA_CHECK_GT(config_.p, 0.0);
  EHNA_CHECK_GT(config_.q, 0.0);
  EHNA_CHECK_GE(config_.walk_length, 1);
  EHNA_CHECK_GE(config_.num_walks, 1);
}

double TemporalWalkSampler::TransitionWeight(NodeId prev, Timestamp prev_time,
                                             NodeId v, const AdjEntry& cand,
                                             Timestamp ref_time) const {
  (void)prev_time;
  (void)v;
  double kernel = cand.weight;
  if (config_.use_time_decay) {
    const double dt = (ref_time - cand.time) * inv_span_;
    kernel *= std::exp(-config_.decay_rate * (dt > 0.0 ? dt : 0.0));
  }
  if (prev == kInvalidNode) return kernel;  // first step: no beta factor.

  double beta;
  if (cand.neighbor == prev) {
    beta = std::isinf(config_.p) ? 0.0 : 1.0 / config_.p;  // d_uw = 0.
  } else if (graph_->HasEdge(prev, cand.neighbor)) {
    beta = 1.0;  // d_uw = 1.
  } else {
    beta = 1.0 / config_.q;  // d_uw = 2.
  }
  return beta * kernel;
}

Walk TemporalWalkSampler::SampleWalk(NodeId start, Timestamp ref_time,
                                     Rng* rng) const {
  // Corpus telemetry (DESIGN.md §8). Counts accumulate locally and flush
  // once per walk, so the per-step hot loop stays untouched.
  static Counter* const walks_total =
      MetricsRegistry::Global().GetCounter("walk.temporal.walks");
  static Counter* const steps_total =
      MetricsRegistry::Global().GetCounter("walk.temporal.steps");
  static Counter* const early_total =
      MetricsRegistry::Global().GetCounter("walk.temporal.early_terminations");
  static Counter* const rejected_total =
      MetricsRegistry::Global().GetCounter("walk.temporal.rejected_steps");
  // The degenerate anchor case: every edge in the start node's history is
  // at-or-after `ref_time`, so the very first NeighborsBefore query comes
  // back empty and the walk is the bare anchor (length 1, zero RNG draws).
  // Downstream this is what routes an aggregation to the GraphSAGE-style
  // fallback; the dedicated counter makes the case observable instead of
  // blending into ordinary mid-walk early terminations.
  static Counter* const no_history_total =
      MetricsRegistry::Global().GetCounter("walk.temporal.no_history_anchors");
  uint64_t steps_taken = 0;
  bool terminated_early = false;
  bool rejected = false;

  Walk walk;
  walk.reserve(config_.walk_length + 1);
  walk.push_back(WalkStep{start, 0.0, 0.0f});

  NodeId prev = kInvalidNode;
  NodeId current = start;
  Timestamp frontier_time = ref_time;

  std::vector<double>& prefix = PrefixScratch();
  for (int step = 0; step < config_.walk_length; ++step) {
    // Relevance constraint (Definition 2): only historical edges no newer
    // than the edge we just traversed (or the target edge, on step one).
    auto candidates = graph_->NeighborsBefore(current, frontier_time);
    if (candidates.empty()) {  // early termination (§IV.A).
      terminated_early = true;
      break;
    }

    // Inclusive prefix sums of the transition weights: prefix[i] holds
    // w_0 + ... + w_i accumulated left to right, so the final entry is the
    // same `total` the plain running sum would produce (same add order).
    prefix.resize(candidates.size());
    double total = 0.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      total += TransitionWeight(prev, frontier_time, current, candidates[i],
                                ref_time);
      prefix[i] = total;
    }
    if (total <= 0.0) {  // all moves forbidden (e.g. p = inf dead end).
      rejected = true;
      break;
    }

    // The chosen candidate is the first i with prefix[i] >= pick (the
    // prefix array is non-decreasing, so ties on zero-weight candidates
    // resolve to the earliest index — lower_bound's first-occurrence
    // semantics). Linear scan and binary search read the same array, so
    // the selected index is identical on both sides of the degree cutoff.
    const double pick = rng->Uniform() * total;
    size_t chosen;
    if (candidates.size() <= kBinarySearchDegree) {
      chosen = candidates.size() - 1;
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (prefix[i] >= pick) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<size_t>(
          std::lower_bound(prefix.begin(),
                           prefix.begin() + candidates.size(), pick) -
          prefix.begin());
      if (chosen >= candidates.size()) chosen = candidates.size() - 1;
    }

    const AdjEntry& next = candidates[chosen];
    walk.push_back(WalkStep{next.neighbor, next.time, next.weight});
    prev = current;
    current = next.neighbor;
    frontier_time = next.time;
    ++steps_taken;
  }

  walks_total->Add(1);
  steps_total->Add(steps_taken);
  if (terminated_early) early_total->Add(1);
  if (terminated_early && steps_taken == 0) no_history_total->Add(1);
  if (rejected) rejected_total->Add(1);
  return walk;
}

std::vector<Walk> TemporalWalkSampler::SampleWalks(NodeId start,
                                                   Timestamp ref_time,
                                                   Rng* rng) const {
  std::vector<Walk> walks;
  walks.reserve(config_.num_walks);
  for (int i = 0; i < config_.num_walks; ++i) {
    walks.push_back(SampleWalk(start, ref_time, rng));
  }
  return walks;
}

std::vector<std::vector<Walk>> TemporalWalkSampler::SampleWalksBatch(
    const std::vector<Anchor>& anchors, uint64_t seed,
    ThreadPool* pool) const {
  EHNA_TRACE_PHASE("walk.phase.sample_batch");
  std::vector<std::vector<Walk>> out(anchors.size());
  const auto sample_one = [&](size_t i) {
    Rng rng = Rng::Stream(seed, static_cast<uint64_t>(i));
    out[i] = SampleWalks(anchors[i].start, anchors[i].ref_time, &rng);
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(anchors.size(), sample_one);
  } else {
    for (size_t i = 0; i < anchors.size(); ++i) sample_one(i);
  }
  return out;
}

}  // namespace ehna
