#include "nn/arena.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "util/logging.h"

namespace ehna {

namespace {

constexpr size_t kAlignment = 64;

thread_local TensorArena* tls_current = nullptr;

size_t AlignUp(size_t n) { return (n + kAlignment - 1) & ~(kAlignment - 1); }

uint64_t ThisThreadHash() {
  return static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

TensorArena::TensorArena(size_t initial_bytes)
    : next_block_bytes_(std::max<size_t>(AlignUp(initial_bytes), kAlignment)) {
}

TensorArena::~TensorArena() = default;

TensorArena* TensorArena::Current() { return tls_current; }

TensorArena::Block& TensorArena::AddBlock(size_t min_bytes) {
  size_t size = std::max(next_block_bytes_, AlignUp(min_bytes));
  Block block;
  // Over-allocate by the alignment so the bump pointer can start aligned
  // regardless of where operator new[] placed the block.
  block.data = std::make_unique<char[]>(size + kAlignment);
  block.size = size;
  block.used = 0;
  blocks_.push_back(std::move(block));
  bytes_reserved_ += size;
  next_block_bytes_ = size * 2;
  return blocks_.back();
}

float* TensorArena::Allocate(int64_t n) {
  EHNA_DCHECK(n >= 0);
  const size_t bytes = AlignUp(static_cast<size_t>(n) * sizeof(float));
  // Find room, advancing through existing blocks before growing.
  while (current_ < blocks_.size() &&
         blocks_[current_].used + bytes > blocks_[current_].size) {
    ++current_;
  }
  if (current_ >= blocks_.size()) {
    AddBlock(bytes);
    current_ = blocks_.size() - 1;
  }
  Block& block = blocks_[current_];
  const uintptr_t base = reinterpret_cast<uintptr_t>(block.data.get());
  const uintptr_t aligned = (base + kAlignment - 1) & ~(kAlignment - 1);
  float* ptr = reinterpret_cast<float*>(aligned + block.used);
  block.used += bytes;
  bytes_in_use_ += bytes;
  high_water_bytes_ = std::max(high_water_bytes_, bytes_in_use_);
  return ptr;
}

void TensorArena::Reset() {
  EHNA_CHECK_EQ(live_scopes_.load(std::memory_order_relaxed), 0);
  for (Block& b : blocks_) b.used = 0;
  current_ = 0;
  bytes_in_use_ = 0;
}

TensorArena::Scope::Scope(TensorArena* arena)
    : arena_(arena), prev_(tls_current) {
  tls_current = arena;
  if (arena_ != nullptr) {
    const uint64_t self = ThisThreadHash();
    if (arena_->live_scopes_.fetch_add(1, std::memory_order_relaxed) == 0) {
      arena_->owner_thread_.store(self, std::memory_order_relaxed);
    } else {
      // Nested activation is fine on the owning thread; a second thread
      // activating a live arena would interleave two tapes in one bump
      // allocator — fail fast instead of corrupting both.
      EHNA_CHECK_EQ(arena_->owner_thread_.load(std::memory_order_relaxed),
                    self);
    }
  }
}

TensorArena::Scope::~Scope() {
  tls_current = prev_;
  if (arena_ != nullptr) {
    arena_->live_scopes_.fetch_sub(1, std::memory_order_relaxed);
  }
}

TensorArena::Bypass::Bypass() : prev_(tls_current) { tls_current = nullptr; }

TensorArena::Bypass::~Bypass() { tls_current = prev_; }

}  // namespace ehna
