#include "nn/batchnorm.h"

#include <cmath>

#include "nn/ops.h"

namespace ehna {

BatchNorm1d::BatchNorm1d(int64_t features, float momentum, float eps)
    : features_(features),
      momentum_(momentum),
      eps_(eps),
      running_mean_(features),
      running_var_(Tensor::Full(features, 1.0f)) {
  gamma_ = Var::Leaf(Tensor::Full(features, 1.0f), /*requires_grad=*/true);
  beta_ = Var::Leaf(Tensor(features), /*requires_grad=*/true);
}

Var BatchNorm1d::ForwardWithStats(const Var& x, const Tensor& mean,
                                  const Tensor& inv_std,
                                  bool batch_stats) const {
  const Tensor& in = x.value();
  const int64_t batch = in.rows();
  const int64_t f = features_;

  Tensor out(batch, f);
  for (int64_t i = 0; i < batch; ++i) {
    const float* xr = in.Row(i);
    float* orow = out.Row(i);
    const float* gm = gamma_.value().data();
    const float* bt = beta_.value().data();
    for (int64_t j = 0; j < f; ++j) {
      orow[j] = gm[j] * (xr[j] - mean[j]) * inv_std[j] + bt[j];
    }
  }

  Var gamma = gamma_;
  Var beta = beta_;
  Tensor mean_c = mean;
  Tensor inv_std_c = inv_std;
  return Var::Op(
      std::move(out), {x, gamma, beta},
      [x, gamma, beta, mean_c, inv_std_c, batch_stats](const Tensor& g,
                                                       const Tensor&) {
        const Tensor& in = x.value();
        const int64_t batch = in.rows();
        const int64_t f = in.cols();
        const float* gm = gamma.value().data();

        // Recompute x_hat.
        Tensor xhat(batch, f);
        for (int64_t i = 0; i < batch; ++i) {
          const float* xr = in.Row(i);
          float* hr = xhat.Row(i);
          for (int64_t j = 0; j < f; ++j) {
            hr[j] = (xr[j] - mean_c[j]) * inv_std_c[j];
          }
        }

        Tensor dgamma(f), dbeta(f);
        for (int64_t i = 0; i < batch; ++i) {
          const float* grow = g.Row(i);
          const float* hr = xhat.Row(i);
          for (int64_t j = 0; j < f; ++j) {
            dgamma[j] += grow[j] * hr[j];
            dbeta[j] += grow[j];
          }
        }
        gamma.AccumulateGrad(dgamma);
        beta.AccumulateGrad(dbeta);

        Tensor dx(batch, f);
        if (!batch_stats) {
          // Statistics are constants: a per-feature affine map.
          for (int64_t i = 0; i < batch; ++i) {
            const float* grow = g.Row(i);
            float* dr = dx.Row(i);
            for (int64_t j = 0; j < f; ++j) {
              dr[j] = grow[j] * gm[j] * inv_std_c[j];
            }
          }
        } else {
          // Full backward through the batch mean and variance.
          Tensor sum_dxhat(f), sum_dxhat_xhat(f);
          for (int64_t i = 0; i < batch; ++i) {
            const float* grow = g.Row(i);
            const float* hr = xhat.Row(i);
            for (int64_t j = 0; j < f; ++j) {
              const float dxh = grow[j] * gm[j];
              sum_dxhat[j] += dxh;
              sum_dxhat_xhat[j] += dxh * hr[j];
            }
          }
          const float inv_b = 1.0f / static_cast<float>(batch);
          for (int64_t i = 0; i < batch; ++i) {
            const float* grow = g.Row(i);
            const float* hr = xhat.Row(i);
            float* dr = dx.Row(i);
            for (int64_t j = 0; j < f; ++j) {
              const float dxh = grow[j] * gm[j];
              dr[j] = inv_std_c[j] * inv_b *
                      (static_cast<float>(batch) * dxh - sum_dxhat[j] -
                       hr[j] * sum_dxhat_xhat[j]);
            }
          }
        }
        x.AccumulateGrad(dx);
      },
      "batch_norm");
}

Var BatchNorm1d::ForwardPopulation(const Var& x, bool update_stats) {
  const Tensor& in = x.value();
  EHNA_CHECK_EQ(in.rank(), 2);
  EHNA_CHECK_EQ(in.cols(), features_);
  const int64_t batch = in.rows();

  if (update_stats && batch >= 1) {
    Tensor mean(features_), var(features_);
    for (int64_t i = 0; i < batch; ++i) {
      const float* xr = in.Row(i);
      for (int64_t j = 0; j < features_; ++j) mean[j] += xr[j];
    }
    mean.ScaleInPlace(1.0f / static_cast<float>(batch));
    for (int64_t i = 0; i < batch; ++i) {
      const float* xr = in.Row(i);
      for (int64_t j = 0; j < features_; ++j) {
        const float d = xr[j] - mean[j];
        var[j] += d * d;
      }
    }
    var.ScaleInPlace(1.0f / static_cast<float>(batch));
    if (!stats_initialized_) {
      running_mean_ = mean;
      running_var_ = var;
      stats_initialized_ = true;
    } else {
      for (int64_t j = 0; j < features_; ++j) {
        running_mean_[j] =
            (1.0f - momentum_) * running_mean_[j] + momentum_ * mean[j];
        running_var_[j] =
            (1.0f - momentum_) * running_var_[j] + momentum_ * var[j];
      }
    }
  }
  Tensor inv_std(features_);
  for (int64_t j = 0; j < features_; ++j) {
    inv_std[j] = 1.0f / std::sqrt(running_var_[j] + eps_);
  }
  return ForwardWithStats(x, running_mean_, inv_std, /*batch_stats=*/false);
}

Var BatchNorm1d::Forward(const Var& x, bool training) {
  const Tensor& in = x.value();
  EHNA_CHECK_EQ(in.rank(), 2);
  EHNA_CHECK_EQ(in.cols(), features_);
  const int64_t batch = in.rows();

  const bool use_batch_stats = training && batch > 1;
  Tensor mean(features_), var(features_);
  if (use_batch_stats) {
    for (int64_t i = 0; i < batch; ++i) {
      const float* xr = in.Row(i);
      for (int64_t j = 0; j < features_; ++j) mean[j] += xr[j];
    }
    mean.ScaleInPlace(1.0f / static_cast<float>(batch));
    for (int64_t i = 0; i < batch; ++i) {
      const float* xr = in.Row(i);
      for (int64_t j = 0; j < features_; ++j) {
        const float d = xr[j] - mean[j];
        var[j] += d * d;
      }
    }
    var.ScaleInPlace(1.0f / static_cast<float>(batch));

    if (!stats_initialized_) {
      running_mean_ = mean;
      running_var_ = var;
      stats_initialized_ = true;
    } else {
      for (int64_t j = 0; j < features_; ++j) {
        running_mean_[j] =
            (1.0f - momentum_) * running_mean_[j] + momentum_ * mean[j];
        running_var_[j] =
            (1.0f - momentum_) * running_var_[j] + momentum_ * var[j];
      }
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  Tensor inv_std(features_);
  for (int64_t j = 0; j < features_; ++j) {
    inv_std[j] = 1.0f / std::sqrt(var[j] + eps_);
  }
  return ForwardWithStats(x, mean, inv_std, use_batch_stats);
}

void BatchNorm1d::SetRunningStats(const Tensor& mean, const Tensor& var,
                                  bool initialized) {
  EHNA_CHECK_EQ(mean.numel(), features_);
  EHNA_CHECK_EQ(var.numel(), features_);
  running_mean_ = mean;
  running_var_ = var;
  stats_initialized_ = initialized;
}

std::vector<Var> BatchNorm1d::Parameters() const { return {gamma_, beta_}; }

}  // namespace ehna
