#include "nn/batchnorm.h"

#include <cmath>

#include "nn/kernels.h"
#include "nn/ops.h"

namespace ehna {

BatchNorm1d::BatchNorm1d(int64_t features, float momentum, float eps)
    : features_(features),
      momentum_(momentum),
      eps_(eps),
      running_mean_(features),
      running_var_(Tensor::Full(features, 1.0f)) {
  gamma_ = Var::Leaf(Tensor::Full(features, 1.0f), /*requires_grad=*/true);
  beta_ = Var::Leaf(Tensor(features), /*requires_grad=*/true);
}

namespace {

/// Batch mean and (biased) variance over the rows of `in`, via kernels.
void BatchStats(const Tensor& in, Tensor* mean, Tensor* var) {
  const int64_t batch = in.rows();
  const int64_t f = in.cols();
  for (int64_t i = 0; i < batch; ++i) {
    kernels::Axpy(f, 1.0f, in.Row(i), mean->data());
  }
  kernels::Scale(f, 1.0f / static_cast<float>(batch), mean->data());
  Tensor diff = Tensor::Uninit(f);
  for (int64_t i = 0; i < batch; ++i) {
    kernels::Sub(f, in.Row(i), mean->data(), diff.data());
    kernels::MulAdd(f, diff.data(), diff.data(), var->data(), var->data());
  }
  kernels::Scale(f, 1.0f / static_cast<float>(batch), var->data());
}

}  // namespace

Var BatchNorm1d::ForwardWithStats(const Var& x, const Tensor& mean,
                                  const Tensor& inv_std,
                                  bool batch_stats) const {
  const Tensor& in = x.value();
  const int64_t batch = in.rows();
  const int64_t f = features_;

  Tensor out = Tensor::Uninit(batch, f);
  for (int64_t i = 0; i < batch; ++i) {
    kernels::BatchNormApplyRow(f, in.Row(i), mean.data(), inv_std.data(),
                               gamma_.value().data(), beta_.value().data(),
                               out.Row(i));
  }

  Var gamma = gamma_;
  Var beta = beta_;
  Tensor mean_c = mean;
  Tensor inv_std_c = inv_std;
  return Var::Op(
      std::move(out), {x, gamma, beta},
      [x, gamma, beta, mean_c, inv_std_c, batch_stats](const Tensor& g,
                                                       const Tensor&) {
        const Tensor& in = x.value();
        const int64_t batch = in.rows();
        const int64_t f = in.cols();
        const float* gm = gamma.value().data();

        // Recompute x_hat.
        Tensor xhat = Tensor::Uninit(batch, f);
        for (int64_t i = 0; i < batch; ++i) {
          kernels::NormalizeRow(f, in.Row(i), mean_c.data(), inv_std_c.data(),
                                xhat.Row(i));
        }

        Tensor dgamma(f), dbeta(f);
        for (int64_t i = 0; i < batch; ++i) {
          kernels::MulAdd(f, g.Row(i), xhat.Row(i), dgamma.data(),
                          dgamma.data());
          kernels::Axpy(f, 1.0f, g.Row(i), dbeta.data());
        }
        gamma.AccumulateGrad(dgamma);
        beta.AccumulateGrad(dbeta);

        Tensor dx = Tensor::Uninit(batch, f);
        if (!batch_stats) {
          // Statistics are constants: a per-feature affine map.
          for (int64_t i = 0; i < batch; ++i) {
            kernels::Mul(f, g.Row(i), gm, dx.Row(i));
            kernels::Mul(f, dx.Row(i), inv_std_c.data(), dx.Row(i));
          }
        } else {
          // Full backward through the batch mean and variance.
          Tensor sum_dxhat(f), sum_dxhat_xhat(f);
          Tensor dxh = Tensor::Uninit(f);
          for (int64_t i = 0; i < batch; ++i) {
            kernels::Mul(f, g.Row(i), gm, dxh.data());
            kernels::Axpy(f, 1.0f, dxh.data(), sum_dxhat.data());
            kernels::MulAdd(f, dxh.data(), xhat.Row(i),
                            sum_dxhat_xhat.data(), sum_dxhat_xhat.data());
          }
          const float inv_b = 1.0f / static_cast<float>(batch);
          for (int64_t i = 0; i < batch; ++i) {
            kernels::BatchNormBackwardRow(
                f, static_cast<float>(batch), inv_b, g.Row(i), gm,
                xhat.Row(i), inv_std_c.data(), sum_dxhat.data(),
                sum_dxhat_xhat.data(), dx.Row(i));
          }
        }
        x.AccumulateGrad(dx);
      },
      "batch_norm");
}

void BatchNorm1d::UpdateRunningStats(const Tensor& mean, const Tensor& var) {
  if (!stats_initialized_) {
    // Same-numel copy-assign reuses the heap buffers of the running
    // statistics, so they stay off the batch arena.
    running_mean_ = mean;
    running_var_ = var;
    stats_initialized_ = true;
  } else {
    kernels::Scale(features_, 1.0f - momentum_, running_mean_.data());
    kernels::Axpy(features_, momentum_, mean.data(), running_mean_.data());
    kernels::Scale(features_, 1.0f - momentum_, running_var_.data());
    kernels::Axpy(features_, momentum_, var.data(), running_var_.data());
  }
}

Var BatchNorm1d::ForwardPopulation(const Var& x, bool update_stats) {
  const Tensor& in = x.value();
  EHNA_CHECK_EQ(in.rank(), 2);
  EHNA_CHECK_EQ(in.cols(), features_);
  const int64_t batch = in.rows();

  if (update_stats && batch >= 1) {
    Tensor mean(features_), var(features_);
    BatchStats(in, &mean, &var);
    UpdateRunningStats(mean, var);
  }
  Tensor inv_std = Tensor::Uninit(features_);
  kernels::InvSqrt(features_, running_var_.data(), eps_, inv_std.data());
  return ForwardWithStats(x, running_mean_, inv_std, /*batch_stats=*/false);
}

Var BatchNorm1d::Forward(const Var& x, bool training) {
  const Tensor& in = x.value();
  EHNA_CHECK_EQ(in.rank(), 2);
  EHNA_CHECK_EQ(in.cols(), features_);
  const int64_t batch = in.rows();

  const bool use_batch_stats = training && batch > 1;
  Tensor mean(features_), var(features_);
  if (use_batch_stats) {
    BatchStats(in, &mean, &var);
    UpdateRunningStats(mean, var);
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  Tensor inv_std = Tensor::Uninit(features_);
  kernels::InvSqrt(features_, var.data(), eps_, inv_std.data());
  return ForwardWithStats(x, mean, inv_std, use_batch_stats);
}

Var BatchNorm1d::ForwardWithStatsDeferred(
    const Var& x, const Tensor& mean, const Tensor& inv_std, bool batch_stats,
    std::shared_ptr<Tensor> dgamma, std::shared_ptr<Tensor> dbeta) const {
  const Tensor& in = x.value();
  const int64_t batch = in.rows();
  const int64_t f = features_;
  EHNA_CHECK(dgamma != nullptr && dbeta != nullptr);

  Tensor out = Tensor::Uninit(batch, f);
  for (int64_t i = 0; i < batch; ++i) {
    kernels::BatchNormApplyRow(f, in.Row(i), mean.data(), inv_std.data(),
                               gamma_.value().data(), beta_.value().data(),
                               out.Row(i));
  }

  Var gamma = gamma_;
  Tensor mean_c = mean;
  Tensor inv_std_c = inv_std;
  // Same math as ForwardWithStats, but dgamma/dbeta land in the caller's
  // pre-zeroed buffers (one pair per call, so the contents match the
  // legacy per-call tensors exactly); the replay sentinel feeds them into
  // the parameter leaves in canonical aggregation order.
  return Var::Op(
      std::move(out), {x},
      [x, gamma, mean_c, inv_std_c, batch_stats, dgamma, dbeta](
          const Tensor& g, const Tensor&) {
        const Tensor& in = x.value();
        const int64_t batch = in.rows();
        const int64_t f = in.cols();
        const float* gm = gamma.value().data();

        // Recompute x_hat.
        Tensor xhat = Tensor::Uninit(batch, f);
        for (int64_t i = 0; i < batch; ++i) {
          kernels::NormalizeRow(f, in.Row(i), mean_c.data(), inv_std_c.data(),
                                xhat.Row(i));
        }

        for (int64_t i = 0; i < batch; ++i) {
          kernels::MulAdd(f, g.Row(i), xhat.Row(i), dgamma->data(),
                          dgamma->data());
          kernels::Axpy(f, 1.0f, g.Row(i), dbeta->data());
        }

        Tensor dx = Tensor::Uninit(batch, f);
        if (!batch_stats) {
          // Statistics are constants: a per-feature affine map.
          for (int64_t i = 0; i < batch; ++i) {
            kernels::Mul(f, g.Row(i), gm, dx.Row(i));
            kernels::Mul(f, dx.Row(i), inv_std_c.data(), dx.Row(i));
          }
        } else {
          // Full backward through the batch mean and variance.
          Tensor sum_dxhat(f), sum_dxhat_xhat(f);
          Tensor dxh = Tensor::Uninit(f);
          for (int64_t i = 0; i < batch; ++i) {
            kernels::Mul(f, g.Row(i), gm, dxh.data());
            kernels::Axpy(f, 1.0f, dxh.data(), sum_dxhat.data());
            kernels::MulAdd(f, dxh.data(), xhat.Row(i),
                            sum_dxhat_xhat.data(), sum_dxhat_xhat.data());
          }
          const float inv_b = 1.0f / static_cast<float>(batch);
          for (int64_t i = 0; i < batch; ++i) {
            kernels::BatchNormBackwardRow(
                f, static_cast<float>(batch), inv_b, g.Row(i), gm,
                xhat.Row(i), inv_std_c.data(), sum_dxhat.data(),
                sum_dxhat_xhat.data(), dx.Row(i));
          }
        }
        x.AccumulateGrad(dx);
      },
      "batch_norm_deferred");
}

Var BatchNorm1d::ForwardDeferred(const Var& x, bool training,
                                 std::shared_ptr<Tensor> dgamma,
                                 std::shared_ptr<Tensor> dbeta) {
  const Tensor& in = x.value();
  EHNA_CHECK_EQ(in.rank(), 2);
  EHNA_CHECK_EQ(in.cols(), features_);
  const int64_t batch = in.rows();

  const bool use_batch_stats = training && batch > 1;
  Tensor mean(features_), var(features_);
  if (use_batch_stats) {
    BatchStats(in, &mean, &var);
    UpdateRunningStats(mean, var);
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  Tensor inv_std = Tensor::Uninit(features_);
  kernels::InvSqrt(features_, var.data(), eps_, inv_std.data());
  return ForwardWithStatsDeferred(x, mean, inv_std, use_batch_stats,
                                  std::move(dgamma), std::move(dbeta));
}

Var BatchNorm1d::ForwardPopulationDeferred(const Var& x, bool update_stats,
                                           std::shared_ptr<Tensor> dgamma,
                                           std::shared_ptr<Tensor> dbeta) {
  const Tensor& in = x.value();
  EHNA_CHECK_EQ(in.rank(), 2);
  EHNA_CHECK_EQ(in.cols(), features_);
  const int64_t batch = in.rows();

  if (update_stats && batch >= 1) {
    Tensor mean(features_), var(features_);
    BatchStats(in, &mean, &var);
    UpdateRunningStats(mean, var);
  }
  Tensor inv_std = Tensor::Uninit(features_);
  kernels::InvSqrt(features_, running_var_.data(), eps_, inv_std.data());
  return ForwardWithStatsDeferred(x, running_mean_, inv_std,
                                  /*batch_stats=*/false, std::move(dgamma),
                                  std::move(dbeta));
}

void BatchNorm1d::SetRunningStats(const Tensor& mean, const Tensor& var,
                                  bool initialized) {
  EHNA_CHECK_EQ(mean.numel(), features_);
  EHNA_CHECK_EQ(var.numel(), features_);
  running_mean_ = mean;
  running_var_ = var;
  stats_initialized_ = initialized;
}

std::vector<Var> BatchNorm1d::Parameters() const { return {gamma_, beta_}; }

}  // namespace ehna
