#ifndef EHNA_NN_TENSOR_H_
#define EHNA_NN_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/arena.h"
#include "util/logging.h"

namespace ehna {

/// A dense, row-major float32 tensor of rank 1 or 2. This is the numeric
/// workhorse under the autograd layer; it deliberately supports only the
/// shapes the EHNA model needs (vectors and matrices) in exchange for
/// simple, auditable kernels (src/nn/kernels.h).
///
/// Memory: each tensor owns its buffer. When a TensorArena is active on
/// the constructing thread the buffer is bump-allocated from the arena
/// (destruction is then a no-op — the trainer reclaims whole tapes at
/// batch boundaries); otherwise it lives on the heap. Copy-assignment
/// into an existing tensor of identical numel reuses the destination
/// buffer, which keeps long-lived state (running statistics, synced
/// replica parameters) out of the arena even when the source is
/// arena-backed. See DESIGN.md §9 for the lifetime rules.
class Tensor {
 public:
  /// Empty (rank-1, zero-length) tensor.
  Tensor() = default;

  /// 1-D tensor of `n` zeros.
  explicit Tensor(int64_t n) : rows_(n), cols_(1), rank_(1) {
    EHNA_CHECK_GE(n, 0);
    AllocateZeroed(n);
  }

  /// 2-D tensor of zeros.
  Tensor(int64_t rows, int64_t cols) : rows_(rows), cols_(cols), rank_(2) {
    EHNA_CHECK_GE(rows, 0);
    EHNA_CHECK_GE(cols, 0);
    AllocateZeroed(rows * cols);
  }

  ~Tensor() { Release(); }

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;

  /// 1-D / 2-D tensors with uninitialized contents, for outputs every
  /// element of which is about to be overwritten by a kernel.
  static Tensor Uninit(int64_t n);
  static Tensor Uninit(int64_t rows, int64_t cols);

  /// 1-D tensor from values.
  static Tensor FromVector(const std::vector<float>& values);

  /// 2-D tensor from row-major values; `values.size()` must equal
  /// rows * cols.
  static Tensor FromVector(int64_t rows, int64_t cols,
                           const std::vector<float>& values);

  /// 1-D or 2-D filled with `value`.
  static Tensor Full(int64_t n, float value);
  static Tensor Full(int64_t rows, int64_t cols, float value);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int rank() const { return rank_; }
  int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }
  /// True when the buffer is arena-backed (diagnostics/tests).
  bool arena_backed() const { return arena_; }

  /// True if shapes (rank and dims) match.
  bool SameShape(const Tensor& other) const {
    return rank_ == other.rank_ && rows_ == other.rows_ &&
           cols_ == other.cols_;
  }

  float* data() { return data_; }
  const float* data() const { return data_; }

  /// 1-D element access.
  float& operator[](int64_t i) {
    EHNA_DCHECK(i >= 0 && i < numel());
    return data_[i];
  }
  float operator[](int64_t i) const {
    EHNA_DCHECK(i >= 0 && i < numel());
    return data_[i];
  }

  /// 2-D element access (also usable on 1-D with j==0).
  float& at(int64_t i, int64_t j) {
    EHNA_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i * cols_ + j];
  }
  float at(int64_t i, int64_t j) const {
    EHNA_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Pointer to the start of row `i` (2-D).
  float* Row(int64_t i) { return data_ + i * cols_; }
  const float* Row(int64_t i) const { return data_ + i * cols_; }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Sets every element to zero.
  void Zero() { Fill(0.0f); }

  /// this += other (same shape required).
  void AddInPlace(const Tensor& other);

  /// this += alpha * other.
  void Axpy(float alpha, const Tensor& other);

  /// this *= alpha.
  void ScaleInPlace(float alpha);

  /// Sum of elements.
  float Sum() const;

  /// Euclidean norm.
  float Norm() const;

  /// Reinterprets a rank-1 tensor of length n as [1, n] or vice versa; the
  /// buffer is shared semantics-free (copy).
  Tensor Reshape(int64_t rows, int64_t cols) const;

  /// Debug rendering, e.g. "[2x3]{1, 2, 3, ...}".
  std::string ToString(int max_elems = 8) const;

  bool operator==(const Tensor& other) const;

 private:
  /// Binds a fresh buffer of `n` floats from the active arena (if any) or
  /// the heap. Requires the tensor to currently own no buffer.
  void AllocateRaw(int64_t n);
  void AllocateZeroed(int64_t n);
  void Release();

  int64_t rows_ = 0;
  int64_t cols_ = 1;
  int rank_ = 1;
  int64_t numel_ = 0;
  float* data_ = nullptr;
  bool arena_ = false;
};

/// out = a @ b for a [m,k] and b [k,n]. Shapes checked.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// out = a @ b^T for a [m,k], b [n,k].
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);

/// out = a^T @ b for a [k,m], b [k,n].
Tensor MatMulTransposeA(const Tensor& a, const Tensor& b);

/// Transpose of a 2-D tensor.
Tensor Transpose(const Tensor& a);

}  // namespace ehna

#endif  // EHNA_NN_TENSOR_H_
