#ifndef EHNA_NN_KERNELS_H_
#define EHNA_NN_KERNELS_H_

#include <cstdint>

namespace ehna::kernels {

// Compute layer under the autodiff stack (DESIGN.md §9). Every dense loop
// in nn/ and core/ routes through these kernels; op code holds no matmul
// or activation loops of its own. The kernels operate on raw row-major
// float32 buffers so they are reusable from forward passes, backward
// closures, and optimizers alike, and are trivially benchmarkable
// (bench/bench_nn_kernels.cc).
//
// Determinism contract: each kernel uses one fixed, documented
// accumulation order, independent of data values (no zero-skipping) and
// of how many trainer threads exist (kernels are single-threaded; the
// trainer parallelizes across replicas, never inside a kernel). Two
// orders are used:
//  - GEMM/GEMV/reduction kernels that write one output element per inner
//    product accumulate partial products with 16 vertical fp32 lanes
//    (lane l sums elements i where i mod 16 == l, each lane in strictly
//    increasing i) combined in a fixed pairwise tree (8, 4, 2, 1), with a
//    strictly-increasing tail; or
//  - kernels that stream rank-1 updates into an output row (GemmNN,
//    GemmTN, GemvT) add contributions in strictly increasing k per output
//    element.
// Given identical inputs the outputs are bitwise identical run-to-run,
// across thread counts, and across batch shards.
//
// ISA dispatch: the hot set below (the GEMM/GEMV/Dot group, the fused LSTM
// gates, and the fused attention softmax) is implemented once per ISA —
// a pinned-scalar reference and hand-written AVX2/FMA microkernels — and
// routed through a per-process function-pointer table selected at first
// use (nn/cpu_dispatch.h; override with EHNA_KERNEL_ISA=scalar|avx2). Both
// implementations realize the accumulation orders above with identical
// fused-multiply-add placement, so the determinism contract extends across
// ISAs: scalar and AVX2 runs produce bitwise-identical outputs, enforced
// by tests/kernels_isa_test.cc and the kernel-isa-equivalence CI job. The
// fused LSTM/attention kernels evaluate exp/sigmoid/tanh with a pinned
// polynomial (kernels_common.h), not libm, as libm's scalar curves cannot
// be reproduced lanewise in vector code.

// ------------------------------------------------------------------ GEMM

/// c[m,n] (+)= a[m,k] @ b[k,n]. Cache-blocked over k and n panels;
/// accumulation order per output element is strictly increasing k.
void GemmNN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, bool accumulate);

/// c[m,n] (+)= a[m,k] @ b[n,k]^T (rows of b are the reduction vectors).
void GemmNT(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, bool accumulate);

/// c[m,n] (+)= a[k,m]^T @ b[k,n].
void GemmTN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, bool accumulate);

/// y[m] (+)= a[m,n] @ x[n].
void Gemv(int64_t m, int64_t n, const float* a, const float* x, float* y,
          bool accumulate);

/// y[n] (+)= a[m,n]^T @ x[m].
void GemvT(int64_t m, int64_t n, const float* a, const float* x, float* y,
           bool accumulate);

/// <x, y> with the documented 16-lane vertical accumulation order.
float Dot(const float* x, const float* y, int64_t n);

// ------------------------------------------- reduced-precision (serving)
//
// Scoring kernels for the quantized serving tier (nn/quant.h, DESIGN.md
// §14). ISA-dispatched like the hot set above, with the same bitwise
// cross-ISA guarantee: the int8 kernels accumulate exactly in int32 (any
// lane arrangement gives identical bits; callers keep n <= 2^17 so the
// sum cannot wrap), and the bf16 kernels widen each stored uint16 to fp32
// by an exact bit shift and then run the documented 16-lane fma order.

/// Σ x_i · y_i in int32 over int8 operands.
int32_t DotI8(const int8_t* x, const int8_t* y, int64_t n);

/// y[r] = <a_row_r, x> for `rows` contiguous int8 rows of width n.
void GemvI8(int64_t rows, int64_t n, const int8_t* a, const int8_t* x,
            int32_t* y);

/// Σ widen(x_i) · y_i over a bf16 row and an fp32 query.
float DotBf16(const uint16_t* x, const float* y, int64_t n);

/// y[r] = <widen(a_row_r), x> for `rows` contiguous bf16 rows of width n.
void GemvBf16(int64_t rows, int64_t n, const uint16_t* a, const float* x,
              float* y);

// ---------------------------------------------------- elementwise / BLAS1

void Fill(float* x, int64_t n, float value);
void Copy(const float* src, float* dst, int64_t n);
/// y += alpha * x.
void Axpy(int64_t n, float alpha, const float* x, float* y);
/// out = alpha * x (write, not accumulate; `out` may alias `x`).
void ScaledCopy(int64_t n, float alpha, const float* x, float* out);
/// out = w*a + (1-w)*b for a scalar weight w (row select/blend).
void Lerp(int64_t n, float w, const float* a, const float* b, float* out);
/// x *= alpha.
void Scale(int64_t n, float alpha, float* x);
/// out = a + b / a - b / a * b (elementwise; `out` may alias `a` or `b`).
void Add(int64_t n, const float* a, const float* b, float* out);
void Sub(int64_t n, const float* a, const float* b, float* out);
void Mul(int64_t n, const float* a, const float* b, float* out);
/// out = a * b + c (elementwise fused chain; `out` may alias inputs).
void MulAdd(int64_t n, const float* a, const float* b, const float* c,
            float* out);
/// out = x + value.
void AddScalar(int64_t n, const float* x, float value, float* out);
/// Strictly-increasing-index scalar sum.
float Sum(const float* x, int64_t n);
/// Σ x_i^2 accumulated in double, increasing index.
double SumSquares(const float* x, int64_t n);

// -------------------------------------------------------------- optimizer

/// Fused Adam update, one pass over the parameter: given the gradient g and
/// precomputed bias corrections bc1/bc2, updates the moments m, v and the
/// parameter p in place:
///   m = beta1*m + (1-beta1)*g
///   v = beta2*v + (1-beta2)*g^2
///   p -= lr * (m/bc1) / (sqrt(v/bc2) + eps)
void AdamUpdate(int64_t n, float lr, float beta1, float beta2, float eps,
                float bc1, float bc2, const float* g, float* m, float* v,
                float* p);

// ------------------------------------------------------------ activations

/// Forward maps (out may alias x); backward maps compute gx from the
/// upstream gradient g and the forward *output* y (or input x for Log /
/// LogSigmoid), writing (not accumulating) into gx, which may alias g.
void SigmoidForward(int64_t n, const float* x, float* out);
void SigmoidBackward(int64_t n, const float* g, const float* y, float* gx);
void TanhForward(int64_t n, const float* x, float* out);
void TanhBackward(int64_t n, const float* g, const float* y, float* gx);
void ReluForward(int64_t n, const float* x, float* out);
void ReluBackward(int64_t n, const float* g, const float* y, float* gx);
void ExpForward(int64_t n, const float* x, float* out);
void ExpBackward(int64_t n, const float* g, const float* y, float* gx);
void LogForward(int64_t n, const float* x, float* out);
void LogBackward(int64_t n, const float* g, const float* x, float* gx);
void LogSigmoidForward(int64_t n, const float* x, float* out);
void LogSigmoidBackward(int64_t n, const float* g, const float* x, float* gx);

/// Numerically stable softmax over a length-n vector (max-shifted).
void SoftmaxForward(int64_t n, const float* x, float* out);
/// gx = y * (g - <g, y>).
void SoftmaxBackward(int64_t n, const float* g, const float* y, float* gx);

// ------------------------------------------------------- batch-norm rows

/// out = 1 / sqrt(x + eps), elementwise.
void InvSqrt(int64_t n, const float* x, float eps, float* out);

/// out = gamma * (x - mean) * inv_std + beta over one feature row.
void BatchNormApplyRow(int64_t f, const float* x, const float* mean,
                       const float* inv_std, const float* gamma,
                       const float* beta, float* out);

/// xhat = (x - mean) * inv_std over one feature row.
void NormalizeRow(int64_t f, const float* x, const float* mean,
                  const float* inv_std, float* xhat);

/// Fused per-row batch-norm input gradient (training statistics):
///   dx = inv_std * inv_b * (batch * g*gamma - sum_dxhat
///                           - xhat * sum_dxhat_xhat)
void BatchNormBackwardRow(int64_t f, float batch, float inv_b, const float* g,
                          const float* gamma, const float* xhat,
                          const float* inv_std, const float* sum_dxhat,
                          const float* sum_dxhat_xhat, float* dx);

// ------------------------------------------------------- fused LSTM gates

/// Fused LSTM gate kernel: one pass over the batch computing the i/f/g/o
/// activations and the cell update (Algorithm 1's stacked-LSTM step).
///
///   z [b,4h] : pre-activations, column blocks i|f|g|o
///   c_prev [b,h]
///   ifgo [b,4h] : OUT, activated gates (stashed for backward)
///   tanh_c [b,h]: OUT, tanh of the new cell state (stashed for backward)
///   hc [b,2h]   : OUT, columns [0,h) = new hidden state h', columns
///                 [h,2h) = new cell state c'
void LstmGateForward(int64_t b, int64_t h, const float* z,
                     const float* c_prev, float* ifgo, float* tanh_c,
                     float* hc);

/// Backward of LstmGateForward. `ghc` [b,2h] packs dL/dh' | dL/dc'.
/// Writes dL/dz into gz [b,4h] and dL/dc_prev into gc_prev [b,h].
void LstmGateBackward(int64_t b, int64_t h, const float* ghc,
                      const float* ifgo, const float* tanh_c,
                      const float* c_prev, float* gz, float* gc_prev);

// -------------------------------------------------- fused attention score

/// Fused node/walk attention weights (Eqs. 3-4): for each of the l rows of
/// emb [l,d], computes the squared distance to target [d], scales by
/// neg_coeffs [l] (the negated temporal coefficients), and applies a
/// stable softmax over the l logits. Writes the attention weights to
/// alpha [l] in one pass.
void AttentionSoftmaxForward(int64_t l, int64_t d, const float* emb,
                             const float* target, const float* neg_coeffs,
                             float* alpha);

/// Backward of AttentionSoftmaxForward: given upstream g [l] and the
/// forward output alpha, accumulates (+=) into gemb [l,d] and gtarget [d].
/// The squared-distance rows are recomputed from emb/target rather than
/// stashed.
void AttentionSoftmaxBackward(int64_t l, int64_t d, const float* g,
                              const float* alpha, const float* emb,
                              const float* target, const float* neg_coeffs,
                              float* gemb, float* gtarget);

}  // namespace ehna::kernels

#endif  // EHNA_NN_KERNELS_H_
