#ifndef EHNA_NN_PCA_H_
#define EHNA_NN_PCA_H_

#include "nn/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace ehna {

/// Result of a principal-component projection.
struct PcaResult {
  /// [n, k] coordinates of each input row in the leading principal
  /// components.
  Tensor projected;
  /// [k, d] row-major principal axes (unit vectors).
  Tensor components;
  /// Variance captured by each component, descending.
  std::vector<double> explained_variance;
};

/// Projects the rows of `data` [n, d] onto their `k` leading principal
/// components using power iteration with deflation on the covariance —
/// no external linear-algebra dependency. Intended for embedding
/// visualization (one of the paper's motivating applications): project to
/// k = 2 and plot. Deterministic given `rng`.
Result<PcaResult> ComputePca(const Tensor& data, int k, Rng* rng,
                             int power_iterations = 100);

}  // namespace ehna

#endif  // EHNA_NN_PCA_H_
