#ifndef EHNA_NN_KERNELS_COMMON_H_
#define EHNA_NN_KERNELS_COMMON_H_

#include <bit>
#include <cmath>
#include <cstdint>

// Shared per-element math for the dispatched kernel implementations
// (DESIGN.md §9). Both ISA translation units — kernels_scalar.cc and
// kernels_avx2.cc — include this header: the scalar TU uses the helpers for
// whole loops, the AVX2 TU for remainder tails and for the transcendental
// lane recipe its vector code mirrors instruction-for-instruction.
//
// Everything here pins one exact operation sequence. Each multiply-add that
// the AVX2 path fuses is written as std::fmaf (single rounding, identical
// to vfmadd on every lane); everything else is written as the plain
// mul/add/sub/div the vector code performs. Both ISA TUs compile with
// -ffp-contract=off so the compiler can neither fuse nor unfuse anything
// behind our backs, which is what makes scalar and AVX2 outputs bitwise
// identical rather than merely close.

namespace ehna::kernels::detail {

// ------------------------------------------------- pinned exp / sigmoid / tanh
//
// Cephes-style expf: n = round(x·log2 e), r = x - n·ln2 (Cody-Waite split),
// e^r by a degree-5 polynomial, scale by 2^n through the exponent bits.
// Every step maps 1:1 onto an AVX2 instruction (mul, round-to-nearest-even,
// two fmas for the reduction, fma Horner chain, integer exponent splice),
// so the vector version in kernels_avx2.cc produces identical bits lane by
// lane. Accuracy ~2 ulp over the clamped range. Assumes the default
// round-to-nearest FP environment and finite inputs.

inline constexpr float kExpLo = -87.33654f;   // exp() underflows to ~FLT_MIN
inline constexpr float kExpHi = 87.33654f;    // exp() stays finite
inline constexpr float kLog2e = 1.44269504088896341f;
inline constexpr float kNegLn2Hi = -0.693359375f;
inline constexpr float kNegLn2Lo = 2.12194440e-4f;
inline constexpr float kExpP0 = 1.9875691500e-4f;
inline constexpr float kExpP1 = 1.3981999507e-3f;
inline constexpr float kExpP2 = 8.3334519073e-3f;
inline constexpr float kExpP3 = 4.1665795894e-2f;
inline constexpr float kExpP4 = 1.6666665459e-1f;
inline constexpr float kExpP5 = 5.0000001201e-1f;

inline float ExpPinned(float x) {
  x = std::min(std::max(x, kExpLo), kExpHi);
  const float t = x * kLog2e;
  const float nf = std::nearbyintf(t);  // round half to even, like vroundps
  float r = std::fmaf(nf, kNegLn2Hi, x);
  r = std::fmaf(nf, kNegLn2Lo, r);
  float p = kExpP0;
  p = std::fmaf(p, r, kExpP1);
  p = std::fmaf(p, r, kExpP2);
  p = std::fmaf(p, r, kExpP3);
  p = std::fmaf(p, r, kExpP4);
  p = std::fmaf(p, r, kExpP5);
  const float r2 = r * r;
  float e = std::fmaf(r2, p, r);
  e = e + 1.0f;
  const int32_t n = static_cast<int32_t>(nf);  // nf is integral: exact
  const float scale = std::bit_cast<float>((n + 127) << 23);
  return e * scale;
}

inline float SigmoidPinned(float x) {
  const float e = ExpPinned(-x);
  return 1.0f / (1.0f + e);
}

/// Odd-symmetric by construction (computed on |x|, sign restored by bit
/// copy), so TanhPinned(-x) is exactly -TanhPinned(x).
inline float TanhPinned(float x) {
  const float ax = std::fabs(x);
  const float e = ExpPinned(ax * 2.0f);  // ExpPinned clamps internally
  const float t = (e - 1.0f) / (e + 1.0f);
  return std::copysign(t, x);
}

// ------------------------------------------------------ 16-lane reductions
//
// The documented inner-product order (kernels.h): lane l sums elements with
// i mod 16 == l in ascending i, lanes combine in the fixed pairwise tree
// (8, 4, 2, 1), then a strictly-ascending fma tail. The 16 lanes are
// exactly two 256-bit registers; the tree's width-8 step is the ymm+ymm
// add, width-4 the 128-bit half add, widths 2 and 1 in-register shuffles.

inline float DotLanes16(const float* x, const float* y, int64_t n) {
  float acc[16] = {};
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (int l = 0; l < 16; ++l) acc[l] = std::fmaf(x[i + l], y[i + l], acc[l]);
  }
  for (int w = 8; w > 0; w /= 2) {
    for (int l = 0; l < w; ++l) acc[l] += acc[l + w];
  }
  float s = acc[0];
  for (; i < n; ++i) s = std::fmaf(x[i], y[i], s);
  return s;
}

/// Ascending-index fma tail used by the AVX2 dot after its vector tree.
inline float DotTail(float s, const float* x, const float* y, int64_t i0,
                     int64_t n) {
  for (int64_t i = i0; i < n; ++i) s = std::fmaf(x[i], y[i], s);
  return s;
}

/// Squared distance ||e - t||^2 in the same 16-lane order (attention logits).
inline float SqDistLanes16(const float* e, const float* t, int64_t d) {
  float acc[16] = {};
  int64_t j = 0;
  for (; j + 16 <= d; j += 16) {
    for (int l = 0; l < 16; ++l) {
      const float diff = e[j + l] - t[j + l];
      acc[l] = std::fmaf(diff, diff, acc[l]);
    }
  }
  for (int w = 8; w > 0; w /= 2) {
    for (int l = 0; l < w; ++l) acc[l] += acc[l + w];
  }
  float s = acc[0];
  for (; j < d; ++j) {
    const float diff = e[j] - t[j];
    s = std::fmaf(diff, diff, s);
  }
  return s;
}

inline float SqDistTail(float s, const float* e, const float* t, int64_t j0,
                        int64_t d) {
  for (int64_t j = j0; j < d; ++j) {
    const float diff = e[j] - t[j];
    s = std::fmaf(diff, diff, s);
  }
  return s;
}

// --------------------------------------------- reduced-precision primitives
//
// bf16 storage is the upper 16 bits of an fp32; widening back is an exact
// bit shift, so the only rounding in the bf16 serving path happens once, at
// quantization time (Bf16FromF32 in nn/quant.h, round-to-nearest-even).
// The widening dot below runs the same 16-lane order as DotLanes16 over the
// widened values; its AVX2 twin widens with a vector shift and runs the
// identical fma tree, so the two agree bitwise.

inline float Bf16ToF32(uint16_t b) {
  return std::bit_cast<float>(static_cast<uint32_t>(b) << 16);
}

inline float DotBf16Lanes16(const uint16_t* x, const float* y, int64_t n) {
  float acc[16] = {};
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (int l = 0; l < 16; ++l) {
      acc[l] = std::fmaf(Bf16ToF32(x[i + l]), y[i + l], acc[l]);
    }
  }
  for (int w = 8; w > 0; w /= 2) {
    for (int l = 0; l < w; ++l) acc[l] += acc[l + w];
  }
  float s = acc[0];
  for (; i < n; ++i) s = std::fmaf(Bf16ToF32(x[i]), y[i], s);
  return s;
}

/// Ascending-index fma tail used by the AVX2 bf16 dot after its vector tree.
inline float DotBf16Tail(float s, const uint16_t* x, const float* y,
                         int64_t i0, int64_t n) {
  for (int64_t i = i0; i < n; ++i) s = std::fmaf(Bf16ToF32(x[i]), y[i], s);
  return s;
}

/// Ascending-index int32 tail shared by the int8 dot implementations.
/// Integer addition is exact and associative, so unlike the fp32 kernels
/// the int8 lane arrangement is free — any order gives the same bits as
/// this plain loop (the scalar reference runs it over the whole vector).
inline int32_t DotI8Tail(int32_t s, const int8_t* x, const int8_t* y,
                         int64_t i0, int64_t n) {
  for (int64_t i = i0; i < n; ++i) {
    s += static_cast<int32_t>(x[i]) * static_cast<int32_t>(y[i]);
  }
  return s;
}

// ------------------------------------------------------- LSTM gate elements
//
// One fused gate element (kernels.h LstmGateForward layout): shared between
// the scalar kernel (all j) and the AVX2 kernel (j tail). The vector code
// performs the same sequence lanewise: three sigmoids, tanh, i*g product,
// fma cell update, cell tanh, o*tanh product.

inline void LstmGateForwardSpan(int64_t j0, int64_t j1, int64_t h,
                                const float* zr, const float* cp, float* ar,
                                float* tc, float* hr, float* cr) {
  for (int64_t j = j0; j < j1; ++j) {
    const float iv = SigmoidPinned(zr[j]);
    const float fv = SigmoidPinned(zr[h + j]);
    const float gv = TanhPinned(zr[2 * h + j]);
    const float ov = SigmoidPinned(zr[3 * h + j]);
    const float ig = iv * gv;
    const float cv = std::fmaf(fv, cp[j], ig);
    const float tv = TanhPinned(cv);
    ar[j] = iv;
    ar[h + j] = fv;
    ar[2 * h + j] = gv;
    ar[3 * h + j] = ov;
    tc[j] = tv;
    cr[j] = cv;
    hr[j] = ov * tv;
  }
}

inline void LstmGateBackwardSpan(int64_t j0, int64_t j1, int64_t h,
                                 const float* gh, const float* gc,
                                 const float* ar, const float* tc,
                                 const float* cp, float* gzr, float* gcp) {
  for (int64_t j = j0; j < j1; ++j) {
    const float iv = ar[j];
    const float fv = ar[h + j];
    const float gv = ar[2 * h + j];
    const float ov = ar[3 * h + j];
    const float tv = tc[j];
    // dc = gc + gh*ov*(1 - tv^2), with (1 - tv^2) as a single fnmadd.
    const float one_m_tv2 = std::fmaf(-tv, tv, 1.0f);
    const float gho = gh[j] * ov;
    const float dc = std::fmaf(gho, one_m_tv2, gc[j]);
    const float do_ = gh[j] * tv;
    const float dcg = dc * gv;
    const float dcc = dc * cp[j];
    const float dci = dc * iv;
    gzr[j] = dcg * (iv * (1.0f - iv));
    gzr[h + j] = dcc * (fv * (1.0f - fv));
    gzr[2 * h + j] = dci * std::fmaf(-gv, gv, 1.0f);
    gzr[3 * h + j] = do_ * (ov * (1.0f - ov));
    gcp[j] = dc * fv;
  }
}

/// Attention backward over columns [j0, j1): gemb += 2*ddist*diff,
/// gtarget -= 2*ddist*diff, each as one fused op (fma / fnmadd).
inline void AttnBackwardSpan(int64_t j0, int64_t j1, float two_ddist,
                             const float* er, const float* target, float* ger,
                             float* gtarget) {
  for (int64_t j = j0; j < j1; ++j) {
    const float diff = er[j] - target[j];
    ger[j] = std::fmaf(two_ddist, diff, ger[j]);
    gtarget[j] = std::fmaf(-two_ddist, diff, gtarget[j]);
  }
}

}  // namespace ehna::kernels::detail

#endif  // EHNA_NN_KERNELS_COMMON_H_
