#ifndef EHNA_NN_INIT_H_
#define EHNA_NN_INIT_H_

#include "nn/tensor.h"
#include "util/rng.h"

namespace ehna {

/// Fills `t` uniformly in [lo, hi).
void UniformInit(Tensor* t, float lo, float hi, Rng* rng);

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void XavierInit(Tensor* t, int64_t fan_in, int64_t fan_out, Rng* rng);

/// Gaussian N(0, stddev^2).
void NormalInit(Tensor* t, float stddev, Rng* rng);

}  // namespace ehna

#endif  // EHNA_NN_INIT_H_
