#ifndef EHNA_NN_CPU_DISPATCH_H_
#define EHNA_NN_CPU_DISPATCH_H_

#include <cstdint>
#include <string>

// Runtime CPU-feature dispatch for the dense kernel hot set (DESIGN.md §9).
// One binary carries several implementations of the kernels below — a
// portable pinned-scalar reference and, when compiled in, hand-written
// AVX2/FMA microkernels — and picks one per-process function-pointer table
// at first use. Both tables implement the same fixed accumulation orders,
// so the choice never changes a single output bit; it only changes speed
// (tests/kernels_isa_test.cc and the kernel-isa-equivalence CI job enforce
// this bitwise).
//
// Selection policy (resolved once, at the first kernel call):
//   EHNA_KERNEL_ISA=scalar   force the scalar reference table
//   EHNA_KERNEL_ISA=avx2     force AVX2 (fatal if the CPU lacks AVX2/FMA or
//                            the build omitted the AVX2 TU — a forced run
//                            must never silently fall back, or the CI
//                            equivalence gate would compare scalar against
//                            itself)
//   unset / "auto"           AVX2 when compiled in and the CPU supports
//                            AVX2+FMA, scalar otherwise
// The selected ISA is logged once and exported through the metrics registry
// as the gauge "kernels.isa.avx2" (1 when the AVX2 table is active).

namespace ehna::kernels {

enum class KernelIsa { kScalar = 0, kAvx2 = 1 };

const char* KernelIsaName(KernelIsa isa);

/// Per-kernel function pointers for the dispatched hot set. Signatures
/// mirror the public kernels.h entry points (which are now thin wrappers
/// around the active table).
struct KernelTable {
  void (*gemm_nn)(int64_t m, int64_t n, int64_t k, const float* a,
                  const float* b, float* c, bool accumulate);
  void (*gemm_nt)(int64_t m, int64_t n, int64_t k, const float* a,
                  const float* b, float* c, bool accumulate);
  void (*gemm_tn)(int64_t m, int64_t n, int64_t k, const float* a,
                  const float* b, float* c, bool accumulate);
  void (*gemv)(int64_t m, int64_t n, const float* a, const float* x, float* y,
               bool accumulate);
  void (*gemv_t)(int64_t m, int64_t n, const float* a, const float* x,
                 float* y, bool accumulate);
  float (*dot)(const float* x, const float* y, int64_t n);
  void (*lstm_gate_forward)(int64_t b, int64_t h, const float* z,
                            const float* c_prev, float* ifgo, float* tanh_c,
                            float* hc);
  void (*lstm_gate_backward)(int64_t b, int64_t h, const float* ghc,
                             const float* ifgo, const float* tanh_c,
                             const float* c_prev, float* gz, float* gc_prev);
  void (*attention_softmax_forward)(int64_t l, int64_t d, const float* emb,
                                    const float* target,
                                    const float* neg_coeffs, float* alpha);
  void (*attention_softmax_backward)(int64_t l, int64_t d, const float* g,
                                     const float* alpha, const float* emb,
                                     const float* target,
                                     const float* neg_coeffs, float* gemb,
                                     float* gtarget);
  // Reduced-precision serving kernels (DESIGN.md §14). The int8 kernels
  // accumulate exactly in int32 (integer addition is associative, so any
  // lane arrangement yields the same bits; inputs are bounded so the sum
  // cannot overflow below n = 2^17). The bf16 kernels widen each stored
  // uint16 to fp32 exactly (bit shift) and then run the documented 16-lane
  // fma reduction, so scalar and AVX2 agree bitwise like the fp32 dot.
  int32_t (*dot_i8)(const int8_t* x, const int8_t* y, int64_t n);
  void (*gemv_i8)(int64_t rows, int64_t n, const int8_t* a, const int8_t* x,
                  int32_t* y);
  float (*dot_bf16)(const uint16_t* x, const float* y, int64_t n);
  void (*gemv_bf16)(int64_t rows, int64_t n, const uint16_t* a,
                    const float* x, float* y);
};

/// The pinned-scalar reference table (always available).
const KernelTable& ScalarKernels();

/// The AVX2/FMA table, or nullptr when the build omitted kernels_avx2.cc
/// (EHNA_DISABLE_AVX2=ON or a non-x86 target). Callers must still check
/// CpuSupportsAvx2Fma() before executing through a non-null pointer.
const KernelTable* Avx2KernelsOrNull();

/// True when this build compiled the AVX2 translation unit.
bool Avx2KernelsCompiled();

/// cpuid probe: does the host support both AVX2 and FMA?
bool CpuSupportsAvx2Fma();

/// Pure selection policy, unit-testable without touching process state.
/// `env` is the EHNA_KERNEL_ISA value (may be null). On a forced ISA that
/// is unavailable, `ok` is false and `note` says why; the process-level
/// resolver treats that as fatal.
struct IsaDecision {
  KernelIsa isa = KernelIsa::kScalar;
  bool forced = false;
  bool ok = true;
  std::string note;
};
IsaDecision ResolveKernelIsa(const char* env, bool cpu_ok, bool compiled);

/// The process-wide active table, resolved once from the environment and
/// cpuid on first call (fatal on a forced-but-unavailable ISA).
const KernelTable& ActiveKernels();

/// The ISA behind ActiveKernels().
KernelIsa ActiveIsa();

}  // namespace ehna::kernels

#endif  // EHNA_NN_CPU_DISPATCH_H_
