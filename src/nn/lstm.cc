#include "nn/lstm.h"

#include "nn/init.h"
#include "nn/ops.h"

namespace ehna {

LstmCell::LstmCell(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  EHNA_CHECK_GT(input_dim, 0);
  EHNA_CHECK_GT(hidden_dim, 0);
  Tensor w_ih(input_dim, 4 * hidden_dim);
  Tensor w_hh(hidden_dim, 4 * hidden_dim);
  XavierInit(&w_ih, input_dim, hidden_dim, rng);
  XavierInit(&w_hh, hidden_dim, hidden_dim, rng);
  Tensor bias(4 * hidden_dim);
  // Forget-gate block (second quarter) biased to 1.
  for (int64_t j = hidden_dim; j < 2 * hidden_dim; ++j) bias[j] = 1.0f;
  w_ih_ = Var::Leaf(std::move(w_ih), /*requires_grad=*/true);
  w_hh_ = Var::Leaf(std::move(w_hh), /*requires_grad=*/true);
  bias_ = Var::Leaf(std::move(bias), /*requires_grad=*/true);
}

LstmCell::State LstmCell::InitialState(int64_t batch) const {
  return State{Var::Leaf(Tensor(batch, hidden_dim_)),
               Var::Leaf(Tensor(batch, hidden_dim_))};
}

LstmCell::State LstmCell::Forward(const Var& x, const State& state) const {
  EHNA_CHECK_EQ(x.value().cols(), input_dim_);
  // Two fused graph nodes per step: the packed pre-activation GEMM and the
  // gate/cell-update kernel (replaces the former 16-node slice/activate/
  // combine chain).
  Var z = ag::LstmPreact(x, w_ih_, state.h, w_hh_, bias_);
  Var hc = ag::LstmGates(z, state.c);
  return State{ag::SliceCols(hc, 0, hidden_dim_),
               ag::SliceCols(hc, hidden_dim_, hidden_dim_)};
}

std::vector<Var> LstmCell::Parameters() const { return {w_ih_, w_hh_, bias_}; }

StackedLstm::StackedLstm(int64_t input_dim, int64_t hidden_dim, int num_layers,
                         Rng* rng)
    : hidden_dim_(hidden_dim) {
  EHNA_CHECK_GE(num_layers, 1);
  cells_.reserve(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    cells_.emplace_back(l == 0 ? input_dim : hidden_dim, hidden_dim, rng);
  }
}

Var StackedLstm::Forward(const std::vector<Var>& inputs,
                         const std::vector<Tensor>& masks) const {
  EHNA_CHECK(!inputs.empty());
  EHNA_CHECK(masks.empty() || masks.size() == inputs.size());
  const int64_t batch = inputs[0].value().rows();

  std::vector<LstmCell::State> states;
  states.reserve(cells_.size());
  for (const auto& cell : cells_) states.push_back(cell.InitialState(batch));

  for (size_t t = 0; t < inputs.size(); ++t) {
    Var layer_input = inputs[t];
    for (size_t l = 0; l < cells_.size(); ++l) {
      LstmCell::State next = cells_[l].Forward(layer_input, states[l]);
      if (!masks.empty()) {
        // Padded rows keep their previous state, so the final hidden state
        // of a short walk is the one at its last valid step.
        next.h = ag::MaskRows(next.h, states[l].h, masks[t]);
        next.c = ag::MaskRows(next.c, states[l].c, masks[t]);
      }
      states[l] = next;
      layer_input = states[l].h;
    }
  }
  return states.back().h;
}

PackedLstmTrace StackedLstm::ForwardPacked(
    const std::vector<Var>& inputs, const std::vector<Tensor>& masks) const {
  EHNA_CHECK(!inputs.empty());
  EHNA_CHECK(masks.empty() || masks.size() == inputs.size());
  const size_t T = inputs.size();
  const size_t L = cells_.size();
  const bool masked = !masks.empty();

  PackedLstmTrace trace;
  trace.steps.resize(T);
  trace.top_h.resize(T);

  // Per-layer state plus the Var the next step's MaskRows b-side must
  // consume (differs from `h` only when a FanInUses junction split the
  // consumers).
  struct PackState {
    Var h;
    Var h_for_mask;
    Var c;
  };
  std::vector<PackState> states(L);
  const int64_t n0 = inputs[0].value().rows();
  for (size_t l = 0; l < L; ++l) {
    LstmCell::State init = cells_[l].InitialState(n0);
    states[l] = {init.h, init.h, init.c};
  }

  for (size_t t = 0; t < T; ++t) {
    const int64_t n_t = inputs[t].value().rows();
    EHNA_CHECK_EQ(states[0].h.value().rows(), n_t);
    const int64_t n_next =
        t + 1 < T ? inputs[t + 1].value().rows() : 0;
    EHNA_CHECK(t + 1 >= T || n_next <= n_t);
    const bool shrink = t + 1 < T && n_next < n_t;

    Var layer_input = inputs[t];
    trace.steps[t].resize(L);
    for (size_t l = 0; l < L; ++l) {
      const LstmCell& cell = cells_[l];
      Var z = ag::LstmPreactNoWeightGrad(layer_input, states[l].h,
                                         cell.w_ih(), cell.w_hh(),
                                         cell.bias());
      Var hc = ag::LstmGates(z, states[l].c);
      Var h = ag::SliceCols(hc, 0, hidden_dim_);
      Var c = ag::SliceCols(hc, hidden_dim_, hidden_dim_);
      if (masked) {
        h = ag::MaskRows(h, states[l].h_for_mask, masks[t]);
        c = ag::MaskRows(c, states[l].c, masks[t]);
      }
      trace.steps[t][l] = PackedLstmStep{layer_input, states[l].h, z};

      const bool is_top = l + 1 == L;
      if (is_top) {
        // Consumers of `h`: caller readouts for sequences ending here
        // (rows >= n_next, AccumulateGradRows) and, when steps remain, the
        // next step's state. At a shrink point the surviving prefix is
        // sliced off (AccumulateGradRows on rows [0, n_next)) — row-
        // disjoint with the readouts, so accumulation order cannot matter.
        // Without shrink both next-step consumers (pre-activation h-input
        // and MaskRows b-side) accumulate full-shape gradients, a
        // commutative two-term fan-in.
        trace.top_h[t] = h;
        if (t + 1 < T) {
          if (shrink) {
            Var hp = ag::SegmentRows(h, 0, n_next);
            states[l] = {hp, hp, ag::SegmentRows(c, 0, n_next)};
          } else {
            states[l] = {h, h, c};
          }
        }
      } else if (t + 1 == T) {
        // Only consumer is the next layer this step.
        layer_input = h;
      } else if (shrink) {
        // `h` feeds the next layer (full-shape grad) and the surviving
        // prefix slice (row-block grad) — mixed accumulation forms whose
        // order the engine does not fix, so split them through a junction.
        std::vector<Var> uses = ag::FanInUses(h, 2);
        layer_input = uses[0];
        Var hp = ag::SegmentRows(uses[1], 0, n_next);
        states[l] = {hp, hp, ag::SegmentRows(c, 0, n_next)};
      } else if (masked) {
        // Three same-shape consumers (next layer x, next step h-input,
        // next step MaskRows b-side) with one topologically unordered —
        // a junction makes the sum slot-ordered.
        std::vector<Var> uses = ag::FanInUses(h, 3);
        layer_input = uses[0];
        states[l] = {uses[1], uses[2], c};
      } else {
        // Maskless, no shrink: two full-shape consumers, commutative.
        layer_input = h;
        states[l] = {h, h, c};
      }
    }
  }
  return trace;
}

std::vector<Var> StackedLstm::Parameters() const {
  std::vector<Var> params;
  for (const auto& cell : cells_) {
    auto p = cell.Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

}  // namespace ehna
