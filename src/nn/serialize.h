#ifndef EHNA_NN_SERIALIZE_H_
#define EHNA_NN_SERIALIZE_H_

#include <string>

#include "nn/tensor.h"
#include "util/status.h"

namespace ehna {

/// Writes `t` as a text embedding file in the word2vec convention: a
/// header line "rows cols", then one row per line ("row_index v0 v1 ...").
/// Values are written with float32 max_digits10 precision, so the file
/// round-trips through ReadTensorText bit-exactly. The write is atomic
/// (temp file + rename); readers never observe a partial file.
Status WriteTensorText(const std::string& path, const Tensor& t);

/// Reads a text tensor written by WriteTensorText. Row indices must form
/// the dense range [0, rows).
Result<Tensor> ReadTensorText(const std::string& path);

/// Writes `t` in a compact binary format:
///   magic "EHNT", u32 version, i64 rows, i64 cols, rows*cols float32 LE.
Status WriteTensorBinary(const std::string& path, const Tensor& t);

/// Reads a binary tensor written by WriteTensorBinary, validating the
/// magic, version, and that the declared shape matches the file size
/// before any allocation (a corrupt header yields a Status, never
/// std::bad_alloc).
Result<Tensor> ReadTensorBinary(const std::string& path);

}  // namespace ehna

#endif  // EHNA_NN_SERIALIZE_H_
