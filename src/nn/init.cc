#include "nn/init.h"

#include <cmath>

namespace ehna {

void UniformInit(Tensor* t, float lo, float hi, Rng* rng) {
  float* d = t->data();
  for (int64_t i = 0; i < t->numel(); ++i) {
    d[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
}

void XavierInit(Tensor* t, int64_t fan_in, int64_t fan_out, Rng* rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  UniformInit(t, -a, a, rng);
}

void NormalInit(Tensor* t, float stddev, Rng* rng) {
  float* d = t->data();
  for (int64_t i = 0; i < t->numel(); ++i) {
    d[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
}

}  // namespace ehna
