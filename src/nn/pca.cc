#include "nn/pca.h"

#include <cmath>

#include "nn/init.h"

namespace ehna {

namespace {

/// y = C v where C = X^T X / n is the (d x d) covariance of the centered
/// data, computed without materializing C: y = X^T (X v) / n.
void CovarianceApply(const Tensor& centered, const std::vector<double>& v,
                     std::vector<double>* y) {
  const int64_t n = centered.rows();
  const int64_t d = centered.cols();
  y->assign(d, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    const float* row = centered.Row(i);
    double dot = 0.0;
    for (int64_t j = 0; j < d; ++j) dot += row[j] * v[j];
    for (int64_t j = 0; j < d; ++j) (*y)[j] += dot * row[j];
  }
  for (int64_t j = 0; j < d; ++j) (*y)[j] /= static_cast<double>(n);
}

double Normalize(std::vector<double>* v) {
  double norm = 0.0;
  for (double x : *v) norm += x * x;
  norm = std::sqrt(norm);
  if (norm > 1e-300) {
    for (double& x : *v) x /= norm;
  }
  return norm;
}

}  // namespace

Result<PcaResult> ComputePca(const Tensor& data, int k, Rng* rng,
                             int power_iterations) {
  if (data.rank() != 2 || data.rows() < 2) {
    return Status::InvalidArgument("PCA needs a matrix with >= 2 rows");
  }
  if (k < 1 || k > data.cols()) {
    return Status::InvalidArgument("component count out of range");
  }
  const int64_t n = data.rows();
  const int64_t d = data.cols();

  // Center.
  Tensor centered = data;
  std::vector<double> mean(d, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    const float* row = data.Row(i);
    for (int64_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (int64_t j = 0; j < d; ++j) mean[j] /= static_cast<double>(n);
  for (int64_t i = 0; i < n; ++i) {
    float* row = centered.Row(i);
    for (int64_t j = 0; j < d; ++j) {
      row[j] -= static_cast<float>(mean[j]);
    }
  }

  PcaResult result;
  result.components = Tensor(k, d);
  result.projected = Tensor(n, k);
  result.explained_variance.reserve(k);

  std::vector<std::vector<double>> axes;
  for (int c = 0; c < k; ++c) {
    // Random start, orthogonalized against found axes each iteration.
    std::vector<double> v(d);
    for (int64_t j = 0; j < d; ++j) v[j] = rng->Normal();
    Normalize(&v);

    double eigenvalue = 0.0;
    std::vector<double> y;
    for (int it = 0; it < power_iterations; ++it) {
      // Gram-Schmidt deflation.
      for (const auto& axis : axes) {
        double dot = 0.0;
        for (int64_t j = 0; j < d; ++j) dot += v[j] * axis[j];
        for (int64_t j = 0; j < d; ++j) v[j] -= dot * axis[j];
      }
      Normalize(&v);
      CovarianceApply(centered, v, &y);
      eigenvalue = Normalize(&y);
      v = y;
    }
    // Final orthogonalization for numerical hygiene.
    for (const auto& axis : axes) {
      double dot = 0.0;
      for (int64_t j = 0; j < d; ++j) dot += v[j] * axis[j];
      for (int64_t j = 0; j < d; ++j) v[j] -= dot * axis[j];
    }
    Normalize(&v);
    axes.push_back(v);
    result.explained_variance.push_back(eigenvalue);
    for (int64_t j = 0; j < d; ++j) {
      result.components.at(c, j) = static_cast<float>(v[j]);
    }
  }

  for (int64_t i = 0; i < n; ++i) {
    const float* row = centered.Row(i);
    for (int c = 0; c < k; ++c) {
      double dot = 0.0;
      for (int64_t j = 0; j < d; ++j) dot += row[j] * axes[c][j];
      result.projected.at(i, c) = static_cast<float>(dot);
    }
  }
  return result;
}

}  // namespace ehna
