#include "nn/embedding.h"

#include <cmath>

#include "nn/arena.h"
#include "nn/init.h"
#include "nn/kernels.h"

namespace ehna {

Embedding::Embedding(int64_t num_rows, int64_t dim, Rng* rng)
    : table_(num_rows, dim),
      grad_map_ptr_(std::make_shared<SparseRowGrads>()),
      grad_map_(*grad_map_ptr_) {
  EHNA_CHECK_GT(num_rows, 0);
  EHNA_CHECK_GT(dim, 0);
  const float scale = 0.5f / static_cast<float>(dim);
  UniformInit(&table_, -scale, scale, rng);
}

Var Embedding::Gather(const std::vector<int64_t>& ids,
                      const std::shared_ptr<SparseRowGrads>& sink) {
  EHNA_CHECK(!ids.empty());
  const int64_t d = dim();
  Tensor out = Tensor::Uninit(static_cast<int64_t>(ids.size()), d);
  for (size_t i = 0; i < ids.size(); ++i) {
    EHNA_DCHECK(ids[i] >= 0 && ids[i] < num_rows());
    kernels::Copy(table_.Row(ids[i]), out.Row(static_cast<int64_t>(i)), d);
  }
  auto map = sink ? sink : grad_map_ptr_;
  std::vector<int64_t> ids_copy = ids;
  // A "leaf with a hook": no parents, but a backward closure that scatters
  // the incoming gradient rows into the sparse accumulator.
  return Var::Op(std::move(out), {},
                 [map, ids_copy, d](const Tensor& g, const Tensor&) {
                   // The accumulator outlives the tape (it is consumed by
                   // the sparse optimizer after backward); never allocate
                   // its rows from the batch arena.
                   TensorArena::Bypass no_arena;
                   for (size_t i = 0; i < ids_copy.size(); ++i) {
                     Tensor& acc = (*map)[ids_copy[i]];
                     if (acc.numel() == 0) acc = Tensor(d);
                     kernels::Axpy(d, 1.0f, g.Row(static_cast<int64_t>(i)),
                                   acc.data());
                   }
                 },
                 "embedding_gather");
}

Var Embedding::GatherRow(int64_t id,
                         const std::shared_ptr<SparseRowGrads>& sink) {
  EHNA_CHECK(id >= 0 && id < num_rows());
  const int64_t d = dim();
  Tensor out = Tensor::Uninit(d);
  kernels::Copy(table_.Row(id), out.data(), d);
  auto map = sink ? sink : grad_map_ptr_;
  return Var::Op(std::move(out), {},
                 [map, id, d](const Tensor& g, const Tensor&) {
                   TensorArena::Bypass no_arena;
                   Tensor& acc = (*map)[id];
                   if (acc.numel() == 0) acc = Tensor(d);
                   kernels::Axpy(d, 1.0f, g.data(), acc.data());
                 },
                 "embedding_gather_row");
}

Var Embedding::GatherDeferred(const std::vector<int64_t>& ids) const {
  EHNA_CHECK(!ids.empty());
  const int64_t d = dim();
  Tensor out = Tensor::Uninit(static_cast<int64_t>(ids.size()), d);
  for (size_t i = 0; i < ids.size(); ++i) {
    EHNA_DCHECK(ids[i] >= 0 && ids[i] < num_rows());
    kernels::Copy(table_.Row(ids[i]), out.Row(static_cast<int64_t>(i)), d);
  }
  return Var::Leaf(std::move(out), /*requires_grad=*/true);
}

Var Embedding::GatherRowDeferred(int64_t id) const {
  EHNA_CHECK(id >= 0 && id < num_rows());
  const int64_t d = dim();
  Tensor out = Tensor::Uninit(d);
  kernels::Copy(table_.Row(id), out.data(), d);
  return Var::Leaf(std::move(out), /*requires_grad=*/true);
}

void Embedding::ScatterGrads(const std::vector<int64_t>& ids, const Tensor& g,
                             const std::shared_ptr<SparseRowGrads>& sink) {
  SparseRowGrads* map = sink ? sink.get() : grad_map_ptr_.get();
  const int64_t d = dim();
  EHNA_CHECK_EQ(g.rows(), static_cast<int64_t>(ids.size()));
  EHNA_CHECK_EQ(g.cols(), d);
  TensorArena::Bypass no_arena;  // mirror the Gather hook: rows outlive the tape
  for (size_t i = 0; i < ids.size(); ++i) {
    Tensor& acc = (*map)[ids[i]];
    if (acc.numel() == 0) acc = Tensor(d);
    kernels::Axpy(d, 1.0f, g.Row(static_cast<int64_t>(i)), acc.data());
  }
}

void Embedding::ScatterRowGrad(int64_t id, const Tensor& g,
                               const std::shared_ptr<SparseRowGrads>& sink) {
  SparseRowGrads* map = sink ? sink.get() : grad_map_ptr_.get();
  const int64_t d = dim();
  EHNA_CHECK_EQ(g.numel(), d);
  TensorArena::Bypass no_arena;
  Tensor& acc = (*map)[id];
  if (acc.numel() == 0) acc = Tensor(d);
  kernels::Axpy(d, 1.0f, g.data(), acc.data());
}

void Embedding::SetRow(int64_t id, const float* values) {
  EHNA_CHECK(id >= 0 && id < num_rows());
  kernels::Copy(values, table_.Row(id), dim());
}

void Embedding::EnsureRows(int64_t num_rows, Rng* rng) {
  EHNA_CHECK(rng != nullptr);
  const int64_t old_rows = table_.rows();
  if (num_rows <= old_rows) return;
  TensorArena::Bypass no_arena;  // the table outlives any batch tape.
  const int64_t d = dim();
  Tensor grown = Tensor::Uninit(num_rows, d);
  kernels::Copy(table_.data(), grown.data(), old_rows * d);
  const float scale = 0.5f / static_cast<float>(d);
  for (int64_t i = old_rows * d; i < num_rows * d; ++i) {
    grown.data()[i] = static_cast<float>(
        rng->Uniform(-static_cast<double>(scale), static_cast<double>(scale)));
  }
  table_ = std::move(grown);
}

void Embedding::ApplyAdam(float lr, float beta1, float beta2, float eps) {
  if (grad_map_.empty()) return;
  TensorArena::Bypass no_arena;  // Adam moments persist across batches.
  ++adam_step_;
  const float bc1 =
      1.0f - std::pow(beta1, static_cast<float>(adam_step_));
  const float bc2 =
      1.0f - std::pow(beta2, static_cast<float>(adam_step_));
  const int64_t d = dim();
  for (auto& [row, grad] : grad_map_) {
    Tensor& m = adam_m_[row];
    Tensor& v = adam_v_[row];
    if (m.numel() == 0) m = Tensor(d);
    if (v.numel() == 0) v = Tensor(d);
    kernels::AdamUpdate(d, lr, beta1, beta2, eps, bc1, bc2, grad.data(),
                        m.data(), v.data(), table_.Row(row));
  }
  grad_map_.clear();
}

void Embedding::ApplySgd(float lr) {
  const int64_t d = dim();
  for (auto& [row, grad] : grad_map_) {
    kernels::Axpy(d, -lr, grad.data(), table_.Row(row));
  }
  grad_map_.clear();
}

void Embedding::AccumulateSparse(const SparseRowGrads& grads) {
  TensorArena::Bypass no_arena;  // the master accumulator is long-lived.
  const int64_t d = dim();
  for (const auto& [row, grad] : grads) {
    Tensor& acc = grad_map_[row];
    if (acc.numel() == 0) acc = Tensor(d);
    acc.AddInPlace(grad);
  }
}

void Embedding::ClearGradients() { grad_map_.clear(); }

Status Embedding::SetState(const Tensor& table, int64_t adam_step,
                           std::unordered_map<int64_t, Tensor> adam_m,
                           std::unordered_map<int64_t, Tensor> adam_v) {
  if (!table.SameShape(table_)) {
    return Status::InvalidArgument("embedding table shape mismatch");
  }
  if (adam_step < 0) {
    return Status::InvalidArgument("negative embedding Adam step count");
  }
  for (const auto* moments : {&adam_m, &adam_v}) {
    for (const auto& [row, m] : *moments) {
      if (row < 0 || row >= num_rows() || m.numel() != dim()) {
        return Status::InvalidArgument("embedding Adam moment mismatch");
      }
    }
  }
  table_ = table;
  adam_step_ = adam_step;
  adam_m_ = std::move(adam_m);
  adam_v_ = std::move(adam_v);
  grad_map_.clear();
  return Status::OK();
}

}  // namespace ehna
