#include "nn/embedding.h"

#include <cmath>

#include "nn/init.h"

namespace ehna {

Embedding::Embedding(int64_t num_rows, int64_t dim, Rng* rng)
    : table_(num_rows, dim),
      grad_map_ptr_(std::make_shared<SparseRowGrads>()),
      grad_map_(*grad_map_ptr_) {
  EHNA_CHECK_GT(num_rows, 0);
  EHNA_CHECK_GT(dim, 0);
  const float scale = 0.5f / static_cast<float>(dim);
  UniformInit(&table_, -scale, scale, rng);
}

Var Embedding::Gather(const std::vector<int64_t>& ids,
                      const std::shared_ptr<SparseRowGrads>& sink) {
  EHNA_CHECK(!ids.empty());
  const int64_t d = dim();
  Tensor out(static_cast<int64_t>(ids.size()), d);
  for (size_t i = 0; i < ids.size(); ++i) {
    EHNA_DCHECK(ids[i] >= 0 && ids[i] < num_rows());
    const float* src = table_.Row(ids[i]);
    float* dst = out.Row(static_cast<int64_t>(i));
    for (int64_t j = 0; j < d; ++j) dst[j] = src[j];
  }
  auto map = sink ? sink : grad_map_ptr_;
  std::vector<int64_t> ids_copy = ids;
  // A "leaf with a hook": no parents, but a backward closure that scatters
  // the incoming gradient rows into the sparse accumulator.
  return Var::Op(std::move(out), {},
                 [map, ids_copy, d](const Tensor& g, const Tensor&) {
                   for (size_t i = 0; i < ids_copy.size(); ++i) {
                     Tensor& acc = (*map)[ids_copy[i]];
                     if (acc.numel() == 0) acc = Tensor(d);
                     const float* src = g.Row(static_cast<int64_t>(i));
                     for (int64_t j = 0; j < d; ++j) acc[j] += src[j];
                   }
                 },
                 "embedding_gather");
}

Var Embedding::GatherRow(int64_t id,
                         const std::shared_ptr<SparseRowGrads>& sink) {
  EHNA_CHECK(id >= 0 && id < num_rows());
  const int64_t d = dim();
  Tensor out(d);
  const float* src = table_.Row(id);
  for (int64_t j = 0; j < d; ++j) out[j] = src[j];
  auto map = sink ? sink : grad_map_ptr_;
  return Var::Op(std::move(out), {},
                 [map, id, d](const Tensor& g, const Tensor&) {
                   Tensor& acc = (*map)[id];
                   if (acc.numel() == 0) acc = Tensor(d);
                   for (int64_t j = 0; j < d; ++j) acc[j] += g[j];
                 },
                 "embedding_gather_row");
}

void Embedding::SetRow(int64_t id, const float* values) {
  EHNA_CHECK(id >= 0 && id < num_rows());
  float* dst = table_.Row(id);
  for (int64_t j = 0; j < dim(); ++j) dst[j] = values[j];
}

void Embedding::ApplyAdam(float lr, float beta1, float beta2, float eps) {
  if (grad_map_.empty()) return;
  ++adam_step_;
  const float bc1 =
      1.0f - std::pow(beta1, static_cast<float>(adam_step_));
  const float bc2 =
      1.0f - std::pow(beta2, static_cast<float>(adam_step_));
  const int64_t d = dim();
  for (auto& [row, grad] : grad_map_) {
    Tensor& m = adam_m_[row];
    Tensor& v = adam_v_[row];
    if (m.numel() == 0) m = Tensor(d);
    if (v.numel() == 0) v = Tensor(d);
    float* trow = table_.Row(row);
    for (int64_t j = 0; j < d; ++j) {
      const float gj = grad[j];
      m[j] = beta1 * m[j] + (1.0f - beta1) * gj;
      v[j] = beta2 * v[j] + (1.0f - beta2) * gj * gj;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      trow[j] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
  }
  grad_map_.clear();
}

void Embedding::ApplySgd(float lr) {
  const int64_t d = dim();
  for (auto& [row, grad] : grad_map_) {
    float* trow = table_.Row(row);
    for (int64_t j = 0; j < d; ++j) trow[j] -= lr * grad[j];
  }
  grad_map_.clear();
}

void Embedding::AccumulateSparse(const SparseRowGrads& grads) {
  const int64_t d = dim();
  for (const auto& [row, grad] : grads) {
    Tensor& acc = grad_map_[row];
    if (acc.numel() == 0) acc = Tensor(d);
    acc.AddInPlace(grad);
  }
}

void Embedding::ClearGradients() { grad_map_.clear(); }

Status Embedding::SetState(const Tensor& table, int64_t adam_step,
                           std::unordered_map<int64_t, Tensor> adam_m,
                           std::unordered_map<int64_t, Tensor> adam_v) {
  if (!table.SameShape(table_)) {
    return Status::InvalidArgument("embedding table shape mismatch");
  }
  if (adam_step < 0) {
    return Status::InvalidArgument("negative embedding Adam step count");
  }
  for (const auto* moments : {&adam_m, &adam_v}) {
    for (const auto& [row, m] : *moments) {
      if (row < 0 || row >= num_rows() || m.numel() != dim()) {
        return Status::InvalidArgument("embedding Adam moment mismatch");
      }
    }
  }
  table_ = table;
  adam_step_ = adam_step;
  adam_m_ = std::move(adam_m);
  adam_v_ = std::move(adam_v);
  grad_map_.clear();
  return Status::OK();
}

}  // namespace ehna
