#ifndef EHNA_NN_AUTOGRAD_H_
#define EHNA_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/tensor.h"

namespace ehna {

namespace internal {
struct VarImpl;
}  // namespace internal

/// A node in a dynamically built reverse-mode autodiff graph. `Var` is a
/// cheap shared handle: ops produce new Vars wired to their inputs, and
/// `Backward(loss)` propagates gradients through the recorded graph in
/// reverse topological order. Gradients accumulate (+=) into each node's
/// `grad()` tensor, so parameters can participate in several subgraphs per
/// step; call `ZeroGrad()` between steps.
class Var {
 public:
  /// Null handle; most APIs reject it.
  Var() = default;

  /// A leaf holding `value`. If `requires_grad`, gradients reaching the leaf
  /// are retained in grad().
  static Var Leaf(Tensor value, bool requires_grad = false);

  /// An interior node produced by an op. `backward` receives (grad_of_this,
  /// this_value) and must route gradient contributions into the parents via
  /// `AccumulateGrad`. Ops use the helpers in ops.h; model code rarely calls
  /// this directly.
  static Var Op(Tensor value, std::vector<Var> parents,
                std::function<void(const Tensor& grad, const Tensor& value)>
                    backward,
                const char* name = "op");

  bool defined() const { return impl_ != nullptr; }

  const Tensor& value() const;
  Tensor& mutable_value();

  /// Accumulated gradient; zero-shaped until backward has touched this node.
  const Tensor& grad() const;

  bool requires_grad() const;

  /// Clears the gradient (used on parameter leaves between steps). Const
  /// because Var has shared-handle semantics: the mutation targets the
  /// shared node, not the handle.
  void ZeroGrad() const;

  /// Adds `g` into this node's gradient (allocating it on first use). Ops'
  /// backward closures call this on their parents.
  void AccumulateGrad(const Tensor& g) const;

  /// Adds `g` (a block of full-width rows) into rows [row_start,
  /// row_start + g.rows()) of this node's gradient, allocating a zeroed
  /// full-shape gradient on first use. Lets segment/pack ops route
  /// row-disjoint contributions without materializing full-size zero
  /// tensors per contribution.
  void AccumulateGradRows(int64_t row_start, const Tensor& g) const;

  /// Single-row raw-pointer variant of AccumulateGradRows: adds `g_row`
  /// (this->value().cols() floats) into row `row` of the gradient.
  void AccumulateGradRow(int64_t row, const float* g_row) const;

  /// Scales the accumulated gradient in place (no-op if no gradient has
  /// reached this node). Used by gradient clipping to avoid re-allocating
  /// every gradient tensor.
  void ScaleGrad(float alpha) const;

  /// Op name for debugging.
  const char* name() const;

  /// Identity comparison (same graph node).
  bool operator==(const Var& other) const { return impl_ == other.impl_; }

  /// Internal access for the engine.
  internal::VarImpl* impl() const { return impl_.get(); }

 private:
  explicit Var(std::shared_ptr<internal::VarImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<internal::VarImpl> impl_;
};

namespace internal {
struct VarImpl {
  Tensor value;
  Tensor grad;            // empty until first accumulation.
  bool requires_grad = false;
  bool grad_defined = false;
  const char* name = "leaf";
  std::vector<Var> parents;
  std::function<void(const Tensor&, const Tensor&)> backward;

  // Intrusive traversal state for Backward(). Each traversal draws a fresh
  // tag from a global counter; a field matching the current tag means "seen
  // this traversal". This replaces per-Backward hash maps (which dominated
  // traversal cost on LSTM-depth graphs) with two branch-predictable
  // compares per visit. Tags start at 1, so the zero init never collides.
  uint64_t needs_tag = 0;        // memo validity for needs_grad_cached.
  bool needs_grad_cached = false;
  uint64_t visited_tag = 0;      // DFS membership for the current traversal.
};
}  // namespace internal

/// Runs reverse-mode differentiation from `root`, which must hold a single
/// scalar (numel() == 1). Seeds d(root)/d(root) = 1 and invokes each
/// reachable node's backward closure exactly once, in reverse topological
/// order. Nodes whose subtree contains no grad-requiring leaf are skipped.
void Backward(const Var& root);

}  // namespace ehna

#endif  // EHNA_NN_AUTOGRAD_H_
