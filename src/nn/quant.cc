#include "nn/quant.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "util/logging.h"

namespace ehna {

namespace {

/// One int8 row: symmetric scale from the row max-abs, codes by
/// round-to-nearest-even (std::nearbyintf under the default FP
/// environment), clamped to [-127, 127] so negation is closed. An all-zero
/// row gets scale 0 and zero codes; the score arithmetic multiplies by the
/// scale, so the degenerate row scores 0 everywhere, like its fp32 self.
void QuantizeRowI8(const float* src, int64_t d, int8_t* q, float* scale,
                   int32_t* sqnorm) {
  float maxabs = 0.0f;
  for (int64_t j = 0; j < d; ++j) {
    maxabs = std::max(maxabs, std::fabs(src[j]));
  }
  if (maxabs == 0.0f) {
    std::memset(q, 0, static_cast<size_t>(d));
    *scale = 0.0f;
    *sqnorm = 0;
    return;
  }
  const float s = maxabs / 127.0f;
  const float inv = 1.0f / s;
  int32_t sq = 0;
  for (int64_t j = 0; j < d; ++j) {
    float r = std::nearbyintf(src[j] * inv);
    r = std::min(127.0f, std::max(-127.0f, r));
    const int32_t c = static_cast<int32_t>(r);
    q[j] = static_cast<int8_t>(c);
    sq += c * c;
  }
  *scale = s;
  *sqnorm = sq;
}

void QuantizeRowBf16(const float* src, int64_t d, uint16_t* q,
                     double* sqnorm) {
  double sq = 0.0;
  for (int64_t j = 0; j < d; ++j) {
    q[j] = Bf16FromF32(src[j]);
    const double w = static_cast<double>(F32FromBf16(q[j]));
    sq += w * w;
  }
  *sqnorm = sq;
}

}  // namespace

const char* ServePrecisionName(ServePrecision p) {
  switch (p) {
    case ServePrecision::kFp32:
      return "fp32";
    case ServePrecision::kInt8:
      return "int8";
    case ServePrecision::kBf16:
      return "bf16";
  }
  return "unknown";
}

Result<ServePrecision> ParseServePrecision(std::string_view name) {
  if (name == "fp32") return ServePrecision::kFp32;
  if (name == "int8") return ServePrecision::kInt8;
  if (name == "bf16") return ServePrecision::kBf16;
  return Status::InvalidArgument("unknown serving precision '" +
                                 std::string(name) +
                                 "' (expected fp32|int8|bf16)");
}

uint16_t Bf16FromF32(float x) {
  const uint32_t bits = std::bit_cast<uint32_t>(x);
  if ((bits & 0x7FFFFFFFu) > 0x7F800000u) {
    // NaN: keep sign + exponent, force a quiet payload; rounding carry
    // could otherwise overflow the payload into an infinity encoding.
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  const uint32_t lsb = (bits >> 16) & 1u;
  return static_cast<uint16_t>((bits + 0x7FFFu + lsb) >> 16);
}

float F32FromBf16(uint16_t b) {
  return std::bit_cast<float>(static_cast<uint32_t>(b) << 16);
}

QuantizedMatrix::QuantizedMatrix(ServePrecision precision, int64_t dim)
    : precision_(precision), dim_(dim) {
  EHNA_CHECK(dim > 0) << "quantized matrix needs a positive dim";
  // The int8 dot accumulates exactly in int32 only while the sum of
  // dim products (each <= 127^2) cannot wrap (kernels.h contract).
  EHNA_CHECK(dim <= (int64_t{1} << 17))
      << "dim " << dim << " exceeds the int8 kernels' exact-int32 bound";
}

QuantizedMatrix QuantizedMatrix::FromTensor(const Tensor& m,
                                            ServePrecision precision) {
  QuantizedMatrix q(precision, m.cols());
  q.EnsureRows(m.rows());
  for (int64_t r = 0; r < m.rows(); ++r) q.RequantizeRow(r, m.Row(r));
  return q;
}

void QuantizedMatrix::EnsureRows(int64_t rows) {
  if (rows <= rows_) return;
  const size_t n = static_cast<size_t>(rows);
  switch (precision_) {
    case ServePrecision::kInt8:
      i8_.resize(n * static_cast<size_t>(dim_), 0);
      scale_.resize(n, 0.0f);
      sqnorm_i32_.resize(n, 0);
      break;
    case ServePrecision::kBf16:
      bf16_.resize(n * static_cast<size_t>(dim_), 0);
      sqnorm_.resize(n, 0.0);
      break;
    case ServePrecision::kFp32:
      break;
  }
  rows_ = rows;
}

void QuantizedMatrix::RequantizeRow(int64_t row, const float* src) {
  EHNA_CHECK(row >= 0 && row < rows_);
  switch (precision_) {
    case ServePrecision::kInt8:
      QuantizeRowI8(src, dim_, i8_.data() + row * dim_,
                    &scale_[static_cast<size_t>(row)],
                    &sqnorm_i32_[static_cast<size_t>(row)]);
      break;
    case ServePrecision::kBf16:
      QuantizeRowBf16(src, dim_, bf16_.data() + row * dim_,
                      &sqnorm_[static_cast<size_t>(row)]);
      break;
    case ServePrecision::kFp32:
      break;
  }
}

void QuantizedMatrix::Dequantize(int64_t row, float* dst) const {
  switch (precision_) {
    case ServePrecision::kInt8: {
      const int8_t* q = RowI8(row);
      const float s = scale(row);
      for (int64_t j = 0; j < dim_; ++j) {
        dst[j] = s * static_cast<float>(q[j]);
      }
      break;
    }
    case ServePrecision::kBf16: {
      const uint16_t* q = RowBf16(row);
      for (int64_t j = 0; j < dim_; ++j) dst[j] = F32FromBf16(q[j]);
      break;
    }
    case ServePrecision::kFp32:
      break;
  }
}

size_t QuantizedMatrix::bytes() const {
  const size_t n = static_cast<size_t>(rows_);
  const size_t d = static_cast<size_t>(dim_);
  switch (precision_) {
    case ServePrecision::kInt8:
      return n * (d * sizeof(int8_t) + sizeof(float) + sizeof(int32_t));
    case ServePrecision::kBf16:
      return n * (d * sizeof(uint16_t) + sizeof(double));
    case ServePrecision::kFp32:
      return 0;
  }
  return 0;
}

QuantErrorStats QuantizedMatrix::ErrorStats(const Tensor& reference) const {
  std::vector<uint32_t> all(static_cast<size_t>(rows_));
  for (size_t r = 0; r < all.size(); ++r) all[r] = static_cast<uint32_t>(r);
  return ErrorStatsForRows(reference, all.data(), all.size());
}

QuantErrorStats QuantizedMatrix::ErrorStatsForRows(const Tensor& reference,
                                                   const uint32_t* rows_subset,
                                                   size_t count) const {
  QuantErrorStats stats;
  if (precision_ == ServePrecision::kFp32 || count == 0) return stats;
  EHNA_CHECK(reference.cols() == dim_);
  std::vector<float> deq(static_cast<size_t>(dim_));
  double sum = 0.0;
  for (size_t i = 0; i < count; ++i) {
    const int64_t r = static_cast<int64_t>(rows_subset[i]);
    EHNA_CHECK(r < rows_ && r < reference.rows());
    Dequantize(r, deq.data());
    const float* ref = reference.Row(r);
    for (int64_t j = 0; j < dim_; ++j) {
      const double e = std::fabs(static_cast<double>(deq[j]) - ref[j]);
      stats.max_abs = std::max(stats.max_abs, e);
      sum += e;
    }
  }
  stats.mean_abs = sum / (static_cast<double>(count) * dim_);
  return stats;
}

QuantizedQuery PrepareQuantizedQuery(const float* x, int64_t dim,
                                     ServePrecision precision) {
  QuantizedQuery q;
  q.precision = precision;
  q.fp32 = x;
  switch (precision) {
    case ServePrecision::kInt8:
      q.i8.resize(static_cast<size_t>(dim));
      QuantizeRowI8(x, dim, q.i8.data(), &q.scale, &q.sqnorm_i32);
      break;
    case ServePrecision::kBf16: {
      // bf16 rows score against the fp32 query directly; only the query's
      // squared norm is needed (for the Euclidean score), in double like
      // the row-side norm.
      double sq = 0.0;
      for (int64_t j = 0; j < dim; ++j) {
        sq += static_cast<double>(x[j]) * x[j];
      }
      q.sqnorm = sq;
      break;
    }
    case ServePrecision::kFp32:
      break;
  }
  return q;
}

}  // namespace ehna
