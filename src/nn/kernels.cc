#include "nn/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/cpu_dispatch.h"
#include "util/metrics.h"

// The dense hot set (GEMM/GEMV/Dot, LSTM gates, attention softmax) lives in
// per-ISA translation units — kernels_scalar.cc and kernels_avx2.cc — and
// the entry points here are thin wrappers that count metrics and jump
// through the runtime-dispatched table (nn/cpu_dispatch.h). Both tables
// honor the same fixed accumulation orders, so which one runs is invisible
// in the output bits. Everything below the wrappers is ISA-independent
// elementwise code that the compiler vectorizes fine on its own.

namespace ehna::kernels {

namespace {

Counter* GemmCalls() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("kernels.gemm.calls");
  return c;
}
Counter* GemmFlops() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("kernels.gemm.flops");
  return c;
}
Counter* GemvCalls() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("kernels.gemv.calls");
  return c;
}
Counter* LstmGateCalls() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("kernels.lstm_gate.calls");
  return c;
}
Counter* AttentionCalls() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("kernels.attention.calls");
  return c;
}

inline void CountGemm(int64_t m, int64_t n, int64_t k) {
  GemmCalls()->Add(1);
  GemmFlops()->Add(static_cast<uint64_t>(2 * m * n * k));
}

}  // namespace

void GemmNN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, bool accumulate) {
  CountGemm(m, n, k);
  ActiveKernels().gemm_nn(m, n, k, a, b, c, accumulate);
}

void GemmNT(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, bool accumulate) {
  CountGemm(m, n, k);
  ActiveKernels().gemm_nt(m, n, k, a, b, c, accumulate);
}

void GemmTN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, bool accumulate) {
  CountGemm(m, n, k);
  ActiveKernels().gemm_tn(m, n, k, a, b, c, accumulate);
}

void Gemv(int64_t m, int64_t n, const float* a, const float* x, float* y,
          bool accumulate) {
  GemvCalls()->Add(1);
  ActiveKernels().gemv(m, n, a, x, y, accumulate);
}

void GemvT(int64_t m, int64_t n, const float* a, const float* x, float* y,
           bool accumulate) {
  GemvCalls()->Add(1);
  ActiveKernels().gemv_t(m, n, a, x, y, accumulate);
}

float Dot(const float* x, const float* y, int64_t n) {
  return ActiveKernels().dot(x, y, n);
}

int32_t DotI8(const int8_t* x, const int8_t* y, int64_t n) {
  return ActiveKernels().dot_i8(x, y, n);
}

void GemvI8(int64_t rows, int64_t n, const int8_t* a, const int8_t* x,
            int32_t* y) {
  ActiveKernels().gemv_i8(rows, n, a, x, y);
}

float DotBf16(const uint16_t* x, const float* y, int64_t n) {
  return ActiveKernels().dot_bf16(x, y, n);
}

void GemvBf16(int64_t rows, int64_t n, const uint16_t* a, const float* x,
              float* y) {
  ActiveKernels().gemv_bf16(rows, n, a, x, y);
}

void Fill(float* x, int64_t n, float value) {
  if (value == 0.0f) {
    std::memset(x, 0, static_cast<size_t>(n) * sizeof(float));
  } else {
    for (int64_t i = 0; i < n; ++i) x[i] = value;
  }
}

void Copy(const float* src, float* dst, int64_t n) {
  std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
}

void Axpy(int64_t n, float alpha, const float* __restrict x,
          float* __restrict y) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(int64_t n, float alpha, float* x) {
  for (int64_t i = 0; i < n; ++i) x[i] *= alpha;
}

void ScaledCopy(int64_t n, float alpha, const float* x, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = alpha * x[i];
}

void Lerp(int64_t n, float w, const float* a, const float* b, float* out) {
  // Endpoint fast paths: mask rows blend with w ∈ {0, 1} almost always, and
  // a straight copy is both faster and exact (no 0*x term that could
  // perturb signed zeros differently between callers).
  if (w == 1.0f) {
    Copy(a, out, n);
    return;
  }
  if (w == 0.0f) {
    Copy(b, out, n);
    return;
  }
  const float wb = 1.0f - w;
  for (int64_t i = 0; i < n; ++i) out[i] = w * a[i] + wb * b[i];
}

void InvSqrt(int64_t n, const float* x, float eps, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = 1.0f / std::sqrt(x[i] + eps);
}

void BatchNormApplyRow(int64_t f, const float* x, const float* mean,
                       const float* inv_std, const float* gamma,
                       const float* beta, float* out) {
  for (int64_t j = 0; j < f; ++j) {
    out[j] = gamma[j] * (x[j] - mean[j]) * inv_std[j] + beta[j];
  }
}

void NormalizeRow(int64_t f, const float* x, const float* mean,
                  const float* inv_std, float* xhat) {
  for (int64_t j = 0; j < f; ++j) xhat[j] = (x[j] - mean[j]) * inv_std[j];
}

void BatchNormBackwardRow(int64_t f, float batch, float inv_b, const float* g,
                          const float* gamma, const float* xhat,
                          const float* inv_std, const float* sum_dxhat,
                          const float* sum_dxhat_xhat, float* dx) {
  for (int64_t j = 0; j < f; ++j) {
    const float dxh = g[j] * gamma[j];
    dx[j] = inv_std[j] * inv_b *
            (batch * dxh - sum_dxhat[j] - xhat[j] * sum_dxhat_xhat[j]);
  }
}

void AdamUpdate(int64_t n, float lr, float beta1, float beta2, float eps,
                float bc1, float bc2, const float* g, float* m, float* v,
                float* p) {
  for (int64_t j = 0; j < n; ++j) {
    m[j] = beta1 * m[j] + (1.0f - beta1) * g[j];
    v[j] = beta2 * v[j] + (1.0f - beta2) * g[j] * g[j];
    const float mhat = m[j] / bc1;
    const float vhat = v[j] / bc2;
    p[j] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void Add(int64_t n, const float* a, const float* b, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void Sub(int64_t n, const float* a, const float* b, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void Mul(int64_t n, const float* a, const float* b, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void MulAdd(int64_t n, const float* a, const float* b, const float* c,
            float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i] + c[i];
}

void AddScalar(int64_t n, const float* x, float value, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] + value;
}

float Sum(const float* x, int64_t n) {
  float s = 0.0f;
  for (int64_t i = 0; i < n; ++i) s += x[i];
  return s;
}

double SumSquares(const float* x, int64_t n) {
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    s += static_cast<double>(x[i]) * x[i];
  }
  return s;
}

void SigmoidForward(int64_t n, const float* x, float* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-x[i]));
  }
}

void SigmoidBackward(int64_t n, const float* g, const float* y, float* gx) {
  for (int64_t i = 0; i < n; ++i) gx[i] = g[i] * y[i] * (1.0f - y[i]);
}

void TanhForward(int64_t n, const float* x, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = std::tanh(x[i]);
}

void TanhBackward(int64_t n, const float* g, const float* y, float* gx) {
  for (int64_t i = 0; i < n; ++i) gx[i] = g[i] * (1.0f - y[i] * y[i]);
}

void ReluForward(int64_t n, const float* x, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void ReluBackward(int64_t n, const float* g, const float* y, float* gx) {
  for (int64_t i = 0; i < n; ++i) gx[i] = y[i] > 0.0f ? g[i] : 0.0f;
}

void ExpForward(int64_t n, const float* x, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = std::exp(x[i]);
}

void ExpBackward(int64_t n, const float* g, const float* y, float* gx) {
  for (int64_t i = 0; i < n; ++i) gx[i] = g[i] * y[i];
}

void LogForward(int64_t n, const float* x, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = std::log(x[i]);
}

void LogBackward(int64_t n, const float* g, const float* x, float* gx) {
  for (int64_t i = 0; i < n; ++i) gx[i] = g[i] / x[i];
}

void LogSigmoidForward(int64_t n, const float* x, float* out) {
  for (int64_t i = 0; i < n; ++i) {
    // log sigmoid(x) = -softplus(-x) = min(x,0) - log(1 + exp(-|x|)).
    const float v = x[i];
    out[i] = std::min(v, 0.0f) - std::log1p(std::exp(-std::abs(v)));
  }
}

void LogSigmoidBackward(int64_t n, const float* g, const float* x,
                        float* gx) {
  for (int64_t i = 0; i < n; ++i) {
    // d/dx log sigmoid(x) = sigmoid(-x), in the overflow-safe branch form.
    const float v = x[i];
    const float s = v >= 0.0f ? std::exp(-v) / (1.0f + std::exp(-v))
                              : 1.0f / (1.0f + std::exp(v));
    gx[i] = g[i] * s;
  }
}

void SoftmaxForward(int64_t n, const float* x, float* out) {
  float mx = x[0];
  for (int64_t i = 1; i < n; ++i) mx = std::max(mx, x[i]);
  float total = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    out[i] = std::exp(x[i] - mx);
    total += out[i];
  }
  Scale(n, 1.0f / total, out);
}

void SoftmaxBackward(int64_t n, const float* g, const float* y, float* gx) {
  const float dot = Dot(g, y, n);
  for (int64_t i = 0; i < n; ++i) gx[i] = y[i] * (g[i] - dot);
}

void LstmGateForward(int64_t b, int64_t h, const float* z,
                     const float* c_prev, float* ifgo, float* tanh_c,
                     float* hc) {
  LstmGateCalls()->Add(1);
  ActiveKernels().lstm_gate_forward(b, h, z, c_prev, ifgo, tanh_c, hc);
}

void LstmGateBackward(int64_t b, int64_t h, const float* ghc,
                      const float* ifgo, const float* tanh_c,
                      const float* c_prev, float* gz, float* gc_prev) {
  ActiveKernels().lstm_gate_backward(b, h, ghc, ifgo, tanh_c, c_prev, gz,
                                     gc_prev);
}

void AttentionSoftmaxForward(int64_t l, int64_t d, const float* emb,
                             const float* target, const float* neg_coeffs,
                             float* alpha) {
  AttentionCalls()->Add(1);
  ActiveKernels().attention_softmax_forward(l, d, emb, target, neg_coeffs,
                                            alpha);
}

void AttentionSoftmaxBackward(int64_t l, int64_t d, const float* g,
                              const float* alpha, const float* emb,
                              const float* target, const float* neg_coeffs,
                              float* gemb, float* gtarget) {
  ActiveKernels().attention_softmax_backward(l, d, g, alpha, emb, target,
                                             neg_coeffs, gemb, gtarget);
}

}  // namespace ehna::kernels
